// Command-line model checker: load a textual model (see ta/parser.hpp
// for the format), run its `query reach ...` lines, print verdicts and
// timed witness traces — the UPPAAL-shaped entry point of the library.
//
// Usage: check_model <model-file> [bfs|dfs|rdfs] [--trace] [--threads N]
//                    [--portfolio] [--extrapolation none|global|location|lu]
//
// --threads N parallelizes whichever order is selected (level-
// synchronous BFS, work-stealing DFS); --portfolio races N independent
// seeded DFS workers instead. --extrapolation selects the
// zone-abstraction operator (default: per-location Extra+_LU).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "engine/reachability.hpp"
#include "engine/trace.hpp"
#include "ta/parser.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: check_model <model-file> [bfs|dfs|rdfs] [--trace]"
                 " [--threads N] [--portfolio]"
                 " [--extrapolation none|global|location|lu]\n";
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "cannot open " << argv[1] << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  std::string err;
  auto parsed = ta::parseModel(buf.str(), &err);
  if (!parsed.has_value()) {
    std::cerr << argv[1] << ": " << err << "\n";
    return 2;
  }
  std::cout << "model: " << parsed->system->numAutomata() << " automata, "
            << parsed->system->numClocks() << " clocks, "
            << parsed->system->numVars() << " variables\n";

  engine::Options opts;
  bool showTrace = false;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "dfs") opts.order = engine::SearchOrder::kDfs;
    if (a == "rdfs") opts.order = engine::SearchOrder::kRandomDfs;
    if (a == "--trace") showTrace = true;
    if (a == "--portfolio") opts.portfolio = true;
    if (a == "--threads" && i + 1 < argc) {
      opts.threads = static_cast<size_t>(std::atoi(argv[++i]));
    }
    if (a == "--extrapolation" && i + 1 < argc) {
      if (!engine::parseExtrapolation(argv[++i], &opts.extrapolation)) {
        std::cerr << "unknown extrapolation mode: " << argv[i] << "\n";
        return 2;
      }
    }
  }

  if (parsed->queries.empty()) {
    std::cout << "no queries in the model file\n";
    return 0;
  }
  int failures = 0;
  for (size_t q = 0; q < parsed->queries.size(); ++q) {
    const ta::ParsedQuery& pq = parsed->queries[q];
    engine::Goal goal{pq.locations, pq.predicate, pq.clockConstraints};
    engine::Reachability checker(*parsed->system, opts);
    const engine::Result res = checker.run(goal);
    std::cout << "query " << q + 1 << ": "
              << (res.reachable ? "REACHABLE" : "unreachable") << "  ("
              << res.stats.statesExplored << " states, " << res.stats.seconds
              << " s)\n";
    if (res.reachable && showTrace) {
      const auto ct = engine::concretize(*parsed->system, res.trace, &err);
      if (ct.has_value()) {
        std::cout << engine::toString(*parsed->system, *ct);
      } else {
        std::cout << "  (trace concretization failed: " << err << ")\n";
        ++failures;
      }
    }
  }
  return failures == 0 ? 0 : 1;
}
