// Command-line model checker: load a textual model (see ta/parser.hpp
// for the format), run its `query reach ...` lines, print verdicts and
// timed witness traces — the UPPAAL-shaped entry point of the library.
//
// Usage: check_model <model-file> [bfs|dfs|rdfs] [--trace] [--threads N]
//                    [--portfolio] [--extrapolation none|global|location|lu]
//                    [--stats-json] [--no-intern] [--merge-zones]
//                    [--opt-level N] [--no-lint] [--Werror]
//
// --threads N parallelizes whichever order is selected (level-
// synchronous BFS, work-stealing DFS); --portfolio races N independent
// seeded DFS workers instead. --extrapolation selects the
// zone-abstraction operator (default: per-location Extra+_LU).
// --no-intern / --merge-zones toggle the storage engine (discrete-state
// hash-consing off, exact convex-union zone merging on). --opt-level
// selects the pre-exploration optimizer level (0 explores the model
// exactly as built; default 2 runs the full pass pipeline); when the
// pipeline did anything, a one-line summary of its work is printed per
// query. --stats-json prints one JSON object per query with the full
// engine statistics, including the per-pass optimizer counters.
//
// Frontend diagnostics are cumulative: a malformed model reports every
// error (file:line:col, with notes) before exiting, and lint warnings
// from the static-analysis passes print unless --no-lint. --Werror
// turns those warnings into exit status 3.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "diag_util.hpp"
#include "engine/reachability.hpp"
#include "engine/trace.hpp"
#include "ta/parser.hpp"

namespace {

/// The full Stats block as a single-line JSON object (stable keys, so
/// scripts can diff runs across configurations).
void printStatsJson(std::ostream& os, size_t query, bool reachable,
                    const engine::Stats& s, int opt) {
  os << "{\"query\": " << query << ", \"reachable\": "
     << (reachable ? "true" : "false")
     << ", \"statesExplored\": " << s.statesExplored
     << ", \"statesGenerated\": " << s.statesGenerated
     << ", \"statesStored\": " << s.statesStored
     << ", \"storedZones\": " << s.storedZones
     << ", \"bytesStored\": " << s.bytesStored
     << ", \"peakBytes\": " << s.peakBytes
     << ", \"peakStackDepth\": " << s.peakStackDepth
     << ", \"seconds\": " << s.seconds
     << ", \"cutoff\": " << static_cast<int>(s.cutoff)
     << ", \"extrapolationCoarsenings\": " << s.extrapolationCoarsenings
     << ", \"inactiveClocksFreed\": " << s.inactiveClocksFreed
     << ", \"statesInterned\": " << s.statesInterned
     << ", \"internHits\": " << s.internHits
     << ", \"internBytes\": " << s.internBytes
     << ", \"storeLookups\": " << s.storeLookups
     << ", \"storeProbeSteps\": " << s.storeProbeSteps
     << ", \"zonesMerged\": " << s.zonesMerged
     << ", \"storeBytes\": " << s.storeBytes
     << ", \"reopenings\": " << s.reopenings
     << ", \"simdKernelOps\": " << s.simdKernelOps
     << ", \"scalarKernelOps\": " << s.scalarKernelOps
     << ", \"lockContention\": " << s.lockContention
     << ", \"chunkSteals\": " << s.chunkSteals
     << ", \"frameSteals\": " << s.frameSteals
     << ", \"cancelledWorkers\": " << s.cancelledWorkers
     << ", \"optLevel\": " << opt
     << ", \"foldedExprs\": " << s.foldedExprs
     << ", \"removedLocations\": " << s.removedLocations
     << ", \"removedEdges\": " << s.removedEdges
     << ", \"simplifiedConstraints\": " << s.simplifiedConstraints
     << ", \"elidedVars\": " << s.elidedVars
     << ", \"unifiedClocks\": " << s.unifiedClocks
     << ", \"composedProcesses\": " << s.composedProcesses
     << ", \"optSeconds\": " << s.optSeconds
     << ", \"perThreadExplored\": [";
  for (size_t i = 0; i < s.perThreadExplored.size(); ++i) {
    os << (i ? ", " : "") << s.perThreadExplored[i];
  }
  os << "]}\n";
}

/// One line of optimizer provenance — only the passes that did work
/// ("optimizer: folded 12 exprs, removed 3 locations, unified 2
/// clocks"); empty when the pipeline found nothing to do.
std::string passSummary(const engine::Stats& s) {
  std::ostringstream out;
  const auto item = [&out](size_t n, const char* verb, const char* noun) {
    if (n == 0) return;
    out << (out.tellp() > 0 ? ", " : "") << verb << ' ' << n << ' ' << noun
        << (n == 1 ? "" : "s");
  };
  item(s.foldedExprs, "folded", "expr");
  item(s.removedLocations, "removed", "location");
  item(s.removedEdges, "removed", "edge");
  item(s.simplifiedConstraints, "simplified", "constraint");
  item(s.elidedVars, "elided", "var");
  item(s.unifiedClocks, "unified", "clock");
  item(s.composedProcesses, "composed", "process pair");
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: check_model <model-file> [bfs|dfs|rdfs] [--trace]"
                 " [--threads N] [--portfolio]"
                 " [--extrapolation none|global|location|lu]"
                 " [--stats-json] [--no-intern] [--merge-zones]"
                 " [--opt-level N] [--no-lint] [--Werror]\n";
    return 2;
  }
  // Frontend flags are scanned up front: loading happens before the
  // engine flag loop runs.
  examples::FrontendFlags frontend;
  for (int i = 2; i < argc; ++i) frontend.consume(argc, argv, i);

  const ta::FrontendResult parsed =
      examples::loadModelOrExit(argv[1], frontend);
  std::cout << "model: " << parsed.system->numAutomata() << " automata, "
            << parsed.system->numClocks() << " clocks, "
            << parsed.system->numVars() << " variables\n";

  engine::Options opts;
  opts.optLevel = frontend.optLevel;
  bool showTrace = false;
  bool statsJson = false;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "dfs") opts.order = engine::SearchOrder::kDfs;
    if (a == "rdfs") opts.order = engine::SearchOrder::kRandomDfs;
    if (a == "--trace") showTrace = true;
    if (a == "--stats-json") statsJson = true;
    if (a == "--no-intern") opts.internStates = false;
    if (a == "--merge-zones") opts.mergeZones = true;
    if (a == "--portfolio") opts.portfolio = true;
    if (a == "--threads" && i + 1 < argc) {
      opts.threads = static_cast<size_t>(std::atoi(argv[++i]));
    }
    if (a == "--extrapolation" && i + 1 < argc) {
      if (!engine::parseExtrapolation(argv[++i], &opts.extrapolation)) {
        std::cerr << "unknown extrapolation mode: " << argv[i] << "\n";
        return 2;
      }
    }
  }

  if (parsed.queries.empty()) {
    std::cout << "no queries in the model file\n";
    return 0;
  }
  int failures = 0;
  for (size_t q = 0; q < parsed.queries.size(); ++q) {
    const ta::ParsedQuery& pq = parsed.queries[q];
    engine::Goal goal{pq.locations, pq.predicate, pq.clockConstraints};
    engine::Reachability checker(*parsed.system, opts);
    const engine::Result res = checker.run(goal);
    std::cout << "query " << q + 1 << ": "
              << (res.reachable ? "REACHABLE" : "unreachable") << "  ("
              << res.stats.statesExplored << " states, " << res.stats.seconds
              << " s)\n";
    if (const std::string opt = passSummary(res.stats); !opt.empty()) {
      std::cout << "  optimizer: " << opt << "\n";
    }
    if (statsJson) {
      printStatsJson(std::cout, q + 1, res.reachable, res.stats,
                     opts.optLevel);
    }
    if (res.reachable && showTrace) {
      std::string err;
      const auto ct = engine::concretize(*parsed.system, res.trace, &err);
      if (ct.has_value()) {
        std::cout << engine::toString(*parsed.system, *ct);
      } else {
        std::cout << "  (trace concretization failed: " << err << ")\n";
        ++failures;
      }
    }
  }
  return failures == 0 ? 0 : 1;
}
