// Quickstart: build a tiny timed-automata network by hand, ask a
// reachability question, and print the resulting timed trace — the
// library's core loop in ~60 lines.
//
// The model is a two-process handshake: a worker that must warm up for
// at least 3 time units before signalling (but no later than 5), and a
// listener that records the signal.
//
// Usage: quickstart [--extrapolation none|global|location|lu]
//                    [--no-lint] [--Werror]
#include <cstring>
#include <iostream>

#include "diag_util.hpp"
#include "engine/reachability.hpp"
#include "engine/trace.hpp"
#include "ta/system.hpp"

int main(int argc, char** argv) {
  engine::Options opts;
  examples::FrontendFlags frontend;
  for (int i = 1; i < argc; ++i) {
    if (frontend.consume(argc, argv, i)) continue;
    if (std::strcmp(argv[i], "--extrapolation") == 0 && i + 1 < argc) {
      if (!engine::parseExtrapolation(argv[++i], &opts.extrapolation)) {
        std::cerr << "unknown extrapolation mode: " << argv[i] << "\n";
        return 2;
      }
    }
  }
  opts.optLevel = frontend.optLevel;

  ta::System sys;

  // Declarations: one clock, one integer variable, one channel.
  const ta::ClockId x = sys.addClock("x");
  const ta::VarId count = sys.addVar("count", 0);
  const ta::ChanId sig = sys.addChannel("signal");

  // Worker: warmup --[3 <= x <= 5] signal! --> done
  const ta::ProcId worker = sys.addAutomaton("worker");
  auto& w = sys.automaton(worker);
  const ta::LocId warmup = w.addLocation("warmup");
  const ta::LocId done = w.addLocation("done");
  w.setInvariant(warmup, {ta::ccLe(x, 5)});
  sys.edge(worker, warmup, done)
      .when(ta::ccGe(x, 3))
      .send(sig)
      .label("worker.signal");

  // Listener: idle --signal? count := count + 1--> got
  const ta::ProcId listener = sys.addAutomaton("listener");
  auto& l = sys.automaton(listener);
  const ta::LocId idle = l.addLocation("idle");
  const ta::LocId got = l.addLocation("got");
  sys.edge(listener, idle, got)
      .receive(sig)
      .assign(count, sys.rd(count) + 1);

  sys.finalize();
  examples::lintHandBuilt(sys, frontend, "quickstart");
  std::cout << sys.dump() << "\n";

  // Reachability: can the listener receive with count == 1?
  engine::Goal goal;
  goal.locations = {{listener, got}};
  goal.predicate = (sys.rd(count) == 1).ref();

  engine::Reachability checker(sys, opts);
  const engine::Result res = checker.run(goal);
  std::cout << "reachable: " << std::boolalpha << res.reachable << " ("
            << res.stats.statesExplored << " states explored)\n";
  if (!res.reachable) return 1;

  // Concretize the symbolic trace into exact delays and print it.
  std::string err;
  const auto trace = engine::concretize(sys, res.trace, &err);
  if (!trace.has_value()) {
    std::cerr << "concretize: " << err << "\n";
    return 1;
  }
  std::cout << "\ntimed trace (earliest realization):\n"
            << engine::toString(sys, *trace);
  std::cout << "\nthe signal fires at t=" << trace->makespan()
            << " — the guard's lower bound, as expected\n";
  return 0;
}
