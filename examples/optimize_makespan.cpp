// Time-optimal schedules — the paper's future-work direction of
// synthesizing "more optimal programs".
//
// Technique: add a never-reset global clock `gtime` to the plant model,
// constrain the goal with `gtime <= B`, and binary-search the smallest
// feasible bound B.  (This is how time-optimal reachability was done
// with plain UPPAAL before priced timed automata existed.)
//
// Usage: optimize_makespan [batches] [--threads N] [--portfolio]
//                          [--extrapolation none|global|location|lu]
//
// --threads N runs every probe of the binary search on the parallel
// work-stealing DFS; --portfolio races seeded DFS workers instead —
// useful on the tight (near-optimal) bounds where the heuristic order
// starts to backtrack. --extrapolation selects the zone-abstraction
// operator (default: per-location Extra+_LU).
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "engine/trace.hpp"
#include "plant/plant.hpp"

namespace {

/// Schedule with makespan bound B; returns the reachability result.
engine::Result tryBound(const plant::PlantConfig& cfg, int32_t bound,
                        size_t threads, bool portfolio,
                        engine::Extrapolation extrapolation) {
  const auto p = plant::buildPlant(cfg);
  engine::Goal goal = p->goal;
  if (bound >= 0) {
    goal.clockConstraints.push_back(ta::ccLe(p->makespan, bound));
  }
  engine::Options opts;
  opts.order = engine::SearchOrder::kDfs;
  opts.dfsReverse = true;
  opts.maxSeconds = 60.0;
  opts.threads = threads;
  opts.portfolio = portfolio;
  opts.extrapolation = extrapolation;
  engine::Reachability checker(p->sys, opts);
  return checker.run(goal);
}

}  // namespace

int main(int argc, char** argv) {
  int batches = 3;
  size_t threads = 1;
  bool portfolio = false;
  engine::Extrapolation extrapolation = engine::Extrapolation::kLocationLUPlus;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--portfolio") == 0) {
      portfolio = true;
    } else if (std::strcmp(argv[i], "--extrapolation") == 0 && i + 1 < argc) {
      if (!engine::parseExtrapolation(argv[++i], &extrapolation)) {
        std::cerr << "unknown extrapolation mode: " << argv[i] << "\n";
        return 2;
      }
    } else {
      batches = std::atoi(argv[i]);
    }
  }
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(batches);
  cfg.makespanClock = true;

  // First-found schedule: the baseline a plain guided DFS produces.
  const engine::Result first =
      tryBound(cfg, -1, threads, portfolio, extrapolation);
  if (!first.reachable) {
    std::cerr << "no schedule at all\n";
    return 1;
  }
  const auto p = plant::buildPlant(cfg);
  std::string err;
  const auto firstTrace = engine::concretize(p->sys, first.trace, &err);
  if (!firstTrace) {
    std::cerr << "concretize: " << err << "\n";
    return 1;
  }
  const int32_t firstMakespan = static_cast<int32_t>(firstTrace->makespan());
  std::cout << "first-found schedule: makespan " << firstMakespan << "\n";

  // Binary search the smallest feasible bound.
  int32_t lo = 0;
  int32_t hi = firstMakespan;
  while (lo < hi) {
    const int32_t mid = lo + (hi - lo) / 2;
    const engine::Result res =
        tryBound(cfg, mid, threads, portfolio, extrapolation);
    std::cout << "  bound " << mid << ": "
              << (res.reachable ? "feasible" : "infeasible") << " ("
              << res.stats.statesExplored << " states)\n";
    if (res.reachable) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  std::cout << "optimal makespan: " << lo << " (saved "
            << firstMakespan - lo << " time units over the first-found "
            << "schedule)\n";
  return 0;
}
