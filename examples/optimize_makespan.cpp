// Time-optimal schedules — the paper's future-work direction of
// synthesizing "more optimal programs".
//
// Two optimizers over the same plant model (synthesis::optimizeMakespan):
//
//  --optimizer binary     Add a never-reset global clock `gtime` to the
//                         plant, constrain the goal with `gtime <= B`,
//                         and binary-search the smallest feasible bound.
//                         (How time-optimal reachability was done with
//                         plain UPPAAL before priced timed automata.)
//  --optimizer bestfirst  One A* run over priced zones: cost-ordered
//                         expansion with the static remaining-time lower
//                         bound as heuristic and the first-found DFS
//                         schedule as the initial incumbent. Anytime —
//                         improving schedules stream as they are found.
//
// Usage: optimize_makespan [batches] [--optimizer binary|bestfirst]
//                          [--threads N] [--portfolio] [--stats-json]
//                          [--soft-guide SUBSTR=WEIGHT ...]
//                          [--max-seconds S]
//                          [--extrapolation none|global|location|lu]
//
// --soft-guide adds WEIGHT to the cost of every transition whose label
// contains SUBSTR (best-first only) — the DCSynth-style soft-requirement
// mechanism: prefer schedules avoiding penalized actions, at equal
// makespan. --stats-json prints one machine-readable line with the full
// optimization statistics.
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "diag_util.hpp"
#include "plant/plant.hpp"
#include "synthesis/schedule.hpp"

namespace {

void printStatsJson(std::ostream& os, const synthesis::OptimizeResult& r,
                    const char* optimizer) {
  os << "{\"optimizer\": \"" << optimizer << "\""
     << ", \"feasible\": " << (r.feasible ? "true" : "false")
     << ", \"optimal\": " << (r.optimal ? "true" : "false")
     << ", \"firstMakespan\": " << r.firstMakespan
     << ", \"optimalMakespan\": " << r.optimalMakespan
     << ", \"cost\": " << r.cost << ", \"runs\": " << r.runs
     << ", \"statesExplored\": " << r.stats.statesExplored
     << ", \"statesGenerated\": " << r.stats.statesGenerated
     << ", \"reopenings\": " << r.stats.reopenings
     << ", \"simdKernelOps\": " << r.stats.simdKernelOps
     << ", \"scalarKernelOps\": " << r.stats.scalarKernelOps
     << ", \"seconds\": " << r.seconds << ", \"incumbents\": [";
  for (size_t i = 0; i < r.incumbents.size(); ++i) {
    os << (i ? ", " : "") << r.incumbents[i];
  }
  os << "]}\n";
}

/// Per-process terminal locations for the best-first heuristic: every
/// automaton that has a "done"/"alldone" location necessarily sits in
/// it when the monitor's goal location is reached (batches enter `done`
/// by firing the very dump! the monitor counts), so the remaining-time
/// bound may draw from all of them, not just the monitor.
std::vector<std::vector<ta::LocId>> heuristicTargets(const plant::Plant& p) {
  std::vector<std::vector<ta::LocId>> targets(p.sys.numAutomata());
  for (size_t i = 0; i < p.sys.numAutomata(); ++i) {
    const ta::Automaton& a = p.sys.automaton(static_cast<ta::ProcId>(i));
    for (const char* name : {"done", "alldone"}) {
      const ta::LocId l = a.findLocation(name);
      if (l >= 0) {
        targets[i].push_back(l);
        break;
      }
    }
  }
  return targets;
}

}  // namespace

int main(int argc, char** argv) {
  int batches = 3;
  bool statsJson = false;
  synthesis::OptimizeOptions oo;
  oo.engine.order = engine::SearchOrder::kDfs;
  oo.engine.dfsReverse = true;
  oo.engine.maxSeconds = 60.0;
  const char* optimizerName = "binary";
  examples::FrontendFlags frontend;
  for (int i = 1; i < argc; ++i) {
    if (frontend.consume(argc, argv, i)) continue;
    if (std::strcmp(argv[i], "--optimizer") == 0 && i + 1 < argc) {
      optimizerName = argv[++i];
      if (!synthesis::parseOptimizer(optimizerName, &oo.optimizer)) {
        std::cerr << "unknown optimizer: " << optimizerName << "\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      oo.engine.threads = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--portfolio") == 0) {
      oo.engine.portfolio = true;
    } else if (std::strcmp(argv[i], "--max-seconds") == 0 && i + 1 < argc) {
      oo.engine.maxSeconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--stats-json") == 0) {
      statsJson = true;
    } else if (std::strcmp(argv[i], "--soft-guide") == 0 && i + 1 < argc) {
      const std::string spec = argv[++i];
      const size_t eq = spec.rfind('=');
      if (eq == std::string::npos || eq == 0) {
        std::cerr << "--soft-guide wants SUBSTR=WEIGHT, got: " << spec
                  << "\n";
        return 2;
      }
      engine::SoftGuide sg;
      sg.labelContains = spec.substr(0, eq);
      sg.weight = std::atoll(spec.c_str() + eq + 1);
      oo.engine.softGuides.push_back(std::move(sg));
    } else if (std::strcmp(argv[i], "--extrapolation") == 0 && i + 1 < argc) {
      if (!engine::parseExtrapolation(argv[++i], &oo.engine.extrapolation)) {
        std::cerr << "unknown extrapolation mode: " << argv[i] << "\n";
        return 2;
      }
    } else {
      batches = std::atoi(argv[i]);
    }
  }
  oo.engine.optLevel = frontend.optLevel;

  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(batches);
  cfg.makespanClock = true;
  const auto p = plant::buildPlant(cfg);
  examples::lintHandBuilt(p->sys, frontend, "optimize_makespan");
  oo.heuristicTargets = heuristicTargets(*p);

  const synthesis::OptimizeResult res =
      synthesis::optimizeMakespan(p->sys, p->goal, p->makespan, oo);
  if (!res.feasible) {
    std::cerr << "no schedule at all\n";
    return 1;
  }
  std::cout << "first-found schedule: makespan " << res.firstMakespan
            << "\n";
  for (size_t i = 1; i < res.incumbents.size(); ++i) {
    std::cout << "  improved to " << res.incumbents[i] << "\n";
  }
  std::cout << "optimal makespan: " << res.optimalMakespan << " (saved "
            << res.firstMakespan - res.optimalMakespan
            << " time units over the first-found schedule, " << res.runs
            << (res.runs == 1 ? " run, " : " runs, ")
            << res.stats.statesExplored << " states)\n";
  if (!res.optimal) {
    std::cout << "  (cut off before the optimum was proven)\n";
  }
  if (statsJson) printStatsJson(std::cout, res, optimizerName);
  return 0;
}
