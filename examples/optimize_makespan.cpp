// Time-optimal schedules — the paper's future-work direction of
// synthesizing "more optimal programs".
//
// Technique: add a never-reset global clock `gtime` to the plant model,
// constrain the goal with `gtime <= B`, and binary-search the smallest
// feasible bound B.  (This is how time-optimal reachability was done
// with plain UPPAAL before priced timed automata existed.)
//
// Usage: optimize_makespan [batches]
#include <cstdlib>
#include <iostream>

#include "engine/trace.hpp"
#include "plant/plant.hpp"

namespace {

/// Schedule with makespan bound B; returns the reachability result.
engine::Result tryBound(const plant::PlantConfig& cfg, int32_t bound) {
  const auto p = plant::buildPlant(cfg);
  engine::Goal goal = p->goal;
  if (bound >= 0) {
    goal.clockConstraints.push_back(ta::ccLe(p->makespan, bound));
  }
  engine::Options opts;
  opts.order = engine::SearchOrder::kDfs;
  opts.dfsReverse = true;
  opts.maxSeconds = 60.0;
  engine::Reachability checker(p->sys, opts);
  return checker.run(goal);
}

}  // namespace

int main(int argc, char** argv) {
  const int batches = argc > 1 ? std::atoi(argv[1]) : 3;
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(batches);
  cfg.makespanClock = true;

  // First-found schedule: the baseline a plain guided DFS produces.
  const engine::Result first = tryBound(cfg, -1);
  if (!first.reachable) {
    std::cerr << "no schedule at all\n";
    return 1;
  }
  const auto p = plant::buildPlant(cfg);
  std::string err;
  const auto firstTrace = engine::concretize(p->sys, first.trace, &err);
  if (!firstTrace) {
    std::cerr << "concretize: " << err << "\n";
    return 1;
  }
  const int32_t firstMakespan = static_cast<int32_t>(firstTrace->makespan());
  std::cout << "first-found schedule: makespan " << firstMakespan << "\n";

  // Binary search the smallest feasible bound.
  int32_t lo = 0;
  int32_t hi = firstMakespan;
  while (lo < hi) {
    const int32_t mid = lo + (hi - lo) / 2;
    const engine::Result res = tryBound(cfg, mid);
    std::cout << "  bound " << mid << ": "
              << (res.reachable ? "feasible" : "infeasible") << " ("
              << res.stats.statesExplored << " states)\n";
    if (res.reachable) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  std::cout << "optimal makespan: " << lo << " (saved "
            << firstMakespan - lo << " time units over the first-found "
            << "schedule)\n";
  return 0;
}
