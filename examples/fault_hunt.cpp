// Reproduce paper §6: run synthesized programs against the (simulated)
// physical plant for each of the three buggy model variants the authors
// discovered by execution, show the plant catching each error, then run
// the corrected model cleanly.
//
// Usage: fault_hunt [--extrapolation none|global|location|lu]
#include <cstring>
#include <iostream>

#include "engine/trace.hpp"
#include "plant/plant.hpp"
#include "rcx/plant_sim.hpp"
#include "synthesis/rcx_codegen.hpp"
#include "synthesis/schedule.hpp"

namespace {

engine::Extrapolation g_extrapolation = engine::Extrapolation::kLocationLUPlus;

bool pipeline(const plant::PlantConfig& cfg, const char* title) {
  std::cout << "\n--- " << title << " ---\n";
  const auto p = plant::buildPlant(cfg);
  engine::Options opts;
  opts.order = engine::SearchOrder::kDfs;
  opts.dfsReverse = true;
  opts.maxSeconds = 120.0;
  opts.extrapolation = g_extrapolation;
  engine::Reachability checker(p->sys, opts);
  const engine::Result res = checker.run(p->goal);
  if (!res.reachable) {
    std::cout << "  model checker found NO schedule\n";
    return false;
  }
  std::string err;
  const auto ct = engine::concretize(p->sys, res.trace, &err);
  if (!ct.has_value()) {
    std::cout << "  concretize failed: " << err << "\n";
    return false;
  }
  const synthesis::Schedule sched = synthesis::project(p->sys, *ct);
  synthesis::CodegenOptions cg;
  cg.ticksPerTimeUnit = 1000;
  const synthesis::RcxProgram prog = synthesis::synthesize(sched, cg);
  std::cout << "  model checker: schedule with " << sched.items.size()
            << " commands (model says everything is fine)\n";

  rcx::SimOptions sim;
  sim.messageLossProb = 0.0;
  sim.slackTicks = 3000;
  const rcx::SimResult out = rcx::runProgram(prog, cfg, 1000, sim);
  if (out.ok()) {
    std::cout << "  physical plant: RUN OK (" << out.exited
              << " batches completed)\n";
    return true;
  }
  std::cout << "  physical plant: RUN FAILED —\n";
  for (size_t e = 0; e < out.errors.size() && e < 4; ++e) {
    std::cout << "    tick " << out.errors[e].tick << ": "
              << out.errors[e].what << "\n";
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--extrapolation") == 0 && i + 1 < argc) {
      if (!engine::parseExtrapolation(argv[++i], &g_extrapolation)) {
        std::cerr << "unknown extrapolation mode: " << argv[i] << "\n";
        return 2;
      }
    }
  }
  std::cout << "Hunting the paper's three modelling errors by executing "
               "synthesized programs\nin the simulated plant (§6).\n";

  {
    plant::PlantConfig cfg;
    cfg.order = {plant::qualityA()};
    cfg.bugNoLiftDelay = true;
    pipeline(cfg, "error 1: crane moves horizontally while the pickup runs "
                  "(missing delay in the model)");
  }
  {
    plant::PlantConfig cfg;
    cfg.order = {plant::qualityA()};
    cfg.bugCasterSkipsFinalEject = true;
    pipeline(cfg, "error 3: caster does not turn out the final ladle "
                  "(missing command in the model)");
  }
  std::cout << "\n(error 2 — tailgating cranes — is a model-level hazard: "
               "see tests/rcx/fault_injection_test)\n";
  {
    plant::PlantConfig cfg;
    cfg.order = plant::standardOrder(3);
    const bool ok =
        pipeline(cfg, "corrected model, 3 batches (all errors fixed)");
    return ok ? 0 : 1;
  }
}
