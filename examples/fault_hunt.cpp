// Reproduce paper §6: run synthesized programs against the (simulated)
// physical plant for each of the three buggy model variants the authors
// discovered by execution, show the plant catching each error, then run
// the corrected model cleanly.
//
// The corrected run takes the fault-injection surface (--loss, --burst,
// --jitter, --drift, --crash, --dup), multiple seeded trials
// (--trials, --seed), the hardened codegen profile (--hardened) and
// machine-readable per-trial output (--stats-json); the buggy variants
// always run on a perfect channel so the modelling errors stay isolated
// from channel noise.
//
// Usage: fault_hunt [--extrapolation none|global|location|lu]
//                   [fault/trial flags — see sim_cli.hpp]
#include <cstring>
#include <iostream>

#include "diag_util.hpp"
#include "engine/trace.hpp"
#include "plant/plant.hpp"
#include "rcx/plant_sim.hpp"
#include "sim_cli.hpp"
#include "synthesis/rcx_codegen.hpp"
#include "synthesis/schedule.hpp"

namespace {

engine::Extrapolation g_extrapolation = engine::Extrapolation::kLocationLUPlus;
examples::FrontendFlags g_frontend;

bool pipeline(const plant::PlantConfig& cfg, const char* title,
              const simcli::Options& fault) {
  std::cout << "\n--- " << title << " ---\n";
  const auto p = plant::buildPlant(cfg);
  examples::lintHandBuilt(p->sys, g_frontend, title);
  engine::Options opts;
  opts.order = engine::SearchOrder::kDfs;
  opts.dfsReverse = true;
  opts.maxSeconds = 120.0;
  opts.extrapolation = g_extrapolation;
  opts.optLevel = g_frontend.optLevel;
  engine::Reachability checker(p->sys, opts);
  const engine::Result res = checker.run(p->goal);
  if (!res.reachable) {
    std::cout << "  model checker found NO schedule\n";
    return false;
  }
  std::string err;
  const auto ct = engine::concretize(p->sys, res.trace, &err);
  if (!ct.has_value()) {
    std::cout << "  concretize failed: " << err << "\n";
    return false;
  }
  const synthesis::Schedule sched = synthesis::project(p->sys, *ct);
  const synthesis::RcxProgram prog =
      synthesis::synthesize(sched, fault.codegen(1000));
  std::cout << "  model checker: schedule with " << sched.items.size()
            << " commands (model says everything is fine)\n";

  if (fault.trials > 1 || fault.statsJson) {
    const int failures = simcli::runTrials(prog, cfg, 1000, fault);
    std::cout << "  physical plant: " << (fault.trials - failures) << "/"
              << fault.trials << " trial(s) OK\n";
    return failures == 0;
  }
  const int failures = simcli::runTrials(prog, cfg, 1000, fault);
  if (failures == 0) {
    std::cout << "  physical plant: RUN OK\n";
    return true;
  }
  std::cout << "  physical plant: RUN FAILED (errors above)\n";
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  simcli::Options fault;
  for (int i = 1; i < argc; ++i) {
    if (simcli::consume(fault, argc, argv, i)) continue;
    if (g_frontend.consume(argc, argv, i)) continue;
    if (std::strcmp(argv[i], "--extrapolation") == 0 && i + 1 < argc) {
      if (!engine::parseExtrapolation(argv[++i], &g_extrapolation)) {
        std::cerr << "unknown extrapolation mode: " << argv[i] << "\n";
        return 2;
      }
    } else {
      std::cerr << "usage: fault_hunt [--extrapolation mode] [--no-lint]"
                   " [--Werror]\n  "
                << simcli::kUsage << "\n";
      return 2;
    }
  }
  std::cout << "Hunting the paper's three modelling errors by executing "
               "synthesized programs\nin the simulated plant (§6).\n";

  const simcli::Options nominal;  // buggy variants: perfect channel
  {
    plant::PlantConfig cfg;
    cfg.order = {plant::qualityA()};
    cfg.bugNoLiftDelay = true;
    pipeline(cfg, "error 1: crane moves horizontally while the pickup runs "
                  "(missing delay in the model)",
             nominal);
  }
  {
    plant::PlantConfig cfg;
    cfg.order = {plant::qualityA()};
    cfg.bugCasterSkipsFinalEject = true;
    pipeline(cfg, "error 3: caster does not turn out the final ladle "
                  "(missing command in the model)",
             nominal);
  }
  std::cout << "\n(error 2 — tailgating cranes — is a model-level hazard: "
               "see tests/rcx/fault_injection_test)\n";
  {
    plant::PlantConfig cfg;
    cfg.order = plant::standardOrder(3);
    const bool ok =
        pipeline(cfg, "corrected model, 3 batches (all errors fixed)", fault);
    return ok ? 0 : 1;
  }
}
