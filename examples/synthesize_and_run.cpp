// The full methodology of the paper's Figure 1, end to end:
//
//   plant model --UPPAAL-style reachability--> trace
//         --projection--> schedule (Table 2)
//         --textual substitution--> RCX control program (Figure 6)
//         --execution--> (simulated) physical plant, with the plant's
//                         physical invariants checked throughout.
//
// Usage: synthesize_and_run [batches] [lossProb]
//                           [--extrapolation none|global|location|lu]
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "engine/trace.hpp"
#include "plant/plant.hpp"
#include "rcx/plant_sim.hpp"
#include "synthesis/io.hpp"
#include "synthesis/rcx_codegen.hpp"
#include "synthesis/schedule.hpp"

int main(int argc, char** argv) {
  int batches = 3;
  double loss = 0.01;
  engine::Extrapolation extrapolation = engine::Extrapolation::kLocationLUPlus;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--extrapolation") == 0 && i + 1 < argc) {
      if (!engine::parseExtrapolation(argv[++i], &extrapolation)) {
        std::cerr << "unknown extrapolation mode: " << argv[i] << "\n";
        return 2;
      }
    } else if (positional == 0) {
      batches = std::atoi(argv[i]);
      ++positional;
    } else if (positional == 1) {
      loss = std::atof(argv[i]);
      ++positional;
    }
  }

  // 1. Model.
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(batches);
  const auto p = plant::buildPlant(cfg);
  std::cout << "[1] model: " << p->numAutomata() << " automata, "
            << p->numClocks() << " clocks\n";

  // 2. Schedule via guided reachability.
  engine::Options opts;
  opts.order = engine::SearchOrder::kDfs;
  opts.dfsReverse = true;
  opts.maxSeconds = 120.0;
  opts.extrapolation = extrapolation;
  engine::Reachability checker(p->sys, opts);
  const engine::Result res = checker.run(p->goal);
  if (!res.reachable) {
    std::cerr << "no schedule found\n";
    return 1;
  }
  std::string err;
  const auto ct = engine::concretize(p->sys, res.trace, &err);
  if (!ct || !engine::validate(p->sys, *ct, &err)) {
    std::cerr << "trace concretization failed: " << err << "\n";
    return 1;
  }
  const synthesis::Schedule sched = synthesis::project(p->sys, *ct);
  std::cout << "[2] schedule: " << sched.items.size() << " commands, makespan "
            << sched.makespan << " time units\n";

  // 3. Control program by textual substitution.
  synthesis::CodegenOptions cg;
  cg.ticksPerTimeUnit = 1000;
  const synthesis::RcxProgram prog = synthesis::synthesize(sched, cg);
  std::cout << "[3] program: " << prog.code.size() << " RCX instructions, "
            << prog.commands.size() << " commands\n";
  if (synthesis::writeScheduleFile(sched, "schedule.txt") &&
      synthesis::writeProgramFile(prog, "program.rcx")) {
    std::cout << "    wrote schedule.txt and program.rcx\n";
  }

  // 4. Execute in the simulated LEGO plant.
  rcx::SimOptions sim;
  sim.messageLossProb = loss;
  sim.slackTicks = 3000;
  const rcx::SimResult out = rcx::runProgram(prog, cfg, 1000, sim);
  std::cout << "[4] plant run: " << out.ticks << " ticks, " << out.exited
            << "/" << batches << " batches completed, "
            << out.commandsSent << " sends (" << out.commandsLost
            << " commands lost, " << out.acksLost << " acks lost, "
            << out.duplicatesIgnored << " duplicates ignored)\n";
  if (!out.ok()) {
    std::cout << "plant run FAILED:\n";
    for (const rcx::SimError& e : out.errors) {
      std::cout << "  tick " << e.tick << ": " << e.what << "\n";
    }
    return 1;
  }
  std::cout << "plant run OK — schedule executed without physical "
               "violations\n";
  return 0;
}
