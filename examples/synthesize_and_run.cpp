// The full methodology of the paper's Figure 1, end to end:
//
//   plant model --UPPAAL-style reachability--> trace
//         --projection--> schedule (Table 2)
//         --textual substitution--> RCX control program (Figure 6)
//         --execution--> (simulated) physical plant, with the plant's
//                         physical invariants checked throughout.
//
// The execution stage takes the full fault-injection surface: --loss,
// --burst, --jitter, --drift, --crash, --dup compose an adversarial
// channel; --trials runs several independently seeded executions;
// --hardened switches the codegen to the backoff + watchdog profile;
// --stats-json emits one JSON object per trial.
//
// Usage: synthesize_and_run [batches] [lossProb]
//                           [--extrapolation none|global|location|lu]
//                           [fault/trial flags — see sim_cli.hpp]
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "diag_util.hpp"
#include "engine/trace.hpp"
#include "plant/plant.hpp"
#include "rcx/plant_sim.hpp"
#include "sim_cli.hpp"
#include "synthesis/io.hpp"
#include "synthesis/rcx_codegen.hpp"
#include "synthesis/schedule.hpp"

int main(int argc, char** argv) {
  int batches = 3;
  engine::Extrapolation extrapolation = engine::Extrapolation::kLocationLUPlus;
  simcli::Options fault;
  fault.loss = 0.01;
  examples::FrontendFlags frontend;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (simcli::consume(fault, argc, argv, i)) continue;
    if (frontend.consume(argc, argv, i)) continue;
    if (std::strcmp(argv[i], "--extrapolation") == 0 && i + 1 < argc) {
      if (!engine::parseExtrapolation(argv[++i], &extrapolation)) {
        std::cerr << "unknown extrapolation mode: " << argv[i] << "\n";
        return 2;
      }
    } else if (positional == 0) {
      batches = std::atoi(argv[i]);
      ++positional;
    } else if (positional == 1) {
      fault.loss = std::atof(argv[i]);
      ++positional;
    } else {
      std::cerr << "usage: synthesize_and_run [batches] [lossProb]\n  "
                << simcli::kUsage << "\n";
      return 2;
    }
  }

  // 1. Model.
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(batches);
  const auto p = plant::buildPlant(cfg);
  examples::lintHandBuilt(p->sys, frontend, "synthesize_and_run");
  std::cout << "[1] model: " << p->numAutomata() << " automata, "
            << p->numClocks() << " clocks\n";

  // 2. Schedule via guided reachability.
  engine::Options opts;
  opts.order = engine::SearchOrder::kDfs;
  opts.dfsReverse = true;
  opts.maxSeconds = 120.0;
  opts.extrapolation = extrapolation;
  opts.optLevel = frontend.optLevel;
  engine::Reachability checker(p->sys, opts);
  const engine::Result res = checker.run(p->goal);
  if (!res.reachable) {
    std::cerr << "no schedule found\n";
    return 1;
  }
  std::string err;
  const auto ct = engine::concretize(p->sys, res.trace, &err);
  if (!ct || !engine::validate(p->sys, *ct, &err)) {
    std::cerr << "trace concretization failed: " << err << "\n";
    return 1;
  }
  const synthesis::Schedule sched = synthesis::project(p->sys, *ct);
  std::cout << "[2] schedule: " << sched.items.size() << " commands, makespan "
            << sched.makespan << " time units\n";

  // 3. Control program by textual substitution.
  const synthesis::RcxProgram prog =
      synthesis::synthesize(sched, fault.codegen(1000));
  std::cout << "[3] program: " << prog.code.size() << " RCX instructions, "
            << prog.commands.size() << " commands ("
            << (fault.hardened ? "hardened" : "classic") << " segments)\n";
  if (synthesis::writeScheduleFile(sched, "schedule.txt") &&
      synthesis::writeProgramFile(prog, "program.rcx")) {
    std::cout << "    wrote schedule.txt and program.rcx\n";
  }

  // 4. Execute in the simulated LEGO plant, N seeded trials.
  std::cout << "[4] plant run: " << fault.trials << " trial(s), seed "
            << fault.seed << ", loss " << fault.loss << "\n";
  const int failures = simcli::runTrials(prog, cfg, 1000, fault);
  if (failures > 0) {
    std::cout << "plant run FAILED in " << failures << "/" << fault.trials
              << " trial(s)\n";
    return 1;
  }
  std::cout << "plant run OK — " << fault.trials
            << " trial(s) executed without physical violations\n";
  return 0;
}
