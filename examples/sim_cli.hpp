// Shared command-line surface for the §6 execution examples: fault
// flags (--loss, --burst, --jitter, --drift, --crash, --dup), trial
// control (--seed, --trials), the hardened codegen profile
// (--hardened), and machine-readable output (--stats-json).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "rcx/fault.hpp"
#include "rcx/plant_sim.hpp"
#include "synthesis/rcx_codegen.hpp"

namespace simcli {

struct Options {
  double loss = 0.0;    ///< i.i.d. loss, both directions
  double burst = 0.0;   ///< Gilbert–Elliott P(Good->Bad); 0 = off
  int32_t jitter = 0;   ///< uniform extra latency bound, ticks
  double drift = 0.0;   ///< per-unit clock skew, ppm
  double crash = 0.0;   ///< per-unit per-tick crash probability
  double dup = 0.0;     ///< duplication probability
  uint64_t seed = 42;
  int trials = 1;
  bool statsJson = false;
  bool hardened = false;
  /// Resend discipline of the hardened retry segment. Defaults to
  /// kAuto: eager under high configured i.i.d. loss (every resend is an
  /// independent trial — waiting longer only stretches the schedule),
  /// backoff otherwise.
  synthesis::ResendPolicy resend = synthesis::ResendPolicy::kAuto;

  [[nodiscard]] rcx::FaultPlan plan() const {
    rcx::FaultPlan f = rcx::FaultPlan::iidLoss(loss);
    if (burst > 0.0) {
      f.burst.pGoodToBad = burst;
      f.burst.pBadToGood = 0.3;
      f.burst.lossBad = 0.9;
    }
    f.jitterTicks = jitter;
    f.driftPpm = drift;
    f.duplicateProb = dup;
    if (crash > 0.0) {
      f.crash.crashPerTick = crash;
      f.crash.downTicks = 2000;
    }
    return f;
  }

  [[nodiscard]] bool anyFault() const {
    return loss > 0.0 || burst > 0.0 || jitter > 0 || drift > 0.0 ||
           crash > 0.0 || dup > 0.0;
  }

  /// Slack the plant grants the program: generous once faults delay
  /// deliveries (matches the campaign's setting), tight otherwise.
  [[nodiscard]] int64_t slackTicks() const { return anyFault() ? 8000 : 3000; }

  [[nodiscard]] synthesis::CodegenOptions codegen(int32_t tpu) const {
    if (hardened) {
      return synthesis::CodegenOptions::hardened(
          tpu, slackTicks(),
          synthesis::CodegenOptions::resolveResend(resend, loss));
    }
    synthesis::CodegenOptions cg;
    cg.ticksPerTimeUnit = tpu;
    return cg;
  }
};

inline const char* kUsage =
    "[--loss p] [--burst p] [--jitter ticks] [--drift ppm] [--crash p]\n"
    "  [--dup p] [--seed s] [--trials n] [--hardened]\n"
    "  [--resend eager|backoff|auto] [--stats-json]";

/// Consume argv[i] (and a value argument when the flag takes one).
/// Returns false when the flag is not one of ours.
inline bool consume(Options& o, int argc, char** argv, int& i) {
  const auto value = [&](double* out) {
    if (i + 1 >= argc) return false;
    *out = std::atof(argv[++i]);
    return true;
  };
  const std::string a = argv[i];
  double v = 0.0;
  if (a == "--loss" && value(&v)) {
    o.loss = v;
  } else if (a == "--burst" && value(&v)) {
    o.burst = v;
  } else if (a == "--jitter" && value(&v)) {
    o.jitter = static_cast<int32_t>(v);
  } else if (a == "--drift" && value(&v)) {
    o.drift = v;
  } else if (a == "--crash" && value(&v)) {
    o.crash = v;
  } else if (a == "--dup" && value(&v)) {
    o.dup = v;
  } else if (a == "--seed" && value(&v)) {
    o.seed = static_cast<uint64_t>(v);
  } else if (a == "--trials" && value(&v)) {
    o.trials = static_cast<int>(v);
  } else if (a == "--hardened") {
    o.hardened = true;
  } else if (a == "--resend") {
    // Fail loudly: returning false here would hand the already-consumed
    // value token back to the caller's positional parsing.
    if (i + 1 >= argc) {
      std::cerr << "--resend needs a value: eager|backoff|auto\n";
      std::exit(2);
    }
    if (!synthesis::parseResendPolicy(argv[++i], &o.resend)) {
      std::cerr << "unknown resend policy: " << argv[i]
                << " (want eager|backoff|auto)\n";
      std::exit(2);
    }
  } else if (a == "--stats-json") {
    o.statsJson = true;
  } else {
    return false;
  }
  return true;
}

inline void printTrialJson(std::ostream& os, int trial, uint64_t seed,
                           const rcx::SimResult& r) {
  os << "{\"trial\": " << trial << ", \"seed\": " << seed
     << ", \"ok\": " << (r.ok() ? "true" : "false")
     << ", \"ticks\": " << r.ticks << ", \"exited\": " << r.exited
     << ", \"commandsSent\": " << r.commandsSent
     << ", \"commandsLost\": " << r.commandsLost
     << ", \"acksLost\": " << r.acksLost
     << ", \"duplicatesIgnored\": " << r.duplicatesIgnored
     << ", \"duplicatesInjected\": " << r.duplicatesInjected
     << ", \"reordered\": " << r.reordered
     << ", \"crashes\": " << r.crashes
     << ", \"crashDropped\": " << r.crashDropped
     << ", \"watchdogHalted\": " << (r.watchdogHalted ? "true" : "false")
     << ", \"errors\": " << r.errors.size() << "}\n";
}

/// Run `trials` independently seeded executions of the program in the
/// simulated plant. Returns the number of failed trials; per-trial JSON
/// goes to stdout when statsJson is set.
inline int runTrials(const synthesis::RcxProgram& prog,
                     const plant::PlantConfig& cfg, int32_t tpu,
                     const Options& o) {
  int failures = 0;
  for (int t = 0; t < o.trials; ++t) {
    const uint64_t seed = o.seed + static_cast<uint64_t>(t);
    rcx::SimOptions sim;
    sim.messageLossProb = 0.0;
    sim.faults = o.plan();
    sim.seed = seed;
    sim.slackTicks = o.slackTicks();
    const rcx::SimResult r = rcx::runProgram(prog, cfg, tpu, sim);
    if (!r.ok()) ++failures;
    if (o.statsJson) {
      printTrialJson(std::cout, t, seed, r);
    } else if (o.trials > 1) {
      std::cout << "  trial " << t << " (seed " << seed << "): "
                << (r.ok() ? "OK" : "FAILED") << ", " << r.ticks << " ticks, "
                << r.commandsSent << " sends\n";
    }
    if (!r.ok() && !o.statsJson) {
      for (size_t e = 0; e < r.errors.size() && e < 3; ++e) {
        std::cout << "    tick " << r.errors[e].tick << ": "
                  << r.errors[e].what << "\n";
      }
      if (r.watchdogHalted) std::cout << "    (watchdog halt)\n";
      if (r.errors.empty() && !r.programCompleted) {
        std::cout << "    (program did not complete)\n";
      }
    }
  }
  return failures;
}

}  // namespace simcli
