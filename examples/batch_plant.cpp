// Schedule the SIDMAR batch plant: build the timed-automata model for a
// production order, run guided reachability, and print the resulting
// schedule statistics and (optionally) the schedule itself.
//
// Usage: batch_plant [batches] [guides: all|some|none] [search: dfs|bfs|rdfs]
//                    [seconds] [--trace] [--threads N] [--portfolio]
//                    [--extrapolation none|global|location|lu]
//                    [--no-lint] [--Werror]
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "diag_util.hpp"
#include "engine/trace.hpp"
#include "plant/plant.hpp"

int main(int argc, char** argv) {
  int batches = 2;
  plant::GuideLevel guides = plant::GuideLevel::kAll;
  engine::Options opts;
  opts.order = engine::SearchOrder::kDfs;
  opts.maxSeconds = 120.0;
  bool showTrace = false;

  if (argc > 1) batches = std::atoi(argv[1]);
  if (argc > 2) {
    const std::string g = argv[2];
    guides = g == "none"   ? plant::GuideLevel::kNone
             : g == "some" ? plant::GuideLevel::kSome
                           : plant::GuideLevel::kAll;
  }
  if (argc > 3) {
    const std::string s = argv[3];
    opts.order = s == "bfs"    ? engine::SearchOrder::kBfs
                 : s == "rdfs" ? engine::SearchOrder::kRandomDfs
                               : engine::SearchOrder::kDfs;
  }
  if (argc > 4) opts.maxSeconds = std::atof(argv[4]);
  examples::FrontendFlags frontend;
  for (int i = 5; i < argc; ++i) {
    if (frontend.consume(argc, argv, i)) continue;
    if (std::string(argv[i]) == "--trace") showTrace = true;
    if (std::string(argv[i]) == "--reverse") opts.dfsReverse = true;
    if (std::string(argv[i]) == "--portfolio") opts.portfolio = true;
    if (std::string(argv[i]) == "--threads" && i + 1 < argc) {
      opts.threads = static_cast<size_t>(std::atoi(argv[++i]));
    }
    if (std::string(argv[i]) == "--extrapolation" && i + 1 < argc) {
      if (!engine::parseExtrapolation(argv[++i], &opts.extrapolation)) {
        std::cerr << "unknown extrapolation mode: " << argv[i] << "\n";
        return 2;
      }
    }
  }
  if (const char* s = std::getenv("SEED")) opts.seed = std::atoi(s);
  if (const char* m = std::getenv("MAX_MB")) opts.maxMemoryBytes = std::atoll(m) * 1024 * 1024;
  if (std::getenv("COMPACT")) opts.compactPassed = true;
  opts.optLevel = frontend.optLevel;

  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(batches);
  cfg.guides = guides;
  if (const char* gap = std::getenv("CAST_GAP")) cfg.castGap = std::atoi(gap);
  const auto p = plant::buildPlant(cfg);
  examples::lintHandBuilt(p->sys, frontend, "batch_plant");
  std::cout << "plant: " << p->numAutomata() << " automata, "
            << p->numClocks() << " clocks, " << p->sys.numVars()
            << " variables (" << plant::toString(guides) << ")\n";

  engine::Reachability checker(p->sys, opts);
  const engine::Result res = checker.run(p->goal);
  std::cout << "reachable=" << res.reachable
            << " explored=" << res.stats.statesExplored
            << " generated=" << res.stats.statesGenerated
            << " stored=" << res.stats.statesStored << " peakMB="
            << res.stats.peakMegabytes() << " sec=" << res.stats.seconds
            << " cutoff=" << static_cast<int>(res.stats.cutoff) << "\n";
  if (opts.threads > 1) {
    std::cout << "threads=" << opts.threads << " steals="
              << res.stats.chunkSteals + res.stats.frameSteals
              << " cancelled=" << res.stats.cancelledWorkers
              << " peakStack=" << res.stats.peakStackDepth << "\n";
  }
  if (!res.reachable) return 1;

  std::string err;
  const auto ct = engine::concretize(p->sys, res.trace, &err);
  if (!ct.has_value()) {
    std::cerr << "concretize failed: " << err << "\n";
    return 2;
  }
  if (!engine::validate(p->sys, *ct, &err)) {
    std::cerr << "validate failed: " << err << "\n";
    return 3;
  }
  std::cout << "schedule: " << ct->steps.size() << " steps, makespan "
            << ct->makespan() << " time units\n";
  if (showTrace) std::cout << engine::toString(p->sys, *ct);
  return 0;
}
