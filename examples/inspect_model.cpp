// Structural dump of the generated plant automata — the counterpart of
// the paper's Figures 3/4 (unguided vs guided batch automaton) and
// Figures 7/8/9 (recipe, crane, batch automata).
//
// Usage: inspect_model [guides: all|some|none] [process-name-substring]
//                       [--no-lint] [--Werror]
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "diag_util.hpp"
#include "plant/plant.hpp"

int main(int argc, char** argv) {
  plant::GuideLevel guides = plant::GuideLevel::kAll;
  examples::FrontendFlags frontend;
  std::string filter;
  // Frontend flags may appear anywhere; positionals keep their slots.
  std::vector<char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (!frontend.consume(argc, argv, i)) pos.push_back(argv[i]);
  }
  argc = static_cast<int>(pos.size()) + 1;
  for (size_t i = 0; i < pos.size(); ++i) argv[i + 1] = pos[i];
  if (argc > 1) {
    const std::string g = argv[1];
    guides = g == "none"   ? plant::GuideLevel::kNone
             : g == "some" ? plant::GuideLevel::kSome
                           : plant::GuideLevel::kAll;
  }
  if (argc > 2) filter = argv[2];

  plant::PlantConfig cfg;
  cfg.order = {plant::qualityAB(), plant::qualityA()};
  cfg.guides = guides;
  const auto p = plant::buildPlant(cfg);
  examples::lintHandBuilt(p->sys, frontend, "inspect_model");

  std::cout << "=== " << plant::toString(guides) << " ===\n";
  if (filter.empty()) {
    std::cout << p->sys.dump();
    return 0;
  }
  // Print only processes whose name contains the filter.
  std::istringstream dump(p->sys.dump());
  std::string line;
  bool printing = true;
  while (std::getline(dump, line)) {
    if (line.rfind("process ", 0) == 0) {
      printing = line.find(filter) != std::string::npos;
    }
    if (printing || line.rfind("system:", 0) == 0) {
      std::cout << line << "\n";
    }
  }
  return 0;
}
