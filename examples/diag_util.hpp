// Shared diagnostic plumbing for the example binaries.
//
// Every example accepts three shared flags:
//   --no-lint       skip the static-analysis passes (parse errors only)
//   --Werror        treat lint warnings as fatal (exit status 3)
//   --opt-level N   pre-exploration optimizer level (0/1/2, default 2;
//                   also accepted as --opt-level=N), forwarded into
//                   engine::Options.optLevel by every engine-running
//                   example
//
// Models loaded from .gta files go through loadModelOrExit(), which
// prints *all* frontend diagnostics (multiple errors per run, each
// with file:line:col and an optional note) instead of the old
// first-error-only behavior. Hand-built models go through
// lintHandBuilt(), which runs the same lint passes without source
// spans.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "ta/lint.hpp"
#include "ta/parser.hpp"

namespace examples {

struct FrontendFlags {
  bool lint = true;
  bool werror = false;
  /// Mirrors engine::Options.optLevel (0 = explore the model exactly
  /// as built; 2 = full pass pipeline).
  int optLevel = 2;

  /// Consume "--no-lint" / "--Werror" / "--opt-level=N"; returns true
  /// when `arg` was one of ours (the caller's flag loop should
  /// `continue`).
  bool consume(const std::string& arg) {
    if (arg == "--no-lint") {
      lint = false;
      return true;
    }
    if (arg == "--Werror") {
      werror = true;
      return true;
    }
    if (arg.rfind("--opt-level=", 0) == 0) {
      optLevel = std::atoi(arg.c_str() + 12);
      return true;
    }
    return false;
  }

  /// Index-advancing variant that additionally accepts the two-token
  /// "--opt-level N" form.
  bool consume(int argc, char** argv, int& i) {
    const std::string arg = argv[i];
    if (arg == "--opt-level" && i + 1 < argc) {
      optLevel = std::atoi(argv[++i]);
      return true;
    }
    return consume(arg);
  }
};

/// Load and parse `path`, printing every diagnostic to stderr. Exits 2
/// on read or parse errors, 3 when --Werror and any warning fired.
/// On return the result is `ok` and the system finalized.
inline ta::FrontendResult loadModelOrExit(const std::string& path,
                                          const FrontendFlags& flags) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  ta::FrontendOptions opts;
  opts.lint = flags.lint;
  ta::FrontendResult r = ta::parseModelEx(buf.str(), opts);
  if (!r.diagnostics.empty()) {
    std::cerr << ta::renderDiagnostics(r.diagnostics, path);
  }
  if (!r.ok) {
    std::cerr << path << ": " << r.errorCount() << " error(s)\n";
    std::exit(2);
  }
  if (flags.werror && r.warningCount() > 0) {
    std::cerr << path << ": " << r.warningCount()
              << " warning(s) treated as errors (--Werror)\n";
    std::exit(3);
  }
  return r;
}

/// Lint a hand-built (builder-API) system: print any warnings to
/// stderr, exit 3 under --Werror. Zero spans — the messages still name
/// the offending construct.
inline void lintHandBuilt(const ta::System& sys, const FrontendFlags& flags,
                          const std::string& what) {
  if (!flags.lint) return;
  std::vector<ta::Diagnostic> diags;
  ta::runLints(sys, &diags);
  if (!diags.empty()) {
    std::cerr << ta::renderDiagnostics(diags, what);
    if (flags.werror) {
      std::cerr << what << ": " << diags.size()
                << " warning(s) treated as errors (--Werror)\n";
      std::exit(3);
    }
  }
}

}  // namespace examples
