// Fischer's timed mutual-exclusion protocol — the classic UPPAAL demo,
// here to show the library on a model that is not the batch plant.
//
// Each process i:
//   idle --(id==0)-- set x:=0 --> trying (inv x<=D)
//   trying --(x<=D) id:=i, x:=0--> waiting
//   waiting --(x>K && id==i)--> critical
//   waiting --(id!=i)--> idle (retry)
//   critical --> idle, id:=0
//
// Mutual exclusion holds iff K >= D (the write must settle before
// anyone re-reads).  We verify both directions.
//
// Usage: fischer [processes] [D] [K] [--threads N] [--dfs|--rdfs]
//                [--portfolio] [--extrapolation none|global|location|lu]
//                [--no-lint] [--Werror]
//
// The default order is BFS; --dfs / --rdfs switch to the depth-first
// orders, which --threads N parallelizes with the work-stealing
// explorer (or, with --portfolio, a race of seeded DFS workers).
// --extrapolation selects the zone-abstraction operator (default: the
// per-location Extra+_LU; Fischer is where it shines — try
// `fischer 7 --extrapolation global` versus the default).
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "diag_util.hpp"
#include "engine/reachability.hpp"
#include "ta/system.hpp"

namespace {

struct Fischer {
  ta::System sys;
  std::vector<ta::ProcId> procs;
  std::vector<ta::LocId> critical;

  Fischer(int n, int d, int k) {
    const ta::VarId id = sys.addVar("id", 0);
    for (int i = 1; i <= n; ++i) {
      const ta::ClockId x = sys.addClock("x" + std::to_string(i));
      const ta::ProcId p = sys.addAutomaton("P" + std::to_string(i));
      procs.push_back(p);
      auto& a = sys.automaton(p);
      const ta::LocId idle = a.addLocation("idle");
      const ta::LocId trying = a.addLocation("trying");
      const ta::LocId waiting = a.addLocation("waiting");
      const ta::LocId crit = a.addLocation("critical");
      critical.push_back(crit);
      a.setInvariant(trying, {ta::ccLe(x, d)});
      sys.edge(p, idle, trying).guard(sys.rd(id) == 0).reset(x);
      sys.edge(p, trying, waiting)
          .when(ta::ccLe(x, d))
          .reset(x)
          .assign(id, i);
      sys.edge(p, waiting, crit)
          .when(ta::ccGt(x, k))
          .guard(sys.rd(id) == i);
      sys.edge(p, waiting, idle).guard(sys.rd(id) != i);
      sys.edge(p, crit, idle).assign(id, 0);
    }
    sys.finalize();
  }
};

}  // namespace

int main(int argc, char** argv) {
  size_t threads = 1;
  engine::SearchOrder order = engine::SearchOrder::kBfs;
  bool portfolio = false;
  engine::Extrapolation extrapolation = engine::Extrapolation::kLocationLUPlus;
  std::vector<int> positional;
  examples::FrontendFlags frontend;
  for (int i = 1; i < argc; ++i) {
    if (frontend.consume(argc, argv, i)) continue;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--dfs") == 0) {
      order = engine::SearchOrder::kDfs;
    } else if (std::strcmp(argv[i], "--rdfs") == 0) {
      order = engine::SearchOrder::kRandomDfs;
    } else if (std::strcmp(argv[i], "--portfolio") == 0) {
      portfolio = true;
    } else if (std::strcmp(argv[i], "--extrapolation") == 0 && i + 1 < argc) {
      if (!engine::parseExtrapolation(argv[++i], &extrapolation)) {
        std::cerr << "unknown extrapolation mode: " << argv[i] << "\n";
        return 2;
      }
    } else {
      positional.push_back(std::atoi(argv[i]));
    }
  }
  const int n = positional.size() > 0 ? positional[0] : 4;
  const int d = positional.size() > 1 ? positional[1] : 2;
  const int k = positional.size() > 2 ? positional[2] : 3;

  std::cout << "Fischer's protocol, " << n << " processes, D=" << d
            << " K=" << k << ", " << threads << " thread(s), "
            << (order == engine::SearchOrder::kBfs ? "bfs"
                : order == engine::SearchOrder::kDfs ? "dfs" : "rdfs")
            << (portfolio ? " portfolio" : "") << ", "
            << engine::extrapolationName(extrapolation)
            << " extrapolation\n";

  Fischer model(n, d, k);
  examples::lintHandBuilt(model.sys, frontend, "fischer");

  // Violation query: any two processes simultaneously critical.
  bool violated = false;
  for (size_t i = 0; i < model.procs.size() && !violated; ++i) {
    for (size_t j = i + 1; j < model.procs.size() && !violated; ++j) {
      engine::Goal bad;
      bad.locations = {{model.procs[i], model.critical[i]},
                       {model.procs[j], model.critical[j]}};
      engine::Options opts;
      opts.maxSeconds = 60.0;
      opts.threads = threads;
      opts.order = order;
      opts.portfolio = portfolio;
      opts.extrapolation = extrapolation;
      opts.optLevel = frontend.optLevel;
      engine::Reachability checker(model.sys, opts);
      const engine::Result res = checker.run(bad);
      if (res.reachable) {
        violated = true;
        std::cout << "MUTUAL EXCLUSION VIOLATED (P" << i + 1 << ", P"
                  << j + 1 << " both critical) — " << res.trace.steps.size()
                  << "-step witness, " << res.stats.statesExplored
                  << " states explored\n";
      }
    }
  }
  if (!violated) {
    std::cout << "mutual exclusion HOLDS (full state space explored)\n";
  }
  std::cout << "expected: " << (k >= d ? "holds (K >= D)" : "violated (K < D)")
            << "\n";
  return violated == (k >= d) ? 1 : 0;
}
