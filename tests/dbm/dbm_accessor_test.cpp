#include <gtest/gtest.h>

#include "dbm/dbm.hpp"

namespace dbm {
namespace {

TEST(DbmAccessors, InfimumAndUpperBound) {
  Dbm z = Dbm::zero(3);
  z.up();
  ASSERT_TRUE(z.constrainLower(1, 4, false));
  ASSERT_TRUE(z.constrainUpper(1, 9, false));
  EXPECT_EQ(z.infimum(1), 4);
  EXPECT_EQ(boundValue(z.upperBound(1)), 9);
  // Delay from the zero zone keeps x1 == x2, so x2 inherits both bounds.
  EXPECT_EQ(boundValue(z.upperBound(2)), 9);
  EXPECT_EQ(z.infimum(2), 4);
}

TEST(DbmAccessors, MemoryBytesScalesQuadratically) {
  const Dbm small = Dbm::zero(4);
  const Dbm big = Dbm::zero(40);
  EXPECT_GE(big.memoryBytes(), 50 * small.memoryBytes());
}

TEST(DbmAccessors, ToStringHasMatrixShape) {
  const Dbm z = Dbm::zero(2);
  const std::string s = z.toString();
  // 2x2 entries, tab-separated rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
  EXPECT_NE(s.find("<=0"), std::string::npos);
}

TEST(DbmAccessors, SetEmptyIsSticky) {
  Dbm z = Dbm::zero(3);
  z.setEmpty();
  EXPECT_TRUE(z.isEmpty());
  EXPECT_FALSE(z.constrain(1, 0, boundWeak(100)));
}

TEST(DbmAccessors, DownContainsTheOriginalZone) {
  Dbm z = Dbm::zero(3);
  z.up();
  ASSERT_TRUE(z.constrainLower(1, 3, false));
  ASSERT_TRUE(z.constrainUpper(1, 5, false));
  Dbm d = z;
  d.down();
  EXPECT_TRUE(d.includes(z));
  EXPECT_TRUE(d.containsPoint(std::vector<int64_t>{0, 0, 0}));
}

}  // namespace
}  // namespace dbm
