// Exhaustive-oracle property tests for the reduced ("minimal form")
// DBM representation.  Random bounded canonical DBMs with small
// constants are pushed through MinimalDbm and checked against
// brute-force enumeration of every integer clock valuation:
//
//  * reconstruct() must reproduce the original matrix raw-for-raw;
//  * a valuation satisfies the reduced edge set iff it lies in the
//    zone (shortest-path closure preserves the solution set of a
//    difference-constraint system, so the reduced form is a sound
//    membership test on its own);
//  * MinimalDbm::includes must agree with full-DBM inclusion;
//  * for weak-bound zones the inclusion answer is cross-checked
//    against the integer-point oracle: bounded DBMs are integral
//    polytopes (difference constraints are totally unimodular), so
//    "every integer point of B lies in A" is equivalent to real
//    inclusion B ⊆ A.
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "dbm/dbm.hpp"
#include "dbm/minimal.hpp"

namespace dbm {
namespace {

constexpr value_t kMaxConst = 4;  // clock values range over 0..kMaxConst

/// All integer valuations of `dim` clocks (reference clock pinned to 0,
/// the others ranging over 0..kMaxConst).
std::vector<std::vector<int64_t>> gridPoints(uint32_t dim) {
  std::vector<std::vector<int64_t>> pts{{std::vector<int64_t>(dim, 0)}};
  for (uint32_t c = 1; c < dim; ++c) {
    std::vector<std::vector<int64_t>> next;
    for (const auto& p : pts) {
      for (int64_t v = 0; v <= kMaxConst; ++v) {
        auto q = p;
        q[c] = v;
        next.push_back(std::move(q));
      }
    }
    pts = std::move(next);
  }
  return pts;
}

/// A random non-empty canonical zone, bounded so that every point lies
/// on the enumeration grid: each clock is capped at kMaxConst and the
/// extra random constraints use constants in [-kMaxConst, kMaxConst].
Dbm randomBoundedZone(std::mt19937_64& rng, uint32_t dim, bool weakOnly) {
  std::uniform_int_distribution<int> nCons(0, 5);
  std::uniform_int_distribution<uint32_t> clock(0, dim - 1);
  std::uniform_int_distribution<int> val(-kMaxConst, kMaxConst);
  std::uniform_int_distribution<int> strict(0, 1);
  for (;;) {
    Dbm z = Dbm::unconstrained(dim);
    bool ok = true;
    for (uint32_t c = 1; c < dim && ok; ++c) {
      ok = z.constrainUpper(c, kMaxConst, false);
    }
    const int n = nCons(rng);
    for (int k = 0; k < n && ok; ++k) {
      const uint32_t i = clock(rng);
      uint32_t j = clock(rng);
      if (i == j) j = (j + 1) % dim;
      const bool s = !weakOnly && strict(rng) != 0;
      ok = z.constrain(i, j, bound(val(rng), s));
    }
    if (ok && !z.isEmpty()) return z;
  }
}

/// Membership in the reduced edge set, evaluated directly on the edges
/// without reconstructing the closure.
bool reducedContains(const MinimalDbm& m, const std::vector<int64_t>& val) {
  for (const auto& e : m.entries()) {
    if (e.bound == kInfinity) continue;
    const int64_t diff = val[e.i] - val[e.j];
    const auto bv = static_cast<int64_t>(boundValue(e.bound));
    if (isStrict(e.bound) ? diff >= bv : diff > bv) return false;
  }
  return true;
}

class MinimalOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MinimalOracle, ReconstructRoundTripsExactly) {
  std::mt19937_64 rng(GetParam());
  for (const uint32_t dim : {3u, 4u}) {
    for (int iter = 0; iter < 40; ++iter) {
      const Dbm z = randomBoundedZone(rng, dim, /*weakOnly=*/false);
      const Dbm back = MinimalDbm::from(z).reconstruct();
      ASSERT_EQ(back.dimension(), dim);
      for (uint32_t i = 0; i < dim; ++i) {
        for (uint32_t j = 0; j < dim; ++j) {
          EXPECT_EQ(back.at(i, j), z.at(i, j))
              << "dim " << dim << " iter " << iter << " entry (" << i << ","
              << j << ")";
        }
      }
    }
  }
}

TEST_P(MinimalOracle, ReducedEdgesAreAnExactMembershipTest) {
  // Dropping derivable edges must not change the solution set: a grid
  // point satisfies the reduced edges iff the full zone contains it.
  std::mt19937_64 rng(GetParam());
  for (const uint32_t dim : {3u, 4u}) {
    const auto pts = gridPoints(dim);
    for (int iter = 0; iter < 25; ++iter) {
      const Dbm z = randomBoundedZone(rng, dim, /*weakOnly=*/false);
      const MinimalDbm m = MinimalDbm::from(z);
      for (const auto& p : pts) {
        EXPECT_EQ(reducedContains(m, p), z.containsPoint(p))
            << "dim " << dim << " iter " << iter;
      }
    }
  }
}

TEST_P(MinimalOracle, InclusionMatchesFullDbm) {
  std::mt19937_64 rng(GetParam());
  for (const uint32_t dim : {3u, 4u}) {
    for (int iter = 0; iter < 60; ++iter) {
      const Dbm a = randomBoundedZone(rng, dim, /*weakOnly=*/false);
      const Dbm b = randomBoundedZone(rng, dim, /*weakOnly=*/false);
      EXPECT_EQ(MinimalDbm::from(a).includes(b), a.includes(b))
          << "dim " << dim << " iter " << iter;
      // A zone always includes itself, reduced or not.
      EXPECT_TRUE(MinimalDbm::from(a).includes(a));
    }
  }
}

TEST_P(MinimalOracle, WeakInclusionAgreesWithIntegerPointOracle) {
  // Weak-bound bounded DBMs are integral polytopes, so real inclusion
  // is equivalent to containment of every integer point — an oracle
  // that knows nothing about matrices or closures.
  std::mt19937_64 rng(GetParam());
  for (const uint32_t dim : {3u, 4u}) {
    const auto pts = gridPoints(dim);
    for (int iter = 0; iter < 25; ++iter) {
      const Dbm a = randomBoundedZone(rng, dim, /*weakOnly=*/true);
      const Dbm b = randomBoundedZone(rng, dim, /*weakOnly=*/true);
      bool allPointsIncluded = true;
      for (const auto& p : pts) {
        if (b.containsPoint(p) && !a.containsPoint(p)) {
          allPointsIncluded = false;
          break;
        }
      }
      EXPECT_EQ(MinimalDbm::from(a).includes(b), allPointsIncluded)
          << "dim " << dim << " iter " << iter;
      EXPECT_EQ(a.includes(b), allPointsIncluded)
          << "dim " << dim << " iter " << iter;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimalOracle,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace dbm
