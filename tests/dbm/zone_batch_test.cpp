// ZoneBatch (the AoSoA passed-store arena) against the plain Dbm
// operations it transposes: scans (anySuperset / containsEqual /
// pruneSubsets) must agree with one-zone-at-a-time inclusion checks,
// and the batched normalization (upAll / closeAll) with per-zone
// up()/closure — on both the scalar and the vectorized dispatch path.
// Also the PR's Dbm special-member fixes: self-assignment and the
// hash invalidation contract of the batch extraction API (assignRaw).
#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "dbm/simd.hpp"
#include "dbm/zone_batch.hpp"

namespace dbm {
namespace {

Dbm randomZone(std::mt19937_64& rng, uint32_t dim, int box) {
  std::uniform_int_distribution<int> c(0, box);
  std::uniform_int_distribution<uint32_t> clk(1, dim - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> nCons(0, 4);
  for (;;) {
    Dbm z = Dbm::unconstrained(dim);
    bool ok = true;
    const int n = nCons(rng);
    for (int k = 0; k < n && ok; ++k) {
      const uint32_t i = clk(rng);
      if (coin(rng) != 0) {
        ok = z.constrain(i, 0, boundWeak(c(rng)));
      } else {
        ok = z.constrain(0, i, boundWeak(-c(rng)));
      }
    }
    if (ok && !z.isEmpty()) return z;
  }
}

/// Reference closure: textbook Floyd–Warshall with saturating bound
/// addition, independent of the SIMD kernels under test.
void referenceClose(std::vector<raw_t>& m, uint32_t dim) {
  for (uint32_t k = 0; k < dim; ++k) {
    for (uint32_t i = 0; i < dim; ++i) {
      const raw_t ik = m[i * dim + k];
      if (ik == kInfinity) continue;
      for (uint32_t j = 0; j < dim; ++j) {
        const raw_t kj = m[k * dim + j];
        if (kj == kInfinity) continue;
        const raw_t via = boundAdd(ik, kj);
        if (via < m[i * dim + j]) m[i * dim + j] = via;
      }
    }
  }
}

class ZoneBatchTest : public ::testing::TestWithParam<simd::Level> {
 protected:
  void SetUp() override { simd::forceLevel(GetParam()); }
  void TearDown() override { simd::forceLevel(simd::detectedLevel()); }
};

TEST_P(ZoneBatchTest, PushRoundTripsThroughAtAndZoneAt) {
  std::mt19937_64 rng(7);
  const uint32_t dim = 4;
  ZoneBatch batch(dim);
  std::vector<Dbm> ref;
  for (int i = 0; i < 21; ++i) {  // 2 full blocks + a partial one
    ref.push_back(randomZone(rng, dim, 9));
    batch.push(ref.back());
  }
  ASSERT_EQ(batch.size(), ref.size());
  for (size_t z = 0; z < ref.size(); ++z) {
    EXPECT_EQ(batch.zoneAt(z), ref[z]) << "zone " << z;
    for (uint32_t i = 0; i < dim; ++i) {
      for (uint32_t j = 0; j < dim; ++j) {
        ASSERT_EQ(batch.at(z, i, j), ref[z].at(i, j));
      }
    }
  }
}

TEST_P(ZoneBatchTest, ScansAgreeWithPerZoneInclusion) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    std::mt19937_64 rng(seed);
    const uint32_t dim = 2 + static_cast<uint32_t>(seed % 3);
    ZoneBatch batch(dim);
    std::vector<Dbm> ref;
    const size_t n = 1 + static_cast<size_t>(rng() % 20);
    for (size_t i = 0; i < n; ++i) {
      ref.push_back(randomZone(rng, dim, 5));
      batch.push(ref.back());
    }
    for (int q = 0; q < 8; ++q) {
      // Mix fresh zones with exact copies of stored ones so the equal /
      // superset / subset branches all trigger.
      const Dbm query = (q % 3 == 0) ? ref[rng() % ref.size()]
                                     : randomZone(rng, dim, 5);
      const bool super = std::any_of(ref.begin(), ref.end(), [&](const Dbm& z) {
        return z.includes(query);
      });
      const bool equal = std::any_of(ref.begin(), ref.end(), [&](const Dbm& z) {
        return z == query;
      });
      EXPECT_EQ(batch.anySuperset(query.rawData()), super)
          << "seed " << seed << " query " << q;
      EXPECT_EQ(batch.containsEqual(query.rawData()), equal)
          << "seed " << seed << " query " << q;
    }
  }
}

TEST_P(ZoneBatchTest, PruneSubsetsMatchesBruteForce) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    std::mt19937_64 rng(seed);
    const uint32_t dim = 2 + static_cast<uint32_t>(seed % 3);
    ZoneBatch batch(dim);
    std::vector<Dbm> ref;
    const size_t n = 1 + static_cast<size_t>(rng() % 20);
    for (size_t i = 0; i < n; ++i) {
      ref.push_back(randomZone(rng, dim, 4));  // small box: subsets common
      batch.push(ref.back());
    }
    const Dbm query = randomZone(rng, dim, 4);
    std::vector<Dbm> expect;
    for (const Dbm& z : ref) {
      if (!query.includes(z)) expect.push_back(z);
    }
    const size_t removed = batch.pruneSubsets(query.rawData());
    EXPECT_EQ(removed, ref.size() - expect.size()) << "seed " << seed;
    ASSERT_EQ(batch.size(), expect.size()) << "seed " << seed;
    // Survivors as a multiset — pruning swap-removes, order is free.
    std::vector<Dbm> got;
    for (size_t i = 0; i < batch.size(); ++i) got.push_back(batch.zoneAt(i));
    for (const Dbm& z : expect) {
      const auto it = std::find(got.begin(), got.end(), z);
      ASSERT_NE(it, got.end()) << "seed " << seed << ": survivor lost";
      got.erase(it);
    }
    EXPECT_TRUE(got.empty()) << "seed " << seed;
  }
}

TEST_P(ZoneBatchTest, SwapRemoveKeepsRemainingZones) {
  std::mt19937_64 rng(11);
  const uint32_t dim = 3;
  ZoneBatch batch(dim);
  std::vector<Dbm> ref;
  for (int i = 0; i < 10; ++i) {
    ref.push_back(randomZone(rng, dim, 9));
    batch.push(ref.back());
  }
  while (!ref.empty()) {
    const size_t idx = rng() % ref.size();
    batch.swapRemove(idx);
    std::swap(ref[idx], ref.back());
    ref.pop_back();
    ASSERT_EQ(batch.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(batch.zoneAt(i), ref[i]);
    }
  }
}

TEST_P(ZoneBatchTest, UpAllMatchesPerZoneUp) {
  std::mt19937_64 rng(23);
  const uint32_t dim = 4;
  ZoneBatch batch(dim);
  std::vector<Dbm> ref;
  for (int i = 0; i < 13; ++i) {
    ref.push_back(randomZone(rng, dim, 9));
    batch.push(ref.back());
  }
  batch.upAll();
  for (size_t i = 0; i < ref.size(); ++i) {
    ref[i].up();
    EXPECT_EQ(batch.zoneAt(i), ref[i]) << "zone " << i;
  }
}

TEST_P(ZoneBatchTest, CloseAllMatchesReferenceClosure) {
  // Feed deliberately non-canonical matrices (a canonical zone with one
  // entry weakened) so the closure has real work in every lane.
  std::mt19937_64 rng(31);
  const uint32_t dim = 4;
  ZoneBatch batch(dim);
  std::vector<std::vector<raw_t>> raws;
  for (int z = 0; z < 19; ++z) {
    const Dbm base = randomZone(rng, dim, 9);
    std::vector<raw_t> m(base.rawData().begin(), base.rawData().end());
    const uint32_t i = 1 + static_cast<uint32_t>(rng() % (dim - 1));
    const uint32_t j = static_cast<uint32_t>(rng() % dim);
    if (i != j && m[i * dim + j] != kInfinity) {
      m[i * dim + j] = boundWeak(boundValue(m[i * dim + j]) + 3);
    }
    batch.push(std::span<const raw_t>(m));
    raws.push_back(std::move(m));
  }
  batch.closeAll();
  for (size_t z = 0; z < raws.size(); ++z) {
    referenceClose(raws[z], dim);
    ASSERT_FALSE(batch.zoneEmpty(z)) << "zone " << z;
    for (uint32_t i = 0; i < dim; ++i) {
      for (uint32_t j = 0; j < dim; ++j) {
        ASSERT_EQ(batch.at(z, i, j), raws[z][i * dim + j])
            << "zone " << z << " entry (" << i << "," << j << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Dispatch, ZoneBatchTest,
    ::testing::Values(simd::Level::kScalar, simd::detectedLevel()),
    [](const ::testing::TestParamInfo<simd::Level>& info) {
      return simd::levelName(info.param);
    });

// -- Dbm special members / hash contract --------------------------------

TEST(DbmHash, CopiedZoneMutatedThroughAssignRawDiverges) {
  Dbm a = Dbm::unconstrained(3);
  ASSERT_TRUE(a.constrain(1, 0, boundWeak(5)));
  const size_t ha = a.hash();  // memoize before copying
  Dbm b(a);
  EXPECT_EQ(b.hash(), ha);  // identical content may share the hash

  Dbm other = Dbm::unconstrained(3);
  ASSERT_TRUE(other.constrain(2, 0, boundWeak(1)));
  b.assignRaw(other.rawData());
  EXPECT_EQ(b, other);
  EXPECT_EQ(b.hash(), other.hash()) << "stale memoized hash survived";
  EXPECT_NE(b.hash(), ha);
  EXPECT_EQ(a.hash(), ha) << "source zone must be unaffected";
}

TEST(DbmHash, SelfAssignmentIsANoOp) {
  Dbm a = Dbm::unconstrained(4);
  ASSERT_TRUE(a.constrain(1, 2, boundWeak(3)));
  const Dbm snapshot(a);
  Dbm* alias = &a;  // defeat -Wself-assign
  a = *alias;
  EXPECT_EQ(a, snapshot);
  a = std::move(*alias);
  EXPECT_EQ(a, snapshot);
}

}  // namespace
}  // namespace dbm
