// Property-based DBM tests: random sequences of zone operations are
// cross-checked against brute-force point sampling over a small grid.
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "dbm/dbm.hpp"

namespace dbm {
namespace {

constexpr int64_t kGrid = 8;  // sample clock values 0..kGrid

/// Enumerate all grid points of a dim-3 valuation space.
std::vector<std::vector<int64_t>> gridPoints() {
  std::vector<std::vector<int64_t>> pts;
  for (int64_t a = 0; a <= kGrid; ++a) {
    for (int64_t b = 0; b <= kGrid; ++b) {
      pts.push_back({0, a, b});
    }
  }
  return pts;
}

class RandomZone {
 public:
  explicit RandomZone(uint64_t seed) : rng_(seed) {}

  /// A random non-empty canonical zone of dimension 3 built from a few
  /// random constraints over the unconstrained zone.
  Dbm next() {
    for (;;) {
      Dbm z = Dbm::unconstrained(3);
      std::uniform_int_distribution<int> nCons(0, 4);
      std::uniform_int_distribution<int> clock(0, 2);
      std::uniform_int_distribution<int> val(-kGrid, kGrid);
      std::uniform_int_distribution<int> strict(0, 1);
      const int n = nCons(rng_);
      bool ok = true;
      for (int k = 0; k < n && ok; ++k) {
        const uint32_t i = static_cast<uint32_t>(clock(rng_));
        uint32_t j = static_cast<uint32_t>(clock(rng_));
        if (i == j) j = (j + 1) % 3;
        ok = z.constrain(i, j, bound(val(rng_), strict(rng_) != 0));
      }
      if (ok && !z.isEmpty()) return z;
    }
  }

  std::mt19937_64& rng() { return rng_; }

 private:
  std::mt19937_64 rng_;
};

class DbmProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DbmProperty, InclusionAgreesWithPointwiseContainment) {
  RandomZone gen(GetParam());
  const auto pts = gridPoints();
  for (int iter = 0; iter < 50; ++iter) {
    const Dbm a = gen.next();
    const Dbm b = gen.next();
    if (a.includes(b)) {
      for (const auto& p : pts) {
        if (b.containsPoint(p)) {
          EXPECT_TRUE(a.containsPoint(p))
              << "a claims to include b but misses a point of b";
        }
      }
    } else {
      // Not-included zones need no witness on the integer grid (the
      // separating point may be fractional), so only the positive
      // direction is checked.
    }
  }
}

TEST_P(DbmProperty, IntersectionIsPointwiseAnd) {
  RandomZone gen(GetParam());
  const auto pts = gridPoints();
  for (int iter = 0; iter < 50; ++iter) {
    const Dbm a = gen.next();
    const Dbm b = gen.next();
    Dbm c = a;
    const bool nonEmpty = c.intersect(b);
    for (const auto& p : pts) {
      const bool expect = a.containsPoint(p) && b.containsPoint(p);
      EXPECT_EQ(c.containsPoint(p), expect);
      if (expect) {
        EXPECT_TRUE(nonEmpty);
      }
    }
  }
}

TEST_P(DbmProperty, UpIsPointwiseDelayClosure) {
  RandomZone gen(GetParam());
  const auto pts = gridPoints();
  for (int iter = 0; iter < 30; ++iter) {
    const Dbm a = gen.next();
    Dbm u = a;
    u.up();
    // Every point of a delayed by d stays in up(a).
    for (const auto& p : pts) {
      if (!a.containsPoint(p)) continue;
      for (int64_t d = 0; d <= 3; ++d) {
        const std::vector<int64_t> q{0, p[1] + d, p[2] + d};
        EXPECT_TRUE(u.containsPoint(q));
      }
    }
    // Conversely every grid point of up(a) is some point of a delayed.
    for (const auto& p : pts) {
      if (!u.containsPoint(p)) continue;
      bool witness = false;
      const int64_t dmax = std::min(p[1], p[2]);
      for (int64_t d = 0; d <= dmax && !witness; ++d) {
        witness = a.containsPoint(std::vector<int64_t>{0, p[1] - d, p[2] - d});
      }
      // The witness may be fractional; only insist when a is "integral
      // enough": all its bounds weak.
      bool allWeak = true;
      for (uint32_t i = 0; i < 3; ++i) {
        for (uint32_t j = 0; j < 3; ++j) {
          if (a.at(i, j) != kInfinity && isStrict(a.at(i, j)) && i != j) {
            allWeak = false;
          }
        }
      }
      if (allWeak) {
        EXPECT_TRUE(witness) << "grid point in up(a) with no delay witness";
      }
    }
  }
}

TEST_P(DbmProperty, ResetIsPointwiseProjection) {
  RandomZone gen(GetParam());
  const auto pts = gridPoints();
  std::uniform_int_distribution<int> vdist(0, 3);
  for (int iter = 0; iter < 30; ++iter) {
    const Dbm a = gen.next();
    const int64_t v = vdist(gen.rng());
    Dbm r = a;
    r.reset(1, static_cast<value_t>(v));
    for (const auto& p : pts) {
      // Point is in reset(a) iff p[1] == v and some x1 value completes
      // it into a point of a.
      bool expect = false;
      if (p[1] == v) {
        for (int64_t x = 0; x <= kGrid * 2 && !expect; ++x) {
          expect = a.containsPoint(std::vector<int64_t>{0, x, p[2]});
        }
      }
      // Same fractional-witness caveat as above.
      if (expect) {
        EXPECT_TRUE(r.containsPoint(p));
      }
      if (p[1] != v) {
        EXPECT_FALSE(r.containsPoint(p));
      }
    }
  }
}

TEST_P(DbmProperty, CloseIsIdempotentAndPreservesPoints) {
  RandomZone gen(GetParam());
  const auto pts = gridPoints();
  for (int iter = 0; iter < 30; ++iter) {
    Dbm a = gen.next();
    Dbm closed = a;
    ASSERT_TRUE(closed.close());
    EXPECT_EQ(closed.relation(a), Relation::kEqual)
        << "zones from constrain() should already be canonical";
    for (const auto& p : pts) {
      EXPECT_EQ(a.containsPoint(p), closed.containsPoint(p));
    }
  }
}

TEST_P(DbmProperty, ExtrapolationOnlyGrowsZone) {
  RandomZone gen(GetParam());
  const std::vector<value_t> max{0, 3, 3};
  const auto pts = gridPoints();
  for (int iter = 0; iter < 50; ++iter) {
    const Dbm a = gen.next();
    Dbm e = a;
    e.extrapolateMaxBounds(max);
    EXPECT_TRUE(e.includes(a));
    // Below the max bounds the zone is unchanged.
    for (const auto& p : pts) {
      if (p[1] <= 3 && p[2] <= 3 && a.containsPoint(p)) {
        EXPECT_TRUE(e.containsPoint(p));
      }
    }
  }
}

TEST_P(DbmProperty, LUExtrapolationIsCoarserThanMaxBounds) {
  RandomZone gen(GetParam());
  const std::vector<value_t> max{0, 3, 3};
  // Pointwise-smaller LU bounds; -1 marks a clock never compared on
  // that side (treated as 0 by the operator).
  const std::vector<value_t> lower{0, 1, -1};
  const std::vector<value_t> upper{0, 3, 1};
  const auto pts = gridPoints();
  for (int iter = 0; iter < 50; ++iter) {
    const Dbm a = gen.next();
    Dbm m = a;
    m.extrapolateMaxBounds(max);
    Dbm lu = a;
    lu.extrapolateLUBounds(max, max);
    // Abstraction lattice: with L = U = M, Extra+_LU still applies the
    // additional diagonal/lower-facet rules, so it abstracts at least
    // as much as Extra_M...
    EXPECT_TRUE(lu.includes(a));
    EXPECT_TRUE(lu.includes(m));
    // ...and shrinking the bound vectors only coarsens further.
    Dbm luSmall = a;
    luSmall.extrapolateLUBounds(lower, upper);
    EXPECT_TRUE(luSmall.includes(lu));
    // Idempotence: a second application is a no-op.
    Dbm again = lu;
    again.extrapolateLUBounds(max, max);
    EXPECT_EQ(again.relation(lu), Relation::kEqual);
    // Soundness floor: points below every bound are never lost.
    for (const auto& p : pts) {
      if (p[1] <= 1 && p[2] <= 1 && a.containsPoint(p)) {
        EXPECT_TRUE(luSmall.containsPoint(p));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbmProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace dbm
