#include "dbm/bound.hpp"

#include <gtest/gtest.h>

namespace dbm {
namespace {

TEST(Bound, EncodingRoundTrip) {
  EXPECT_EQ(boundValue(boundWeak(5)), 5);
  EXPECT_FALSE(isStrict(boundWeak(5)));
  EXPECT_EQ(boundValue(boundStrict(5)), 5);
  EXPECT_TRUE(isStrict(boundStrict(5)));
  EXPECT_EQ(boundValue(boundWeak(-7)), -7);
  EXPECT_EQ(boundValue(boundStrict(-7)), -7);
}

TEST(Bound, OrderMatchesSemantics) {
  // (n, <) < (n, <=) < (n+1, <)
  EXPECT_LT(boundStrict(3), boundWeak(3));
  EXPECT_LT(boundWeak(3), boundStrict(4));
  EXPECT_LT(boundWeak(-1), boundStrict(0));
  EXPECT_LT(boundStrict(0), boundWeak(0));
}

TEST(Bound, InfinityIsLargest) {
  EXPECT_GT(kInfinity, boundWeak(kMaxValue));
  EXPECT_GT(kInfinity, boundStrict(kMaxValue));
}

TEST(Bound, AdditionWeakWeak) {
  EXPECT_EQ(boundAdd(boundWeak(2), boundWeak(3)), boundWeak(5));
}

TEST(Bound, AdditionStrictDominates) {
  EXPECT_EQ(boundAdd(boundStrict(2), boundWeak(3)), boundStrict(5));
  EXPECT_EQ(boundAdd(boundWeak(2), boundStrict(3)), boundStrict(5));
  EXPECT_EQ(boundAdd(boundStrict(2), boundStrict(3)), boundStrict(5));
}

TEST(Bound, AdditionWithNegatives) {
  EXPECT_EQ(boundAdd(boundWeak(-4), boundWeak(3)), boundWeak(-1));
  EXPECT_EQ(boundAdd(boundStrict(-4), boundWeak(4)), boundStrict(0));
}

TEST(Bound, InfinityAbsorbs) {
  EXPECT_EQ(boundAdd(kInfinity, boundWeak(3)), kInfinity);
  EXPECT_EQ(boundAdd(boundStrict(-100), kInfinity), kInfinity);
  EXPECT_EQ(boundAdd(kInfinity, kInfinity), kInfinity);
}

TEST(Bound, Negation) {
  // not(x <= 3)  ==  x > 3  ==  (-3, <) on the flipped difference
  EXPECT_EQ(boundNegate(boundWeak(3)), boundStrict(-3));
  EXPECT_EQ(boundNegate(boundStrict(3)), boundWeak(-3));
  EXPECT_EQ(boundNegate(boundNegate(boundWeak(9))), boundWeak(9));
}

TEST(Bound, ToString) {
  EXPECT_EQ(boundToString(boundWeak(3)), "<=3");
  EXPECT_EQ(boundToString(boundStrict(-2)), "<-2");
  EXPECT_EQ(boundToString(kInfinity), "<inf");
}

TEST(Bound, ZeroBoundIsWeakZero) {
  EXPECT_EQ(boundValue(kZeroBound), 0);
  EXPECT_FALSE(isStrict(kZeroBound));
}

}  // namespace
}  // namespace dbm
