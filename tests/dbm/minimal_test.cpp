// Tests of the reduced "minimal constraint form" (compact passed-list
// representation).
#include <random>

#include <gtest/gtest.h>

#include "dbm/minimal.hpp"

namespace dbm {
namespace {

Dbm randomZone(uint32_t dim, std::mt19937_64& rng) {
  std::uniform_int_distribution<int> clock(0, static_cast<int>(dim) - 1);
  std::uniform_int_distribution<int> val(-8, 8);
  std::uniform_int_distribution<int> strict(0, 1);
  for (;;) {
    Dbm z = Dbm::unconstrained(dim);
    bool ok = true;
    for (uint32_t k = 0; k < dim + 2 && ok; ++k) {
      const auto i = static_cast<uint32_t>(clock(rng));
      auto j = static_cast<uint32_t>(clock(rng));
      if (i == j) j = (j + 1) % dim;
      ok = z.constrain(i, j, bound(val(rng), strict(rng) != 0));
    }
    if (ok && !z.isEmpty()) return z;
  }
}

TEST(MinimalDbm, ReconstructionIsExactOnRandomZones) {
  std::mt19937_64 rng(11);
  for (int iter = 0; iter < 200; ++iter) {
    const Dbm z = randomZone(4, rng);
    const MinimalDbm m = MinimalDbm::from(z);
    const Dbm back = m.reconstruct();
    EXPECT_EQ(back.relation(z), Relation::kEqual)
        << "reduction lost information:\n"
        << z.toString() << "vs\n"
        << back.toString();
  }
}

TEST(MinimalDbm, ReductionIsSmallerThanFullMatrix) {
  std::mt19937_64 rng(12);
  size_t total = 0, full = 0;
  for (int iter = 0; iter < 50; ++iter) {
    const Dbm z = randomZone(6, rng);
    total += MinimalDbm::from(z).size();
    full += 6 * 5;  // off-diagonal entries
  }
  EXPECT_LT(total, full / 2) << "reduction should drop most entries";
}

TEST(MinimalDbm, ZeroZoneReducesToPointConstraints) {
  const Dbm z = Dbm::zero(4);
  const MinimalDbm m = MinimalDbm::from(z);
  EXPECT_EQ(m.reconstruct().relation(z), Relation::kEqual);
  // A point zone of n clocks needs at most 2n constraints (a cycle
  // through the zero-equivalence class would be n+... allow 2n).
  EXPECT_LE(m.size(), 8u);
}

TEST(MinimalDbm, InclusionAgreesWithFullCheck) {
  std::mt19937_64 rng(13);
  for (int iter = 0; iter < 300; ++iter) {
    const Dbm a = randomZone(4, rng);
    const Dbm b = randomZone(4, rng);
    const MinimalDbm ma = MinimalDbm::from(a);
    EXPECT_EQ(ma.includes(b), a.includes(b));
  }
}

TEST(MinimalDbm, IncludesItselfAndSubsets) {
  std::mt19937_64 rng(14);
  for (int iter = 0; iter < 100; ++iter) {
    const Dbm a = randomZone(4, rng);
    const MinimalDbm ma = MinimalDbm::from(a);
    EXPECT_TRUE(ma.includes(a));
    Dbm sub = a;
    if (sub.constrain(1, 0, boundWeak(3)) && !sub.isEmpty()) {
      EXPECT_TRUE(ma.includes(sub));
    }
  }
}

TEST(MinimalDbm, MemorySmallerThanFullDbmForSparseZones) {
  // A delayed zone of a large system is mostly unconstrained: the
  // reduced form must be far smaller than the n^2 matrix.
  Dbm z = Dbm::zero(64);
  z.up();
  const MinimalDbm m = MinimalDbm::from(z);
  EXPECT_LT(m.memoryBytes(), z.memoryBytes() / 4);
  EXPECT_EQ(m.reconstruct().relation(z), Relation::kEqual);
}

}  // namespace
}  // namespace dbm
