#include "dbm/federation.hpp"

#include <gtest/gtest.h>

namespace dbm {
namespace {

Dbm interval(value_t lo, value_t hi) {
  Dbm z = Dbm::zero(2);
  z.up();
  EXPECT_TRUE(z.constrainLower(1, lo, false));
  EXPECT_TRUE(z.constrainUpper(1, hi, false));
  return z;
}

TEST(Federation, StartsEmpty) {
  const Federation f = Federation::empty(2);
  EXPECT_TRUE(f.isEmpty());
  EXPECT_EQ(f.size(), 0u);
}

TEST(Federation, AddAndContain) {
  Federation f(2);
  f.add(interval(0, 2));
  f.add(interval(5, 7));
  EXPECT_EQ(f.size(), 2u);
  EXPECT_TRUE(f.containsPoint(std::vector<int64_t>{0, 1}));
  EXPECT_TRUE(f.containsPoint(std::vector<int64_t>{0, 6}));
  EXPECT_FALSE(f.containsPoint(std::vector<int64_t>{0, 3}));
}

TEST(Federation, AddCoveredZoneIsNoOp) {
  Federation f(2);
  f.add(interval(0, 10));
  f.add(interval(2, 5));  // covered
  EXPECT_EQ(f.size(), 1u);
}

TEST(Federation, AddCoveringZoneReplacesMembers) {
  Federation f(2);
  f.add(interval(1, 2));
  f.add(interval(4, 5));
  f.add(interval(0, 10));  // covers both
  EXPECT_EQ(f.size(), 1u);
  EXPECT_TRUE(f.containsPoint(std::vector<int64_t>{0, 7}));
}

TEST(Federation, EmptyZoneIgnored) {
  Federation f(2);
  Dbm e = Dbm::zero(2);
  e.setEmpty();
  f.add(e);
  EXPECT_TRUE(f.isEmpty());
}

TEST(Federation, IncludesZoneSingleMember) {
  Federation f(2);
  f.add(interval(0, 10));
  EXPECT_TRUE(f.includesZone(interval(2, 5)));
  EXPECT_FALSE(f.includesZone(interval(8, 12)));
}

TEST(Federation, IntersectDropsEmptiedMembers) {
  Federation f(2);
  f.add(interval(0, 2));
  f.add(interval(5, 7));
  f.intersect(interval(6, 10));
  EXPECT_EQ(f.size(), 1u);
  EXPECT_TRUE(f.containsPoint(std::vector<int64_t>{0, 6}));
  EXPECT_FALSE(f.containsPoint(std::vector<int64_t>{0, 1}));
}

TEST(Federation, UpDelaysAllMembers) {
  Federation f(2);
  f.add(interval(0, 1));
  f.up();
  EXPECT_TRUE(f.containsPoint(std::vector<int64_t>{0, 50}));
}

}  // namespace
}  // namespace dbm
