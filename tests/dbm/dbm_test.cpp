#include "dbm/dbm.hpp"

#include <gtest/gtest.h>

namespace dbm {
namespace {

TEST(Dbm, ZeroZoneContainsOnlyOrigin) {
  const Dbm z = Dbm::zero(3);
  EXPECT_FALSE(z.isEmpty());
  EXPECT_TRUE(z.containsPoint(std::vector<int64_t>{0, 0, 0}));
  EXPECT_FALSE(z.containsPoint(std::vector<int64_t>{0, 1, 0}));
  EXPECT_FALSE(z.containsPoint(std::vector<int64_t>{0, 0, 2}));
}

TEST(Dbm, UnconstrainedContainsEverythingNonNegative) {
  const Dbm z = Dbm::unconstrained(3);
  EXPECT_TRUE(z.containsPoint(std::vector<int64_t>{0, 0, 0}));
  EXPECT_TRUE(z.containsPoint(std::vector<int64_t>{0, 100, 3}));
  EXPECT_FALSE(z.containsPoint(std::vector<int64_t>{0, -1, 3}));
}

TEST(Dbm, UpAllowsUniformDelay) {
  Dbm z = Dbm::zero(3);
  z.up();
  EXPECT_TRUE(z.containsPoint(std::vector<int64_t>{0, 5, 5}));
  // Delay is uniform: clocks drift together from (0, 0).
  EXPECT_FALSE(z.containsPoint(std::vector<int64_t>{0, 5, 4}));
}

TEST(Dbm, ConstrainUpperAndLower) {
  Dbm z = Dbm::zero(3);
  z.up();
  ASSERT_TRUE(z.constrainUpper(1, 10, /*strict=*/false));  // x1 <= 10
  ASSERT_TRUE(z.constrainLower(1, 4, /*strict=*/false));   // x1 >= 4
  EXPECT_TRUE(z.containsPoint(std::vector<int64_t>{0, 4, 4}));
  EXPECT_TRUE(z.containsPoint(std::vector<int64_t>{0, 10, 10}));
  EXPECT_FALSE(z.containsPoint(std::vector<int64_t>{0, 3, 3}));
  EXPECT_FALSE(z.containsPoint(std::vector<int64_t>{0, 11, 11}));
}

TEST(Dbm, ContradictoryConstraintsEmptyTheZone) {
  Dbm z = Dbm::zero(2);
  z.up();
  ASSERT_TRUE(z.constrainUpper(1, 3, false));
  EXPECT_FALSE(z.constrainLower(1, 5, false));
  EXPECT_TRUE(z.isEmpty());
}

TEST(Dbm, StrictBoundaryExcluded) {
  Dbm z = Dbm::zero(2);
  z.up();
  ASSERT_TRUE(z.constrainUpper(1, 3, /*strict=*/true));  // x1 < 3
  EXPECT_TRUE(z.containsPoint(std::vector<int64_t>{0, 2}));
  EXPECT_FALSE(z.containsPoint(std::vector<int64_t>{0, 3}));
}

TEST(Dbm, ResetPinsClock) {
  Dbm z = Dbm::zero(3);
  z.up();
  ASSERT_TRUE(z.constrainLower(1, 5, false));
  z.reset(2, 0);
  // x2 == 0 while x1 kept its >= 5 history.
  EXPECT_TRUE(z.containsPoint(std::vector<int64_t>{0, 5, 0}));
  EXPECT_FALSE(z.containsPoint(std::vector<int64_t>{0, 5, 1}));
  EXPECT_FALSE(z.containsPoint(std::vector<int64_t>{0, 4, 0}));
}

TEST(Dbm, ResetToNonZeroValue) {
  Dbm z = Dbm::zero(2);
  z.up();
  z.reset(1, 7);
  EXPECT_TRUE(z.containsPoint(std::vector<int64_t>{0, 7}));
  EXPECT_FALSE(z.containsPoint(std::vector<int64_t>{0, 0}));
}

TEST(Dbm, ResetThenDelayTracksDifference) {
  Dbm z = Dbm::zero(3);
  z.up();
  ASSERT_TRUE(z.constrainUpper(1, 10, false));
  ASSERT_TRUE(z.constrainLower(1, 10, false));  // x1 == 10
  z.reset(2, 0);                                // x2 := 0
  z.up();
  // Difference x1 - x2 == 10 must be preserved under delay.
  EXPECT_TRUE(z.containsPoint(std::vector<int64_t>{0, 13, 3}));
  EXPECT_FALSE(z.containsPoint(std::vector<int64_t>{0, 13, 4}));
}

TEST(Dbm, DownReachesPastValuations) {
  Dbm z = Dbm::zero(2);
  z.up();
  ASSERT_TRUE(z.constrainLower(1, 5, false));  // x1 >= 5
  z.down();
  EXPECT_TRUE(z.containsPoint(std::vector<int64_t>{0, 2}));
  EXPECT_TRUE(z.containsPoint(std::vector<int64_t>{0, 0}));
}

TEST(Dbm, CopyClock) {
  Dbm z = Dbm::zero(3);
  z.up();
  ASSERT_TRUE(z.constrainUpper(1, 8, false));
  ASSERT_TRUE(z.constrainLower(1, 8, false));  // x1 == 8
  z.reset(2, 0);
  z.copyClock(2, 1);  // x2 := x1
  EXPECT_TRUE(z.containsPoint(std::vector<int64_t>{0, 8, 8}));
  EXPECT_FALSE(z.containsPoint(std::vector<int64_t>{0, 8, 0}));
}

TEST(Dbm, FreeClockRemovesConstraints) {
  Dbm z = Dbm::zero(3);
  z.up();
  ASSERT_TRUE(z.constrainUpper(1, 3, false));
  z.freeClock(1);
  EXPECT_TRUE(z.containsPoint(std::vector<int64_t>{0, 100, 3}));
  EXPECT_FALSE(z.containsPoint(std::vector<int64_t>{0, -1, 3}));
}

TEST(Dbm, RelationReflexive) {
  Dbm z = Dbm::zero(3);
  z.up();
  EXPECT_EQ(z.relation(z), Relation::kEqual);
  EXPECT_TRUE(z.includes(z));
}

TEST(Dbm, RelationSubsetSuperset) {
  Dbm big = Dbm::zero(2);
  big.up();
  Dbm small = big;
  ASSERT_TRUE(small.constrainUpper(1, 5, false));
  EXPECT_EQ(small.relation(big), Relation::kSubset);
  EXPECT_EQ(big.relation(small), Relation::kSuperset);
  EXPECT_TRUE(big.includes(small));
  EXPECT_FALSE(small.includes(big));
}

TEST(Dbm, RelationDifferent) {
  Dbm a = Dbm::zero(2);
  a.up();
  Dbm b = a;
  ASSERT_TRUE(a.constrainUpper(1, 5, false));   // x1 in [0,5]
  ASSERT_TRUE(b.constrainLower(1, 3, false));   // x1 in [3,inf)
  EXPECT_EQ(a.relation(b), Relation::kDifferent);
}

TEST(Dbm, IntersectOverlapping) {
  Dbm a = Dbm::zero(2);
  a.up();
  ASSERT_TRUE(a.constrainUpper(1, 5, false));
  Dbm b = Dbm::zero(2);
  b.up();
  ASSERT_TRUE(b.constrainLower(1, 3, false));
  ASSERT_TRUE(a.intersect(b));
  EXPECT_TRUE(a.containsPoint(std::vector<int64_t>{0, 4}));
  EXPECT_FALSE(a.containsPoint(std::vector<int64_t>{0, 2}));
  EXPECT_FALSE(a.containsPoint(std::vector<int64_t>{0, 6}));
}

TEST(Dbm, IntersectDisjointIsEmpty) {
  Dbm a = Dbm::zero(2);
  a.up();
  ASSERT_TRUE(a.constrainUpper(1, 2, false));
  Dbm b = Dbm::zero(2);
  b.up();
  ASSERT_TRUE(b.constrainLower(1, 5, false));
  EXPECT_FALSE(a.intersect(b));
  EXPECT_TRUE(a.isEmpty());
}

TEST(Dbm, SatisfiesMatchesConstrain) {
  Dbm z = Dbm::zero(2);
  z.up();
  ASSERT_TRUE(z.constrainUpper(1, 5, false));
  EXPECT_TRUE(z.satisfies(0, 1, boundWeak(-5)));    // x1 >= 5 touches edge
  EXPECT_FALSE(z.satisfies(0, 1, boundWeak(-6)));   // x1 >= 6 impossible
  EXPECT_FALSE(z.satisfies(0, 1, boundStrict(-5))); // x1 > 5 impossible
}

TEST(Dbm, ExtrapolationWidensAboveMax) {
  Dbm z = Dbm::zero(2);
  z.up();
  ASSERT_TRUE(z.constrainLower(1, 100, false));  // x1 >= 100
  ASSERT_TRUE(z.constrainUpper(1, 120, false));  // x1 <= 120
  const std::vector<value_t> max{0, 10};
  z.extrapolateMaxBounds(max);
  // Bounds above the max constant 10 are abstracted: zone now includes
  // everything above 10 and no longer the concrete [100,120] window only.
  EXPECT_TRUE(z.containsPoint(std::vector<int64_t>{0, 1000}));
  EXPECT_TRUE(z.containsPoint(std::vector<int64_t>{0, 11}));
  EXPECT_FALSE(z.containsPoint(std::vector<int64_t>{0, 5}));
}

TEST(Dbm, ExtrapolationBelowMaxUntouched) {
  Dbm z = Dbm::zero(2);
  z.up();
  ASSERT_TRUE(z.constrainUpper(1, 5, false));
  const Dbm before = z;
  const std::vector<value_t> max{0, 10};
  z.extrapolateMaxBounds(max);
  EXPECT_EQ(z.relation(before), Relation::kEqual);
}

TEST(Dbm, ExtrapolationIsIdempotent) {
  Dbm z = Dbm::zero(3);
  z.up();
  ASSERT_TRUE(z.constrainLower(1, 50, false));
  ASSERT_TRUE(z.constrainUpper(2, 80, false));
  const std::vector<value_t> max{0, 7, 9};
  z.extrapolateMaxBounds(max);
  Dbm again = z;
  again.extrapolateMaxBounds(max);
  EXPECT_EQ(again.relation(z), Relation::kEqual);
}

TEST(Dbm, HashEqualForEqualZones) {
  Dbm a = Dbm::zero(3);
  a.up();
  Dbm b = Dbm::zero(3);
  b.up();
  EXPECT_EQ(a.hash(), b.hash());
  ASSERT_TRUE(b.constrainUpper(1, 3, false));
  EXPECT_NE(a.hash(), b.hash());
}

TEST(Dbm, CloseDetectsNegativeCycle) {
  Dbm z = Dbm::unconstrained(3);
  z.setRaw(1, 2, boundWeak(-1));  // x1 - x2 <= -1
  z.setRaw(2, 1, boundWeak(-1));  // x2 - x1 <= -1  -> cycle sum -2
  EXPECT_FALSE(z.close());
  EXPECT_TRUE(z.isEmpty());
}

TEST(Dbm, EmptyZoneIncludesNothing) {
  Dbm z = Dbm::zero(2);
  z.setEmpty();
  Dbm w = Dbm::zero(2);
  EXPECT_FALSE(z.includes(w));
  EXPECT_TRUE(w.includes(z));
  EXPECT_FALSE(z.containsPoint(std::vector<int64_t>{0, 0}));
}

}  // namespace
}  // namespace dbm
