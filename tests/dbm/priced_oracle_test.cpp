// Priced-zone cost semantics against a brute-force integer-point
// oracle (the merge_oracle_test recipe): enumerate every integer
// valuation of a bounding box, keep the ones inside the zone, and take
// the cheapest. Zones built from weak integer constraints are integral
// polyhedra, so the symbolic minima (AffineCost::minOver / minOverInt,
// PricedDbm::minCost) must agree exactly with the enumerated minimum;
// the strict-bound integer adjustment is pinned by deterministic cases.
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "dbm/priced.hpp"

namespace dbm {
namespace {

Dbm randomZone(std::mt19937_64& rng, uint32_t dim, int box) {
  std::uniform_int_distribution<int> c(0, box);
  std::uniform_int_distribution<uint32_t> clk(1, dim - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> nCons(1, 5);
  for (;;) {
    Dbm z = Dbm::unconstrained(dim);
    bool ok = true;
    const int n = nCons(rng);
    for (int k = 0; k < n && ok; ++k) {
      const uint32_t i = clk(rng);
      switch (coin(rng) * 2 + coin(rng)) {
        case 0:
          ok = z.constrain(i, 0, boundWeak(c(rng)));
          break;
        case 1:
          ok = z.constrain(0, i, boundWeak(-c(rng)));
          break;
        default: {
          uint32_t j = clk(rng);
          if (j == i) j = (j % (dim - 1)) + 1;
          if (j == i) break;
          ok = z.constrain(i, j, boundWeak(c(rng)));
          break;
        }
      }
    }
    if (ok && !z.isEmpty()) return z;
  }
}

/// Cheapest integer point of `z` inside [0, box]^(dim-1) under `cost`,
/// or nullopt when the box holds no point of the zone.
std::optional<int64_t> bruteMin(const Dbm& z, const AffineCost& cost,
                                int box) {
  const uint32_t dim = z.dimension();
  std::vector<int64_t> val(dim, 0);
  std::optional<int64_t> best;
  size_t total = 1;
  for (uint32_t k = 1; k < dim; ++k) total *= static_cast<size_t>(box) + 1;
  for (size_t it = 0; it < total; ++it) {
    size_t rest = it;
    for (uint32_t k = 1; k < dim; ++k) {
      val[k] = static_cast<int64_t>(rest % (static_cast<size_t>(box) + 1));
      rest /= static_cast<size_t>(box) + 1;
    }
    if (!z.containsPoint(val)) continue;
    const int64_t c = cost.at(val);
    if (!best || c < *best) best = c;
  }
  return best;
}

TEST(PricedOracle, AffineMinimaMatchIntegerEnumeration) {
  // Weak integer zones: the affine minimum sits on an integer vertex,
  // so minOver, minOverInt and the enumeration all coincide.
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    std::mt19937_64 rng(seed);
    const uint32_t dim = 2 + static_cast<uint32_t>(seed % 2);
    const int box = 4;
    const Dbm z = randomZone(rng, dim, box);
    AffineCost cost;
    cost.constant = static_cast<int64_t>(rng() % 5);
    cost.coeff.assign(dim, 0);
    for (uint32_t i = 1; i < dim; ++i) {
      cost.coeff[i] = static_cast<int64_t>(rng() % 4);
    }
    const auto oracle = bruteMin(z, cost, box + 2);
    ASSERT_TRUE(oracle.has_value())
        << "seed " << seed << ": weak zone lost its integer points";
    EXPECT_EQ(cost.minOver(z), *oracle) << "seed " << seed;
    EXPECT_EQ(cost.minOverInt(z), *oracle) << "seed " << seed;
  }
}

TEST(PricedOracle, MinCostMatchesCostClockEnumeration) {
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    std::mt19937_64 rng(seed);
    const uint32_t dim = 3;
    const int box = 4;
    const Dbm z = randomZone(rng, dim, box);
    const uint32_t costClock = 1 + static_cast<uint32_t>(rng() % (dim - 1));
    const int64_t offset = static_cast<int64_t>(rng() % 7);
    const PricedDbm pz(z, costClock, offset);

    AffineCost clockOnly;
    clockOnly.coeff.assign(dim, 0);
    clockOnly.coeff[costClock] = 1;
    const auto oracle = bruteMin(z, clockOnly, box + 2);
    ASSERT_TRUE(oracle.has_value()) << "seed " << seed;
    EXPECT_EQ(pz.minCost(), *oracle + offset) << "seed " << seed;
  }
}

TEST(PricedOracle, ConstrainCostIsTightAroundMinCost) {
  // The binary-search agreement property: `zone ∩ {cost <= B}` is
  // non-empty exactly for B >= minCost.
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    std::mt19937_64 rng(seed);
    const Dbm z = randomZone(rng, 3, 5);
    const uint32_t costClock = 1 + static_cast<uint32_t>(rng() % 2);
    const int64_t offset = static_cast<int64_t>(rng() % 5);
    const PricedDbm pz(z, costClock, offset);
    const int64_t m = pz.minCost();

    PricedDbm below(z, costClock, offset);
    EXPECT_FALSE(below.constrainCost(m - 1) && !below.empty())
        << "seed " << seed << ": budget below the minimum satisfied";
    PricedDbm at(z, costClock, offset);
    EXPECT_TRUE(at.constrainCost(m) && !at.empty())
        << "seed " << seed << ": minimum cost not achievable";
    EXPECT_EQ(at.minCost(), m) << "seed " << seed;
  }
}

TEST(PricedOracle, StrictLowerBoundRoundsUpToNextInteger) {
  Dbm z = Dbm::unconstrained(2);
  ASSERT_TRUE(z.constrain(0, 1, boundStrict(-3)));  // x > 3
  EXPECT_EQ(PricedDbm(z, 1).minCost(), 4);
  Dbm w = Dbm::unconstrained(2);
  ASSERT_TRUE(w.constrain(0, 1, boundWeak(-3)));  // x >= 3
  EXPECT_EQ(PricedDbm(w, 1).minCost(), 3);
  // Unconstrained cost clock: infimum 0 (clocks are nonnegative).
  EXPECT_EQ(PricedDbm(Dbm::unconstrained(2), 1).minCost(), 0);
}

TEST(PricedOracle, DominationImpliesPointwiseCheaperCoverage) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    std::mt19937_64 rng(seed);
    const Dbm a = randomZone(rng, 3, 4);
    const Dbm b = randomZone(rng, 3, 4);
    const int64_t offA = static_cast<int64_t>(rng() % 4);
    const int64_t offB = static_cast<int64_t>(rng() % 4);
    const PricedDbm pa(a, 1, offA);
    const PricedDbm pb(b, 1, offB);
    if (!pa.dominates(pb)) continue;
    // Every integer point of b lies in a, and a prices it no higher.
    std::vector<int64_t> val(3, 0);
    for (int64_t x = 0; x <= 6; ++x) {
      for (int64_t y = 0; y <= 6; ++y) {
        val[1] = x;
        val[2] = y;
        if (!b.containsPoint(val)) continue;
        ASSERT_TRUE(a.containsPoint(val)) << "seed " << seed;
        ASSERT_LE(val[1] + offA, val[1] + offB) << "seed " << seed;
      }
    }
  }
}

TEST(PricedOracle, BudgetBelowOffsetEmptiesTheZone) {
  PricedDbm pz(Dbm::unconstrained(2), 1, /*offset=*/10);
  EXPECT_FALSE(pz.constrainCost(9));
  EXPECT_TRUE(pz.empty());
}

}  // namespace
}  // namespace dbm
