// Property tests for Dbm::tryConvexUnion — the exactness guarantee the
// passed store's zone merging rests on. The oracle enumerates integer
// points of a bounding box: whenever tryConvexUnion succeeds, the
// returned hull must contain exactly the points of a ∪ b (no more, no
// less); whenever it declines, nothing is asserted beyond the hull
// being a sound over-approximation. Soundness of the whole merge
// optimisation reduces to this pointwise property (DESIGN.md "Convex
// zone merging").
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "dbm/dbm.hpp"

namespace dbm {
namespace {

/// A random non-empty canonical zone over `dim-1` clocks with constants
/// in [0, box]: start unconstrained, apply a handful of random upper /
/// lower / diagonal constraints, retry until non-empty.
Dbm randomZone(std::mt19937_64& rng, uint32_t dim, int box) {
  std::uniform_int_distribution<int> c(0, box);
  std::uniform_int_distribution<uint32_t> clk(1, dim - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> nCons(1, 4);
  for (;;) {
    Dbm z = Dbm::unconstrained(dim);
    bool ok = true;
    const int n = nCons(rng);
    for (int k = 0; k < n && ok; ++k) {
      const uint32_t i = clk(rng);
      switch (coin(rng) * 2 + coin(rng)) {
        case 0:  // upper bound x_i <= c
          ok = z.constrain(i, 0, boundWeak(c(rng)));
          break;
        case 1:  // lower bound x_i >= c
          ok = z.constrain(0, i, boundWeak(-c(rng)));
          break;
        default: {  // diagonal x_i - x_j <= c
          uint32_t j = clk(rng);
          if (j == i) j = (j % (dim - 1)) + 1;
          if (j == i) break;  // dim == 2: no diagonal available
          ok = z.constrain(i, j, boundWeak(c(rng)));
          break;
        }
      }
    }
    if (ok && !z.isEmpty()) return z;
  }
}

/// Enumerate every integer valuation of [0, box]^(dim-1) and check that
/// hull membership coincides with (a ∪ b) membership. Integer points
/// suffice as a distinguishing oracle for weak-bound zones; the strict/
/// weak edge cases are covered by the deterministic tests below.
void expectExactUnion(const Dbm& a, const Dbm& b, const Dbm& hull,
                      uint32_t dim, int box, uint64_t seed) {
  std::vector<int64_t> val(dim, 0);
  const auto total = [&] {
    size_t t = 1;
    for (uint32_t k = 1; k < dim; ++k) t *= static_cast<size_t>(box) + 1;
    return t;
  }();
  for (size_t it = 0; it < total; ++it) {
    size_t rest = it;
    for (uint32_t k = 1; k < dim; ++k) {
      val[k] = static_cast<int64_t>(rest % (static_cast<size_t>(box) + 1));
      rest /= static_cast<size_t>(box) + 1;
    }
    const bool inUnion = a.containsPoint(val) || b.containsPoint(val);
    const bool inHull = hull.containsPoint(val);
    ASSERT_EQ(inHull, inUnion)
        << "seed " << seed << ": point diverges (union=" << inUnion
        << " hull=" << inHull << ")";
  }
}

TEST(MergeOracle, AcceptedMergesAreExactOnIntegerPoints) {
  // Small dimensions and boxes keep the brute-force oracle fast while
  // covering upper/lower/diagonal interactions.
  size_t accepted = 0;
  for (uint64_t seed = 1; seed <= 400; ++seed) {
    std::mt19937_64 rng(seed);
    const uint32_t dim = 2 + static_cast<uint32_t>(seed % 2);  // 2 or 3
    const int box = 4;
    const Dbm a = randomZone(rng, dim, box);
    const Dbm b = randomZone(rng, dim, box);
    Dbm out(1);
    if (!Dbm::tryConvexUnion(a, b, &out)) continue;
    ++accepted;
    expectExactUnion(a, b, out, dim, box + 2, seed);
    // The merge result must cover both operands outright.
    EXPECT_TRUE(out.includes(a)) << "seed " << seed;
    EXPECT_TRUE(out.includes(b)) << "seed " << seed;
  }
  // The generator produces plenty of mergeable pairs (inclusions,
  // overlapping intervals); a silent "never merge" implementation must
  // not pass this suite.
  EXPECT_GT(accepted, 50u);
}

TEST(MergeOracle, RejectsNonConvexUnion) {
  // x in [0,1] vs x in [3,4]: the hull [0,4] contains 2, which is in
  // neither operand.
  Dbm a = Dbm::unconstrained(2);
  ASSERT_TRUE(a.constrain(1, 0, boundWeak(1)));
  Dbm b = Dbm::unconstrained(2);
  ASSERT_TRUE(b.constrain(0, 1, boundWeak(-3)));
  ASSERT_TRUE(b.constrain(1, 0, boundWeak(4)));
  Dbm out(1);
  EXPECT_FALSE(Dbm::tryConvexUnion(a, b, &out));
}

TEST(MergeOracle, MergesAdjacentIntervals) {
  // [0,2] ∪ [2,5] = [0,5]: convex, must merge.
  Dbm a = Dbm::unconstrained(2);
  ASSERT_TRUE(a.constrain(1, 0, boundWeak(2)));
  Dbm b = Dbm::unconstrained(2);
  ASSERT_TRUE(b.constrain(0, 1, boundWeak(-2)));
  ASSERT_TRUE(b.constrain(1, 0, boundWeak(5)));
  Dbm out(1);
  ASSERT_TRUE(Dbm::tryConvexUnion(a, b, &out));
  EXPECT_EQ(out.at(1, 0), boundWeak(5));
  EXPECT_EQ(out.at(0, 1), kZeroBound);
}

TEST(MergeOracle, RejectsAbuttingStrictIntervals) {
  // [0,2) ∪ (2,5]: the hull [0,5] contains 2, in neither operand. The
  // integer oracle cannot see this gap — this is the strictness case it
  // delegates to tryConvexUnion's piece decomposition.
  Dbm a = Dbm::unconstrained(2);
  ASSERT_TRUE(a.constrain(1, 0, boundStrict(2)));
  Dbm b = Dbm::unconstrained(2);
  ASSERT_TRUE(b.constrain(0, 1, boundStrict(-2)));
  ASSERT_TRUE(b.constrain(1, 0, boundWeak(5)));
  Dbm out(1);
  EXPECT_FALSE(Dbm::tryConvexUnion(a, b, &out));
}

TEST(MergeOracle, MergesHalfOpenAdjacency) {
  // [0,2) ∪ [2,5]: exactly [0,5], the weak lower bound closes the gap.
  Dbm a = Dbm::unconstrained(2);
  ASSERT_TRUE(a.constrain(1, 0, boundStrict(2)));
  Dbm b = Dbm::unconstrained(2);
  ASSERT_TRUE(b.constrain(0, 1, boundWeak(-2)));
  ASSERT_TRUE(b.constrain(1, 0, boundWeak(5)));
  Dbm out(1);
  ASSERT_TRUE(Dbm::tryConvexUnion(a, b, &out));
  EXPECT_EQ(out.at(1, 0), boundWeak(5));
}

TEST(MergeOracle, InclusionDegeneratesToLargerOperand) {
  Dbm a = Dbm::unconstrained(3);
  ASSERT_TRUE(a.constrain(1, 0, boundWeak(10)));
  Dbm b(a);
  ASSERT_TRUE(b.constrain(1, 0, boundWeak(4)));
  ASSERT_TRUE(b.constrain(2, 0, boundWeak(4)));
  Dbm out(1);
  ASSERT_TRUE(Dbm::tryConvexUnion(a, b, &out));
  EXPECT_EQ(out.relation(a), Relation::kEqual);
}

TEST(MergeOracle, SquareVsDiagonalStripe) {
  // The square [0,5]^2 vs the square cut by x-y <= 2: the union is the
  // square itself (the stripe is a subset), so the merge must succeed
  // and return the square — a regression guard for the subset fast
  // path interacting with diagonal constraints.
  Dbm square = Dbm::unconstrained(3);
  ASSERT_TRUE(square.constrain(1, 0, boundWeak(5)));
  ASSERT_TRUE(square.constrain(2, 0, boundWeak(5)));
  Dbm stripe(square);
  ASSERT_TRUE(stripe.constrain(1, 2, boundWeak(2)));
  Dbm out(1);
  ASSERT_TRUE(Dbm::tryConvexUnion(square, stripe, &out));
  EXPECT_EQ(out.relation(square), Relation::kEqual);
}

TEST(MergeOracle, PieceCapDeclinesConservatively) {
  // With maxPieces = 0 every non-inclusion pair must be declined, even
  // a perfectly convex one — the cap trades merges for bounded cost,
  // never soundness.
  Dbm a = Dbm::unconstrained(2);
  ASSERT_TRUE(a.constrain(1, 0, boundWeak(2)));
  Dbm b = Dbm::unconstrained(2);
  ASSERT_TRUE(b.constrain(0, 1, boundWeak(-1)));
  ASSERT_TRUE(b.constrain(1, 0, boundWeak(5)));
  Dbm out(1);
  ASSERT_TRUE(Dbm::tryConvexUnion(a, b, &out));   // merges normally
  EXPECT_FALSE(Dbm::tryConvexUnion(a, b, &out, 0));  // declined under cap
}

}  // namespace
}  // namespace dbm
