#include "synthesis/schedule.hpp"

#include <gtest/gtest.h>

#include "engine/trace.hpp"
#include "plant/plant.hpp"

namespace synthesis {
namespace {

/// A concrete trace for a one-batch plant, shared across tests.
class ScheduleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    plant::PlantConfig cfg;
    cfg.order = {plant::qualityAB()};
    plant_ = plant::buildPlant(cfg).release();
    engine::Options opts;
    opts.order = engine::SearchOrder::kDfs;
    opts.dfsReverse = true;
    opts.maxSeconds = 60.0;
    engine::Reachability checker(plant_->sys, opts);
    const engine::Result res = checker.run(plant_->goal);
    ASSERT_TRUE(res.reachable);
    std::string err;
    auto ct = engine::concretize(plant_->sys, res.trace, &err);
    ASSERT_TRUE(ct.has_value()) << err;
    trace_ = new engine::ConcreteTrace(std::move(*ct));
  }
  static void TearDownTestSuite() {
    delete trace_;
    delete plant_;
    trace_ = nullptr;
    plant_ = nullptr;
  }

  static plant::Plant* plant_;
  static engine::ConcreteTrace* trace_;
};

plant::Plant* ScheduleTest::plant_ = nullptr;
engine::ConcreteTrace* ScheduleTest::trace_ = nullptr;

TEST_F(ScheduleTest, ProjectionKeepsOnlyPlantCommands) {
  const Schedule s = project(plant_->sys, *trace_);
  ASSERT_FALSE(s.items.empty());
  for (const ScheduleItem& item : s.items) {
    EXPECT_FALSE(item.unit.empty());
    EXPECT_FALSE(item.command.empty());
    // Units are the known plant units only.
    const bool known = item.unit.rfind("Load", 0) == 0 ||
                       item.unit.rfind("Crane", 0) == 0 ||
                       item.unit == "Caster";
    EXPECT_TRUE(known) << item.unit;
  }
}

TEST_F(ScheduleTest, TimestampsAreMonotone) {
  const Schedule s = project(plant_->sys, *trace_);
  for (size_t k = 1; k < s.items.size(); ++k) {
    EXPECT_LE(s.items[k - 1].time, s.items[k].time);
  }
  EXPECT_EQ(s.makespan, trace_->makespan());
}

TEST_F(ScheduleTest, OneBatchLifecycleCommandsPresent) {
  const Schedule s = project(plant_->sys, *trace_);
  const auto has = [&](const std::string& text) {
    for (const ScheduleItem& i : s.items) {
      if (i.text() == text) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("Load1.Pour1") || has("Load1.Pour2"));
  EXPECT_TRUE(has("Load1.Machine1On") || has("Load1.Machine4On"));
  EXPECT_TRUE(has("Caster.Start1"));
  EXPECT_TRUE(has("Caster.Eject1"));
  EXPECT_TRUE(has("Load1.Exit"));
}

TEST_F(ScheduleTest, DelaysInTextMatchTimestamps) {
  const Schedule s = project(plant_->sys, *trace_);
  const std::string text = s.toText();
  // Sum of Delay(d) lines == time of the last command.
  int64_t sum = 0;
  size_t pos = 0;
  while ((pos = text.find("Delay(", pos)) != std::string::npos) {
    sum += std::atoll(text.c_str() + pos + 6);
    ++pos;
  }
  EXPECT_EQ(sum, s.items.back().time);
}

TEST_F(ScheduleTest, TreatmentDurationVisibleInSchedule) {
  // Machine1On -> Machine1Off must be exactly the recipe's 6 units
  // (type A treatment of qualityAB).
  const Schedule s = project(plant_->sys, *trace_);
  int64_t on = -1, off = -1;
  for (const ScheduleItem& i : s.items) {
    if (i.command == "Machine1On" || i.command == "Machine4On") on = i.time;
    if (i.command == "Machine1Off" || i.command == "Machine4Off") off = i.time;
  }
  ASSERT_GE(on, 0);
  ASSERT_GE(off, 0);
  EXPECT_EQ(off - on, 6);
}

TEST(ScheduleText, EmptyScheduleRendersEmpty) {
  Schedule s;
  EXPECT_EQ(s.toText(), "");
}

TEST(ScheduleText, DelayInsertedBetweenSpacedItems) {
  Schedule s;
  s.items.push_back({0, "Load1", "Pour1"});
  s.items.push_back({5, "Load1", "Track1Right"});
  s.items.push_back({5, "Crane1", "Move1Left"});
  EXPECT_EQ(s.toText(),
            "Load1.Pour1\nDelay(5)\nLoad1.Track1Right\nCrane1.Move1Left\n");
}

}  // namespace
}  // namespace synthesis
