#include "synthesis/io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace synthesis {
namespace {

Schedule sample() {
  Schedule s;
  s.items.push_back({0, "Load1", "Pour1"});
  s.items.push_back({5, "Crane1", "Pickup0"});
  s.makespan = 5;
  return s;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(SynthesisIo, ScheduleRoundTripsToFile) {
  const std::string path = ::testing::TempDir() + "sched.txt";
  ASSERT_TRUE(writeScheduleFile(sample(), path));
  const std::string text = slurp(path);
  EXPECT_NE(text.find("# schedule: 2 commands, makespan 5"),
            std::string::npos);
  EXPECT_NE(text.find("Load1.Pour1"), std::string::npos);
  EXPECT_NE(text.find("Delay(5)"), std::string::npos);
  EXPECT_NE(text.find("Crane1.Pickup0"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SynthesisIo, ProgramFileHasIdTableAndCode) {
  const RcxProgram prog = synthesize(sample());
  const std::string path = ::testing::TempDir() + "prog.txt";
  ASSERT_TRUE(writeProgramFile(prog, path));
  const std::string text = slurp(path);
  EXPECT_NE(text.find("'   1 = Load1.Pour1"), std::string::npos);
  EXPECT_NE(text.find("'   2 = Crane1.Pickup0"), std::string::npos);
  EXPECT_NE(text.find("PB.SendPBMessage 2, 1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SynthesisIo, UnwritablePathReportsFalse) {
  EXPECT_FALSE(writeScheduleFile(sample(), "/nonexistent/dir/x.txt"));
  EXPECT_FALSE(writeProgramFile(RcxProgram{}, "/nonexistent/dir/y.txt"));
}

}  // namespace
}  // namespace synthesis
