#include "synthesis/rcx_codegen.hpp"

#include <gtest/gtest.h>

namespace synthesis {
namespace {

Schedule smallSchedule() {
  Schedule s;
  s.items.push_back({0, "Load1", "Pour1"});
  s.items.push_back({3, "Load1", "Track1Right"});
  s.items.push_back({3, "Crane1", "Move1Left"});
  s.items.push_back({10, "Crane1", "Move1Left"});
  s.makespan = 10;
  return s;
}

TEST(RcxCodegen, OneSegmentPerCommand) {
  const RcxProgram prog = synthesize(smallSchedule());
  ASSERT_EQ(prog.commands.size(), 4u);
  int sends = 0;
  for (const RcxInstr& i : prog.code) {
    if (i.op == RcxOp::kSendPBMessage) ++sends;
  }
  // One initial send plus one retry send per command segment.
  EXPECT_EQ(sends, 8);
}

TEST(RcxCodegen, MessageIdsAreUniquePerItem) {
  const RcxProgram prog = synthesize(smallSchedule());
  // Two identical Crane1.Move1Left commands must get distinct ids so
  // the unit can tell a retry from a genuine repeat.
  EXPECT_EQ(prog.commands[2].command, prog.commands[3].command);
  EXPECT_NE(prog.commands[2].msgId, prog.commands[3].msgId);
}

TEST(RcxCodegen, CommandByIdRoundTrip) {
  const RcxProgram prog = synthesize(smallSchedule());
  for (const RcxCommand& c : prog.commands) {
    const RcxCommand* found = prog.commandById(c.msgId);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->unit, c.unit);
    EXPECT_EQ(found->command, c.command);
  }
  EXPECT_EQ(prog.commandById(0), nullptr);
  EXPECT_EQ(prog.commandById(99), nullptr);
}

TEST(RcxCodegen, WaitsConvertTimeUnitsToTicks) {
  CodegenOptions opts;
  opts.ticksPerTimeUnit = 100;
  const RcxProgram prog = synthesize(smallSchedule(), opts);
  std::vector<int32_t> waits;
  for (const RcxInstr& i : prog.code) {
    if (i.op == RcxOp::kWait && i.a != opts.ackPollTicks) {
      waits.push_back(i.a);
    }
  }
  // Gaps 0->3 and 3->10.
  ASSERT_EQ(waits.size(), 2u);
  EXPECT_EQ(waits[0], 300);
  EXPECT_EQ(waits[1], 700);
}

TEST(RcxCodegen, WhileAndIfAreBalanced) {
  const RcxProgram prog = synthesize(smallSchedule());
  int depth = 0;
  for (const RcxInstr& i : prog.code) {
    if (i.op == RcxOp::kWhileVarNe || i.op == RcxOp::kIfVarGe) ++depth;
    if (i.op == RcxOp::kEndWhile || i.op == RcxOp::kEndIf) --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(RcxCodegen, TextRenderingHasFigure6Shape) {
  const RcxProgram prog = synthesize(smallSchedule());
  const std::string text = prog.toText();
  EXPECT_NE(text.find("PB.PlaySystemSound 1"), std::string::npos);
  EXPECT_NE(text.find("PB.SendPBMessage 2, 1"), std::string::npos);
  EXPECT_NE(text.find("PB.While 0, 1, 3, 2, 1"), std::string::npos);
  EXPECT_NE(text.find("PB.ClearPBMessage"), std::string::npos);
  EXPECT_NE(text.find("PB.EndWhile"), std::string::npos);
  EXPECT_NE(text.find("PB.Wait 2, 300"), std::string::npos);
}

TEST(RcxCodegen, EmptyScheduleGivesEmptyProgram) {
  const RcxProgram prog = synthesize(Schedule{});
  EXPECT_TRUE(prog.code.empty());
  EXPECT_TRUE(prog.commands.empty());
}

TEST(RcxCodegen, ResendThresholdConfigurable) {
  CodegenOptions opts;
  opts.resendAfterPolls = 7;
  const RcxProgram prog = synthesize(smallSchedule(), opts);
  bool found = false;
  for (const RcxInstr& i : prog.code) {
    if (i.op == RcxOp::kIfVarGe) {
      EXPECT_EQ(i.b, 7);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace synthesis
