// End-to-end scheduling tests: the guided plant model must yield valid
// schedules that concretize and validate.
#include <gtest/gtest.h>

#include "engine/trace.hpp"
#include "plant/plant.hpp"

namespace plant {
namespace {

engine::Options dfs() {
  engine::Options o;
  o.order = engine::SearchOrder::kDfs;
  o.maxSeconds = 60.0;
  return o;
}

TEST(PlantSchedule, OneBatchGuided) {
  PlantConfig cfg;
  cfg.order = {qualityAB()};
  const auto p = buildPlant(cfg);
  engine::Reachability checker(p->sys, dfs());
  const engine::Result res = checker.run(p->goal);
  ASSERT_TRUE(res.reachable) << "no schedule found for a single batch";
  std::string err;
  const auto ct = engine::concretize(p->sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;
  EXPECT_TRUE(engine::validate(p->sys, *ct, &err)) << err;
  // The batch's deadline must be respected in the concrete timing.
  EXPECT_LE(ct->makespan(), 2 * cfg.rtotal);
}

TEST(PlantSchedule, OneBatchEachQuality) {
  for (const Quality& q :
       {qualityAB(), qualityA(), qualityB(), qualityC(), qualityBC()}) {
    PlantConfig cfg;
    cfg.order = {q};
    const auto p = buildPlant(cfg);
    engine::Reachability checker(p->sys, dfs());
    const engine::Result res = checker.run(p->goal);
    EXPECT_TRUE(res.reachable)
        << "no schedule for a quality with " << q.size() << " stages";
  }
}

TEST(PlantSchedule, TwoBatchesGuidedDfs) {
  PlantConfig cfg;
  cfg.order = standardOrder(2);
  const auto p = buildPlant(cfg);
  engine::Reachability checker(p->sys, dfs());
  const engine::Result res = checker.run(p->goal);
  ASSERT_TRUE(res.reachable);
  std::string err;
  const auto ct = engine::concretize(p->sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;
  EXPECT_TRUE(engine::validate(p->sys, *ct, &err)) << err;
}

TEST(PlantSchedule, ThreeBatchesAllGuides) {
  PlantConfig cfg;
  cfg.order = standardOrder(3);
  cfg.guides = GuideLevel::kAll;
  const auto p = buildPlant(cfg);
  engine::Reachability checker(p->sys, dfs());
  const engine::Result res = checker.run(p->goal);
  ASSERT_TRUE(res.reachable);
}

TEST(PlantSchedule, CastingContinuityShowsInTimestamps) {
  // With strict continuity, consecutive Caster.Start events must be
  // exactly tcast apart.
  PlantConfig cfg;
  cfg.order = standardOrder(2);
  const auto p = buildPlant(cfg);
  engine::Reachability checker(p->sys, dfs());
  const engine::Result res = checker.run(p->goal);
  ASSERT_TRUE(res.reachable);
  std::string err;
  const auto ct = engine::concretize(p->sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;

  engine::Options opts;
  engine::SuccessorGenerator gen(p->sys, opts);
  std::vector<int64_t> castStarts;
  for (const engine::ConcreteStep& st : ct->steps) {
    if (gen.label(st.via).find("Caster.Start") != std::string::npos) {
      castStarts.push_back(st.timestamp);
    }
  }
  ASSERT_EQ(castStarts.size(), 2u);
  EXPECT_EQ(castStarts[1] - castStarts[0], cfg.tcast)
      << "second ladle must enter the caster the moment the first leaves";
}

TEST(PlantSchedule, UnGuidedOneBatchStillSchedulable) {
  PlantConfig cfg;
  cfg.order = {qualityA()};
  cfg.guides = GuideLevel::kNone;
  const auto p = buildPlant(cfg);
  engine::Reachability checker(p->sys, dfs());
  const engine::Result res = checker.run(p->goal);
  EXPECT_TRUE(res.reachable)
      << "guides must not be necessary for feasibility, only tractability";
}

TEST(PlantSchedule, GuidedScheduleIsValidInUnguidedModel) {
  // The paper's soundness property: "any schedule generated for a
  // guided model is indeed also a valid schedule of the original
  // model."  We check it by replaying the guided schedule's plant
  // actions inside the unguided model.
  PlantConfig cfg;
  cfg.order = standardOrder(2);
  cfg.guides = GuideLevel::kAll;
  const auto guided = buildPlant(cfg);
  engine::Reachability checker(guided->sys, dfs());
  const engine::Result res = checker.run(guided->goal);
  ASSERT_TRUE(res.reachable);
  std::string err;
  const auto ct = engine::concretize(guided->sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;

  cfg.guides = GuideLevel::kNone;
  const auto plain = buildPlant(cfg);
  // Replay by matching edge labels: walk the unguided model, firing at
  // each step a transition with the same label and delay.
  engine::Options opts;
  engine::SuccessorGenerator gGuided(guided->sys, opts);
  engine::SuccessorGenerator gPlain(plain->sys, opts);
  engine::SymbolicState cur = gPlain.initial();
  size_t matched = 0;
  for (size_t k = 1; k < ct->steps.size(); ++k) {
    const std::string want = gGuided.label(ct->steps[k].via);
    bool found = false;
    for (engine::Successor& suc : gPlain.successors(cur)) {
      if (gPlain.label(suc.via) == want) {
        cur = std::move(suc.state);
        found = true;
        ++matched;
        break;
      }
    }
    ASSERT_TRUE(found) << "guided action '" << want
                       << "' not available in the unguided model at step "
                       << k;
  }
  EXPECT_EQ(matched + 1, ct->steps.size());
}

}  // namespace
}  // namespace plant
