// Property-style sweeps over the plant model: for every batch count and
// guide level in range, schedules exist, concretize, validate, satisfy
// the plant's ordering invariants, and replay inside the unguided model
// (the paper's guide-soundness property).
#include <gtest/gtest.h>

#include "engine/trace.hpp"
#include "plant/plant.hpp"
#include "synthesis/schedule.hpp"

namespace plant {
namespace {

engine::Options fastDfs() {
  engine::Options o;
  o.order = engine::SearchOrder::kDfs;
  o.dfsReverse = true;
  o.maxSeconds = 90.0;
  return o;
}

class BatchSweep : public ::testing::TestWithParam<int> {};

TEST_P(BatchSweep, ScheduleExistsAndValidates) {
  PlantConfig cfg;
  cfg.order = standardOrder(GetParam());
  const auto p = buildPlant(cfg);
  engine::Reachability checker(p->sys, fastDfs());
  const engine::Result res = checker.run(p->goal);
  ASSERT_TRUE(res.reachable);
  std::string err;
  const auto ct = engine::concretize(p->sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;
  EXPECT_TRUE(engine::validate(p->sys, *ct, &err)) << err;
}

TEST_P(BatchSweep, CastingHappensInOrderAndContinuously) {
  const int n = GetParam();
  PlantConfig cfg;
  cfg.order = standardOrder(n);
  const auto p = buildPlant(cfg);
  engine::Reachability checker(p->sys, fastDfs());
  const engine::Result res = checker.run(p->goal);
  ASSERT_TRUE(res.reachable);
  std::string err;
  const auto ct = engine::concretize(p->sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;
  const synthesis::Schedule sched = synthesis::project(p->sys, *ct);

  std::vector<int64_t> castStarts(static_cast<size_t>(n), -1);
  for (const synthesis::ScheduleItem& item : sched.items) {
    if (item.unit == "Caster" && item.command.rfind("Start", 0) == 0) {
      const int b = std::atoi(item.command.c_str() + 5) - 1;
      ASSERT_GE(b, 0);
      ASSERT_LT(b, n);
      castStarts[static_cast<size_t>(b)] = item.time;
    }
  }
  for (int b = 0; b < n; ++b) {
    ASSERT_GE(castStarts[static_cast<size_t>(b)], 0)
        << "batch " << b << " never cast";
    if (b > 0) {
      // In production order and exactly back-to-back (castGap == 0).
      EXPECT_EQ(castStarts[static_cast<size_t>(b)] -
                    castStarts[static_cast<size_t>(b - 1)],
                cfg.tcast);
    }
  }
}

TEST_P(BatchSweep, EveryBatchDeadlineRespected) {
  const int n = GetParam();
  PlantConfig cfg;
  cfg.order = standardOrder(n);
  const auto p = buildPlant(cfg);
  engine::Reachability checker(p->sys, fastDfs());
  const engine::Result res = checker.run(p->goal);
  ASSERT_TRUE(res.reachable);
  std::string err;
  const auto ct = engine::concretize(p->sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;
  const synthesis::Schedule sched = synthesis::project(p->sys, *ct);

  std::vector<int64_t> pour(static_cast<size_t>(n), -1);
  std::vector<int64_t> castStart(static_cast<size_t>(n), -1);
  for (const synthesis::ScheduleItem& item : sched.items) {
    if (item.unit.rfind("Load", 0) == 0 &&
        item.command.rfind("Pour", 0) == 0) {
      pour[static_cast<size_t>(std::atoi(item.unit.c_str() + 4) - 1)] =
          item.time;
    }
    if (item.unit == "Caster" && item.command.rfind("Start", 0) == 0) {
      castStart[static_cast<size_t>(std::atoi(item.command.c_str() + 5) -
                                    1)] = item.time;
    }
  }
  for (int b = 0; b < n; ++b) {
    ASSERT_GE(pour[static_cast<size_t>(b)], 0);
    // Cast must END within rtotal of pouring.
    EXPECT_LE(castStart[static_cast<size_t>(b)] + cfg.tcast -
                  pour[static_cast<size_t>(b)],
              cfg.rtotal)
        << "batch " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(UpToSix, BatchSweep, ::testing::Values(1, 2, 3, 4, 6));

class GuideSoundness : public ::testing::TestWithParam<int> {};

TEST_P(GuideSoundness, GuidedScheduleReplaysInOriginalModel) {
  // "any schedule generated for a guided model is indeed also a valid
  // schedule of the original model" — checked by firing the guided
  // trace's labelled transitions inside the unguided model.
  PlantConfig cfg;
  cfg.order = standardOrder(GetParam());
  const auto guided = buildPlant(cfg);
  engine::Reachability checker(guided->sys, fastDfs());
  const engine::Result res = checker.run(guided->goal);
  ASSERT_TRUE(res.reachable);
  std::string err;
  const auto ct = engine::concretize(guided->sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;

  cfg.guides = GuideLevel::kNone;
  const auto plain = buildPlant(cfg);
  engine::Options opts;
  engine::SuccessorGenerator gGuided(guided->sys, opts);
  engine::SuccessorGenerator gPlain(plain->sys, opts);
  engine::SymbolicState cur = gPlain.initial();
  for (size_t k = 1; k < ct->steps.size(); ++k) {
    const std::string want = gGuided.label(ct->steps[k].via);
    bool found = false;
    for (engine::Successor& suc : gPlain.successors(cur)) {
      if (gPlain.label(suc.via) == want) {
        cur = std::move(suc.state);
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found) << "guided action '" << want
                       << "' unavailable in the original model (step " << k
                       << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(UpToFour, GuideSoundness, ::testing::Values(1, 3, 4));

TEST(PlantProperty, SomeGuidesAreBetweenNoneAndAll) {
  // State-count ordering on a 2-batch instance: All <= Some (guides
  // only remove behaviour), and the unguided space is the largest.
  const auto explored = [](GuideLevel g, double budget) -> size_t {
    PlantConfig cfg;
    cfg.order = standardOrder(2);
    cfg.guides = g;
    const auto p = buildPlant(cfg);
    engine::Options o;
    o.order = engine::SearchOrder::kBfs;  // full breadth = space size
    o.maxSeconds = budget;
    engine::Goal impossible;  // exhaust the space
    impossible.predicate = (p->sys.lit(0)).ref();
    engine::Reachability checker(p->sys, o);
    return checker.run(impossible).stats.statesExplored;
  };
  const size_t all = explored(GuideLevel::kAll, 60.0);
  const size_t some = explored(GuideLevel::kSome, 60.0);
  EXPECT_LE(all, some);
}

}  // namespace
}  // namespace plant
