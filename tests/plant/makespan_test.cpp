// Time-optimal scheduling via the makespan clock (the paper's
// "more optimal programs" future-work direction).
#include <gtest/gtest.h>

#include "engine/trace.hpp"
#include "plant/plant.hpp"

namespace plant {
namespace {

engine::Result scheduleWithBound(const PlantConfig& cfg, int32_t bound) {
  const auto p = buildPlant(cfg);
  engine::Goal goal = p->goal;
  if (bound >= 0) {
    goal.clockConstraints.push_back(ta::ccLe(p->makespan, bound));
  }
  engine::Options opts;
  opts.order = engine::SearchOrder::kDfs;
  opts.dfsReverse = true;
  opts.maxSeconds = 60.0;
  engine::Reachability checker(p->sys, opts);
  return checker.run(goal);
}

TEST(Makespan, ClockOnlyAddedWhenRequested) {
  PlantConfig cfg;
  cfg.order = {qualityA()};
  EXPECT_EQ(buildPlant(cfg)->makespan, -1);
  cfg.makespanClock = true;
  const auto p = buildPlant(cfg);
  EXPECT_GT(p->makespan, 0);
  EXPECT_EQ(p->numClocks(), 3u * 1 + 3 + 1);
}

TEST(Makespan, BoundedGoalStillSchedulable) {
  PlantConfig cfg;
  cfg.order = {qualityA()};
  cfg.makespanClock = true;
  // Unbounded is feasible; a generous bound must stay feasible.
  ASSERT_TRUE(scheduleWithBound(cfg, -1).reachable);
  EXPECT_TRUE(scheduleWithBound(cfg, 2 * cfg.rtotal).reachable);
}

TEST(Makespan, TightBoundInfeasible) {
  PlantConfig cfg;
  cfg.order = {qualityA()};
  cfg.makespanClock = true;
  // Physically impossible: less than the casting duration alone.
  const engine::Result res = scheduleWithBound(cfg, cfg.tcast - 1);
  EXPECT_FALSE(res.reachable);
  EXPECT_TRUE(res.exhausted);
}

TEST(Makespan, OptimalBoundMatchesConcreteMakespan) {
  // Binary-search the optimum for one batch and check a bound-B
  // schedule concretizes to makespan <= B.
  PlantConfig cfg;
  cfg.order = {qualityA()};
  cfg.makespanClock = true;
  const engine::Result first = scheduleWithBound(cfg, -1);
  ASSERT_TRUE(first.reachable);
  const auto p = buildPlant(cfg);
  std::string err;
  const auto ft = engine::concretize(p->sys, first.trace, &err);
  ASSERT_TRUE(ft.has_value()) << err;
  int32_t lo = 0;
  int32_t hi = static_cast<int32_t>(ft->makespan());
  while (lo < hi) {
    const int32_t mid = lo + (hi - lo) / 2;
    if (scheduleWithBound(cfg, mid).reachable) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  ASSERT_GT(lo, 0);
  const engine::Result opt = scheduleWithBound(cfg, lo);
  ASSERT_TRUE(opt.reachable);
  const auto ot = engine::concretize(p->sys, opt.trace, &err);
  ASSERT_TRUE(ot.has_value()) << err;
  EXPECT_LE(ot->makespan(), lo);
  EXPECT_LE(lo, ft->makespan());
  // Sanity: the optimum is at least pour->cast-end on the critical path.
  EXPECT_GE(lo, cfg.tcast);
}

}  // namespace
}  // namespace plant
