// Structural tests of the generated plant model.
#include <gtest/gtest.h>

#include "plant/plant.hpp"

namespace plant {
namespace {

TEST(PlantBuild, AutomatonAndClockCounts) {
  // 2N+4 automata, 3N+3 clocks (183 clocks at 60 batches, §5).
  for (const int32_t n : {1, 2, 5, 60}) {
    PlantConfig cfg;
    cfg.order = standardOrder(n);
    const auto p = buildPlant(cfg);
    EXPECT_EQ(p->numAutomata(), static_cast<size_t>(2 * n + 4));
    EXPECT_EQ(p->numClocks(), static_cast<uint32_t>(3 * n + 3));
  }
}

TEST(PlantBuild, SixtyBatchClockCountMatchesPaper) {
  PlantConfig cfg;
  cfg.order = standardOrder(60);
  const auto p = buildPlant(cfg);
  EXPECT_EQ(p->numClocks(), 183u) << "paper: 183 real-valued clocks";
}

TEST(PlantBuild, GuideLevelsChangeVariableCount) {
  PlantConfig cfg;
  cfg.order = standardOrder(3);
  cfg.guides = GuideLevel::kNone;
  const auto none = buildPlant(cfg);
  cfg.guides = GuideLevel::kSome;
  const auto some = buildPlant(cfg);
  cfg.guides = GuideLevel::kAll;
  const auto all = buildPlant(cfg);
  // Guides are implemented "by introducing a number of new variables".
  EXPECT_LT(none->sys.numVars(), some->sys.numVars());
  EXPECT_LT(some->sys.numVars(), all->sys.numVars());
}

TEST(PlantBuild, HandlesAreConsistent) {
  PlantConfig cfg;
  cfg.order = standardOrder(4);
  const auto p = buildPlant(cfg);
  EXPECT_EQ(p->batches.size(), 4u);
  EXPECT_EQ(p->recipes.size(), 4u);
  EXPECT_EQ(p->cranes.size(), 2u);
  EXPECT_GE(p->caster, 0);
  EXPECT_GE(p->monitor, 0);
  EXPECT_TRUE(p->sys.finalized());
  EXPECT_EQ(p->goal.locations.size(), 1u);
}

TEST(PlantBuild, MachineCatalogue) {
  EXPECT_EQ(machineOn(1, MachineType::kA), 1);
  EXPECT_EQ(machineOn(1, MachineType::kB), 2);
  EXPECT_EQ(machineOn(1, MachineType::kC), 3);
  EXPECT_EQ(machineOn(2, MachineType::kA), 4);
  EXPECT_EQ(machineOn(2, MachineType::kB), 5);
  EXPECT_EQ(machineOn(2, MachineType::kC), -1);
}

TEST(PlantBuild, DumpMentionsKeyStructure) {
  PlantConfig cfg;
  cfg.order = {qualityAB()};
  const auto p = buildPlant(cfg);
  const std::string d = p->sys.dump();
  EXPECT_NE(d.find("process load1"), std::string::npos);
  EXPECT_NE(d.find("process recipe0"), std::string::npos);
  EXPECT_NE(d.find("process crane1"), std::string::npos);
  EXPECT_NE(d.find("process caster"), std::string::npos);
  EXPECT_NE(d.find("next0"), std::string::npos) << "guide variable present";
}

TEST(PlantBuild, UngUidedDumpHasNoGuideVariables) {
  PlantConfig cfg;
  cfg.order = {qualityAB()};
  cfg.guides = GuideLevel::kNone;
  const auto p = buildPlant(cfg);
  const std::string d = p->sys.dump();
  EXPECT_EQ(d.find("next0"), std::string::npos);
  EXPECT_EQ(d.find("nextbatch"), std::string::npos);
  EXPECT_EQ(d.find("cranereq"), std::string::npos);
}

}  // namespace
}  // namespace plant
