// Structural checks of the fault-injection model variants (the buggy
// models the paper's physical runs exposed).
#include <gtest/gtest.h>

#include "plant/plant.hpp"

namespace plant {
namespace {

TEST(FaultFlags, BugNoLiftDelayMakesRisingCommitted) {
  PlantConfig cfg;
  cfg.order = {qualityA()};
  cfg.bugNoLiftDelay = true;
  const auto p = buildPlant(cfg);
  const ta::Automaton& crane = p->sys.automaton(p->cranes[0]);
  const ta::LocId rise = crane.findLocation("rise0");
  ASSERT_GE(rise, 0);
  EXPECT_TRUE(crane.location(rise).committed)
      << "buggy lift takes no model time";
  EXPECT_TRUE(crane.location(rise).invariant.empty());
  // The corrected model has a timed rising location.
  cfg.bugNoLiftDelay = false;
  const auto good = buildPlant(cfg);
  const ta::Automaton& crane2 = good->sys.automaton(good->cranes[0]);
  const ta::LocId rise2 = crane2.findLocation("rise0");
  EXPECT_FALSE(crane2.location(rise2).committed);
  EXPECT_FALSE(crane2.location(rise2).invariant.empty());
}

TEST(FaultFlags, BugFreeSourceEarlyMovesTheClearAssignment) {
  // In the corrected model the source overhead slot clears on the move
  // COMPLETION edge; in the buggy model on the move START edge.
  const auto countStartClears = [](bool buggy) {
    PlantConfig cfg;
    cfg.order = {qualityA()};
    cfg.guides = GuideLevel::kNone;  // no cranereq assignments in the way
    cfg.bugFreeSourceEarly = buggy;
    const auto p = buildPlant(cfg);
    const ta::Automaton& crane = p->sys.automaton(p->cranes[0]);
    int startClears = 0;
    for (const ta::Edge& e : crane.edges()) {
      if (e.label.find("Move1") == std::string::npos) continue;
      // Move-start edges carry the label; a write of 0 into a cpos cell
      // on such an edge is an early source-clear.
      for (const ta::Assign& as : e.assigns) {
        const bool writesZero =
            p->sys.pool().node(as.rhs).op == ta::Op::kConst &&
            p->sys.pool().node(as.rhs).a == 0;
        if (writesZero) ++startClears;
      }
    }
    return startClears;
  };
  EXPECT_EQ(countStartClears(false), 0);
  EXPECT_GT(countStartClears(true), 0);
}

TEST(FaultFlags, BugCasterSkipsFinalEjectOnlyDropsTheLabel) {
  // The buggy model's behaviour is identical (the eject still happens
  // symbolically); only the command label disappears, so the synthesized
  // program omits the command.
  PlantConfig cfg;
  cfg.order = standardOrder(2);
  cfg.bugCasterSkipsFinalEject = true;
  const auto buggy = buildPlant(cfg);
  cfg.bugCasterSkipsFinalEject = false;
  const auto good = buildPlant(cfg);
  const auto ejectLabels = [](const Plant& p) {
    int n = 0;
    for (const ta::Edge& e : p.sys.automaton(p.caster).edges()) {
      if (e.label.rfind("Caster.Eject", 0) == 0) ++n;
    }
    return n;
  };
  EXPECT_EQ(ejectLabels(*good), 2);
  EXPECT_EQ(ejectLabels(*buggy), 1);
  // Same number of edges either way: behaviour preserved.
  EXPECT_EQ(buggy->sys.automaton(buggy->caster).edges().size(),
            good->sys.automaton(good->caster).edges().size());
}

TEST(FaultFlags, CastGapRelaxationAllowsIdleCaster) {
  // With a generous castGap, schedules may run batches sequentially;
  // with the strict default the caster gap location pins the timing.
  PlantConfig strict;
  strict.order = standardOrder(2);
  PlantConfig relaxed = strict;
  relaxed.castGap = 100;
  const auto ps = buildPlant(strict);
  const auto pr = buildPlant(relaxed);
  // Compare the gap location's invariant constants.
  const ta::Automaton& cs = ps->sys.automaton(ps->caster);
  const ta::Automaton& cr = pr->sys.automaton(pr->caster);
  const ta::LocId g0s = cs.findLocation("gap0");
  const ta::LocId g0r = cr.findLocation("gap0");
  ASSERT_GE(g0s, 0);
  ASSERT_GE(g0r, 0);
  const auto bound = [](const ta::Location& l) {
    return dbm::boundValue(l.invariant.at(0).bound);
  };
  EXPECT_EQ(bound(cs.location(g0s)), strict.tcast);
  EXPECT_EQ(bound(cr.location(g0r)), relaxed.tcast + 100);
}

}  // namespace
}  // namespace plant
