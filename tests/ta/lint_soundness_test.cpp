// Lint is advisory: running the static-analysis passes must not change
// the parsed model in any observable way. The checked-in example
// models lint clean, and parsing them with lint on/off (and through
// the legacy parseModel shim) yields byte-identical printed models,
// identical verdicts, and identical deterministic engine statistics.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "engine/reachability.hpp"
#include "ta/lint.hpp"
#include "ta/parser.hpp"
#include "ta/printer.hpp"

namespace fs = std::filesystem;

namespace {

std::string readFile(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<fs::path> modelFiles() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(MODELS_DIR)) {
    if (entry.is_regular_file() && entry.path().extension() == ".gta") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(LintSoundness, ExampleModelsLintClean) {
  for (const fs::path& f : modelFiles()) {
    const ta::FrontendResult r = ta::parseModelEx(readFile(f));
    EXPECT_TRUE(r.ok) << f.filename().string();
    EXPECT_EQ(r.warningCount(), 0u)
        << f.filename().string() << ":\n"
        << ta::renderDiagnostics(r.diagnostics, f.filename().string());
  }
}

TEST(LintSoundness, LintDoesNotPerturbVerdictsOrStats) {
  for (const fs::path& f : modelFiles()) {
    const std::string text = readFile(f);
    const std::string name = f.filename().string();

    ta::FrontendOptions lintOn;
    ta::FrontendOptions lintOff;
    lintOff.lint = false;
    const ta::FrontendResult on = ta::parseModelEx(text, lintOn);
    const ta::FrontendResult off = ta::parseModelEx(text, lintOff);
    std::string shimErr;
    const auto shim = ta::parseModel(text, &shimErr);
    ASSERT_TRUE(on.ok && off.ok) << name;
    ASSERT_TRUE(shim.has_value()) << name << ": " << shimErr;

    // The three paths must build the very same model.
    const std::string printedOn = ta::printModel(*on.system, on.queries);
    EXPECT_EQ(printedOn, ta::printModel(*off.system, off.queries)) << name;
    EXPECT_EQ(printedOn, ta::printModel(*shim->system, shim->queries))
        << name;

    // And drive the engine identically: same verdict, same
    // deterministic exploration counters (time-dependent fields such
    // as Stats::seconds are excluded by construction here).
    ASSERT_EQ(on.queries.size(), off.queries.size()) << name;
    for (size_t q = 0; q < on.queries.size(); ++q) {
      const engine::Goal gOn{on.queries[q].locations, on.queries[q].predicate,
                             on.queries[q].clockConstraints};
      const engine::Goal gOff{off.queries[q].locations,
                              off.queries[q].predicate,
                              off.queries[q].clockConstraints};
      engine::Reachability cOn(*on.system, {});
      engine::Reachability cOff(*off.system, {});
      const engine::Result rOn = cOn.run(gOn);
      const engine::Result rOff = cOff.run(gOff);
      EXPECT_EQ(rOn.reachable, rOff.reachable) << name << " query " << q;
      EXPECT_EQ(rOn.exhausted, rOff.exhausted) << name << " query " << q;
      EXPECT_EQ(rOn.stats.statesExplored, rOff.stats.statesExplored)
          << name << " query " << q;
      EXPECT_EQ(rOn.stats.statesGenerated, rOff.stats.statesGenerated)
          << name << " query " << q;
      EXPECT_EQ(rOn.stats.statesStored, rOff.stats.statesStored)
          << name << " query " << q;
    }
  }
}

// The hand-built model overload (no SourceMap, no queries) anchors
// warnings at zero spans but still names the construct.
TEST(LintSoundness, HandBuiltModelsGetZeroSpanWarnings) {
  ta::System sys;
  sys.addClock("unused");
  const ta::ProcId p = sys.addAutomaton("P");
  sys.automaton(p).addLocation("a");
  sys.automaton(p).setInitial(0);

  std::vector<ta::Diagnostic> diags;
  ta::runLints(sys, &diags);
  ASSERT_EQ(diags.size(), 1u) << ta::renderDiagnostics(diags);
  EXPECT_EQ(diags[0].code, ta::DiagCode::kUnusedClock);
  EXPECT_EQ(diags[0].span.line, 0);
  EXPECT_NE(diags[0].message.find("'unused'"), std::string::npos);
  // No L010: the convenience overload does not know about queries.
}

}  // namespace
