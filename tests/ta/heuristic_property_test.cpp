// Properties of the best-first heuristic (analyzeMinRemainingTime):
//
//  - Admissibility: for random systems with a never-reset makespan
//    clock, the table's bound at the initial state never exceeds the
//    true optimal makespan (established independently by bounded
//    reachability probes — the binary-search oracle).
//  - Consistency at the table level: from() is the min over outgoing
//    entry() values, entry() dominates from(), targets sit at zero —
//    the Bellman fixpoint inequalities h rests on.
//  - Freshness: a guard only contributes wait time when every incoming
//    edge resets the guarded clock; the conservative cases pin this.
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "engine/reachability.hpp"
#include "ta/bounds_analysis.hpp"
#include "ta/system.hpp"

namespace ta {
namespace {

struct RandomModel {
  ta::System sys;
  ClockId gtime = -1;  ///< never-reset makespan clock
  std::vector<ProcId> procs;
  std::vector<LocId> targets;  ///< one terminal location per process
};

/// A random network of 1-2 forward-chain automata: each hop guards
/// `x >= c` on a clock usually (not always) reset by the previous hop,
/// plus occasional forward skip edges. Always feasible — the chain
/// itself reaches the final location.
RandomModel buildRandom(std::mt19937_64& rng) {
  RandomModel m;
  m.gtime = m.sys.addClock("g");
  const size_t nProcs = 1 + rng() % 2;
  for (size_t p = 0; p < nProcs; ++p) {
    const ClockId x = m.sys.addClock("x" + std::to_string(p));
    const ProcId pid = m.sys.addAutomaton("R" + std::to_string(p));
    m.procs.push_back(pid);
    auto& a = m.sys.automaton(pid);
    const size_t nLocs = 2 + rng() % 4;
    std::vector<LocId> locs;
    for (size_t l = 0; l < nLocs; ++l) {
      locs.push_back(a.addLocation("l" + std::to_string(l)));
    }
    a.setInitial(locs[0]);
    m.targets.push_back(locs.back());
    for (size_t l = 0; l + 1 < nLocs; ++l) {
      auto e = m.sys.edge(pid, locs[l], locs[l + 1])
                   .when(ccGe(x, static_cast<int32_t>(rng() % 6)));
      if (rng() % 4 != 0) e.reset(x);  // mostly fresh, sometimes not
      // Forward skip: a cheaper alternative route the Bellman min must
      // account for.
      if (l + 2 < nLocs && rng() % 3 == 0) {
        m.sys.edge(pid, locs[l], locs[l + 2])
            .when(ccGe(x, static_cast<int32_t>(rng() % 6)))
            .reset(x);
      }
    }
  }
  m.sys.finalize();
  return m;
}

engine::Goal goalOf(const RandomModel& m) {
  engine::Goal g;
  for (size_t p = 0; p < m.procs.size(); ++p) {
    g.locations.push_back({m.procs[p], m.targets[p]});
  }
  return g;
}

/// True optimal makespan by linear probing of `gtime <= B` — the same
/// oracle the binary-search optimizer trusts, minus the bisection.
int32_t optimalMakespan(const RandomModel& m, int32_t maxBound) {
  for (int32_t b = 0; b <= maxBound; ++b) {
    engine::Goal g = goalOf(m);
    g.clockConstraints.push_back(ccLe(m.gtime, b));
    engine::Options opts;
    engine::Reachability checker(m.sys, opts);
    if (checker.run(g).reachable) return b;
  }
  ADD_FAILURE() << "target unreachable within bound " << maxBound;
  return -1;
}

std::vector<std::vector<LocId>> targetsOf(const RandomModel& m) {
  std::vector<std::vector<LocId>> t(m.sys.numAutomata());
  for (size_t p = 0; p < m.procs.size(); ++p) {
    t[static_cast<size_t>(m.procs[p])].push_back(m.targets[p]);
  }
  return t;
}

TEST(HeuristicProperty, AdmissibleAtTheInitialState) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    std::mt19937_64 rng(seed);
    const RandomModel m = buildRandom(rng);
    const RemainingTimeTable rt =
        analyzeMinRemainingTime(m.sys, targetsOf(m));
    std::vector<LocId> init;
    for (size_t p = 0; p < m.sys.numAutomata(); ++p) {
      init.push_back(m.sys.automaton(static_cast<ProcId>(p)).initial());
    }
    const dbm::value_t h = rt.lowerBound(init);
    ASSERT_LT(h, kUnreachableRemaining) << "seed " << seed;
    const int32_t opt = optimalMakespan(m, 64);
    ASSERT_GE(opt, 0) << "seed " << seed;
    EXPECT_LE(h, opt) << "seed " << seed
                      << ": heuristic overestimates the optimum";
  }
}

TEST(HeuristicProperty, TableIsABellmanFixpoint) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    std::mt19937_64 rng(seed);
    const RandomModel m = buildRandom(rng);
    const RemainingTimeTable rt =
        analyzeMinRemainingTime(m.sys, targetsOf(m));
    for (size_t pi = 0; pi < m.procs.size(); ++pi) {
      const ProcId p = m.procs[pi];
      const Automaton& a = m.sys.automaton(p);
      ASSERT_TRUE(rt.hasTargets(p));
      EXPECT_EQ(rt.entry(p, m.targets[pi]), 0) << "seed " << seed;
      EXPECT_EQ(rt.from(p, m.targets[pi]), 0) << "seed " << seed;
      for (LocId l = 0; l < static_cast<LocId>(a.numLocations()); ++l) {
        // A state may have dwelt arbitrarily long: from() must not
        // exceed the fresh-entry estimate...
        EXPECT_LE(rt.from(p, l), rt.entry(p, l)) << "seed " << seed;
        // ...and is the min over successors' entry() values — the
        // consistency inequality of the search ordering.
        for (const int32_t ei : a.outgoing(l)) {
          const Edge& e = a.edges()[static_cast<size_t>(ei)];
          EXPECT_LE(rt.from(p, l), rt.entry(p, e.dst))
              << "seed " << seed << " proc " << pi << " edge " << ei;
        }
      }
    }
  }
}

TEST(HeuristicProperty, GuardOnUnfreshClockContributesNoWait) {
  // A --(no reset)--> B --(x >= 5)--> C: x may already be large when B
  // is entered, so the analysis must not charge the 5.
  ta::System sys;
  const ClockId x = sys.addClock("x");
  const ProcId p = sys.addAutomaton("A");
  auto& a = sys.automaton(p);
  const LocId la = a.addLocation("a");
  const LocId lb = a.addLocation("b");
  const LocId lc = a.addLocation("c");
  a.setInitial(la);
  sys.edge(p, la, lb);  // no reset: x stale at b
  sys.edge(p, lb, lc).when(ccGe(x, 5));
  sys.finalize();
  const RemainingTimeTable rt = analyzeMinRemainingTime(sys, {{lc}});
  EXPECT_EQ(rt.entry(p, lb), 0);
  EXPECT_EQ(rt.entry(p, la), 0);
}

TEST(HeuristicProperty, GuardOnFreshClockChargesTheWait) {
  ta::System sys;
  const ClockId x = sys.addClock("x");
  const ProcId p = sys.addAutomaton("A");
  auto& a = sys.automaton(p);
  const LocId la = a.addLocation("a");
  const LocId lb = a.addLocation("b");
  const LocId lc = a.addLocation("c");
  a.setInitial(la);
  sys.edge(p, la, lb).reset(x);
  sys.edge(p, lb, lc).when(ccGe(x, 5));
  sys.finalize();
  const RemainingTimeTable rt = analyzeMinRemainingTime(sys, {{lc}});
  EXPECT_EQ(rt.entry(p, lb), 5);
  EXPECT_EQ(rt.entry(p, la), 5);
  EXPECT_EQ(rt.entry(p, lc), 0);
  // Initial locations count as fresh entries (the virtual entry resets
  // everything — all clocks start at 0), so waits chain from the start:
  ta::System sys2;
  const ClockId y = sys2.addClock("y");
  const ProcId q = sys2.addAutomaton("B");
  auto& b = sys2.automaton(q);
  const LocId m0 = b.addLocation("m0");
  const LocId m1 = b.addLocation("m1");
  b.setInitial(m0);
  sys2.edge(q, m0, m1).when(ccGe(y, 7));
  sys2.finalize();
  const RemainingTimeTable rt2 = analyzeMinRemainingTime(sys2, {{m1}});
  EXPECT_EQ(rt2.entry(q, m0), 7);
}

TEST(HeuristicProperty, UnreachableLocationsReportTheSentinel) {
  ta::System sys;
  const ProcId p = sys.addAutomaton("A");
  auto& a = sys.automaton(p);
  const LocId la = a.addLocation("a");
  const LocId lb = a.addLocation("b");
  const LocId trap = a.addLocation("trap");
  a.setInitial(la);
  sys.edge(p, la, lb);
  sys.edge(p, la, trap);  // dead end: no way back to b
  sys.finalize();
  const RemainingTimeTable rt = analyzeMinRemainingTime(sys, {{lb}});
  EXPECT_EQ(rt.entry(p, trap), kUnreachableRemaining);
  const std::vector<LocId> dead{trap};
  EXPECT_EQ(rt.lowerBound(dead), kUnreachableRemaining);
}

}  // namespace
}  // namespace ta
