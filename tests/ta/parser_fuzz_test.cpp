// Randomized hardening of the .gta frontend (ctest label: fuzz; the CI
// script additionally runs this suite under ASan+UBSan).
//
// Three generators, all with fixed seeds:
//   - mutation fuzzing over the diagnostic corpus and example models
//     (byte flips/inserts/deletes, chunk swaps, truncations, splices),
//   - token soup (random well-lexed token sequences),
//   - raw byte soup (arbitrary characters).
//
// Invariants checked on every input: the frontend returns (no crash,
// no hang — the parser's sync loops always consume), the result is
// well-formed (system non-null, ok <=> zero errors, spans
// non-negative), and a parse that succeeds pretty-prints to a form
// that reparses. Mutants suffixed with a line that cannot lex must
// produce at least one diagnostic.
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ta/parser.hpp"
#include "ta/printer.hpp"

namespace fs = std::filesystem;

namespace {

std::vector<std::string> seedTexts() {
  std::vector<std::string> seeds;
  for (const char* dir : {DIAG_CORPUS_DIR, MODELS_DIR}) {
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || entry.path().extension() != ".gta") {
        continue;
      }
      std::ifstream in(entry.path());
      std::ostringstream ss;
      ss << in.rdbuf();
      seeds.push_back(ss.str());
    }
  }
  return seeds;
}

std::string mutate(const std::string& base, std::mt19937_64& rng) {
  std::string s = base;
  std::uniform_int_distribution<int> kind(0, 5);
  std::uniform_int_distribution<int> byte(1, 126);
  const int rounds = 1 + static_cast<int>(rng() % 4);
  for (int i = 0; i < rounds && !s.empty(); ++i) {
    const size_t at = rng() % s.size();
    switch (kind(rng)) {
      case 0:  // flip one byte
        s[at] = static_cast<char>(byte(rng));
        break;
      case 1:  // insert a byte
        s.insert(at, 1, static_cast<char>(byte(rng)));
        break;
      case 2:  // delete a run
        s.erase(at, 1 + rng() % 8);
        break;
      case 3:  // duplicate a chunk
        s.insert(at, s.substr(at, 1 + rng() % 16));
        break;
      case 4:  // truncate
        s.resize(at);
        break;
      default: {  // swap two chunks
        const size_t b = rng() % (s.size() + 1);
        const size_t lo = std::min(at, b);
        const size_t hi = std::max(at, b);
        s = s.substr(0, lo) + s.substr(hi) + s.substr(lo, hi - lo);
        break;
      }
    }
  }
  return s;
}

/// The invariants every input, however mangled, must satisfy.
void checkFrontendInvariants(const std::string& text) {
  const ta::FrontendResult r = ta::parseModelEx(text);
  ASSERT_NE(r.system, nullptr);
  EXPECT_EQ(r.ok, r.errorCount() == 0);
  for (const ta::Diagnostic& d : r.diagnostics) {
    EXPECT_GE(d.span.line, 0);
    EXPECT_GE(d.span.col, 0);
    EXPECT_FALSE(d.message.empty());
  }
  if (r.ok) {
    // A parse that succeeds must survive a print -> parse round trip.
    const std::string printed = ta::printModel(*r.system, r.queries);
    const ta::FrontendResult back = ta::parseModelEx(printed);
    EXPECT_TRUE(back.ok) << "printed form of a valid parse fails to "
                            "reparse:\n"
                         << ta::renderDiagnostics(back.diagnostics) << "\n"
                         << printed;
  }
}

TEST(ParserFuzz, CorpusMutationsNeverCrash) {
  const auto seeds = seedTexts();
  ASSERT_FALSE(seeds.empty());
  std::mt19937_64 rng(0xF00DF00Du);
  for (const std::string& seed : seeds) {
    for (int i = 0; i < 60; ++i) {
      checkFrontendInvariants(mutate(seed, rng));
    }
  }
}

TEST(ParserFuzz, SplicedSeedsNeverCrash) {
  const auto seeds = seedTexts();
  ASSERT_GE(seeds.size(), 2u);
  std::mt19937_64 rng(0xC0FFEEu);
  for (int i = 0; i < 300; ++i) {
    const std::string& a = seeds[rng() % seeds.size()];
    const std::string& b = seeds[rng() % seeds.size()];
    const std::string spliced = a.substr(0, rng() % (a.size() + 1)) +
                                b.substr(rng() % (b.size() + 1));
    checkFrontendInvariants(spliced);
  }
}

// A mutant with a guaranteed-unlexable final line must always produce
// at least one diagnostic: '@' on a fresh line sits outside any
// comment (comments end at newline) and any string (strings cannot
// cross newlines), so the lexer must flag it — or have already
// diagnosed something worse.
TEST(ParserFuzz, MangledInputAlwaysDiagnosed) {
  const auto seeds = seedTexts();
  std::mt19937_64 rng(0xDEADBEEFu);
  for (const std::string& seed : seeds) {
    for (int i = 0; i < 30; ++i) {
      const std::string text = mutate(seed, rng) + "\n@\n";
      const ta::FrontendResult r = ta::parseModelEx(text);
      EXPECT_FALSE(r.diagnostics.empty())
          << "no diagnostic at all for a mangled input ending in '@'";
      EXPECT_FALSE(r.ok);
    }
  }
}

TEST(ParserFuzz, TokenSoupNeverCrashes) {
  static const char* kVocab[] = {
      "clock",   "int",   "chan",  "broadcast", "process", "query",
      "reach",   "loc",   "init",  "edge",      "urgent",  "committed",
      "guard",   "sync",  "reset", "assign",    "label",   "inv",
      "x",       "v",     "P",     "a",         "0",       "1",
      "42",      ";",     ",",     "{",         "}",       "[",
      "]",       "(",     ")",     "->",        "=",       "==",
      "!=",      "<=",    ">=",    "<",         ">",       "+",
      "-",       "*",     "/",     "%",         "&&",      "||",
      "!",       "?",     ":",     ".",         "\"s\"",   "\n"};
  std::mt19937_64 rng(0xBADC0DEu);
  for (int i = 0; i < 400; ++i) {
    std::string text;
    const int len = static_cast<int>(rng() % 200);
    for (int t = 0; t < len; ++t) {
      text += kVocab[rng() % (sizeof(kVocab) / sizeof(kVocab[0]))];
      text += ' ';
    }
    checkFrontendInvariants(text);
  }
}

TEST(ParserFuzz, ByteSoupNeverCrashes) {
  std::mt19937_64 rng(0x5EED5EEDu);
  for (int i = 0; i < 400; ++i) {
    std::string text;
    const int len = static_cast<int>(rng() % 300);
    for (int t = 0; t < len; ++t) {
      text += static_cast<char>(1 + rng() % 127);
    }
    const ta::FrontendResult r = ta::parseModelEx(text);
    ASSERT_NE(r.system, nullptr);
    EXPECT_EQ(r.ok, r.errorCount() == 0);
  }
}

// Pathological nesting must be cut off by the depth guard, not the
// process stack.
TEST(ParserFuzz, DeepNestingIsRejectedGracefully) {
  for (const char* open : {"(", "!", "-"}) {
    std::string guard;
    for (int i = 0; i < 20000; ++i) guard += open;
    const std::string text = "int v;\nprocess P { loc a; init a; "
                             "edge a -> a { guard " +
                             guard + "1; } }\n";
    const ta::FrontendResult r = ta::parseModelEx(text);
    EXPECT_FALSE(r.ok);
    bool sawDepth = false;
    for (const ta::Diagnostic& d : r.diagnostics) {
      sawDepth = sawDepth || d.code == ta::DiagCode::kNestingTooDeep;
    }
    EXPECT_TRUE(sawDepth) << "operator " << open;
  }
}

}  // namespace
