// Unit tests of the static per-location LU-bound analysis
// (ta/bounds_analysis.hpp) on hand-built automata with known tables:
// guard/invariant contributions, backward propagation across
// non-resetting edges, severing at resets, nonzero-reset flooring,
// loops, diagonal constraints and the refinement relation against the
// global max-bounds.
#include <gtest/gtest.h>

#include "ta/bounds_analysis.hpp"
#include "ta/system.hpp"

namespace ta {
namespace {

TEST(BoundsAnalysis, GuardsContributeAtSourceAndPropagateBackward) {
  System sys;
  const ClockId x = sys.addClock("x");
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  const LocId l2 = a.addLocation("l2");
  sys.edge(p, l0, l1).when(ccGe(x, 3));
  sys.edge(p, l1, l2).when(ccLe(x, 7));
  sys.finalize();

  const LUTable lu = analyzeClockBounds(sys);
  ASSERT_EQ(lu.numAutomata(), 1u);

  // l1 observes its own outgoing upper guard only.
  EXPECT_EQ(lu.lower(p, l1, x), -1);
  EXPECT_EQ(lu.upper(p, l1, x), 7);
  // l0 observes its own lower guard plus l1's bounds (no reset between).
  EXPECT_EQ(lu.lower(p, l0, x), 3);
  EXPECT_EQ(lu.upper(p, l0, x), 7);
  // Nothing is observable from the sink.
  EXPECT_TRUE(lu.at(p, l2).empty());
}

TEST(BoundsAnalysis, ResetSeversBackwardPropagation) {
  System sys;
  const ClockId x = sys.addClock("x");
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  const LocId l2 = a.addLocation("l2");
  sys.edge(p, l0, l1).reset(x);
  sys.edge(p, l1, l2).when(ccGe(x, 5));
  sys.finalize();

  const LUTable lu = analyzeClockBounds(sys);
  EXPECT_EQ(lu.lower(p, l1, x), 5);
  // The guard on x at l1 is unobservable from l0: the connecting edge
  // resets x, so whatever value x has at l0 is never compared again.
  EXPECT_TRUE(lu.at(p, l0).empty());
}

TEST(BoundsAnalysis, NonzeroResetFloorsDestinationBounds) {
  System sys;
  const ClockId x = sys.addClock("x");
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  const LocId l2 = a.addLocation("l2");
  sys.edge(p, l0, l1).reset(x, 9);
  sys.edge(p, l1, l2).reset(x, 0);
  sys.finalize();

  const LUTable lu = analyzeClockBounds(sys);
  // x := 9 means x holds 9 outright at l1; both bounds floor at 9 so
  // extrapolation cannot erase the value.
  EXPECT_EQ(lu.lower(p, l1, x), 9);
  EXPECT_EQ(lu.upper(p, l1, x), 9);
  // A reset to zero contributes nothing.
  EXPECT_TRUE(lu.at(p, l2).empty());
  EXPECT_TRUE(lu.at(p, l0).empty());
}

TEST(BoundsAnalysis, InvariantContributesLocallyAndUpstream) {
  System sys;
  const ClockId x = sys.addClock("x");
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  a.setInvariant(l1, {ccLe(x, 4)});
  sys.edge(p, l0, l1);
  sys.finalize();

  const LUTable lu = analyzeClockBounds(sys);
  EXPECT_EQ(lu.upper(p, l1, x), 4);
  EXPECT_EQ(lu.lower(p, l1, x), -1);
  // Observable one step earlier: the edge does not reset x.
  EXPECT_EQ(lu.upper(p, l0, x), 4);
}

TEST(BoundsAnalysis, LoopReachesFixpoint) {
  System sys;
  const ClockId x = sys.addClock("x");
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  sys.edge(p, l0, l1);
  sys.edge(p, l1, l0).when(ccGe(x, 2));
  sys.finalize();

  const LUTable lu = analyzeClockBounds(sys);
  // The cycle carries the bound around without resets; the fixpoint
  // must terminate with the same bound at both locations.
  EXPECT_EQ(lu.lower(p, l0, x), 2);
  EXPECT_EQ(lu.lower(p, l1, x), 2);
  EXPECT_EQ(lu.upper(p, l0, x), -1);
  EXPECT_EQ(lu.upper(p, l1, x), -1);
}

TEST(BoundsAnalysis, DiagonalConstraintFoldsAsymmetrically) {
  System sys;
  const ClockId x = sys.addClock("x");
  const ClockId y = sys.addClock("y");
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  sys.edge(p, l0, l1).when(ccDiffLe(x, y, 3)).reset(x).reset(y);
  sys.finalize();

  const LUTable lu = analyzeClockBounds(sys);
  // x - y <= 3 is an upper-type bound on x (constant 3) and a
  // lower-type bound on y with constant -3, clamped at 0: y was
  // compared, so its bound is 0 rather than the "never observed" -1.
  EXPECT_EQ(lu.upper(p, l0, x), 3);
  EXPECT_EQ(lu.lower(p, l0, x), -1);
  EXPECT_EQ(lu.lower(p, l0, y), 0);
  EXPECT_EQ(lu.upper(p, l0, y), -1);
}

TEST(BoundsAnalysis, NegativeDiagonalConstantClampsToZero) {
  System sys;
  const ClockId x = sys.addClock("x");
  const ClockId y = sys.addClock("y");
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  sys.edge(p, l0, l1).when(ccDiffLe(x, y, -2)).reset(x).reset(y);
  sys.finalize();

  const LUTable lu = analyzeClockBounds(sys);
  // x - y <= -2: upper side clamps to 0, lower side of y becomes 2.
  EXPECT_EQ(lu.upper(p, l0, x), 0);
  EXPECT_EQ(lu.lower(p, l0, y), 2);
}

TEST(BoundsAnalysis, RefinesGlobalMaxBounds) {
  System sys;
  const ClockId x = sys.addClock("x");
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  const LocId l2 = a.addLocation("l2");
  sys.edge(p, l0, l1).when(ccLe(x, 10)).reset(x);
  sys.edge(p, l1, l2).when(ccLe(x, 2));
  sys.finalize();

  const LUTable lu = analyzeClockBounds(sys);
  // Global Extra_M must keep every zone distinct up to M(x) = 10
  // everywhere; the per-location table knows l1 only ever compares x
  // against 2 again — a strictly coarser abstraction at l1.
  EXPECT_EQ(sys.maxBounds()[static_cast<size_t>(x)], 10);
  EXPECT_EQ(lu.upper(p, l0, x), 10);
  EXPECT_EQ(lu.upper(p, l1, x), 2);
  for (const LocId l : {l0, l1, l2}) {
    for (const ClockLU& e : lu.at(p, l)) {
      const auto m = sys.maxBounds()[static_cast<size_t>(e.clock)];
      EXPECT_LE(e.lower, m);
      EXPECT_LE(e.upper, m);
    }
  }
}

TEST(BoundsAnalysis, ForeignClocksAbsentFromRows) {
  System sys;
  const ClockId x = sys.addClock("x");
  const ClockId y = sys.addClock("y");
  const ProcId p = sys.addAutomaton("P");
  const ProcId q = sys.addAutomaton("Q");
  auto& a = sys.automaton(p);
  auto& b = sys.automaton(q);
  const LocId pl0 = a.addLocation("l0");
  const LocId pl1 = a.addLocation("l1");
  const LocId ql0 = b.addLocation("m0");
  const LocId ql1 = b.addLocation("m1");
  sys.edge(p, pl0, pl1).when(ccGe(x, 6));
  sys.edge(q, ql0, ql1).when(ccLe(y, 8));
  sys.finalize();

  const LUTable lu = analyzeClockBounds(sys);
  ASSERT_EQ(lu.numAutomata(), 2u);
  // Each automaton's rows mention only the clocks it observes; the
  // engine combines rows across the location vector by pointwise max.
  ASSERT_EQ(lu.at(p, pl0).size(), 1u);
  EXPECT_EQ(lu.at(p, pl0)[0].clock, x);
  EXPECT_EQ(lu.lower(p, pl0, y), -1);
  ASSERT_EQ(lu.at(q, ql0).size(), 1u);
  EXPECT_EQ(lu.at(q, ql0)[0].clock, y);
  EXPECT_EQ(lu.upper(q, ql0, x), -1);
}

TEST(BoundsAnalysis, BranchingTakesPointwiseMax) {
  System sys;
  const ClockId x = sys.addClock("x");
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  const LocId l2 = a.addLocation("l2");
  // Two futures from l0: one compares x against 1, the other against 6.
  sys.edge(p, l0, l1).when(ccGe(x, 1));
  sys.edge(p, l0, l2).when(ccGe(x, 6));
  sys.finalize();

  const LUTable lu = analyzeClockBounds(sys);
  // l0 must keep the larger constant: abstraction by the smaller one
  // could merge zones the x >= 6 branch still distinguishes.
  EXPECT_EQ(lu.lower(p, l0, x), 6);
}

}  // namespace
}  // namespace ta
