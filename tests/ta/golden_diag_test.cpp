// Golden-diagnostic harness over the tests/ta/diag corpus.
//
// Each corpus file is a .gta model annotated with inline expectation
// comments at the end of the offending line:
//
//   edge a -> nowhere { }   //~ ERROR[P004] unknown location 'nowhere'
//   clock spare;            //~ WARN[L001] never used
//
// The trailing substring must appear in the diagnostic message; the
// expectation matches only a diagnostic of the same code on the same
// line. `//~ ERROR[P001]@17 text` anchors to an absolute line instead
// (for diagnostics reported at end-of-input, past the comment's line).
//
// Matching is bidirectional: an expected diagnostic that is not
// emitted is a failure, and an emitted diagnostic that is not expected
// is a failure. Files are discovered at runtime, so dropping a new
// .gta into the corpus directory adds it to the suite with no build
// step.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ta/parser.hpp"

namespace fs = std::filesystem;

namespace {

struct Expectation {
  int line = 0;
  ta::Severity severity = ta::Severity::kError;
  ta::DiagCode code = ta::DiagCode::kUnexpectedToken;
  std::string substring;
  bool matched = false;
};

std::string readFile(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Parse all `//~ ERROR[CODE] text` / `//~ WARN[CODE] text` markers.
/// Returns false (with *error set) on a malformed marker — a corpus
/// authoring bug, reported as a test failure.
bool parseExpectations(const std::string& text,
                       std::vector<Expectation>* out, std::string* error) {
  std::istringstream in(text);
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    size_t pos = 0;
    while ((pos = line.find("//~", pos)) != std::string::npos) {
      size_t p = pos + 3;
      while (p < line.size() && line[p] == ' ') ++p;
      Expectation e;
      e.line = lineNo;
      if (line.compare(p, 6, "ERROR[") == 0) {
        e.severity = ta::Severity::kError;
        p += 6;
      } else if (line.compare(p, 5, "WARN[") == 0) {
        e.severity = ta::Severity::kWarning;
        p += 5;
      } else {
        *error = "line " + std::to_string(lineNo) +
                 ": malformed expectation (want ERROR[..] or WARN[..])";
        return false;
      }
      const size_t close = line.find(']', p);
      if (close == std::string::npos) {
        *error = "line " + std::to_string(lineNo) + ": missing ']'";
        return false;
      }
      ta::DiagCode code;
      if (!ta::diagCodeFromName(line.substr(p, close - p), &code)) {
        *error = "line " + std::to_string(lineNo) + ": unknown code '" +
                 line.substr(p, close - p) + "'";
        return false;
      }
      e.code = code;
      p = close + 1;
      if (p < line.size() && line[p] == '@') {
        ++p;
        size_t end = p;
        while (end < line.size() && std::isdigit(line[end]) != 0) ++end;
        e.line = std::stoi(line.substr(p, end - p));
        p = end;
      }
      while (p < line.size() && line[p] == ' ') ++p;
      // Substring runs to the next marker (several expectations may
      // share a line) or end of line.
      size_t stop = line.find("//~", p);
      if (stop == std::string::npos) stop = line.size();
      size_t len = stop - p;
      while (len > 0 && line[p + len - 1] == ' ') --len;
      e.substring = line.substr(p, len);
      out->push_back(e);
      pos = stop;
    }
  }
  return true;
}

/// Run one corpus file through the frontend and match diagnostics
/// against expectations in both directions. Returns human-readable
/// failure descriptions; empty means the file passes.
std::vector<std::string> runGoldenFile(const fs::path& path) {
  std::vector<std::string> failures;
  const std::string text = readFile(path);
  std::vector<Expectation> expected;
  std::string err;
  if (!parseExpectations(text, &expected, &err)) {
    failures.push_back("bad expectation: " + err);
    return failures;
  }

  const ta::FrontendResult r = ta::parseModelEx(text);
  for (const ta::Diagnostic& d : r.diagnostics) {
    bool matched = false;
    for (Expectation& e : expected) {
      if (e.matched || e.line != d.span.line || e.code != d.code ||
          e.severity != d.severity) {
        continue;
      }
      if (!e.substring.empty() &&
          d.message.find(e.substring) == std::string::npos) {
        continue;
      }
      e.matched = true;
      matched = true;
      break;
    }
    if (!matched) {
      failures.push_back("unexpected diagnostic: " + ta::toString(d));
    }
  }
  for (const Expectation& e : expected) {
    if (e.matched) continue;
    failures.push_back(
        "expected " +
        std::string(e.severity == ta::Severity::kError ? "ERROR[" : "WARN[") +
        ta::diagCodeName(e.code) + "] at line " + std::to_string(e.line) +
        " ('" + e.substring + "') was not emitted");
  }
  return failures;
}

std::vector<fs::path> corpusFiles() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(DIAG_CORPUS_DIR)) {
    if (entry.is_regular_file() && entry.path().extension() == ".gta") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(GoldenDiag, CorpusIsPresent) {
  // The acceptance bar: a corpus broad enough to exercise every lint
  // pass and every parse-recovery path.
  EXPECT_GE(corpusFiles().size(), 25u);
}

TEST(GoldenDiag, Corpus) {
  const auto files = corpusFiles();
  ASSERT_FALSE(files.empty());
  for (const fs::path& f : files) {
    const auto failures = runGoldenFile(f);
    for (const std::string& msg : failures) {
      ADD_FAILURE() << f.filename().string() << ": " << msg;
    }
  }
}

// Every diagnostic code the frontend can emit must be exercised by at
// least one corpus file — adding a DiagCode without a golden test is a
// build-red event, not a silent gap.
TEST(GoldenDiag, CoverageAllCodes) {
  std::set<ta::DiagCode> seen;
  for (const fs::path& f : corpusFiles()) {
    std::vector<Expectation> expected;
    std::string err;
    ASSERT_TRUE(parseExpectations(readFile(f), &expected, &err))
        << f.filename().string() << ": " << err;
    for (const Expectation& e : expected) seen.insert(e.code);
  }
  for (const ta::DiagCode code : ta::allDiagCodes()) {
    EXPECT_TRUE(seen.count(code) == 1)
        << "no corpus file exercises " << ta::diagCodeName(code);
  }
}

// The runner itself must fail in both directions: an expectation that
// never fires, and an emitted diagnostic nobody expected. The files in
// diag/broken/ are deliberately wrong in exactly one direction each.
TEST(GoldenDiag, BrokenExpectationFailsBothWays) {
  const fs::path broken = fs::path(DIAG_CORPUS_DIR) / "broken";

  const auto missing = runGoldenFile(broken / "missing_expected.gta");
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_NE(missing[0].find("was not emitted"), std::string::npos)
      << missing[0];

  const auto unexpected = runGoldenFile(broken / "unexpected_emitted.gta");
  ASSERT_EQ(unexpected.size(), 1u);
  EXPECT_NE(unexpected[0].find("unexpected diagnostic"), std::string::npos)
      << unexpected[0];
}

// A clean model produces no diagnostics at all.
TEST(GoldenDiag, CleanModelIsSilent) {
  const ta::FrontendResult r = ta::parseModelEx(
      "clock x;\n"
      "process P {\n"
      "  loc a { inv x <= 3; }\n"
      "  loc b;\n"
      "  init a;\n"
      "  edge a -> b { guard x >= 1; reset x; }\n"
      "}\n"
      "query reach P.b;\n");
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.diagnostics.empty())
      << ta::renderDiagnostics(r.diagnostics);
}

}  // namespace
