#include "ta/expr.hpp"

#include <gtest/gtest.h>

namespace ta {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  ExprPool pool;
  std::vector<int32_t> vars{10, 20, 3, 0, 5};

  [[nodiscard]] int64_t ev(ExprRef e) { return pool.eval(e, vars); }
  [[nodiscard]] Ex lit(int32_t v) { return {pool, pool.constant(v)}; }
  [[nodiscard]] Ex var(VarId v) { return {pool, pool.var(v)}; }
};

TEST_F(ExprTest, Constants) {
  EXPECT_EQ(ev(pool.constant(42)), 42);
  EXPECT_EQ(ev(pool.constant(-7)), -7);
}

TEST_F(ExprTest, AbsentGuardIsTrue) {
  EXPECT_EQ(ev(kNoExpr), 1);
  EXPECT_TRUE(pool.evalBool(kNoExpr, vars));
}

TEST_F(ExprTest, VariableRead) {
  EXPECT_EQ(ev(pool.var(0)), 10);
  EXPECT_EQ(ev(pool.var(4)), 5);
}

TEST_F(ExprTest, Arithmetic) {
  EXPECT_EQ(ev((var(0) + var(1)).ref()), 30);
  EXPECT_EQ(ev((var(1) - var(0)).ref()), 10);
  EXPECT_EQ(ev((var(0) * var(2)).ref()), 30);
  EXPECT_EQ(ev((var(1) / var(2)).ref()), 6);
  EXPECT_EQ(ev((var(1) % var(2)).ref()), 2);
  EXPECT_EQ(ev((-var(0)).ref()), -10);
}

TEST_F(ExprTest, Comparisons) {
  EXPECT_EQ(ev((var(0) < var(1)).ref()), 1);
  EXPECT_EQ(ev((var(0) > var(1)).ref()), 0);
  EXPECT_EQ(ev((var(0) <= lit(10)).ref()), 1);
  EXPECT_EQ(ev((var(0) >= lit(11)).ref()), 0);
  EXPECT_EQ(ev((var(0) == lit(10)).ref()), 1);
  EXPECT_EQ(ev((var(0) != lit(10)).ref()), 0);
}

TEST_F(ExprTest, Boolean) {
  EXPECT_EQ(ev(((var(0) == 10) && (var(1) == 20)).ref()), 1);
  EXPECT_EQ(ev(((var(0) == 11) || (var(1) == 20)).ref()), 1);
  EXPECT_EQ(ev((!(var(0) == 10)).ref()), 0);
}

TEST_F(ExprTest, Ternary) {
  // The paper's machine-choice expression shape:
  //   next := (count1 <= count2 ? m1 : m4)
  const Ex cond = var(0) <= var(1);
  EXPECT_EQ(ev(Ex::ite(cond, lit(1), lit(4)).ref()), 1);
  const Ex cond2 = var(1) <= var(0);
  EXPECT_EQ(ev(Ex::ite(cond2, lit(1), lit(4)).ref()), 4);
}

TEST_F(ExprTest, MinMax) {
  EXPECT_EQ(ev(pool.binary(Op::kMin, pool.var(0), pool.var(1))), 10);
  EXPECT_EQ(ev(pool.binary(Op::kMax, pool.var(0), pool.var(1))), 20);
}

TEST_F(ExprTest, ArrayCellDynamicIndex) {
  // vars[base + vars[2]] where base=0 and vars[2]==3 -> vars[3] == 0.
  const ExprRef e = pool.arrayCell(0, pool.var(2), 5);
  EXPECT_EQ(ev(e), 0);
}

TEST_F(ExprTest, NestedExpression) {
  // (v0 + v1) * 2 - v4  ==  (10+20)*2-5 == 55
  const Ex e = (var(0) + var(1)) * lit(2) - var(4);
  EXPECT_EQ(ev(e.ref()), 55);
}

TEST_F(ExprTest, ShortCircuitProtectsDivision) {
  // v3 == 0, so (v3 != 0 && v0 / v3 > 0) must not divide.
  const Ex e = (var(3) != 0) && (var(0) / var(3) > 0);
  EXPECT_EQ(ev(e.ref()), 0);
}

TEST_F(ExprTest, ToStringReadable) {
  const std::vector<std::string> names{"a", "b", "c", "d", "e"};
  const Ex e = (var(0) + lit(2)) <= var(1);
  EXPECT_EQ(pool.toString(e.ref(), names), "((a + 2) <= b)");
  EXPECT_EQ(pool.toString(kNoExpr, names), "true");
}

#ifdef NDEBUG
TEST_F(ExprTest, OutOfBoundsIndexReportsNotOk) {
  const ExprRef bad = pool.arrayCell(0, pool.constant(99), 5);
  bool ok = true;
  EXPECT_EQ(pool.eval(bad, vars, &ok), 0);
  EXPECT_FALSE(ok);
}

TEST_F(ExprTest, DivisionByZeroReportsNotOk) {
  const ExprRef bad = pool.binary(Op::kDiv, pool.var(0), pool.var(3));
  bool ok = true;
  EXPECT_EQ(pool.eval(bad, vars, &ok), 0);
  EXPECT_FALSE(ok);
}
#endif

}  // namespace
}  // namespace ta
