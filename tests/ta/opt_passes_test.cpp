// Unit oracles for the pre-exploration optimization pipeline
// (ta/ir.hpp + ta/opt_passes.hpp) and its engine bridge:
//
//  - per-pass counters and structural effects on hand-built models
//    (constant folding, never-enabled-edge and dead-location removal,
//    invariant-implied guard simplification, dead-store elision, clock
//    unification, pairwise composition);
//  - clock unification checked against a brute-force integer-point
//    (digitized) explorer — exact for the closed, diagonal-free models
//    used here, and entirely independent of the DBM machinery the
//    passes themselves rely on;
//  - verdict/trace equivalence between optLevel 0 and 2 across engines
//    (including BestFirst with its cost clock) on the shared random
//    model generator;
//  - print -> parse round trips of optimized systems.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "../engine/random_model.hpp"
#include "engine/best_first.hpp"
#include "engine/reachability.hpp"
#include "engine/trace.hpp"
#include "ta/ir.hpp"
#include "ta/opt_passes.hpp"
#include "ta/parser.hpp"
#include "ta/printer.hpp"

namespace ta {
namespace {

engine::Result runAtLevel(const System& sys, const engine::Goal& goal,
                          int level) {
  engine::Options o;
  o.optLevel = level;
  engine::Reachability checker(sys, o);
  return checker.run(goal);
}

OptimizedModel optimizeAtLevel(const System& sys, const OptPins& pins,
                               int level) {
  return optimizeModel(sys, pins, PassConfig::forLevel(level));
}

// -- Brute-force integer-point explorer ----------------------------------
//
// Digitized semantics: clock valuations are integer vectors, time
// advances in unit steps, and every clock is capped at `cap` (one past
// the largest constant). Exact for closed (weak-bound), diagonal-free
// models — the only kind the oracle tests below build. No variables,
// no channels, no urgency: plain timed graphs.

struct Digitized {
  const System& sys;
  int cap;

  using State = std::pair<std::vector<LocId>, std::vector<int>>;

  [[nodiscard]] bool satisfies(const std::vector<int>& v,
                               const ClockConstraint& cc) const {
    const int vi = cc.i == 0 ? 0 : v[static_cast<size_t>(cc.i) - 1];
    const int vj = cc.j == 0 ? 0 : v[static_cast<size_t>(cc.j) - 1];
    const int diff = vi - vj;
    return dbm::isStrict(cc.bound) ? diff < dbm::boundValue(cc.bound)
                                   : diff <= dbm::boundValue(cc.bound);
  }

  [[nodiscard]] bool invariantsHold(const State& s) const {
    for (size_t p = 0; p < sys.numAutomata(); ++p) {
      const auto& a = sys.automaton(static_cast<ProcId>(p));
      for (const ClockConstraint& cc : a.location(s.first[p]).invariant) {
        if (!satisfies(s.second, cc)) return false;
      }
    }
    return true;
  }

  /// All (location-vector) states reachable from the initial state.
  [[nodiscard]] std::set<State> explore() const {
    State init;
    for (size_t p = 0; p < sys.numAutomata(); ++p) {
      init.first.push_back(sys.automaton(static_cast<ProcId>(p)).initial());
    }
    init.second.assign(sys.numClocks(), 0);
    std::set<State> seen;
    std::vector<State> stack{init};
    seen.insert(init);
    while (!stack.empty()) {
      State s = stack.back();
      stack.pop_back();
      std::vector<State> next;
      // Unit delay (each clock capped).
      State d = s;
      for (int& c : d.second) c = std::min(c + 1, cap);
      if (invariantsHold(d)) next.push_back(std::move(d));
      // Edge steps.
      for (size_t p = 0; p < sys.numAutomata(); ++p) {
        const auto& a = sys.automaton(static_cast<ProcId>(p));
        for (const Edge& e : a.edges()) {
          if (e.src != s.first[p]) continue;
          bool ok = true;
          for (const ClockConstraint& cc : e.clockGuard) {
            if (!satisfies(s.second, cc)) ok = false;
          }
          if (!ok) continue;
          State t = s;
          t.first[p] = e.dst;
          for (const ClockReset& r : e.resets) {
            t.second[static_cast<size_t>(r.clock) - 1] = r.value;
          }
          if (invariantsHold(t)) next.push_back(std::move(t));
        }
      }
      for (State& n : next) {
        if (seen.insert(n).second) stack.push_back(std::move(n));
      }
    }
    return seen;
  }

  [[nodiscard]] bool reaches(ProcId p, LocId l) const {
    for (const State& s : explore()) {
      if (s.first[static_cast<size_t>(p)] == l) return true;
    }
    return false;
  }
};

// -- Constant folding ----------------------------------------------------

TEST(OptPasses, FoldsConstantVariableGuards) {
  System sys;
  const VarId k = sys.addVar("k", 3);  // never written: a constant
  const ClockId x = sys.addClock("x");
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  const LocId l2 = a.addLocation("l2");
  sys.edge(p, l0, l1).guard(sys.rd(k) == 3).when(ccGe(x, 1));
  sys.edge(p, l0, l2).guard(sys.rd(k) > 5);  // constant false
  sys.finalize();

  OptimizedModel m = optimizeAtLevel(sys, {}, 1);
  ASSERT_TRUE(m.changed());
  EXPECT_GE(m.stats().foldedExprs, 2u);     // both guards fold
  EXPECT_GE(m.stats().removedEdges, 1u);    // the false one goes
  EXPECT_EQ(m.stats().removedLocations, 1u);  // l2 becomes unreachable
  EXPECT_EQ(m.system().automaton(m.mapProc(p)).numLocations(), 2u);
  // The surviving edge's guard folded away entirely.
  const auto& oa = m.system().automaton(m.mapProc(p));
  ASSERT_EQ(oa.edges().size(), 1u);
  EXPECT_EQ(oa.edges()[0].guard, kNoExpr);

  // Verdicts at both levels agree with the structure: l1 reachable.
  engine::Goal g;
  g.locations = {{p, l1}};
  EXPECT_TRUE(runAtLevel(sys, g, 0).reachable);
  EXPECT_TRUE(runAtLevel(sys, g, 2).reachable);
  engine::Goal g2;
  g2.locations = {{p, l2}};
  EXPECT_FALSE(runAtLevel(sys, g2, 0).reachable);
  EXPECT_FALSE(runAtLevel(sys, g2, 2).reachable);
}

TEST(OptPasses, FoldingMatchesEvalOnDivisionByZero) {
  System sys;
  const VarId v = sys.addVar("v", 1);
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  // 1 / 0 is a runtime evaluation failure (edge disabled), not a
  // foldable constant; the pipeline must leave it alone.
  sys.edge(p, l0, l1).guard(sys.lit(1) / sys.lit(0) == sys.rd(v));
  sys.edge(p, l0, l1).assign(v, sys.rd(v));
  sys.finalize();

  engine::Goal g;
  g.locations = {{p, l1}};
  const bool r0 = runAtLevel(sys, g, 0).reachable;
  const bool r2 = runAtLevel(sys, g, 2).reachable;
  EXPECT_EQ(r0, r2);
  EXPECT_TRUE(r0);  // the second edge is unconditional
}

// -- Dead locations and never-enabled edges ------------------------------

TEST(OptPasses, RemovesUnreachableLocationsButKeepsPinnedGoals) {
  System sys;
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  const LocId island = a.addLocation("island");  // no in-edges
  sys.edge(p, l0, l1);
  sys.edge(p, island, l0);  // dangling out-edge must go too
  sys.finalize();

  OptimizedModel m = optimizeAtLevel(sys, {}, 1);
  ASSERT_TRUE(m.changed());
  EXPECT_EQ(m.stats().removedLocations, 1u);
  EXPECT_EQ(m.stats().removedEdges, 1u);
  EXPECT_EQ(m.system().automaton(m.mapProc(p)).numLocations(), 2u);

  // Pinned as a goal, the island survives (that is how callers ask
  // "prove this cannot happen") and the verdict is a clean negative.
  OptPins pins;
  pins.locations = {{p, island}};
  OptimizedModel mp = optimizeAtLevel(sys, pins, 1);
  if (mp.changed()) {
    EXPECT_GE(mp.mapLoc(p, island), 0);
  }
  engine::Goal g;
  g.locations = {{p, island}};
  const engine::Result r = runAtLevel(sys, g, 2);
  EXPECT_FALSE(r.reachable);
  EXPECT_TRUE(r.exhausted);
}

TEST(OptPasses, SharedAnalysisMatchesLintClassification) {
  System sys;
  const ClockId x = sys.addClock("x");
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  a.addInvariant(l0, ccLe(x, 2));
  sys.edge(p, l0, l1).when(ccGe(x, 1));            // viable
  sys.edge(p, l0, l1).when(ccLt(x, 0));            // unsat alone
  sys.edge(p, l0, l1).when(ccGe(x, 5));            // contradicts invariant
  sys.edge(p, l0, l1).guard(sys.lit(0));           // constant false
  sys.finalize();

  const uint32_t dim = static_cast<uint32_t>(sys.numClocks()) + 1;
  const auto cls = [&](size_t e) {
    const Edge& ed = a.edges()[e];
    return classifyEdgeViability(sys.pool(), ed.guard, ed.clockGuard,
                                 a.location(ed.src).invariant, dim);
  };
  EXPECT_EQ(cls(0), EdgeViability::kViable);
  EXPECT_EQ(cls(1), EdgeViability::kClockGuardUnsat);
  EXPECT_EQ(cls(2), EdgeViability::kGuardContradictsInvariant);
  EXPECT_EQ(cls(3), EdgeViability::kConstFalseGuard);

  // The optimizer removes exactly the three non-viable edges.
  OptimizedModel m = optimizeAtLevel(sys, {}, 1);
  ASSERT_TRUE(m.changed());
  EXPECT_EQ(m.stats().removedEdges, 3u);
  EXPECT_EQ(m.system().automaton(m.mapProc(p)).edges().size(), 1u);
}

// -- Guard simplification ------------------------------------------------

TEST(OptPasses, DropsGuardConjunctsImpliedByInvariant) {
  System sys;
  const ClockId x = sys.addClock("x");
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  a.addInvariant(l0, ccLe(x, 3));
  // x <= 5 is implied by the invariant; x >= 1 is not.
  sys.edge(p, l0, l1).when(ccLe(x, 5)).when(ccGe(x, 1));
  sys.finalize();

  OptimizedModel m = optimizeAtLevel(sys, {}, 1);
  ASSERT_TRUE(m.changed());
  EXPECT_EQ(m.stats().simplifiedConstraints, 1u);
  const auto& oe = m.system().automaton(m.mapProc(p)).edges();
  ASSERT_EQ(oe.size(), 1u);
  ASSERT_EQ(oe[0].clockGuard.size(), 1u);
  // The surviving conjunct is the lower bound x >= 1, i.e. 0 - x <= -1.
  EXPECT_EQ(oe[0].clockGuard[0].i, 0);
  EXPECT_EQ(dbm::boundValue(oe[0].clockGuard[0].bound), -1);

  engine::Goal g;
  g.locations = {{p, l1}};
  EXPECT_EQ(runAtLevel(sys, g, 0).reachable, runAtLevel(sys, g, 2).reachable);
}

TEST(OptPasses, DropsDuplicateClockConjuncts) {
  System sys;
  const ClockId x = sys.addClock("x");
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  sys.edge(p, l0, l1).when(ccGe(x, 2)).when(ccGe(x, 2)).when(ccGe(x, 1));
  sys.finalize();

  OptimizedModel m = optimizeAtLevel(sys, {}, 1);
  ASSERT_TRUE(m.changed());
  // The duplicate and the weaker x >= 1 are both implied by x >= 2.
  EXPECT_EQ(m.stats().simplifiedConstraints, 2u);
  const auto& oe = m.system().automaton(m.mapProc(p)).edges();
  ASSERT_EQ(oe[0].clockGuard.size(), 1u);
}

// -- Dead stores ---------------------------------------------------------

TEST(OptPasses, ElidesStoresToNeverReadVariables) {
  System sys;
  const VarId v = sys.addVar("v", 0);  // read by a guard: stays
  const VarId w = sys.addVar("w", 0);  // written, never read: elided
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  sys.edge(p, l0, l1)
      .guard(sys.rd(v) < 3)
      .assign(v, sys.rd(v) + 1)
      .assign(w, sys.rd(v) + 2);
  sys.finalize();

  OptimizedModel m = optimizeAtLevel(sys, {}, 2);
  ASSERT_TRUE(m.changed());
  EXPECT_EQ(m.stats().elidedVars, 1u);
  const auto& oe = m.system().automaton(m.mapProc(p)).edges();
  ASSERT_EQ(oe.size(), 1u);
  EXPECT_EQ(oe[0].assigns.size(), 1u);

  // Pinning w (a goal predicate reads it) blocks the elision.
  OptPins pins;
  pins.vars = {w};
  OptimizedModel mp = optimizeAtLevel(sys, pins, 2);
  EXPECT_EQ(mp.stats().elidedVars, 0u);
}

TEST(OptPasses, ElidesBoundedCounterButNotPartialStores) {
  System sys;
  const VarId ctr = sys.addVar("ctr", 0);   // bounded dead counter
  const VarId bad = sys.addVar("bad", 0);   // rhs can fail: must stay
  const VarId v = sys.addVar("v", 1);
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  // `(ctr + 1) % 8` is total (constant nonzero divisor): elidable.
  // `1 / (v - 1)` divides by a variable expression that IS zero at
  // runtime — evaluating it disables the edge, so the store must stay.
  sys.edge(p, l0, l1).assign(ctr, (sys.rd(ctr) + 1) % sys.lit(8));
  sys.edge(p, l0, l1).assign(bad, sys.lit(1) / (sys.rd(v) - 1));
  sys.finalize();

  OptimizedModel m = optimizeAtLevel(sys, {}, 2);
  ASSERT_TRUE(m.changed());
  EXPECT_EQ(m.stats().elidedVars, 1u);

  engine::Goal g;
  g.locations = {{p, l1}};
  EXPECT_EQ(runAtLevel(sys, g, 0).reachable, runAtLevel(sys, g, 2).reachable);
}

/// Dead-store elision is the pass that shrinks *exploration*, not just
/// the model text: states differing only in a dead counter collapse.
TEST(OptPasses, DeadCounterCollapsesStateSpace) {
  System sys;
  const VarId ctr = sys.addVar("ctr", 0);
  const ClockId x = sys.addClock("x");
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  a.addInvariant(l0, ccLe(x, 1));
  a.addInvariant(l1, ccLe(x, 1));
  sys.edge(p, l0, l0).when(ccGe(x, 1)).reset(x).assign(
      ctr, (sys.rd(ctr) + 1) % sys.lit(8));
  sys.edge(p, l0, l1).when(ccGe(x, 1));
  sys.finalize();

  // Unsatisfiable query (x <= 1 everywhere), so the search must prove
  // exhaustion — unoptimized it walks all 8 counter values.
  engine::Goal g;
  g.locations = {{p, l1}};
  g.clockConstraints = {ccGe(x, 5)};
  const engine::Result r0 = runAtLevel(sys, g, 0);
  const engine::Result r2 = runAtLevel(sys, g, 2);
  EXPECT_EQ(r0.reachable, r2.reachable);
  EXPECT_LT(r2.stats.statesExplored, r0.stats.statesExplored);
}

// -- Clock unification, digitized oracle ---------------------------------

/// Two clocks reset only together collapse to one; a brute-force
/// integer-point exploration of the *original* model provides the
/// location-reachability ground truth the optimized run must match.
TEST(OptPasses, UnifiesClocksPreservingDigitizedReachability) {
  System sys;
  const ClockId x = sys.addClock("x");
  const ClockId y = sys.addClock("y");
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  const LocId l2 = a.addLocation("l2");
  const LocId l3 = a.addLocation("l3");
  a.addInvariant(l0, ccLe(x, 3));
  sys.edge(p, l0, l1).when(ccGe(x, 1)).reset(x).reset(y);
  sys.edge(p, l1, l2).when(ccGe(y, 2));
  sys.edge(p, l2, l0).when(ccLe(x, 4)).reset(x).reset(y);
  sys.edge(p, l2, l3).when(ccGe(y, 6)).when(ccLe(x, 5));  // unsat: x == y
  sys.finalize();

  OptimizedModel m = optimizeAtLevel(sys, {}, 2);
  ASSERT_TRUE(m.changed());
  EXPECT_EQ(m.stats().unifiedClocks, 1u);
  EXPECT_EQ(m.system().numClocks(), 1u);
  EXPECT_EQ(m.mapClock(x), m.mapClock(y));

  const Digitized oracle{sys, 8};
  for (const LocId l : {l0, l1, l2, l3}) {
    engine::Goal g;
    g.locations = {{p, l}};
    const bool truth = oracle.reaches(p, l);
    EXPECT_EQ(runAtLevel(sys, g, 0).reachable, truth) << "loc " << l;
    EXPECT_EQ(runAtLevel(sys, g, 2).reachable, truth) << "loc " << l;
  }
}

TEST(OptPasses, DoesNotUnifyClocksResetApart) {
  System sys;
  const ClockId x = sys.addClock("x");
  sys.addClock("y");
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  sys.edge(p, l0, l1).reset(x);  // x reset alone: signatures differ
  sys.edge(p, l1, l0);
  sys.finalize();

  OptimizedModel m = optimizeAtLevel(sys, {}, 2);
  EXPECT_EQ(m.stats().unifiedClocks, 0u);
}

/// Randomized digitized cross-check: small one-process models with
/// joint resets and closed diagonal-free constraints, every location's
/// verdict compared at both opt levels against the integer oracle.
TEST(OptPasses, DigitizedOracleAgreesOnRandomJointResetModels) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int> small(0, 3);
  std::uniform_int_distribution<int> coin(0, 1);
  for (int trial = 0; trial < 25; ++trial) {
    System sys;
    const ClockId x = sys.addClock("x");
    const ClockId y = sys.addClock("y");
    const ProcId p = sys.addAutomaton("P");
    auto& a = sys.automaton(p);
    std::vector<LocId> ls;
    for (int l = 0; l < 4; ++l) {
      ls.push_back(a.addLocation("l" + std::to_string(l)));
      if (coin(rng) != 0) a.addInvariant(ls.back(), ccLe(x, small(rng) + 1));
    }
    std::uniform_int_distribution<int> pick(0, 3);
    for (int e = 0; e < 5; ++e) {
      auto eb = sys.edge(p, ls[static_cast<size_t>(pick(rng))],
                         ls[static_cast<size_t>(pick(rng))]);
      if (coin(rng) != 0) eb.when(ccGe(coin(rng) != 0 ? x : y, small(rng)));
      if (coin(rng) != 0) eb.when(ccLe(coin(rng) != 0 ? x : y, small(rng) + 2));
      if (coin(rng) != 0) {
        const dbm::value_t rv = small(rng) == 0 ? 1 : 0;
        eb.reset(x, rv).reset(y, rv);  // always jointly, same value
      }
    }
    sys.finalize();

    const Digitized oracle{sys, 8};
    for (const LocId l : ls) {
      engine::Goal g;
      g.locations = {{p, l}};
      const bool truth = oracle.reaches(p, l);
      ASSERT_EQ(runAtLevel(sys, g, 0).reachable, truth)
          << "trial " << trial << " loc " << l << " at level 0";
      ASSERT_EQ(runAtLevel(sys, g, 2).reachable, truth)
          << "trial " << trial << " loc " << l << " at level 2";
    }
  }
}

// -- Pairwise composition ------------------------------------------------

TEST(OptPasses, ComposesPrivateChannelPairAndBackMapsTrace) {
  System sys;
  const VarId v = sys.addVar("v", 0);
  const ClockId x = sys.addClock("x");
  const ChanId c = sys.addChannel("c");
  const ProcId pa = sys.addAutomaton("A");
  const ProcId pb = sys.addAutomaton("B");
  const ProcId pc = sys.addAutomaton("C");
  auto& a = sys.automaton(pa);
  auto& b = sys.automaton(pb);
  auto& cc = sys.automaton(pc);
  const LocId a0 = a.addLocation("a0");
  const LocId a1 = a.addLocation("a1");
  const LocId b0 = b.addLocation("b0");
  const LocId b1 = b.addLocation("b1");
  const LocId c0 = cc.addLocation("c0");
  const LocId c1 = cc.addLocation("c1");
  sys.edge(pa, a0, a1).send(c).when(ccGe(x, 1));
  sys.edge(pb, b0, b1).receive(c).assign(v, sys.lit(1));
  sys.edge(pc, c0, c1).guard(sys.rd(v) == 1);
  sys.finalize();

  // Goal only pins C, so the (A, B) pair is free to fuse — and the
  // goal still depends on their synchronization through v.
  engine::Goal g;
  g.locations = {{pc, c1}};

  OptPins pins;
  pins.locations = {{pc, c1}};
  pins.vars = {v};
  OptimizedModel m = optimizeAtLevel(sys, pins, 2);
  ASSERT_TRUE(m.changed());
  EXPECT_EQ(m.stats().composedProcesses, 1u);
  EXPECT_EQ(m.system().numAutomata(), 2u);

  const engine::Result r0 = runAtLevel(sys, g, 0);
  const engine::Result r2 = runAtLevel(sys, g, 2);
  ASSERT_TRUE(r0.reachable);
  ASSERT_TRUE(r2.reachable);
  EXPECT_GE(r2.stats.composedProcesses, 1u);

  // The back-mapped trace must concretize and validate on the ORIGINAL
  // three-process system, with the fused step expanded again.
  std::string err;
  const auto ct = engine::concretize(sys, r2.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;
  EXPECT_TRUE(engine::validate(sys, *ct, &err)) << err;
}

TEST(OptPasses, DoesNotComposeAcrossSharedChannels) {
  System sys;
  const ChanId c = sys.addChannel("c");
  const ProcId pa = sys.addAutomaton("A");
  const ProcId pb = sys.addAutomaton("B");
  const ProcId pc = sys.addAutomaton("C");
  auto& a = sys.automaton(pa);
  auto& b = sys.automaton(pb);
  auto& cc = sys.automaton(pc);
  const LocId a0 = a.addLocation("a0");
  const LocId a1 = a.addLocation("a1");
  const LocId b0 = b.addLocation("b0");
  const LocId b1 = b.addLocation("b1");
  const LocId c0 = cc.addLocation("c0");
  const LocId c1 = cc.addLocation("c1");
  // c has a third participant: no pair owns it privately.
  sys.edge(pa, a0, a1).send(c);
  sys.edge(pb, b0, b1).receive(c);
  sys.edge(pc, c0, c1).receive(c);
  sys.finalize();

  OptimizedModel m = optimizeAtLevel(sys, {}, 2);
  EXPECT_EQ(m.stats().composedProcesses, 0u);
}

// -- No-change behavior --------------------------------------------------

TEST(OptPasses, AlreadyOptimalModelIsUntouched) {
  System sys;
  const ClockId x = sys.addClock("x");
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  sys.edge(p, l0, l1).when(ccGe(x, 1)).reset(x);
  sys.edge(p, l1, l0).when(ccLe(x, 2));
  sys.finalize();

  OptimizedModel m = optimizeAtLevel(sys, {}, 2);
  EXPECT_FALSE(m.changed());
  EXPECT_FALSE(m.stats().any());
}

// -- Engine equivalence on the shared random generator -------------------

TEST(OptPasses, RandomModelsAgreeAcrossOptLevels) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    engine::RandomModel model(seed);
    const engine::Result r0 = runAtLevel(*model.sys, model.goal, 0);
    const engine::Result r1 = runAtLevel(*model.sys, model.goal, 1);
    const engine::Result r2 = runAtLevel(*model.sys, model.goal, 2);
    ASSERT_TRUE(r0.reachable || r0.exhausted) << "seed " << seed;
    ASSERT_EQ(r1.reachable, r0.reachable) << "seed " << seed;
    ASSERT_EQ(r2.reachable, r0.reachable) << "seed " << seed;
    for (const engine::Result* r : {&r1, &r2}) {
      if (!r->reachable) continue;
      std::string err;
      const auto ct = engine::concretize(*model.sys, r->trace, &err);
      ASSERT_TRUE(ct.has_value()) << "seed " << seed << ": " << err;
      ASSERT_TRUE(engine::validate(*model.sys, *ct, &err))
          << "seed " << seed << ": " << err;
    }
  }
}

TEST(OptPasses, BestFirstCostUnchangedByOptimization) {
  System sys;
  const VarId k = sys.addVar("k", 1);  // constant: gives the folder work
  const ClockId t = sys.addClock("t");  // cost clock, never reset
  const ClockId x = sys.addClock("x");
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  const LocId l2 = a.addLocation("l2");
  a.addInvariant(l0, ccLe(x, 5));
  sys.edge(p, l0, l1).when(ccGe(x, 2)).guard(sys.rd(k) == 1).reset(x);
  sys.edge(p, l1, l2).when(ccGe(x, 3));
  sys.finalize();

  engine::Goal g;
  g.locations = {{p, l2}};
  for (const int level : {0, 2}) {
    engine::Options o;
    o.optLevel = level;
    engine::BestFirst bf(sys, o, t);
    const engine::BestFirstResult res = bf.run(g);
    ASSERT_TRUE(res.reachable) << "level " << level;
    EXPECT_TRUE(res.optimal) << "level " << level;
    EXPECT_EQ(res.cost, 5) << "level " << level;
    if (level == 2) {
      EXPECT_GE(res.stats.foldedExprs, 1u);
    }
    std::string err;
    const auto ct = engine::concretize(sys, res.trace, &err);
    ASSERT_TRUE(ct.has_value()) << "level " << level << ": " << err;
    EXPECT_TRUE(engine::validate(sys, *ct, &err))
        << "level " << level << ": " << err;
  }
}

// -- Printer round trip --------------------------------------------------

TEST(OptPasses, OptimizedModelsSurvivePrintParseRoundTrip) {
  FrontendOptions noLint;
  noLint.lint = false;
  int changed = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    engine::RandomModel model(seed);
    OptPins pins;
    pins.locations = model.goal.locations;
    OptimizedModel m = optimizeAtLevel(*model.sys, pins, 2);
    if (!m.changed()) continue;
    ++changed;
    const std::string p1 = printModel(m.system(), {});
    const FrontendResult r = parseModelEx(p1, noLint);
    ASSERT_TRUE(r.ok) << "seed " << seed << ":\n"
                      << renderDiagnostics(r.diagnostics) << "\n"
                      << p1;
    const std::string p2 = printModel(*r.system, r.queries);
    EXPECT_EQ(p1, p2) << "seed " << seed
                      << ": print -> parse -> print is not a fixpoint";
  }
  // The generator's models are messy enough that the pipeline finds
  // work in most of them; make sure the loop was not vacuous.
  EXPECT_GE(changed, 5);
}

}  // namespace
}  // namespace ta
