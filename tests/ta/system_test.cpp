// Tests of System construction, finalize() derivations (max bounds,
// active clocks, channel receiver index) and pretty-printing.
#include <gtest/gtest.h>

#include "ta/system.hpp"

namespace ta {
namespace {

TEST(System, ClockIdsAreOneBased) {
  System sys;
  EXPECT_EQ(sys.addClock("x"), 1);
  EXPECT_EQ(sys.addClock("y"), 2);
  EXPECT_EQ(sys.numClocks(), 2u);
  EXPECT_EQ(sys.dbmDimension(), 3u);
  EXPECT_EQ(sys.clockName(1), "x");
  EXPECT_EQ(sys.clockName(2), "y");
}

TEST(System, ArraysFlattenWithCellNames) {
  System sys;
  const VarId a = sys.addArray("pos", 3, 7);
  EXPECT_EQ(sys.numVars(), 3u);
  EXPECT_EQ(sys.varName(a), "pos[0]");
  EXPECT_EQ(sys.varName(a + 2), "pos[2]");
  EXPECT_EQ(sys.initialVars(), (std::vector<int32_t>{7, 7, 7}));
  sys.setVarInit(a + 1, 9);
  EXPECT_EQ(sys.initialVars()[1], 9);
}

TEST(System, MaxBoundsFromGuardsInvariantsAndResets) {
  System sys;
  const ClockId x = sys.addClock("x");
  const ClockId y = sys.addClock("y");
  const ClockId z = sys.addClock("z");
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  a.setInvariant(l0, {ccLe(x, 11)});
  sys.edge(p, l0, l1).when(ccGe(y, 4)).reset(z, 9);
  sys.finalize();
  const auto& mb = sys.maxBounds();
  EXPECT_EQ(mb[0], 0);
  EXPECT_EQ(mb[static_cast<size_t>(x)], 11);
  EXPECT_EQ(mb[static_cast<size_t>(y)], 4);
  EXPECT_EQ(mb[static_cast<size_t>(z)], 9) << "reset values count";
}

TEST(System, UnusedClockHasNoBound) {
  System sys;
  (void)sys.addClock("dead");
  const ProcId p = sys.addAutomaton("P");
  (void)sys.automaton(p).addLocation("l");
  sys.finalize();
  EXPECT_EQ(sys.maxBounds()[1], -1);
}

TEST(System, ActiveClockFixpoint) {
  // l0 --(reset x)--> l1 --(x >= 3)--> l2.
  // x is active at l1 (tested before any reset) but NOT at l0 (reset on
  // the only outgoing edge) and not at l2 (never used again).
  System sys;
  const ClockId x = sys.addClock("x");
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  const LocId l2 = a.addLocation("l2");
  sys.edge(p, l0, l1).reset(x);
  sys.edge(p, l1, l2).when(ccGe(x, 3));
  sys.finalize();
  EXPECT_TRUE(a.activeClocks(l0).empty());
  EXPECT_EQ(a.activeClocks(l1), std::vector<ClockId>{x});
  EXPECT_TRUE(a.activeClocks(l2).empty());
}

TEST(System, ActiveClockPropagatesThroughLoops) {
  // A loop where x is tested two hops away without an intervening
  // reset: activity must propagate backwards through the cycle.
  System sys;
  const ClockId x = sys.addClock("x");
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  sys.edge(p, l0, l1);
  sys.edge(p, l1, l0).when(ccGe(x, 2));
  sys.finalize();
  EXPECT_EQ(a.activeClocks(l0), std::vector<ClockId>{x});
  EXPECT_EQ(a.activeClocks(l1), std::vector<ClockId>{x});
}

TEST(System, ReceiverIndexBuilt) {
  System sys;
  const ChanId c = sys.addChannel("c");
  const ChanId d = sys.addChannel("d");
  const ProcId p1 = sys.addAutomaton("P1");
  const ProcId p2 = sys.addAutomaton("P2");
  auto& a1 = sys.automaton(p1);
  auto& a2 = sys.automaton(p2);
  const LocId x0 = a1.addLocation("x0");
  const LocId x1 = a1.addLocation("x1");
  const LocId y0 = a2.addLocation("y0");
  const LocId y1 = a2.addLocation("y1");
  sys.edge(p1, x0, x1).send(c);
  sys.edge(p2, y0, y1).receive(c);
  sys.edge(p2, y1, y0).receive(d);
  sys.finalize();
  ASSERT_EQ(sys.receivers(c).size(), 1u);
  EXPECT_EQ(sys.receivers(c)[0].first, p2);
  ASSERT_EQ(sys.receivers(d).size(), 1u);
}

TEST(System, GuardConjoins) {
  System sys;
  const VarId v = sys.addVar("v", 3);
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("l0");
  const LocId l1 = a.addLocation("l1");
  auto e = sys.edge(p, l0, l1);
  e.guard(sys.rd(v) >= 2);
  e.guard(sys.rd(v) <= 5);
  sys.finalize();
  const Edge& edge = a.edges()[0];
  std::vector<int32_t> vars{3};
  EXPECT_TRUE(sys.pool().evalBool(edge.guard, vars));
  vars[0] = 1;
  EXPECT_FALSE(sys.pool().evalBool(edge.guard, vars));
  vars[0] = 6;
  EXPECT_FALSE(sys.pool().evalBool(edge.guard, vars));
}

TEST(System, DumpShowsStructure) {
  System sys;
  const ClockId x = sys.addClock("x");
  const VarId v = sys.addVar("flag", 0);
  const ChanId c = sys.addChannel("go");
  const ProcId p = sys.addAutomaton("proc");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("start");
  const LocId l1 = a.addLocation("stop", false, true);
  a.setInvariant(l0, {ccLe(x, 9)});
  sys.edge(p, l0, l1).when(ccGe(x, 2)).send(c).reset(x).assign(v, 1);
  sys.finalize();
  const std::string d = sys.dump();
  EXPECT_NE(d.find("process proc"), std::string::npos);
  EXPECT_NE(d.find("inv{x<=9}"), std::string::npos);
  EXPECT_NE(d.find("[committed]"), std::string::npos);
  EXPECT_NE(d.find("x>=2"), std::string::npos);
  EXPECT_NE(d.find("go!"), std::string::npos);
  EXPECT_NE(d.find("x:=0"), std::string::npos);
  EXPECT_NE(d.find("flag:=1"), std::string::npos);
}

TEST(System, CcToStringForms) {
  System sys;
  const ClockId x = sys.addClock("x");
  const ClockId y = sys.addClock("y");
  EXPECT_EQ(sys.ccToString(ccLe(x, 5)), "x<=5");
  EXPECT_EQ(sys.ccToString(ccLt(x, 5)), "x<5");
  EXPECT_EQ(sys.ccToString(ccGe(y, 2)), "y>=2");
  EXPECT_EQ(sys.ccToString(ccGt(y, 2)), "y>2");
  EXPECT_EQ(sys.ccToString(ccDiffLe(x, y, 3)), "x-y<=3");
}

TEST(System, FindLocationByName) {
  System sys;
  const ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const LocId l0 = a.addLocation("alpha");
  const LocId l1 = a.addLocation("beta");
  EXPECT_EQ(a.findLocation("alpha"), l0);
  EXPECT_EQ(a.findLocation("beta"), l1);
  EXPECT_EQ(a.findLocation("gamma"), -1);
}

}  // namespace
}  // namespace ta
