// Unit tests for the frontend pipeline pieces the golden corpus can't
// pin down: exact token spans (line AND column), the
// report-without-consuming recovery discipline, diagnostic rendering,
// the error cap, and the legacy parseModel shim's behavior on inputs
// that crashed or mis-reported before the rewrite.
#include <string>

#include <gtest/gtest.h>

#include "dbm/bound.hpp"
#include "ta/diagnostics.hpp"
#include "ta/lexer.hpp"
#include "ta/parser.hpp"

namespace {

// -- Lexer spans ----------------------------------------------------------

TEST(LexerSpans, TokensCarryLineColAndLength) {
  std::vector<ta::Diagnostic> diags;
  ta::Lexer lex("clock x;\n  int foo;\n", &diags);

  ta::Token t = lex.next();
  EXPECT_EQ(t.kind, ta::Tok::kIdent);
  EXPECT_EQ(t.span.line, 1);
  EXPECT_EQ(t.span.col, 1);
  EXPECT_EQ(t.span.len, 5);

  t = lex.next();  // x
  EXPECT_EQ(t.span.line, 1);
  EXPECT_EQ(t.span.col, 7);
  EXPECT_EQ(t.span.len, 1);

  t = lex.next();  // ;
  EXPECT_EQ(t.span.col, 8);

  t = lex.next();  // int (indented two spaces on line 2)
  EXPECT_EQ(t.span.line, 2);
  EXPECT_EQ(t.span.col, 3);

  t = lex.next();  // foo
  EXPECT_EQ(t.span.col, 7);
  EXPECT_EQ(t.span.len, 3);
  EXPECT_TRUE(diags.empty());
}

TEST(LexerSpans, TwoCharOperatorsAndStrings) {
  std::vector<ta::Diagnostic> diags;
  ta::Lexer lex("-> \"hi\" <=", &diags);
  ta::Token t = lex.next();
  EXPECT_EQ(t.kind, ta::Tok::kArrow);
  EXPECT_EQ(t.span.len, 2);
  t = lex.next();
  EXPECT_EQ(t.kind, ta::Tok::kString);
  EXPECT_EQ(t.text, "hi");
  EXPECT_EQ(t.span.col, 4);
  EXPECT_EQ(t.span.len, 4);  // includes both quotes
  t = lex.next();
  EXPECT_EQ(t.kind, ta::Tok::kLe);
}

TEST(LexerSpans, IntegerOverflowClampsWithDiagnostic) {
  // The old std::stoll-based scanner threw std::out_of_range straight
  // through parseModel on literals past int64. Now: clamp + P005.
  std::vector<ta::Diagnostic> diags;
  ta::Lexer lex("99999999999999999999", &diags);
  const ta::Token t = lex.next();
  EXPECT_EQ(t.kind, ta::Tok::kInt);
  EXPECT_EQ(t.value, dbm::kMaxValue);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, ta::DiagCode::kBadConstant);
  EXPECT_EQ(diags[0].span.len, 20);
}

TEST(LexerSpans, StringsDoNotCrossNewlines) {
  // The old lexer happily consumed everything to the next '"', eating
  // whole models into one string literal.
  std::vector<ta::Diagnostic> diags;
  ta::Lexer lex("\"unclosed\nclock", &diags);
  const ta::Token s = lex.next();
  EXPECT_EQ(s.kind, ta::Tok::kString);
  EXPECT_EQ(s.text, "unclosed");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, ta::DiagCode::kUnterminatedString);
  const ta::Token next = lex.next();
  EXPECT_EQ(next.kind, ta::Tok::kIdent);
  EXPECT_EQ(next.text, "clock");
  EXPECT_EQ(next.span.line, 2);
}

// -- Diagnostic spans out of the parser -----------------------------------

ta::FrontendResult run(const std::string& text) {
  return ta::parseModelEx(text);
}

TEST(DiagnosticSpans, RedefinitionPointsAtTheSecondName) {
  const auto r = run("clock x;\nclock x;\n");
  ASSERT_EQ(r.errorCount(), 1u);
  const ta::Diagnostic& d = r.diagnostics[0];
  EXPECT_EQ(d.code, ta::DiagCode::kRedefinition);
  EXPECT_EQ(d.span.line, 2);
  EXPECT_EQ(d.span.col, 7);
  EXPECT_EQ(d.span.len, 1);
  EXPECT_NE(d.note.find("line 1"), std::string::npos);
}

TEST(DiagnosticSpans, ExpectReportsTheOffendingTokenUnconsumed) {
  // "int v = ;" — the error is at the ';' (line 1, col 9), and the
  // parser recovers *at* that ';' without cascading.
  const auto r = run("int v = ;\nclock x;\n");
  ASSERT_EQ(r.errorCount(), 1u) << ta::renderDiagnostics(r.diagnostics);
  EXPECT_EQ(r.diagnostics[0].span.line, 1);
  EXPECT_EQ(r.diagnostics[0].span.col, 9);
}

TEST(DiagnosticSpans, EdgeRecoveryKeepsPerItemPositions) {
  const auto r = run(
      "clock x;\n"
      "chan go;\n"
      "process P {\n"
      "  loc a;\n"
      "  init a;\n"
      "  edge a -> a {\n"
      "    sync go;\n"      // error at the ';' (col 12)
      "    reset y;\n"      // error at 'y' (col 11)
      "    guard x >= 1;\n"
      "  }\n"
      "}\n"
      "query reach P.a;\n");
  ASSERT_EQ(r.errorCount(), 2u) << ta::renderDiagnostics(r.diagnostics);
  EXPECT_EQ(r.diagnostics[0].code, ta::DiagCode::kBadSync);
  EXPECT_EQ(r.diagnostics[0].span.line, 7);
  EXPECT_EQ(r.diagnostics[0].span.col, 12);
  EXPECT_EQ(r.diagnostics[1].code, ta::DiagCode::kUndefinedName);
  EXPECT_EQ(r.diagnostics[1].span.line, 8);
  EXPECT_EQ(r.diagnostics[1].span.col, 11);
  EXPECT_EQ(r.diagnostics[1].span.len, 1);
}

TEST(DiagnosticSpans, AllDiagnosticsSortedBySource) {
  const auto r = run("int v = ;\nbogus;\nclock x;\nclock x;\n");
  ASSERT_GE(r.diagnostics.size(), 3u);
  for (size_t i = 1; i < r.diagnostics.size(); ++i) {
    const ta::Span& a = r.diagnostics[i - 1].span;
    const ta::Span& b = r.diagnostics[i].span;
    EXPECT_TRUE(a.line < b.line || (a.line == b.line && a.col <= b.col));
  }
}

// -- Error cap ------------------------------------------------------------

TEST(ErrorCap, StopsWithTooManyErrors) {
  ta::FrontendOptions opts;
  opts.maxErrors = 2;
  const auto r = ta::parseModelEx("a;\nb;\nc;\nd;\n", opts);
  ASSERT_EQ(r.diagnostics.size(), 3u);
  EXPECT_EQ(r.diagnostics[0].code, ta::DiagCode::kUnexpectedDecl);
  EXPECT_EQ(r.diagnostics[1].code, ta::DiagCode::kUnexpectedDecl);
  EXPECT_EQ(r.diagnostics[2].code, ta::DiagCode::kTooManyErrors);
  EXPECT_EQ(r.diagnostics[2].span.line, 3);
}

// -- Rendering ------------------------------------------------------------

TEST(Rendering, ToStringFormatsFilePositionCodeAndNote) {
  const ta::Diagnostic d{ta::Severity::kError, ta::DiagCode::kUndefinedName,
                         {3, 7, 2}, "unknown clock 'tt'", "did you mean 't'?"};
  EXPECT_EQ(ta::toString(d, "m.gta"),
            "m.gta:3:7: error[P004]: unknown clock 'tt'\n"
            "  note: did you mean 't'?");
  const ta::Diagnostic w{
      ta::Severity::kWarning, ta::DiagCode::kUnusedClock, {0, 0, 0},
      "clock 'z' is never used", ""};
  EXPECT_EQ(ta::toString(w), "warning[L001]: clock 'z' is never used");
}

TEST(Rendering, CodeNamesRoundTrip) {
  for (const ta::DiagCode code : ta::allDiagCodes()) {
    ta::DiagCode back;
    ASSERT_TRUE(ta::diagCodeFromName(ta::diagCodeName(code), &back));
    EXPECT_EQ(back, code);
  }
  ta::DiagCode ignore;
  EXPECT_FALSE(ta::diagCodeFromName("P999", &ignore));
  EXPECT_FALSE(ta::diagCodeFromName("", &ignore));
}

// -- Legacy shim ----------------------------------------------------------

TEST(LegacyShim, FirstErrorWithLinePrefix) {
  std::string err;
  EXPECT_FALSE(ta::parseModel("clock x\nint y;", &err).has_value());
  EXPECT_EQ(err.find("line 2:"), 0u) << err;
}

TEST(LegacyShim, HugeLiteralNoLongerThrows) {
  // Regression: this input terminated the old parser with an uncaught
  // std::out_of_range from std::stoll.
  std::string err;
  const auto r =
      ta::parseModel("clock x;\nprocess P { loc a { inv x <= "
                     "99999999999999999999; } init a; }",
                     &err);
  EXPECT_FALSE(r.has_value());
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

TEST(LegacyShim, LintNeverRunsThroughTheShim) {
  // 'spare' is unused — a lint warning — but the shim's contract is
  // parse-only: the model must come back clean.
  std::string err;
  const auto r = ta::parseModel(
      "clock x, spare;\n"
      "process P { loc a; init a; edge a -> a { guard x >= 1; reset x; } }\n",
      &err);
  ASSERT_TRUE(r.has_value()) << err;
  EXPECT_TRUE(r->system->finalized());
}

}  // namespace
