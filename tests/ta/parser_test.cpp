#include "ta/parser.hpp"

#include <gtest/gtest.h>

#include "engine/reachability.hpp"
#include "engine/trace.hpp"

namespace ta {
namespace {

constexpr const char* kHandshake = R"(
// worker/listener handshake
clock x;
int n = 0;
chan sig;

process Worker {
  loc warm { inv x <= 5; }
  loc done;
  init warm;
  edge warm -> done { guard x >= 3; sync sig!; label "go"; }
}

process Listener {
  loc idle;
  loc got;
  init idle;
  edge idle -> got { sync sig?; assign n = n + 1; }
}

query reach Worker.done && Listener.got && n == 1;
)";

TEST(Parser, HandshakeParses) {
  std::string err;
  const auto r = parseModel(kHandshake, &err);
  ASSERT_TRUE(r.has_value()) << err;
  EXPECT_EQ(r->system->numAutomata(), 2u);
  EXPECT_EQ(r->system->numClocks(), 1u);
  EXPECT_EQ(r->system->numVars(), 1u);
  EXPECT_EQ(r->system->numChannels(), 1u);
  ASSERT_EQ(r->queries.size(), 1u);
  EXPECT_EQ(r->queries[0].locations.size(), 2u);
  EXPECT_NE(r->queries[0].predicate, kNoExpr);
  EXPECT_TRUE(r->system->finalized());
}

TEST(Parser, ParsedModelChecksLikeHandBuilt) {
  std::string err;
  const auto r = parseModel(kHandshake, &err);
  ASSERT_TRUE(r.has_value()) << err;
  engine::Goal goal{r->queries[0].locations, r->queries[0].predicate,
                    r->queries[0].clockConstraints};
  engine::Reachability checker(*r->system, engine::Options{});
  const engine::Result res = checker.run(goal);
  ASSERT_TRUE(res.reachable);
  const auto ct = engine::concretize(*r->system, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;
  EXPECT_EQ(ct->makespan(), 3) << "guard x >= 3 forces the delay";
}

TEST(Parser, ArraysAndDynamicIndexing) {
  const char* text = R"(
int pos[3] = 0;
int i = 0;
process P {
  loc l;
  edge l -> l { guard i < 3 && pos[i] == 0; assign pos[i] = 1, i = i + 1; }
}
query reach pos[2] == 1;
)";
  std::string err;
  const auto r = parseModel(text, &err);
  ASSERT_TRUE(r.has_value()) << err;
  engine::Goal goal{r->queries[0].locations, r->queries[0].predicate, {}};
  engine::Reachability checker(*r->system, engine::Options{});
  EXPECT_TRUE(checker.run(goal).reachable);
}

TEST(Parser, ClockEqualityAndDifferenceAtoms) {
  const char* text = R"(
clock x, y;
process P {
  loc a { inv x <= 10; }
  loc b;
  edge a -> b { guard x == 7 && x - y <= 0; }
}
query reach P.b && y >= 7;
)";
  std::string err;
  const auto r = parseModel(text, &err);
  ASSERT_TRUE(r.has_value()) << err;
  engine::Goal goal{r->queries[0].locations, r->queries[0].predicate,
                    r->queries[0].clockConstraints};
  engine::Reachability checker(*r->system, engine::Options{});
  const engine::Result res = checker.run(goal);
  EXPECT_TRUE(res.reachable);
}

TEST(Parser, UrgentAndCommittedLocations) {
  const char* text = R"(
clock x;
process P {
  loc a;
  urgent loc u;
  committed loc c;
  loc b;
  edge a -> u { }
  edge u -> c { }
  edge c -> b { guard x >= 1; }
}
query reach P.b;
)";
  std::string err;
  const auto r = parseModel(text, &err);
  ASSERT_TRUE(r.has_value()) << err;
  // No time may pass in u or c, so x >= 1 can never hold... unless time
  // passed in a first. a has no invariant: delay there, then race
  // through. Reachable.
  engine::Goal goal{r->queries[0].locations, r->queries[0].predicate, {}};
  engine::Reachability checker(*r->system, engine::Options{});
  EXPECT_TRUE(checker.run(goal).reachable);
  // And the parsed flags are set.
  const Automaton& a = r->system->automaton(0);
  EXPECT_TRUE(a.location(a.findLocation("u")).urgent);
  EXPECT_TRUE(a.location(a.findLocation("c")).committed);
}

TEST(Parser, BroadcastChannel) {
  const char* text = R"(
broadcast chan all;
process S { loc s0; loc s1; edge s0 -> s1 { sync all!; } }
process R1 { loc r0; loc r1; edge r0 -> r1 { sync all?; } }
process R2 { loc r0; loc r1; edge r0 -> r1 { sync all?; } }
query reach S.s1 && R1.r1 && R2.r1;
)";
  std::string err;
  const auto r = parseModel(text, &err);
  ASSERT_TRUE(r.has_value()) << err;
  EXPECT_EQ(r->system->channelKind(0), ChanKind::kBroadcast);
  engine::Goal goal{r->queries[0].locations, r->queries[0].predicate, {}};
  engine::Reachability checker(*r->system, engine::Options{});
  const engine::Result res = checker.run(goal);
  ASSERT_TRUE(res.reachable);
  EXPECT_EQ(res.trace.steps[1].via.parts.size(), 3u);
}

TEST(Parser, ResetToValueAndTernary) {
  const char* text = R"(
clock x;
int v = 0;
process P {
  loc a;
  loc b;
  edge a -> b { guard x >= 2; reset x = 5; assign v = v < 1 ? 10 : 20; }
  edge b -> a { guard x >= 6; assign v = v + 1; }
}
query reach P.a && v == 11;
)";
  std::string err;
  const auto r = parseModel(text, &err);
  ASSERT_TRUE(r.has_value()) << err;
  engine::Goal goal{r->queries[0].locations, r->queries[0].predicate, {}};
  engine::Reachability checker(*r->system, engine::Options{});
  EXPECT_TRUE(checker.run(goal).reachable);
}

// -- Error reporting -----------------------------------------------------

TEST(Parser, ErrorsCarryLineNumbers) {
  std::string err;
  EXPECT_FALSE(parseModel("clock x\nint y;", &err).has_value());
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

TEST(Parser, UnknownIdentifiersRejected) {
  std::string err;
  EXPECT_FALSE(
      parseModel("process P { loc a; edge a -> nowhere { } }", &err)
          .has_value());
  EXPECT_NE(err.find("nowhere"), std::string::npos);

  EXPECT_FALSE(
      parseModel("process P { loc a; edge a -> a { sync ghost!; } }", &err)
          .has_value());
  EXPECT_NE(err.find("ghost"), std::string::npos);

  EXPECT_FALSE(
      parseModel("process P { loc a; edge a -> a { reset t; } }", &err)
          .has_value());
  EXPECT_NE(err.find("unknown clock"), std::string::npos);
}

TEST(Parser, DuplicateDeclarationsRejected) {
  std::string err;
  EXPECT_FALSE(parseModel("clock x; int x;", &err).has_value());
  EXPECT_NE(err.find("already declared"), std::string::npos);
}

TEST(Parser, QueryOnUnknownLocationRejected) {
  std::string err;
  EXPECT_FALSE(
      parseModel("process P { loc a; }\nquery reach P.b;", &err).has_value());
  EXPECT_NE(err.find("P.b"), std::string::npos);
}

}  // namespace
}  // namespace ta
