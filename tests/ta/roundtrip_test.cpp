// Round-trip coverage for the .gta printer: print(parse(print(M))) is
// a fixpoint of printing, and the reparsed model gives the same
// reachability verdicts as the original. Exercised over the checked-in
// example models and the differential test's random model generator.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "../engine/random_model.hpp"
#include "engine/reachability.hpp"
#include "ta/parser.hpp"
#include "ta/printer.hpp"

namespace fs = std::filesystem;

namespace {

std::string readFile(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

ta::FrontendOptions noLint() {
  ta::FrontendOptions opts;
  opts.lint = false;
  return opts;
}

/// Parse, print, reparse, print: the two printed forms must be
/// byte-identical, and both parses structurally alike.
void checkFixpoint(const std::string& text, const std::string& what) {
  const ta::FrontendResult r1 = ta::parseModelEx(text, noLint());
  ASSERT_TRUE(r1.ok) << what << ":\n"
                     << ta::renderDiagnostics(r1.diagnostics);
  const std::string p1 = ta::printModel(*r1.system, r1.queries);

  const ta::FrontendResult r2 = ta::parseModelEx(p1, noLint());
  ASSERT_TRUE(r2.ok) << what << ": printed form does not reparse:\n"
                     << ta::renderDiagnostics(r2.diagnostics) << "\n"
                     << p1;
  const std::string p2 = ta::printModel(*r2.system, r2.queries);
  EXPECT_EQ(p1, p2) << what << ": print -> parse -> print is not a fixpoint";

  // Structure must carry across: same symbol tables, same shape.
  ASSERT_EQ(r1.system->numClocks(), r2.system->numClocks());
  ASSERT_EQ(r1.system->numVars(), r2.system->numVars());
  ASSERT_EQ(r1.system->numChannels(), r2.system->numChannels());
  ASSERT_EQ(r1.system->numAutomata(), r2.system->numAutomata());
  ASSERT_EQ(r1.queries.size(), r2.queries.size());
  for (size_t p = 0; p < r1.system->numAutomata(); ++p) {
    const ta::Automaton& a1 = r1.system->automaton(static_cast<ta::ProcId>(p));
    const ta::Automaton& a2 = r2.system->automaton(static_cast<ta::ProcId>(p));
    ASSERT_EQ(a1.numLocations(), a2.numLocations());
    ASSERT_EQ(a1.edges().size(), a2.edges().size());
    EXPECT_EQ(a1.initial(), a2.initial());
    for (size_t l = 0; l < a1.numLocations(); ++l) {
      const ta::Location& l1 = a1.location(static_cast<ta::LocId>(l));
      const ta::Location& l2 = a2.location(static_cast<ta::LocId>(l));
      EXPECT_EQ(l1.name, l2.name);
      EXPECT_EQ(l1.urgent, l2.urgent);
      EXPECT_EQ(l1.committed, l2.committed);
      EXPECT_EQ(l1.invariant.size(), l2.invariant.size());
    }
    for (size_t e = 0; e < a1.edges().size(); ++e) {
      EXPECT_EQ(a1.edges()[e].label, a2.edges()[e].label);
      EXPECT_EQ(a1.edges()[e].sync, a2.edges()[e].sync);
    }
  }

  // And the verdicts: every query answers the same on both systems.
  for (size_t q = 0; q < r1.queries.size(); ++q) {
    const engine::Goal g1{r1.queries[q].locations, r1.queries[q].predicate,
                          r1.queries[q].clockConstraints};
    const engine::Goal g2{r2.queries[q].locations, r2.queries[q].predicate,
                          r2.queries[q].clockConstraints};
    engine::Reachability c1(*r1.system, {});
    engine::Reachability c2(*r2.system, {});
    EXPECT_EQ(c1.run(g1).reachable, c2.run(g2).reachable)
        << what << ": query " << q << " verdict changed after round trip";
  }
}

TEST(RoundTrip, ExampleModels) {
  size_t count = 0;
  for (const auto& entry : fs::directory_iterator(MODELS_DIR)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".gta") {
      continue;
    }
    ++count;
    checkFixpoint(readFile(entry.path()), entry.path().filename().string());
  }
  EXPECT_GE(count, 3u);
}

// The differential generator's models use the builder API directly —
// including shapes the parser never produces (min/max-free here, but
// hand-picked urgency/broadcast combinations). Printing one must give
// a parseable model with the same verdict.
TEST(RoundTrip, GeneratedModels) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const engine::RandomModel m(seed);
    const std::string p1 = ta::printModel(*m.sys, {});
    const ta::FrontendResult r = ta::parseModelEx(p1, noLint());
    ASSERT_TRUE(r.ok) << "seed " << seed << ":\n"
                      << ta::renderDiagnostics(r.diagnostics) << "\n"
                      << p1;
    const std::string p2 = ta::printModel(*r.system, r.queries);
    EXPECT_EQ(p1, p2) << "seed " << seed;

    // Location ids survive printing in order, so the original goal is
    // valid against the reparsed system.
    engine::Reachability orig(*m.sys, {});
    engine::Reachability back(*r.system, {});
    EXPECT_EQ(orig.run(m.goal).reachable, back.run(m.goal).reachable)
        << "seed " << seed << " verdict changed after round trip";
  }
}

// Expressions with no surface syntax lower to equivalent forms.
TEST(RoundTrip, MinMaxLowerToTernary) {
  ta::System sys;
  const ta::VarId v = sys.addVar("v", 3);
  const ta::VarId w = sys.addVar("w", 5);
  const ta::ExprRef mn =
      sys.pool().binary(ta::Op::kMin, sys.pool().var(v), sys.pool().var(w));
  const std::string printed = ta::printExpr(sys, mn);
  EXPECT_EQ(printed, "((v < w) ? v : w)");
}

}  // namespace
