// Paper §6: "Having the complete process from the model to synthesized
// control programs fully automated proved especially useful when the
// batteries got worn out. ... New times were measured and since
// scheduling was still possible, new programs were quickly generated
// and worked as expected."
//
// We reproduce that: change the measured movement times (worn motors
// are slower), re-run the whole pipeline, and verify the regenerated
// program drives the slower plant correctly — while the OLD program
// (synthesized for fresh batteries) fails on the worn plant.
#include <gtest/gtest.h>

#include "engine/trace.hpp"
#include "plant/plant.hpp"
#include "rcx/plant_sim.hpp"
#include "synthesis/rcx_codegen.hpp"
#include "synthesis/schedule.hpp"

namespace {

synthesis::RcxProgram synthesizeFor(const plant::PlantConfig& cfg,
                                    bool* ok) {
  *ok = false;
  const auto p = plant::buildPlant(cfg);
  engine::Options opts;
  opts.order = engine::SearchOrder::kDfs;
  opts.dfsReverse = true;
  opts.maxSeconds = 90.0;
  engine::Reachability checker(p->sys, opts);
  const engine::Result res = checker.run(p->goal);
  if (!res.reachable) return {};
  std::string err;
  const auto ct = engine::concretize(p->sys, res.trace, &err);
  if (!ct.has_value()) return {};
  const synthesis::Schedule sched = synthesis::project(p->sys, *ct);
  synthesis::CodegenOptions cg;
  cg.ticksPerTimeUnit = 1000;
  *ok = true;
  return synthesis::synthesize(sched, cg);
}

plant::PlantConfig freshBatteries() {
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(2);
  return cfg;
}

plant::PlantConfig wornBatteries() {
  plant::PlantConfig cfg = freshBatteries();
  // Re-measured worst-case times: every motor is slower.
  cfg.bmove = 4;
  cfg.cmove = 2;
  cfg.cupdown = 2;
  return cfg;
}

rcx::SimResult runOn(const synthesis::RcxProgram& prog,
                     const plant::PlantConfig& physicalCfg) {
  rcx::SimOptions sim;
  sim.messageLossProb = 0.0;
  sim.slackTicks = 3000;
  return rcx::runProgram(prog, physicalCfg, 1000, sim);
}

TEST(BatteryWear, ReSynthesisAfterReMeasurementWorks) {
  bool ok = false;
  const synthesis::RcxProgram renewed = synthesizeFor(wornBatteries(), &ok);
  ASSERT_TRUE(ok) << "scheduling must still be possible with slower times";
  const rcx::SimResult r = runOn(renewed, wornBatteries());
  EXPECT_TRUE(r.ok()) << (r.errors.empty() ? "incomplete"
                                           : r.errors[0].what);
}

TEST(BatteryWear, StaleProgramFailsOnWornPlant) {
  bool ok = false;
  const synthesis::RcxProgram stale = synthesizeFor(freshBatteries(), &ok);
  ASSERT_TRUE(ok);
  // Fresh-battery timings on the worn plant: commands arrive before
  // the slower physical actions finish.
  const rcx::SimResult r = runOn(stale, wornBatteries());
  EXPECT_FALSE(r.ok())
      << "a program timed for fresh batteries should misdrive the worn "
         "plant (this is why the paper re-measured and re-synthesized)";
}

TEST(BatteryWear, FreshProgramStillFineOnFreshPlant) {
  bool ok = false;
  const synthesis::RcxProgram prog = synthesizeFor(freshBatteries(), &ok);
  ASSERT_TRUE(ok);
  const rcx::SimResult r = runOn(prog, freshBatteries());
  EXPECT_TRUE(r.ok());
}

}  // namespace
