// Cross-validation of three components against each other: a schedule
// computed by the symbolic engine and concretized by the
// forward/backward pass must be replayable step-for-step in the
// concrete-state Simulator, with identical variables, clocks and time.
#include <gtest/gtest.h>

#include "engine/simulator.hpp"
#include "engine/trace.hpp"
#include "plant/plant.hpp"

namespace {

class SimulatorReplay : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorReplay, ConcreteTraceStepsThroughSimulator) {
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(GetParam());
  const auto p = plant::buildPlant(cfg);

  engine::Options opts;
  opts.order = engine::SearchOrder::kDfs;
  opts.dfsReverse = true;
  opts.maxSeconds = 90.0;
  engine::Reachability checker(p->sys, opts);
  const engine::Result res = checker.run(p->goal);
  ASSERT_TRUE(res.reachable);
  std::string err;
  const auto ct = engine::concretize(p->sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;

  engine::SuccessorGenerator gen(p->sys, opts);
  engine::Simulator sim(p->sys);
  for (size_t k = 1; k < ct->steps.size(); ++k) {
    const engine::ConcreteStep& step = ct->steps[k];
    ASSERT_TRUE(sim.delay(step.delay))
        << "step " << k << ": simulator refused delay " << step.delay;
    const std::string want = gen.label(step.via);
    ASSERT_TRUE(sim.fireLabeled(want))
        << "step " << k << ": '" << want << "' not fireable; state "
        << sim.describe();
    EXPECT_EQ(sim.time(), step.timestamp) << "step " << k;
    EXPECT_EQ(sim.variables(), step.d.vars) << "step " << k;
    // Clock agreement (the simulator's clock vector mirrors the
    // concretizer's, index 0 = reference).
    for (size_t c = 1; c < step.clocks.size(); ++c) {
      EXPECT_EQ(sim.clocks()[c], step.clocks[c])
          << "step " << k << " clock " << c;
    }
    // Locations agree.
    EXPECT_EQ(sim.locations(), step.d.locs) << "step " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Batches, SimulatorReplay, ::testing::Values(1, 2, 3));

}  // namespace
