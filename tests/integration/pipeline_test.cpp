// Integration: the full Figure 1 methodology, parameterized over batch
// counts, guide levels and message-loss rates.  Model -> schedule ->
// program -> simulated plant, all invariants checked at every stage.
#include <gtest/gtest.h>

#include "engine/trace.hpp"
#include "plant/plant.hpp"
#include "rcx/plant_sim.hpp"
#include "synthesis/rcx_codegen.hpp"
#include "synthesis/schedule.hpp"

namespace {

struct PipelineCase {
  int batches;
  double loss;
};

class FullPipeline : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(FullPipeline, ModelToPlantRunsClean) {
  const PipelineCase c = GetParam();
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(c.batches);

  const auto p = plant::buildPlant(cfg);
  engine::Options opts;
  opts.order = engine::SearchOrder::kDfs;
  opts.dfsReverse = true;
  opts.maxSeconds = 120.0;
  engine::Reachability checker(p->sys, opts);
  const engine::Result res = checker.run(p->goal);
  ASSERT_TRUE(res.reachable);

  std::string err;
  const auto ct = engine::concretize(p->sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;
  ASSERT_TRUE(engine::validate(p->sys, *ct, &err)) << err;

  const synthesis::Schedule sched = synthesis::project(p->sys, *ct);
  ASSERT_FALSE(sched.items.empty());

  synthesis::CodegenOptions cg;
  cg.ticksPerTimeUnit = 1000;
  const synthesis::RcxProgram prog = synthesis::synthesize(sched, cg);

  rcx::SimOptions sim;
  sim.messageLossProb = c.loss;
  sim.slackTicks = 3000 + static_cast<int64_t>(c.loss * 60000);
  sim.seed = 99;
  const rcx::SimResult out = rcx::runProgram(prog, cfg, 1000, sim);
  EXPECT_TRUE(out.programCompleted);
  EXPECT_TRUE(out.allExited)
      << out.exited << "/" << c.batches << " batches exited";
  for (const rcx::SimError& e : out.errors) {
    ADD_FAILURE() << "tick " << e.tick << ": " << e.what;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BatchesAndLoss, FullPipeline,
    ::testing::Values(PipelineCase{1, 0.0}, PipelineCase{2, 0.0},
                      PipelineCase{3, 0.0}, PipelineCase{4, 0.0},
                      PipelineCase{2, 0.05}, PipelineCase{3, 0.02},
                      PipelineCase{6, 0.0}, PipelineCase{8, 0.01}),
    [](const ::testing::TestParamInfo<PipelineCase>& info) {
      return "b" + std::to_string(info.param.batches) + "_loss" +
             std::to_string(static_cast<int>(info.param.loss * 100));
    });

class QualityMix : public ::testing::TestWithParam<int> {};

TEST_P(QualityMix, SingleBatchOfEachQualityRunsClean) {
  const std::vector<plant::Quality> all = {
      plant::qualityAB(), plant::qualityA(), plant::qualityB(),
      plant::qualityC(), plant::qualityBC()};
  plant::PlantConfig cfg;
  cfg.order = {all[static_cast<size_t>(GetParam())]};

  const auto p = plant::buildPlant(cfg);
  engine::Options opts;
  opts.order = engine::SearchOrder::kDfs;
  opts.dfsReverse = true;
  opts.maxSeconds = 60.0;
  engine::Reachability checker(p->sys, opts);
  const engine::Result res = checker.run(p->goal);
  ASSERT_TRUE(res.reachable);
  std::string err;
  const auto ct = engine::concretize(p->sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;
  const synthesis::Schedule sched = synthesis::project(p->sys, *ct);
  synthesis::CodegenOptions cg;
  cg.ticksPerTimeUnit = 1000;
  const synthesis::RcxProgram prog = synthesis::synthesize(sched, cg);
  rcx::SimOptions sim;
  sim.messageLossProb = 0.0;
  sim.slackTicks = 3000;
  const rcx::SimResult out = rcx::runProgram(prog, cfg, 1000, sim);
  EXPECT_TRUE(out.ok()) << (out.errors.empty() ? "incomplete"
                                               : out.errors[0].what);
}

INSTANTIATE_TEST_SUITE_P(AllQualities, QualityMix, ::testing::Range(0, 5));

}  // namespace
