#include "rcx/vm.hpp"

#include <gtest/gtest.h>

namespace rcx {
namespace {

using synthesis::RcxInstr;
using synthesis::RcxOp;
using synthesis::RcxProgram;

struct ScriptedHost {
  std::vector<std::pair<int32_t, int64_t>> sent;
  std::vector<int32_t> soundIds;
  int32_t messageBuffer = 0;
  int sounds = 0;

  VmHost host() {
    VmHost h;
    h.send = [this](int32_t id, int64_t tick) { sent.push_back({id, tick}); };
    h.readMessage = [this] { return messageBuffer; };
    h.clearMessage = [this] { messageBuffer = 0; };
    h.playSound = [this](int32_t id) {
      ++sounds;
      soundIds.push_back(id);
    };
    return h;
  }
};

RcxProgram programOf(std::vector<RcxInstr> code) {
  RcxProgram p;
  p.code = std::move(code);
  return p;
}

TEST(RcxVm, StraightLineExecution) {
  ScriptedHost sh;
  const RcxProgram p = programOf({
      {RcxOp::kPlaySystemSound, 1, 0, ""},
      {RcxOp::kSendPBMessage, 42, 0, ""},
      {RcxOp::kSendPBMessage, 43, 0, ""},
  });
  RcxVm vm(p, sh.host());
  vm.run(1000);
  EXPECT_TRUE(vm.finished());
  ASSERT_EQ(sh.sent.size(), 2u);
  EXPECT_EQ(sh.sent[0].first, 42);
  EXPECT_EQ(sh.sent[1].first, 43);
  EXPECT_EQ(sh.sounds, 1);
}

TEST(RcxVm, WaitBlocksUntilTickReached) {
  ScriptedHost sh;
  const RcxProgram p = programOf({
      {RcxOp::kWait, 100, 0, ""},
      {RcxOp::kSendPBMessage, 1, 0, ""},
  });
  RcxVm vm(p, sh.host());
  vm.run(50);
  EXPECT_TRUE(sh.sent.empty());
  EXPECT_FALSE(vm.finished());
  vm.run(101);
  EXPECT_EQ(sh.sent.size(), 1u);
  EXPECT_TRUE(vm.finished());
}

TEST(RcxVm, InstructionsCostTicks) {
  ScriptedHost sh;
  const RcxProgram p = programOf({
      {RcxOp::kPlaySystemSound, 1, 0, ""},
      {RcxOp::kSendPBMessage, 7, 0, ""},
  });
  RcxVm vm(p, sh.host(), /*instrTicks=*/10);
  vm.run(0);
  // The sound costs 10 ticks, so the send cannot have executed yet.
  EXPECT_TRUE(sh.sent.empty());
  vm.run(10);
  // The send is the second instruction: it completes at 2 x 10 ticks.
  ASSERT_EQ(sh.sent.size(), 1u);
  EXPECT_EQ(sh.sent[0].second, 20);
}

TEST(RcxVm, WhileLoopSkipsWhenConditionFalse) {
  // While var1 != 0 ... never entered (var1 starts 0).
  ScriptedHost sh;
  const RcxProgram p = programOf({
      {RcxOp::kWhileVarNe, 1, 0, ""},
      {RcxOp::kSendPBMessage, 9, 0, ""},
      {RcxOp::kEndWhile, 0, 0, ""},
      {RcxOp::kSendPBMessage, 10, 0, ""},
  });
  RcxVm vm(p, sh.host());
  vm.run(1000);
  ASSERT_EQ(sh.sent.size(), 1u);
  EXPECT_EQ(sh.sent[0].first, 10);
}

TEST(RcxVm, AckLoopTerminatesWhenMessageArrives) {
  // The synthesized ack-wait shape: loop until var1 == 5.
  ScriptedHost sh;
  const RcxProgram p = programOf({
      {RcxOp::kSetVar, 1, 0, ""},
      {RcxOp::kWhileVarNe, 1, 5, ""},
      {RcxOp::kWait, 20, 0, ""},
      {RcxOp::kSetVarFromMsg, 1, 0, ""},
      {RcxOp::kClearPBMessage, 0, 0, ""},
      {RcxOp::kEndWhile, 0, 0, ""},
      {RcxOp::kSendPBMessage, 99, 0, ""},
  });
  RcxVm vm(p, sh.host());
  vm.run(30);  // a few polls, no ack yet
  EXPECT_TRUE(sh.sent.empty());
  sh.messageBuffer = 5;  // ack arrives
  vm.run(200);
  ASSERT_EQ(sh.sent.size(), 1u);
  EXPECT_EQ(sh.sent[0].first, 99);
  EXPECT_EQ(sh.messageBuffer, 0) << "loop body clears the buffer";
}

TEST(RcxVm, IfExecutesOnlyWhenGe) {
  ScriptedHost sh;
  const RcxProgram p = programOf({
      {RcxOp::kSetVar, 2, 3, ""},
      {RcxOp::kIfVarGe, 2, 5, ""},
      {RcxOp::kSendPBMessage, 1, 0, ""},
      {RcxOp::kEndIf, 0, 0, ""},
      {RcxOp::kSumVar, 2, 2, ""},
      {RcxOp::kIfVarGe, 2, 5, ""},
      {RcxOp::kSendPBMessage, 2, 0, ""},
      {RcxOp::kEndIf, 0, 0, ""},
  });
  RcxVm vm(p, sh.host());
  vm.run(1000);
  ASSERT_EQ(sh.sent.size(), 1u);
  EXPECT_EQ(sh.sent[0].first, 2);
}

TEST(RcxVm, RetrySegmentResendsAfterThreshold) {
  // Full synthesized segment with resend threshold 2: with no ack ever
  // arriving, the VM must keep re-sending.
  ScriptedHost sh;
  const RcxProgram p = programOf({
      {RcxOp::kSendPBMessage, 42, 0, ""},
      {RcxOp::kSetVar, 1, 0, ""},
      {RcxOp::kWhileVarNe, 1, 42, ""},
      {RcxOp::kWait, 20, 0, ""},
      {RcxOp::kSetVarFromMsg, 1, 0, ""},
      {RcxOp::kClearPBMessage, 0, 0, ""},
      {RcxOp::kSumVar, 2, 1, ""},
      {RcxOp::kIfVarGe, 2, 2, ""},
      {RcxOp::kSendPBMessage, 42, 0, ""},
      {RcxOp::kSetVar, 2, 0, ""},
      {RcxOp::kEndIf, 0, 0, ""},
      {RcxOp::kEndWhile, 0, 0, ""},
  });
  RcxVm vm(p, sh.host());
  vm.run(500);
  EXPECT_GE(sh.sent.size(), 3u) << "initial send plus periodic resends";
  EXPECT_FALSE(vm.finished());
  sh.messageBuffer = 42;
  vm.run(1000);
  EXPECT_TRUE(vm.finished());
}

TEST(RcxVm, NestedWhileIfMatchTableJumpsCorrectly) {
  // A While containing an If-of-vars containing a plain If: the match
  // table must pair each opener with its own closer, not a sibling's.
  ScriptedHost sh;
  const RcxProgram p = programOf({
      {RcxOp::kSetVar, 1, 0, ""},
      {RcxOp::kSetVar, 2, 5, ""},
      {RcxOp::kSetVar, 3, 3, ""},
      {RcxOp::kWhileVarNe, 1, 2, ""},   // while var1 != 2
      {RcxOp::kSumVar, 1, 1, ""},
      {RcxOp::kIfVarGeVar, 2, 3, ""},   // var2 (5) >= var3 (3): taken
      {RcxOp::kIfVarGe, 1, 2, ""},      // var1 >= 2: second pass only
      {RcxOp::kSendPBMessage, 99, 0, ""},
      {RcxOp::kEndIf, 0, 0, ""},
      {RcxOp::kEndIf, 0, 0, ""},
      {RcxOp::kEndWhile, 0, 0, ""},
      {RcxOp::kSendPBMessage, 100, 0, ""},
  });
  RcxVm vm(p, sh.host());
  vm.run(10'000);
  EXPECT_TRUE(vm.finished());
  ASSERT_EQ(sh.sent.size(), 2u);
  EXPECT_EQ(sh.sent[0].first, 99) << "inner If fires on the second pass";
  EXPECT_EQ(sh.sent[1].first, 100);
}

TEST(RcxVm, MulVarMultipliesInPlace) {
  ScriptedHost sh;
  const RcxProgram p = programOf({
      {RcxOp::kSetVar, 5, 3, ""},
      {RcxOp::kMulVar, 5, 4, ""},     // var5 = 12
      {RcxOp::kIfVarGe, 5, 12, ""},
      {RcxOp::kSendPBMessage, 1, 0, ""},
      {RcxOp::kEndIf, 0, 0, ""},
      {RcxOp::kIfVarGe, 5, 13, ""},
      {RcxOp::kSendPBMessage, 2, 0, ""},
      {RcxOp::kEndIf, 0, 0, ""},
  });
  RcxVm vm(p, sh.host());
  vm.run(1000);
  ASSERT_EQ(sh.sent.size(), 1u);
  EXPECT_EQ(sh.sent[0].first, 1);
}

TEST(RcxVm, IfVarGeVarComparesTwoVars) {
  ScriptedHost sh;
  const RcxProgram p = programOf({
      {RcxOp::kSetVar, 1, 7, ""},
      {RcxOp::kSetVar, 2, 7, ""},
      {RcxOp::kIfVarGeVar, 1, 2, ""},  // 7 >= 7: taken
      {RcxOp::kSendPBMessage, 1, 0, ""},
      {RcxOp::kEndIf, 0, 0, ""},
      {RcxOp::kSetVar, 2, 8, ""},
      {RcxOp::kIfVarGeVar, 1, 2, ""},  // 7 >= 8: skipped
      {RcxOp::kSendPBMessage, 2, 0, ""},
      {RcxOp::kEndIf, 0, 0, ""},
  });
  RcxVm vm(p, sh.host());
  vm.run(1000);
  ASSERT_EQ(sh.sent.size(), 1u);
  EXPECT_EQ(sh.sent[0].first, 1);
}

TEST(RcxVm, HaltStopsExecutionAndSetsFlag) {
  ScriptedHost sh;
  const RcxProgram p = programOf({
      {RcxOp::kSendPBMessage, 1, 0, ""},
      {RcxOp::kHalt, 0, 0, ""},
      {RcxOp::kSendPBMessage, 2, 0, ""},
  });
  RcxVm vm(p, sh.host());
  EXPECT_FALSE(vm.halted());
  vm.run(1000);
  EXPECT_TRUE(vm.halted());
  EXPECT_TRUE(vm.finished());
  ASSERT_EQ(sh.sent.size(), 1u) << "nothing executes past Halt";
}

TEST(RcxVm, EmptyProgramFinishesImmediately) {
  ScriptedHost sh;
  const RcxProgram p = programOf({});
  RcxVm vm(p, sh.host());
  EXPECT_TRUE(vm.finished());
  vm.run(0);
  EXPECT_TRUE(vm.finished());
}

// ---- The synthesized hardened retry segment, end to end on the VM ----

synthesis::Schedule oneCommand() {
  synthesis::Schedule s;
  s.items = {{0, "Crane1", "Pickup1"}};
  s.makespan = 1;
  return s;
}

TEST(RcxVm, SynthesizedBackoffDoublesResendGapUpToCap) {
  // factor 2, threshold 2, cap 8: with no ack ever arriving the resend
  // thresholds run 2, 4, 8, 8, ... polls. With free instructions
  // (instrTicks = 0) and 20-tick polls the send times are exactly
  // 0, 40, 120, 280, 440, 600 (cumulative polls 0, 2, 6, 14, 22, 30).
  synthesis::CodegenOptions cg;
  cg.ackPollTicks = 20;
  cg.resendAfterPolls = 2;
  cg.backoffFactor = 2;
  cg.backoffCapPolls = 8;
  const synthesis::RcxProgram p = synthesis::synthesize(oneCommand(), cg);
  ScriptedHost sh;
  RcxVm vm(p, sh.host(), /*instrTicks=*/0);
  vm.run(700);
  ASSERT_GE(sh.sent.size(), 6u);
  const int64_t expected[] = {0, 40, 120, 280, 440, 600};
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(sh.sent[i].second, expected[i]) << "send " << i;
    EXPECT_EQ(sh.sent[i].first, 1) << "always the same command id";
  }
  // The ack still releases the loop after any number of backoffs.
  sh.messageBuffer = 1;
  vm.run(2000);
  EXPECT_TRUE(vm.finished());
  EXPECT_FALSE(vm.halted());
}

TEST(RcxVm, SynthesizedWatchdogHaltsWithFailSound) {
  synthesis::CodegenOptions cg;
  cg.ackPollTicks = 20;
  cg.watchdogPolls = 5;
  const synthesis::RcxProgram p = synthesis::synthesize(oneCommand(), cg);
  ScriptedHost sh;
  RcxVm vm(p, sh.host(), /*instrTicks=*/0);
  vm.run(1'000'000);  // no ack, ever: a permanently silent unit
  EXPECT_TRUE(vm.halted());
  EXPECT_TRUE(vm.finished());
  ASSERT_FALSE(sh.soundIds.empty());
  EXPECT_EQ(sh.soundIds.back(), synthesis::CodegenOptions::kFailSound);
  // The budget bounds the polling: 5 polls of 20 ticks, then the halt —
  // not a million ticks of spinning.
  ASSERT_FALSE(sh.sent.empty());
  EXPECT_EQ(sh.sent.size(), 1u) << "threshold 20 never reached in 5 polls";
}

TEST(RcxVm, SynthesizedDuplicateAckToleranceRefundsPolls) {
  // A channel echoing stale acks (id 7) forever: with tolerance the
  // watchdog budget never depletes; without it the segment halts.
  synthesis::CodegenOptions cg;
  cg.ackPollTicks = 20;
  cg.watchdogPolls = 5;

  cg.tolerateDuplicateAcks = false;
  {
    const synthesis::RcxProgram p = synthesis::synthesize(oneCommand(), cg);
    ScriptedHost sh;
    sh.messageBuffer = 7;
    RcxVm vm(p, sh.host(), 0);
    // Re-arm the stale ack every time the loop clears it.
    for (int64_t t = 0; t < 2000; t += 20) {
      vm.run(t);
      sh.messageBuffer = 7;
    }
    EXPECT_TRUE(vm.halted()) << "stale acks exhaust an intolerant watchdog";
  }

  cg.tolerateDuplicateAcks = true;
  {
    const synthesis::RcxProgram p = synthesis::synthesize(oneCommand(), cg);
    ScriptedHost sh;
    sh.messageBuffer = 7;
    RcxVm vm(p, sh.host(), 0);
    for (int64_t t = 0; t < 2000; t += 20) {
      vm.run(t);
      sh.messageBuffer = 7;
    }
    EXPECT_FALSE(vm.halted()) << "stale acks are free polls with tolerance";
    EXPECT_FALSE(vm.finished());
    // The real ack still gets through.
    sh.messageBuffer = 1;
    vm.run(3000);
    EXPECT_TRUE(vm.finished());
    EXPECT_FALSE(vm.halted());
  }
}

}  // namespace
}  // namespace rcx
