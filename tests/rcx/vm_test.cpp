#include "rcx/vm.hpp"

#include <gtest/gtest.h>

namespace rcx {
namespace {

using synthesis::RcxInstr;
using synthesis::RcxOp;
using synthesis::RcxProgram;

struct ScriptedHost {
  std::vector<std::pair<int32_t, int64_t>> sent;
  int32_t messageBuffer = 0;
  int sounds = 0;

  VmHost host() {
    VmHost h;
    h.send = [this](int32_t id, int64_t tick) { sent.push_back({id, tick}); };
    h.readMessage = [this] { return messageBuffer; };
    h.clearMessage = [this] { messageBuffer = 0; };
    h.playSound = [this](int32_t) { ++sounds; };
    return h;
  }
};

RcxProgram programOf(std::vector<RcxInstr> code) {
  RcxProgram p;
  p.code = std::move(code);
  return p;
}

TEST(RcxVm, StraightLineExecution) {
  ScriptedHost sh;
  const RcxProgram p = programOf({
      {RcxOp::kPlaySystemSound, 1, 0, ""},
      {RcxOp::kSendPBMessage, 42, 0, ""},
      {RcxOp::kSendPBMessage, 43, 0, ""},
  });
  RcxVm vm(p, sh.host());
  vm.run(1000);
  EXPECT_TRUE(vm.finished());
  ASSERT_EQ(sh.sent.size(), 2u);
  EXPECT_EQ(sh.sent[0].first, 42);
  EXPECT_EQ(sh.sent[1].first, 43);
  EXPECT_EQ(sh.sounds, 1);
}

TEST(RcxVm, WaitBlocksUntilTickReached) {
  ScriptedHost sh;
  const RcxProgram p = programOf({
      {RcxOp::kWait, 100, 0, ""},
      {RcxOp::kSendPBMessage, 1, 0, ""},
  });
  RcxVm vm(p, sh.host());
  vm.run(50);
  EXPECT_TRUE(sh.sent.empty());
  EXPECT_FALSE(vm.finished());
  vm.run(101);
  EXPECT_EQ(sh.sent.size(), 1u);
  EXPECT_TRUE(vm.finished());
}

TEST(RcxVm, InstructionsCostTicks) {
  ScriptedHost sh;
  const RcxProgram p = programOf({
      {RcxOp::kPlaySystemSound, 1, 0, ""},
      {RcxOp::kSendPBMessage, 7, 0, ""},
  });
  RcxVm vm(p, sh.host(), /*instrTicks=*/10);
  vm.run(0);
  // The sound costs 10 ticks, so the send cannot have executed yet.
  EXPECT_TRUE(sh.sent.empty());
  vm.run(10);
  // The send is the second instruction: it completes at 2 x 10 ticks.
  ASSERT_EQ(sh.sent.size(), 1u);
  EXPECT_EQ(sh.sent[0].second, 20);
}

TEST(RcxVm, WhileLoopSkipsWhenConditionFalse) {
  // While var1 != 0 ... never entered (var1 starts 0).
  ScriptedHost sh;
  const RcxProgram p = programOf({
      {RcxOp::kWhileVarNe, 1, 0, ""},
      {RcxOp::kSendPBMessage, 9, 0, ""},
      {RcxOp::kEndWhile, 0, 0, ""},
      {RcxOp::kSendPBMessage, 10, 0, ""},
  });
  RcxVm vm(p, sh.host());
  vm.run(1000);
  ASSERT_EQ(sh.sent.size(), 1u);
  EXPECT_EQ(sh.sent[0].first, 10);
}

TEST(RcxVm, AckLoopTerminatesWhenMessageArrives) {
  // The synthesized ack-wait shape: loop until var1 == 5.
  ScriptedHost sh;
  const RcxProgram p = programOf({
      {RcxOp::kSetVar, 1, 0, ""},
      {RcxOp::kWhileVarNe, 1, 5, ""},
      {RcxOp::kWait, 20, 0, ""},
      {RcxOp::kSetVarFromMsg, 1, 0, ""},
      {RcxOp::kClearPBMessage, 0, 0, ""},
      {RcxOp::kEndWhile, 0, 0, ""},
      {RcxOp::kSendPBMessage, 99, 0, ""},
  });
  RcxVm vm(p, sh.host());
  vm.run(30);  // a few polls, no ack yet
  EXPECT_TRUE(sh.sent.empty());
  sh.messageBuffer = 5;  // ack arrives
  vm.run(200);
  ASSERT_EQ(sh.sent.size(), 1u);
  EXPECT_EQ(sh.sent[0].first, 99);
  EXPECT_EQ(sh.messageBuffer, 0) << "loop body clears the buffer";
}

TEST(RcxVm, IfExecutesOnlyWhenGe) {
  ScriptedHost sh;
  const RcxProgram p = programOf({
      {RcxOp::kSetVar, 2, 3, ""},
      {RcxOp::kIfVarGe, 2, 5, ""},
      {RcxOp::kSendPBMessage, 1, 0, ""},
      {RcxOp::kEndIf, 0, 0, ""},
      {RcxOp::kSumVar, 2, 2, ""},
      {RcxOp::kIfVarGe, 2, 5, ""},
      {RcxOp::kSendPBMessage, 2, 0, ""},
      {RcxOp::kEndIf, 0, 0, ""},
  });
  RcxVm vm(p, sh.host());
  vm.run(1000);
  ASSERT_EQ(sh.sent.size(), 1u);
  EXPECT_EQ(sh.sent[0].first, 2);
}

TEST(RcxVm, RetrySegmentResendsAfterThreshold) {
  // Full synthesized segment with resend threshold 2: with no ack ever
  // arriving, the VM must keep re-sending.
  ScriptedHost sh;
  const RcxProgram p = programOf({
      {RcxOp::kSendPBMessage, 42, 0, ""},
      {RcxOp::kSetVar, 1, 0, ""},
      {RcxOp::kWhileVarNe, 1, 42, ""},
      {RcxOp::kWait, 20, 0, ""},
      {RcxOp::kSetVarFromMsg, 1, 0, ""},
      {RcxOp::kClearPBMessage, 0, 0, ""},
      {RcxOp::kSumVar, 2, 1, ""},
      {RcxOp::kIfVarGe, 2, 2, ""},
      {RcxOp::kSendPBMessage, 42, 0, ""},
      {RcxOp::kSetVar, 2, 0, ""},
      {RcxOp::kEndIf, 0, 0, ""},
      {RcxOp::kEndWhile, 0, 0, ""},
  });
  RcxVm vm(p, sh.host());
  vm.run(500);
  EXPECT_GE(sh.sent.size(), 3u) << "initial send plus periodic resends";
  EXPECT_FALSE(vm.finished());
  sh.messageBuffer = 42;
  vm.run(1000);
  EXPECT_TRUE(vm.finished());
}

TEST(RcxVm, EmptyProgramFinishesImmediately) {
  ScriptedHost sh;
  const RcxProgram p = programOf({});
  RcxVm vm(p, sh.host());
  EXPECT_TRUE(vm.finished());
  vm.run(0);
  EXPECT_TRUE(vm.finished());
}

}  // namespace
}  // namespace rcx
