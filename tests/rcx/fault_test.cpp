// The adversarial channel (rcx/fault.hpp): a deterministic-fault oracle
// for each fault source, the split-stream seeding guarantees (enabling
// one fault never perturbs another's decisions; identical seeds give
// identical decisions), and end-to-end reproducibility of whole
// simulated trials — the property the Monte-Carlo campaign's per-cell
// comparisons rest on.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/reachability.hpp"
#include "engine/trace.hpp"
#include "plant/plant.hpp"
#include "rcx/fault.hpp"
#include "rcx/plant_sim.hpp"
#include "synthesis/rcx_codegen.hpp"
#include "synthesis/schedule.hpp"

namespace rcx {
namespace {

/// Loss pattern of `n` consecutive same-direction offers: true = lost.
std::vector<bool> lossPattern(FaultChannel& chan, int n, bool towardCentral) {
  std::vector<bool> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(chan.offer(towardCentral).empty());
  return out;
}

TEST(FaultChannel, SameSeedSameDecisions) {
  const FaultPlan plan = FaultPlan::iidLoss(0.3);
  FaultChannel a(plan, 99);
  FaultChannel b(plan, 99);
  EXPECT_EQ(lossPattern(a, 400, false), lossPattern(b, 400, false));
  EXPECT_EQ(a.lossesCommand(), b.lossesCommand());
}

TEST(FaultChannel, DifferentSeedDifferentDecisions) {
  const FaultPlan plan = FaultPlan::iidLoss(0.3);
  FaultChannel a(plan, 99);
  FaultChannel b(plan, 100);
  EXPECT_NE(lossPattern(a, 400, false), lossPattern(b, 400, false));
}

TEST(FaultChannel, AddingFaultSourcesNeverPerturbsLossStream) {
  // The split-stream guarantee: composing jitter, duplication, drift,
  // and crashes into the plan must leave the command-loss decision of
  // every offer untouched — each source draws from its own generator.
  FaultPlan bare = FaultPlan::iidLoss(0.25);
  FaultPlan composed = bare;
  composed.jitterTicks = 50;
  composed.duplicateProb = 0.5;
  composed.reorderProb = 0.3;
  composed.driftPpm = 400.0;
  composed.crash.crashPerTick = 0.01;
  composed.crash.downTicks = 10;

  FaultChannel a(bare, 7);
  FaultChannel b(composed, 7);
  // Interleave the other sources' draws on channel b: drift factors and
  // crash steps must not advance the loss stream either.
  std::vector<bool> pa, pb;
  const std::vector<std::string> units = {"Crane1", "Crane2"};
  for (int i = 0; i < 400; ++i) {
    pa.push_back(a.offer(false).empty());
    (void)b.driftFactor(i % 2 == 0 ? "Crane1" : "Crane2");
    (void)b.stepCrashes(i, units);
    pb.push_back(b.offer(false).empty());
  }
  EXPECT_EQ(pa, pb);
}

TEST(FaultChannel, PerDirectionLossIsIndependent) {
  // Ack traffic must not advance the command-loss stream: a channel
  // carrying interleaved acks sees the same command fates as one
  // carrying commands only.
  FaultPlan plan;
  plan.commandLossProb = 0.4;
  plan.ackLossProb = 0.6;
  FaultChannel a(plan, 11);
  FaultChannel b(plan, 11);
  std::vector<bool> pa, pb;
  for (int i = 0; i < 300; ++i) {
    pa.push_back(a.offer(false).empty());
    pb.push_back(b.offer(false).empty());
    (void)b.offer(true);  // extra ack traffic on b only
  }
  EXPECT_EQ(pa, pb);
  EXPECT_GT(b.lossesAck(), 0);
  EXPECT_EQ(a.lossesAck(), 0);
}

TEST(FaultChannel, ZeroLossPlanDeliversEverything) {
  FaultChannel chan(FaultPlan{}, 1);
  for (int i = 0; i < 100; ++i) {
    const auto d = chan.offer(i % 2 == 0);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].extraTicks, 0);
  }
  EXPECT_EQ(chan.lossesCommand(), 0);
  EXPECT_EQ(chan.lossesAck(), 0);
}

TEST(FaultChannel, BurstLossClusters) {
  // Gilbert–Elliott with lossBad = 1: losses only happen inside Bad
  // sojourns, so with slow transitions the loss pattern must contain
  // adjacent losses (an i.i.d. channel of the same rate rarely would).
  FaultPlan plan;
  plan.burst.pGoodToBad = 0.1;
  plan.burst.pBadToGood = 0.25;
  plan.burst.lossGood = 0.0;
  plan.burst.lossBad = 1.0;
  FaultChannel chan(plan, 5);
  const std::vector<bool> p = lossPattern(chan, 600, false);
  EXPECT_GT(chan.burstLosses(), 0);
  EXPECT_EQ(chan.lossesCommand(), 0) << "no i.i.d. loss configured";
  int adjacentLosses = 0;
  for (size_t i = 1; i < p.size(); ++i) {
    if (p[i] && p[i - 1]) ++adjacentLosses;
  }
  EXPECT_GT(adjacentLosses, 0) << "bursty losses must cluster";
}

TEST(FaultChannel, DuplicationDeliversTrailingCopy) {
  FaultPlan plan;
  plan.duplicateProb = 1.0;
  FaultChannel chan(plan, 3);
  for (int i = 0; i < 50; ++i) {
    const auto d = chan.offer(false);
    ASSERT_EQ(d.size(), 2u);
    EXPECT_GT(d[1].extraTicks, d[0].extraTicks)
        << "the copy must trail the original";
  }
  EXPECT_EQ(chan.duplicates(), 50);
}

TEST(FaultChannel, ReorderDelaysPastSuccessors) {
  FaultPlan plan;
  plan.reorderProb = 1.0;
  FaultChannel chan(plan, 3);
  const auto d = chan.offer(false);
  ASSERT_EQ(d.size(), 1u);
  // No jitter configured: the penalty is the fixed minimum window.
  EXPECT_EQ(d[0].extraTicks, 8 * 4);
  EXPECT_EQ(chan.reorders(), 1);
}

TEST(FaultChannel, JitterBoundedByPlan) {
  FaultPlan plan;
  plan.jitterTicks = 25;
  FaultChannel chan(plan, 17);
  bool sawNonZero = false;
  for (int i = 0; i < 200; ++i) {
    const auto d = chan.offer(false);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_GE(d[0].extraTicks, 0);
    EXPECT_LE(d[0].extraTicks, 25);
    if (d[0].extraTicks > 0) sawNonZero = true;
  }
  EXPECT_TRUE(sawNonZero);
}

TEST(FaultChannel, DriftFactorStablePerUnitAndBounded) {
  FaultPlan plan;
  plan.driftPpm = 500.0;
  FaultChannel chan(plan, 23);
  const double f1 = chan.driftFactor("Crane1");
  EXPECT_GE(f1, 1.0 - 500.0 / 1e6);
  EXPECT_LE(f1, 1.0 + 500.0 / 1e6);
  EXPECT_EQ(chan.driftFactor("Crane1"), f1) << "factor is fixed per unit";
  EXPECT_NE(chan.driftFactor("Crane2"), f1);

  FaultChannel none(FaultPlan{}, 23);
  EXPECT_EQ(none.driftFactor("Crane1"), 1.0);
}

TEST(FaultChannel, CrashTakesUnitDownForConfiguredWindow) {
  FaultPlan plan;
  plan.crash.crashPerTick = 1.0;  // crash immediately, deterministically
  plan.crash.downTicks = 10;
  FaultChannel chan(plan, 31);
  const std::vector<std::string> units = {"Caster"};
  const auto crashed = chan.stepCrashes(100, units);
  ASSERT_EQ(crashed.size(), 1u);
  EXPECT_EQ(crashed[0], "Caster");
  EXPECT_EQ(chan.crashes(), 1);
  EXPECT_TRUE(chan.isDown("Caster", 100));
  EXPECT_TRUE(chan.isDown("Caster", 109));
  EXPECT_FALSE(chan.isDown("Caster", 110)) << "restarts after downTicks";
  EXPECT_FALSE(chan.isDown("Crane1", 100));
  // While down, the per-tick coin is not even flipped for the unit.
  (void)chan.stepCrashes(105, units);
  EXPECT_EQ(chan.crashes(), 1);
}

TEST(FaultChannel, LegacyKnobFoldsIntoBothDirections) {
  SimOptions opts;
  opts.messageLossProb = 0.07;
  opts.faults.commandLossProb = 0.02;
  const FaultPlan f = opts.effectiveFaults();
  EXPECT_DOUBLE_EQ(f.commandLossProb, 0.09);
  EXPECT_DOUBLE_EQ(f.ackLossProb, 0.07);
}

// ---- End-to-end: whole simulated trials are pure functions of the ----
// ---- seed (the campaign's same-cell-twice acceptance criterion).  ----

/// One real synthesized 1-batch program, built once for the suite (the
/// usual model -> trace -> schedule -> codegen pipeline, hardened).
class FaultSim : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cfg_ = new plant::PlantConfig;
    cfg_->order = {plant::qualityA()};
    const auto p = plant::buildPlant(*cfg_);
    engine::Options opts;
    opts.order = engine::SearchOrder::kDfs;
    opts.dfsReverse = true;
    opts.maxSeconds = 60.0;
    engine::Reachability checker(p->sys, opts);
    const engine::Result res = checker.run(p->goal);
    ASSERT_TRUE(res.reachable);
    std::string err;
    const auto ct = engine::concretize(p->sys, res.trace, &err);
    ASSERT_TRUE(ct.has_value()) << err;
    prog_ = new synthesis::RcxProgram(synthesis::synthesize(
        synthesis::project(p->sys, *ct),
        synthesis::CodegenOptions::hardened(1000, 8000)));
  }
  static void TearDownTestSuite() {
    delete prog_;
    delete cfg_;
    prog_ = nullptr;
    cfg_ = nullptr;
  }

  static plant::PlantConfig* cfg_;
  static synthesis::RcxProgram* prog_;
};

plant::PlantConfig* FaultSim::cfg_ = nullptr;
synthesis::RcxProgram* FaultSim::prog_ = nullptr;

struct TrialOutcome {
  bool ok, watchdogHalted;
  int64_t ticks, sent, cmdLost, ackLost, dups, reordered, crashes;

  bool operator==(const TrialOutcome&) const = default;
};

TrialOutcome runCell(const synthesis::RcxProgram& prog,
                     const plant::PlantConfig& cfg, uint64_t seed) {
  SimOptions sim;
  sim.messageLossProb = 0.0;
  sim.faults = FaultPlan::iidLoss(0.1);
  sim.faults.jitterTicks = 10;
  sim.faults.duplicateProb = 0.1;
  sim.seed = seed;
  sim.slackTicks = 8000;
  const SimResult r = runProgram(prog, cfg, 1000, sim);
  return TrialOutcome{r.ok(),          r.watchdogHalted,
                      r.ticks,         r.commandsSent,
                      r.commandsLost,  r.acksLost,
                      r.duplicatesInjected, r.reordered,
                      r.crashes};
}

TEST_F(FaultSim, SameCampaignCellTwiceIsBitIdentical) {
  // One campaign cell = N seeded trials; run the whole cell twice.
  std::vector<TrialOutcome> first, second;
  for (uint64_t t = 0; t < 6; ++t)
    first.push_back(runCell(*prog_, *cfg_, 500 + t));
  for (uint64_t t = 0; t < 6; ++t)
    second.push_back(runCell(*prog_, *cfg_, 500 + t));
  EXPECT_EQ(first, second);
  // And the trials genuinely differ from one another (the faults are
  // live, not degenerate).
  bool anyDifference = false;
  for (size_t i = 1; i < first.size(); ++i) {
    if (!(first[i] == first[0])) anyDifference = true;
  }
  EXPECT_TRUE(anyDifference);
}

TEST_F(FaultSim, ModerateLossStillCompletes) {
  // The campaign gate in miniature: at 5% i.i.d. loss the hardened
  // program must still drive the single batch through cleanly.
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const TrialOutcome t = runCell(*prog_, *cfg_, seed);
    EXPECT_TRUE(t.ok) << "seed " << seed;
    EXPECT_GT(t.cmdLost + t.ackLost, 0) << "faults must actually fire";
  }
}

TEST_F(FaultSim, CrashedUnitRecoversViaResend) {
  // A unit that is down when its command arrives loses it; the
  // hardened retry segment must still complete the schedule once the
  // unit restarts.
  bool sawCrashRecovery = false;
  for (uint64_t seed = 1; seed <= 10 && !sawCrashRecovery; ++seed) {
    SimOptions sim;
    sim.messageLossProb = 0.0;
    sim.faults.crash.crashPerTick = 1e-5;
    sim.faults.crash.downTicks = 1500;
    sim.seed = seed;
    sim.slackTicks = 8000;
    const SimResult r = runProgram(*prog_, *cfg_, 1000, sim);
    if (r.crashes == 0) continue;  // this seed never crashed a unit
    EXPECT_TRUE(r.ok()) << "seed " << seed
                        << ": retries must ride out a bounded outage";
    sawCrashRecovery = true;
  }
  EXPECT_TRUE(sawCrashRecovery)
      << "no seed in 1..10 produced a crash — intensity miscalibrated";
}

}  // namespace
}  // namespace rcx
