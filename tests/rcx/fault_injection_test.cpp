// Reproduction of paper §6: "During the validation we found three
// errors in the model".  Each test builds the *buggy* model variant,
// shows the model checker still happily produces a schedule, and shows
// the (simulated) physical plant catching the error — then verifies the
// corrected model passes.
#include <gtest/gtest.h>

#include "engine/trace.hpp"
#include "plant/plant.hpp"
#include "rcx/plant_sim.hpp"
#include "synthesis/rcx_codegen.hpp"
#include "synthesis/schedule.hpp"

namespace rcx {
namespace {

struct Pipeline {
  std::unique_ptr<plant::Plant> plant;
  synthesis::RcxProgram program;
  bool scheduled = false;
};

Pipeline runPipeline(const plant::PlantConfig& cfg) {
  Pipeline out;
  out.plant = plant::buildPlant(cfg);
  engine::Options opts;
  opts.order = engine::SearchOrder::kDfs;
  opts.dfsReverse = true;
  opts.maxSeconds = 60.0;
  engine::Reachability checker(out.plant->sys, opts);
  const engine::Result res = checker.run(out.plant->goal);
  if (!res.reachable) return out;
  std::string err;
  const auto ct = engine::concretize(out.plant->sys, res.trace, &err);
  if (!ct.has_value()) return out;
  const synthesis::Schedule sched = synthesis::project(out.plant->sys, *ct);
  synthesis::CodegenOptions cg;
  cg.ticksPerTimeUnit = 1000;
  out.program = synthesis::synthesize(sched, cg);
  out.scheduled = true;
  return out;
}

SimResult simulate(const Pipeline& p, const plant::PlantConfig& cfg) {
  SimOptions sim;
  sim.messageLossProb = 0.0;
  sim.slackTicks = 3000;
  return runProgram(p.program, cfg, 1000, sim);
}

bool anyErrorContains(const SimResult& r, const std::string& needle) {
  for (const SimError& e : r.errors) {
    if (e.what.find(needle) != std::string::npos) return true;
  }
  return false;
}

// ---- Error 1: "a delay was missing" — the model lets the crane start
// moving horizontally the instant the pickup starts. ---------------------

TEST(FaultInjection, MissingLiftDelayCaughtByPlant) {
  plant::PlantConfig cfg;
  cfg.order = {plant::qualityA()};
  cfg.bugNoLiftDelay = true;
  const Pipeline p = runPipeline(cfg);
  ASSERT_TRUE(p.scheduled)
      << "the buggy model must still produce a schedule — the bug only "
         "shows when the plant runs it";
  const SimResult r = simulate(p, cfg);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(anyErrorContains(r, "while hoisting") ||
              anyErrorContains(r, "picking up"))
      << "expected the move-during-lift violation";
}

TEST(FaultInjection, CorrectedLiftModelRunsClean) {
  plant::PlantConfig cfg;
  cfg.order = {plant::qualityA()};
  const Pipeline p = runPipeline(cfg);
  ASSERT_TRUE(p.scheduled);
  const SimResult r = simulate(p, cfg);
  EXPECT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0].what);
}

// ---- Error 2: two cranes starting the same direction could collide
// "because the crane in front was started last". The corrected model
// frees a crane's source position only when the move completes, so the
// rear crane can never start into a slot the front crane is still
// leaving; the buggy variant frees it at move start. ---------------------

TEST(FaultInjection, FreeSourceEarlyAdmitsCollisionHazard) {
  // Model-level check on the *unguided* model (cranes move freely):
  // the hazard state "crane 1 moving K3->K4 while crane 2 moves
  // K4->K5" must be unreachable in the corrected model and reachable
  // in the buggy one.
  for (const bool buggy : {false, true}) {
    plant::PlantConfig cfg;
    cfg.order = {plant::qualityA()};
    cfg.guides = plant::GuideLevel::kNone;
    cfg.bugFreeSourceEarly = buggy;
    const auto plant = plant::buildPlant(cfg);
    const ta::Automaton& c1 = plant->sys.automaton(plant->cranes[0]);
    const ta::Automaton& c2 = plant->sys.automaton(plant->cranes[1]);
    const ta::LocId h1 = c1.findLocation("emv3Right");
    const ta::LocId h2 = c2.findLocation("emv4Right");
    ASSERT_GE(h1, 0);
    ASSERT_GE(h2, 0);
    engine::Goal hazard;
    hazard.locations = {{plant->cranes[0], h1}, {plant->cranes[1], h2}};
    engine::Options opts;
    opts.order = engine::SearchOrder::kDfs;
    // Generous budget: the unguided exhaustion takes ~16s alone and the
    // suite runs under ctest -j; the exhausted-check below still fails
    // if the search is cut off.
    opts.maxSeconds = 180.0;
    engine::Reachability checker(plant->sys, opts);
    const engine::Result res = checker.run(hazard);
    if (buggy) {
      EXPECT_TRUE(res.reachable)
          << "buggy model must admit the tailgating hazard";
    } else {
      EXPECT_FALSE(res.reachable)
          << "corrected model must exclude the tailgating hazard";
      EXPECT_TRUE(res.exhausted);
    }
  }
}

TEST(FaultInjection, TailgatingCranesCollideInThePlant) {
  // Physical-level check: drive the cranes directly with the hazardous
  // command order (rear crane first, front crane a moment later).
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(2);
  PlantPhysics phys(cfg, 100, 200);
  int64_t now = 0;
  const auto runTo = [&](int64_t t) {
    for (; now <= t; ++now) phys.step(now);
  };
  // Crane 1 from K0 to K3 (legal, one move at a time).
  for (int step = 0; step < 3; ++step) {
    phys.command("Crane1", "Move1Right", now);
    runTo(now + cfg.cmove * 100);
  }
  ASSERT_TRUE(phys.errors().empty());
  // Rear crane (1, at K3) starts toward K4; front crane (2, at K4)
  // starts toward K5 twenty ticks later.
  phys.command("Crane1", "Move1Right", now);
  phys.command("Crane2", "Move1Right", now + 20);
  runTo(now + cfg.cmove * 100 + 40);
  bool collision = false;
  for (const SimError& e : phys.errors()) {
    collision = collision || e.what.find("collision") != std::string::npos;
  }
  EXPECT_TRUE(collision);
}

// ---- Error 3: "the casting machine did not turn correctly in systems
// with only one batch" — the buggy model omits the final eject command
// from the synthesized program. ------------------------------------------

TEST(FaultInjection, MissingFinalEjectLeavesLadleInCaster) {
  plant::PlantConfig cfg;
  cfg.order = {plant::qualityA()};
  cfg.bugCasterSkipsFinalEject = true;
  const Pipeline p = runPipeline(cfg);
  ASSERT_TRUE(p.scheduled);
  // The schedule lacks the final Caster.Eject command...
  bool hasEject = false;
  for (const synthesis::RcxCommand& c : p.program.commands) {
    hasEject = hasEject || c.command.rfind("Eject", 0) == 0;
  }
  EXPECT_FALSE(hasEject);
  // ...so the physical run fails: the empty ladle never appears at the
  // output and the caster still holds it at program end.
  const SimResult r = simulate(p, cfg);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(anyErrorContains(r, "no ladle present"));
  EXPECT_TRUE(anyErrorContains(r, "left inside the casting machine"));
}

TEST(FaultInjection, MultiBatchEjectBugOnlyAffectsFinalBatch) {
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(2);
  cfg.bugCasterSkipsFinalEject = true;
  const Pipeline p = runPipeline(cfg);
  ASSERT_TRUE(p.scheduled);
  int ejects = 0;
  for (const synthesis::RcxCommand& c : p.program.commands) {
    if (c.command.rfind("Eject", 0) == 0) ++ejects;
  }
  EXPECT_EQ(ejects, 1) << "only the final batch's eject is missing";
}

}  // namespace
}  // namespace rcx
