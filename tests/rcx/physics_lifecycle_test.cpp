// Drive one batch through the entire plant by hand at the physics
// level: pour, treat, track, crane to hold, cast, eject, crane to
// storage, exit — every step with correct timings, no errors.
#include <gtest/gtest.h>

#include "rcx/physics.hpp"

namespace rcx {
namespace {

constexpr int32_t kTpu = 100;

class Lifecycle : public ::testing::Test {
 protected:
  Lifecycle() : cfg([] {
                  plant::PlantConfig c;
                  c.order = {plant::qualityA()};
                  return c;
                }()),
                phys(cfg, kTpu, 200) {}

  void cmd(const char* unit, const char* c) { phys.command(unit, c, now); }
  void wait(int64_t units) {
    const int64_t until = now + units * kTpu;
    for (; now <= until; ++now) phys.step(now);
  }
  void expectClean() {
    for (const SimError& e : phys.errors()) {
      ADD_FAILURE() << "tick " << e.tick << ": " << e.what;
    }
  }

  plant::PlantConfig cfg;
  PlantPhysics phys;
  int64_t now = 0;
};

TEST_F(Lifecycle, FullSingleBatchRunOnTrack2) {
  // Pour onto track 2 and treat in machine 4 (type A).
  cmd("Load1", "Pour2");
  cmd("Load1", "Track2Right");
  wait(cfg.bmove);
  cmd("Load1", "Machine4On");
  wait(6);  // type A treatment
  cmd("Load1", "Machine4Off");
  // Drive to T2_OUT (slots 1 -> 2 -> 3 -> 4).
  for (int s = 0; s < 3; ++s) {
    cmd("Load1", "Track2Right");
    wait(cfg.bmove);
  }
  expectClean();

  // Crane 1: K0 -> K2, pick up, carry to K3 (hold), put down.
  cmd("Crane1", "Move1Right");
  wait(cfg.cmove);
  cmd("Crane1", "Move1Right");
  wait(cfg.cmove);
  cmd("Crane1", "Pickup2");
  wait(cfg.cupdown);
  cmd("Crane1", "Move1Right");
  wait(cfg.cmove);
  cmd("Crane1", "Putdown3");
  wait(cfg.cupdown);
  expectClean();

  // Cast, eject, clear the output with crane 2 (starts at K4).
  cmd("Caster", "Start1");
  wait(cfg.tcast);
  cmd("Caster", "Eject1");
  wait(1);
  cmd("Crane2", "Pickup4");
  wait(cfg.cupdown);
  cmd("Crane2", "Move1Right");
  wait(cfg.cmove);
  cmd("Crane2", "Putdown5");
  wait(cfg.cupdown);
  cmd("Load1", "Exit");
  wait(1);

  phys.finish(now);
  expectClean();
  EXPECT_TRUE(phys.allExited());
  EXPECT_TRUE(phys.loadExited(0));
}

TEST_F(Lifecycle, EjectBlockedByOccupiedOutput) {
  // Occupy CAST_OUT with a second ladle... simplest: run load 1 to the
  // output and leave it there, then check a cast of a phantom cannot
  // eject — covered by unit tests; here verify eject onto occupied slot
  // errors. Drive load1 into the caster first.
  cmd("Load1", "Pour2");
  cmd("Load1", "Track2Right");
  wait(cfg.bmove);
  for (int s = 0; s < 3; ++s) {
    cmd("Load1", "Track2Right");
    wait(cfg.bmove);
  }
  cmd("Crane1", "Move1Right");
  wait(cfg.cmove);
  cmd("Crane1", "Move1Right");
  wait(cfg.cmove);
  cmd("Crane1", "Pickup2");
  wait(cfg.cupdown);
  cmd("Crane1", "Move1Right");
  wait(cfg.cmove);
  cmd("Crane1", "Putdown3");
  wait(cfg.cupdown);
  cmd("Caster", "Start1");
  wait(cfg.tcast);
  expectClean();
  // Eject while crane 2 dangles a... simpler: eject twice.
  cmd("Caster", "Eject1");
  wait(1);
  cmd("Caster", "Eject1");  // ladle already out
  EXPECT_FALSE(phys.errors().empty());
}

TEST_F(Lifecycle, MachineTypeMismatchCaught) {
  cmd("Load1", "Pour1");
  cmd("Load1", "Track1Right");
  wait(cfg.bmove);
  // Load is in machine 1's slot; turning on machine 2 must fail.
  cmd("Load1", "Machine2On");
  ASSERT_FALSE(phys.errors().empty());
  EXPECT_NE(phys.errors()[0].what.find("not in machine 2"),
            std::string::npos);
}

}  // namespace
}  // namespace rcx
