// Unit tests of the physical plant simulator: command semantics and the
// invariant violations it must catch.
#include <gtest/gtest.h>

#include "rcx/physics.hpp"

namespace rcx {
namespace {

constexpr int32_t kTpu = 100;

plant::PlantConfig twoBatchConfig() {
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(2);
  return cfg;
}

class PhysicsTest : public ::testing::Test {
 protected:
  PhysicsTest() : phys(twoBatchConfig(), kTpu, /*slackTicks=*/200) {}

  /// Advance the plant to the given tick.
  void runTo(int64_t tick) {
    for (; now <= tick; ++now) phys.step(now);
  }

  PlantPhysics phys;
  int64_t now = 0;
};

TEST_F(PhysicsTest, PourAndMove) {
  phys.command("Load1", "Pour1", 0);
  EXPECT_TRUE(phys.errors().empty());
  phys.command("Load1", "Track1Right", 0);
  EXPECT_TRUE(phys.errors().empty());
  // Move completes after bmove time units.
  runTo(twoBatchConfig().bmove * kTpu + 1);
  phys.command("Load1", "Machine1On", now);
  EXPECT_TRUE(phys.errors().empty());
}

TEST_F(PhysicsTest, DoublePourRejected) {
  phys.command("Load1", "Pour1", 0);
  phys.command("Load1", "Pour1", 1);
  ASSERT_EQ(phys.errors().size(), 1u);
  EXPECT_NE(phys.errors()[0].what.find("poured twice"), std::string::npos);
}

TEST_F(PhysicsTest, PourOntoOccupiedSlotRejected) {
  phys.command("Load1", "Pour1", 0);
  phys.command("Load2", "Pour1", 1);
  ASSERT_EQ(phys.errors().size(), 1u);
  EXPECT_NE(phys.errors()[0].what.find("occupied converter slot"),
            std::string::npos);
}

TEST_F(PhysicsTest, MoveWhileStillMovingRejected) {
  phys.command("Load1", "Pour1", 0);
  phys.command("Load1", "Track1Right", 0);
  phys.command("Load1", "Track1Right", 10);  // still in transit
  ASSERT_FALSE(phys.errors().empty());
  EXPECT_NE(phys.errors()[0].what.find("not standing"), std::string::npos);
}

TEST_F(PhysicsTest, MoveIntoOccupiedSlotRejected) {
  phys.command("Load1", "Pour1", 0);
  runTo(1);
  phys.command("Load2", "Pour2", now);
  // Load1 moves right; Load2 tries to enter the same track-1 slot 0?
  // No — use track 1 for both: Load1 at slot 0, move right; then back.
  phys.command("Load1", "Track1Right", now);
  runTo(now + twoBatchConfig().bmove * kTpu);
  // Load1 at slot 1 (machine 1). A second ladle moving right into it:
  phys.command("Load1", "Track1Left", now);  // heads back to slot 0
  runTo(now + twoBatchConfig().bmove * kTpu);
  EXPECT_TRUE(phys.errors().empty());
}

TEST_F(PhysicsTest, MachineOnWithoutLoadRejected) {
  phys.command("Load1", "Machine1On", 0);
  ASSERT_EQ(phys.errors().size(), 1u);
}

TEST_F(PhysicsTest, MachineOffWithoutOnRejected) {
  phys.command("Load1", "Pour1", 0);
  phys.command("Load1", "Machine1Off", 1);
  ASSERT_EQ(phys.errors().size(), 1u);
  EXPECT_NE(phys.errors()[0].what.find("turned off"), std::string::npos);
}

TEST_F(PhysicsTest, CranePickupNeedsLadle) {
  phys.command("Crane1", "Pickup0", 0);
  ASSERT_EQ(phys.errors().size(), 1u);
  EXPECT_NE(phys.errors()[0].what.find("no ladle present"),
            std::string::npos);
}

TEST_F(PhysicsTest, CraneMoveWhileHoistingIsThePaperBug) {
  // Walk Load1 to T1_OUT the long way is tedious; instead test the
  // hoist interlock directly: command a pickup (fails: no ladle), then
  // verify a lift in progress blocks moves.  Build the lift via track 2:
  phys.command("Load1", "Pour2", 0);
  for (int m = 0; m < plant::kT2Out; ++m) {
    phys.command("Load1", "Track2Right", now);
    runTo(now + twoBatchConfig().bmove * kTpu);
  }
  ASSERT_TRUE(phys.errors().empty());
  // Crane 1 starts at K0; bring it over T2_OUT (K2).
  phys.command("Crane1", "Move1Right", now);
  runTo(now + twoBatchConfig().cmove * kTpu);
  phys.command("Crane1", "Move1Right", now);
  runTo(now + twoBatchConfig().cmove * kTpu);
  ASSERT_TRUE(phys.errors().empty());
  phys.command("Crane1", "Pickup2", now);
  ASSERT_TRUE(phys.errors().empty());
  // Move while the lift is still in progress — the paper's error 1.
  phys.command("Crane1", "Move1Right", now + 1);
  ASSERT_EQ(phys.errors().size(), 1u);
  EXPECT_NE(phys.errors()[0].what.find("move while hoisting"),
            std::string::npos);
}

TEST_F(PhysicsTest, CraneOffTrackRejected) {
  phys.command("Crane1", "Move1Left", 0);  // crane 1 starts at K0
  ASSERT_EQ(phys.errors().size(), 1u);
  EXPECT_NE(phys.errors()[0].what.find("off the overhead track"),
            std::string::npos);
}

TEST_F(PhysicsTest, CraneCollisionDetected) {
  // Crane 1 at K0, crane 2 at K4. March crane 1 right into crane 2.
  for (int step = 0; step < 4; ++step) {
    phys.command("Crane1", "Move1Right", now);
    runTo(now + twoBatchConfig().cmove * kTpu);
  }
  bool collision = false;
  for (const SimError& e : phys.errors()) {
    collision = collision || e.what.find("collision") != std::string::npos;
  }
  EXPECT_TRUE(collision);
}

TEST_F(PhysicsTest, CastWithoutLadleAtHoldRejected) {
  phys.command("Caster", "Start1", 0);
  ASSERT_EQ(phys.errors().size(), 1u);
  EXPECT_NE(phys.errors()[0].what.find("not at the holding place"),
            std::string::npos);
}

TEST_F(PhysicsTest, EjectBeforeCastingCompleteRejected) {
  phys.command("Caster", "Eject1", 0);
  ASSERT_EQ(phys.errors().size(), 1u);
}

TEST_F(PhysicsTest, FinishFlagsUnfinishedLoads) {
  phys.command("Load1", "Pour1", 0);
  phys.finish(100);
  // Both loads flagged: one on the track, one never poured.
  EXPECT_EQ(phys.errors().size(), 2u);
  EXPECT_FALSE(phys.allExited());
  EXPECT_EQ(phys.exitedCount(), 0);
}

TEST_F(PhysicsTest, UnknownUnitAndCommandRejected) {
  phys.command("Reactor7", "Ignite", 0);
  phys.command("Load1", "Levitate", 1);
  phys.command("Crane1", "Backflip", 2);
  phys.command("Caster", "Overdrive", 3);
  EXPECT_EQ(phys.errors().size(), 4u);
}

}  // namespace
}  // namespace rcx
