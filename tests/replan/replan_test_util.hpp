// Shared helpers for the replanning test suites: solve a schedule for a
// config the way the examples do (first-found reverse DFS), and run it
// against the simulated plant with fatal-deviation classification on.
#pragma once

#include <string>

#include "engine/reachability.hpp"
#include "engine/trace.hpp"
#include "plant/plant.hpp"
#include "rcx/plant_sim.hpp"
#include "synthesis/rcx_codegen.hpp"
#include "synthesis/schedule.hpp"

namespace replan_test {

inline constexpr int32_t kTpu = 100;
inline constexpr int64_t kSlackTicks = 3000;

/// First-found schedule for `cfg` (empty commands = infeasible, which
/// the callers ASSERT against).
inline synthesis::Schedule solveSchedule(const plant::PlantConfig& cfg) {
  const auto plant = plant::buildPlant(cfg);
  engine::Options opts;
  opts.order = engine::SearchOrder::kDfs;
  opts.dfsReverse = true;
  opts.maxSeconds = 60.0;
  engine::Reachability checker(plant->sys, opts);
  const engine::Result res = checker.run(plant->goal);
  if (!res.reachable) return {};
  std::string err;
  const auto ct = engine::concretize(plant->sys, res.trace, &err);
  if (!ct.has_value()) return {};
  return synthesis::project(plant->sys, *ct);
}

inline synthesis::CodegenOptions hardenedCodegen() {
  return synthesis::CodegenOptions::hardened(
      kTpu, kSlackTicks, synthesis::ResendPolicy::kEager);
}

/// One open-loop run with snapshot-on-fatal classification.
inline rcx::SimResult runClassified(const synthesis::Schedule& sched,
                                    const plant::PlantConfig& cfg,
                                    const rcx::FaultPlan& plan,
                                    uint64_t seed) {
  const synthesis::RcxProgram prog =
      synthesis::synthesize(sched, hardenedCodegen());
  rcx::SimOptions sim;
  sim.messageLossProb = 0.0;
  sim.faults = plan;
  sim.seed = seed;
  sim.slackTicks = kSlackTicks;
  sim.snapshotOnFatal = true;
  return rcx::runProgram(prog, cfg, kTpu, sim);
}

/// The crash fault profile the suites use to manufacture mid-batch
/// fatal deviations: a unit dies and stays silent past the watchdog
/// budget, deterministically per seed.
inline rcx::FaultPlan crashPlan() {
  rcx::FaultPlan plan;
  plan.crash.crashPerTick = 1e-4;
  plan.crash.downTicks = 40'000;
  return plan;
}

/// Scan seeds until a run produces a fatal snapshot whose first batch
/// was already poured (a genuinely mid-batch state). Returns the seed,
/// or `limit` if none was found (callers ASSERT_LT against it).
inline uint64_t findMidBatchFatalSeed(const synthesis::Schedule& sched,
                                      const plant::PlantConfig& cfg,
                                      const rcx::FaultPlan& plan,
                                      uint64_t limit) {
  for (uint64_t seed = 0; seed < limit; ++seed) {
    const rcx::SimResult r = runClassified(sched, cfg, plan, seed);
    if (r.snapshot.has_value() && !r.snapshot->loads.empty() &&
        r.snapshot->loads[0].pourTick >= 0) {
      return seed;
    }
  }
  return limit;
}

}  // namespace replan_test
