// Deviation classification and fatal-state capture (rcx/snapshot.hpp,
// the plant_sim snapshotOnFatal path): clean runs classify kNone,
// absorbed faults classify kRecoverable, and fatal deviations quiesce
// the plant and capture a discrete, resumable snapshot. Also covers the
// execution-state surface of SimResult (per-unit drifted clocks,
// dedup ids, in-flight messages) that the replanning layer consumes.
#include <gtest/gtest.h>

#include "replan_test_util.hpp"

namespace rcx {
namespace {

using replan_test::crashPlan;
using replan_test::findMidBatchFatalSeed;
using replan_test::kSlackTicks;
using replan_test::kTpu;
using replan_test::runClassified;
using replan_test::solveSchedule;

plant::PlantConfig oneBatch() {
  plant::PlantConfig cfg;
  cfg.order = {plant::qualityA()};
  return cfg;
}

TEST(SnapshotClassify, CleanRunIsNone) {
  const auto cfg = oneBatch();
  const auto sched = solveSchedule(cfg);
  ASSERT_FALSE(sched.items.empty());
  const SimResult r = runClassified(sched, cfg, FaultPlan{}, 1);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.deviation, DeviationKind::kNone);
  EXPECT_FALSE(r.snapshot.has_value());
  // Satellite surface: the dedup map names every commanded unit even on
  // a clean run, and nothing is left in the air at exit.
  EXPECT_FALSE(r.lastExecuted.empty());
  EXPECT_TRUE(r.inFlight.empty());
}

TEST(SnapshotClassify, AbsorbedLossIsRecoverable) {
  const auto cfg = oneBatch();
  const auto sched = solveSchedule(cfg);
  ASSERT_FALSE(sched.items.empty());
  // 20% i.i.d. loss: the hardened resend layer absorbs it, but the run
  // is no longer fault-free — it must classify as recoverable.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const SimResult r =
        runClassified(sched, cfg, FaultPlan::iidLoss(0.2), seed);
    if (!r.ok()) continue;  // a seed may lose a message beyond recovery
    if (r.commandsLost + r.acksLost == 0) continue;
    EXPECT_EQ(r.deviation, DeviationKind::kRecoverable) << "seed " << seed;
    return;
  }
  FAIL() << "no seed produced an absorbed-loss run";
}

TEST(SnapshotClassify, TotalLossHaltsAndSnapshots) {
  const auto cfg = oneBatch();
  const auto sched = solveSchedule(cfg);
  ASSERT_FALSE(sched.items.empty());
  const SimResult r = runClassified(sched, cfg, FaultPlan::iidLoss(1.0), 1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.deviation, DeviationKind::kWatchdogHalt);
  ASSERT_TRUE(r.snapshot.has_value());
  const PlantSnapshot& s = *r.snapshot;
  EXPECT_EQ(s.kind, DeviationKind::kWatchdogHalt);
  EXPECT_FALSE(s.reason.empty());
  EXPECT_TRUE(s.quiescent);
  EXPECT_GE(s.tick, s.deviationTick);
  EXPECT_EQ(s.ticksPerTimeUnit, kTpu);
  ASSERT_EQ(s.numBatches(), 1);
  // Nothing was ever delivered: the ladle was never poured.
  EXPECT_EQ(s.loads[0].place, LoadSnapshot::Place::kNotPoured);
  EXPECT_LT(s.loads[0].pourTick, 0);
}

TEST(SnapshotCapture, MidBatchCrashIsDiscreteAndQuiesced) {
  const auto cfg = oneBatch();
  const auto sched = solveSchedule(cfg);
  ASSERT_FALSE(sched.items.empty());
  const uint64_t seed = findMidBatchFatalSeed(sched, cfg, crashPlan(), 50);
  ASSERT_LT(seed, 50u) << "no seed produced a mid-batch fatal deviation";
  const SimResult r = runClassified(sched, cfg, crashPlan(), seed);
  ASSERT_TRUE(r.snapshot.has_value());
  const PlantSnapshot& s = *r.snapshot;
  EXPECT_TRUE(isFatal(s.kind));
  EXPECT_TRUE(s.quiescent);
  // Quiescence discreteness: the ladle stands somewhere the model has a
  // location for — never mid-move.
  const LoadSnapshot& l = s.loads[0];
  EXPECT_NE(l.place, LoadSnapshot::Place::kNotPoured);
  if (l.place == LoadSnapshot::Place::kOnCrane) {
    EXPECT_GE(l.crane, 0);
    EXPECT_LT(l.crane, plant::kNumCranes);
    EXPECT_EQ(s.cranes[l.crane].carrying, 0);
  }
  for (const CraneSnapshot& c : s.cranes) {
    EXPECT_GE(c.pos, plant::kOverT1Out);
    EXPECT_LE(c.pos, plant::kOverStorage);
  }
  // The crashed unit's silence survives into the snapshot so a splice
  // can preset it.
  EXPECT_FALSE(s.downUntil.empty() && s.kind == DeviationKind::kWatchdogHalt)
      << "a watchdog halt under the crash plan should record the "
         "silent unit's revival tick";
  EXPECT_FALSE(s.lastExecuted.empty());
}

TEST(SnapshotCapture, DriftFactorsExposedAndCaptured) {
  const auto cfg = oneBatch();
  const auto sched = solveSchedule(cfg);
  ASSERT_FALSE(sched.items.empty());
  FaultPlan plan;
  plan.driftPpm = 200.0;
  const SimResult r = runClassified(sched, cfg, plan, 3);
  EXPECT_TRUE(r.ok());
  // Satellite surface: every unit that acted drew a drift factor, and
  // the result exposes the whole map.
  ASSERT_FALSE(r.unitDrift.empty());
  for (const auto& [unit, f] : r.unitDrift) {
    EXPECT_NEAR(f, 1.0, 200.0 / 1e6) << unit;
  }
}

TEST(SnapshotCapture, InFlightMessagesAccounted) {
  const auto cfg = oneBatch();
  const auto sched = solveSchedule(cfg);
  ASSERT_FALSE(sched.items.empty());
  // Total ack loss: commands arrive (and execute) but every ack dies,
  // so at the watchdog halt the air holds undelivered resends.
  FaultPlan plan;
  plan.ackLossProb = 1.0;
  const SimResult r = runClassified(sched, cfg, plan, 1);
  EXPECT_FALSE(r.ok());
  ASSERT_TRUE(r.snapshot.has_value());
  EXPECT_EQ(r.snapshot->inFlight.size(), r.inFlight.size());
  for (const InFlightMsg& m : r.inFlight) {
    EXPECT_GT(m.msgId, 0);
    if (!m.towardCentral) {
      EXPECT_FALSE(m.unit.empty());
      EXPECT_FALSE(m.command.empty());
    }
  }
}

}  // namespace
}  // namespace rcx
