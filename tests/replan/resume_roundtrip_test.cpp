// Crash-restart recovery round trips (the PR's satellite 3): a seeded
// mid-batch fatal deviation produces a snapshot; synthesis::resumeFrom
// lifts it into a model whose initial state validates against the
// concrete plant state and yields an executable repair schedule; and
// the closed-loop controller (replan/controller.hpp) splices that
// schedule back in and finishes runs the open loop loses.
#include <gtest/gtest.h>

#include "replan/controller.hpp"
#include "replan/lift.hpp"
#include "replan/resume.hpp"
#include "replan_test_util.hpp"

namespace replan {
namespace {

using replan_test::crashPlan;
using replan_test::findMidBatchFatalSeed;
using replan_test::hardenedCodegen;
using replan_test::kSlackTicks;
using replan_test::kTpu;
using replan_test::runClassified;
using replan_test::solveSchedule;

plant::PlantConfig oneBatch() {
  plant::PlantConfig cfg;
  cfg.order = {plant::qualityA()};
  return cfg;
}

synthesis::ResumeOptions quickResume() {
  synthesis::ResumeOptions o;
  o.strictMaxStates = 150'000;
  o.relaxedMaxStates = 400'000;
  return o;
}

/// The concrete place -> model location mapping the lift guarantees
/// (kept in sync with replan/lift.cpp by this test).
std::string expectedLoc(const rcx::LoadSnapshot& l) {
  using Place = rcx::LoadSnapshot::Place;
  const auto num = [](int32_t v) { return std::to_string(v); };
  switch (l.place) {
    case Place::kNotPoured: return "src";
    case Place::kExited: return "done";
    case Place::kInCaster: return "in_cast";
    case Place::kOnCrane: return "carried_c" + num(l.crane + 1);
    case Place::kGround:
      switch (l.groundK) {
        case plant::kOverT1Out: return "t1_" + num(plant::kT1Out);
        case plant::kOverBuffer: return "at_buf";
        case plant::kOverT2Out: return "t2_" + num(plant::kT2Out);
        case plant::kOverHold: return "at_hold";
        case plant::kOverCastOut: return "at_castout";
        default: return "at_store";
      }
    case Place::kTrack:
      if (l.treatingMachine > 0) return "busy_m" + num(l.treatingMachine);
      return "t" + num(l.track) + "_" + num(l.slot);
  }
  return "?";
}

std::string initialLoc(const ta::System& sys, ta::ProcId p) {
  const auto& aut = sys.automaton(p);
  return aut.location(aut.initial()).name;
}

int64_t clockInit(const ta::System& sys, const std::string& name) {
  for (ta::ClockId c = 1; c <= static_cast<ta::ClockId>(sys.numClocks());
       ++c) {
    if (sys.clockName(c) == name) return sys.initialClock(c);
  }
  return 0;
}

TEST(ResumeRoundTrip, SnapshotLiftsBackToValidatedModel) {
  const auto cfg = oneBatch();
  const auto sched = solveSchedule(cfg);
  ASSERT_FALSE(sched.items.empty());
  const uint64_t seed = findMidBatchFatalSeed(sched, cfg, crashPlan(), 50);
  ASSERT_LT(seed, 50u);
  const rcx::SimResult r = runClassified(sched, cfg, crashPlan(), seed);
  ASSERT_TRUE(r.snapshot.has_value());
  const rcx::PlantSnapshot& snap = *r.snapshot;

  const synthesis::ResumeOutcome out =
      synthesis::resumeFrom(snap, cfg, quickResume());
  ASSERT_TRUE(out.feasible) << "a quiesced crash state must be repairable";
  EXPECT_LE(out.ladderLevel, 1);
  EXPECT_GE(out.stats.statesExplored, 1u);
  if (out.ladderLevel == 0) EXPECT_GE(out.makespan, 0);

  // Round trip: re-lift under the configuration the repair runs under
  // and check the model's initial state against the concrete one.
  const LiftMode mode =
      out.ladderLevel == 0 ? LiftMode::kStrict : LiftMode::kRelaxed;
  const Lifted lifted = liftSnapshot(snap, out.repairCfg, mode);
  ASSERT_TRUE(lifted.report.feasible);
  const ta::System& sys = lifted.plant->sys;
  for (int32_t b = 0; b < snap.numBatches(); ++b) {
    const rcx::LoadSnapshot& l = snap.loads[static_cast<size_t>(b)];
    EXPECT_EQ(initialLoc(sys, lifted.plant->batches[static_cast<size_t>(b)]),
              expectedLoc(l))
        << "batch " << b;
    if (l.pourTick >= 0 && b >= snap.caster.castsDone) {
      // Deadline clock: ceil of the concrete elapsed time, clamped to
      // the repair config's deadline.
      const int64_t elapsed = snap.tick - l.pourTick;
      const int64_t tot = clockInit(sys, "tot" + std::to_string(b));
      EXPECT_GE(tot * kTpu + kTpu, elapsed) << "batch " << b;
      EXPECT_LE(tot, out.repairCfg.rtotal) << "batch " << b;
    }
  }
  for (int32_t c = 0; c < plant::kNumCranes; ++c) {
    const std::string shape = snap.cranes[c].carrying >= 0 ? "f" : "e";
    EXPECT_EQ(initialLoc(sys, lifted.plant->cranes[static_cast<size_t>(c)]),
              shape + std::to_string(snap.cranes[c].pos))
        << "crane " << c;
  }
  if (snap.caster.castingBatch >= 0 && !snap.caster.castComplete) {
    // Progress clock: floor, so the model never believes the cast is
    // further along than the metal.
    const int64_t elapsed = snap.tick - snap.caster.castStartTick;
    EXPECT_LE(clockInit(sys, "k") * kTpu, elapsed);
  }
}

TEST(ResumeRoundTrip, SkipStrictGoesStraightToRelaxed) {
  const auto cfg = oneBatch();
  const auto sched = solveSchedule(cfg);
  ASSERT_FALSE(sched.items.empty());
  const uint64_t seed = findMidBatchFatalSeed(sched, cfg, crashPlan(), 50);
  ASSERT_LT(seed, 50u);
  const rcx::SimResult r = runClassified(sched, cfg, crashPlan(), seed);
  ASSERT_TRUE(r.snapshot.has_value());
  auto opts = quickResume();
  opts.tryStrict = false;
  const synthesis::ResumeOutcome out =
      synthesis::resumeFrom(*r.snapshot, cfg, opts);
  ASSERT_TRUE(out.feasible);
  EXPECT_EQ(out.ladderLevel, 1);
  EXPECT_FALSE(out.optimal);
}

ControllerOptions closedLoopOpts(uint64_t seed) {
  ControllerOptions opts;
  opts.sim.messageLossProb = 0.0;
  opts.sim.faults = crashPlan();
  opts.sim.seed = seed;
  opts.sim.slackTicks = kSlackTicks;
  opts.codegen = hardenedCodegen();
  opts.ticksPerTimeUnit = kTpu;
  opts.maxReplans = 4;
  opts.resume = quickResume();
  return opts;
}

TEST(ResumeRoundTrip, ClosedLoopRescuesACrashedRun) {
  const auto cfg = oneBatch();
  const auto sched = solveSchedule(cfg);
  ASSERT_FALSE(sched.items.empty());
  bool rescued = false;
  for (uint64_t seed = 0; seed < 50 && !rescued; ++seed) {
    const rcx::SimResult open = runClassified(sched, cfg, crashPlan(), seed);
    if (!open.snapshot.has_value()) continue;  // open loop survived
    const RunReport rep =
        runWithReplanning(cfg, sched, closedLoopOpts(seed));
    // Structural invariants of every closed-loop run.
    EXPECT_EQ(rep.replanLatencySeconds.size(),
              static_cast<size_t>(rep.replans));
    if (rep.success) {
      EXPECT_TRUE(rep.finalResult.ok());
      EXPECT_FALSE(rep.safeStopped);
    }
    if (rep.success && rep.replans >= 1) rescued = true;
  }
  EXPECT_TRUE(rescued)
      << "no seed in [0, 50) was rescued by replanning although the "
         "open loop lost it";
}

TEST(ResumeRoundTrip, ZeroBudgetSafeStops) {
  const auto cfg = oneBatch();
  const auto sched = solveSchedule(cfg);
  ASSERT_FALSE(sched.items.empty());
  auto opts = closedLoopOpts(1);
  opts.sim.faults = rcx::FaultPlan::iidLoss(1.0);  // guaranteed fatal
  opts.maxReplans = 0;
  const RunReport rep = runWithReplanning(cfg, sched, opts);
  EXPECT_FALSE(rep.success);
  EXPECT_TRUE(rep.safeStopped);
  EXPECT_NE(rep.safeStopReason.find("budget"), std::string::npos)
      << rep.safeStopReason;
  EXPECT_EQ(rep.replans, 0);
  ASSERT_EQ(rep.segments.size(), 1u);
  EXPECT_TRUE(rcx::isFatal(rep.segments[0].deviation));
}

}  // namespace
}  // namespace replan
