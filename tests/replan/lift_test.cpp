// State lifting (replan/lift.hpp): a concrete PlantSnapshot becomes a
// symbolic initial state of the plant model. The properties under test:
// discrete places map to the right locations, clock rounding follows
// the safe directions (deadlines up, progress down), strict mode
// rejects states that violate the original deadlines while relaxed
// mode clamps them, and the lifted state is actually searchable (the
// engine's initial zone is non-empty exactly when the report says
// feasible).
#include <gtest/gtest.h>

#include "engine/reachability.hpp"
#include "replan/lift.hpp"
#include "replan_test_util.hpp"

namespace replan {
namespace {

using replan_test::crashPlan;
using replan_test::findMidBatchFatalSeed;
using replan_test::kTpu;
using replan_test::runClassified;
using replan_test::solveSchedule;

plant::PlantConfig oneBatch() {
  plant::PlantConfig cfg;
  cfg.order = {plant::qualityA()};
  return cfg;
}

/// Clock init by name in the lifted system (0 when the name is absent).
int64_t clockInit(const ta::System& sys, const std::string& name) {
  for (ta::ClockId c = 1; c <= static_cast<ta::ClockId>(sys.numClocks());
       ++c) {
    if (sys.clockName(c) == name) return sys.initialClock(c);
  }
  return 0;
}

std::string initialLoc(const ta::System& sys, ta::ProcId p) {
  const auto& aut = sys.automaton(p);
  return aut.location(aut.initial()).name;
}

bool goalReachable(const plant::Plant& plant, size_t maxStates) {
  engine::Options o;
  o.order = engine::SearchOrder::kDfs;
  o.dfsReverse = true;
  o.maxStates = maxStates;
  engine::Reachability checker(plant.sys, o);
  return checker.run(plant.goal).reachable;
}

TEST(RelaxedConfig, WidensDeadlinesKeepsPhysicalTimes) {
  const auto cfg = oneBatch();
  const auto relaxed = relaxedConfig(cfg);
  EXPECT_GT(relaxed.rtotal, cfg.rtotal);
  EXPECT_GE(relaxed.castGap, cfg.castGap);
  EXPECT_EQ(relaxed.tcast, cfg.tcast);
  EXPECT_EQ(relaxed.bmove, cfg.bmove);
  EXPECT_EQ(relaxed.cmove, cfg.cmove);
}

TEST(Lift, PreStartSnapshotIsTheOriginalModel) {
  const auto cfg = oneBatch();
  // A fatal halt before anything happened (total message loss).
  rcx::PlantSnapshot snap;
  snap.kind = rcx::DeviationKind::kWatchdogHalt;
  snap.quiescent = true;
  snap.tick = 100;
  snap.ticksPerTimeUnit = kTpu;
  snap.loads.resize(1);
  snap.cranes[0].pos = plant::kOverT1Out;
  snap.cranes[1].pos = plant::kOverCastOut;
  const Lifted lifted = liftSnapshot(snap, cfg, LiftMode::kStrict);
  ASSERT_TRUE(lifted.report.feasible)
      << (lifted.report.notes.empty() ? "" : lifted.report.notes[0]);
  const ta::System& sys = lifted.plant->sys;
  EXPECT_EQ(initialLoc(sys, lifted.plant->caster), "await");
  EXPECT_EQ(initialLoc(sys, lifted.plant->recipes[0]), "setoff");
  EXPECT_EQ(initialLoc(sys, lifted.plant->batches[0]), "src");
  EXPECT_EQ(initialLoc(sys, lifted.plant->monitor), "run");
  EXPECT_FALSE(sys.hasNonzeroClockInit());
  EXPECT_TRUE(goalReachable(*lifted.plant, 500'000));
}

TEST(Lift, MidBatchSnapshotIsSearchable) {
  const auto cfg = oneBatch();
  const auto sched = solveSchedule(cfg);
  ASSERT_FALSE(sched.items.empty());
  const uint64_t seed = findMidBatchFatalSeed(sched, cfg, crashPlan(), 50);
  ASSERT_LT(seed, 50u);
  const rcx::SimResult r = runClassified(sched, cfg, crashPlan(), seed);
  ASSERT_TRUE(r.snapshot.has_value());
  // Relaxed ladder rung: widened deadlines, clamped clocks.
  const auto rcfg = relaxedConfig(cfg);
  const Lifted lifted = liftSnapshot(*r.snapshot, rcfg, LiftMode::kRelaxed);
  ASSERT_TRUE(lifted.report.feasible)
      << (lifted.report.notes.empty() ? "" : lifted.report.notes[0]);
  EXPECT_TRUE(goalReachable(*lifted.plant, 800'000))
      << "a quiesced mid-batch state must still reach the goal under "
         "relaxed deadlines";
}

/// A poured ladle parked at the holding pad with its recipe deadline
/// long blown: strict must refuse, relaxed must clamp and proceed.
rcx::PlantSnapshot blownDeadlineSnapshot(const plant::PlantConfig& cfg,
                                         int64_t unitsLate) {
  rcx::PlantSnapshot snap;
  snap.kind = rcx::DeviationKind::kWatchdogHalt;
  snap.quiescent = true;
  snap.ticksPerTimeUnit = kTpu;
  snap.tick = 1'000'000;
  snap.loads.resize(1);
  rcx::LoadSnapshot& l = snap.loads[0];
  l.place = rcx::LoadSnapshot::Place::kGround;
  l.groundK = plant::kOverHold;
  l.treatmentsDone = 1;  // qualityA: the single treatment is done
  l.lastMachine = plant::machineOn(1, plant::MachineType::kA);
  l.pourTick = snap.tick - (cfg.rtotal + unitsLate) * kTpu;
  snap.cranes[0].pos = plant::kOverT1Out;
  snap.cranes[1].pos = plant::kOverCastOut;
  return snap;
}

TEST(Lift, BlownDeadlineStrictInfeasible) {
  const auto cfg = oneBatch();
  const auto snap = blownDeadlineSnapshot(cfg, 10);
  const Lifted lifted = liftSnapshot(snap, cfg, LiftMode::kStrict);
  EXPECT_FALSE(lifted.report.feasible);
  // The state is installed anyway; the engine proves it empty without
  // exploring anything.
  engine::Options o;
  engine::Reachability checker(lifted.plant->sys, o);
  const engine::Result res = checker.run(lifted.plant->goal);
  EXPECT_FALSE(res.reachable);
  EXPECT_TRUE(res.exhausted);
  EXPECT_EQ(res.stats.statesExplored, 0u);
}

TEST(Lift, BlownDeadlineRelaxedClampsAndSearches) {
  const auto cfg = oneBatch();
  const auto rcfg = relaxedConfig(cfg);
  // Late even for the widened deadline, so the clamp has to act.
  const auto snap = blownDeadlineSnapshot(cfg, 8 * cfg.rtotal + 20);
  const Lifted lifted = liftSnapshot(snap, rcfg, LiftMode::kRelaxed);
  ASSERT_TRUE(lifted.report.feasible)
      << (lifted.report.notes.empty() ? "" : lifted.report.notes[0]);
  EXPECT_GE(lifted.report.clampedClocks, 1);
  EXPECT_TRUE(goalReachable(*lifted.plant, 800'000));
}

TEST(Lift, CasterProgressRoundsDown) {
  const auto cfg = oneBatch();
  rcx::PlantSnapshot snap;
  snap.kind = rcx::DeviationKind::kWatchdogHalt;
  snap.quiescent = true;
  snap.ticksPerTimeUnit = kTpu;
  snap.tick = 10'000;
  snap.loads.resize(1);
  rcx::LoadSnapshot& l = snap.loads[0];
  l.place = rcx::LoadSnapshot::Place::kInCaster;
  l.treatmentsDone = 1;
  l.lastMachine = plant::machineOn(1, plant::MachineType::kA);
  l.pourTick = snap.tick - 2'000;
  snap.caster.castingBatch = 0;
  snap.caster.castStartTick = snap.tick - 1'234;  // 12.34 model units
  snap.cranes[0].pos = plant::kOverT1Out;
  snap.cranes[1].pos = plant::kOverHold;
  const Lifted lifted = liftSnapshot(snap, cfg, LiftMode::kStrict);
  ASSERT_TRUE(lifted.report.feasible)
      << (lifted.report.notes.empty() ? "" : lifted.report.notes[0]);
  const ta::System& sys = lifted.plant->sys;
  EXPECT_EQ(initialLoc(sys, lifted.plant->caster), "cast0");
  EXPECT_EQ(initialLoc(sys, lifted.plant->batches[0]), "in_cast");
  // Progress clock floors (12.34 -> 12): the repair schedule never
  // ejects before the physical cast completes.
  EXPECT_EQ(clockInit(sys, "k"), 12);
  // Deadline clock ceils (20.00 -> 20 exactly here; one tick more and
  // it must round to 21).
  EXPECT_EQ(clockInit(sys, "tot0"), 20);
  rcx::PlantSnapshot snap2 = snap;
  snap2.loads[0].pourTick -= 1;
  const Lifted lifted2 = liftSnapshot(snap2, cfg, LiftMode::kStrict);
  EXPECT_EQ(clockInit(lifted2.plant->sys, "tot0"), 21);
}

}  // namespace
}  // namespace replan
