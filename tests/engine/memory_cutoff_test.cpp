// Graceful degradation under a memory budget, uniformly across all five
// engines: sequential BFS, sequential (random) DFS, level-synchronous
// parallel BFS, work-stealing parallel DFS, and the seeded portfolio.
// A breached maxMemoryBytes must come back as Cutoff::kMemory with
// partial statistics — never as "unreachable/exhausted", never as a
// crash — and a budget large enough for the whole search must leave the
// verdict untouched.
#include <cstddef>
#include <string>

#include <gtest/gtest.h>

#include "engine/reachability.hpp"
#include "plant/plant.hpp"

namespace engine {
namespace {

struct Engine {
  const char* name;
  SearchOrder order;
  size_t threads;
  bool portfolio;
};

constexpr Engine kEngines[] = {
    {"bfs", SearchOrder::kBfs, 1, false},
    {"dfs", SearchOrder::kRandomDfs, 1, false},
    {"parallel-bfs", SearchOrder::kBfs, 4, false},
    {"work-stealing-dfs", SearchOrder::kRandomDfs, 4, false},
    {"portfolio", SearchOrder::kRandomDfs, 4, true},
};

Options engineOptions(const Engine& e) {
  Options o;
  o.order = e.order;
  o.threads = e.threads;
  o.portfolio = e.portfolio;
  o.seed = 1;
  o.maxSeconds = 60.0;
  return o;
}

/// The unguided 2-batch plant: big enough that a tiny byte budget is
/// breached almost immediately on every engine.
TEST(MemoryCutoff, AllFiveEnginesReportMemoryCutoff) {
  for (const Engine& e : kEngines) {
    plant::PlantConfig cfg;
    cfg.order = plant::standardOrder(2);
    cfg.guides = plant::GuideLevel::kNone;
    const auto p = plant::buildPlant(cfg);
    Options o = engineOptions(e);
    o.maxMemoryBytes = 512 * 1024;
    Reachability checker(p->sys, o);
    const Result res = checker.run(p->goal);
    EXPECT_FALSE(res.reachable) << e.name;
    EXPECT_FALSE(res.exhausted) << e.name;
    EXPECT_EQ(res.stats.cutoff, Cutoff::kMemory) << e.name;
    // Partial stats must survive the cutoff: the engine did real work
    // and accounted for it before giving up.
    EXPECT_GT(res.stats.statesExplored, 0u) << e.name;
    EXPECT_GT(res.stats.peakBytes, 0u) << e.name;
    EXPECT_GE(res.stats.seconds, 0.0) << e.name;
  }
}

TEST(MemoryCutoff, GenerousBudgetLeavesVerdictUntouched) {
  for (const Engine& e : kEngines) {
    plant::PlantConfig cfg;
    cfg.order = plant::standardOrder(1);
    const auto p = plant::buildPlant(cfg);
    Options o = engineOptions(e);
    o.maxMemoryBytes = size_t{4} * 1024 * 1024 * 1024;
    Reachability checker(p->sys, o);
    const Result res = checker.run(p->goal);
    EXPECT_TRUE(res.reachable) << e.name;
    EXPECT_EQ(res.stats.cutoff, Cutoff::kNone) << e.name;
  }
}

TEST(MemoryCutoff, TinyBudgetStopsEarly) {
  // The memory cutoff must fire promptly, not after the frontier has
  // ballooned: with a 512 KiB budget the store must hold well under the
  // unbounded search's state count.
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(2);
  cfg.guides = plant::GuideLevel::kNone;
  const auto p = plant::buildPlant(cfg);
  Options o = engineOptions(kEngines[0]);
  o.maxMemoryBytes = 512 * 1024;
  o.maxStates = 2'000'000;
  Reachability checker(p->sys, o);
  const Result res = checker.run(p->goal);
  EXPECT_EQ(res.stats.cutoff, Cutoff::kMemory);
  EXPECT_LT(res.stats.statesStored, 200'000u);
}

}  // namespace
}  // namespace engine
