// Differential testing of the reachability engine: random small
// timed-automata networks (binary and broadcast channels, urgent and
// committed locations, strict and weak guards, nonzero reset values,
// bounded integer-variable assignments), explored exhaustively under
// every engine configuration — sequential BFS/DFS variants, parallel
// BFS, work-stealing parallel DFS and the seeded portfolio at 2 and 4
// threads, crossed with every zone-abstraction operator (kGlobalM /
// kLocationM / kLocationLUPlus, with and without the active-clock
// reduction) and the storage-engine knobs (discrete-state interning
// on/off, exact convex-union zone merging, reduced-form zone layout).
// Config 0 — sequential BFS under kGlobalM — is the
// oracle: all configurations must agree with it on reachability, and
// every positive answer must concretize into a validated timed trace.
#include <gtest/gtest.h>

#include "engine/reachability.hpp"
#include "engine/trace.hpp"
#include "random_model.hpp"
#include "ta/system.hpp"

namespace engine {
namespace {

Options config(int kind) {
  Options o;
  o.maxSeconds = 20.0;
  switch (kind) {
    // Config 0 is the oracle every other configuration must agree
    // with: sequential BFS under the classic global-max abstraction,
    // exploring the model exactly as built (optimizer off). Every
    // other configuration inherits optLevel 2, so the whole matrix
    // doubles as an optimized-vs-unoptimized differential.
    case 0:
      o.order = SearchOrder::kBfs;
      o.extrapolation = Extrapolation::kGlobalM;
      o.optLevel = 0;
      break;
    case 1: o.order = SearchOrder::kDfs; break;
    case 2:
      o.order = SearchOrder::kDfs;
      o.dfsReverse = true;
      break;
    case 3:
      o.order = SearchOrder::kRandomDfs;
      o.seed = 99;
      break;
    case 4: o.inclusionChecking = false; break;
    case 5: o.compactPassed = true; break;
    case 6: o.activeClockReduction = false; break;
    case 7:  // parallel BFS, small shard count
      o.threads = 2;
      o.shardBits = 2;
      break;
    case 8:  // parallel BFS, single shard (maximal lock contention)
      o.threads = 4;
      o.shardBits = 0;
      break;
    case 9:
      o.order = SearchOrder::kDfs;
      o.activeClockReduction = false;
      o.inclusionChecking = false;
      break;
    case 10:  // work-stealing DFS, 2 threads
      o.order = SearchOrder::kDfs;
      o.threads = 2;
      o.shardBits = 2;
      break;
    case 11:  // work-stealing random DFS, 4 threads
      o.order = SearchOrder::kRandomDfs;
      o.seed = 7;
      o.threads = 4;
      break;
    case 12:  // portfolio race, 2 workers
      o.order = SearchOrder::kDfs;
      o.portfolio = true;
      o.threads = 2;
      break;
    case 13:  // portfolio race, 4 workers
      o.order = SearchOrder::kRandomDfs;
      o.seed = 13;
      o.portfolio = true;
      o.threads = 4;
      break;
    case 14:  // work-stealing DFS over the reduced-form passed store
      o.order = SearchOrder::kDfs;
      o.threads = 2;
      o.compactPassed = true;
      break;
    // -- Extrapolation-mode matrix: every operator crossed with
    //    sequential BFS, sequential DFS and a parallel engine, each
    //    checked against the kGlobalM oracle (config 0). Configs 1-14
    //    inherit the kLocationLUPlus default, so the coarsest operator
    //    is additionally exercised by every engine above.
    case 15:
      o.order = SearchOrder::kDfs;
      o.extrapolation = Extrapolation::kGlobalM;
      break;
    case 16:  // global-M under the parallel BFS explorer
      o.extrapolation = Extrapolation::kGlobalM;
      o.threads = 2;
      o.shardBits = 2;
      break;
    case 17:
      o.extrapolation = Extrapolation::kLocationM;
      break;
    case 18:
      o.order = SearchOrder::kDfs;
      o.extrapolation = Extrapolation::kLocationM;
      break;
    case 19:  // location-M under the work-stealing DFS explorer
      o.order = SearchOrder::kDfs;
      o.extrapolation = Extrapolation::kLocationM;
      o.threads = 2;
      o.shardBits = 2;
      break;
    case 20:  // LU+ without the active-clock reduction
      o.extrapolation = Extrapolation::kLocationLUPlus;
      o.activeClockReduction = false;
      break;
    case 21:  // LU+ with exact-equality dedup (no zone inclusion)
      o.order = SearchOrder::kDfs;
      o.extrapolation = Extrapolation::kLocationLUPlus;
      o.inclusionChecking = false;
      break;
    // -- Storage-engine matrix: interning off (append-only arena) and
    //    exact convex-union merging on, alone and combined, across
    //    sequential and parallel engines and both zone layouts.
    case 22:  // BFS without discrete-state interning
      o.internStates = false;
      break;
    case 23:  // BFS with convex-union zone merging
      o.mergeZones = true;
      break;
    case 24:  // work-stealing DFS with merging, sharded store
      o.order = SearchOrder::kDfs;
      o.threads = 2;
      o.shardBits = 2;
      o.mergeZones = true;
      break;
    case 25:  // DFS, interning off + merging on
      o.order = SearchOrder::kDfs;
      o.internStates = false;
      o.mergeZones = true;
      break;
    case 26:  // reduced-form store with merging, interning off
      o.compactPassed = true;
      o.mergeZones = true;
      o.internStates = false;
      break;
    // -- Optimizer matrix: every engine family at optLevel 0 (model
    //    explored exactly as built) against the default optLevel 2 of
    //    configs 1-26, plus the intermediate level 1 pipeline.
    case 27:  // sequential BFS, LU+ default, optimizer off
      o.optLevel = 0;
      break;
    case 28:  // sequential DFS, optimizer off
      o.order = SearchOrder::kDfs;
      o.optLevel = 0;
      break;
    case 29:  // parallel BFS, optimizer off
      o.threads = 2;
      o.shardBits = 2;
      o.optLevel = 0;
      break;
    case 30:  // work-stealing DFS, optimizer off
      o.order = SearchOrder::kDfs;
      o.threads = 2;
      o.optLevel = 0;
      break;
    case 31:  // portfolio race, optimizer off
      o.order = SearchOrder::kDfs;
      o.portfolio = true;
      o.threads = 2;
      o.optLevel = 0;
      break;
    default:  // folding + dead-code + guard simplification only
      o.optLevel = 1;
      break;
  }
  return o;
}

constexpr int kNumConfigs = 33;

class Differential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Differential, AllConfigurationsAgree) {
  const uint64_t seed = GetParam();
  int baseline = -1;
  for (int kind = 0; kind < kNumConfigs; ++kind) {
    RandomModel m(seed);
    Reachability checker(*m.sys, config(kind));
    const Result res = checker.run(m.goal);
    ASSERT_TRUE(res.reachable || res.exhausted)
        << "seed " << seed << " config " << kind << " hit a cutoff";
    const int answer = res.reachable ? 1 : 0;
    if (baseline < 0) {
      baseline = answer;
    } else {
      EXPECT_EQ(answer, baseline)
          << "seed " << seed << " config " << kind << " disagrees";
    }
    if (res.reachable) {
      std::string err;
      const auto ct = concretize(*m.sys, res.trace, &err);
      ASSERT_TRUE(ct.has_value())
          << "seed " << seed << " config " << kind << ": " << err;
      EXPECT_TRUE(validate(*m.sys, *ct, &err))
          << "seed " << seed << " config " << kind << ": " << err;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace engine
