// Parallel-vs-sequential equivalence of the depth-first engine: the
// work-stealing explorer and the seeded portfolio must report the same
// reachable/exhausted verdicts as sequential DFS across threads in
// {1, 2, 4} on Fischer's protocol and small batch-plant models,
// deadlock goals included; all three cutoff paths must fire; positive
// verdicts must validate; and mid-search cancellation in portfolio
// mode must be observable in the stats.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/reachability.hpp"
#include "engine/trace.hpp"
#include "plant/plant.hpp"
#include "ta/system.hpp"

namespace engine {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 4};

Options dfsOptions(size_t threads, bool portfolio = false) {
  Options o;
  o.order = SearchOrder::kRandomDfs;
  o.seed = 1;
  o.threads = threads;
  o.portfolio = portfolio;
  o.maxSeconds = 60.0;
  return o;
}

/// Fischer's protocol (weak-bound variant, as in
/// parallel_reachability_test.cpp): mutual exclusion holds iff K >= D.
struct Fischer {
  ta::System sys;
  std::vector<ta::ProcId> procs;
  std::vector<ta::LocId> critical;

  Fischer(int n, int d, int k) {
    const ta::VarId id = sys.addVar("id", 0);
    for (int i = 1; i <= n; ++i) {
      const ta::ClockId x = sys.addClock("x" + std::to_string(i));
      const ta::ProcId p = sys.addAutomaton("P" + std::to_string(i));
      procs.push_back(p);
      auto& a = sys.automaton(p);
      const ta::LocId idle = a.addLocation("idle");
      const ta::LocId trying = a.addLocation("trying");
      const ta::LocId waiting = a.addLocation("waiting");
      const ta::LocId crit = a.addLocation("critical");
      critical.push_back(crit);
      a.setInvariant(trying, {ta::ccLe(x, d)});
      sys.edge(p, idle, trying).guard(sys.rd(id) == 0).reset(x);
      sys.edge(p, trying, waiting).when(ta::ccLe(x, d)).reset(x).assign(id, i);
      sys.edge(p, waiting, crit).when(ta::ccGe(x, k + 1)).guard(sys.rd(id) == i);
      sys.edge(p, waiting, idle).guard(sys.rd(id) != i);
      sys.edge(p, crit, idle).assign(id, 0);
    }
    sys.finalize();
  }

  [[nodiscard]] Goal violation() const {
    Goal g;
    g.locations = {{procs[0], critical[0]}, {procs[1], critical[1]}};
    return g;
  }
};

void expectValidTrace(const ta::System& sys, const Result& res,
                      const std::string& what) {
  std::string err;
  const auto ct = concretize(sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << what << ": " << err;
  EXPECT_TRUE(validate(sys, *ct, &err)) << what << ": " << err;
}

TEST(ParallelDfs, FischerViolationFoundAtEveryThreadCount) {
  for (const bool portfolio : {false, true}) {
    for (const size_t t : kThreadCounts) {
      Fischer m(3, 4, 1);
      Reachability checker(m.sys, dfsOptions(t, portfolio));
      const Result res = checker.run(m.violation());
      const std::string what = std::to_string(t) + " threads, portfolio=" +
                               std::to_string(portfolio);
      ASSERT_TRUE(res.reachable) << what;
      ASSERT_FALSE(res.trace.steps.empty()) << what;
      expectValidTrace(m.sys, res, what);
    }
  }
}

TEST(ParallelDfs, FischerSafetyExhaustedAtEveryThreadCount) {
  for (const bool portfolio : {false, true}) {
    for (const size_t t : kThreadCounts) {
      Fischer m(4, 2, 3);
      Reachability checker(m.sys, dfsOptions(t, portfolio));
      const Result res = checker.run(m.violation());
      const std::string what = std::to_string(t) + " threads, portfolio=" +
                               std::to_string(portfolio);
      EXPECT_FALSE(res.reachable) << what;
      EXPECT_TRUE(res.exhausted) << what;
      EXPECT_EQ(res.stats.cutoff, Cutoff::kNone) << what;
    }
  }
}

TEST(ParallelDfs, GuidedPlantScheduleAgrees) {
  for (const bool portfolio : {false, true}) {
    for (const size_t t : kThreadCounts) {
      plant::PlantConfig cfg;
      cfg.order = plant::standardOrder(2);
      cfg.guides = plant::GuideLevel::kAll;
      const auto p = plant::buildPlant(cfg);
      Reachability checker(p->sys, dfsOptions(t, portfolio));
      const Result res = checker.run(p->goal);
      const std::string what = std::to_string(t) + " threads, portfolio=" +
                               std::to_string(portfolio);
      ASSERT_TRUE(res.reachable) << what;
      expectValidTrace(p->sys, res, what);
    }
  }
}

TEST(ParallelDfs, DfsDeclarationOrderAgrees) {
  // Work-stealing with the plain (declaration successor order) kDfs.
  for (const size_t t : kThreadCounts) {
    Fischer m(3, 4, 1);
    Options o = dfsOptions(t);
    o.order = SearchOrder::kDfs;
    Reachability checker(m.sys, o);
    const Result res = checker.run(m.violation());
    ASSERT_TRUE(res.reachable) << t << " threads";
    expectValidTrace(m.sys, res, std::to_string(t) + " threads");
  }
}

TEST(ParallelDfs, DeadlockGoalTimelockAgrees) {
  // Invariant x <= 3 with the only exit requiring x >= 5: a timelock
  // every configuration must find.
  for (const bool portfolio : {false, true}) {
    for (const size_t t : kThreadCounts) {
      ta::System sys;
      const ta::ClockId x = sys.addClock("x");
      const ta::ProcId p = sys.addAutomaton("P");
      auto& a = sys.automaton(p);
      const ta::LocId l0 = a.addLocation("l0");
      const ta::LocId l1 = a.addLocation("l1");
      a.setInvariant(l0, {ta::ccLe(x, 3)});
      sys.edge(p, l0, l1).when(ta::ccGe(x, 5));
      sys.finalize();
      Goal g;
      g.deadlock = true;
      Reachability checker(sys, dfsOptions(t, portfolio));
      const Result res = checker.run(g);
      EXPECT_TRUE(res.reachable)
          << t << " threads, portfolio=" << portfolio;
    }
  }
}

TEST(ParallelDfs, DeadlockFreeModelExhaustsEverywhere) {
  for (const bool portfolio : {false, true}) {
    for (const size_t t : kThreadCounts) {
      ta::System sys;
      const ta::ProcId p = sys.addAutomaton("P");
      (void)sys.automaton(p).addLocation("l");
      sys.edge(p, 0, 0);
      sys.finalize();
      Goal g;
      g.deadlock = true;
      Reachability checker(sys, dfsOptions(t, portfolio));
      const Result res = checker.run(g);
      EXPECT_FALSE(res.reachable) << t << " threads, portfolio=" << portfolio;
      EXPECT_TRUE(res.exhausted) << t << " threads, portfolio=" << portfolio;
    }
  }
}

TEST(ParallelDfs, StatesCutoffAgrees) {
  for (const bool portfolio : {false, true}) {
    for (const size_t t : kThreadCounts) {
      plant::PlantConfig cfg;
      cfg.order = plant::standardOrder(2);
      cfg.guides = plant::GuideLevel::kNone;
      const auto p = plant::buildPlant(cfg);
      Options o = dfsOptions(t, portfolio);
      o.maxStates = 500;
      Reachability checker(p->sys, o);
      const Result res = checker.run(p->goal);
      const std::string what = std::to_string(t) + " threads, portfolio=" +
                               std::to_string(portfolio);
      EXPECT_FALSE(res.reachable) << what;
      EXPECT_FALSE(res.exhausted) << what;
      EXPECT_EQ(res.stats.cutoff, Cutoff::kStates) << what;
    }
  }
}

TEST(ParallelDfs, MemoryCutoffAgrees) {
  for (const bool portfolio : {false, true}) {
    for (const size_t t : kThreadCounts) {
      plant::PlantConfig cfg;
      cfg.order = plant::standardOrder(2);
      cfg.guides = plant::GuideLevel::kNone;
      const auto p = plant::buildPlant(cfg);
      Options o = dfsOptions(t, portfolio);
      o.maxMemoryBytes = 512 * 1024;
      Reachability checker(p->sys, o);
      const Result res = checker.run(p->goal);
      const std::string what = std::to_string(t) + " threads, portfolio=" +
                               std::to_string(portfolio);
      EXPECT_FALSE(res.reachable) << what;
      EXPECT_FALSE(res.exhausted) << what;
      EXPECT_EQ(res.stats.cutoff, Cutoff::kMemory) << what;
    }
  }
}

TEST(ParallelDfs, TimeCutoffAgrees) {
  for (const bool portfolio : {false, true}) {
    for (const size_t t : kThreadCounts) {
      plant::PlantConfig cfg;
      cfg.order = plant::standardOrder(3);
      cfg.guides = plant::GuideLevel::kNone;
      const auto p = plant::buildPlant(cfg);
      Options o = dfsOptions(t, portfolio);
      // The unguided 3-batch space takes minutes to exhaust; a
      // millisecond budget must abort with the time cutoff.
      o.maxSeconds = 0.001;
      Reachability checker(p->sys, o);
      const Result res = checker.run(p->goal);
      const std::string what = std::to_string(t) + " threads, portfolio=" +
                               std::to_string(portfolio);
      EXPECT_FALSE(res.exhausted) << what;
      if (!res.reachable) {
        EXPECT_EQ(res.stats.cutoff, Cutoff::kTime) << what;
      }
    }
  }
}

TEST(ParallelDfs, PortfolioCancelsLosersMidSearch) {
  // A reachable goal with a non-trivial search: exactly one worker wins
  // the race, every other worker is cancelled (either it observed the
  // cancel flag mid-search or it lost the conclusive-verdict CAS).
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(3);
  cfg.guides = plant::GuideLevel::kAll;
  const auto p = plant::buildPlant(cfg);
  Reachability checker(p->sys, dfsOptions(4, true));
  const Result res = checker.run(p->goal);
  ASSERT_TRUE(res.reachable);
  EXPECT_EQ(res.stats.cancelledWorkers, 3u);
  expectValidTrace(p->sys, res, "portfolio");
}

TEST(ParallelDfs, PerThreadStatsAndPeakStackDepth) {
  // peakStackDepth must aggregate the per-worker maximum (regression:
  // it stayed zero), per-thread explored counts must be reported like
  // the BFS path does, and their sum must equal statesExplored.
  for (const bool portfolio : {false, true}) {
    Fischer m(4, 2, 3);
    Reachability checker(m.sys, dfsOptions(4, portfolio));
    const Result res = checker.run(m.violation());
    const std::string what = portfolio ? "portfolio" : "work-stealing";
    ASSERT_EQ(res.stats.perThreadExplored.size(), 4u) << what;
    size_t sum = 0;
    for (const size_t n : res.stats.perThreadExplored) sum += n;
    EXPECT_EQ(sum, res.stats.statesExplored) << what;
    EXPECT_GT(res.stats.statesExplored, 0u) << what;
    // The Fischer state graph is deeper than one state, and every
    // parallel worker tracks its own stack/trace depth.
    EXPECT_GT(res.stats.peakStackDepth, 1u) << what;
  }
}

TEST(ParallelDfs, WorkStealingSingleShardStillCorrect) {
  // shardBits == 0 funnels every insert through one lock — maximal
  // contention, same verdict.
  for (const size_t t : kThreadCounts) {
    Fischer m(3, 4, 1);
    Options o = dfsOptions(t);
    o.shardBits = 0;
    Reachability checker(m.sys, o);
    const Result res = checker.run(m.violation());
    EXPECT_TRUE(res.reachable) << t << " threads";
  }
}

TEST(ParallelDfs, CompactStoreParallelDfsAgrees) {
  // The reduced-form store exercises the concurrent subsumption-free
  // insert path under the shard locks.
  for (const size_t t : kThreadCounts) {
    Fischer m(4, 2, 3);
    Options o = dfsOptions(t);
    o.compactPassed = true;
    Reachability checker(m.sys, o);
    const Result res = checker.run(m.violation());
    EXPECT_FALSE(res.reachable) << t << " threads";
    EXPECT_TRUE(res.exhausted) << t << " threads";
  }
}

TEST(ParallelDfs, BitstateParallelDfsFindsViolation) {
  // Shared atomic bit table: a positive verdict is still conclusive and
  // must validate; negatives stay inconclusive (exhausted == false).
  for (const size_t t : kThreadCounts) {
    Fischer m(3, 4, 1);
    Options o = dfsOptions(t);
    o.bitstateHashing = true;
    o.hashBits = 18;
    Reachability checker(m.sys, o);
    const Result res = checker.run(m.violation());
    ASSERT_TRUE(res.reachable) << t << " threads";
    expectValidTrace(m.sys, res, std::to_string(t) + " threads (bitstate)");
  }
}

}  // namespace
}  // namespace engine
