// Tests of the engine's search configurations: BFS / DFS / randomized
// DFS / bit-state hashing, inclusion checking, reductions, cut-offs.
#include <gtest/gtest.h>

#include "engine/reachability.hpp"
#include "engine/trace.hpp"
#include "ta/system.hpp"

namespace engine {
namespace {

using ta::ccGe;
using ta::ccLe;

/// A "diamond grid" model: two independent counters stepped by timed
/// self-loops — a classic interleaving state space with a known size
/// ((kMax+1)^2 discrete states) and a reachable corner.
struct Grid {
  static constexpr int kMax = 6;
  ta::System sys;
  ta::ProcId pa, pb;
  ta::VarId a, b;

  Grid() {
    a = sys.addVar("a", 0);
    b = sys.addVar("b", 0);
    pa = sys.addAutomaton("A");
    pb = sys.addAutomaton("B");
    const ta::ClockId x = sys.addClock("x");
    const ta::ClockId y = sys.addClock("y");
    auto& aa = sys.automaton(pa);
    auto& ab = sys.automaton(pb);
    const ta::LocId la = aa.addLocation("l");
    const ta::LocId lb = ab.addLocation("l");
    (void)la;
    (void)lb;
    sys.edge(pa, 0, 0).guard(sys.rd(a) < kMax).when(ccGe(x, 1)).reset(x)
        .assign(a, sys.rd(a) + 1);
    sys.edge(pb, 0, 0).guard(sys.rd(b) < kMax).when(ccGe(y, 1)).reset(y)
        .assign(b, sys.rd(b) + 1);
    sys.finalize();
  }

  [[nodiscard]] Goal corner() {
    return Goal{{}, ((sys.rd(a) == kMax) && (sys.rd(b) == kMax)).ref(), {}};
  }
  [[nodiscard]] Goal unreachable() {
    return Goal{{}, (sys.rd(a) == kMax + 5).ref(), {}};
  }
};

TEST(SearchOptions, AllOrdersAgreeOnReachability) {
  for (const SearchOrder order :
       {SearchOrder::kBfs, SearchOrder::kDfs, SearchOrder::kRandomDfs}) {
    Grid g;
    Options o;
    o.order = order;
    Reachability checker(g.sys, o);
    EXPECT_TRUE(checker.run(g.corner()).reachable)
        << "order " << static_cast<int>(order);
    Grid g2;
    Reachability checker2(g2.sys, o);
    const Result neg = checker2.run(g2.unreachable());
    EXPECT_FALSE(neg.reachable);
    EXPECT_TRUE(neg.exhausted);
  }
}

TEST(SearchOptions, BfsFindsShortestTrace) {
  Grid g;
  Options o;
  o.order = SearchOrder::kBfs;
  Reachability checker(g.sys, o);
  const Result res = checker.run(g.corner());
  ASSERT_TRUE(res.reachable);
  // Shortest path: 2 * kMax steps plus the initial pseudo-step.
  EXPECT_EQ(res.trace.steps.size(), 2u * Grid::kMax + 1);
}

TEST(SearchOptions, DfsTraceIsValidEvenIfLonger) {
  Grid g;
  Options o;
  o.order = SearchOrder::kDfs;
  Reachability checker(g.sys, o);
  const Result res = checker.run(g.corner());
  ASSERT_TRUE(res.reachable);
  EXPECT_GE(res.trace.steps.size(), 2u * Grid::kMax + 1);
  std::string err;
  const auto ct = concretize(g.sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;
  EXPECT_TRUE(validate(g.sys, *ct, &err)) << err;
}

TEST(SearchOptions, RandomDfsIsDeterministicPerSeed) {
  const auto runWith = [](uint64_t seed) {
    Grid g;
    Options o;
    o.order = SearchOrder::kRandomDfs;
    o.seed = seed;
    Reachability checker(g.sys, o);
    return checker.run(g.corner()).stats.statesExplored;
  };
  EXPECT_EQ(runWith(7), runWith(7));
  EXPECT_EQ(runWith(3), runWith(3));
}

TEST(SearchOptions, DfsReverseChangesExplorationNotAnswer) {
  Grid g;
  Options o;
  o.order = SearchOrder::kDfs;
  o.dfsReverse = true;
  Reachability checker(g.sys, o);
  EXPECT_TRUE(checker.run(g.corner()).reachable);
}

TEST(SearchOptions, BitstateHashingFindsGoal) {
  Grid g;
  Options o;
  o.order = SearchOrder::kDfs;
  o.bitstateHashing = true;
  o.hashBits = 20;
  Reachability checker(g.sys, o);
  const Result res = checker.run(g.corner());
  EXPECT_TRUE(res.reachable);
  EXPECT_EQ(res.stats.statesStored, 0u) << "BSH stores no zones";
}

TEST(SearchOptions, BitstateNegativeIsInconclusive) {
  Grid g;
  Options o;
  o.order = SearchOrder::kDfs;
  o.bitstateHashing = true;
  o.hashBits = 20;
  Reachability checker(g.sys, o);
  const Result res = checker.run(g.unreachable());
  EXPECT_FALSE(res.reachable);
  EXPECT_FALSE(res.exhausted)
      << "a completed bit-state search may have pruned real states";
}

TEST(SearchOptions, TinyHashTableCanPruneTheGoal) {
  // With a 2^3-bit table nearly every state collides; the search may
  // or may not reach the corner, but it must terminate and must not
  // claim exhaustiveness.
  Grid g;
  Options o;
  o.order = SearchOrder::kDfs;
  o.bitstateHashing = true;
  o.hashBits = 3;
  Reachability checker(g.sys, o);
  const Result res = checker.run(g.corner());
  EXPECT_FALSE(res.exhausted);
}

TEST(SearchOptions, InclusionOffStillCorrect) {
  Grid g;
  Options o;
  o.inclusionChecking = false;
  Reachability checker(g.sys, o);
  EXPECT_TRUE(checker.run(g.corner()).reachable);
}

TEST(SearchOptions, InclusionReducesStoredStates) {
  const auto storedWith = [](bool inclusion) {
    Grid g;
    Options o;
    o.inclusionChecking = inclusion;
    Reachability checker(g.sys, o);
    return checker.run(g.unreachable()).stats.statesStored;
  };
  EXPECT_LE(storedWith(true), storedWith(false));
}

TEST(SearchOptions, TimeCutoffReported) {
  Grid g;
  Options o;
  o.maxSeconds = 1e-9;
  Reachability checker(g.sys, o);
  const Result res = checker.run(g.corner());
  EXPECT_FALSE(res.reachable);
  EXPECT_EQ(res.stats.cutoff, Cutoff::kTime);
  EXPECT_FALSE(res.exhausted);
}

TEST(SearchOptions, StateCutoffReported) {
  Grid g;
  Options o;
  o.maxStates = 5;
  Reachability checker(g.sys, o);
  const Result res = checker.run(g.corner());
  EXPECT_FALSE(res.reachable);
  EXPECT_EQ(res.stats.cutoff, Cutoff::kStates);
}

TEST(SearchOptions, MemoryCutoffReported) {
  Grid g;
  Options o;
  o.maxMemoryBytes = 512;  // absurdly small
  Reachability checker(g.sys, o);
  const Result res = checker.run(g.corner());
  EXPECT_FALSE(res.reachable);
  EXPECT_EQ(res.stats.cutoff, Cutoff::kMemory);
}

TEST(SearchOptions, StatsAreMonotone) {
  Grid g;
  Options o;
  Reachability checker(g.sys, o);
  const Result res = checker.run(g.corner());
  EXPECT_GT(res.stats.statesExplored, 0u);
  EXPECT_GE(res.stats.statesGenerated, res.stats.statesExplored - 1);
  EXPECT_GT(res.stats.peakBytes, 0u);
  EXPECT_GE(res.stats.seconds, 0.0);
}

TEST(SearchOptions, ExtrapolationOffDivergesWithoutBound) {
  // A single clock reset-loop: without extrapolation every delay bound
  // creates a fresh zone, so the search only terminates via cutoff.
  ta::System sys;
  const ta::ClockId x = sys.addClock("x");
  const ta::ClockId y = sys.addClock("y");
  (void)y;  // after k loop iterations y - x == k: pairwise incomparable
  const ta::ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const ta::LocId l = a.addLocation("l");
  a.setInvariant(l, {ccLe(x, 1)});  // each iteration takes exactly 1
  sys.edge(p, 0, 0).when(ccGe(x, 1)).reset(x);
  sys.finalize();
  Options o;
  o.extrapolation = Extrapolation::kNone;
  // The active-clock reduction would free the dead clock y and mask
  // the divergence this test demonstrates.
  o.activeClockReduction = false;
  o.maxStates = 2000;
  Reachability checker(sys, o);
  Goal never{{}, (sys.lit(0)).ref(), {}};
  const Result res = checker.run(never);
  EXPECT_EQ(res.stats.cutoff, Cutoff::kStates)
      << "without extrapolation the zone graph must be infinite here";

  // With extrapolation the same search exhausts in a handful of states.
  ta::System sys2;
  const ta::ClockId x2 = sys2.addClock("x");
  (void)sys2.addClock("y");
  const ta::ProcId p2 = sys2.addAutomaton("P");
  const ta::LocId l2 = sys2.automaton(p2).addLocation("l");
  sys2.automaton(p2).setInvariant(l2, {ccLe(x2, 1)});
  sys2.edge(p2, 0, 0).when(ccGe(x2, 1)).reset(x2);
  sys2.finalize();
  Options o2;
  o2.activeClockReduction = false;
  o2.maxStates = 2000;
  Reachability checker2(sys2, o2);
  Goal never2{{}, (sys2.lit(0)).ref(), {}};
  const Result res2 = checker2.run(never2);
  EXPECT_TRUE(res2.exhausted);
  EXPECT_LT(res2.stats.statesExplored, 10u);
}

}  // namespace
}  // namespace engine
