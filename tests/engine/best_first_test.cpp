// Differential tests of the best-first optimizer against the
// binary-search oracle: both must report the same optimal makespan —
// on Fischer's protocol (time-to-first-critical) and on the guided
// batch plant — plus unit coverage of the anytime incumbent stream,
// the initial-incumbent contract, and soft-guide penalties.
#include <vector>

#include <gtest/gtest.h>

#include "engine/best_first.hpp"
#include "engine/reachability.hpp"
#include "engine/trace.hpp"
#include "plant/plant.hpp"
#include "synthesis/schedule.hpp"
#include "ta/system.hpp"

namespace {

/// Fischer's protocol (the examples/fischer.cpp model) with an added
/// never-reset makespan clock. Optimal time to the first critical
/// section is K+1: the `x > K` guard is strict, so the integer
/// adjustment must surface.
struct Fischer {
  ta::System sys;
  ta::ClockId gtime;
  std::vector<ta::ProcId> procs;
  std::vector<ta::LocId> critical;

  Fischer(int n, int d, int k) {
    gtime = sys.addClock("g");
    const ta::VarId id = sys.addVar("id", 0);
    for (int i = 1; i <= n; ++i) {
      const ta::ClockId x = sys.addClock("x" + std::to_string(i));
      const ta::ProcId p = sys.addAutomaton("P" + std::to_string(i));
      procs.push_back(p);
      auto& a = sys.automaton(p);
      const ta::LocId idle = a.addLocation("idle");
      const ta::LocId trying = a.addLocation("trying");
      const ta::LocId waiting = a.addLocation("waiting");
      const ta::LocId crit = a.addLocation("critical");
      critical.push_back(crit);
      a.setInvariant(trying, {ta::ccLe(x, d)});
      sys.edge(p, idle, trying).guard(sys.rd(id) == 0).reset(x);
      sys.edge(p, trying, waiting)
          .when(ta::ccLe(x, d))
          .reset(x)
          .assign(id, i);
      sys.edge(p, waiting, crit)
          .when(ta::ccGt(x, k))
          .guard(sys.rd(id) == i);
      sys.edge(p, waiting, idle).guard(sys.rd(id) != i);
      sys.edge(p, crit, idle).assign(id, 0);
    }
    sys.finalize();
  }
};

TEST(BestFirstDifferential, FischerTimeToCriticalMatchesBinarySearch) {
  for (const int k : {2, 3, 5}) {
    Fischer model(3, 2, k);
    engine::Goal goal;
    goal.locations = {{model.procs[0], model.critical[0]}};
    synthesis::OptimizeOptions oo;
    oo.optimizer = synthesis::Optimizer::kBinary;
    const auto binary = synthesis::optimizeMakespan(model.sys, goal,
                                                    model.gtime, oo);
    oo.optimizer = synthesis::Optimizer::kBestFirst;
    const auto best = synthesis::optimizeMakespan(model.sys, goal,
                                                  model.gtime, oo);
    ASSERT_TRUE(binary.feasible && binary.optimal) << "K=" << k;
    ASSERT_TRUE(best.feasible && best.optimal) << "K=" << k;
    EXPECT_EQ(best.optimalMakespan, binary.optimalMakespan) << "K=" << k;
    // The strict `x > K` guard: optimum is K+1 exactly.
    EXPECT_EQ(best.optimalMakespan, k + 1) << "K=" << k;
    EXPECT_EQ(best.runs, 1u);
    EXPECT_GT(binary.runs, 1u);
  }
}

std::vector<std::vector<ta::LocId>> plantTargets(const plant::Plant& p) {
  std::vector<std::vector<ta::LocId>> targets(p.sys.numAutomata());
  for (size_t i = 0; i < p.sys.numAutomata(); ++i) {
    const ta::Automaton& a = p.sys.automaton(static_cast<ta::ProcId>(i));
    for (const char* name : {"done", "alldone"}) {
      const ta::LocId l = a.findLocation(name);
      if (l >= 0) {
        targets[i].push_back(l);
        break;
      }
    }
  }
  return targets;
}

TEST(BestFirstDifferential, GuidedPlantMakespanMatchesBinarySearch) {
  // The guided 45-batch workload is the bench gate
  // (bench/bestfirst_opt); in-test we pin the same property at sizes
  // the binary oracle exhausts in seconds.
  for (const int batches : {1, 2}) {
    plant::PlantConfig cfg;
    cfg.order = plant::standardOrder(batches);
    cfg.makespanClock = true;
    const auto p = plant::buildPlant(cfg);

    synthesis::OptimizeOptions oo;
    oo.engine.order = engine::SearchOrder::kDfs;
    oo.engine.dfsReverse = true;
    oo.engine.maxSeconds = 120.0;
    oo.heuristicTargets = plantTargets(*p);
    oo.optimizer = synthesis::Optimizer::kBinary;
    const auto binary =
        synthesis::optimizeMakespan(p->sys, p->goal, p->makespan, oo);
    oo.optimizer = synthesis::Optimizer::kBestFirst;
    const auto best =
        synthesis::optimizeMakespan(p->sys, p->goal, p->makespan, oo);

    ASSERT_TRUE(binary.feasible && binary.optimal) << batches << " batches";
    ASSERT_TRUE(best.feasible && best.optimal) << batches << " batches";
    EXPECT_EQ(best.optimalMakespan, binary.optimalMakespan)
        << batches << " batches";
    EXPECT_EQ(best.cost, best.optimalMakespan) << batches << " batches";
    // Incumbents improve monotonically and end at the optimum.
    for (size_t i = 1; i < best.incumbents.size(); ++i) {
      EXPECT_LT(best.incumbents[i], best.incumbents[i - 1]);
    }
    ASSERT_FALSE(best.incumbents.empty());
    EXPECT_EQ(best.incumbents.back(), best.optimalMakespan);
    // The optimal schedule concretized and projected.
    EXPECT_EQ(best.schedule.makespan, best.optimalMakespan);
    EXPECT_FALSE(best.schedule.items.empty());
  }
}

TEST(BestFirst, AnytimeCallbackStreamsImprovingIncumbents) {
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(2);
  cfg.makespanClock = true;
  const auto p = plant::buildPlant(cfg);
  engine::Options opts;
  engine::BestFirst bf(p->sys, opts, p->makespan);
  std::vector<int64_t> seen;
  bf.onIncumbent([&](int64_t cost, const engine::SymbolicTrace& trace) {
    seen.push_back(cost);
    EXPECT_FALSE(trace.steps.empty());
  });
  const auto res = bf.run(p->goal);
  ASSERT_TRUE(res.reachable);
  ASSERT_TRUE(res.optimal);
  ASSERT_FALSE(seen.empty());
  for (size_t i = 1; i < seen.size(); ++i) EXPECT_LT(seen[i], seen[i - 1]);
  EXPECT_EQ(seen.back(), res.cost);
  EXPECT_EQ(seen, res.stats.incumbentCosts);
}

TEST(BestFirst, InitialIncumbentPrunesOnlyStrictlyWorseSchedules) {
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(1);
  cfg.makespanClock = true;
  const auto p = plant::buildPlant(cfg);
  engine::Options opts;
  engine::BestFirst baseline(p->sys, opts, p->makespan);
  const auto free = baseline.run(p->goal);
  ASSERT_TRUE(free.reachable && free.optimal);

  // Bootstrapping with the optimum itself: no strictly cheaper schedule
  // exists, so the run proves the bound optimal without finding one.
  engine::BestFirst bounded(p->sys, opts, p->makespan);
  bounded.setInitialIncumbent(free.cost);
  const auto res = bounded.run(p->goal);
  EXPECT_FALSE(res.reachable);
  EXPECT_TRUE(res.optimal);

  // Bootstrapping one above: the optimum is strictly cheaper and must
  // be found.
  engine::BestFirst above(p->sys, opts, p->makespan);
  above.setInitialIncumbent(free.cost + 1);
  const auto res2 = above.run(p->goal);
  ASSERT_TRUE(res2.reachable);
  EXPECT_EQ(res2.cost, free.cost);
}

TEST(BestFirst, SoftGuidePenaltyShiftsCostByWeight) {
  // A 1-batch guided schedule pours on track 1 (load balancing pins
  // it), so a "Pour2" penalty costs nothing, while a "Pour" penalty
  // matches the unavoidable Pour1 and must surface as
  // cost = makespan + weight — penalties price transitions, they never
  // forbid them.
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(1);
  cfg.makespanClock = true;
  const auto p = plant::buildPlant(cfg);

  engine::Options plain;
  engine::BestFirst base(p->sys, plain, p->makespan);
  const auto free = base.run(p->goal);
  ASSERT_TRUE(free.reachable && free.optimal);

  engine::Options avoidable;
  avoidable.softGuides.push_back({"Pour2", 50});
  engine::BestFirst bf1(p->sys, avoidable, p->makespan);
  const auto res1 = bf1.run(p->goal);
  ASSERT_TRUE(res1.reachable && res1.optimal);
  EXPECT_EQ(res1.cost, free.cost) << "avoidable penalty was paid";

  engine::Options unavoidable;
  unavoidable.softGuides.push_back({"Pour", 50});  // matches Pour1+Pour2
  engine::BestFirst bf2(p->sys, unavoidable, p->makespan);
  const auto res2 = bf2.run(p->goal);
  ASSERT_TRUE(res2.reachable && res2.optimal);
  EXPECT_EQ(res2.cost, free.cost + 50);
}

TEST(BestFirst, UnreachableGoalIsProvenViaDeadEndPruning) {
  // The target location has no incoming edges: the remaining-time table
  // reports the sentinel everywhere, the root is pruned as a dead end,
  // and the run proves unreachability without expanding anything —
  // the heuristic doubling as a relevance filter.
  ta::System sys;
  const ta::ClockId g = sys.addClock("g");
  const ta::ProcId p = sys.addAutomaton("A");
  auto& a = sys.automaton(p);
  const ta::LocId la = a.addLocation("a");
  const ta::LocId lb = a.addLocation("b");
  const ta::LocId island = a.addLocation("island");
  a.setInitial(la);
  sys.edge(p, la, lb);
  sys.finalize();
  engine::Goal goal;
  goal.locations = {{p, island}};
  engine::Options opts;
  engine::BestFirst bf(sys, opts, g);
  const auto res = bf.run(goal);
  EXPECT_FALSE(res.reachable);
  EXPECT_TRUE(res.optimal);
  EXPECT_EQ(res.cost, -1);
  EXPECT_EQ(res.stats.statesExplored, 0u);
}

}  // namespace
