// Seeded random timed-automata network generator, shared by the
// engine differential test (all configurations must agree on it) and
// the frontend round-trip test (print -> parse -> print must be a
// fixpoint and preserve the verdict).
#pragma once

#include <memory>
#include <random>
#include <vector>

#include "engine/reachability.hpp"
#include "ta/system.hpp"

namespace engine {

struct RandomModel {
  std::unique_ptr<ta::System> sys;
  std::vector<ta::ProcId> procs;
  Goal goal;

  /// A random network: 2 automata, 3-4 locations each (possibly urgent
  /// or committed), one clock per automaton, two shared variables, a
  /// binary and a broadcast channel, random guards/invariants/resets/
  /// assignments with small constants.
  explicit RandomModel(uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> small(0, 4);
    std::uniform_int_distribution<int> coin(0, 1);
    std::uniform_int_distribution<int> d8(0, 7);

    sys = std::make_unique<ta::System>();
    const ta::VarId v = sys->addVar("v", 0);
    const ta::VarId w = sys->addVar("w", 0);
    const ta::ChanId chan = sys->addChannel("c");
    const ta::ChanId bcast = sys->addChannel("b", ta::ChanKind::kBroadcast);
    std::vector<ta::ClockId> clocks;
    std::vector<std::vector<ta::LocId>> locs;

    for (int a = 0; a < 2; ++a) {
      clocks.push_back(sys->addClock("x" + std::to_string(a)));
      const ta::ProcId p = sys->addAutomaton("P" + std::to_string(a));
      procs.push_back(p);
      auto& aut = sys->automaton(p);
      std::vector<ta::LocId> ls;
      const int nLocs = 3 + coin(rng);
      for (int l = 0; l < nLocs; ++l) {
        // The initial location stays plain; later ones are occasionally
        // urgent or (rarer) committed.
        const bool urgent = l > 0 && d8(rng) == 0;
        const bool committed = l > 0 && !urgent && d8(rng) == 1;
        ls.push_back(
            aut.addLocation("l" + std::to_string(l), urgent, committed));
        if (coin(rng) != 0) {
          aut.addInvariant(ls.back(), ta::ccLe(clocks[static_cast<size_t>(a)],
                                               small(rng) + 1));
        }
      }
      locs.push_back(ls);
      // 4-5 random edges.
      const int nEdges = 4 + coin(rng);
      std::uniform_int_distribution<int> pick(0,
                                              static_cast<int>(ls.size()) - 1);
      for (int e = 0; e < nEdges; ++e) {
        auto eb = sys->edge(p, ls[static_cast<size_t>(pick(rng))],
                            ls[static_cast<size_t>(pick(rng))]);
        // Channel role first: broadcast receivers must not carry clock
        // guards (receiver sets are computed from discrete state only).
        bool broadcastReceive = false;
        if (e < 2 && coin(rng) != 0) {
          if (coin(rng) != 0) {
            if (a == 0) {
              eb.send(chan);
            } else {
              eb.receive(chan);
            }
          } else if (a == 0) {
            eb.send(bcast);
          } else {
            eb.receive(bcast);
            broadcastReceive = true;
          }
        }
        if (!broadcastReceive && coin(rng) != 0) {
          // Mix strict and weak bounds: extrapolation strictness
          // handling (the Extra+_LU "(-U, <)" entries) must not change
          // verdicts.
          const ta::ClockId ck = clocks[static_cast<size_t>(a)];
          switch (d8(rng) & 3) {
            case 0: eb.when(ta::ccGe(ck, small(rng))); break;
            case 1: eb.when(ta::ccGt(ck, small(rng))); break;
            case 2: eb.when(ta::ccLe(ck, small(rng) + 1)); break;
            default: eb.when(ta::ccLt(ck, small(rng) + 2)); break;
          }
        }
        if (coin(rng) != 0) {
          // Occasionally reset to a nonzero value: the LU analysis must
          // floor the destination bounds at the reset value.
          const dbm::value_t rv = d8(rng) == 0 ? small(rng) : 0;
          eb.reset(clocks[static_cast<size_t>(a)], rv);
        }
        if (coin(rng) != 0) {
          eb.guard(sys->rd(v) < 3).assign(v, sys->rd(v) + 1);
        }
        // Second variable: richer assignment forms, kept bounded so the
        // discrete state space stays finite.
        switch (d8(rng)) {
          case 0: eb.guard(sys->rd(w) < 3).assign(w, sys->rd(w) + 1); break;
          case 1: eb.assign(w, 0); break;
          case 2: eb.guard(sys->rd(w) > 0).assign(w, sys->rd(w) - 1); break;
          case 3: eb.assign(w, sys->rd(v)); break;
          default: break;
        }
      }
    }
    sys->finalize();
    // Goal: both automata in their last locations.
    goal.locations = {{procs[0], locs[0].back()}, {procs[1], locs[1].back()}};
  }
};

}  // namespace engine
