// Broadcast-channel semantics: one sender, all enabled receivers join,
// disabled receivers do not block.
#include <gtest/gtest.h>

#include "engine/reachability.hpp"
#include "ta/system.hpp"

namespace engine {
namespace {

struct Broadcast {
  ta::System sys;
  ta::ProcId sender;
  std::vector<ta::ProcId> receivers;
  ta::LocId s1 = -1;
  std::vector<ta::LocId> heard;
  ta::VarId enabledMask;

  explicit Broadcast(int nReceivers) {
    enabledMask = sys.addVar("mask", (1 << nReceivers) - 1);
    const ta::ChanId c = sys.addChannel("all", ta::ChanKind::kBroadcast);
    sender = sys.addAutomaton("S");
    auto& s = sys.automaton(sender);
    const ta::LocId s0 = s.addLocation("s0");
    s1 = s.addLocation("s1");
    sys.edge(sender, s0, s1).send(c);
    for (int i = 0; i < nReceivers; ++i) {
      const ta::ProcId p = sys.addAutomaton("R" + std::to_string(i));
      receivers.push_back(p);
      auto& r = sys.automaton(p);
      const ta::LocId r0 = r.addLocation("r0");
      heard.push_back(r.addLocation("heard"));
      sys.edge(p, r0, heard.back())
          .receive(c)
          .guard((sys.rd(enabledMask) / sys.lit(1 << i)) % sys.lit(2) == 1);
    }
    sys.finalize();
  }
};

TEST(Broadcast, AllEnabledReceiversJoin) {
  Broadcast m(3);
  Goal g;
  g.locations = {{m.sender, m.s1},
                 {m.receivers[0], m.heard[0]},
                 {m.receivers[1], m.heard[1]},
                 {m.receivers[2], m.heard[2]}};
  Reachability checker(m.sys, Options{});
  const Result res = checker.run(g);
  ASSERT_TRUE(res.reachable);
  // One atomic transition with 4 participants.
  ASSERT_EQ(res.trace.steps.size(), 2u);
  EXPECT_EQ(res.trace.steps[1].via.parts.size(), 4u);
}

TEST(Broadcast, DisabledReceiverDoesNotBlock) {
  Broadcast m(3);
  // Disable receiver 1: the send still fires, receivers 0 and 2 join.
  m.sys.setVarInit(m.enabledMask, 0b101);
  // setVarInit after finalize is fine — initialVars() is read at
  // Reachability construction time.
  Goal g;
  g.locations = {{m.sender, m.s1},
                 {m.receivers[0], m.heard[0]},
                 {m.receivers[2], m.heard[2]}};
  Reachability checker(m.sys, Options{});
  const Result res = checker.run(g);
  ASSERT_TRUE(res.reachable);
  EXPECT_EQ(res.trace.steps[1].via.parts.size(), 3u);
  // And receiver 1 stayed put.
  EXPECT_NE(res.trace.steps[1]
                .state.d.locs[static_cast<size_t>(m.receivers[1])],
            m.heard[1]);
}

TEST(Broadcast, SenderAloneWhenNobodyEnabled) {
  Broadcast m(2);
  m.sys.setVarInit(m.enabledMask, 0);
  Goal g;
  g.locations = {{m.sender, m.s1}};
  Reachability checker(m.sys, Options{});
  const Result res = checker.run(g);
  ASSERT_TRUE(res.reachable) << "broadcast sends never block";
  EXPECT_EQ(res.trace.steps[1].via.parts.size(), 1u);
}

}  // namespace
}  // namespace engine
