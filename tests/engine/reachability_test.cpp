// Engine tests on small hand-built models with known answers.
#include <gtest/gtest.h>

#include "engine/reachability.hpp"
#include "engine/trace.hpp"
#include "ta/system.hpp"

namespace engine {
namespace {

using ta::ccGe;
using ta::ccLe;

/// One automaton, one clock: A --(x>=3)--> B with inv(A): x<=5.
struct TimedHop {
  ta::System sys;
  ta::ProcId p;
  ta::LocId a, b;

  TimedHop() {
    const ta::ClockId x = sys.addClock("x");
    p = sys.addAutomaton("hop");
    auto& aut = sys.automaton(p);
    a = aut.addLocation("A");
    b = aut.addLocation("B");
    aut.setInvariant(a, {ccLe(x, 5)});
    aut.setInitial(a);
    sys.edge(p, a, b).when(ccGe(x, 3)).label("go");
    sys.finalize();
  }
};

TEST(Reachability, TimedHopReachesTarget) {
  TimedHop m;
  Reachability checker(m.sys, Options{});
  const Result res = checker.run(Goal{{{m.p, m.b}}, ta::kNoExpr, {}});
  EXPECT_TRUE(res.reachable);
  ASSERT_EQ(res.trace.steps.size(), 2u);
}

TEST(Reachability, TimedHopMinimalDelayIsThree) {
  TimedHop m;
  Reachability checker(m.sys, Options{});
  const Result res = checker.run(Goal{{{m.p, m.b}}, ta::kNoExpr, {}});
  ASSERT_TRUE(res.reachable);
  std::string err;
  const auto ct = concretize(m.sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;
  EXPECT_EQ(ct->steps.back().delay, 3);
  EXPECT_EQ(ct->makespan(), 3);
  EXPECT_TRUE(validate(m.sys, *ct, &err)) << err;
}

TEST(Reachability, GoalWithClockConstraint) {
  TimedHop m;
  Reachability checker(m.sys, Options{});
  // B with x <= 5 is reachable (invariant held until the jump)...
  Goal ok{{{m.p, m.b}}, ta::kNoExpr, {ccLe(1, 5)}};
  EXPECT_TRUE(checker.run(ok).reachable);
  // ...but B with x <= 2 is not: the guard needs x >= 3.
  Reachability checker2(m.sys, Options{});
  Goal bad{{{m.p, m.b}}, ta::kNoExpr, {ccLe(1, 2)}};
  const Result res = checker2.run(bad);
  EXPECT_FALSE(res.reachable);
  EXPECT_TRUE(res.exhausted);
}

TEST(Reachability, InvariantBlocksLateGuard) {
  // A --(x>=7)--> B with inv(A): x<=5 is unreachable.
  ta::System sys;
  const ta::ClockId x = sys.addClock("x");
  const ta::ProcId p = sys.addAutomaton("stuck");
  auto& aut = sys.automaton(p);
  const ta::LocId a = aut.addLocation("A");
  const ta::LocId b = aut.addLocation("B");
  aut.setInvariant(a, {ccLe(x, 5)});
  sys.edge(p, a, b).when(ccGe(x, 7));
  sys.finalize();
  Reachability checker(sys, Options{});
  const Result res = checker.run(Goal{{{p, b}}, ta::kNoExpr, {}});
  EXPECT_FALSE(res.reachable);
  EXPECT_TRUE(res.exhausted);
}

/// Two automata synchronizing on a channel, exchanging data through a
/// shared variable.
struct SyncPair {
  ta::System sys;
  ta::ProcId sender, receiver;
  ta::LocId s0, s1, r0, r1;
  ta::VarId v;

  SyncPair() {
    v = sys.addVar("v", 0);
    const ta::ChanId c = sys.addChannel("msg");
    sender = sys.addAutomaton("sender");
    auto& sa = sys.automaton(sender);
    s0 = sa.addLocation("s0");
    s1 = sa.addLocation("s1");
    receiver = sys.addAutomaton("receiver");
    auto& ra = sys.automaton(receiver);
    r0 = ra.addLocation("r0");
    r1 = ra.addLocation("r1");
    // Sender writes v := 42 as part of the synchronization.
    sys.edge(sender, s0, s1).send(c).assign(v, 42);
    sys.edge(receiver, r0, r1).receive(c);
    sys.finalize();
  }
};

TEST(Reachability, BinarySyncFiresJointly) {
  SyncPair m;
  Reachability checker(m.sys, Options{});
  const Result res = checker.run(
      Goal{{{m.sender, m.s1}, {m.receiver, m.r1}}, ta::kNoExpr, {}});
  ASSERT_TRUE(res.reachable);
  // The sync is one transition: initial + 1 step.
  ASSERT_EQ(res.trace.steps.size(), 2u);
  EXPECT_EQ(res.trace.steps[1].via.parts.size(), 2u);
  // And the sender's assignment landed.
  EXPECT_EQ(res.trace.steps[1]
                .state.d.vars[static_cast<size_t>(m.v)],
            42);
}

TEST(Reachability, ReceiverGuardEvaluatesOnPreState) {
  // A receiver guarded on v == 42 cannot take part in the very sync
  // that sets v := 42: guards evaluate against the pre-state (UPPAAL).
  ta::System sys;
  const ta::VarId v = sys.addVar("v", 0);
  const ta::ChanId c = sys.addChannel("msg");
  const ta::ProcId s = sys.addAutomaton("S");
  auto& sa = sys.automaton(s);
  const ta::LocId s0 = sa.addLocation("s0");
  const ta::LocId s1 = sa.addLocation("s1");
  const ta::ProcId r = sys.addAutomaton("R");
  auto& ra = sys.automaton(r);
  const ta::LocId r0 = ra.addLocation("r0");
  const ta::LocId r1 = ra.addLocation("r1");
  sys.edge(s, s0, s1).send(c).assign(v, 42);
  sys.edge(r, r0, r1).receive(c).guard(sys.rd(v) == 42);
  sys.finalize();
  Reachability checker(sys, Options{});
  const Result res =
      checker.run(Goal{{{s, s1}, {r, r1}}, ta::kNoExpr, {}});
  EXPECT_FALSE(res.reachable) << "guards evaluate against the pre-state";
}

TEST(Reachability, SenderWithoutReceiverBlocks) {
  ta::System sys;
  const ta::ChanId c = sys.addChannel("lonely");
  const ta::ProcId p = sys.addAutomaton("p");
  auto& a = sys.automaton(p);
  const ta::LocId l0 = a.addLocation("l0");
  const ta::LocId l1 = a.addLocation("l1");
  sys.edge(p, l0, l1).send(c);
  sys.finalize();
  Reachability checker(sys, Options{});
  EXPECT_FALSE(checker.run(Goal{{{p, l1}}, ta::kNoExpr, {}}).reachable);
}

TEST(Reachability, VariablePredicateGoal) {
  ta::System sys;
  const ta::VarId n = sys.addVar("n", 0);
  const ta::ProcId p = sys.addAutomaton("counter");
  auto& a = sys.automaton(p);
  const ta::LocId l = a.addLocation("l");
  sys.edge(p, l, l).guard(sys.rd(n) < 5).assign(n, sys.rd(n) + 1);
  sys.finalize();
  Reachability checker(sys, Options{});
  const Result res =
      checker.run(Goal{{}, (sys.rd(n) == 5).ref(), {}});
  ASSERT_TRUE(res.reachable);
  EXPECT_EQ(res.trace.steps.size(), 6u);  // initial + 5 increments
}

TEST(Reachability, UnreachablePredicateExhaustsSpace) {
  ta::System sys;
  const ta::VarId n = sys.addVar("n", 0);
  const ta::ProcId p = sys.addAutomaton("counter");
  auto& a = sys.automaton(p);
  const ta::LocId l = a.addLocation("l");
  sys.edge(p, l, l).guard(sys.rd(n) < 5).assign(n, sys.rd(n) + 1);
  sys.finalize();
  Reachability checker(sys, Options{});
  const Result res = checker.run(Goal{{}, (sys.rd(n) == 9).ref(), {}});
  EXPECT_FALSE(res.reachable);
  EXPECT_TRUE(res.exhausted);
  EXPECT_EQ(res.stats.statesExplored, 6u);
}

TEST(Reachability, CommittedLocationHasPriority) {
  // P passes through a committed location and raises `flag` on the way
  // in; Q's move is enabled only once flag == 1, i.e. exactly while P
  // sits in the committed location. Committed priority must therefore
  // block Q until P has left: (P at pc, Q at q1) is unreachable.
  ta::System sys;
  const ta::VarId flag = sys.addVar("flag", 0);
  const ta::ProcId p = sys.addAutomaton("P");
  auto& pa = sys.automaton(p);
  const ta::LocId p0 = pa.addLocation("p0");
  const ta::LocId pc = pa.addLocation("pc", false, /*committed=*/true);
  const ta::LocId p1 = pa.addLocation("p1");
  sys.edge(p, p0, pc).assign(flag, 1);
  sys.edge(p, pc, p1);
  const ta::ProcId q = sys.addAutomaton("Q");
  auto& qa = sys.automaton(q);
  const ta::LocId q0 = qa.addLocation("q0");
  const ta::LocId q1 = qa.addLocation("q1");
  sys.edge(q, q0, q1).guard(sys.rd(flag) == 1);
  sys.finalize();
  Reachability checker(sys, Options{});
  const Result bad = checker.run(Goal{{{p, pc}, {q, q1}}, ta::kNoExpr, {}});
  EXPECT_FALSE(bad.reachable);
  // But (p1, q1) is fine once P has left the committed location.
  Reachability checker2(sys, Options{});
  EXPECT_TRUE(
      checker2.run(Goal{{{p, p1}, {q, q1}}, ta::kNoExpr, {}}).reachable);
}

TEST(Reachability, UrgentLocationStopsTime) {
  // A -> U(urgent) -> B with guard x >= 1 out of U: unreachable, since
  // no time may pass in U and x arrives there with value 0.
  ta::System sys;
  const ta::ClockId x = sys.addClock("x");
  const ta::ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const ta::LocId l0 = a.addLocation("A");
  const ta::LocId lu = a.addLocation("U", /*urgent=*/true);
  const ta::LocId l1 = a.addLocation("B");
  sys.edge(p, l0, lu).reset(x);
  sys.edge(p, lu, l1).when(ccGe(x, 1));
  sys.finalize();
  Reachability checker(sys, Options{});
  EXPECT_FALSE(checker.run(Goal{{{p, l1}}, ta::kNoExpr, {}}).reachable);
}

TEST(Reachability, InitialStateCanMatchGoal) {
  ta::System sys;
  const ta::ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const ta::LocId l0 = a.addLocation("A");
  (void)l0;
  sys.finalize();
  Reachability checker(sys, Options{});
  const Result res = checker.run(Goal{{{p, 0}}, ta::kNoExpr, {}});
  EXPECT_TRUE(res.reachable);
  EXPECT_EQ(res.trace.steps.size(), 1u);
}

}  // namespace
}  // namespace engine
