// Concurrency tests for the storage engine: many threads hammering one
// ShardedPassedStore (and through it the shared StateInterner), plus
// parallel-engine runs on the batch plant with interning on — the
// configurations the TSan stage replays to certify the lock-free
// interner reads.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/interner.hpp"
#include "engine/passed_store.hpp"
#include "engine/reachability.hpp"
#include "plant/plant.hpp"

namespace engine {
namespace {

DiscreteState ds(int32_t a, int32_t b) {
  DiscreteState d;
  d.locs = {static_cast<ta::LocId>(a % 7)};
  d.vars = {a, b};
  return d;
}

dbm::Dbm interval(int lo, int hi) {
  dbm::Dbm z = dbm::Dbm::unconstrained(2);
  EXPECT_TRUE(z.constrain(0, 1, dbm::boundWeak(-lo)));
  EXPECT_TRUE(z.constrain(1, 0, dbm::boundWeak(hi)));
  return z;
}

TEST(StoreParallel, OverlappingInsertsConvergeToOneZonePerState) {
  // Every thread inserts, for every discrete state, the interval chain
  // [0,1] ⊂ [0,2] ⊂ ... ⊂ [0,R] in a thread-dependent order. Inclusion
  // pruning plus the atomic covered+insert means each bucket must end
  // with exactly the largest interval, whatever the interleaving.
  const int kStates = 256;
  const int kRadii = 6;
  const unsigned nThreads = std::max(2u, std::thread::hardware_concurrency());
  StateInterner interner(true);
  Options opts;
  ShardedPassedStore store(4, opts, interner);
  std::atomic<size_t> accepted{0};

  std::vector<std::thread> pool;
  for (unsigned t = 0; t < nThreads; ++t) {
    pool.emplace_back([&, t] {
      size_t mine = 0;
      for (int k = 0; k < kStates; ++k) {
        for (int r = 0; r < kRadii; ++r) {
          // Rotate the radius order per thread and state so larger and
          // smaller zones race in both directions.
          const int radius = 1 + (r + static_cast<int>(t) + k) % kRadii;
          SymbolicState s{ds(k, k * 31), interval(0, radius)};
          const uint32_t id = store.testAndInsert(s);
          if (id != StateInterner::kNoId) {
            ++mine;
            EXPECT_EQ(interner.get(id), s.d);
          }
        }
      }
      accepted.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  for (std::thread& th : pool) th.join();

  // Dedup holds across threads: one arena entry per distinct state.
  EXPECT_EQ(interner.size(), static_cast<size_t>(kStates));
  // Each bucket converged to the maximal interval alone.
  EXPECT_EQ(store.states(), static_cast<size_t>(kStates));
  EXPECT_EQ(store.approxBytes(), store.bytes());
  for (int k = 0; k < kStates; ++k) {
    SymbolicState top{ds(k, k * 31), interval(0, kRadii)};
    // The maximal zone is already covered...
    EXPECT_EQ(store.testAndInsert(top), StateInterner::kNoId);
    // ...and anything strictly larger is not.
    SymbolicState bigger{ds(k, k * 31), interval(0, kRadii + 1)};
    EXPECT_NE(store.testAndInsert(bigger), StateInterner::kNoId);
  }
  // At least one insert per state succeeded; duplicates were filtered.
  EXPECT_GE(accepted.load(), static_cast<size_t>(kStates));
  EXPECT_LE(accepted.load(),
            static_cast<size_t>(kStates) * kRadii * nThreads);
}

TEST(StoreParallel, DisjointInsertsAllLand) {
  // Threads own disjoint discrete ranges: no filtering can occur, and
  // every inserted state must be present afterwards.
  const int kPerThread = 500;
  const unsigned nThreads = 4;
  StateInterner interner(true);
  Options opts;
  ShardedPassedStore store(2, opts, interner);

  std::vector<std::thread> pool;
  for (unsigned t = 0; t < nThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int k = 0; k < kPerThread; ++k) {
        const int key = static_cast<int>(t) * kPerThread + k;
        SymbolicState s{ds(key, -key), interval(0, 1 + key % 4)};
        EXPECT_NE(store.testAndInsert(s), StateInterner::kNoId);
      }
    });
  }
  for (std::thread& th : pool) th.join();

  const size_t total = static_cast<size_t>(kPerThread) * nThreads;
  EXPECT_EQ(store.states(), total);
  EXPECT_EQ(interner.size(), total);
  for (unsigned t = 0; t < nThreads; ++t) {
    const int key = static_cast<int>(t) * kPerThread;  // spot-check one each
    SymbolicState s{ds(key, -key), interval(0, 1 + key % 4)};
    EXPECT_EQ(store.testAndInsert(s), StateInterner::kNoId);
  }
}

TEST(StoreParallel, SharedInternerAcrossStores) {
  // The portfolio shape: per-worker PassedStores over one interner.
  const unsigned nThreads = 4;
  StateInterner interner(true);
  Options opts;
  std::vector<std::thread> pool;
  std::vector<size_t> stored(nThreads, 0);
  for (unsigned t = 0; t < nThreads; ++t) {
    pool.emplace_back([&, t] {
      PassedStore mine(opts, interner);
      for (int k = 0; k < 300; ++k) {
        const DiscreteState d = ds(k, 3 * k);
        if (!mine.covered(d, interval(0, 2))) {
          mine.insert(interner.intern(d), interval(0, 2));
        }
      }
      stored[t] = mine.states();
    });
  }
  for (std::thread& th : pool) th.join();
  for (unsigned t = 0; t < nThreads; ++t) EXPECT_EQ(stored[t], 300u);
  // All workers interned the same 300 values: deduped to one arena copy.
  EXPECT_EQ(interner.size(), 300u);
  EXPECT_GE(interner.hits(), 300u * (nThreads - 1));
}

TEST(StoreParallel, ParallelEnginesMatchSequentialOnPlant) {
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(2);

  Options seq;
  seq.maxSeconds = 60.0;
  const auto ps = plant::buildPlant(cfg);
  Reachability sref(ps->sys, seq);
  const Result rs = sref.run(ps->goal);
  ASSERT_TRUE(rs.reachable);

  for (const bool merge : {false, true}) {
    // Level-synchronous parallel BFS: verdict and explored count match
    // the sequential engine by construction.
    Options pbfs = seq;
    pbfs.threads = 4;
    pbfs.shardBits = 3;
    pbfs.mergeZones = merge;
    const auto p1 = plant::buildPlant(cfg);
    Reachability a(p1->sys, pbfs);
    const Result ra = a.run(p1->goal);
    EXPECT_EQ(ra.reachable, rs.reachable) << "merge=" << merge;
    EXPECT_GT(ra.stats.statesInterned, 0u);

    // Work-stealing parallel DFS: verdict must match.
    Options pdfs = seq;
    pdfs.order = SearchOrder::kDfs;
    pdfs.threads = 4;
    pdfs.shardBits = 3;
    pdfs.mergeZones = merge;
    const auto p2 = plant::buildPlant(cfg);
    Reachability b(p2->sys, pdfs);
    const Result rb = b.run(p2->goal);
    EXPECT_EQ(rb.reachable, rs.reachable) << "merge=" << merge;
  }
}

}  // namespace
}  // namespace engine
