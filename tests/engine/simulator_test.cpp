#include "engine/simulator.hpp"

#include <gtest/gtest.h>

#include "plant/plant.hpp"
#include "ta/system.hpp"

namespace engine {
namespace {

using ta::ccGe;
using ta::ccLe;

/// worker(warmup -> done, 3 <= x <= 5, signal!) || listener.
struct Handshake {
  ta::System sys;
  ta::ProcId worker, listener;

  Handshake() {
    const ta::ClockId x = sys.addClock("x");
    const ta::VarId n = sys.addVar("n", 0);
    const ta::ChanId sig = sys.addChannel("sig");
    worker = sys.addAutomaton("W");
    auto& w = sys.automaton(worker);
    const ta::LocId warm = w.addLocation("warm");
    const ta::LocId done = w.addLocation("done");
    w.setInvariant(warm, {ccLe(x, 5)});
    sys.edge(worker, warm, done).when(ccGe(x, 3)).send(sig).label("go");
    listener = sys.addAutomaton("L");
    auto& l = sys.automaton(listener);
    const ta::LocId idle = l.addLocation("idle");
    const ta::LocId got = l.addLocation("got");
    sys.edge(listener, idle, got).receive(sig).assign(n, sys.rd(n) + 1);
    sys.finalize();
  }
};

TEST(Simulator, InitialStateAndInspection) {
  Handshake m;
  Simulator sim(m.sys);
  EXPECT_EQ(sim.time(), 0);
  EXPECT_EQ(sim.clocks()[1], 0);
  EXPECT_EQ(sim.variables()[0], 0);
  EXPECT_NE(sim.describe().find("W.warm"), std::string::npos);
  EXPECT_NE(sim.describe().find("L.idle"), std::string::npos);
}

TEST(Simulator, EnabledReportsDelayWindow) {
  Handshake m;
  Simulator sim(m.sys);
  const auto opts = sim.enabled();
  ASSERT_EQ(opts.size(), 1u);
  EXPECT_EQ(opts[0].earliestDelay, 3);  // guard x >= 3
  ASSERT_TRUE(opts[0].latestDelay.has_value());
  EXPECT_EQ(*opts[0].latestDelay, 5);  // invariant x <= 5
  EXPECT_EQ(opts[0].via.parts.size(), 2u);
}

TEST(Simulator, MaxDelayFromInvariant) {
  Handshake m;
  Simulator sim(m.sys);
  ASSERT_TRUE(sim.maxDelay().has_value());
  EXPECT_EQ(*sim.maxDelay(), 5);
  ASSERT_TRUE(sim.delay(2));
  EXPECT_EQ(*sim.maxDelay(), 3);
}

TEST(Simulator, DelayBlockedByInvariant) {
  Handshake m;
  Simulator sim(m.sys);
  EXPECT_FALSE(sim.delay(6));
  EXPECT_EQ(sim.time(), 0);
  EXPECT_TRUE(sim.delay(5));
  EXPECT_EQ(sim.time(), 5);
}

TEST(Simulator, FireAtEarliestDelay) {
  Handshake m;
  Simulator sim(m.sys);
  ASSERT_TRUE(sim.fire(0));
  EXPECT_EQ(sim.time(), 3);
  EXPECT_EQ(sim.variables()[0], 1) << "listener's assignment applied";
  EXPECT_NE(sim.describe().find("W.done"), std::string::npos);
  EXPECT_TRUE(sim.enabled().empty());
}

TEST(Simulator, FireByLabel) {
  Handshake m;
  Simulator sim(m.sys);
  EXPECT_FALSE(sim.fireLabeled("nonsense"));
  EXPECT_TRUE(sim.fireLabeled("W.go/L.sig?"));
  EXPECT_NE(sim.describe().find("L.got"), std::string::npos);
}

TEST(Simulator, UndoAndReset) {
  Handshake m;
  Simulator sim(m.sys);
  ASSERT_TRUE(sim.delay(4));
  ASSERT_TRUE(sim.fire(0));
  EXPECT_EQ(sim.time(), 4);
  EXPECT_TRUE(sim.undo());
  EXPECT_EQ(sim.time(), 4);
  EXPECT_NE(sim.describe().find("W.warm"), std::string::npos);
  sim.reset();
  EXPECT_EQ(sim.time(), 0);
  EXPECT_EQ(sim.steps(), 0u);
  EXPECT_FALSE(sim.undo());
}

TEST(Simulator, GuardBecomesInfeasibleAfterLateDelay) {
  // Delaying to x == 5 leaves window [0, 0]; past that (impossible due
  // to the invariant) nothing. After firing at 5, nothing is enabled.
  Handshake m;
  Simulator sim(m.sys);
  ASSERT_TRUE(sim.delay(5));
  const auto opts = sim.enabled();
  ASSERT_EQ(opts.size(), 1u);
  EXPECT_EQ(opts[0].earliestDelay, 0);
  EXPECT_EQ(*opts[0].latestDelay, 0);
}

TEST(Simulator, UrgentLocationForbidsDelay) {
  ta::System sys;
  const ta::ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const ta::LocId u = a.addLocation("u", /*urgent=*/true);
  const ta::LocId l = a.addLocation("l");
  sys.edge(p, u, l);
  sys.finalize();
  Simulator sim(sys);
  EXPECT_EQ(*sim.maxDelay(), 0);
  EXPECT_FALSE(sim.delay(1));
  EXPECT_TRUE(sim.fire(0));
}

TEST(Simulator, WalkThroughPlantPourAndMove) {
  // Use the simulator to poke the real plant model.
  plant::PlantConfig cfg;
  cfg.order = {plant::qualityA()};
  const auto plantModel = plant::buildPlant(cfg);
  Simulator sim(plantModel->sys);
  bool poured = false;
  for (const EnabledTransition& et : sim.enabled()) {
    if (et.label.find("Pour") != std::string::npos) {
      ASSERT_TRUE(sim.fireLabeled(et.label));
      poured = true;
      break;
    }
  }
  EXPECT_TRUE(poured);
  // After pouring, a track move must be among the enabled transitions.
  bool canMove = false;
  for (const EnabledTransition& et : sim.enabled()) {
    canMove = canMove || et.label.find("Track") != std::string::npos;
  }
  EXPECT_TRUE(canMove);
}

}  // namespace
}  // namespace engine
