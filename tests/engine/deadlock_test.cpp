// Deadlock-goal tests: states with no discrete successor, including the
// batch plant's caster timelocks.
#include <gtest/gtest.h>

#include "engine/reachability.hpp"
#include "plant/plant.hpp"
#include "ta/system.hpp"

namespace engine {
namespace {

using ta::ccGe;
using ta::ccLe;

TEST(Deadlock, TrivialSinkFound) {
  ta::System sys;
  const ta::ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const ta::LocId l0 = a.addLocation("l0");
  const ta::LocId sink = a.addLocation("sink");
  sys.edge(p, l0, sink);
  sys.finalize();
  Goal g;
  g.deadlock = true;
  for (const SearchOrder order : {SearchOrder::kBfs, SearchOrder::kDfs}) {
    Options o;
    o.order = order;
    Reachability checker(sys, o);
    const Result res = checker.run(g);
    ASSERT_TRUE(res.reachable);
    EXPECT_EQ(res.trace.steps.back().state.d.locs[0], sink);
  }
}

TEST(Deadlock, LivelockIsNotDeadlock) {
  // A self-loop always has a successor: no deadlock anywhere.
  ta::System sys;
  const ta::ProcId p = sys.addAutomaton("P");
  (void)sys.automaton(p).addLocation("l");
  sys.edge(p, 0, 0);
  sys.finalize();
  Goal g;
  g.deadlock = true;
  Reachability checker(sys, Options{});
  const Result res = checker.run(g);
  EXPECT_FALSE(res.reachable);
  EXPECT_TRUE(res.exhausted);
}

TEST(Deadlock, TimelockFound) {
  // Invariant x <= 3 with the only exit requiring x >= 5: at x == 3
  // time stops and nothing can fire.
  ta::System sys;
  const ta::ClockId x = sys.addClock("x");
  const ta::ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const ta::LocId l0 = a.addLocation("l0");
  const ta::LocId l1 = a.addLocation("l1");
  a.setInvariant(l0, {ccLe(x, 3)});
  sys.edge(p, l0, l1).when(ccGe(x, 5));
  sys.finalize();
  Goal g;
  g.deadlock = true;
  Reachability checker(sys, Options{});
  const Result res = checker.run(g);
  EXPECT_TRUE(res.reachable);
}

TEST(Deadlock, ConditionsStillApply) {
  // Two sinks distinguished by a variable; the deadlock goal with a
  // predicate must pick the right one.
  ta::System sys;
  const ta::VarId v = sys.addVar("v", 0);
  const ta::ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const ta::LocId l0 = a.addLocation("l0");
  const ta::LocId s1 = a.addLocation("s1");
  const ta::LocId s2 = a.addLocation("s2");
  sys.edge(p, l0, s1).assign(v, 1);
  sys.edge(p, l0, s2).assign(v, 2);
  sys.finalize();
  Goal g;
  g.deadlock = true;
  g.predicate = (sys.rd(v) == 2).ref();
  Reachability checker(sys, Options{});
  const Result res = checker.run(g);
  ASSERT_TRUE(res.reachable);
  EXPECT_EQ(res.trace.steps.back().state.d.locs[0], s2);
}

TEST(Deadlock, PlantCasterTimelockReachableUnguided) {
  // In the unguided 1-batch plant the batch can dawdle past its recipe
  // deadlines: the search must find a deadlocked (timelocked) state —
  // these are exactly the states the guides steer around.
  plant::PlantConfig cfg;
  cfg.order = {plant::qualityA()};
  cfg.guides = plant::GuideLevel::kNone;
  const auto p = plant::buildPlant(cfg);
  Goal g;
  g.deadlock = true;
  Options o;
  o.order = SearchOrder::kDfs;
  o.maxSeconds = 30.0;
  Reachability checker(p->sys, o);
  const Result res = checker.run(g);
  EXPECT_TRUE(res.reachable)
      << "the plant has deadlocks (e.g. missed recipe deadlines)";
}

TEST(Deadlock, CompletedPlantIsASinkState) {
  // The guided plant's all-done state has no successors: it shows up as
  // a (benign) deadlock matching the monitor's final location.
  plant::PlantConfig cfg;
  cfg.order = {plant::qualityA()};
  const auto p = plant::buildPlant(cfg);
  Goal g = p->goal;  // monitor at alldone
  g.deadlock = true;
  Options o;
  o.order = SearchOrder::kDfs;
  o.dfsReverse = true;
  o.maxSeconds = 60.0;
  Reachability checker(p->sys, o);
  const Result res = checker.run(g);
  EXPECT_TRUE(res.reachable);
}

}  // namespace
}  // namespace engine
