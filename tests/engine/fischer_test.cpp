// Fischer's timed mutual-exclusion protocol as an engine correctness
// benchmark: the safety property holds exactly when K >= D, across
// process counts and search configurations.
#include <gtest/gtest.h>

#include <vector>

#include "engine/reachability.hpp"
#include "ta/system.hpp"

namespace engine {
namespace {

struct Fischer {
  ta::System sys;
  std::vector<ta::ProcId> procs;
  std::vector<ta::LocId> critical;

  Fischer(int n, int d, int k) {
    const ta::VarId id = sys.addVar("id", 0);
    for (int i = 1; i <= n; ++i) {
      const ta::ClockId x = sys.addClock("x" + std::to_string(i));
      const ta::ProcId p = sys.addAutomaton("P" + std::to_string(i));
      procs.push_back(p);
      auto& a = sys.automaton(p);
      const ta::LocId idle = a.addLocation("idle");
      const ta::LocId trying = a.addLocation("trying");
      const ta::LocId waiting = a.addLocation("waiting");
      const ta::LocId crit = a.addLocation("critical");
      critical.push_back(crit);
      a.setInvariant(trying, {ta::ccLe(x, d)});
      sys.edge(p, idle, trying).guard(sys.rd(id) == 0).reset(x);
      sys.edge(p, trying, waiting)
          .when(ta::ccLe(x, d))
          .reset(x)
          .assign(id, i);
      sys.edge(p, waiting, crit)
          .when(ta::ccGt(x, k))
          .guard(sys.rd(id) == i);
      sys.edge(p, waiting, idle).guard(sys.rd(id) != i);
      sys.edge(p, crit, idle).assign(id, 0);
    }
    sys.finalize();
  }

  [[nodiscard]] bool violationReachable(Options opts) {
    for (size_t i = 0; i < procs.size(); ++i) {
      for (size_t j = i + 1; j < procs.size(); ++j) {
        Goal bad;
        bad.locations = {{procs[i], critical[i]}, {procs[j], critical[j]}};
        Reachability checker(sys, opts);
        const Result res = checker.run(bad);
        if (res.reachable) return true;
        EXPECT_TRUE(res.exhausted);
      }
    }
    return false;
  }
};

struct FischerCase {
  int n, d, k;
};

class FischerSweep : public ::testing::TestWithParam<FischerCase> {};

TEST_P(FischerSweep, MutexHoldsIffKGreaterThanD) {
  const FischerCase c = GetParam();
  Fischer f(c.n, c.d, c.k);
  Options opts;
  opts.maxSeconds = 60.0;
  EXPECT_EQ(f.violationReachable(opts), c.k < c.d)
      << "n=" << c.n << " D=" << c.d << " K=" << c.k;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FischerSweep,
    ::testing::Values(FischerCase{2, 2, 3}, FischerCase{2, 2, 2},
                      FischerCase{3, 2, 3}, FischerCase{3, 3, 2}, FischerCase{3, 2, 1},
                      FischerCase{4, 1, 2}, FischerCase{4, 2, 2},
                      FischerCase{5, 2, 3}),
    [](const ::testing::TestParamInfo<FischerCase>& info) {
      return "n" + std::to_string(info.param.n) + "_d" +
             std::to_string(info.param.d) + "_k" +
             std::to_string(info.param.k);
    });

TEST(Fischer, AllSearchOrdersAgree) {
  for (const SearchOrder order :
       {SearchOrder::kBfs, SearchOrder::kDfs, SearchOrder::kRandomDfs}) {
    Fischer holds(3, 2, 3);
    Options o;
    o.order = order;
    o.maxSeconds = 60.0;
    EXPECT_FALSE(holds.violationReachable(o));
    Fischer broken(3, 3, 2);
    EXPECT_TRUE(broken.violationReachable(o));
  }
}

TEST(Fischer, CompactStoreAgrees) {
  Fischer holds(3, 2, 3);
  Options o;
  o.compactPassed = true;
  o.maxSeconds = 60.0;
  EXPECT_FALSE(holds.violationReachable(o));
}

TEST(Fischer, ViolationWitnessConcretizes) {
  Fischer broken(2, 3, 2);
  Goal bad;
  bad.locations = {{broken.procs[0], broken.critical[0]},
                   {broken.procs[1], broken.critical[1]}};
  Reachability checker(broken.sys, Options{});
  const Result res = checker.run(bad);
  ASSERT_TRUE(res.reachable);
}

}  // namespace
}  // namespace engine
