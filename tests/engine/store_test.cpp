// Unit tests for the storage engine: the hash-consing StateInterner,
// the flat open-addressing PassedStore (full and reduced-form zone
// layouts, symmetric subsumption pruning, convex-union merging) and the
// ShardedPassedStore wrapper, plus end-to-end equivalence of the
// interning/merging knobs on the batch plant.
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "engine/interner.hpp"
#include "engine/passed_store.hpp"
#include "engine/reachability.hpp"
#include "plant/plant.hpp"

namespace engine {
namespace {

DiscreteState ds(std::vector<ta::LocId> locs, std::vector<int32_t> vars) {
  DiscreteState d;
  d.locs = std::move(locs);
  d.vars = std::move(vars);
  return d;
}

/// The interval [lo, hi] on clock 1 (weak bounds, dimension 2).
dbm::Dbm interval(int lo, int hi) {
  dbm::Dbm z = dbm::Dbm::unconstrained(2);
  EXPECT_TRUE(z.constrain(0, 1, dbm::boundWeak(-lo)));
  EXPECT_TRUE(z.constrain(1, 0, dbm::boundWeak(hi)));
  return z;
}

TEST(Interner, DedupSharesOneEntry) {
  StateInterner in(true);
  const DiscreteState a = ds({0, 1}, {7});
  const uint32_t id1 = in.intern(a);
  const uint32_t id2 = in.intern(ds({0, 1}, {7}));
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(in.size(), 1u);
  EXPECT_EQ(in.hits(), 1u);
  EXPECT_EQ(in.get(id1), a);

  const uint32_t id3 = in.intern(ds({0, 2}, {7}));
  EXPECT_NE(id3, id1);
  EXPECT_EQ(in.size(), 2u);
  EXPECT_EQ(in.hashOf(id3), ds({0, 2}, {7}).hash());
}

TEST(Interner, AppendOnlyWithoutDedup) {
  StateInterner in(false);
  const uint32_t id1 = in.intern(ds({3}, {1}));
  const uint32_t id2 = in.intern(ds({3}, {1}));
  // Ids name insertion events: same value, distinct entries.
  EXPECT_NE(id1, id2);
  EXPECT_EQ(in.size(), 2u);
  EXPECT_EQ(in.hits(), 0u);
  EXPECT_EQ(in.get(id1), in.get(id2));
}

TEST(Interner, TableGrowthKeepsRoundTrips) {
  // Enough states to force several table rehashes and chunk
  // allocations in every shard.
  StateInterner in(true);
  std::vector<uint32_t> ids;
  const int n = 50000;
  ids.reserve(static_cast<size_t>(n));
  for (int k = 0; k < n; ++k) {
    ids.push_back(in.intern(ds({static_cast<ta::LocId>(k % 17)}, {k})));
  }
  EXPECT_EQ(in.size(), static_cast<size_t>(n));
  std::set<uint32_t> distinct(ids.begin(), ids.end());
  EXPECT_EQ(distinct.size(), static_cast<size_t>(n));
  for (int k = 0; k < n; k += 997) {
    EXPECT_EQ(in.get(ids[static_cast<size_t>(k)]).vars[0], k);
    // A re-intern of an existing value must return the original id.
    EXPECT_EQ(in.intern(ds({static_cast<ta::LocId>(k % 17)}, {k})),
              ids[static_cast<size_t>(k)]);
  }
}

class StoreTest : public ::testing::Test {
 protected:
  StateInterner interner_{true};
  Options opts_;
};

TEST_F(StoreTest, CoveredAnswersInclusion) {
  PassedStore store(opts_, interner_);
  const DiscreteState d = ds({0, 0}, {1});
  store.insert(interner_.intern(d), interval(0, 5));
  EXPECT_TRUE(store.covered(d, interval(1, 3)));
  EXPECT_TRUE(store.covered(d, interval(0, 5)));
  EXPECT_FALSE(store.covered(d, interval(0, 7)));
  EXPECT_FALSE(store.covered(ds({0, 1}, {1}), interval(1, 3)));
  EXPECT_EQ(store.states(), 1u);
  EXPECT_GT(store.lookups(), 0u);
  EXPECT_GT(store.probeSteps(), 0u);
  EXPECT_GT(store.bytes(), 0u);
}

TEST_F(StoreTest, InsertPrunesSubsumedZonesFullLayout) {
  PassedStore store(opts_, interner_);
  const uint32_t id = interner_.intern(ds({0}, {}));
  store.insert(id, interval(1, 3));
  store.insert(id, interval(5, 6));
  EXPECT_EQ(store.states(), 2u);
  const size_t bytesBefore = store.bytes();
  // Subsumes both stored zones: they must be pruned, not accumulated.
  store.insert(id, interval(0, 8));
  EXPECT_EQ(store.states(), 1u);
  EXPECT_LE(store.bytes(), bytesBefore);
  EXPECT_TRUE(store.covered(interner_.get(id), interval(1, 3)));
}

TEST_F(StoreTest, InsertPrunesSubsumedZonesCompactLayout) {
  // The reduced-form store must prune symmetrically too (a new zone
  // drops the stored zones it covers) — this was one-directional
  // before the flat-store rewrite.
  opts_.compactPassed = true;
  PassedStore store(opts_, interner_);
  const uint32_t id = interner_.intern(ds({0}, {}));
  store.insert(id, interval(1, 3));
  store.insert(id, interval(5, 6));
  EXPECT_EQ(store.states(), 2u);
  store.insert(id, interval(0, 8));
  EXPECT_EQ(store.states(), 1u);
  EXPECT_TRUE(store.covered(interner_.get(id), interval(5, 6)));
  EXPECT_FALSE(store.covered(interner_.get(id), interval(0, 9)));
}

TEST_F(StoreTest, MergesAdjacentZones) {
  opts_.mergeZones = true;
  PassedStore store(opts_, interner_);
  const uint32_t id = interner_.intern(ds({0}, {}));
  store.insert(id, interval(0, 2));
  store.insert(id, interval(2, 5));
  EXPECT_EQ(store.states(), 1u);
  EXPECT_EQ(store.merges(), 1u);
  // The merged zone covers the exact union.
  EXPECT_TRUE(store.covered(interner_.get(id), interval(0, 5)));
}

TEST_F(StoreTest, MergeChainsAcrossStoredZones) {
  opts_.mergeZones = true;
  PassedStore store(opts_, interner_);
  const uint32_t id = interner_.intern(ds({0}, {}));
  store.insert(id, interval(0, 2));
  store.insert(id, interval(4, 6));
  EXPECT_EQ(store.states(), 2u);  // disjoint: no merge possible
  // [2,4] bridges the gap; the merge loop must absorb both neighbours.
  store.insert(id, interval(2, 4));
  EXPECT_EQ(store.states(), 1u);
  EXPECT_EQ(store.merges(), 2u);
  EXPECT_TRUE(store.covered(interner_.get(id), interval(0, 6)));
}

TEST_F(StoreTest, MergeRefusesNonConvexUnion) {
  opts_.mergeZones = true;
  PassedStore store(opts_, interner_);
  const uint32_t id = interner_.intern(ds({0}, {}));
  store.insert(id, interval(0, 1));
  store.insert(id, interval(3, 5));
  EXPECT_EQ(store.states(), 2u);
  EXPECT_EQ(store.merges(), 0u);
  // The gap (1,3) must not be covered — merging is exact, never a
  // hull over-approximation.
  EXPECT_FALSE(store.covered(interner_.get(id), interval(1, 3)));
}

TEST_F(StoreTest, MergesInCompactLayout) {
  opts_.compactPassed = true;
  opts_.mergeZones = true;
  PassedStore store(opts_, interner_);
  const uint32_t id = interner_.intern(ds({0}, {}));
  store.insert(id, interval(0, 2));
  store.insert(id, interval(2, 5));
  EXPECT_EQ(store.states(), 1u);
  EXPECT_EQ(store.merges(), 1u);
  EXPECT_TRUE(store.covered(interner_.get(id), interval(0, 5)));
  EXPECT_FALSE(store.covered(interner_.get(id), interval(0, 6)));
}

TEST_F(StoreTest, ExactEqualityModeStoresDistinctZones) {
  opts_.inclusionChecking = false;
  PassedStore store(opts_, interner_);
  const uint32_t id = interner_.intern(ds({0}, {}));
  store.insert(id, interval(0, 5));
  EXPECT_TRUE(store.covered(interner_.get(id), interval(0, 5)));
  // Equality dedup: a strictly smaller zone is NOT covered.
  EXPECT_FALSE(store.covered(interner_.get(id), interval(1, 3)));
  store.insert(id, interval(1, 3));
  EXPECT_EQ(store.states(), 2u);
}

TEST_F(StoreTest, TableResizeStress) {
  PassedStore store(opts_, interner_);
  const int n = 5000;
  for (int k = 0; k < n; ++k) {
    const uint32_t id = interner_.intern(ds({0}, {k}));
    store.insert(id, interval(0, 1 + (k % 3)));
  }
  EXPECT_EQ(store.states(), static_cast<size_t>(n));
  EXPECT_EQ(store.entryCount(), static_cast<size_t>(n));
  for (int k = 0; k < n; k += 97) {
    EXPECT_TRUE(store.covered(ds({0}, {k}), interval(0, 1)));
  }
  EXPECT_FALSE(store.covered(ds({0}, {n + 1}), interval(0, 1)));
  // Mean probe length stays short at the 7/8 load cap.
  EXPECT_LT(store.probeSteps(),
            store.lookups() * 8 + static_cast<size_t>(n) * 8);
}

TEST_F(StoreTest, WorksWithoutInternerDedup) {
  // internStates off: ids name insertion events; the store's key
  // comparison goes through the interner by value, so dedup of the
  // buckets still works.
  StateInterner plain(false);
  PassedStore store(opts_, plain);
  const uint32_t id1 = plain.intern(ds({0}, {1}));
  store.insert(id1, interval(0, 5));
  const uint32_t id2 = plain.intern(ds({0}, {1}));
  EXPECT_NE(id1, id2);
  EXPECT_TRUE(store.covered(plain.get(id2), interval(1, 2)));
  store.insert(id2, interval(0, 9));
  // Same discrete value: one bucket, subsumption pruned the old zone.
  EXPECT_EQ(store.entryCount(), 1u);
  EXPECT_EQ(store.states(), 1u);
}

TEST(ShardedStore, TestAndInsertReturnsIdOnceAndCoverageAfter) {
  StateInterner interner(true);
  Options opts;
  ShardedPassedStore store(2, opts, interner);
  SymbolicState s{ds({0, 1}, {5}), interval(0, 5)};
  const uint32_t id = store.testAndInsert(s);
  ASSERT_NE(id, StateInterner::kNoId);
  EXPECT_EQ(interner.get(id), s.d);
  // Identical and included states are rejected.
  EXPECT_EQ(store.testAndInsert(s), StateInterner::kNoId);
  SymbolicState smaller{s.d, interval(1, 3)};
  EXPECT_EQ(store.testAndInsert(smaller), StateInterner::kNoId);
  SymbolicState larger{s.d, interval(0, 6)};
  EXPECT_NE(store.testAndInsert(larger), StateInterner::kNoId);
  EXPECT_EQ(store.states(), 1u);  // subsumption pruned the original
  EXPECT_GT(store.bytes(), 0u);
  EXPECT_EQ(store.approxBytes(), store.bytes());
}

// --- End-to-end equivalence of the storage knobs on the batch plant ----

Result runPlant(int batches, const Options& o) {
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(batches);
  const auto p = plant::buildPlant(cfg);
  Reachability checker(p->sys, o);
  return checker.run(p->goal);
}

TEST(StorePlant, InternOnOffIdenticalSearch) {
  Options on;
  on.order = SearchOrder::kDfs;
  on.dfsReverse = true;
  on.maxSeconds = 60.0;
  Options off = on;
  off.internStates = false;

  const Result a = runPlant(2, on);
  const Result b = runPlant(2, off);
  ASSERT_TRUE(a.reachable);
  ASSERT_TRUE(b.reachable);
  // Interning changes representation only: identical search.
  EXPECT_EQ(a.stats.statesExplored, b.stats.statesExplored);
  EXPECT_EQ(a.stats.statesStored, b.stats.statesStored);
  // With dedup the arena holds distinct discrete states and records
  // hits; append-only holds one entry per intern call.
  EXPECT_LE(a.stats.statesInterned, b.stats.statesInterned);
  EXPECT_GT(a.stats.internHits, 0u);
  EXPECT_EQ(b.stats.internHits, 0u);
  EXPECT_GT(a.stats.storeLookups, 0u);
  EXPECT_GT(a.stats.storeBytes, 0u);
}

TEST(StorePlant, MergingPreservesVerdictAndShrinksStore) {
  Options plainOpts;
  plainOpts.order = SearchOrder::kDfs;
  plainOpts.dfsReverse = true;
  plainOpts.maxSeconds = 60.0;
  Options mergeOpts = plainOpts;
  mergeOpts.mergeZones = true;

  const Result plain = runPlant(3, plainOpts);
  const Result merged = runPlant(3, mergeOpts);
  ASSERT_TRUE(plain.reachable);
  EXPECT_EQ(plain.reachable, merged.reachable);
  // Exact merging can only reduce what is stored.
  EXPECT_LE(merged.stats.statesStored, plain.stats.statesStored);
}

}  // namespace
}  // namespace engine
