// Nonzero initial clock valuations (ta::System::setClockInit) across
// the exploration engines — the mechanism replan/lift.cpp uses to
// resume a model mid-run. The key soundness properties:
//
//  * the initial zone is the singleton valuation, advanced by delay,
//    so guards measure time since the *original* start, not the splice;
//  * an initial valuation that violates an initial-location invariant
//    yields an empty initial zone (unreachable, zero states explored)
//    instead of a spurious run;
//  * every engine (BFS, DFS, parallel, best-first) and the concretizer
//    agree on the shifted-time semantics.
#include <gtest/gtest.h>

#include "engine/best_first.hpp"
#include "engine/reachability.hpp"
#include "engine/trace.hpp"
#include "ta/system.hpp"

namespace engine {
namespace {

using ta::ccGe;
using ta::ccLe;

/// One automaton, one clock: A --(x>=3)--> B with inv(A): x<=5.
struct TimedHop {
  ta::System sys;
  ta::ProcId p;
  ta::LocId a, b;
  ta::ClockId x;

  TimedHop() {
    x = sys.addClock("x");
    p = sys.addAutomaton("hop");
    auto& aut = sys.automaton(p);
    a = aut.addLocation("A");
    b = aut.addLocation("B");
    aut.setInvariant(a, {ccLe(x, 5)});
    aut.setInitial(a);
    sys.edge(p, a, b).when(ccGe(x, 3)).label("go");
    sys.finalize();
  }

  [[nodiscard]] Goal goal() const { return Goal{{{p, b}}, ta::kNoExpr, {}}; }
};

TEST(InitialClocks, DefaultIsZeroAndFlagOff) {
  TimedHop m;
  EXPECT_FALSE(m.sys.hasNonzeroClockInit());
  EXPECT_EQ(m.sys.initialClock(m.x), 0);
  m.sys.setClockInit(m.x, 2);
  EXPECT_TRUE(m.sys.hasNonzeroClockInit());
  EXPECT_EQ(m.sys.initialClock(m.x), 2);
}

TEST(InitialClocks, ShiftedStartStillReachesGoal) {
  TimedHop m;
  m.sys.setClockInit(m.x, 2);
  Reachability checker(m.sys, Options{});
  const Result res = checker.run(m.goal());
  ASSERT_TRUE(res.reachable);
  // Concretized, the run only needs one more time unit: x starts at 2,
  // the guard wants x >= 3.
  std::string err;
  const auto ct = concretize(m.sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;
  EXPECT_EQ(ct->makespan(), 1);
}

TEST(InitialClocks, InitAtGuardNeedsNoDelay) {
  TimedHop m;
  m.sys.setClockInit(m.x, 3);
  Reachability checker(m.sys, Options{});
  const Result res = checker.run(m.goal());
  ASSERT_TRUE(res.reachable);
  std::string err;
  const auto ct = concretize(m.sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;
  EXPECT_EQ(ct->makespan(), 0);
}

TEST(InitialClocks, InvariantViolatingInitIsUnreachable) {
  TimedHop m;
  m.sys.setClockInit(m.x, 10);  // inv(A): x <= 5 — the init is outside
  Reachability checker(m.sys, Options{});
  const Result res = checker.run(m.goal());
  EXPECT_FALSE(res.reachable);
  EXPECT_TRUE(res.exhausted);
  EXPECT_EQ(res.stats.statesExplored, 0u);
}

TEST(InitialClocks, AllOrdersAgree) {
  for (const auto order : {SearchOrder::kBfs, SearchOrder::kDfs}) {
    for (const dbm::value_t init : {0, 2, 4, 10}) {
      TimedHop m;
      m.sys.setClockInit(m.x, init);
      Options o;
      o.order = order;
      Reachability checker(m.sys, o);
      EXPECT_EQ(checker.run(m.goal()).reachable, init <= 5)
          << "order=" << static_cast<int>(order) << " init=" << init;
    }
  }
}

TEST(InitialClocks, ParallelEnginesAgree) {
  for (const auto order : {SearchOrder::kBfs, SearchOrder::kDfs}) {
    for (const dbm::value_t init : {2, 10}) {
      TimedHop m;
      m.sys.setClockInit(m.x, init);
      Options o;
      o.order = order;
      o.threads = 2;
      Reachability checker(m.sys, o);
      EXPECT_EQ(checker.run(m.goal()).reachable, init <= 5)
          << "order=" << static_cast<int>(order) << " init=" << init;
    }
  }
}

TEST(InitialClocks, BestFirstCostCountsFromInit) {
  // Cost clock t (never reset) starts at 7; reaching B needs one more
  // unit past x=2, so the optimal cost is 8, not 1.
  ta::System sys;
  const ta::ClockId x = sys.addClock("x");
  const ta::ClockId t = sys.addClock("t");
  const ta::ProcId p = sys.addAutomaton("hop");
  auto& aut = sys.automaton(p);
  const ta::LocId a = aut.addLocation("A");
  const ta::LocId b = aut.addLocation("B");
  aut.setInitial(a);
  sys.edge(p, a, b).when(ccGe(x, 3)).label("go");
  sys.finalize();
  sys.setClockInit(x, 2);
  sys.setClockInit(t, 7);
  BestFirst bf(sys, Options{}, t);
  const BestFirstResult res = bf.run(Goal{{{p, b}}, ta::kNoExpr, {}});
  ASSERT_TRUE(res.reachable);
  EXPECT_TRUE(res.optimal);
  EXPECT_EQ(res.cost, 8);
}

TEST(InitialClocks, OptPassesPreserveShiftedVerdict) {
  // The pre-exploration optimizer bridge must not rewrite away a
  // nonzero-init model (its passes assume all clocks start at zero).
  for (const dbm::value_t init : {2, 10}) {
    TimedHop m;
    m.sys.setClockInit(m.x, init);
    Options o;
    o.optLevel = 2;
    Reachability checker(m.sys, o);
    EXPECT_EQ(checker.run(m.goal()).reachable, init <= 5) << init;
  }
}

TEST(InitialClocks, TraceReplayFromShiftedInit) {
  TimedHop m;
  m.sys.setClockInit(m.x, 2);
  Reachability checker(m.sys, Options{});
  const Result res = checker.run(m.goal());
  ASSERT_TRUE(res.reachable);
  std::string err;
  const auto ct = concretize(m.sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;
  EXPECT_TRUE(validate(m.sys, *ct, &err)) << err;
}

}  // namespace
}  // namespace engine
