// The compact (reduced-form) passed list must answer exactly like the
// full-zone store.
#include <gtest/gtest.h>

#include "engine/reachability.hpp"
#include "plant/plant.hpp"

namespace engine {
namespace {

TEST(CompactStore, SameAnswersAsFullStoreOnPlant) {
  for (const int batches : {1, 2, 3}) {
    plant::PlantConfig cfg;
    cfg.order = plant::standardOrder(batches);
    const auto p = plant::buildPlant(cfg);

    Options full;
    full.order = SearchOrder::kDfs;
    full.dfsReverse = true;
    full.maxSeconds = 60.0;
    Options compact = full;
    compact.compactPassed = true;

    Reachability a(p->sys, full);
    const Result ra = a.run(p->goal);
    const auto p2 = plant::buildPlant(cfg);
    Reachability b(p2->sys, compact);
    const Result rb = b.run(p2->goal);

    EXPECT_EQ(ra.reachable, rb.reachable) << batches << " batches";
    EXPECT_TRUE(ra.reachable);
    // Identical search (same order, same coverage decisions modulo the
    // store's subsumption-removal, which only affects memory).
    EXPECT_EQ(ra.stats.statesExplored, rb.stats.statesExplored);
  }
}

TEST(CompactStore, NegativeAnswerStillExhaustive) {
  plant::PlantConfig cfg;
  cfg.order = {plant::qualityA()};
  const auto p = plant::buildPlant(cfg);
  Options o;
  o.compactPassed = true;
  // Unsatisfiable goal: the monitor done with ndone == 2 in a 1-batch
  // plant.
  Goal impossible = p->goal;
  impossible.predicate = (p->sys.rd(0) == -123).ref();  // posi[0] == -123
  Reachability checker(p->sys, o);
  const Result res = checker.run(impossible);
  EXPECT_FALSE(res.reachable);
  EXPECT_TRUE(res.exhausted);
}

TEST(CompactStore, UsesLessMemoryOnLargerRuns) {
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(8);
  const auto p1 = plant::buildPlant(cfg);
  const auto p2 = plant::buildPlant(cfg);
  Options full;
  full.order = SearchOrder::kDfs;
  full.dfsReverse = true;
  full.maxSeconds = 60.0;
  Options compact = full;
  compact.compactPassed = true;
  Reachability a(p1->sys, full);
  Reachability b(p2->sys, compact);
  const Result ra = a.run(p1->goal);
  const Result rb = b.run(p2->goal);
  ASSERT_TRUE(ra.reachable);
  ASSERT_TRUE(rb.reachable);
  EXPECT_LT(rb.stats.peakBytes, ra.stats.peakBytes);
}

}  // namespace
}  // namespace engine
