// Parallel-vs-sequential equivalence of the BFS engine: identical
// reachable/exhausted verdicts and valid, replayable traces across
// threads in {1, 2, 4} on Fischer's protocol and small batch-plant
// models, including deadlock goals and cutoff paths.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/reachability.hpp"
#include "engine/trace.hpp"
#include "plant/plant.hpp"
#include "ta/system.hpp"

namespace engine {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 4};

Options bfsOptions(size_t threads) {
  Options o;
  o.order = SearchOrder::kBfs;
  o.threads = threads;
  o.maxSeconds = 60.0;
  return o;
}

/// Fischer's timed mutual-exclusion protocol (see examples/fischer.cpp):
/// mutual exclusion holds iff K >= D.  The waiting->critical guard uses
/// the weak `x >= K+1` (equivalent to `x > K` for the violation
/// condition) so witness zones have only weak bounds and concretize.
struct Fischer {
  ta::System sys;
  std::vector<ta::ProcId> procs;
  std::vector<ta::LocId> critical;

  Fischer(int n, int d, int k) {
    const ta::VarId id = sys.addVar("id", 0);
    for (int i = 1; i <= n; ++i) {
      const ta::ClockId x = sys.addClock("x" + std::to_string(i));
      const ta::ProcId p = sys.addAutomaton("P" + std::to_string(i));
      procs.push_back(p);
      auto& a = sys.automaton(p);
      const ta::LocId idle = a.addLocation("idle");
      const ta::LocId trying = a.addLocation("trying");
      const ta::LocId waiting = a.addLocation("waiting");
      const ta::LocId crit = a.addLocation("critical");
      critical.push_back(crit);
      a.setInvariant(trying, {ta::ccLe(x, d)});
      sys.edge(p, idle, trying).guard(sys.rd(id) == 0).reset(x);
      sys.edge(p, trying, waiting).when(ta::ccLe(x, d)).reset(x).assign(id, i);
      sys.edge(p, waiting, crit).when(ta::ccGe(x, k + 1)).guard(sys.rd(id) == i);
      sys.edge(p, waiting, idle).guard(sys.rd(id) != i);
      sys.edge(p, crit, idle).assign(id, 0);
    }
    sys.finalize();
  }

  [[nodiscard]] Goal violation() const {
    Goal g;
    g.locations = {{procs[0], critical[0]}, {procs[1], critical[1]}};
    return g;
  }
};

void expectValidTrace(const ta::System& sys, const Result& res,
                      const std::string& what) {
  std::string err;
  const auto ct = concretize(sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << what << ": " << err;
  EXPECT_TRUE(validate(sys, *ct, &err)) << what << ": " << err;
}

TEST(ParallelReachability, FischerViolationFoundAtEveryThreadCount) {
  // K < D: mutual exclusion is violated; every thread count must find
  // it and produce a replayable witness.
  for (const size_t t : kThreadCounts) {
    Fischer m(3, 4, 1);
    Reachability checker(m.sys, bfsOptions(t));
    const Result res = checker.run(m.violation());
    ASSERT_TRUE(res.reachable) << t << " threads";
    ASSERT_FALSE(res.trace.steps.empty()) << t << " threads";
    expectValidTrace(m.sys, res, std::to_string(t) + " threads");
  }
}

TEST(ParallelReachability, FischerSafetyExhaustedAtEveryThreadCount) {
  // K >= D: unreachable, and every thread count must prove it by
  // exhausting the state space.
  for (const size_t t : kThreadCounts) {
    Fischer m(4, 2, 3);
    Reachability checker(m.sys, bfsOptions(t));
    const Result res = checker.run(m.violation());
    EXPECT_FALSE(res.reachable) << t << " threads";
    EXPECT_TRUE(res.exhausted) << t << " threads";
    EXPECT_EQ(res.stats.cutoff, Cutoff::kNone) << t << " threads";
  }
}

TEST(ParallelReachability, GuidedPlantScheduleAgrees) {
  for (const size_t t : kThreadCounts) {
    plant::PlantConfig cfg;
    cfg.order = plant::standardOrder(2);
    cfg.guides = plant::GuideLevel::kAll;
    const auto p = plant::buildPlant(cfg);
    Reachability checker(p->sys, bfsOptions(t));
    const Result res = checker.run(p->goal);
    ASSERT_TRUE(res.reachable) << t << " threads";
    expectValidTrace(p->sys, res, std::to_string(t) + " threads");
  }
}

TEST(ParallelReachability, DeadlockGoalTimelockAgrees) {
  // Invariant x <= 3 with the only exit requiring x >= 5: a timelock
  // the deadlock goal must find at every thread count.
  for (const size_t t : kThreadCounts) {
    ta::System sys;
    const ta::ClockId x = sys.addClock("x");
    const ta::ProcId p = sys.addAutomaton("P");
    auto& a = sys.automaton(p);
    const ta::LocId l0 = a.addLocation("l0");
    const ta::LocId l1 = a.addLocation("l1");
    a.setInvariant(l0, {ta::ccLe(x, 3)});
    sys.edge(p, l0, l1).when(ta::ccGe(x, 5));
    sys.finalize();
    Goal g;
    g.deadlock = true;
    Reachability checker(sys, bfsOptions(t));
    const Result res = checker.run(g);
    EXPECT_TRUE(res.reachable) << t << " threads";
  }
}

TEST(ParallelReachability, DeadlockFreeModelExhaustsEverywhere) {
  // A self-loop always has a successor: no deadlock at any thread count.
  for (const size_t t : kThreadCounts) {
    ta::System sys;
    const ta::ProcId p = sys.addAutomaton("P");
    (void)sys.automaton(p).addLocation("l");
    sys.edge(p, 0, 0);
    sys.finalize();
    Goal g;
    g.deadlock = true;
    Reachability checker(sys, bfsOptions(t));
    const Result res = checker.run(g);
    EXPECT_FALSE(res.reachable) << t << " threads";
    EXPECT_TRUE(res.exhausted) << t << " threads";
  }
}

TEST(ParallelReachability, StatesCutoffAgrees) {
  // The unguided plant blows any small state budget: every thread count
  // must report the states cutoff, not reachable, not exhausted.
  for (const size_t t : kThreadCounts) {
    plant::PlantConfig cfg;
    cfg.order = plant::standardOrder(2);
    cfg.guides = plant::GuideLevel::kNone;
    const auto p = plant::buildPlant(cfg);
    Options o = bfsOptions(t);
    o.maxStates = 500;
    Reachability checker(p->sys, o);
    const Result res = checker.run(p->goal);
    EXPECT_FALSE(res.reachable) << t << " threads";
    EXPECT_FALSE(res.exhausted) << t << " threads";
    EXPECT_EQ(res.stats.cutoff, Cutoff::kStates) << t << " threads";
  }
}

TEST(ParallelReachability, MemoryCutoffAgrees) {
  for (const size_t t : kThreadCounts) {
    plant::PlantConfig cfg;
    cfg.order = plant::standardOrder(2);
    cfg.guides = plant::GuideLevel::kNone;
    const auto p = plant::buildPlant(cfg);
    Options o = bfsOptions(t);
    o.maxMemoryBytes = 512 * 1024;
    Reachability checker(p->sys, o);
    const Result res = checker.run(p->goal);
    EXPECT_FALSE(res.reachable) << t << " threads";
    EXPECT_FALSE(res.exhausted) << t << " threads";
    EXPECT_EQ(res.stats.cutoff, Cutoff::kMemory) << t << " threads";
  }
}

TEST(ParallelReachability, PerThreadStatsAreConsistent) {
  Fischer m(4, 2, 3);
  Options o = bfsOptions(4);
  o.shardBits = 3;
  Reachability checker(m.sys, o);
  const Result res = checker.run(m.violation());
  ASSERT_EQ(res.stats.perThreadExplored.size(), 4u);
  size_t sum = 0;
  for (const size_t n : res.stats.perThreadExplored) sum += n;
  EXPECT_EQ(sum, res.stats.statesExplored);
  EXPECT_GT(res.stats.statesExplored, 0u);
}

TEST(ParallelReachability, SingleShardStillCorrect) {
  // shardBits == 0 funnels every insert through one lock — maximal
  // contention, same verdict.
  for (const size_t t : kThreadCounts) {
    Fischer m(3, 4, 1);
    Options o = bfsOptions(t);
    o.shardBits = 0;
    Reachability checker(m.sys, o);
    const Result res = checker.run(m.violation());
    EXPECT_TRUE(res.reachable) << t << " threads";
  }
}

TEST(ParallelReachability, CompactStoreParallelAgrees) {
  for (const size_t t : kThreadCounts) {
    Fischer m(4, 2, 3);
    Options o = bfsOptions(t);
    o.compactPassed = true;
    Reachability checker(m.sys, o);
    const Result res = checker.run(m.violation());
    EXPECT_FALSE(res.reachable) << t << " threads";
    EXPECT_TRUE(res.exhausted) << t << " threads";
  }
}

}  // namespace
}  // namespace engine
