// The two-bit bit-state scheme stores each state at two hashed bit
// positions; a state is only "seen" when both bits are set. That
// suppresses omissions exactly when the two positions collide
// independently — these tests pin the independence of the second hash
// and the basic test-and-set contract.
#include <random>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "engine/passed_store.hpp"
#include "engine/state.hpp"

namespace engine {
namespace {

/// A random normalized-looking symbolic state: small location/variable
/// vectors and a canonical zone with random bounds.
SymbolicState randomState(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> loc(0, 5);
  std::uniform_int_distribution<int> var(0, 9);
  std::uniform_int_distribution<int> up(1, 30);

  SymbolicState s{DiscreteState{}, dbm::Dbm::unconstrained(4)};
  for (int i = 0; i < 3; ++i) s.d.locs.push_back(loc(rng));
  for (int i = 0; i < 2; ++i) s.d.vars.push_back(var(rng));
  for (uint32_t c = 1; c < 4; ++c) {
    const int hi = up(rng);
    EXPECT_TRUE(s.zone.constrainUpper(c, hi, false));
    EXPECT_TRUE(s.zone.constrainLower(c, hi / 2, false));
  }
  return s;
}

TEST(BitstateHash, SecondHashIsIndependentOfFirst) {
  // Bucket many states by their masked first hash; among pairs that
  // collide on h1, only an ~1/2^bits fraction may also collide on h2.
  // (The old scheme derived h2 by permuting fullHash(), so the two
  // probes were correlated through the one value they both came from.)
  std::mt19937_64 rng(42);
  constexpr size_t kStates = 4000;
  constexpr size_t kBits = 12;
  constexpr size_t kMask = (size_t{1} << kBits) - 1;

  std::unordered_map<size_t, std::vector<size_t>> byH1;  // h1 -> h2 list
  for (size_t i = 0; i < kStates; ++i) {
    const SymbolicState s = randomState(rng);
    byH1[s.fullHash() & kMask].push_back(s.fullHash2() & kMask);
  }

  size_t h1CollidingPairs = 0;
  size_t bothCollidingPairs = 0;
  for (const auto& [h1, h2s] : byH1) {
    for (size_t a = 0; a < h2s.size(); ++a) {
      for (size_t b = a + 1; b < h2s.size(); ++b) {
        ++h1CollidingPairs;
        if (h2s[a] == h2s[b]) ++bothCollidingPairs;
      }
    }
  }
  // ~4000^2/2 / 4096 ≈ 1950 expected h1 collisions; the test is
  // meaningless without a decent sample of them.
  ASSERT_GT(h1CollidingPairs, 200u);
  // Independent probes: P(h2 also collides) ≈ 1/4096. Even 5% would
  // mean the probes are correlated.
  EXPECT_LT(static_cast<double>(bothCollidingPairs),
            0.05 * static_cast<double>(h1CollidingPairs))
      << bothCollidingPairs << " of " << h1CollidingPairs
      << " h1-colliding pairs also collide on h2";
}

TEST(BitstateHash, FullHashesDifferOnTypicalStates) {
  std::mt19937_64 rng(7);
  size_t equal = 0;
  for (int i = 0; i < 200; ++i) {
    const SymbolicState s = randomState(rng);
    if (s.fullHash() == s.fullHash2()) ++equal;
  }
  EXPECT_EQ(equal, 0u);
}

TEST(BitstateHash, TestAndSetContract) {
  std::mt19937_64 rng(3);
  BitTable bt(16);
  const SymbolicState a = randomState(rng);
  EXPECT_FALSE(bt.testAndSet(a));  // first visit: unseen, now marked
  EXPECT_TRUE(bt.testAndSet(a));   // second visit: seen
}

TEST(BitstateHash, FalsePositiveRateIsSmall) {
  // Insert distinct states into a table with ~16x headroom and count
  // how many are wrongly reported as already seen.
  std::mt19937_64 rng(11);
  BitTable bt(16);  // 65536 bits
  constexpr int kInserts = 2000;
  int falsePositives = 0;
  for (int i = 0; i < kInserts; ++i) {
    SymbolicState s = randomState(rng);
    s.d.vars.push_back(i);  // force distinctness
    if (bt.testAndSet(s)) ++falsePositives;
  }
  // Two independent probes at ~6% fill: expected rate well under 1%.
  EXPECT_LT(falsePositives, kInserts / 50);
}

}  // namespace
}  // namespace engine
