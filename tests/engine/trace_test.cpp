// Tests of symbolic-trace concretization (the forward/backward scheme)
// and of the independent concrete-trace validator.
#include <gtest/gtest.h>

#include "engine/reachability.hpp"
#include "engine/trace.hpp"
#include "ta/system.hpp"

namespace engine {
namespace {

using ta::ccGe;
using ta::ccLe;

TEST(Concretize, GreedyTrapNeedsBackwardPass) {
  // The model that defeats greedy minimal-delay replay: a process
  // whose second step must happen at x == 10 exactly, while a free
  // "tick" self-loop tempts an eager scheduler to fire early and
  // fragment time.  Construction: step1 may fire any time in [0,10]
  // resetting y; step2 requires x >= 10 and y <= 2 — so step1 must
  // fire LATE (x in [8,10]), not at the earliest opportunity.
  ta::System sys;
  const ta::ClockId x = sys.addClock("x");
  const ta::ClockId y = sys.addClock("y");
  const ta::ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const ta::LocId l0 = a.addLocation("l0");
  const ta::LocId l1 = a.addLocation("l1");
  const ta::LocId l2 = a.addLocation("l2");
  sys.edge(p, l0, l1).when(ccLe(x, 10)).reset(y).label("step1");
  sys.edge(p, l1, l2).when(ccGe(x, 10)).when(ccLe(y, 2)).label("step2");
  sys.finalize();

  Reachability checker(sys, Options{});
  const Result res = checker.run(Goal{{{p, l2}}, ta::kNoExpr, {}});
  ASSERT_TRUE(res.reachable);
  std::string err;
  const auto ct = concretize(sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;
  EXPECT_TRUE(validate(sys, *ct, &err)) << err;
  // step1 must have been placed at x >= 8.
  ASSERT_EQ(ct->steps.size(), 3u);
  EXPECT_GE(ct->steps[1].timestamp, 8);
  EXPECT_GE(ct->steps[2].timestamp, 10);
}

TEST(Concretize, ExactDelayForcedByInvariantGuardPair) {
  ta::System sys;
  const ta::ClockId x = sys.addClock("x");
  const ta::ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const ta::LocId l0 = a.addLocation("l0");
  const ta::LocId l1 = a.addLocation("l1");
  a.setInvariant(l0, {ccLe(x, 7)});
  sys.edge(p, l0, l1).when(ccGe(x, 7));
  sys.finalize();
  Reachability checker(sys, Options{});
  const Result res = checker.run(Goal{{{p, l1}}, ta::kNoExpr, {}});
  ASSERT_TRUE(res.reachable);
  std::string err;
  const auto ct = concretize(sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;
  EXPECT_EQ(ct->steps[1].delay, 7);
}

TEST(Concretize, UrgentLocationGetsZeroDelay) {
  ta::System sys;
  const ta::ClockId x = sys.addClock("x");
  const ta::ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const ta::LocId l0 = a.addLocation("l0");
  const ta::LocId lu = a.addLocation("lu", /*urgent=*/true);
  const ta::LocId l1 = a.addLocation("l1");
  sys.edge(p, l0, lu).when(ccGe(x, 2));
  sys.edge(p, lu, l1);
  sys.finalize();
  Reachability checker(sys, Options{});
  const Result res = checker.run(Goal{{{p, l1}}, ta::kNoExpr, {}});
  ASSERT_TRUE(res.reachable);
  std::string err;
  const auto ct = concretize(sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;
  EXPECT_EQ(ct->steps[2].delay, 0);
  EXPECT_EQ(ct->steps[2].timestamp, ct->steps[1].timestamp);
}

TEST(Concretize, ClockValuesTrackDelaysAndResets) {
  ta::System sys;
  const ta::ClockId x = sys.addClock("x");
  const ta::ClockId y = sys.addClock("y");
  const ta::ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const ta::LocId l0 = a.addLocation("l0");
  const ta::LocId l1 = a.addLocation("l1");
  const ta::LocId l2 = a.addLocation("l2");
  a.setInvariant(l0, {ccLe(x, 3)});
  sys.edge(p, l0, l1).when(ccGe(x, 3)).reset(y);
  a.setInvariant(l1, {ccLe(y, 4)});
  sys.edge(p, l1, l2).when(ccGe(y, 4));
  sys.finalize();
  Reachability checker(sys, Options{});
  const Result res = checker.run(Goal{{{p, l2}}, ta::kNoExpr, {}});
  ASSERT_TRUE(res.reachable);
  std::string err;
  const auto ct = concretize(sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;
  ASSERT_EQ(ct->steps.size(), 3u);
  EXPECT_EQ(ct->steps[1].clocks[static_cast<size_t>(x)], 3);
  EXPECT_EQ(ct->steps[1].clocks[static_cast<size_t>(y)], 0);
  EXPECT_EQ(ct->steps[2].clocks[static_cast<size_t>(x)], 7);
  EXPECT_EQ(ct->steps[2].clocks[static_cast<size_t>(y)], 4);
  EXPECT_EQ(ct->makespan(), 7);
}

TEST(Validate, RejectsTamperedDelay) {
  ta::System sys;
  const ta::ClockId x = sys.addClock("x");
  const ta::ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const ta::LocId l0 = a.addLocation("l0");
  const ta::LocId l1 = a.addLocation("l1");
  a.setInvariant(l0, {ccLe(x, 5)});
  sys.edge(p, l0, l1).when(ccGe(x, 3));
  sys.finalize();
  Reachability checker(sys, Options{});
  const Result res = checker.run(Goal{{{p, l1}}, ta::kNoExpr, {}});
  ASSERT_TRUE(res.reachable);
  std::string err;
  auto ct = concretize(sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;

  ConcreteTrace early = *ct;
  early.steps[1].delay = 2;  // violates the x >= 3 guard
  EXPECT_FALSE(validate(sys, early, &err));

  ConcreteTrace late = *ct;
  late.steps[1].delay = 6;  // violates the x <= 5 invariant
  EXPECT_FALSE(validate(sys, late, &err));
}

TEST(Validate, RejectsTamperedVariables) {
  ta::System sys;
  const ta::VarId v = sys.addVar("v", 0);
  const ta::ProcId p = sys.addAutomaton("P");
  auto& a = sys.automaton(p);
  const ta::LocId l0 = a.addLocation("l0");
  const ta::LocId l1 = a.addLocation("l1");
  sys.edge(p, l0, l1).assign(v, 5);
  sys.finalize();
  Reachability checker(sys, Options{});
  const Result res = checker.run(Goal{{{p, l1}}, ta::kNoExpr, {}});
  ASSERT_TRUE(res.reachable);
  std::string err;
  auto ct = concretize(sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;
  ct->steps[1].d.vars[static_cast<size_t>(v)] = 99;
  EXPECT_FALSE(validate(sys, *ct, &err));
  EXPECT_NE(err.find("differs from replay"), std::string::npos);
}

TEST(Validate, RejectsEmptyTrace) {
  ta::System sys;
  (void)sys.addAutomaton("P");
  sys.automaton(0).addLocation("l");
  sys.finalize();
  std::string err;
  EXPECT_FALSE(validate(sys, ConcreteTrace{}, &err));
}

TEST(Concretize, SyncDelaysRespectBothParties) {
  // Sender ready at x >= 4, receiver must sync before y <= 6: the
  // joint transition is forced into [4, 6].
  ta::System sys;
  const ta::ClockId x = sys.addClock("x");
  const ta::ClockId y = sys.addClock("y");
  const ta::ChanId c = sys.addChannel("c");
  const ta::ProcId ps = sys.addAutomaton("S");
  auto& s = sys.automaton(ps);
  const ta::LocId s0 = s.addLocation("s0");
  const ta::LocId s1 = s.addLocation("s1");
  sys.edge(ps, s0, s1).when(ccGe(x, 4)).send(c);
  const ta::ProcId pr = sys.addAutomaton("R");
  auto& r = sys.automaton(pr);
  const ta::LocId r0 = r.addLocation("r0");
  const ta::LocId r1 = r.addLocation("r1");
  r.setInvariant(r0, {ccLe(y, 6)});
  sys.edge(pr, r0, r1).receive(c);
  sys.finalize();
  Reachability checker(sys, Options{});
  const Result res = checker.run(Goal{{{ps, s1}, {pr, r1}}, ta::kNoExpr, {}});
  ASSERT_TRUE(res.reachable);
  std::string err;
  const auto ct = concretize(sys, res.trace, &err);
  ASSERT_TRUE(ct.has_value()) << err;
  EXPECT_GE(ct->steps[1].timestamp, 4);
  EXPECT_LE(ct->steps[1].timestamp, 6);
}

}  // namespace
}  // namespace engine
