file(REMOVE_RECURSE
  "CMakeFiles/fig6_program.dir/fig6_program.cpp.o"
  "CMakeFiles/fig6_program.dir/fig6_program.cpp.o.d"
  "fig6_program"
  "fig6_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
