# Empty dependencies file for fig6_program.
# This may be replaced when dependencies are built.
