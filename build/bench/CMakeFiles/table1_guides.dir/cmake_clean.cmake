file(REMOVE_RECURSE
  "CMakeFiles/table1_guides.dir/table1_guides.cpp.o"
  "CMakeFiles/table1_guides.dir/table1_guides.cpp.o.d"
  "table1_guides"
  "table1_guides.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_guides.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
