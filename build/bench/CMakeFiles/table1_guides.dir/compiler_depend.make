# Empty compiler generated dependencies file for table1_guides.
# This may be replaced when dependencies are built.
