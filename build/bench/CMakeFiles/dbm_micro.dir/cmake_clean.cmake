file(REMOVE_RECURSE
  "CMakeFiles/dbm_micro.dir/dbm_micro.cpp.o"
  "CMakeFiles/dbm_micro.dir/dbm_micro.cpp.o.d"
  "dbm_micro"
  "dbm_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbm_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
