# Empty dependencies file for dbm_micro.
# This may be replaced when dependencies are built.
