# Empty compiler generated dependencies file for scaling_batches.
# This may be replaced when dependencies are built.
