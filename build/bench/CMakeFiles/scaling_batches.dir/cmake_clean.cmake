file(REMOVE_RECURSE
  "CMakeFiles/scaling_batches.dir/scaling_batches.cpp.o"
  "CMakeFiles/scaling_batches.dir/scaling_batches.cpp.o.d"
  "scaling_batches"
  "scaling_batches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_batches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
