# Empty compiler generated dependencies file for table2_schedule.
# This may be replaced when dependencies are built.
