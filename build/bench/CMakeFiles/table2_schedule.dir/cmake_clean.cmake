file(REMOVE_RECURSE
  "CMakeFiles/table2_schedule.dir/table2_schedule.cpp.o"
  "CMakeFiles/table2_schedule.dir/table2_schedule.cpp.o.d"
  "table2_schedule"
  "table2_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
