file(REMOVE_RECURSE
  "CMakeFiles/lossy_channel.dir/lossy_channel.cpp.o"
  "CMakeFiles/lossy_channel.dir/lossy_channel.cpp.o.d"
  "lossy_channel"
  "lossy_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossy_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
