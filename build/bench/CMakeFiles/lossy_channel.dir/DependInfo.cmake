
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/lossy_channel.cpp" "bench/CMakeFiles/lossy_channel.dir/lossy_channel.cpp.o" "gcc" "bench/CMakeFiles/lossy_channel.dir/lossy_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dbm/CMakeFiles/dbm.dir/DependInfo.cmake"
  "/root/repo/build/src/ta/CMakeFiles/ta.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/engine.dir/DependInfo.cmake"
  "/root/repo/build/src/plant/CMakeFiles/plant.dir/DependInfo.cmake"
  "/root/repo/build/src/synthesis/CMakeFiles/synthesis.dir/DependInfo.cmake"
  "/root/repo/build/src/rcx/CMakeFiles/rcx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
