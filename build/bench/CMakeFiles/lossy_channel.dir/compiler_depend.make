# Empty compiler generated dependencies file for lossy_channel.
# This may be replaced when dependencies are built.
