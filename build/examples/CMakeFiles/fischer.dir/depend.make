# Empty dependencies file for fischer.
# This may be replaced when dependencies are built.
