file(REMOVE_RECURSE
  "CMakeFiles/fischer.dir/fischer.cpp.o"
  "CMakeFiles/fischer.dir/fischer.cpp.o.d"
  "fischer"
  "fischer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fischer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
