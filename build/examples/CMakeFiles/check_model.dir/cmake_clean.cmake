file(REMOVE_RECURSE
  "CMakeFiles/check_model.dir/check_model.cpp.o"
  "CMakeFiles/check_model.dir/check_model.cpp.o.d"
  "check_model"
  "check_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
