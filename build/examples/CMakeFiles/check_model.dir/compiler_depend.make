# Empty compiler generated dependencies file for check_model.
# This may be replaced when dependencies are built.
