file(REMOVE_RECURSE
  "CMakeFiles/optimize_makespan.dir/optimize_makespan.cpp.o"
  "CMakeFiles/optimize_makespan.dir/optimize_makespan.cpp.o.d"
  "optimize_makespan"
  "optimize_makespan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimize_makespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
