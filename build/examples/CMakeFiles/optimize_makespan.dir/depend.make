# Empty dependencies file for optimize_makespan.
# This may be replaced when dependencies are built.
