file(REMOVE_RECURSE
  "CMakeFiles/synthesize_and_run.dir/synthesize_and_run.cpp.o"
  "CMakeFiles/synthesize_and_run.dir/synthesize_and_run.cpp.o.d"
  "synthesize_and_run"
  "synthesize_and_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesize_and_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
