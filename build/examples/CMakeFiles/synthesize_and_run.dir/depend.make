# Empty dependencies file for synthesize_and_run.
# This may be replaced when dependencies are built.
