# Empty dependencies file for fault_hunt.
# This may be replaced when dependencies are built.
