file(REMOVE_RECURSE
  "CMakeFiles/fault_hunt.dir/fault_hunt.cpp.o"
  "CMakeFiles/fault_hunt.dir/fault_hunt.cpp.o.d"
  "fault_hunt"
  "fault_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
