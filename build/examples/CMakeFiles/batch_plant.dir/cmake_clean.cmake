file(REMOVE_RECURSE
  "CMakeFiles/batch_plant.dir/batch_plant.cpp.o"
  "CMakeFiles/batch_plant.dir/batch_plant.cpp.o.d"
  "batch_plant"
  "batch_plant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_plant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
