# Empty compiler generated dependencies file for batch_plant.
# This may be replaced when dependencies are built.
