# Empty dependencies file for rcx.
# This may be replaced when dependencies are built.
