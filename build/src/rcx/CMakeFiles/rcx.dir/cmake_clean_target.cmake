file(REMOVE_RECURSE
  "librcx.a"
)
