file(REMOVE_RECURSE
  "CMakeFiles/rcx.dir/physics.cpp.o"
  "CMakeFiles/rcx.dir/physics.cpp.o.d"
  "CMakeFiles/rcx.dir/plant_sim.cpp.o"
  "CMakeFiles/rcx.dir/plant_sim.cpp.o.d"
  "CMakeFiles/rcx.dir/vm.cpp.o"
  "CMakeFiles/rcx.dir/vm.cpp.o.d"
  "librcx.a"
  "librcx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
