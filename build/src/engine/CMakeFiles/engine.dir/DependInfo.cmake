
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/reachability.cpp" "src/engine/CMakeFiles/engine.dir/reachability.cpp.o" "gcc" "src/engine/CMakeFiles/engine.dir/reachability.cpp.o.d"
  "/root/repo/src/engine/simulator.cpp" "src/engine/CMakeFiles/engine.dir/simulator.cpp.o" "gcc" "src/engine/CMakeFiles/engine.dir/simulator.cpp.o.d"
  "/root/repo/src/engine/successors.cpp" "src/engine/CMakeFiles/engine.dir/successors.cpp.o" "gcc" "src/engine/CMakeFiles/engine.dir/successors.cpp.o.d"
  "/root/repo/src/engine/trace.cpp" "src/engine/CMakeFiles/engine.dir/trace.cpp.o" "gcc" "src/engine/CMakeFiles/engine.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ta/CMakeFiles/ta.dir/DependInfo.cmake"
  "/root/repo/build/src/dbm/CMakeFiles/dbm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
