file(REMOVE_RECURSE
  "CMakeFiles/engine.dir/reachability.cpp.o"
  "CMakeFiles/engine.dir/reachability.cpp.o.d"
  "CMakeFiles/engine.dir/simulator.cpp.o"
  "CMakeFiles/engine.dir/simulator.cpp.o.d"
  "CMakeFiles/engine.dir/successors.cpp.o"
  "CMakeFiles/engine.dir/successors.cpp.o.d"
  "CMakeFiles/engine.dir/trace.cpp.o"
  "CMakeFiles/engine.dir/trace.cpp.o.d"
  "libengine.a"
  "libengine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
