file(REMOVE_RECURSE
  "libplant.a"
)
