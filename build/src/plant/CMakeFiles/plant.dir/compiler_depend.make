# Empty compiler generated dependencies file for plant.
# This may be replaced when dependencies are built.
