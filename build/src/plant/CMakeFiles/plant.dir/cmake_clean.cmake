file(REMOVE_RECURSE
  "CMakeFiles/plant.dir/builder.cpp.o"
  "CMakeFiles/plant.dir/builder.cpp.o.d"
  "libplant.a"
  "libplant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
