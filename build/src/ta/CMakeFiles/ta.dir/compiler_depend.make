# Empty compiler generated dependencies file for ta.
# This may be replaced when dependencies are built.
