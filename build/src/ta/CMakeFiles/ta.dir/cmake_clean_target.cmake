file(REMOVE_RECURSE
  "libta.a"
)
