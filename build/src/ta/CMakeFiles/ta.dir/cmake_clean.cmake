file(REMOVE_RECURSE
  "CMakeFiles/ta.dir/expr.cpp.o"
  "CMakeFiles/ta.dir/expr.cpp.o.d"
  "CMakeFiles/ta.dir/parser.cpp.o"
  "CMakeFiles/ta.dir/parser.cpp.o.d"
  "CMakeFiles/ta.dir/system.cpp.o"
  "CMakeFiles/ta.dir/system.cpp.o.d"
  "libta.a"
  "libta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
