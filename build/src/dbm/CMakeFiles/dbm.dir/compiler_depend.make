# Empty compiler generated dependencies file for dbm.
# This may be replaced when dependencies are built.
