file(REMOVE_RECURSE
  "libdbm.a"
)
