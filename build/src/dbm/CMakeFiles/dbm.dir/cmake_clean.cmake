file(REMOVE_RECURSE
  "CMakeFiles/dbm.dir/dbm.cpp.o"
  "CMakeFiles/dbm.dir/dbm.cpp.o.d"
  "libdbm.a"
  "libdbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
