# Empty compiler generated dependencies file for synthesis.
# This may be replaced when dependencies are built.
