file(REMOVE_RECURSE
  "libsynthesis.a"
)
