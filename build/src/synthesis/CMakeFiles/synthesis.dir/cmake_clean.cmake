file(REMOVE_RECURSE
  "CMakeFiles/synthesis.dir/io.cpp.o"
  "CMakeFiles/synthesis.dir/io.cpp.o.d"
  "CMakeFiles/synthesis.dir/rcx_codegen.cpp.o"
  "CMakeFiles/synthesis.dir/rcx_codegen.cpp.o.d"
  "CMakeFiles/synthesis.dir/schedule.cpp.o"
  "CMakeFiles/synthesis.dir/schedule.cpp.o.d"
  "libsynthesis.a"
  "libsynthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
