file(REMOVE_RECURSE
  "CMakeFiles/physics_lifecycle_test.dir/rcx/physics_lifecycle_test.cpp.o"
  "CMakeFiles/physics_lifecycle_test.dir/rcx/physics_lifecycle_test.cpp.o.d"
  "physics_lifecycle_test"
  "physics_lifecycle_test.pdb"
  "physics_lifecycle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/physics_lifecycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
