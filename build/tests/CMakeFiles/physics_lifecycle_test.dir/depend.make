# Empty dependencies file for physics_lifecycle_test.
# This may be replaced when dependencies are built.
