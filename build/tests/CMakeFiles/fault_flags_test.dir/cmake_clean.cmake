file(REMOVE_RECURSE
  "CMakeFiles/fault_flags_test.dir/plant/fault_flags_test.cpp.o"
  "CMakeFiles/fault_flags_test.dir/plant/fault_flags_test.cpp.o.d"
  "fault_flags_test"
  "fault_flags_test.pdb"
  "fault_flags_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_flags_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
