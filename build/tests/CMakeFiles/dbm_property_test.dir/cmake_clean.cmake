file(REMOVE_RECURSE
  "CMakeFiles/dbm_property_test.dir/dbm/dbm_property_test.cpp.o"
  "CMakeFiles/dbm_property_test.dir/dbm/dbm_property_test.cpp.o.d"
  "dbm_property_test"
  "dbm_property_test.pdb"
  "dbm_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbm_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
