# Empty dependencies file for simulator_replay_test.
# This may be replaced when dependencies are built.
