file(REMOVE_RECURSE
  "CMakeFiles/simulator_replay_test.dir/integration/simulator_replay_test.cpp.o"
  "CMakeFiles/simulator_replay_test.dir/integration/simulator_replay_test.cpp.o.d"
  "simulator_replay_test"
  "simulator_replay_test.pdb"
  "simulator_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
