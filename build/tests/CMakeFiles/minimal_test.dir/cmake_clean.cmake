file(REMOVE_RECURSE
  "CMakeFiles/minimal_test.dir/dbm/minimal_test.cpp.o"
  "CMakeFiles/minimal_test.dir/dbm/minimal_test.cpp.o.d"
  "minimal_test"
  "minimal_test.pdb"
  "minimal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
