# Empty dependencies file for fischer_test.
# This may be replaced when dependencies are built.
