file(REMOVE_RECURSE
  "CMakeFiles/fischer_test.dir/engine/fischer_test.cpp.o"
  "CMakeFiles/fischer_test.dir/engine/fischer_test.cpp.o.d"
  "fischer_test"
  "fischer_test.pdb"
  "fischer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fischer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
