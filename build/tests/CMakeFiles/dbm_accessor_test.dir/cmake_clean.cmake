file(REMOVE_RECURSE
  "CMakeFiles/dbm_accessor_test.dir/dbm/dbm_accessor_test.cpp.o"
  "CMakeFiles/dbm_accessor_test.dir/dbm/dbm_accessor_test.cpp.o.d"
  "dbm_accessor_test"
  "dbm_accessor_test.pdb"
  "dbm_accessor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbm_accessor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
