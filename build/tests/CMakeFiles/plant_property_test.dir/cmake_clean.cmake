file(REMOVE_RECURSE
  "CMakeFiles/plant_property_test.dir/plant/plant_property_test.cpp.o"
  "CMakeFiles/plant_property_test.dir/plant/plant_property_test.cpp.o.d"
  "plant_property_test"
  "plant_property_test.pdb"
  "plant_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plant_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
