# Empty compiler generated dependencies file for plant_property_test.
# This may be replaced when dependencies are built.
