file(REMOVE_RECURSE
  "CMakeFiles/dbm_test.dir/dbm/dbm_test.cpp.o"
  "CMakeFiles/dbm_test.dir/dbm/dbm_test.cpp.o.d"
  "dbm_test"
  "dbm_test.pdb"
  "dbm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
