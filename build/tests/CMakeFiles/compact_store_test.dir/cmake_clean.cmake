file(REMOVE_RECURSE
  "CMakeFiles/compact_store_test.dir/engine/compact_store_test.cpp.o"
  "CMakeFiles/compact_store_test.dir/engine/compact_store_test.cpp.o.d"
  "compact_store_test"
  "compact_store_test.pdb"
  "compact_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compact_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
