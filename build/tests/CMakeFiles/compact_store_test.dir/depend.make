# Empty dependencies file for compact_store_test.
# This may be replaced when dependencies are built.
