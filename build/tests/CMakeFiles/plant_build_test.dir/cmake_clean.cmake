file(REMOVE_RECURSE
  "CMakeFiles/plant_build_test.dir/plant/plant_build_test.cpp.o"
  "CMakeFiles/plant_build_test.dir/plant/plant_build_test.cpp.o.d"
  "plant_build_test"
  "plant_build_test.pdb"
  "plant_build_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plant_build_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
