# Empty compiler generated dependencies file for plant_build_test.
# This may be replaced when dependencies are built.
