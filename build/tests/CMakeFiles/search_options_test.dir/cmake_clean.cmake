file(REMOVE_RECURSE
  "CMakeFiles/search_options_test.dir/engine/search_options_test.cpp.o"
  "CMakeFiles/search_options_test.dir/engine/search_options_test.cpp.o.d"
  "search_options_test"
  "search_options_test.pdb"
  "search_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
