file(REMOVE_RECURSE
  "CMakeFiles/rcx_codegen_test.dir/synthesis/rcx_codegen_test.cpp.o"
  "CMakeFiles/rcx_codegen_test.dir/synthesis/rcx_codegen_test.cpp.o.d"
  "rcx_codegen_test"
  "rcx_codegen_test.pdb"
  "rcx_codegen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcx_codegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
