# Empty dependencies file for rcx_codegen_test.
# This may be replaced when dependencies are built.
