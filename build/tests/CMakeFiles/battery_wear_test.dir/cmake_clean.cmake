file(REMOVE_RECURSE
  "CMakeFiles/battery_wear_test.dir/integration/battery_wear_test.cpp.o"
  "CMakeFiles/battery_wear_test.dir/integration/battery_wear_test.cpp.o.d"
  "battery_wear_test"
  "battery_wear_test.pdb"
  "battery_wear_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_wear_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
