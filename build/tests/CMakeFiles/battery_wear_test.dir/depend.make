# Empty dependencies file for battery_wear_test.
# This may be replaced when dependencies are built.
