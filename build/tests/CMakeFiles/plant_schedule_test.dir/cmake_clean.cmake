file(REMOVE_RECURSE
  "CMakeFiles/plant_schedule_test.dir/plant/plant_schedule_test.cpp.o"
  "CMakeFiles/plant_schedule_test.dir/plant/plant_schedule_test.cpp.o.d"
  "plant_schedule_test"
  "plant_schedule_test.pdb"
  "plant_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plant_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
