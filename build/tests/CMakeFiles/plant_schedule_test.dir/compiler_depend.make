# Empty compiler generated dependencies file for plant_schedule_test.
# This may be replaced when dependencies are built.
