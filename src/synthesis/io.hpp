// File output for synthesis artefacts: schedules (Table 2 format) and
// RCX programs (Figure 6 format), so the pipeline's products can be
// inspected or diffed outside the process.
#pragma once

#include <string>

#include "synthesis/rcx_codegen.hpp"
#include "synthesis/schedule.hpp"

namespace synthesis {

/// Write the schedule in Table 2 format. Returns false on I/O error.
[[nodiscard]] bool writeScheduleFile(const Schedule& schedule,
                                     const std::string& path);

/// Write the program in Figure 6 format, preceded by its message-id
/// table. Returns false on I/O error.
[[nodiscard]] bool writeProgramFile(const RcxProgram& program,
                                    const std::string& path);

}  // namespace synthesis
