#include "synthesis/io.hpp"

#include <fstream>

namespace synthesis {

bool writeScheduleFile(const Schedule& schedule, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# schedule: " << schedule.items.size() << " commands, makespan "
      << schedule.makespan << "\n";
  out << schedule.toText();
  return static_cast<bool>(out);
}

bool writeProgramFile(const RcxProgram& program, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "' message-id table\n";
  for (const RcxCommand& c : program.commands) {
    out << "'   " << c.msgId << " = " << c.unit << "." << c.command << "\n";
  }
  out << "\n" << program.toText();
  return static_cast<bool>(out);
}

}  // namespace synthesis
