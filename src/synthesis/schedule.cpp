#include "synthesis/schedule.hpp"

#include <chrono>
#include <sstream>

#include "engine/best_first.hpp"

namespace synthesis {

std::string Schedule::toText() const {
  std::ostringstream os;
  int64_t now = 0;
  for (const ScheduleItem& item : items) {
    if (item.time > now) {
      os << "Delay(" << (item.time - now) << ")\n";
      now = item.time;
    }
    os << item.text() << "\n";
  }
  return os.str();
}

Schedule project(const ta::System& sys, const engine::ConcreteTrace& trace) {
  Schedule out;
  for (const engine::ConcreteStep& step : trace.steps) {
    for (const engine::TransitionPart& part : step.via.parts) {
      const ta::Edge& e =
          sys.automaton(part.proc).edges()[static_cast<size_t>(part.edge)];
      // Plant commands are the labels of the form "Unit.Command"; the
      // model's internal synchronizations carry other labels (or none)
      // and are projected away — "Some of the synchronizations are not
      // relevant for the scheduling" (paper §6).
      const size_t dot = e.label.find('.');
      if (dot == std::string::npos || dot == 0 ||
          dot + 1 == e.label.size()) {
        continue;
      }
      out.items.push_back(ScheduleItem{
          step.timestamp, e.label.substr(0, dot), e.label.substr(dot + 1)});
    }
  }
  out.makespan = trace.makespan();
  return out;
}

bool parseOptimizer(const std::string& s, Optimizer* out) {
  if (s == "binary") {
    *out = Optimizer::kBinary;
    return true;
  }
  if (s == "bestfirst") {
    *out = Optimizer::kBestFirst;
    return true;
  }
  return false;
}

namespace {

/// Concretize + project, tolerating failure (an engine bug would be the
/// only cause; the caller surfaces the empty schedule).
bool makeSchedule(const ta::System& sys, const engine::SymbolicTrace& trace,
                  Schedule* out, int64_t* makespan) {
  const auto ct = engine::concretize(sys, trace);
  if (!ct.has_value()) return false;
  *out = project(sys, *ct);
  *makespan = ct->makespan();
  return true;
}

}  // namespace

OptimizeResult optimizeMakespan(const ta::System& sys,
                                const engine::Goal& goal,
                                ta::ClockId makespanClock,
                                const OptimizeOptions& opts) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  OptimizeResult out;

  // First-found bootstrap: any schedule at all, as fast as possible.
  engine::Reachability first(sys, opts.engine);
  const engine::Result res0 = first.run(goal);
  if (!res0.reachable) {
    out.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    return out;
  }
  out.feasible = true;
  Schedule firstSchedule;
  if (!makeSchedule(sys, res0.trace, &firstSchedule, &out.firstMakespan)) {
    out.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    return out;
  }
  out.incumbents.push_back(out.firstMakespan);

  if (opts.optimizer == Optimizer::kBinary) {
    int64_t lo = 0;
    int64_t hi = out.firstMakespan;
    engine::SymbolicTrace best = res0.trace;
    bool cut = false;
    while (lo < hi) {
      const int64_t mid = lo + (hi - lo) / 2;
      engine::Goal probe = goal;
      probe.clockConstraints.push_back(
          ta::ccLe(makespanClock, static_cast<dbm::value_t>(mid)));
      engine::Reachability checker(sys, opts.engine);
      const engine::Result res = checker.run(probe);
      ++out.runs;
      out.stats.statesExplored += res.stats.statesExplored;
      out.stats.statesGenerated += res.stats.statesGenerated;
      out.stats.seconds += res.stats.seconds;
      if (res.stats.cutoff != engine::Cutoff::kNone) cut = true;
      if (res.reachable) {
        hi = mid;
        best = res.trace;
        out.incumbents.push_back(mid);
      } else {
        lo = mid + 1;
      }
    }
    // The last feasible probe ran at bound == final hi == lo, so the
    // greedy-earliest concretization of its trace lands exactly on the
    // optimum.
    out.optimalMakespan = lo;
    out.cost = lo;
    out.optimal = !cut;
    int64_t concrete = 0;
    if (makeSchedule(sys, best, &out.schedule, &concrete)) {
      out.optimalMakespan = concrete;
      out.cost = concrete;
    }
  } else {
    engine::BestFirst bf(sys, opts.engine, makespanClock);
    // A plain makespan is only an upper bound on the cost when no
    // penalties inflate it.
    if (opts.engine.softGuides.empty()) {
      bf.setInitialIncumbent(out.firstMakespan);
    }
    if (!opts.heuristicTargets.empty()) {
      bf.setHeuristicTargets(opts.heuristicTargets);
    }
    engine::BestFirstResult res = bf.run(goal);
    out.runs = 1;
    out.stats = res.stats;
    out.optimal = res.optimal;
    out.incumbents.insert(out.incumbents.end(),
                          res.stats.incumbentCosts.begin(),
                          res.stats.incumbentCosts.end());
    if (res.reachable) {
      out.cost = res.cost;
      if (!makeSchedule(sys, res.trace, &out.schedule,
                        &out.optimalMakespan)) {
        out.optimalMakespan = res.cost;
      }
    } else {
      // Strictly-cheaper search came up empty: the bootstrap schedule
      // is the optimum (proven when the run wasn't cut off).
      out.cost = out.firstMakespan;
      out.optimalMakespan = out.firstMakespan;
      out.schedule = std::move(firstSchedule);
    }
  }

  out.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  return out;
}

}  // namespace synthesis
