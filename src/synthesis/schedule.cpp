#include "synthesis/schedule.hpp"

#include <sstream>

namespace synthesis {

std::string Schedule::toText() const {
  std::ostringstream os;
  int64_t now = 0;
  for (const ScheduleItem& item : items) {
    if (item.time > now) {
      os << "Delay(" << (item.time - now) << ")\n";
      now = item.time;
    }
    os << item.text() << "\n";
  }
  return os.str();
}

Schedule project(const ta::System& sys, const engine::ConcreteTrace& trace) {
  Schedule out;
  for (const engine::ConcreteStep& step : trace.steps) {
    for (const engine::TransitionPart& part : step.via.parts) {
      const ta::Edge& e =
          sys.automaton(part.proc).edges()[static_cast<size_t>(part.edge)];
      // Plant commands are the labels of the form "Unit.Command"; the
      // model's internal synchronizations carry other labels (or none)
      // and are projected away — "Some of the synchronizations are not
      // relevant for the scheduling" (paper §6).
      const size_t dot = e.label.find('.');
      if (dot == std::string::npos || dot == 0 ||
          dot + 1 == e.label.size()) {
        continue;
      }
      out.items.push_back(ScheduleItem{
          step.timestamp, e.label.substr(0, dot), e.label.substr(dot + 1)});
    }
  }
  out.makespan = trace.makespan();
  return out;
}

}  // namespace synthesis
