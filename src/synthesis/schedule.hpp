// Schedules: the projection of a concrete model trace onto the actions
// that drive the physical plant (paper Section 6 / Table 2).
//
// Every plant-relevant edge in the model carries a label of the form
// "<Unit>.<Command>" (e.g. "Load1.Track1Right", "Crane2.Pickup4",
// "Caster.Start1"); projection keeps exactly those labels together with
// their concrete timestamps and derives the Delay() lines between them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/trace.hpp"
#include "ta/system.hpp"

namespace synthesis {

/// One command of a schedule, with its structured interpretation.
struct ScheduleItem {
  int64_t time = 0;     ///< absolute model time the command fires
  std::string unit;     ///< "Load1", "Crane2", "Caster", ...
  std::string command;  ///< "Track1Right", "Pickup4", "Start1", ...

  [[nodiscard]] std::string text() const { return unit + "." + command; }
};

struct Schedule {
  std::vector<ScheduleItem> items;
  int64_t makespan = 0;

  /// Render in the paper's Table 2 style: Delay(d) lines interleaved
  /// with Unit.Command lines.
  [[nodiscard]] std::string toText() const;
};

/// Project a concrete trace to the plant schedule: keep the steps whose
/// fired edges carry "Unit.Command" labels, in timestamp order.
[[nodiscard]] Schedule project(const ta::System& sys,
                               const engine::ConcreteTrace& trace);

}  // namespace synthesis
