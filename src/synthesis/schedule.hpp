// Schedules: the projection of a concrete model trace onto the actions
// that drive the physical plant (paper Section 6 / Table 2).
//
// Every plant-relevant edge in the model carries a label of the form
// "<Unit>.<Command>" (e.g. "Load1.Track1Right", "Crane2.Pickup4",
// "Caster.Start1"); projection keeps exactly those labels together with
// their concrete timestamps and derives the Delay() lines between them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/options.hpp"
#include "engine/reachability.hpp"
#include "engine/stats.hpp"
#include "engine/trace.hpp"
#include "ta/system.hpp"

namespace synthesis {

/// One command of a schedule, with its structured interpretation.
struct ScheduleItem {
  int64_t time = 0;     ///< absolute model time the command fires
  std::string unit;     ///< "Load1", "Crane2", "Caster", ...
  std::string command;  ///< "Track1Right", "Pickup4", "Start1", ...

  [[nodiscard]] std::string text() const { return unit + "." + command; }
};

struct Schedule {
  std::vector<ScheduleItem> items;
  int64_t makespan = 0;

  /// Render in the paper's Table 2 style: Delay(d) lines interleaved
  /// with Unit.Command lines.
  [[nodiscard]] std::string toText() const;
};

/// Project a concrete trace to the plant schedule: keep the steps whose
/// fired edges carry "Unit.Command" labels, in timestamp order.
[[nodiscard]] Schedule project(const ta::System& sys,
                               const engine::ConcreteTrace& trace);

// -- Makespan optimization ----------------------------------------------
//
// Two interchangeable optimizers over the same model:
//  - kBinary: the paper-era technique — binary-search the smallest B
//    for which `goal && makespan <= B` is reachable, one full
//    reachability sweep per probe.
//  - kBestFirst: one cost-ordered A* run over priced zones
//    (engine::BestFirst), seeded with the first-found schedule as the
//    initial incumbent. Anytime: every improving incumbent is recorded.
// Both return the same optimal makespan (the differential test in
// tests/best_first_test.cpp holds them to that), so kBinary doubles as
// the oracle for the best-first engine.

enum class Optimizer { kBinary, kBestFirst };

/// Parse "binary" / "bestfirst"; returns false on anything else.
[[nodiscard]] bool parseOptimizer(const std::string& s, Optimizer* out);

struct OptimizeOptions {
  Optimizer optimizer = Optimizer::kBinary;
  /// Base engine options. softGuides are consumed by kBestFirst only;
  /// order/threads/portfolio apply to the kBinary probes and to the
  /// first-found bootstrap run of either optimizer.
  engine::Options engine;
  /// Per-process heuristic target locations for the best-first
  /// remaining-time bound; empty = derive from the goal's locations.
  std::vector<std::vector<ta::LocId>> heuristicTargets;
};

struct OptimizeResult {
  bool feasible = false;  ///< some schedule reaches the goal
  bool optimal = false;   ///< the optimum was proven (no cut-off)
  int64_t firstMakespan = -1;    ///< first-found DFS baseline
  int64_t optimalMakespan = -1;  ///< proven optimum (== best incumbent
                                 ///< when !optimal)
  /// Best-first only: cost of the optimal trace including soft-guide
  /// penalties (== optimalMakespan when no guides are set).
  int64_t cost = -1;
  Schedule schedule;  ///< concrete optimal schedule (projected)
  /// Last / only optimizing run; for kBinary the probe totals are
  /// accumulated into statesExplored/statesGenerated/seconds.
  engine::Stats stats;
  size_t runs = 0;  ///< reachability probes (kBinary) or 1 (kBestFirst)
  /// Monotonically improving makespans in discovery order. For kBinary
  /// these are the feasible probe bounds; for kBestFirst the anytime
  /// incumbent stream.
  std::vector<int64_t> incumbents;
  double seconds = 0.0;  ///< wall time of the whole optimization
};

/// Find the time-optimal schedule of `sys` for `goal`, measured on the
/// never-reset clock `makespanClock`. The system must be finalized.
[[nodiscard]] OptimizeResult optimizeMakespan(const ta::System& sys,
                                              const engine::Goal& goal,
                                              ta::ClockId makespanClock,
                                              const OptimizeOptions& opts);

}  // namespace synthesis
