#include "synthesis/rcx_codegen.hpp"

#include <map>
#include <sstream>

namespace synthesis {

namespace {

// Register conventions (as in Figure 6): var 1 holds the last received
// message, var 2 counts unacknowledged polls. The hardened segment adds
// var 3 (current resend threshold, grown by the backoff) and var 4 (the
// per-command watchdog budget counter).
constexpr int32_t kAckVar = 1;
constexpr int32_t kCtrVar = 2;
constexpr int32_t kThreshVar = 3;
constexpr int32_t kWdVar = 4;

}  // namespace

bool parseResendPolicy(const std::string& s, ResendPolicy* out) {
  if (s == "eager") {
    *out = ResendPolicy::kEager;
    return true;
  }
  if (s == "backoff") {
    *out = ResendPolicy::kBackoff;
    return true;
  }
  if (s == "auto") {
    *out = ResendPolicy::kAuto;
    return true;
  }
  return false;
}

const char* resendPolicyName(ResendPolicy p) {
  switch (p) {
    case ResendPolicy::kEager: return "eager";
    case ResendPolicy::kBackoff: return "backoff";
    case ResendPolicy::kAuto: return "auto";
  }
  return "?";
}

RcxProgram synthesize(const Schedule& schedule, const CodegenOptions& opts) {
  RcxProgram prog;

  // One message id per schedule item (not per distinct command text):
  // the local controllers treat a repeated id as a retry of a command
  // they already executed, so legitimately repeated commands need fresh
  // ids.  (The real RCX is limited to one message byte; we do not
  // emulate that restriction.)
  const auto commandId = [&](const ScheduleItem& item) {
    const auto id = static_cast<int32_t>(prog.commands.size()) + 1;
    prog.commands.push_back(RcxCommand{item.unit, item.command, id});
    return id;
  };

  const auto emit = [&](RcxOp op, int32_t a, int32_t b, std::string comment) {
    prog.code.push_back(RcxInstr{op, a, b, std::move(comment)});
  };

  // Delays are emitted as plain relative waits (exactly Figure 6's
  // shape).  Command segments cost extra ticks on top, so the program
  // can only run *later* than the ideal schedule — never earlier — and
  // every model-derived minimum separation (move durations, treatment
  // times) is preserved.  Use a tick resolution that makes the segment
  // overhead small against one model time unit; the plant's timing
  // tolerance absorbs the residual drift.
  int64_t now = 0;  // schedule time already covered, in time units
  for (const ScheduleItem& item : schedule.items) {
    if (item.time > now) {
      const int64_t delay = item.time - now;
      emit(RcxOp::kWait,
           static_cast<int32_t>(delay * opts.ticksPerTimeUnit), 0,
           "Delay " + std::to_string(delay));
      now = item.time;
    }
    const int32_t id = commandId(item);
    if (!opts.hardenedSegment()) {
      // The in-lined send + acknowledge-retry segment of Figure 6.
      emit(RcxOp::kPlaySystemSound, 1, 0, item.text());
      emit(RcxOp::kSendPBMessage, id, 0,
           "send " + item.command + " to " + item.unit);
      emit(RcxOp::kSetVar, kAckVar, 0, "wait for ack");
      emit(RcxOp::kWhileVarNe, kAckVar, id, "");
      emit(RcxOp::kWait, opts.ackPollTicks, 0, "");
      emit(RcxOp::kSetVarFromMsg, kAckVar, 0, "read the message");
      emit(RcxOp::kClearPBMessage, 0, 0, "");
      emit(RcxOp::kSumVar, kCtrVar, 1, "");
      emit(RcxOp::kIfVarGe, kCtrVar, opts.resendAfterPolls,
           "if looped " + std::to_string(opts.resendAfterPolls) + " times");
      emit(RcxOp::kPlaySystemSound, 1, 0, "");
      emit(RcxOp::kSendPBMessage, id, 0, "then send message again");
      emit(RcxOp::kSetVar, kCtrVar, 0, "");
      emit(RcxOp::kEndIf, 0, 0, "");
      emit(RcxOp::kEndWhile, 0, 0, "");
      emit(RcxOp::kSetVar, kCtrVar, 0, "");
      continue;
    }
    // The hardened segment: same shape, plus exponential backoff on
    // resends, a per-command watchdog budget, and optionally
    // duplicate-ack tolerance.
    emit(RcxOp::kPlaySystemSound, 1, 0, item.text());
    emit(RcxOp::kSendPBMessage, id, 0,
         "send " + item.command + " to " + item.unit);
    emit(RcxOp::kSetVar, kAckVar, 0, "wait for ack");
    emit(RcxOp::kSetVar, kCtrVar, 0, "");
    emit(RcxOp::kSetVar, kThreshVar, opts.resendAfterPolls,
         "initial resend threshold");
    if (opts.watchdogPolls > 0) {
      emit(RcxOp::kSetVar, kWdVar, 0, "fresh watchdog budget");
    }
    emit(RcxOp::kWhileVarNe, kAckVar, id, "");
    emit(RcxOp::kWait, opts.ackPollTicks, 0, "");
    emit(RcxOp::kSetVarFromMsg, kAckVar, 0, "read the message");
    emit(RcxOp::kClearPBMessage, 0, 0, "");
    emit(RcxOp::kSumVar, kCtrVar, 1, "");
    if (opts.watchdogPolls > 0) {
      emit(RcxOp::kSumVar, kWdVar, 1, "");
    }
    if (opts.tolerateDuplicateAcks) {
      // A non-zero read that is not the awaited id is a stale or
      // duplicated ack, not silence: give the poll back to the resend
      // counter (and the watchdog). When the read IS the awaited id the
      // loop exits anyway, so the refund is harmless.
      emit(RcxOp::kIfVarGe, kAckVar, 1, "stale/duplicate ack: free poll");
      emit(RcxOp::kSumVar, kCtrVar, -1, "");
      if (opts.watchdogPolls > 0) {
        emit(RcxOp::kSumVar, kWdVar, -1, "");
      }
      emit(RcxOp::kEndIf, 0, 0, "");
    }
    if (opts.watchdogPolls > 0) {
      emit(RcxOp::kIfVarGe, kWdVar, opts.watchdogPolls,
           "watchdog: unit silent for " + std::to_string(opts.watchdogPolls) +
               " polls");
      emit(RcxOp::kPlaySystemSound, CodegenOptions::kFailSound, 0,
           "fail sound");
      emit(RcxOp::kHalt, 0, 0, "give up: plant needs intervention");
      emit(RcxOp::kEndIf, 0, 0, "");
    }
    emit(RcxOp::kIfVarGeVar, kCtrVar, kThreshVar, "threshold polls elapsed");
    emit(RcxOp::kPlaySystemSound, 1, 0, "");
    emit(RcxOp::kSendPBMessage, id, 0, "then send message again");
    emit(RcxOp::kSetVar, kCtrVar, 0, "");
    if (opts.backoffFactor > 1) {
      emit(RcxOp::kMulVar, kThreshVar, opts.backoffFactor,
           "exponential backoff");
      emit(RcxOp::kIfVarGe, kThreshVar, opts.backoffCapPolls, "");
      emit(RcxOp::kSetVar, kThreshVar, opts.backoffCapPolls, "backoff cap");
      emit(RcxOp::kEndIf, 0, 0, "");
    }
    emit(RcxOp::kEndIf, 0, 0, "");
    emit(RcxOp::kEndWhile, 0, 0, "");
    emit(RcxOp::kSetVar, kCtrVar, 0, "");
  }
  return prog;
}

std::string RcxProgram::toText() const {
  std::ostringstream os;
  int indent = 0;
  for (const RcxInstr& ins : code) {
    std::string line;
    switch (ins.op) {
      case RcxOp::kPlaySystemSound:
        line = "PB.PlaySystemSound " + std::to_string(ins.a);
        break;
      case RcxOp::kSendPBMessage:
        line = "PB.SendPBMessage 2, " + std::to_string(ins.a);
        break;
      case RcxOp::kSetVar:
        line = "PB.SetVar " + std::to_string(ins.a) + ", 2, " +
               std::to_string(ins.b);
        break;
      case RcxOp::kSetVarFromMsg:
        line = "PB.SetVar " + std::to_string(ins.a) + ", 15, 0";
        break;
      case RcxOp::kSumVar:
        line = "PB.SumVar " + std::to_string(ins.a) + ", 2, " +
               std::to_string(ins.b);
        break;
      case RcxOp::kMulVar:
        line = "PB.MulVar " + std::to_string(ins.a) + ", 2, " +
               std::to_string(ins.b);
        break;
      case RcxOp::kClearPBMessage:
        line = "PB.ClearPBMessage";
        break;
      case RcxOp::kWait:
        line = "PB.Wait 2, " + std::to_string(ins.a);
        break;
      case RcxOp::kWhileVarNe:
        line = "PB.While 0, " + std::to_string(ins.a) + ", 3, 2, " +
               std::to_string(ins.b);
        break;
      case RcxOp::kEndWhile:
        --indent;
        line = "PB.EndWhile";
        break;
      case RcxOp::kIfVarGe:
        line = "PB.If 0, " + std::to_string(ins.a) + ", 2, 2, " +
               std::to_string(ins.b);
        break;
      case RcxOp::kIfVarGeVar:
        line = "PB.If 0, " + std::to_string(ins.a) + ", 2, 0, " +
               std::to_string(ins.b);
        break;
      case RcxOp::kEndIf:
        --indent;
        line = "PB.EndIf";
        break;
      case RcxOp::kHalt:
        line = "PB.StopAllTasks";
        break;
    }
    for (int k = 0; k < indent; ++k) os << "  ";
    os << line;
    if (!ins.comment.empty()) os << "\t' " << ins.comment;
    os << "\n";
    if (ins.op == RcxOp::kWhileVarNe || ins.op == RcxOp::kIfVarGe ||
        ins.op == RcxOp::kIfVarGeVar) {
      ++indent;
    }
  }
  return os.str();
}

}  // namespace synthesis
