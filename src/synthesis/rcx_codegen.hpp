// Synthesis of RCX central-controller programs from schedules
// (paper Section 6, Figure 6).
//
// The LEGO plant's inter-brick communication is unreliable and slow,
// and the only feedback from the local controllers is an
// acknowledgement of each received command.  Every schedule line is
// therefore translated into an in-lined code segment that sends the
// command, polls for the acknowledgement, and re-sends after a number
// of failed polls; Delay lines become Wait instructions.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "synthesis/schedule.hpp"

namespace synthesis {

/// The RCX instruction subset Figure 6 uses. Programs are flat with
/// matching End markers (the RCX language has no procedure calls —
/// "the code has to be in-lined").
enum class RcxOp : uint8_t {
  kPlaySystemSound,  ///< a = sound id
  kSendPBMessage,    ///< a = message id (the command)
  kSetVar,           ///< a = var, b = constant
  kSetVarFromMsg,    ///< a = var := last received message
  kSumVar,           ///< a = var, b = constant (var += b)
  kMulVar,           ///< a = var, b = constant (var *= b)
  kClearPBMessage,
  kWait,             ///< a = ticks
  kWhileVarNe,       ///< a = var, b = constant; loop while var != b
  kEndWhile,
  kIfVarGe,          ///< a = var, b = constant
  kIfVarGeVar,       ///< a = var, b = var (var[a] >= var[b])
  kEndIf,
  kHalt,             ///< stop the program (watchdog exhaustion)
};

struct RcxInstr {
  RcxOp op;
  int32_t a = 0;
  int32_t b = 0;
  std::string comment;
};

struct RcxCommand {
  std::string unit;
  std::string command;
  int32_t msgId = 0;
};

struct RcxProgram {
  std::vector<RcxInstr> code;
  /// Message-id table: what each SendPBMessage id means. The local
  /// controllers acknowledge a command by echoing its message id.
  std::vector<RcxCommand> commands;

  [[nodiscard]] const RcxCommand* commandById(int32_t msgId) const {
    // Ids are assigned densely from 1 in emission order.
    if (msgId < 1 || static_cast<size_t>(msgId) > commands.size())
      return nullptr;
    return &commands[static_cast<size_t>(msgId) - 1];
  }

  /// Figure 6-style rendering ("PB.SendPBMessage 2, 99  ' Move up...").
  [[nodiscard]] std::string toText() const;
};

/// Resend discipline of the hardened retry segment. The PR-5 campaign
/// finding: exponential backoff wins on bursty channels (a retry storm
/// rides out the bad state) but LOSES under heavy i.i.d. loss, where
/// every resend is an independent trial and waiting longer between
/// them only stretches the schedule. kAuto picks per fault plan.
enum class ResendPolicy : uint8_t {
  kEager,    ///< fixed Figure-6 threshold (backoffFactor 1)
  kBackoff,  ///< exponential backoff, x2 capped
  kAuto,     ///< eager under high configured i.i.d. loss, else backoff
};

[[nodiscard]] bool parseResendPolicy(const std::string& s, ResendPolicy* out);
[[nodiscard]] const char* resendPolicyName(ResendPolicy p);

struct CodegenOptions {
  /// Fine-grained simulator ticks per model time unit (the paper's
  /// Delay 12 becomes PB.Wait 2, 1200 — 100 ticks per unit).
  int32_t ticksPerTimeUnit = 100;
  /// Poll interval inside the acknowledgement loop (PB.Wait 2, 20).
  int32_t ackPollTicks = 20;
  /// Re-send the command after this many unacknowledged polls
  /// ("If looped 20 times ... Then Send message, again").
  int32_t resendAfterPolls = 20;

  // -- Hardening (all off by default: the defaults emit exactly the
  //    classic Figure-6 retry segment). See hardened() for the tuned
  //    profile the fault campaigns gate on. ----------------------------

  /// Exponential backoff: after every resend the poll threshold is
  /// multiplied by this factor (1 = the fixed Figure-6 threshold).
  /// Backoff keeps a retry storm from congesting a bursty channel.
  int32_t backoffFactor = 1;
  /// Threshold ceiling for the backoff, in polls (ignored when
  /// backoffFactor == 1).
  int32_t backoffCapPolls = 160;
  /// Per-command watchdog: after this many total unacknowledged polls
  /// the program plays kFailSound and halts instead of looping forever
  /// (a silent unit means the schedule's timing is already lost — the
  /// paper's plant would need operator intervention). 0 = no watchdog.
  int32_t watchdogPolls = 0;
  /// Duplicate-ack tolerance: polls that read a stale or duplicated
  /// acknowledgement (any non-zero message other than the awaited id)
  /// do not count toward the resend threshold or the watchdog budget,
  /// so an ack storm from a duplicating channel cannot trigger spurious
  /// resends or a spurious watchdog halt.
  bool tolerateDuplicateAcks = false;

  /// Sound id the watchdog plays before halting.
  static constexpr int32_t kFailSound = 6;

  /// The hardened profile the robustness campaign gates on: exponential
  /// backoff (x2, capped), duplicate-ack tolerance, and a watchdog
  /// budget derived from the schedule slack the plant tolerates:
  /// slackTicks of silent polling per command before giving up.
  [[nodiscard]] static CodegenOptions hardened(
      int32_t ticksPerTimeUnit = 100, int64_t slackTicks = 3000,
      ResendPolicy policy = ResendPolicy::kBackoff) {
    CodegenOptions o;
    o.ticksPerTimeUnit = ticksPerTimeUnit;
    o.backoffFactor = policy == ResendPolicy::kEager ? 1 : 2;
    o.backoffCapPolls = 160;
    o.tolerateDuplicateAcks = true;
    // The watchdog must out-wait any recoverable outage, so budget a
    // generous multiple of the per-command slack; the point is to bound
    // a *permanently* silent unit, not to race the retry loop.
    o.watchdogPolls = static_cast<int32_t>(
        std::max<int64_t>(20 * o.resendAfterPolls,
                          8 * slackTicks / std::max(1, o.ackPollTicks)));
    return o;
  }

  /// Resolve kAuto against the configured channel: heavy independent
  /// loss (>= 10% per direction) wants eager resends, anything bursty
  /// or mild wants backoff. `iidLossProb` is the per-direction i.i.d.
  /// loss probability the run is configured with.
  [[nodiscard]] static ResendPolicy resolveResend(ResendPolicy p,
                                                  double iidLossProb) {
    if (p != ResendPolicy::kAuto) return p;
    return iidLossProb >= 0.10 ? ResendPolicy::kEager
                               : ResendPolicy::kBackoff;
  }

  [[nodiscard]] bool hardenedSegment() const noexcept {
    return backoffFactor > 1 || watchdogPolls > 0 || tolerateDuplicateAcks;
  }
};

/// Translate a schedule into a central-controller program: each command
/// becomes a send + ack-retry segment, each gap a Wait.
[[nodiscard]] RcxProgram synthesize(const Schedule& schedule,
                                    const CodegenOptions& opts = {});

}  // namespace synthesis
