// Synthesis of RCX central-controller programs from schedules
// (paper Section 6, Figure 6).
//
// The LEGO plant's inter-brick communication is unreliable and slow,
// and the only feedback from the local controllers is an
// acknowledgement of each received command.  Every schedule line is
// therefore translated into an in-lined code segment that sends the
// command, polls for the acknowledgement, and re-sends after a number
// of failed polls; Delay lines become Wait instructions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "synthesis/schedule.hpp"

namespace synthesis {

/// The RCX instruction subset Figure 6 uses. Programs are flat with
/// matching End markers (the RCX language has no procedure calls —
/// "the code has to be in-lined").
enum class RcxOp : uint8_t {
  kPlaySystemSound,  ///< a = sound id
  kSendPBMessage,    ///< a = message id (the command)
  kSetVar,           ///< a = var, b = constant
  kSetVarFromMsg,    ///< a = var := last received message
  kSumVar,           ///< a = var, b = constant (var += b)
  kClearPBMessage,
  kWait,             ///< a = ticks
  kWhileVarNe,       ///< a = var, b = constant; loop while var != b
  kEndWhile,
  kIfVarGe,          ///< a = var, b = constant
  kEndIf,
};

struct RcxInstr {
  RcxOp op;
  int32_t a = 0;
  int32_t b = 0;
  std::string comment;
};

struct RcxCommand {
  std::string unit;
  std::string command;
  int32_t msgId = 0;
};

struct RcxProgram {
  std::vector<RcxInstr> code;
  /// Message-id table: what each SendPBMessage id means. The local
  /// controllers acknowledge a command by echoing its message id.
  std::vector<RcxCommand> commands;

  [[nodiscard]] const RcxCommand* commandById(int32_t msgId) const {
    // Ids are assigned densely from 1 in emission order.
    if (msgId < 1 || static_cast<size_t>(msgId) > commands.size())
      return nullptr;
    return &commands[static_cast<size_t>(msgId) - 1];
  }

  /// Figure 6-style rendering ("PB.SendPBMessage 2, 99  ' Move up...").
  [[nodiscard]] std::string toText() const;
};

struct CodegenOptions {
  /// Fine-grained simulator ticks per model time unit (the paper's
  /// Delay 12 becomes PB.Wait 2, 1200 — 100 ticks per unit).
  int32_t ticksPerTimeUnit = 100;
  /// Poll interval inside the acknowledgement loop (PB.Wait 2, 20).
  int32_t ackPollTicks = 20;
  /// Re-send the command after this many unacknowledged polls
  /// ("If looped 20 times ... Then Send message, again").
  int32_t resendAfterPolls = 20;
};

/// Translate a schedule into a central-controller program: each command
/// becomes a send + ack-retry segment, each gap a Wait.
[[nodiscard]] RcxProgram synthesize(const Schedule& schedule,
                                    const CodegenOptions& opts = {});

}  // namespace synthesis
