// A small interpreter for the RCX-like central-controller programs the
// synthesizer emits (see synthesis/rcx_codegen.hpp).
//
// The VM is host-agnostic: message sends, message reads, and sounds go
// through a Host interface, so unit tests can drive it without the
// physical-plant simulator.  Every instruction costs `instrTicks`
// simulated ticks (the RCX is slow), Wait costs its operand.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "synthesis/rcx_codegen.hpp"

namespace rcx {

struct VmHost {
  /// Broadcast a message (a command id) to the plant units.
  std::function<void(int32_t msgId, int64_t tick)> send;
  /// Last received message, 0 if none.
  std::function<int32_t()> readMessage;
  std::function<void()> clearMessage;
  std::function<void(int32_t sound)> playSound;
};

class RcxVm {
 public:
  RcxVm(const synthesis::RcxProgram& program, VmHost host,
        int32_t instrTicks = 1);

  /// True when the program has run to completion (including a halt).
  [[nodiscard]] bool finished() const noexcept {
    return pc_ >= program_->code.size();
  }

  /// True when the program stopped via kHalt (the hardened codegen's
  /// watchdog-exhaustion path) rather than by running off the end.
  [[nodiscard]] bool halted() const noexcept { return halted_; }

  /// Tick at which the VM next wants to run (it may be waiting).
  [[nodiscard]] int64_t nextWakeTick() const noexcept { return wake_; }

  /// Rebase the VM's wait clock so the program's time 0 is `tick`.
  /// A spliced repair program is numbered relative to its own segment
  /// start; without the rebase, run(now) at a large absolute `now`
  /// would burn through every Wait (and the watchdog's poll budget) in
  /// a single call.
  void startAt(int64_t tick) noexcept { wake_ = tick; }

  /// Execute instructions until the VM blocks on a Wait that ends
  /// after `now`, or the program ends.  `now` is the current tick.
  void run(int64_t now);

  [[nodiscard]] int64_t sendsIssued() const noexcept { return sends_; }

 private:
  const synthesis::RcxProgram* program_;
  VmHost host_;
  int32_t instrTicks_;
  size_t pc_ = 0;
  int64_t wake_ = 0;
  int64_t sends_ = 0;
  bool halted_ = false;
  std::vector<int32_t> vars_;
  /// Matching jump targets, precomputed: for While -> index of its
  /// EndWhile, for If -> its EndIf, and EndWhile -> its While.
  std::vector<size_t> match_;
};

}  // namespace rcx
