#include "rcx/plant_sim.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "rcx/vm.hpp"

namespace rcx {

namespace {

struct InFlight {
  int64_t deliverAt;
  int32_t msgId;
  bool towardCentral;  ///< ack (unit -> central) vs command
};

}  // namespace

SimResult runProgram(const synthesis::RcxProgram& program,
                     const plant::PlantConfig& cfg, int32_t ticksPerTimeUnit,
                     const SimOptions& opts) {
  SimResult res;
  PlantPhysics physics(cfg, ticksPerTimeUnit, opts.slackTicks);
  const FaultPlan plan = opts.effectiveFaults();
  FaultChannel chan(plan, opts.seed);
  physics.setDriftProvider(
      [&chan](const std::string& unit) { return chan.driftFactor(unit); });

  // The units the crash process can take down: every distinct command
  // target of the program.
  std::vector<std::string> units;
  {
    std::set<std::string> seen;
    for (const synthesis::RcxCommand& c : program.commands) {
      if (seen.insert(c.unit).second) units.push_back(c.unit);
    }
  }

  std::deque<InFlight> air;
  int32_t centralMsgBuffer = 0;
  // Per-unit dedup: the last message id a unit executed. Resent
  // commands (lost acks) and channel-duplicated copies must not
  // re-execute.
  std::map<std::string, int32_t> lastExecuted;

  VmHost host;
  host.send = [&](int32_t msgId, int64_t tick) {
    ++res.commandsSent;
    const auto copies = chan.offer(/*towardCentral=*/false);
    if (copies.empty()) return;  // the ether ate it
    for (const Delivery& d : copies) {
      air.push_back(
          InFlight{tick + opts.latencyTicks + d.extraTicks, msgId, false});
    }
  };
  host.readMessage = [&] { return centralMsgBuffer; };
  host.clearMessage = [&] { centralMsgBuffer = 0; };

  RcxVm vm(program, host, opts.instrTicks);

  int64_t tick = 0;
  for (; tick < opts.maxTicks; ++tick) {
    // Crash processes first: a unit that dies at this tick loses its
    // pending traffic (commands still in the air toward it, acks it
    // already emitted) along with the command it was about to receive.
    if (plan.crash.enabled()) {
      for (const std::string& u : chan.stepCrashes(tick, units)) {
        const auto dead = [&](const InFlight& m) {
          const synthesis::RcxCommand* c = program.commandById(m.msgId);
          if (c == nullptr || c->unit != u) return false;
          ++res.crashDropped;
          return true;
        };
        air.erase(std::remove_if(air.begin(), air.end(), dead), air.end());
      }
    }

    vm.run(tick);
    // Deliver due messages.
    for (size_t i = 0; i < air.size();) {
      if (air[i].deliverAt > tick) {
        ++i;
        continue;
      }
      const InFlight m = air[i];
      air.erase(air.begin() + static_cast<std::ptrdiff_t>(i));
      if (m.towardCentral) {
        centralMsgBuffer = m.msgId;
        continue;
      }
      const synthesis::RcxCommand* c = program.commandById(m.msgId);
      if (c == nullptr) continue;  // stray message
      if (plan.crash.enabled() && chan.isDown(c->unit, tick)) {
        ++res.crashDropped;  // the unit is silent: command dies unheard
        continue;
      }
      auto [it, fresh] = lastExecuted.try_emplace(c->unit, 0);
      if (it->second != m.msgId) {
        physics.command(c->unit, c->command, tick);
        it->second = m.msgId;
      } else {
        ++res.duplicatesIgnored;
      }
      // Acknowledge receipt (the return path is equally adversarial).
      for (const Delivery& d : chan.offer(/*towardCentral=*/true)) {
        air.push_back(InFlight{tick + opts.latencyTicks + d.extraTicks,
                               m.msgId, true});
      }
    }
    physics.step(tick);
    if (vm.finished() && air.empty()) break;
  }

  // Let outstanding physical actions (final lowering etc.) finish.
  const int64_t drain =
      tick + (static_cast<int64_t>(cfg.tcast) + cfg.cupdown + cfg.cmove) *
                 ticksPerTimeUnit;
  for (; tick < drain; ++tick) physics.step(tick);

  physics.finish(tick);
  res.watchdogHalted = vm.halted();
  res.programCompleted = vm.finished() && !vm.halted();
  res.allExited = physics.allExited();
  res.exited = physics.exitedCount();
  res.errors = physics.errors();
  res.ticks = tick;
  // Channel-side statistics (the i.i.d. and burst losses both count as
  // "lost" for the direction they were travelling).
  res.commandsLost = chan.lossesCommand();
  res.acksLost = chan.lossesAck();
  res.duplicatesInjected = chan.duplicates();
  res.reordered = chan.reorders();
  res.crashes = chan.crashes();
  // Burst losses are not attributed per direction by the channel; fold
  // them into the command counter so totals still add up.
  res.commandsLost += chan.burstLosses();
  return res;
}

}  // namespace rcx
