#include "rcx/plant_sim.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "rcx/vm.hpp"

namespace rcx {

namespace {

struct InFlight {
  int64_t deliverAt;
  int32_t msgId;
  bool towardCentral;  ///< ack (unit -> central) vs command
};

}  // namespace

SimResult runProgram(const synthesis::RcxProgram& program,
                     const plant::PlantConfig& cfg, int32_t ticksPerTimeUnit,
                     const SimOptions& opts) {
  SimResult res;
  PlantPhysics physics(cfg, ticksPerTimeUnit, opts.slackTicks);
  const FaultPlan plan = opts.effectiveFaults();
  FaultChannel chan(plan, opts.seed);
  physics.setDriftProvider(
      [&chan](const std::string& unit) { return chan.driftFactor(unit); });
  if (opts.resume != nullptr) {
    // Splice: keep unit clock speeds and crash downtimes across the
    // segment boundary, then adopt the snapshotted plant state.
    chan.presetDrift(opts.resume->unitDrift);
    chan.presetDownUntil(opts.resume->downUntil);
    physics.restore(*opts.resume);
  }

  // The units the crash process can take down: every distinct command
  // target of the program.
  std::vector<std::string> units;
  {
    std::set<std::string> seen;
    for (const synthesis::RcxCommand& c : program.commands) {
      if (seen.insert(c.unit).second) units.push_back(c.unit);
    }
  }

  std::deque<InFlight> air;
  int32_t centralMsgBuffer = 0;
  // Per-unit dedup: the last message id a unit executed. Resent
  // commands (lost acks) and channel-duplicated copies must not
  // re-execute. Repair programs number their commands afresh and the
  // splice drops stale traffic, so a resumed segment starts clean.
  std::map<std::string, int32_t> lastExecuted;

  VmHost host;
  host.send = [&](int32_t msgId, int64_t tick) {
    ++res.commandsSent;
    const auto copies = chan.offer(/*towardCentral=*/false);
    if (copies.empty()) return;  // the ether ate it
    for (const Delivery& d : copies) {
      air.push_back(
          InFlight{tick + opts.latencyTicks + d.extraTicks, msgId, false});
    }
  };
  host.readMessage = [&] { return centralMsgBuffer; };
  host.clearMessage = [&] { centralMsgBuffer = 0; };

  RcxVm vm(program, host, opts.instrTicks);
  if (opts.resume != nullptr) vm.startAt(opts.startTick);

  // Fatal-deviation detection state.
  DeviationKind fatal = DeviationKind::kNone;
  std::string fatalDetail;
  size_t errorsSeen = 0;

  int64_t tick = opts.resume != nullptr ? opts.startTick : 0;
  for (; tick < opts.maxTicks; ++tick) {
    // Crash processes first: a unit that dies at this tick loses its
    // pending traffic (commands still in the air toward it, acks it
    // already emitted) along with the command it was about to receive.
    if (plan.crash.enabled()) {
      for (const std::string& u : chan.stepCrashes(tick, units)) {
        const auto dead = [&](const InFlight& m) {
          const synthesis::RcxCommand* c = program.commandById(m.msgId);
          if (c == nullptr || c->unit != u) return false;
          ++res.crashDropped;
          return true;
        };
        air.erase(std::remove_if(air.begin(), air.end(), dead), air.end());
      }
    }

    vm.run(tick);
    // Deliver due messages.
    for (size_t i = 0; i < air.size();) {
      if (air[i].deliverAt > tick) {
        ++i;
        continue;
      }
      const InFlight m = air[i];
      air.erase(air.begin() + static_cast<std::ptrdiff_t>(i));
      if (m.towardCentral) {
        centralMsgBuffer = m.msgId;
        continue;
      }
      const synthesis::RcxCommand* c = program.commandById(m.msgId);
      if (c == nullptr) continue;  // stray message
      if (plan.crash.enabled() && chan.isDown(c->unit, tick)) {
        ++res.crashDropped;  // the unit is silent: command dies unheard
        continue;
      }
      auto [it, fresh] = lastExecuted.try_emplace(c->unit, 0);
      if (it->second != m.msgId) {
        physics.command(c->unit, c->command, tick);
        it->second = m.msgId;
      } else {
        ++res.duplicatesIgnored;
      }
      // Acknowledge receipt (the return path is equally adversarial).
      for (const Delivery& d : chan.offer(/*towardCentral=*/true)) {
        air.push_back(InFlight{tick + opts.latencyTicks + d.extraTicks,
                               m.msgId, true});
      }
    }
    physics.step(tick);
    if (opts.snapshotOnFatal) {
      if (vm.halted()) {
        fatal = DeviationKind::kWatchdogHalt;
        fatalDetail = "watchdog exhausted waiting for an acknowledgement";
        break;
      }
      if (physics.errors().size() > errorsSeen) {
        fatal = DeviationKind::kPhysicsError;
        fatalDetail = physics.errors()[errorsSeen].what;
        break;
      }
    }
    if (vm.finished() && air.empty()) break;
  }

  const auto fillChannelStats = [&] {
    res.commandsLost = chan.lossesCommand();
    res.acksLost = chan.lossesAck();
    res.duplicatesInjected = chan.duplicates();
    res.reordered = chan.reorders();
    res.crashes = chan.crashes();
    // Burst losses are not attributed per direction by the channel;
    // fold them into the command counter so totals still add up.
    res.commandsLost += chan.burstLosses();
    res.unitDrift = chan.driftMap();
    res.lastExecuted = lastExecuted;
    for (const InFlight& m : air) {
      InFlightMsg msg;
      msg.deliverAt = m.deliverAt;
      msg.msgId = m.msgId;
      msg.towardCentral = m.towardCentral;
      if (const synthesis::RcxCommand* c = program.commandById(m.msgId);
          c != nullptr && !m.towardCentral) {
        msg.unit = c->unit;
        msg.command = c->command;
      }
      res.inFlight.push_back(msg);
    }
  };

  if (isFatal(fatal)) {
    // Abort the program, quiesce the plant (complete every transient
    // move/hoist; casting may continue), and capture the concrete
    // state for the replanner. New physics errors during quiescence
    // are part of the same deviation, not fresh ones.
    const int64_t deviationTick = tick;
    const int64_t deadline =
        tick +
        (static_cast<int64_t>(std::max({cfg.bmove, cfg.cmove, cfg.cupdown})) *
             2 +
         1) *
            ticksPerTimeUnit +
        opts.slackTicks;
    while (!physics.quiescent() && tick < deadline) {
      ++tick;
      physics.step(tick);
    }
    PlantSnapshot snap;
    physics.capture(&snap);
    snap.kind = fatal;
    snap.reason = fatalDetail.empty() && !physics.errors().empty()
                      ? physics.errors().front().what
                      : fatalDetail;
    snap.deviationTick = deviationTick;
    snap.tick = tick;
    snap.ticksPerTimeUnit = ticksPerTimeUnit;
    snap.lastExecuted = lastExecuted;
    fillChannelStats();
    snap.unitDrift = res.unitDrift;
    for (const auto& [unit, until] : chan.downUntilMap()) {
      if (until > tick) snap.downUntil[unit] = until;
    }
    snap.inFlight = res.inFlight;

    res.deviation = fatal;
    res.deviationDetail = snap.reason;
    res.snapshot = std::move(snap);
    res.watchdogHalted = vm.halted();
    res.programCompleted = false;
    res.allExited = physics.allExited();
    res.exited = physics.exitedCount();
    res.errors = physics.errors();
    res.ticks = tick;
    return res;
  }

  // Let outstanding physical actions (final lowering etc.) finish.
  const int64_t drain =
      tick + (static_cast<int64_t>(cfg.tcast) + cfg.cupdown + cfg.cmove) *
                 ticksPerTimeUnit;
  for (; tick < drain; ++tick) physics.step(tick);

  physics.finish(tick);
  res.watchdogHalted = vm.halted();
  res.programCompleted = vm.finished() && !vm.halted();
  res.allExited = physics.allExited();
  res.exited = physics.exitedCount();
  res.errors = physics.errors();
  res.ticks = tick;
  fillChannelStats();
  if (res.watchdogHalted) {
    res.deviation = DeviationKind::kWatchdogHalt;
    res.deviationDetail = "watchdog exhausted waiting for an acknowledgement";
  } else if (!res.errors.empty()) {
    res.deviation = DeviationKind::kPhysicsError;
    res.deviationDetail = res.errors.front().what;
  } else if (res.commandsLost + res.acksLost + res.duplicatesInjected +
                 res.reordered + res.crashes + res.crashDropped >
             0) {
    res.deviation = DeviationKind::kRecoverable;
  }
  return res;
}

}  // namespace rcx
