#include "rcx/plant_sim.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <random>

#include "rcx/vm.hpp"

namespace rcx {

namespace {

struct InFlight {
  int64_t deliverAt;
  int32_t msgId;
  bool towardCentral;  ///< ack (unit -> central) vs command
};

}  // namespace

SimResult runProgram(const synthesis::RcxProgram& program,
                     const plant::PlantConfig& cfg, int32_t ticksPerTimeUnit,
                     const SimOptions& opts) {
  SimResult res;
  PlantPhysics physics(cfg, ticksPerTimeUnit, opts.slackTicks);
  std::mt19937_64 rng(opts.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  std::deque<InFlight> air;
  int32_t centralMsgBuffer = 0;
  // Per-unit dedup: the last message id a unit executed. Resent
  // commands (lost acks) must not re-execute.
  std::map<std::string, int32_t> lastExecuted;

  VmHost host;
  host.send = [&](int32_t msgId, int64_t tick) {
    ++res.commandsSent;
    if (coin(rng) < opts.messageLossProb) {
      ++res.commandsLost;
      return;  // the ether ate it
    }
    air.push_back(InFlight{tick + opts.latencyTicks, msgId, false});
  };
  host.readMessage = [&] { return centralMsgBuffer; };
  host.clearMessage = [&] { centralMsgBuffer = 0; };

  RcxVm vm(program, host, opts.instrTicks);

  int64_t tick = 0;
  for (; tick < opts.maxTicks; ++tick) {
    vm.run(tick);
    // Deliver due messages.
    for (size_t i = 0; i < air.size();) {
      if (air[i].deliverAt > tick) {
        ++i;
        continue;
      }
      const InFlight m = air[i];
      air.erase(air.begin() + static_cast<std::ptrdiff_t>(i));
      if (m.towardCentral) {
        centralMsgBuffer = m.msgId;
        continue;
      }
      const synthesis::RcxCommand* c = program.commandById(m.msgId);
      if (c == nullptr) continue;  // stray message
      auto [it, fresh] = lastExecuted.try_emplace(c->unit, 0);
      if (it->second != m.msgId) {
        physics.command(c->unit, c->command, tick);
        it->second = m.msgId;
      } else {
        ++res.duplicatesIgnored;
      }
      // Acknowledge receipt (also lossy).
      if (coin(rng) < opts.messageLossProb) {
        ++res.acksLost;
      } else {
        air.push_back(
            InFlight{tick + opts.latencyTicks, m.msgId, true});
      }
    }
    physics.step(tick);
    if (vm.finished() && air.empty()) break;
  }

  // Let outstanding physical actions (final lowering etc.) finish.
  const int64_t drain =
      tick + (static_cast<int64_t>(cfg.tcast) + cfg.cupdown + cfg.cmove) *
                 ticksPerTimeUnit;
  for (; tick < drain; ++tick) physics.step(tick);

  physics.finish(tick);
  res.programCompleted = vm.finished();
  res.allExited = physics.allExited();
  res.exited = physics.exitedCount();
  res.errors = physics.errors();
  res.ticks = tick;
  return res;
}

}  // namespace rcx
