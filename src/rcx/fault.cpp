#include "rcx/fault.hpp"

namespace rcx {

FaultChannel::FaultChannel(const FaultPlan& plan, uint64_t seed)
    : plan_(plan),
      seed_(seed),
      cmdLossRng_(splitRng(seed, kCmdLoss)),
      ackLossRng_(splitRng(seed, kAckLoss)),
      burstRng_(splitRng(seed, kBurst)),
      dupRng_(splitRng(seed, kDuplicate)),
      reorderRng_(splitRng(seed, kReorder)),
      jitterRng_(splitRng(seed, kJitter)),
      crashRng_(splitRng(seed, kCrash)),
      driftRng_(splitRng(seed, kDrift)) {}

std::mt19937_64 FaultChannel::splitRng(uint64_t seed, uint32_t tag) {
  // seed_seq mixes all words, so (seed, tag) pairs give uncorrelated
  // streams even for adjacent seeds and tags.
  std::seed_seq seq{static_cast<uint32_t>(seed & 0xffffffffu),
                    static_cast<uint32_t>(seed >> 32), tag};
  return std::mt19937_64(seq);
}

bool FaultChannel::flip(std::mt19937_64& rng, double p) {
  if (p <= 0.0) return false;
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng) < p;
}

std::vector<Delivery> FaultChannel::offer(bool towardCentral) {
  std::vector<Delivery> out;

  // Direction-specific i.i.d. loss. Each direction consumes only its
  // own stream: an ack decision never advances the command stream.
  if (towardCentral) {
    if (flip(ackLossRng_, plan_.ackLossProb)) {
      ++lossAck_;
      return out;
    }
  } else {
    if (flip(cmdLossRng_, plan_.commandLossProb)) {
      ++lossCmd_;
      return out;
    }
  }

  // Bursty loss: one Gilbert–Elliott chain shared by both directions
  // (the physical medium is shared), stepped once per carried message.
  if (plan_.burst.enabled()) {
    burstBad_ = burstBad_ ? !flip(burstRng_, plan_.burst.pBadToGood)
                          : flip(burstRng_, plan_.burst.pGoodToBad);
    const double p = burstBad_ ? plan_.burst.lossBad : plan_.burst.lossGood;
    if (flip(burstRng_, p)) {
      ++lossBurst_;
      return out;
    }
  }

  Delivery first;
  if (plan_.jitterTicks > 0) {
    first.extraTicks = std::uniform_int_distribution<int32_t>(
        0, plan_.jitterTicks)(jitterRng_);
  }
  // Reordering: push this message past later traffic by an extra
  // jitter-window delay — the in-flight queue delivers strictly by due
  // tick, so a penalized message genuinely arrives after its
  // successors.
  if (flip(reorderRng_, plan_.reorderProb)) {
    ++reorders_;
    first.extraTicks += std::max<int32_t>(plan_.jitterTicks, 8) * 4;
  }
  out.push_back(first);

  if (flip(dupRng_, plan_.duplicateProb)) {
    ++dups_;
    Delivery dup = first;
    // The copy trails the original by a small offset (a retransmit echo
    // or a reflection, not a simultaneous twin).
    dup.extraTicks +=
        1 + std::uniform_int_distribution<int32_t>(
                0, std::max<int32_t>(plan_.jitterTicks, 4))(dupRng_);
    out.push_back(dup);
  }
  return out;
}

double FaultChannel::driftFactor(const std::string& unit) {
  // Preset factors (replan splice) win even when the plan draws none.
  const auto it = drift_.find(unit);
  if (it != drift_.end()) return it->second;
  if (plan_.driftPpm <= 0.0) return 1.0;
  const double ppm = std::uniform_real_distribution<double>(
      -plan_.driftPpm, plan_.driftPpm)(driftRng_);
  const double f = 1.0 + ppm / 1e6;
  drift_.emplace(unit, f);
  return f;
}

std::vector<std::string> FaultChannel::stepCrashes(
    int64_t tick, const std::vector<std::string>& units) {
  std::vector<std::string> crashed;
  if (!plan_.crash.enabled()) return crashed;
  for (const std::string& u : units) {
    const auto it = downUntil_.find(u);
    if (it != downUntil_.end() && tick < it->second) continue;  // still down
    if (flip(crashRng_, plan_.crash.crashPerTick)) {
      downUntil_[u] = tick + plan_.crash.downTicks;
      ++crashes_;
      crashed.push_back(u);
    }
  }
  return crashed;
}

bool FaultChannel::isDown(const std::string& unit, int64_t tick) const {
  const auto it = downUntil_.find(unit);
  return it != downUntil_.end() && tick < it->second;
}

}  // namespace rcx
