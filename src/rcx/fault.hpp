// Adversarial RCX channel: a composable fault model for the inter-brick
// messaging and the plant units (paper §6: "the communication between
// the RCX bricks is unreliable and slow", and three modelling errors
// only surfaced when the synthesized program ran on the real plant).
//
// The simulator used to model exactly one fault — i.i.d. message loss
// at a fixed probability. A `FaultPlan` composes the misbehaviours a
// physical plant actually exhibits: per-direction loss (commands and
// acknowledgements fail independently), bursty loss (a Gilbert–Elliott
// two-state channel), message duplication, reordering, latency jitter,
// local-controller crash/restart, and per-unit clock drift. Each fault
// source draws from its own PRNG stream split off the trial seed, so
// enabling one fault never perturbs the random decisions of another —
// Monte-Carlo campaigns stay comparable trial-by-trial across plans.
#pragma once

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

namespace rcx {

/// Gilbert–Elliott two-state loss model: the channel flips between a
/// Good and a Bad state once per carried message, and the loss
/// probability depends on the state. Captures the bursty dropouts of a
/// shared infrared medium that i.i.d. loss cannot (a retry storm right
/// after a loss is exactly when the channel is still bad).
struct GilbertElliott {
  double pGoodToBad = 0.0;  ///< P(Good -> Bad) evaluated per message
  double pBadToGood = 0.3;  ///< P(Bad -> Good) evaluated per message
  double lossGood = 0.0;    ///< loss probability while Good
  double lossBad = 1.0;     ///< loss probability while Bad

  [[nodiscard]] bool enabled() const noexcept { return pGoodToBad > 0.0; }
};

/// Local-controller crash/restart: a unit goes silent for `downTicks`
/// (it neither executes nor acknowledges anything; messages addressed
/// to it while down are lost — its pending command dies with it), then
/// restarts with no memory beyond its last-executed dedup id.
struct CrashPlan {
  double crashPerTick = 0.0;  ///< per-unit per-tick crash probability
  int64_t downTicks = 0;      ///< silence duration after a crash

  [[nodiscard]] bool enabled() const noexcept {
    return crashPerTick > 0.0 && downTicks > 0;
  }
};

/// The composed adversary. Default-constructed = a perfect channel.
struct FaultPlan {
  // -- Message loss ----------------------------------------------------
  double commandLossProb = 0.0;  ///< i.i.d. loss, central -> unit
  double ackLossProb = 0.0;      ///< i.i.d. loss, unit -> central
  GilbertElliott burst;          ///< bursty loss on top, both directions

  // -- Message mangling ------------------------------------------------
  double duplicateProb = 0.0;  ///< deliver a second copy (both directions)
  double reorderProb = 0.0;    ///< delay a message past its successors
  int32_t jitterTicks = 0;     ///< uniform extra latency in [0, jitter]

  // -- Unit faults -----------------------------------------------------
  CrashPlan crash;
  /// Per-unit clock skew magnitude in parts-per-million: each unit's
  /// action durations are scaled by a fixed factor drawn uniformly from
  /// [1 - ppm/1e6, 1 + ppm/1e6] at trial start (applied in physics).
  double driftPpm = 0.0;

  /// The legacy single-knob channel: i.i.d. loss at `p` in both
  /// directions, nothing else.
  [[nodiscard]] static FaultPlan iidLoss(double p) {
    FaultPlan f;
    f.commandLossProb = p;
    f.ackLossProb = p;
    return f;
  }

  [[nodiscard]] bool anyMessageFault() const noexcept {
    return commandLossProb > 0.0 || ackLossProb > 0.0 || burst.enabled() ||
           duplicateProb > 0.0 || reorderProb > 0.0 || jitterTicks > 0;
  }
};

/// One planned delivery of a message copy (relative to send time).
struct Delivery {
  int64_t extraTicks = 0;  ///< latency added on top of the base latency
};

/// The seeded adversarial channel. Every fault source owns an
/// independent mt19937_64 split off (seed, stream-tag) through
/// std::seed_seq, so the decision sequence of one source is a pure
/// function of (seed, its own call sequence) — composing in a new fault
/// leaves the others' decisions untouched.
class FaultChannel {
 public:
  FaultChannel(const FaultPlan& plan, uint64_t seed);

  /// Fate of one message: zero deliveries = lost, one = delivered,
  /// two = duplicated. `towardCentral` selects the ack direction.
  [[nodiscard]] std::vector<Delivery> offer(bool towardCentral);

  /// Draw the fixed clock-skew factor for one unit (stable per unit:
  /// the first call for a unit decides, later calls return the same).
  [[nodiscard]] double driftFactor(const std::string& unit);

  /// Advance the per-unit crash processes by one tick. Returns the
  /// units that crashed at this tick (callers drop their state).
  std::vector<std::string> stepCrashes(int64_t tick,
                                       const std::vector<std::string>& units);

  /// True while `unit` is crashed (silent) at `tick`.
  [[nodiscard]] bool isDown(const std::string& unit,
                            int64_t tick) const;

  // -- Splice support (replanning) -------------------------------------
  // A repair segment runs on a fresh channel (derived seed) but must
  // keep the physical state the aborted segment left behind: a unit's
  // clock does not change speed and a crashed unit stays silent across
  // the splice.

  /// Preset per-unit drift factors (from a PlantSnapshot); units not
  /// listed draw fresh factors on first use as usual.
  void presetDrift(const std::map<std::string, double>& factors) {
    for (const auto& [unit, f] : factors) drift_[unit] = f;
  }
  /// Preset crash downtime (absolute revival ticks) surviving a splice.
  void presetDownUntil(const std::map<std::string, int64_t>& down) {
    for (const auto& [unit, until] : down) downUntil_[unit] = until;
  }
  [[nodiscard]] const std::map<std::string, double>& driftMap()
      const noexcept {
    return drift_;
  }
  [[nodiscard]] const std::map<std::string, int64_t>& downUntilMap()
      const noexcept {
    return downUntil_;
  }

  // -- Introspection (tests + campaign reporting) ----------------------
  [[nodiscard]] int64_t lossesCommand() const noexcept { return lossCmd_; }
  [[nodiscard]] int64_t lossesAck() const noexcept { return lossAck_; }
  [[nodiscard]] int64_t burstLosses() const noexcept { return lossBurst_; }
  [[nodiscard]] int64_t duplicates() const noexcept { return dups_; }
  [[nodiscard]] int64_t reorders() const noexcept { return reorders_; }
  [[nodiscard]] int64_t crashes() const noexcept { return crashes_; }
  [[nodiscard]] bool burstStateBad() const noexcept { return burstBad_; }

 private:
  /// Stream tags: each fault source's generator is seeded from
  /// seed_seq{seed_lo, seed_hi, tag} — fixed tags, stable across plans.
  enum Stream : uint32_t {
    kCmdLoss = 1,
    kAckLoss = 2,
    kBurst = 3,
    kDuplicate = 4,
    kReorder = 5,
    kJitter = 6,
    kCrash = 7,
    kDrift = 8,
  };

  [[nodiscard]] static std::mt19937_64 splitRng(uint64_t seed, uint32_t tag);
  [[nodiscard]] static bool flip(std::mt19937_64& rng, double p);

  FaultPlan plan_;
  uint64_t seed_;

  std::mt19937_64 cmdLossRng_, ackLossRng_, burstRng_, dupRng_, reorderRng_,
      jitterRng_, crashRng_, driftRng_;

  bool burstBad_ = false;
  std::map<std::string, double> drift_;
  std::map<std::string, int64_t> downUntil_;

  int64_t lossCmd_ = 0, lossAck_ = 0, lossBurst_ = 0;
  int64_t dups_ = 0, reorders_ = 0, crashes_ = 0;
};

}  // namespace rcx
