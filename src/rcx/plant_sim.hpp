// Glue: run a synthesized central-controller program against the
// simulated physical plant over a lossy RCX-style message channel.
//
// This is the reproduction of paper §6: "The synthesized program will
// run in a central controller sending commands to the distributed local
// controllers... the only feedback from the local controllers are
// acknowledgements of commands received."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "plant/config.hpp"
#include "rcx/physics.hpp"
#include "synthesis/rcx_codegen.hpp"

namespace rcx {

struct SimOptions {
  /// Probability that any single message (command or ack) is lost.
  double messageLossProb = 0.01;
  uint64_t seed = 42;
  /// One-way message latency in ticks.
  int32_t latencyTicks = 5;
  /// Cost of one VM instruction in ticks.
  int32_t instrTicks = 1;
  /// Physical tolerance for the timing checks (continuity, deadline):
  /// the command segments and retries make the program drift a little
  /// relative to the ideal schedule, just as the real plant tolerates
  /// small deviations.
  int64_t slackTicks = 600;
  int64_t maxTicks = 200'000'000;
};

struct SimResult {
  bool programCompleted = false;
  bool allExited = false;
  std::vector<SimError> errors;
  int64_t ticks = 0;
  int64_t exited = 0;
  // Channel statistics.
  int64_t commandsSent = 0;     ///< SendPBMessage executions (incl. resends)
  int64_t commandsLost = 0;
  int64_t acksLost = 0;
  int64_t duplicatesIgnored = 0;

  [[nodiscard]] bool ok() const {
    return programCompleted && allExited && errors.empty();
  }
};

/// Execute the program in the simulated plant. `ticksPerTimeUnit` must
/// match the value used at synthesis time.
[[nodiscard]] SimResult runProgram(const synthesis::RcxProgram& program,
                                   const plant::PlantConfig& cfg,
                                   int32_t ticksPerTimeUnit = 100,
                                   const SimOptions& opts = {});

}  // namespace rcx
