// Glue: run a synthesized central-controller program against the
// simulated physical plant over a lossy RCX-style message channel.
//
// This is the reproduction of paper §6: "The synthesized program will
// run in a central controller sending commands to the distributed local
// controllers... the only feedback from the local controllers are
// acknowledgements of commands received."
//
// The channel between the controllers is an adversarial `FaultChannel`
// (see rcx/fault.hpp): per-direction loss, bursty loss, duplication,
// reordering, jitter, local-controller crashes, and per-unit clock
// drift, each drawing from an independent split of the trial seed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "plant/config.hpp"
#include "rcx/fault.hpp"
#include "rcx/physics.hpp"
#include "rcx/snapshot.hpp"
#include "synthesis/rcx_codegen.hpp"

namespace rcx {

struct SimOptions {
  /// Legacy single-knob channel: i.i.d. loss probability applied to
  /// both directions, folded into `faults` at run start. Prefer
  /// `faults` for anything richer.
  double messageLossProb = 0.01;
  /// The composed adversary (defaults to a perfect channel; the
  /// legacy knob above is added on top).
  FaultPlan faults;
  uint64_t seed = 42;
  /// One-way message latency in ticks.
  int32_t latencyTicks = 5;
  /// Cost of one VM instruction in ticks.
  int32_t instrTicks = 1;
  /// Physical tolerance for the timing checks (continuity, deadline):
  /// the command segments and retries make the program drift a little
  /// relative to the ideal schedule, just as the real plant tolerates
  /// small deviations.
  int64_t slackTicks = 600;
  int64_t maxTicks = 200'000'000;

  // -- Replanning support (see replan/controller.hpp) ------------------

  /// Classify fatal deviations (watchdog halt, physics error) and end
  /// the run with a quiesced PlantSnapshot in SimResult::snapshot
  /// instead of limping on to the drain phase.
  bool snapshotOnFatal = false;
  /// Resume mid-run from a snapshot: the physics adopts its state, the
  /// channel presets its drift factors and crash downtimes, and the
  /// tick count continues from `startTick` (absolute).
  const PlantSnapshot* resume = nullptr;
  int64_t startTick = 0;

  /// The fault plan actually applied: `faults` with the legacy i.i.d.
  /// knob folded into both directions.
  [[nodiscard]] FaultPlan effectiveFaults() const {
    FaultPlan f = faults;
    f.commandLossProb = std::min(1.0, f.commandLossProb + messageLossProb);
    f.ackLossProb = std::min(1.0, f.ackLossProb + messageLossProb);
    return f;
  }
};

struct SimResult {
  bool programCompleted = false;
  bool allExited = false;
  /// The hardened program's watchdog gave up on a silent unit and
  /// halted (programCompleted is false in that case).
  bool watchdogHalted = false;
  std::vector<SimError> errors;
  int64_t ticks = 0;
  int64_t exited = 0;
  // Channel statistics.
  int64_t commandsSent = 0;     ///< SendPBMessage executions (incl. resends)
  int64_t commandsLost = 0;     ///< i.i.d. + burst losses, central -> unit
  int64_t acksLost = 0;         ///< i.i.d. + burst losses, unit -> central
  int64_t duplicatesIgnored = 0;  ///< resends/dup copies the units deduped
  int64_t duplicatesInjected = 0;  ///< channel-duplicated message copies
  int64_t reordered = 0;        ///< messages delayed past their successors
  int64_t crashes = 0;          ///< local-controller crash events
  int64_t crashDropped = 0;     ///< messages dropped at/to a crashed unit

  // -- Deviation classification + concrete end-state ------------------
  /// kNone: clean; kRecoverable: faults manifested but the hardened
  /// layer absorbed them; kWatchdogHalt / kPhysicsError: fatal (the
  /// run stopped early; `snapshot` is set when snapshotOnFatal was on).
  DeviationKind deviation = DeviationKind::kNone;
  std::string deviationDetail;
  std::optional<PlantSnapshot> snapshot;

  /// Per-unit drifted-clock factors the channel drew this run.
  std::map<std::string, double> unitDrift;
  /// Per-unit dedup state (last executed message id).
  std::map<std::string, int32_t> lastExecuted;
  /// Messages still in the air when the run ended (normally empty:
  /// the main loop drains the ether before finishing).
  std::vector<InFlightMsg> inFlight;

  [[nodiscard]] bool ok() const {
    return programCompleted && allExited && errors.empty();
  }
};

/// Execute the program in the simulated plant. `ticksPerTimeUnit` must
/// match the value used at synthesis time.
[[nodiscard]] SimResult runProgram(const synthesis::RcxProgram& program,
                                   const plant::PlantConfig& cfg,
                                   int32_t ticksPerTimeUnit = 100,
                                   const SimOptions& opts = {});

}  // namespace rcx
