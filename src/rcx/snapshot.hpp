// Concrete plant state captured at a fatal deviation — the interface
// between the execution layer (rcx/plant_sim) and the replanning
// subsystem (replan/).
//
// The simulator quiesces the plant first (lets every in-progress track
// move and hoist finish; casting may continue), so a snapshot only ever
// shows ladles standing on a slot or pad, hanging from a stationary
// crane, or inside the caster. That discreteness is what makes the
// state-lifting in replan/lift.cpp exact: every snapshot place is one
// model location, and only the clock valuation needs rounding.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "plant/config.hpp"

namespace rcx {

/// How a simulated run deviated from the synthesized schedule.
enum class DeviationKind : uint8_t {
  kNone = 0,        ///< clean run, no fault manifested
  kRecoverable,     ///< faults occurred but the hardened layer absorbed them
  kWatchdogHalt,    ///< the program's watchdog gave up on a silent unit
  kPhysicsError,    ///< a physical/timing invariant was violated
};

[[nodiscard]] inline const char* deviationName(DeviationKind k) {
  switch (k) {
    case DeviationKind::kNone: return "none";
    case DeviationKind::kRecoverable: return "recoverable";
    case DeviationKind::kWatchdogHalt: return "watchdog-halt";
    case DeviationKind::kPhysicsError: return "physics-error";
  }
  return "?";
}

/// True for the kinds that end a run and produce a snapshot.
[[nodiscard]] inline bool isFatal(DeviationKind k) {
  return k == DeviationKind::kWatchdogHalt ||
         k == DeviationKind::kPhysicsError;
}

struct LoadSnapshot {
  enum class Place : uint8_t {
    kNotPoured,
    kTrack,     ///< standing on track `track`, slot `slot`
    kGround,    ///< on the crane-served pad under overhead position groundK
    kOnCrane,   ///< hanging from stationary crane `crane`
    kInCaster,
    kExited,
  };
  Place place = Place::kNotPoured;
  int32_t track = 0, slot = 0;  ///< valid for kTrack
  int32_t groundK = 0;          ///< valid for kGround
  int32_t crane = -1;           ///< valid for kOnCrane
  int64_t pourTick = -1;        ///< absolute tick of the pour (-1: not poured)
  int32_t treatmentsDone = 0;   ///< completed machine treatments
  int32_t lastMachine = 0;      ///< machine id of the last completed one (0: none)
  int32_t treatingMachine = 0;  ///< machine currently running on this load (0: none)
  int64_t treatStartTick = -1;  ///< absolute tick that treatment started
};

struct CraneSnapshot {
  int32_t pos = 0;        ///< overhead position index (quiesced: on-slot)
  int32_t carrying = -1;  ///< batch index hanging from the hook, -1 = empty
};

struct CasterSnapshot {
  int32_t castingBatch = -1;    ///< batch inside the caster, -1 = empty
  bool castComplete = false;    ///< casting finished, ladle awaiting eject
  int64_t castStartTick = -1;
  int64_t lastCastEndTick = -1;
  int32_t castsDone = 0;        ///< ladles ejected so far
};

/// A message still in the air when the run was aborted. Spliced repair
/// segments discard these (the repair program opens a fresh session and
/// units ignore stale ids); they are recorded so tests and the bench
/// can account for every message.
struct InFlightMsg {
  int64_t deliverAt = 0;
  int32_t msgId = 0;
  bool towardCentral = false;  ///< ack (unit -> central) vs command
  std::string unit;            ///< resolved command target ("" for acks)
  std::string command;
};

struct PlantSnapshot {
  DeviationKind kind = DeviationKind::kNone;
  std::string reason;          ///< first fatal symptom, human-readable
  int64_t deviationTick = 0;   ///< tick the fatal deviation was detected
  int64_t tick = 0;            ///< tick of capture (after quiescence)
  int32_t ticksPerTimeUnit = 0;
  bool quiescent = false;      ///< transient actions all completed in time

  std::vector<LoadSnapshot> loads;  ///< indexed by batch
  CraneSnapshot cranes[plant::kNumCranes];
  CasterSnapshot caster;

  /// Per-unit drifted-clock factors already drawn by the channel; a
  /// resumed segment presets these so a unit's clock does not change
  /// speed across the splice.
  std::map<std::string, double> unitDrift;
  /// Units still crashed at capture time -> absolute tick they revive.
  std::map<std::string, int64_t> downUntil;
  /// Per-unit dedup state (last executed message id) of the aborted
  /// program. Informational: repair programs number commands afresh.
  std::map<std::string, int32_t> lastExecuted;
  std::vector<InFlightMsg> inFlight;

  [[nodiscard]] int32_t numBatches() const {
    return static_cast<int32_t>(loads.size());
  }
};

}  // namespace rcx
