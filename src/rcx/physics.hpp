// The physical plant, simulated at fine-grained tick resolution — our
// stand-in for the paper's LEGO MINDSTORMS plant (§6).
//
// The physics executes unit commands ("Track1Right", "Pickup3",
// "Start2", ...) with real durations, moves cranes continuously along
// the shared overhead track, and checks every physical invariant the
// LEGO plant enforces the hard way: one ladle per slot, no crane
// overtaking or near-collision, no horizontal movement while hoisting,
// continuous casting, the steel temperature deadline, and nothing left
// behind at the end of the run.  Violations are collected as SimErrors
// (the paper found three modelling errors exactly this way).
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "plant/config.hpp"
#include "rcx/snapshot.hpp"

namespace rcx {

struct SimError {
  int64_t tick = 0;
  std::string what;
};

class PlantPhysics {
 public:
  PlantPhysics(const plant::PlantConfig& cfg, int32_t ticksPerUnit,
               int64_t slackTicks);

  /// Execute a command arriving at `tick`. Physical impossibilities are
  /// recorded as errors; the unit still acknowledges receipt (the
  /// paper's plant gives no richer feedback).
  void command(const std::string& unit, const std::string& cmd, int64_t tick);

  /// Advance the plant by one tick (complete moves/lifts/casts, update
  /// crane positions, check for collisions).
  void step(int64_t tick);

  /// End-of-program checks: every ladle out, caster empty, machines off.
  void finish(int64_t tick);

  /// Per-unit clock drift (fault injection): every action duration of
  /// `unit` is scaled by the factor the provider returns for it (1.0 =
  /// a perfect local clock). Lazily consulted once per started action,
  /// so the provider may draw the factor on first use.
  void setDriftProvider(std::function<double(const std::string&)> provider) {
    drift_ = std::move(provider);
  }

  [[nodiscard]] const std::vector<SimError>& errors() const noexcept {
    return errors_;
  }
  [[nodiscard]] int64_t exitedCount() const noexcept;
  [[nodiscard]] bool allExited() const noexcept;

  // -- Snapshot / resume (replanning support) ------------------------

  /// No transient action in progress: every ladle stands on a slot or
  /// pad, hangs from a stationary crane, or sits in the caster.
  /// Casting and machine treatments may be running — they are
  /// interruptible states the model can express.
  [[nodiscard]] bool quiescent() const noexcept;

  /// Fill the physical-plant portion of a snapshot (loads, cranes,
  /// caster). Call only when quiescent(); channel/controller fields
  /// are the simulator's to fill.
  void capture(PlantSnapshot* out) const;

  /// Adopt the physical state of a snapshot, replacing the initial
  /// all-at-the-converter state. Timing baselines (pour ticks, cast
  /// start) are absolute ticks and stay valid because resumed
  /// simulations continue the absolute tick count.
  void restore(const PlantSnapshot& snap);

  // -- Introspection for tests ---------------------------------------
  [[nodiscard]] int64_t cranePosMilli(int c) const;
  [[nodiscard]] bool loadExited(int b) const;
  [[nodiscard]] bool loadInCaster(int b) const;

 private:
  struct Load {
    enum class Where {
      kNone,
      kTrack,
      kTrackMoving,
      kGround,   ///< on a crane-served pad (buffer/hold/castout/storage)
      kLifting,
      kOnCrane,
      kLowering,
      kInCaster,
      kExited,
    };
    Where where = Where::kNone;
    int32_t track = 0, slot = 0, toSlot = 0;
    int32_t groundK = 0;
    int32_t crane = -1;
    int64_t actionDone = 0;
    int64_t pourTick = -1;
    // Treatment bookkeeping for state lifting (replan/lift.cpp).
    int32_t treatmentsDone = 0;
    int32_t lastMachine = 0;     ///< id of last completed treatment (0: none)
    int64_t treatStart = -1;     ///< tick the running treatment started
  };

  struct Crane {
    int64_t basePos = 0;  ///< milli-positions (1000 per overhead slot)
    bool moving = false;
    int32_t dir = 0;
    int64_t moveStart = 0, moveDone = 0;
    bool lifting = false, lowering = false;
    int64_t hoistDone = 0;
    int32_t hoistLoad = -1, hoistK = -1;
    int32_t carrying = -1;
  };

  struct Machine {
    bool on = false;
    int32_t load = -1;
    int64_t onTick = 0;
  };

  void fail(int64_t tick, std::string what) {
    errors_.push_back(SimError{tick, std::move(what)});
  }

  /// `ticks` stretched (or shrunk) by the unit's clock-drift factor.
  [[nodiscard]] int64_t drifted(const std::string& unit,
                                int64_t ticks) const {
    if (!drift_) return ticks;
    return static_cast<int64_t>(
        std::llround(static_cast<double>(ticks) * drift_(unit)));
  }

  [[nodiscard]] bool trackSlotOccupied(int32_t track, int32_t slot) const;
  [[nodiscard]] bool groundOccupied(int32_t k) const;
  /// Load standing (not moving/lifting) at ground position k, or -1.
  [[nodiscard]] int32_t loadAtGround(int32_t k) const;
  [[nodiscard]] int64_t cranePosAt(const Crane& c, int64_t tick) const;

  plant::PlantConfig cfg_;
  int64_t tpu_;    ///< ticks per model time unit
  int64_t slack_;  ///< tolerance for timing checks, in ticks

  std::vector<Load> loads_;
  Crane cranes_[plant::kNumCranes];
  Machine machines_[5];
  int32_t casting_ = -1;       ///< batch currently in the caster
  bool castComplete_ = false;  ///< casting done, awaiting eject
  int64_t castDone_ = 0;
  int64_t castStart_ = -1;
  int64_t lastCastEnd_ = -1;
  int32_t castsDone_ = 0;
  bool collisionReported_ = false;
  std::function<double(const std::string&)> drift_;
  std::vector<SimError> errors_;
};

}  // namespace rcx
