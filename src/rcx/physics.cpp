#include "rcx/physics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace rcx {

namespace {

constexpr int64_t kMilli = 1000;  ///< milli-positions per overhead slot

/// Parse a trailing integer ("Pickup3" -> 3, "Start12" -> 12).
std::optional<int32_t> trailingInt(const std::string& s, size_t prefixLen) {
  if (s.size() <= prefixLen) return std::nullopt;
  int32_t v = 0;
  for (size_t i = prefixLen; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return std::nullopt;
    v = v * 10 + (s[i] - '0');
  }
  return v;
}

/// Track/slot of the ground pad under overhead position k; pads that
/// are not track slots return track 0.
struct GroundRef {
  int32_t track;
  int32_t slot;  // valid when track != 0
};

GroundRef groundRef(int32_t k) {
  switch (k) {
    case plant::kOverT1Out: return {1, plant::kT1Out};
    case plant::kOverT2Out: return {2, plant::kT2Out};
    default: return {0, 0};
  }
}

}  // namespace

PlantPhysics::PlantPhysics(const plant::PlantConfig& cfg, int32_t ticksPerUnit,
                           int64_t slackTicks)
    : cfg_(cfg),
      tpu_(ticksPerUnit),
      slack_(slackTicks),
      loads_(static_cast<size_t>(cfg.numBatches())) {
  cranes_[0].basePos = plant::kOverT1Out * kMilli;
  cranes_[1].basePos = plant::kOverCastOut * kMilli;
}

bool PlantPhysics::trackSlotOccupied(int32_t track, int32_t slot) const {
  for (const Load& l : loads_) {
    if (l.where == Load::Where::kTrack && l.track == track && l.slot == slot)
      return true;
    if (l.where == Load::Where::kTrackMoving && l.track == track &&
        (l.slot == slot || l.toSlot == slot))
      return true;
    // A ladle being lifted from / lowered onto a track slot still
    // occupies it.
    if ((l.where == Load::Where::kLifting ||
         l.where == Load::Where::kLowering)) {
      const GroundRef g = groundRef(l.groundK);
      if (g.track == track && g.slot == slot) return true;
    }
  }
  return false;
}

bool PlantPhysics::groundOccupied(int32_t k) const {
  if (k == plant::kOverStorage) return false;  // unbounded pad
  const GroundRef g = groundRef(k);
  if (g.track != 0) return trackSlotOccupied(g.track, g.slot);
  for (const Load& l : loads_) {
    if ((l.where == Load::Where::kGround ||
         l.where == Load::Where::kLifting ||
         l.where == Load::Where::kLowering) &&
        l.groundK == k) {
      return true;
    }
  }
  return false;
}

int32_t PlantPhysics::loadAtGround(int32_t k) const {
  const GroundRef g = groundRef(k);
  for (size_t b = 0; b < loads_.size(); ++b) {
    const Load& l = loads_[b];
    if (g.track != 0) {
      if (l.where == Load::Where::kTrack && l.track == g.track &&
          l.slot == g.slot) {
        return static_cast<int32_t>(b);
      }
    } else if (l.where == Load::Where::kGround && l.groundK == k) {
      return static_cast<int32_t>(b);
    }
  }
  return -1;
}

int64_t PlantPhysics::cranePosAt(const Crane& c, int64_t tick) const {
  if (!c.moving) return c.basePos;
  const int64_t dur = c.moveDone - c.moveStart;
  const int64_t t = std::min(tick, c.moveDone) - c.moveStart;
  return c.basePos + c.dir * kMilli * t / std::max<int64_t>(dur, 1);
}

void PlantPhysics::command(const std::string& unit, const std::string& cmd,
                           int64_t tick) {
  // ---- Load commands: Pour / Track moves / Machine on-off / Exit. ----
  if (unit.rfind("Load", 0) == 0) {
    const auto bOpt = trailingInt(unit, 4);
    if (!bOpt || *bOpt < 1 || *bOpt > cfg_.numBatches()) {
      fail(tick, "command for unknown unit " + unit);
      return;
    }
    const int32_t b = *bOpt - 1;
    Load& l = loads_[static_cast<size_t>(b)];

    if (cmd.rfind("Pour", 0) == 0) {
      const auto t = trailingInt(cmd, 4);
      if (!t || (*t != 1 && *t != 2)) return fail(tick, unit + ": bad " + cmd);
      if (l.where != Load::Where::kNone)
        return fail(tick, unit + " poured twice");
      if (trackSlotOccupied(*t, 0))
        return fail(tick, unit + " poured onto an occupied converter slot");
      l.where = Load::Where::kTrack;
      l.track = *t;
      l.slot = 0;
      l.pourTick = tick;
      return;
    }
    if (cmd.rfind("Track", 0) == 0 && cmd.size() > 6) {
      const int32_t t = cmd[5] - '0';
      const bool right = cmd.substr(6) == "Right";
      const bool left = cmd.substr(6) == "Left";
      if ((t != 1 && t != 2) || (!right && !left))
        return fail(tick, unit + ": bad " + cmd);
      if (l.where != Load::Where::kTrack || l.track != t)
        return fail(tick, unit + " not standing on track " +
                              std::to_string(t) + " for " + cmd);
      const int32_t slots = t == 1 ? plant::kT1Slots : plant::kT2Slots;
      const int32_t to = l.slot + (right ? 1 : -1);
      if (to < 0 || to >= slots)
        return fail(tick, unit + " driven off the end of track " +
                              std::to_string(t));
      if (trackSlotOccupied(t, to))
        return fail(tick, unit + " moved into occupied slot " +
                              std::to_string(to) + " of track " +
                              std::to_string(t));
      l.where = Load::Where::kTrackMoving;
      l.toSlot = to;
      l.actionDone = tick + drifted(unit, cfg_.bmove * tpu_);
      return;
    }
    if (cmd.rfind("Machine", 0) == 0 && cmd.size() > 8) {
      const int32_t m = cmd[7] - '0';
      if (m < 1 || m > 5) return fail(tick, unit + ": bad " + cmd);
      const plant::MachineInfo& info = plant::kMachines[m - 1];
      Machine& mach = machines_[m - 1];
      const bool on = cmd.substr(8) == "On";
      if (on) {
        if (mach.on)
          return fail(tick, "machine " + std::to_string(m) +
                                " turned on while already running");
        if (l.where != Load::Where::kTrack || l.track != info.track ||
            l.slot != info.slot) {
          return fail(tick, unit + " not in machine " + std::to_string(m) +
                                " when it was turned on");
        }
        mach.on = true;
        mach.load = b;
        mach.onTick = tick;
        l.treatStart = tick;
      } else {
        if (!mach.on || mach.load != b)
          return fail(tick, "machine " + std::to_string(m) +
                                " turned off but not treating " + unit);
        mach.on = false;
        mach.load = -1;
        ++l.treatmentsDone;
        l.lastMachine = m;
        l.treatStart = -1;
      }
      return;
    }
    if (cmd == "Exit") {
      if (l.where != Load::Where::kGround ||
          l.groundK != plant::kOverStorage) {
        return fail(tick, unit + " told to exit but not at the storage place");
      }
      l.where = Load::Where::kExited;
      return;
    }
    return fail(tick, unit + ": unknown command " + cmd);
  }

  // ---- Crane commands. ------------------------------------------------
  if (unit.rfind("Crane", 0) == 0) {
    const auto cOpt = trailingInt(unit, 5);
    if (!cOpt || *cOpt < 1 || *cOpt > plant::kNumCranes)
      return fail(tick, "command for unknown unit " + unit);
    Crane& c = cranes_[*cOpt - 1];

    if (cmd == "Move1Left" || cmd == "Move1Right") {
      if (c.lifting || c.lowering) {
        // The paper's first modelling error showed up exactly here.
        return fail(tick, unit + " commanded to move while hoisting");
      }
      if (c.moving) return fail(tick, unit + " commanded to move while moving");
      const int32_t dir = cmd == "Move1Right" ? 1 : -1;
      const int64_t target = c.basePos + dir * kMilli;
      if (target < 0 || target > (plant::kCranePositions - 1) * kMilli)
        return fail(tick, unit + " driven off the overhead track");
      c.moving = true;
      c.dir = dir;
      c.moveStart = tick;
      c.moveDone = tick + drifted(unit, cfg_.cmove * tpu_);
      return;
    }
    if (cmd.rfind("Pickup", 0) == 0) {
      const auto k = trailingInt(cmd, 6);
      if (!k || *k < 0 || *k >= plant::kCranePositions)
        return fail(tick, unit + ": bad " + cmd);
      if (c.moving) return fail(tick, unit + " picking up while moving");
      if (c.lifting || c.lowering)
        return fail(tick, unit + " picking up while hoisting");
      if (c.carrying >= 0)
        return fail(tick, unit + " picking up while already loaded");
      if (c.basePos != *k * kMilli)
        return fail(tick, unit + " not over position " + std::to_string(*k) +
                              " for " + cmd);
      const int32_t b = loadAtGround(*k);
      if (b < 0)
        return fail(tick, unit + " pickup at position " + std::to_string(*k) +
                              " with no ladle present");
      c.lifting = true;
      c.hoistDone = tick + drifted(unit, cfg_.cupdown * tpu_);
      c.hoistLoad = b;
      c.hoistK = *k;
      Load& l = loads_[static_cast<size_t>(b)];
      l.where = Load::Where::kLifting;
      l.groundK = *k;
      l.crane = *cOpt - 1;
      return;
    }
    if (cmd.rfind("Putdown", 0) == 0) {
      const auto k = trailingInt(cmd, 7);
      if (!k || *k < 0 || *k >= plant::kCranePositions)
        return fail(tick, unit + ": bad " + cmd);
      if (c.moving) return fail(tick, unit + " putting down while moving");
      if (c.lifting || c.lowering)
        return fail(tick, unit + " putting down while hoisting");
      if (c.carrying < 0) return fail(tick, unit + " putting down but empty");
      if (c.basePos != *k * kMilli)
        return fail(tick, unit + " not over position " + std::to_string(*k) +
                              " for " + cmd);
      if (groundOccupied(*k))
        return fail(tick, unit + " putting down onto occupied position " +
                              std::to_string(*k));
      c.lowering = true;
      c.hoistDone = tick + drifted(unit, cfg_.cupdown * tpu_);
      c.hoistLoad = c.carrying;
      c.hoistK = *k;
      Load& l = loads_[static_cast<size_t>(c.carrying)];
      l.where = Load::Where::kLowering;
      l.groundK = *k;
      c.carrying = -1;
      return;
    }
    return fail(tick, unit + ": unknown command " + cmd);
  }

  // ---- Caster commands. -------------------------------------------------
  if (unit == "Caster") {
    if (cmd.rfind("Start", 0) == 0) {
      const auto bOpt = trailingInt(cmd, 5);
      if (!bOpt || *bOpt < 1 || *bOpt > cfg_.numBatches())
        return fail(tick, "Caster: bad " + cmd);
      const int32_t b = *bOpt - 1;
      Load& l = loads_[static_cast<size_t>(b)];
      if (casting_ >= 0)
        return fail(tick, "casting started while the caster is occupied");
      if (l.where != Load::Where::kGround || l.groundK != plant::kOverHold)
        return fail(tick, "casting of Load" + std::to_string(b + 1) +
                              " started but it is not at the holding place");
      if (lastCastEnd_ >= 0 &&
          tick > lastCastEnd_ + cfg_.castGap * tpu_ + slack_) {
        fail(tick, "casting continuity violated: caster idle for " +
                       std::to_string(tick - lastCastEnd_) + " ticks");
      }
      casting_ = b;
      castComplete_ = false;
      castStart_ = tick;
      castDone_ = tick + drifted(unit, cfg_.tcast * tpu_);
      l.where = Load::Where::kInCaster;
      return;
    }
    if (cmd.rfind("Eject", 0) == 0) {
      const auto bOpt = trailingInt(cmd, 5);
      if (!bOpt || *bOpt < 1 || *bOpt > cfg_.numBatches())
        return fail(tick, "Caster: bad " + cmd);
      const int32_t b = *bOpt - 1;
      if (casting_ != b)
        return fail(tick, "eject of Load" + std::to_string(b + 1) +
                              " but it is not in the caster");
      if (!castComplete_)
        return fail(tick, "Load" + std::to_string(b + 1) +
                              " ejected before casting completed");
      if (groundOccupied(plant::kOverCastOut))
        return fail(tick, "eject onto an occupied output slot");
      Load& l = loads_[static_cast<size_t>(b)];
      l.where = Load::Where::kGround;
      l.groundK = plant::kOverCastOut;
      casting_ = -1;
      ++castsDone_;
      return;
    }
    return fail(tick, "Caster: unknown command " + cmd);
  }

  fail(tick, "command for unknown unit " + unit);
}

void PlantPhysics::step(int64_t tick) {
  // Complete track moves.
  for (size_t b = 0; b < loads_.size(); ++b) {
    Load& l = loads_[b];
    if (l.where == Load::Where::kTrackMoving && tick >= l.actionDone) {
      l.slot = l.toSlot;
      l.where = Load::Where::kTrack;
    }
  }
  // Cranes: arrive, finish hoists, check proximity.
  for (Crane& c : cranes_) {
    if (c.moving && tick >= c.moveDone) {
      c.basePos += c.dir * kMilli;
      c.moving = false;
    }
    if ((c.lifting || c.lowering) && tick >= c.hoistDone) {
      Load& l = loads_[static_cast<size_t>(c.hoistLoad)];
      if (c.lifting) {
        l.where = Load::Where::kOnCrane;
        c.carrying = c.hoistLoad;
      } else {
        l.where = Load::Where::kGround;  // groundRef maps track pads back
        if (const GroundRef g = groundRef(l.groundK); g.track != 0) {
          l.where = Load::Where::kTrack;
          l.track = g.track;
          l.slot = g.slot;
        }
      }
      c.lifting = c.lowering = false;
      c.hoistLoad = -1;
    }
  }
  // Casting completes (the ladle stays inside until ejected).
  if (casting_ >= 0 && !castComplete_ && tick >= castDone_) {
    castComplete_ = true;
    lastCastEnd_ = castDone_;
    const Load& l = loads_[static_cast<size_t>(casting_)];
    if (l.pourTick >= 0 &&
        castDone_ - l.pourTick > cfg_.rtotal * tpu_ + slack_) {
      fail(tick, "Load" + std::to_string(casting_ + 1) +
                     " exceeded the maximum time in the plant");
    }
  }
  // Crane proximity: the two cranes share one track and cannot pass or
  // touch; flag sustained proximity below one full position.
  const int64_t p0 = cranePosAt(cranes_[0], tick);
  const int64_t p1 = cranePosAt(cranes_[1], tick);
  if (!collisionReported_ && std::llabs(p1 - p0) < kMilli - 10) {
    collisionReported_ = true;
    fail(tick, "crane collision: cranes " + std::to_string(p0) + " and " +
                   std::to_string(p1) + " milli-positions");
  }
}

void PlantPhysics::finish(int64_t tick) {
  for (size_t b = 0; b < loads_.size(); ++b) {
    const Load& l = loads_[b];
    if (l.where == Load::Where::kInCaster) {
      fail(tick, "Load" + std::to_string(b + 1) +
                     " left inside the casting machine at program end");
    } else if (l.where != Load::Where::kExited) {
      fail(tick, "Load" + std::to_string(b + 1) +
                     " did not leave the plant (state " +
                     std::to_string(static_cast<int>(l.where)) + ")");
    }
  }
  for (int m = 0; m < 5; ++m) {
    if (machines_[m].on) {
      fail(tick, "machine " + std::to_string(m + 1) + " left running");
    }
  }
}

bool PlantPhysics::quiescent() const noexcept {
  for (const Load& l : loads_) {
    if (l.where == Load::Where::kTrackMoving ||
        l.where == Load::Where::kLifting ||
        l.where == Load::Where::kLowering) {
      return false;
    }
  }
  for (const Crane& c : cranes_) {
    if (c.moving || c.lifting || c.lowering) return false;
  }
  return true;
}

void PlantPhysics::capture(PlantSnapshot* out) const {
  out->loads.clear();
  out->loads.reserve(loads_.size());
  for (const Load& l : loads_) {
    LoadSnapshot s;
    switch (l.where) {
      case Load::Where::kNone: s.place = LoadSnapshot::Place::kNotPoured; break;
      case Load::Where::kTrack:
      // Non-quiescent fallbacks (the capture deadline expired with an
      // action still running): the source slot / pad still holds the
      // ladle, so the conservative standing place is sound.
      case Load::Where::kTrackMoving:
        s.place = LoadSnapshot::Place::kTrack;
        s.track = l.track;
        s.slot = l.slot;
        break;
      case Load::Where::kGround:
      case Load::Where::kLifting:
      case Load::Where::kLowering:
        s.place = LoadSnapshot::Place::kGround;
        s.groundK = l.groundK;
        break;
      case Load::Where::kOnCrane:
        s.place = LoadSnapshot::Place::kOnCrane;
        s.crane = l.crane;
        break;
      case Load::Where::kInCaster: s.place = LoadSnapshot::Place::kInCaster; break;
      case Load::Where::kExited: s.place = LoadSnapshot::Place::kExited; break;
    }
    s.pourTick = l.pourTick;
    s.treatmentsDone = l.treatmentsDone;
    s.lastMachine = l.lastMachine;
    out->loads.push_back(s);
  }
  for (int m = 0; m < 5; ++m) {
    if (machines_[m].on && machines_[m].load >= 0) {
      LoadSnapshot& s = out->loads[static_cast<size_t>(machines_[m].load)];
      s.treatingMachine = m + 1;
      s.treatStartTick = machines_[m].onTick;
    }
  }
  for (int c = 0; c < plant::kNumCranes; ++c) {
    out->cranes[c].pos = static_cast<int32_t>(cranes_[c].basePos / 1000);
    out->cranes[c].carrying = cranes_[c].carrying;
  }
  out->caster.castingBatch = casting_;
  out->caster.castComplete = castComplete_;
  out->caster.castStartTick = castStart_;
  out->caster.lastCastEndTick = lastCastEnd_;
  out->caster.castsDone = castsDone_;
  out->quiescent = quiescent();
}

void PlantPhysics::restore(const PlantSnapshot& snap) {
  for (int m = 0; m < 5; ++m) machines_[m] = Machine{};
  const size_t n =
      std::min(loads_.size(), static_cast<size_t>(snap.numBatches()));
  for (size_t b = 0; b < n; ++b) {
    const LoadSnapshot& s = snap.loads[b];
    Load l;
    switch (s.place) {
      case LoadSnapshot::Place::kNotPoured: l.where = Load::Where::kNone; break;
      case LoadSnapshot::Place::kTrack:
        l.where = Load::Where::kTrack;
        l.track = s.track;
        l.slot = s.slot;
        break;
      case LoadSnapshot::Place::kGround:
        l.where = Load::Where::kGround;
        l.groundK = s.groundK;
        break;
      case LoadSnapshot::Place::kOnCrane:
        l.where = Load::Where::kOnCrane;
        l.crane = s.crane;
        break;
      case LoadSnapshot::Place::kInCaster: l.where = Load::Where::kInCaster; break;
      case LoadSnapshot::Place::kExited: l.where = Load::Where::kExited; break;
    }
    l.pourTick = s.pourTick;
    l.treatmentsDone = s.treatmentsDone;
    l.lastMachine = s.lastMachine;
    l.treatStart = s.treatingMachine > 0 ? s.treatStartTick : -1;
    loads_[b] = l;
    if (s.treatingMachine >= 1 && s.treatingMachine <= 5) {
      Machine& m = machines_[s.treatingMachine - 1];
      m.on = true;
      m.load = static_cast<int32_t>(b);
      m.onTick = s.treatStartTick;
    }
  }
  for (int c = 0; c < plant::kNumCranes; ++c) {
    Crane cr;
    cr.basePos = static_cast<int64_t>(snap.cranes[c].pos) * 1000;
    cr.carrying = snap.cranes[c].carrying;
    cranes_[c] = cr;
  }
  casting_ = snap.caster.castingBatch;
  castComplete_ = snap.caster.castComplete;
  castStart_ = snap.caster.castStartTick;
  lastCastEnd_ = snap.caster.lastCastEndTick;
  castsDone_ = snap.caster.castsDone;
  // The in-flight cast completes at the drifted absolute tick it always
  // would have (the resumed channel presets the caster's drift factor).
  castDone_ = castComplete_ || casting_ < 0
                  ? snap.caster.lastCastEndTick
                  : castStart_ + drifted("Caster", cfg_.tcast * tpu_);
  if (castComplete_) castDone_ = std::max<int64_t>(castDone_, castStart_);
  collisionReported_ = false;
}

int64_t PlantPhysics::exitedCount() const noexcept {
  int64_t n = 0;
  for (const Load& l : loads_) {
    if (l.where == Load::Where::kExited) ++n;
  }
  return n;
}

bool PlantPhysics::allExited() const noexcept {
  return exitedCount() == static_cast<int64_t>(loads_.size());
}

int64_t PlantPhysics::cranePosMilli(int c) const {
  return cranes_[c].basePos;
}

bool PlantPhysics::loadExited(int b) const {
  return loads_[static_cast<size_t>(b)].where == Load::Where::kExited;
}

bool PlantPhysics::loadInCaster(int b) const {
  return loads_[static_cast<size_t>(b)].where == Load::Where::kInCaster;
}

}  // namespace rcx
