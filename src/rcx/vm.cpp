#include "rcx/vm.hpp"

#include <cassert>
#include <stack>

namespace rcx {

using synthesis::RcxOp;

RcxVm::RcxVm(const synthesis::RcxProgram& program, VmHost host,
             int32_t instrTicks)
    : program_(&program),
      host_(std::move(host)),
      instrTicks_(instrTicks),
      vars_(16, 0),
      match_(program.code.size(), 0) {
  std::stack<size_t> open;
  for (size_t i = 0; i < program.code.size(); ++i) {
    switch (program.code[i].op) {
      case RcxOp::kWhileVarNe:
      case RcxOp::kIfVarGe:
      case RcxOp::kIfVarGeVar:
        open.push(i);
        break;
      case RcxOp::kEndWhile:
      case RcxOp::kEndIf: {
        assert(!open.empty() && "unbalanced While/If");
        const size_t start = open.top();
        open.pop();
        match_[start] = i;
        match_[i] = start;
        break;
      }
      default:
        break;
    }
  }
  assert(open.empty() && "unbalanced While/If");
}

void RcxVm::run(int64_t now) {
  while (pc_ < program_->code.size() && wake_ <= now) {
    const synthesis::RcxInstr& ins = program_->code[pc_];
    wake_ += instrTicks_;
    switch (ins.op) {
      case RcxOp::kPlaySystemSound:
        if (host_.playSound) host_.playSound(ins.a);
        ++pc_;
        break;
      case RcxOp::kSendPBMessage:
        host_.send(ins.a, wake_);
        ++sends_;
        ++pc_;
        break;
      case RcxOp::kSetVar:
        vars_[static_cast<size_t>(ins.a)] = ins.b;
        ++pc_;
        break;
      case RcxOp::kSetVarFromMsg:
        vars_[static_cast<size_t>(ins.a)] = host_.readMessage();
        ++pc_;
        break;
      case RcxOp::kSumVar:
        vars_[static_cast<size_t>(ins.a)] += ins.b;
        ++pc_;
        break;
      case RcxOp::kMulVar:
        vars_[static_cast<size_t>(ins.a)] *= ins.b;
        ++pc_;
        break;
      case RcxOp::kClearPBMessage:
        host_.clearMessage();
        ++pc_;
        break;
      case RcxOp::kWait:
        wake_ += ins.a;
        ++pc_;
        break;
      case RcxOp::kWhileVarNe:
        if (vars_[static_cast<size_t>(ins.a)] != ins.b) {
          ++pc_;
        } else {
          pc_ = match_[pc_] + 1;  // past EndWhile
        }
        break;
      case RcxOp::kEndWhile:
        pc_ = match_[pc_];  // re-test the While condition
        break;
      case RcxOp::kIfVarGe:
        if (vars_[static_cast<size_t>(ins.a)] >= ins.b) {
          ++pc_;
        } else {
          pc_ = match_[pc_] + 1;  // past EndIf
        }
        break;
      case RcxOp::kIfVarGeVar:
        if (vars_[static_cast<size_t>(ins.a)] >=
            vars_[static_cast<size_t>(ins.b)]) {
          ++pc_;
        } else {
          pc_ = match_[pc_] + 1;  // past EndIf
        }
        break;
      case RcxOp::kEndIf:
        ++pc_;
        break;
      case RcxOp::kHalt:
        halted_ = true;
        pc_ = program_->code.size();
        break;
    }
  }
}

}  // namespace rcx
