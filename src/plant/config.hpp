// Configuration of the SIDMAR batch-plant model (VHS case study 5).
//
// Plant layout (mirrors Figure 2 of the paper):
//
//   converter1 -> track1:  IN  M1  seg  M2  seg  M3  OUT
//   converter2 -> track2:  IN  M4  seg  M5  OUT
//   overhead crane track:  K0    K1     K2     K3    K4        K5
//                       (T1_OUT BUFFER T2_OUT HOLD  CAST_OUT  STORAGE)
//   casting machine fed from HOLD, ejecting empty ladles to CAST_OUT;
//   empty ladles leave via STORAGE.
//
// Machines 1 and 4 are type A, 2 and 5 type B, 3 type C (the paper:
// "Machines number one and four are of the same type and so are
// machines number two and five").  A recipe is a list of
// (machine type, treatment time) stages; the production order is a list
// of recipes.  Every slot holds at most one ladle, the two cranes share
// one overhead track and cannot overtake, moves take worst-case times,
// casting is continuous and each batch must finish casting within
// `rtotal` of pouring.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace plant {

enum class MachineType : uint8_t { kA, kB, kC };

/// One treatment step of a recipe.
struct Stage {
  MachineType type;
  int32_t duration;
};

/// A steel quality == its recipe (ordered treatments).
using Quality = std::vector<Stage>;

/// How much guidance is compiled into the model (paper Section 4 /
/// Table 1 columns).
enum class GuideLevel : uint8_t {
  kNone,  ///< the original model: all physical behaviours
  kSome,  ///< all guides except the `nextbatch` ones (Table 1 middle)
  kAll,   ///< every guide
};

[[nodiscard]] inline const char* toString(GuideLevel g) {
  switch (g) {
    case GuideLevel::kNone: return "No Guides";
    case GuideLevel::kSome: return "Some Guides";
    case GuideLevel::kAll: return "All Guides";
  }
  return "?";
}

// -- Plant topology constants ------------------------------------------

inline constexpr int32_t kT1Slots = 7;  ///< IN M1 seg M2 seg M3 OUT
inline constexpr int32_t kT2Slots = 5;  ///< IN M4 seg M5 OUT
inline constexpr int32_t kT1Out = 6;
inline constexpr int32_t kT2Out = 4;

/// Crane overhead positions and the ground slot each hovers over.
enum CranePos : int32_t {
  kOverT1Out = 0,
  kOverBuffer = 1,
  kOverT2Out = 2,
  kOverHold = 3,
  kOverCastOut = 4,
  kOverStorage = 5,
};
inline constexpr int32_t kCranePositions = 6;
inline constexpr int32_t kNumCranes = 2;

/// Values of the per-batch `next` guidance variable (paper Section 4:
/// "The value of next specifies where the batch should go next").
enum NextVal : int32_t {
  kNextNone = 0,
  kNextM1 = 1,
  kNextM2 = 2,
  kNextM3 = 3,
  kNextM4 = 4,
  kNextM5 = 5,
  kNextCast = 6,  ///< the paper's `fin`: go to the holding place
  kNextStore = 7, ///< empty ladle: go to the storage place
};

/// Machine catalogue: id 1..5, type, track (1/2), slot on that track.
struct MachineInfo {
  int32_t id;
  MachineType type;
  int32_t track;
  int32_t slot;
};

inline constexpr MachineInfo kMachines[5] = {
    {1, MachineType::kA, 1, 1}, {2, MachineType::kB, 1, 3},
    {3, MachineType::kC, 1, 5}, {4, MachineType::kA, 2, 1},
    {5, MachineType::kB, 2, 3},
};

/// Machine of `type` on `track`, or -1 (track 2 has no type C machine).
[[nodiscard]] constexpr int32_t machineOn(int32_t track, MachineType type) {
  for (const MachineInfo& m : kMachines) {
    if (m.track == track && m.type == type) return m.id;
  }
  return -1;
}

struct PlantConfig {
  /// Production order: the recipe of every batch, casting order == index.
  std::vector<Quality> order;

  GuideLevel guides = GuideLevel::kAll;

  // -- Worst-case movement / process times (model time units). The
  //    defaults are LEGO-plant-scale numbers; the paper re-measured
  //    them whenever the batteries wore out.
  int32_t bmove = 2;    ///< batch move between adjacent track slots
  int32_t cmove = 1;    ///< crane move between adjacent overhead positions
  int32_t cupdown = 1;  ///< crane lift / lower
  /// Casting duration. Casting is the slow stage of the real plant
  /// (continuous casting of a ladle takes far longer than a treatment),
  /// and it paces the whole pipeline: a batch's pour-to-hold path must
  /// fit within one casting period for strict continuity to be
  /// satisfiable.
  int32_t tcast = 30;
  int32_t rtotal = 90;  ///< max time from pouring to end of casting
  /// Slack allowed between one casting ending and the next starting;
  /// 0 reproduces the paper's strict continuity requirement.
  int32_t castGap = 0;

  /// Add a never-reset global clock to the model so callers can bound
  /// the schedule makespan (goal constraint `g <= B`) and binary-search
  /// time-optimal schedules — the paper's future-work direction of
  /// "generating more optimal programs".
  bool makespanClock = false;

  // -- Fault-injection switches reproducing the three modelling errors
  //    the paper found by running programs in the physical plant (§6).
  /// Error 1: "when the crane picked up an empty ladle ... it started to
  /// move horizontally at the same time as the pickup started, so here a
  /// delay was missing" — model the lift as instantaneous.
  bool bugNoLiftDelay = false;
  /// Error 2: "when two cranes ... started to move in the same direction
  /// they could collide because the crane in front was started last" —
  /// free the source overhead slot at move *start* instead of move end,
  /// so the schedule may start the rear crane first.
  bool bugFreeSourceEarly = false;
  /// Error 3: "the casting machine did not turn correctly in systems
  /// with only one batch" — skip the eject step after the final batch.
  bool bugCasterSkipsFinalEject = false;

  [[nodiscard]] int32_t numBatches() const {
    return static_cast<int32_t>(order.size());
  }
};

/// The qualities used throughout examples / benchmarks: A-then-B (the
/// paper's Figure 7 recipe shape), a single-treatment A, a B-then-C,
/// and a single C.
[[nodiscard]] inline Quality qualityAB() {
  return {{MachineType::kA, 6}, {MachineType::kB, 4}};
}
[[nodiscard]] inline Quality qualityA() { return {{MachineType::kA, 6}}; }
[[nodiscard]] inline Quality qualityB() { return {{MachineType::kB, 4}}; }
[[nodiscard]] inline Quality qualityC() { return {{MachineType::kC, 5}}; }
[[nodiscard]] inline Quality qualityBC() {
  return {{MachineType::kB, 4}, {MachineType::kC, 5}};
}

/// A production order of n batches cycling through the standard
/// qualities the way the benchmarks do.
[[nodiscard]] std::vector<Quality> standardOrder(int32_t n);

}  // namespace plant
