// The built plant model: a timed-automata network plus the handles the
// scheduling / synthesis layers need (process ids, the reachability
// goal "every batch poured, treated, cast and dumped", and counters).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/reachability.hpp"
#include "plant/config.hpp"
#include "ta/system.hpp"

namespace plant {

struct Plant {
  PlantConfig config;
  ta::System sys;

  // Process handles (indices into sys).
  std::vector<ta::ProcId> batches;
  std::vector<ta::ProcId> recipes;
  std::vector<ta::ProcId> cranes;
  ta::ProcId caster = -1;
  ta::ProcId monitor = -1;

  /// Goal: the monitor sits in its `alldone` location — every batch was
  /// cast in order and its empty ladle has left the plant.
  engine::Goal goal;

  /// The global makespan clock (only when config.makespanClock), else -1.
  ta::ClockId makespan = -1;

  [[nodiscard]] size_t numAutomata() const { return sys.numAutomata(); }
  [[nodiscard]] uint32_t numClocks() const { return sys.numClocks(); }
};

/// Build the full plant model for a configuration. The returned system
/// is finalized and ready for the engine.
[[nodiscard]] std::unique_ptr<Plant> buildPlant(const PlantConfig& cfg);

}  // namespace plant
