// Constructs the SIDMAR plant as a network of timed automata.
//
// One batch automaton and one recipe automaton per quality in the
// production order, two crane automata, one casting-machine automaton
// and one monitor (the paper's production-list automaton): 2N+4
// automata and 3N+3 clocks — 183 clocks at 60 batches, matching §5.
//
// Guides (paper Section 4) are compiled in according to
// PlantConfig::guides:
//   * kAll  adds the `nextbatch` pour ordering on top of kSome;
//   * kSome adds the per-batch `next` destination variable with
//     direct-route movement guards, the load-balancing machine choice,
//     and the `cranereq`/`wantpick` empty-crane discipline;
//   * kNone builds the original model with every physical behaviour.
#include "plant/plant.hpp"

#include <cassert>
#include <string>

namespace plant {

namespace {

using ta::ccGe;
using ta::ccLe;
using ta::ChanId;
using ta::ClockId;
using ta::Ex;
using ta::LocId;
using ta::ProcId;
using ta::VarId;

std::string num(int32_t v) { return std::to_string(v); }

class Builder {
 public:
  explicit Builder(const PlantConfig& cfg)
      : cfg_(cfg), plant_(std::make_unique<Plant>()) {
    plant_->config = cfg;
  }

  std::unique_ptr<Plant> build() {
    if (cfg_.makespanClock) plant_->makespan = sys().addClock("gtime");
    declare();
    buildCranes();
    buildCaster();
    buildMonitor();
    for (int32_t b = 0; b < n_; ++b) buildRecipe(b);
    for (int32_t b = 0; b < n_; ++b) buildBatch(b);
    sys().finalize();
    plant_->goal.locations.push_back({plant_->monitor, monitorDone_});
    return std::move(plant_);
  }

 private:
  [[nodiscard]] ta::System& sys() { return plant_->sys; }
  [[nodiscard]] bool guided() const {
    return cfg_.guides != GuideLevel::kNone;
  }
  [[nodiscard]] bool allGuides() const {
    return cfg_.guides == GuideLevel::kAll;
  }
  [[nodiscard]] Ex lit(int32_t v) { return sys().lit(v); }

  // ---------------------------------------------------------------- //

  void declare() {
    n_ = cfg_.numBatches();
    assert(n_ > 0);

    posi_ = sys().addArray("posi", kT1Slots);
    posii_ = sys().addArray("posii", kT2Slots);
    cpos_ = sys().addArray("cpos", kCranePositions);
    // Initial overhead occupancy: crane 1 over T1_OUT, crane 2 over
    // CAST_OUT (see buildCranes).
    sys().setVarInit(cpos_ + kOverT1Out, 1);
    sys().setVarInit(cpos_ + kOverCastOut, 1);
    bufocc_ = sys().addVar("bufocc");
    holdocc_ = sys().addVar("holdocc");
    castoutocc_ = sys().addVar("castoutocc");
    ndone_ = sys().addVar("ndone");
    if (guided()) {
      waitk_ = sys().addArray("waitk", kCranePositions);
      cranereq_ = sys().addArray("cranereq", kNumCranes);
      cdest_ = sys().addArray("cdest", kNumCranes);
      // Deliveries to the holding place must happen in casting order —
      // the hold is a one-slot buffer feeding the strictly ordered
      // caster, so out-of-order deliveries only lead to deadlocks the
      // search would otherwise discover very late.
      nexthold_ = sys().addVar("nexthold", 0);
      next_.reserve(static_cast<size_t>(n_));
      for (int32_t b = 0; b < n_; ++b) {
        next_.push_back(sys().addVar("next" + num(b), kNextNone));
      }
    }
    if (allGuides()) {
      nextbatch_ = sys().addVar("nextbatch", 0);
      // Pipeline-width strategy: at most kMaxInFlight batches between
      // pouring and entering the caster. Steady state needs ~2.5 (path
      // time / casting cadence), so 3 keeps every schedule reachable
      // while capping the interleaving window the search must explore.
      inflight_ = sys().addVar("inflight", 0);
    }

    chOn_.resize(static_cast<size_t>(n_));
    chOff_.resize(static_cast<size_t>(n_));
    for (int32_t b = 0; b < n_; ++b) {
      pour_.push_back(sys().addChannel("pour" + num(b)));
      incast_.push_back(sys().addChannel("incast" + num(b)));
      outcast_.push_back(sys().addChannel("outcast" + num(b)));
      castdone_.push_back(sys().addChannel("castdone" + num(b)));
      dump_.push_back(sys().addChannel("dump" + num(b)));
      for (int32_t m = 0; m < 5; ++m) {
        chOn_[static_cast<size_t>(b)].push_back(
            sys().addChannel("m" + num(m + 1) + "on" + num(b)));
        chOff_[static_cast<size_t>(b)].push_back(
            sys().addChannel("m" + num(m + 1) + "off" + num(b)));
      }
    }
    for (int32_t c = 0; c < kNumCranes; ++c) {
      pickdone_[c] = sys().addChannel("pickdone" + num(c));
      dropdone_[c] = sys().addChannel("dropdone" + num(c));
      for (int32_t k = 0; k < kCranePositions; ++k) {
        pick_[c].push_back(sys().addChannel("pick" + num(c) + "_" + num(k)));
        drop_[c].push_back(sys().addChannel("drop" + num(c) + "_" + num(k)));
      }
    }
  }

  // -- Shared expression helpers --------------------------------------

  /// Occupancy cell of the ground slot under crane position k; -1 for
  /// STORAGE, which is unbounded.
  [[nodiscard]] VarId groundOcc(int32_t k) const {
    switch (k) {
      case kOverT1Out: return posi_ + kT1Out;
      case kOverBuffer: return bufocc_;
      case kOverT2Out: return posii_ + kT2Out;
      case kOverHold: return holdocc_;
      case kOverCastOut: return castoutocc_;
      default: return -1;
    }
  }

  /// Sum of occupancy over one track (the paper's Σposi expression).
  [[nodiscard]] Ex trackLoad(int32_t track) {
    const VarId base = track == 1 ? posi_ : posii_;
    const int32_t slots = track == 1 ? kT1Slots : kT2Slots;
    Ex sum = sys().rd(base);
    for (int32_t s = 1; s < slots; ++s) sum = sum + sys().rd(base + s);
    return sum;
  }

  // ------------------------------------------------------------------ //

  void buildCranes() {
    for (int32_t c = 0; c < kNumCranes; ++c) {
      const ProcId p = sys().addAutomaton("crane" + num(c + 1));
      plant_->cranes.push_back(p);
      const ClockId cc = sys().addClock("c" + num(c + 1));
      auto& a = sys().automaton(p);

      std::vector<LocId> empty, full, rising, lowering;
      for (int32_t k = 0; k < kCranePositions; ++k) {
        empty.push_back(a.addLocation("e" + num(k)));
        full.push_back(a.addLocation("f" + num(k)));
        rising.push_back(a.addLocation("rise" + num(k), false,
                                       cfg_.bugNoLiftDelay));
        lowering.push_back(a.addLocation("lower" + num(k)));
        if (!cfg_.bugNoLiftDelay) {
          a.setInvariant(rising.back(), {ccLe(cc, cfg_.cupdown)});
        }
        a.setInvariant(lowering.back(), {ccLe(cc, cfg_.cupdown)});
      }
      // Initial positions: crane 1 over T1_OUT, crane 2 over CAST_OUT.
      const int32_t k0 = c == 0 ? kOverT1Out : kOverCastOut;
      a.setInitial(empty[static_cast<size_t>(k0)]);

      // Moves, empty and full, both directions.
      for (int32_t k = 0; k < kCranePositions; ++k) {
        for (const int32_t dir : {+1, -1}) {
          const int32_t k2 = k + dir;
          if (k2 < 0 || k2 >= kCranePositions) continue;
          const std::string dirName = dir > 0 ? "Right" : "Left";
          const std::string label =
              "Crane" + num(c + 1) + ".Move1" + dirName;
          for (const bool isFull : {false, true}) {
            const std::vector<LocId>& at = isFull ? full : empty;
            const LocId mv = a.addLocation(
                std::string(isFull ? "fmv" : "emv") + num(k) + dirName);
            a.setInvariant(mv, {ccLe(cc, cfg_.cmove)});
            auto eb = sys().edge(p, at[static_cast<size_t>(k)], mv);
            eb.guard(sys().rdCell(cpos_, k2, kCranePositions) == 0)
                .reset(cc)
                .assignCellConst(cpos_, k2, kCranePositions, 1)
                .label(label);
            if (cfg_.bugFreeSourceEarly) {
              // Error 2 variant: the source slot frees the moment the
              // move starts, so the schedule may start a rear crane
              // into this slot at the same instant.
              eb.assignCellConst(cpos_, k, kCranePositions, 0);
            }
            if (guided()) {
              // Division of labour (a strategy in the paper's sense):
              // crane 1 serves the tracks and the holding place
              // (K0..K3), crane 2 clears empty ladles (K4..K5).
              const int32_t rangeLo = c == 0 ? kOverT1Out : kOverCastOut;
              const int32_t rangeHi = c == 0 ? kOverHold : kOverStorage;
              if (k2 < rangeLo || k2 > rangeHi) {
                eb.guard(lit(0));
              } else if (isFull) {
                // A loaded crane is always guided by its destination.
                eb.guard(dir > 0
                             ? sys().rdCell(cdest_, c, kNumCranes) > k
                             : sys().rdCell(cdest_, c, kNumCranes) < k);
              } else {
                // An empty crane moves only toward a slot where a batch
                // waits to be picked up (or when pushed by the other
                // crane).  Pickup slots per crane: crane 1 serves
                // T1_OUT (K0) and T2_OUT (K2), crane 2 serves CAST_OUT
                // (K4).
                Ex g = sys().rdCell(cranereq_, c, kNumCranes) != 0;
                for (const int32_t j :
                     {kOverT1Out, kOverT2Out, kOverCastOut}) {
                  if (j < rangeLo || j > rangeHi) continue;
                  const bool toward = dir > 0 ? j >= k2 : j <= k2;
                  if (!toward) continue;
                  g = g || (sys().rdCell(waitk_, j, kCranePositions) > 0);
                }
                eb.guard(g);
                eb.assignCellConst(cranereq_, c, kNumCranes, 0);
              }
            }
            auto arrive =
                sys().edge(p, mv, at[static_cast<size_t>(k2)])
                    .when(ccGe(cc, cfg_.cmove));
            if (!cfg_.bugFreeSourceEarly) {
              arrive.assignCellConst(cpos_, k, kCranePositions, 0);
            }
          }
        }
        // A loaded crane blocked by the other crane raises cranereq for
        // it (paper: "will set the cranereq variable to allow the
        // blocking crane to leave").
        if (guided()) {
          const int32_t other = 1 - c;
          for (const int32_t dir : {+1, -1}) {
            const int32_t k2 = k + dir;
            if (k2 < 0 || k2 >= kCranePositions) continue;
            sys().edge(p, full[static_cast<size_t>(k)],
                       full[static_cast<size_t>(k)])
                .guard((sys().rdCell(cpos_, k2, kCranePositions) == 1) &&
                       (dir > 0 ? sys().rdCell(cdest_, c, kNumCranes) > k
                                : sys().rdCell(cdest_, c, kNumCranes) < k) &&
                       (sys().rdCell(cranereq_, other, kNumCranes) == 0))
                .assignCellConst(cranereq_, other, kNumCranes, 1);
          }
        }
        // Pickup / putdown handshakes.
        if (cfg_.bugNoLiftDelay) {
          // Error 1 variant: the lift takes no model time (rising is a
          // committed location), so a Move can be scheduled at the same
          // instant as the Pickup.
          sys().edge(p, empty[static_cast<size_t>(k)],
                     rising[static_cast<size_t>(k)])
              .receive(pick_[c][static_cast<size_t>(k)]);
          sys().edge(p, rising[static_cast<size_t>(k)],
                     full[static_cast<size_t>(k)])
              .send(pickdone_[c]);
        } else {
          sys().edge(p, empty[static_cast<size_t>(k)],
                     rising[static_cast<size_t>(k)])
              .receive(pick_[c][static_cast<size_t>(k)])
              .reset(cc);
          sys().edge(p, rising[static_cast<size_t>(k)],
                     full[static_cast<size_t>(k)])
              .when(ccGe(cc, cfg_.cupdown))
              .send(pickdone_[c]);
        }
        sys().edge(p, full[static_cast<size_t>(k)],
                   lowering[static_cast<size_t>(k)])
            .receive(drop_[c][static_cast<size_t>(k)])
            .reset(cc);
        sys().edge(p, lowering[static_cast<size_t>(k)],
                   empty[static_cast<size_t>(k)])
            .when(ccGe(cc, cfg_.cupdown))
            .send(dropdone_[c]);
      }
    }
  }

  // ------------------------------------------------------------------ //

  void buildCaster() {
    const ProcId p = sys().addAutomaton("caster");
    plant_->caster = p;
    const ClockId kc = sys().addClock("k");
    auto& a = sys().automaton(p);

    const LocId await0 = a.addLocation("await");
    a.setInitial(await0);
    const LocId doneLoc = a.addLocation("done");

    LocId prevGap = await0;
    for (int32_t b = 0; b < n_; ++b) {
      const LocId casting = a.addLocation("cast" + num(b));
      a.setInvariant(casting, {ccLe(kc, cfg_.tcast)});
      const LocId ejected =
          a.addLocation("ej" + num(b), false, /*committed=*/true);
      // The holding-place batch slides into the caster.
      sys().edge(p, prevGap, casting)
          .receive(incast_[static_cast<size_t>(b)])
          .reset(kc);
      // Eject the empty ladle to CAST_OUT exactly when casting ends;
      // the output slot must already be clear.
      auto eject = sys().edge(p, casting, ejected)
                       .when(ccGe(kc, cfg_.tcast))
                       .guard(sys().rd(castoutocc_) == 0)
                       .send(outcast_[static_cast<size_t>(b)])
                       .assign(castoutocc_, 1);
      if (!(cfg_.bugCasterSkipsFinalEject && b == n_ - 1)) {
        // Error 3 variant: the final eject carries no command label, so
        // the synthesized program never tells the physical caster to
        // turn out the last ladle.
        eject.label("Caster.Eject" + num(b + 1));
      } else {
        eject.label("");
      }
      if (b == n_ - 1) {
        sys().edge(p, ejected, doneLoc)
            .send(castdone_[static_cast<size_t>(b)]);
      } else {
        const LocId gap = a.addLocation("gap" + num(b));
        // Continuity: the clock is NOT reset at eject, so the next
        // incast must fire within castGap of the previous cast ending.
        a.setInvariant(gap, {ccLe(kc, cfg_.tcast + cfg_.castGap)});
        sys().edge(p, ejected, gap).send(castdone_[static_cast<size_t>(b)]);
        prevGap = gap;
      }
    }
  }

  // ------------------------------------------------------------------ //

  void buildMonitor() {
    const ProcId p = sys().addAutomaton("list");
    plant_->monitor = p;
    auto& a = sys().automaton(p);
    const LocId run = a.addLocation("run");
    a.setInitial(run);
    monitorDone_ = a.addLocation("alldone");
    for (int32_t b = 0; b < n_; ++b) {
      sys().edge(p, run, run)
          .receive(dump_[static_cast<size_t>(b)])
          .assign(ndone_, sys().rd(ndone_) + 1);
    }
    sys().edge(p, run, monitorDone_).guard(sys().rd(ndone_) == n_);
  }

  // ------------------------------------------------------------------ //

  /// Machine chosen for stage `i` of recipe `q` when the previous stage
  /// ran on `track` (same track preferred; falls back to the other).
  [[nodiscard]] static int32_t stageMachine(const Quality& q, size_t i,
                                            int32_t track) {
    const int32_t same = machineOn(track, q[i].type);
    if (same > 0) return same;
    return machineOn(3 - track, q[i].type);
  }

  void buildRecipe(int32_t b) {
    const Quality& q = cfg_.order[static_cast<size_t>(b)];
    assert(!q.empty());
    const auto stages = static_cast<int32_t>(q.size());
    const ProcId p = sys().addAutomaton("recipe" + num(b));
    plant_->recipes.push_back(p);
    const ClockId t = sys().addClock("t" + num(b));
    const ClockId tot = sys().addClock("tot" + num(b));
    auto& a = sys().automaton(p);

    const LocId setoff = a.addLocation("setoff");
    a.setInitial(setoff);
    std::vector<LocId> wait;
    for (int32_t i = 0; i < stages; ++i) {
      wait.push_back(a.addLocation("wait" + num(i)));
      // Intermediate deadline (the paper's rtotalby3 / rtotalby2
      // invariants in Figure 7): stage i must start in time.
      a.setInvariant(wait.back(),
                     {ccLe(tot, cfg_.rtotal * (i + 1) / (stages + 1))});
    }
    const LocId rend = a.addLocation("rend");
    a.setInvariant(rend, {ccLe(tot, cfg_.rtotal)});
    const LocId done = a.addLocation("done");

    sys().edge(p, setoff, wait[0])
        .receive(pour_[static_cast<size_t>(b)])
        .reset(tot);

    for (int32_t i = 0; i < stages; ++i) {
      const LocId to = i + 1 < stages ? wait[static_cast<size_t>(i + 1)] : rend;
      const int32_t dur = q[static_cast<size_t>(i)].duration;
      const int32_t treatDeadline =
          i + 1 < stages ? cfg_.rtotal * (i + 2) / (stages + 2) : cfg_.rtotal;
      // One treating branch per machine instance of this stage's type.
      for (const MachineInfo& m : kMachines) {
        if (m.type != q[static_cast<size_t>(i)].type) continue;
        const LocId treat = a.addLocation("on" + num(i) + "m" + num(m.id));
        a.setInvariant(treat, {ccLe(t, dur), ccLe(tot, treatDeadline)});
        auto on = sys().edge(p, wait[static_cast<size_t>(i)], treat)
                      .send(chOn_[b][static_cast<size_t>(m.id - 1)])
                      .reset(t)
                      .label("Load" + num(b + 1) + ".Machine" + num(m.id) +
                             "On");
        if (guided()) {
          // Only the machine the `next` guide selected may start.
          on.guard(sys().rd(next_[static_cast<size_t>(b)]) == m.id);
        }
        if (allGuides() && i == stages - 1) {
          // The delayed `nextbatch` update (paper §4): the successor
          // batch may pour once this batch STARTS its final treatment.
          // (Updating at the treatment's end looks tempting but makes
          // long orders infeasible: two-stage batches downstream miss
          // their holding-place window.)
          on.assign(nextbatch_, sys().rd(nextbatch_) + 1);
        }
        auto off = sys().edge(p, treat, to)
                       .when(ccGe(t, dur))
                       .send(chOff_[b][static_cast<size_t>(m.id - 1)])
                       .label("Load" + num(b + 1) + ".Machine" + num(m.id) +
                              "Off");
        if (guided()) {
          const int32_t nextVal =
              i + 1 < stages
                  ? stageMachine(q, static_cast<size_t>(i + 1), m.track)
                  : kNextCast;
          off.assign(next_[static_cast<size_t>(b)], nextVal);
        }
      }
    }
    sys().edge(p, rend, done).receive(castdone_[static_cast<size_t>(b)]);
  }

  // ------------------------------------------------------------------ //

  // Direct-route movement guards (paper Figure 4): from slot s, a batch
  // may move only toward its `next` destination.  `next` values:
  // m1..m5 = 1..5, fin(cast) = 6, store = 7.
  [[nodiscard]] Ex guardRight1(int32_t s, int32_t b) {
    const Ex nx = sys().rd(next_[static_cast<size_t>(b)]);
    switch (s) {
      case 0: return nx >= kNextM1;
      case 1:
      case 2: return nx >= kNextM2;
      case 3:
      case 4: return nx >= kNextM3;
      case 5: return nx >= kNextM4;  // m4/m5 (cross-track) or fin
      default: return lit(0);
    }
  }
  [[nodiscard]] Ex guardLeft1(int32_t s, int32_t b) {
    const Ex nx = sys().rd(next_[static_cast<size_t>(b)]);
    switch (s) {
      case 6: return nx <= kNextM3;
      case 5:
      case 4: return nx <= kNextM2;
      case 3:
      case 2: return nx <= kNextM1;
      default: return lit(0);  // never back into the converter slot
    }
  }
  [[nodiscard]] Ex guardRight2(int32_t s, int32_t b) {
    const Ex nx = sys().rd(next_[static_cast<size_t>(b)]);
    switch (s) {
      case 0: return nx >= kNextM1;  // anything: M4 stops it at slot 1
      case 1:
      case 2: return (nx >= kNextM5) || (nx <= kNextM3);
      case 3: return (nx >= kNextCast) || (nx <= kNextM3);
      default: return lit(0);
    }
  }
  [[nodiscard]] Ex guardLeft2(int32_t s, int32_t b) {
    const Ex nx = sys().rd(next_[static_cast<size_t>(b)]);
    switch (s) {
      case 4: return (nx >= kNextM4) && (nx <= kNextM5);
      case 3:
      case 2: return nx == kNextM4;
      default: return lit(0);
    }
  }

  /// Guided pickup condition at crane position k (the batch needs a
  /// crane from that slot).
  [[nodiscard]] Ex guardPick(int32_t k, int32_t b) {
    const Ex nx = sys().rd(next_[static_cast<size_t>(b)]);
    switch (k) {
      case kOverT1Out: return (nx >= kNextM4) && (nx <= kNextCast);
      case kOverT2Out: return (nx <= kNextM3) || (nx == kNextCast);
      case kOverCastOut: return nx == kNextStore;
      default: return lit(0);
    }
  }

  /// Guided drop condition at crane position k.
  [[nodiscard]] Ex guardDrop(int32_t k, int32_t b) {
    const Ex nx = sys().rd(next_[static_cast<size_t>(b)]);
    switch (k) {
      case kOverT1Out: return nx <= kNextM3;
      case kOverT2Out: return (nx >= kNextM4) && (nx <= kNextM5);
      case kOverHold: return nx == kNextCast;
      case kOverStorage: return nx == kNextStore;
      default: return lit(0);
    }
  }

  /// Crane destination for the batch's `next` value (set at pickup).
  [[nodiscard]] Ex craneDest(int32_t b) {
    const Ex nx = sys().rd(next_[static_cast<size_t>(b)]);
    return Ex::ite(nx == kNextCast, lit(kOverHold),
                   Ex::ite(nx == kNextStore, lit(kOverStorage),
                           Ex::ite(nx <= kNextM3, lit(kOverT1Out),
                                   lit(kOverT2Out))));
  }

  void buildBatch(int32_t b) {
    const Quality& q = cfg_.order[static_cast<size_t>(b)];
    const ProcId p = sys().addAutomaton("load" + num(b + 1));
    plant_->batches.push_back(p);
    const ClockId x = sys().addClock("x" + num(b));
    auto& a = sys().automaton(p);
    const std::string lb = "Load" + num(b + 1);

    const LocId src = a.addLocation("src");
    a.setInitial(src);
    std::vector<LocId> at1, at2;
    for (int32_t s = 0; s < kT1Slots; ++s) {
      at1.push_back(a.addLocation("t1_" + num(s)));
    }
    for (int32_t s = 0; s < kT2Slots; ++s) {
      at2.push_back(a.addLocation("t2_" + num(s)));
    }
    const LocId atBuf = a.addLocation("at_buf");
    const LocId atHold = a.addLocation("at_hold");
    const LocId atCastOut = a.addLocation("at_castout");
    const LocId atStore = a.addLocation("at_store");
    const LocId inCast = a.addLocation("in_cast");
    const LocId doneLoc = a.addLocation("done");

    // -- Pouring: one edge per converter. ------------------------------
    for (const int32_t track : {1, 2}) {
      const VarId occ = track == 1 ? posi_ : posii_;
      const int32_t slots = track == 1 ? kT1Slots : kT2Slots;
      const LocId dst = track == 1 ? at1[0] : at2[0];
      auto e = sys().edge(p, src, dst)
                   .send(pour_[static_cast<size_t>(b)])
                   .guard(sys().rdCell(occ, 0, slots) == 0)
                   .assignCellConst(occ, 0, slots, 1)
                   .label(lb + ".Pour" + num(track));
      if (allGuides()) {
        e.guard((sys().rd(nextbatch_) == b) &&
                (sys().rd(inflight_) < kMaxInFlight));
        e.assign(inflight_, sys().rd(inflight_) + 1);
      }
      if (guided()) {
        const int32_t first = machineOn(track, q[0].type);
        bool needsTrack1 = false;
        for (const Stage& st : q) {
          if (machineOn(2, st.type) < 0) needsTrack1 = true;
        }
        if (first < 0 || (needsTrack1 && track == 2)) {
          // This converter cannot serve the recipe under guidance
          // (recipes touching machine 3 are pinned to track 1).
          e.guard(lit(0));
        } else {
          if (!needsTrack1) {
            // Load-balancing converter choice (the paper's Σposi vs
            // Σposii expression); ties break to track 1.
            e.guard(track == 1 ? trackLoad(1) <= trackLoad(2)
                               : trackLoad(2) < trackLoad(1));
          }
          e.assign(next_[static_cast<size_t>(b)], first);
        }
      }
    }

    // -- Track movement (two-phase, like the paper's i2 -> i1aa -> i1). -
    const auto addMoves = [&](int32_t track) {
      const VarId occ = track == 1 ? posi_ : posii_;
      const int32_t slots = track == 1 ? kT1Slots : kT2Slots;
      const std::vector<LocId>& at = track == 1 ? at1 : at2;
      const int32_t outSlot = track == 1 ? kT1Out : kT2Out;
      for (int32_t s = 0; s < slots; ++s) {
        for (const int32_t dir : {+1, -1}) {
          const int32_t s2 = s + dir;
          if (s2 < 0 || s2 >= slots) continue;
          const std::string dirName = dir > 0 ? "Right" : "Left";
          const LocId mv = a.addLocation("mv_t" + num(track) + "_" + num(s) +
                                         (dir > 0 ? "r" : "l"));
          a.setInvariant(mv, {ccLe(x, cfg_.bmove)});
          auto start = sys().edge(p, at[static_cast<size_t>(s)], mv)
                           .reset(x)
                           .assignCellConst(occ, s2, slots, 1)
                           .assignCellConst(occ, s, slots, 0)
                           .label(lb + ".Track" + num(track) + dirName);
          Ex g = sys().rdCell(occ, s2, slots) == 0;
          if (guided()) {
            const Ex gg = track == 1
                              ? (dir > 0 ? guardRight1(s, b) : guardLeft1(s, b))
                              : (dir > 0 ? guardRight2(s, b) : guardLeft2(s, b));
            g = g && gg;
          }
          start.guard(g);
          auto land = sys().edge(p, mv, at[static_cast<size_t>(s2)])
                          .when(ccGe(x, cfg_.bmove));
          if (guided() && dir > 0 && s2 == outSlot) {
            // Arriving at the track exit: the batch now waits for a
            // crane (direct-route guards ensure it only comes here when
            // it needs one).
            const VarId w =
                waitk_ + (track == 1 ? kOverT1Out : kOverT2Out);
            land.assign(w, sys().rd(w) + 1);
          }
        }
      }
    };
    addMoves(1);
    addMoves(2);

    // -- Machine treatment: handshake with the recipe. ------------------
    for (const MachineInfo& m : kMachines) {
      bool used = false;
      for (const Stage& st : q) used = used || st.type == m.type;
      if (!used) continue;
      const LocId slotLoc = m.track == 1 ? at1[static_cast<size_t>(m.slot)]
                                         : at2[static_cast<size_t>(m.slot)];
      const LocId busy = a.addLocation("busy_m" + num(m.id));
      sys().edge(p, slotLoc, busy)
          .receive(chOn_[b][static_cast<size_t>(m.id - 1)]);
      sys().edge(p, busy, slotLoc)
          .receive(chOff_[b][static_cast<size_t>(m.id - 1)]);
    }

    // -- Crane handshakes. ----------------------------------------------
    const auto groundLoc = [&](int32_t k) -> LocId {
      switch (k) {
        case kOverT1Out: return at1[kT1Out];
        case kOverBuffer: return atBuf;
        case kOverT2Out: return at2[kT2Out];
        case kOverHold: return atHold;
        case kOverCastOut: return atCastOut;
        default: return atStore;
      }
    };
    for (int32_t c = 0; c < kNumCranes; ++c) {
      const LocId rise = a.addLocation("rise_c" + num(c + 1));
      const LocId carried = a.addLocation("carried_c" + num(c + 1));
      sys().edge(p, rise, carried).receive(pickdone_[c]);
      for (int32_t k = 0; k < kCranePositions; ++k) {
        // Pickup (STORAGE is exit-only, HOLD feeds the caster — but the
        // unguided model allows repositioning picks from any slot with
        // a ladle; guided guards restrict to useful picks).
        if (k != kOverStorage) {
          auto e = sys().edge(p, groundLoc(k), rise)
                       .send(pick_[c][static_cast<size_t>(k)])
                       .label("Crane" + num(c + 1) + ".Pickup" + num(k));
          const VarId occ = groundOcc(k);
          e.assign(occ, 0);
          if (guided()) {
            e.guard(guardPick(k, b));
            // A hold-bound pickup must respect the casting order.
            e.guard((sys().rd(next_[static_cast<size_t>(b)]) != kNextCast) ||
                    (sys().rd(nexthold_) == b));
            e.assign(waitk_ + k, sys().rd(waitk_ + k) - 1);
            e.assignCell(cdest_, lit(c), kNumCranes, craneDest(b));
          }
        }
        // Putdown.
        const LocId lower = a.addLocation("lower_c" + num(c + 1) + "_" +
                                          num(k));
        auto e = sys().edge(p, carried, lower)
                     .send(drop_[c][static_cast<size_t>(k)])
                     .label("Crane" + num(c + 1) + ".Putdown" + num(k));
        Ex g = lit(1);
        const VarId occ = groundOcc(k);
        if (occ >= 0) {
          g = sys().rd(occ) == 0;
          e.assign(occ, 1);
        }
        if (guided()) {
          g = g && guardDrop(k, b);
          if (k == kOverHold) {
            e.assign(nexthold_, sys().rd(nexthold_) + 1);
          }
        }
        e.guard(g);
        sys().edge(p, lower, groundLoc(k)).receive(dropdone_[c]);
      }
    }

    // -- Casting and exit. -----------------------------------------------
    {
      auto e = sys().edge(p, atHold, inCast)
                   .send(incast_[static_cast<size_t>(b)])
                   .assign(holdocc_, 0)
                   .label("Caster.Start" + num(b + 1));
      if (guided()) {
        e.guard(sys().rd(next_[static_cast<size_t>(b)]) == kNextCast);
      }
      if (allGuides()) {
        e.assign(inflight_, sys().rd(inflight_) - 1);
      }
    }
    {
      auto e = sys().edge(p, inCast, atCastOut)
                   .receive(outcast_[static_cast<size_t>(b)]);
      if (guided()) {
        e.assign(next_[static_cast<size_t>(b)], kNextStore);
        e.assign(waitk_ + kOverCastOut,
                 sys().rd(waitk_ + kOverCastOut) + 1);
      }
    }
    sys().edge(p, atStore, doneLoc)
        .send(dump_[static_cast<size_t>(b)])
        .label(lb + ".Exit");
  }

  // ------------------------------------------------------------------ //

  const PlantConfig& cfg_;
  std::unique_ptr<Plant> plant_;
  int32_t n_ = 0;

  // Variables.
  VarId posi_ = -1, posii_ = -1, cpos_ = -1;
  VarId bufocc_ = -1, holdocc_ = -1, castoutocc_ = -1, ndone_ = -1;
  VarId waitk_ = -1, cranereq_ = -1, cdest_ = -1, nextbatch_ = -1;
  VarId nexthold_ = -1, inflight_ = -1;

  static constexpr int32_t kMaxInFlight = 2;
  std::vector<VarId> next_;

  // Channels.
  std::vector<ChanId> pour_, incast_, outcast_, castdone_, dump_;
  std::vector<std::vector<ChanId>> chOn_, chOff_;
  ChanId pickdone_[kNumCranes] = {-1, -1};
  ChanId dropdone_[kNumCranes] = {-1, -1};
  std::vector<ChanId> pick_[kNumCranes], drop_[kNumCranes];

  LocId monitorDone_ = -1;
};

}  // namespace

std::unique_ptr<Plant> buildPlant(const PlantConfig& cfg) {
  return Builder(cfg).build();
}

std::vector<Quality> standardOrder(int32_t n) {
  std::vector<Quality> order;
  order.reserve(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    switch (i % 3) {
      case 0: order.push_back(qualityAB()); break;
      case 1: order.push_back(qualityA()); break;
      default: order.push_back(qualityB()); break;
    }
  }
  return order;
}

}  // namespace plant
