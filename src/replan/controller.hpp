// Closed-loop execution: run a synthesized program against the
// simulated plant, and when a fatal deviation ends a segment, replan
// from the captured snapshot and splice the repair schedule back in.
//
// One "segment" = one program execution (rcx::runProgram) with fatal
// classification on. A clean segment ends the run; a fatal one yields a
// quiesced PlantSnapshot, which synthesis::resumeFrom turns into a
// repair schedule (or a safe stop, at the bottom of the degradation
// ladder). Each repair segment gets:
//   - a fresh program (commands numbered from 1; per-unit dedup state
//     resets, stale in-flight traffic is discarded at the splice),
//   - the snapshot's drift factors and crash downtimes preset on a
//     fresh channel with a per-segment derived seed,
//   - an absolute start tick = capture tick + replanChargeTicks, so the
//     replanning latency charged to the plant is a fixed, deterministic
//     cost rather than host wall time.
#pragma once

#include <string>
#include <vector>

#include "plant/config.hpp"
#include "rcx/plant_sim.hpp"
#include "replan/resume.hpp"
#include "synthesis/rcx_codegen.hpp"

namespace replan {

struct ControllerOptions {
  /// Channel / fault configuration applied to every segment (the seed
  /// is re-derived per segment so repair traffic draws a fresh but
  /// reproducible stream).
  rcx::SimOptions sim;
  /// Codegen profile for the initial program AND every repair program.
  synthesis::CodegenOptions codegen;
  int32_t ticksPerTimeUnit = 100;
  /// Replans allowed before giving up (a plant that keeps deviating is
  /// not going to be saved by a fourth schedule).
  int maxReplans = 3;
  /// Deterministic simulated cost of one replan, in ticks: the repair
  /// segment starts this much after the capture tick. Casting that is
  /// already running continues through it.
  int64_t replanChargeTicks = 2000;
  synthesis::ResumeOptions resume;
};

struct SegmentInfo {
  rcx::DeviationKind deviation = rcx::DeviationKind::kNone;
  std::string detail;
  bool replanned = false;  ///< this segment ended in a splice
  int ladderLevel = -1;    ///< resumeFrom ladder level (when replanned)
  double replanSeconds = 0.0;  ///< wall-clock replan latency
  int64_t capturedTick = 0;
  size_t inFlightDropped = 0;  ///< stale messages discarded at the splice
};

struct RunReport {
  /// The final segment completed its program with every ladle out and
  /// no physical error (under that segment's repair configuration).
  bool success = false;
  bool safeStopped = false;  ///< ladder exhausted or replan budget spent
  std::string safeStopReason;
  int replans = 0;
  /// Highest ladder level any repair used (-1: never replanned). A 1
  /// means at least one segment ran under relaxed deadlines — success
  /// with degraded quality guarantees.
  int maxLadderLevel = -1;
  std::vector<SegmentInfo> segments;
  std::vector<double> replanLatencySeconds;
  rcx::SimResult finalResult;  ///< result of the last segment run
};

/// Execute `schedule` with closed-loop replanning. `cfg` is the
/// original (strict) plant configuration; repair segments may run under
/// the relaxed configuration resumeFrom selects.
[[nodiscard]] RunReport runWithReplanning(const plant::PlantConfig& cfg,
                                          const synthesis::Schedule& schedule,
                                          const ControllerOptions& opts);

}  // namespace replan
