#include "replan/resume.hpp"

#include <chrono>

#include "engine/reachability.hpp"
#include "engine/trace.hpp"

namespace synthesis {

namespace {

/// Level 0: best-first makespan optimization on the strictly lifted
/// model. Returns true when a schedule was found (optimal or anytime
/// incumbent under the state budget).
bool tryStrict(const rcx::PlantSnapshot& snap, const plant::PlantConfig& cfg,
               const ResumeOptions& opts, ResumeOutcome* out) {
  plant::PlantConfig strictCfg = cfg;
  strictCfg.makespanClock = true;  // cost clock for the priced search
  replan::Lifted lifted =
      replan::liftSnapshot(snap, strictCfg, replan::LiftMode::kStrict);
  out->lift = lifted.report;
  if (!lifted.report.feasible) return false;

  OptimizeOptions oo;
  oo.optimizer = Optimizer::kBestFirst;
  oo.engine = opts.engine;
  oo.engine.order = engine::SearchOrder::kDfs;
  oo.engine.dfsReverse = true;  // the guided model's fast direction
  oo.engine.maxStates = opts.strictMaxStates;
  const OptimizeResult res = optimizeMakespan(
      lifted.plant->sys, lifted.plant->goal, lifted.plant->makespan, oo);
  out->stats = res.stats;
  if (!res.feasible) return false;

  out->feasible = true;
  out->ladderLevel = 0;
  out->optimal = res.optimal;
  out->makespan = res.optimalMakespan;
  out->schedule = res.schedule;
  out->repairCfg = cfg;
  return true;
}

/// Level 1: first-found depth-first schedule on the relaxed model.
bool tryRelaxed(const rcx::PlantSnapshot& snap, const plant::PlantConfig& cfg,
                const ResumeOptions& opts, ResumeOutcome* out) {
  const plant::PlantConfig rcfg = replan::relaxedConfig(cfg);
  replan::Lifted lifted =
      replan::liftSnapshot(snap, rcfg, replan::LiftMode::kRelaxed);
  out->lift = lifted.report;
  if (!lifted.report.feasible) return false;

  engine::Options eo = opts.engine;
  eo.order = engine::SearchOrder::kDfs;
  eo.dfsReverse = true;
  eo.maxStates = opts.relaxedMaxStates;
  engine::Reachability checker(lifted.plant->sys, eo);
  const engine::Result res = checker.run(lifted.plant->goal);
  out->stats = res.stats;
  if (!res.reachable) return false;

  std::string err;
  const auto ct = engine::concretize(lifted.plant->sys, res.trace, &err);
  if (!ct.has_value()) {
    out->lift.notes.push_back("relaxed trace concretization failed: " + err);
    return false;
  }
  out->feasible = true;
  out->ladderLevel = 1;
  out->optimal = false;
  out->schedule = project(lifted.plant->sys, *ct);
  out->makespan = out->schedule.makespan;
  out->repairCfg = rcfg;
  return true;
}

}  // namespace

ResumeOutcome resumeFrom(const rcx::PlantSnapshot& snap,
                         const plant::PlantConfig& cfg,
                         const ResumeOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  ResumeOutcome out;
  out.repairCfg = cfg;

  if (!opts.tryStrict || !tryStrict(snap, cfg, opts, &out)) {
    if (!tryRelaxed(snap, cfg, opts, &out)) {
      out.feasible = false;
      out.ladderLevel = 2;  // safe stop
    }
  }

  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

}  // namespace synthesis
