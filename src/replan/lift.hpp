// State lifting: map a concrete PlantSnapshot (rcx/snapshot.hpp) onto a
// symbolic initial state of the plant model, so the synthesis layer can
// re-run the search "from here" instead of from an empty plant.
//
// The simulator quiesces the plant before capturing, so every snapshot
// place corresponds to exactly one model location (a ladle stands on a
// slot or pad, hangs from a stationary crane, or sits in the caster) —
// the discrete part of the lift is exact. Clocks are the only lossy
// part: tick counts are rounded to whole model time units, rounding
// *up* for deadline clocks (tot<b>, the caster continuity clock) so the
// lifted model never believes it has more slack than the plant does,
// and *down* for progress clocks (t<b>, casting progress) so a repair
// schedule never cuts a treatment or a cast short.
//
// kStrict keeps the original timing constraints: if the concrete state
// already violates one (e.g. the caster continuity window expired while
// the plant was quiesced), the lift reports infeasible and the
// degradation ladder moves on. kRelaxed clamps clock values into the
// invariant ranges instead — used together with relaxedConfig(), which
// widens the deadlines themselves, to salvage the metal that can still
// be salvaged.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "plant/plant.hpp"
#include "rcx/snapshot.hpp"

namespace replan {

enum class LiftMode : uint8_t {
  kStrict,   ///< original deadlines; out-of-range clock => infeasible
  kRelaxed,  ///< clamp clocks into the invariant ranges
};

[[nodiscard]] inline const char* liftModeName(LiftMode m) {
  return m == LiftMode::kStrict ? "strict" : "relaxed";
}

struct LiftReport {
  /// The lifted initial state satisfies every location invariant (after
  /// clamping, in kRelaxed mode). When false the state is still
  /// installed — engines report it unreachable — but searching it is
  /// pointless.
  bool feasible = true;
  int clampedClocks = 0;  ///< clock values pulled back into range
  std::vector<std::string> notes;
};

struct Lifted {
  /// Freshly built plant whose system's initial locations, variable
  /// values and clock values encode the snapshot.
  std::unique_ptr<plant::Plant> plant;
  LiftReport report;
};

/// Build the plant model for `cfg` and override its initial state with
/// the snapshot's concrete state. `cfg` must describe the same
/// production order the snapshot was captured under (same batch count
/// and recipes); timing constants may differ (that is how the
/// degradation ladder relaxes deadlines).
[[nodiscard]] Lifted liftSnapshot(const rcx::PlantSnapshot& snap,
                                  const plant::PlantConfig& cfg,
                                  LiftMode mode);

/// The degradation ladder's relaxed repair configuration: the recipe
/// total-time deadline and the casting continuity window are widened so
/// a plant that already blew the original deadlines can still finish
/// mechanically. Treatment durations, move times and the casting
/// duration are physical and stay unchanged.
[[nodiscard]] plant::PlantConfig relaxedConfig(const plant::PlantConfig& cfg);

}  // namespace replan
