#include "replan/lift.hpp"

#include <algorithm>
#include <map>

#include "dbm/bound.hpp"

namespace replan {

namespace {

using plant::kMachines;
using plant::machineOn;
using rcx::LoadSnapshot;
using Place = rcx::LoadSnapshot::Place;

std::string num(int32_t v) { return std::to_string(v); }

/// Round ticks up to whole model time units (deadline clocks: the model
/// must never believe less time passed than actually did).
int64_t unitsUp(int64_t ticks, int64_t tpu) {
  if (ticks <= 0) return 0;
  return (ticks + tpu - 1) / tpu;
}

/// Round down (progress clocks: never credit unfinished work).
int64_t unitsDown(int64_t ticks, int64_t tpu) {
  return ticks <= 0 ? 0 : ticks / tpu;
}

/// The successor machine the guided model deterministically assigns
/// (mirrors Builder::stageMachine: same track preferred).
int32_t stageMachine(const plant::Quality& q, size_t i, int32_t track) {
  const int32_t same = machineOn(track, q[i].type);
  if (same > 0) return same;
  return machineOn(3 - track, q[i].type);
}

class Lifter {
 public:
  Lifter(const rcx::PlantSnapshot& snap, const plant::PlantConfig& cfg,
         LiftMode mode)
      : snap_(snap), cfg_(cfg), mode_(mode) {}

  Lifted run() {
    Lifted out;
    out.plant = plant::buildPlant(cfg_);
    p_ = out.plant.get();
    sys_ = &p_->sys;
    clockVals_.assign(sys_->numClocks() + 1, 0);

    if (snap_.numBatches() != cfg_.numBatches()) {
      fail("snapshot has " + num(snap_.numBatches()) + " batches, config " +
           num(cfg_.numBatches()));
      out.report = report_;
      return out;
    }
    if (snap_.ticksPerTimeUnit <= 0) {
      fail("snapshot carries no tick resolution");
      out.report = report_;
      return out;
    }
    tpu_ = snap_.ticksPerTimeUnit;
    if (!snap_.quiescent) {
      // Defensive captures (quiescence deadline expired) still map to
      // *some* location, but the rounding guarantees are void.
      note("snapshot not quiescent: lift is best-effort");
    }

    deriveNext();
    liftLoads();
    liftCranes();
    liftCaster();
    liftMonitor();
    liftVars();
    applyClocks();

    out.report = report_;
    return out;
  }

 private:
  // ---- bookkeeping ------------------------------------------------- //

  void note(std::string s) { report_.notes.push_back(std::move(s)); }
  void fail(std::string s) {
    report_.feasible = false;
    report_.notes.push_back(std::move(s));
  }

  void setLoc(ta::ProcId proc, const std::string& name) {
    auto& a = sys_->automaton(proc);
    const ta::LocId l = a.findLocation(name);
    if (l < 0) {
      fail("automaton " + a.name() + " has no location '" + name + "'");
      return;
    }
    a.setInitial(l);
  }

  void setClock(const std::string& name, int64_t v) {
    for (uint32_t c = 1; c <= sys_->numClocks(); ++c) {
      if (sys_->clockName(static_cast<ta::ClockId>(c)) == name) {
        clockVals_[c] = std::clamp<int64_t>(v, 0, dbm::kMaxValue);
        return;
      }
    }
    fail("model has no clock '" + name + "'");
  }

  void setVar(const std::string& name, int32_t v) {
    const auto& names = sys_->varNames();
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) {
        sys_->setVarInit(static_cast<ta::VarId>(i), v);
        return;
      }
    }
    // Guide variables only exist at their guide level; silently absent
    // is fine (the unguided model simply has fewer constraints).
  }

  void setCell(const std::string& base, int32_t k, int32_t v) {
    setVar(base + "[" + num(k) + "]", v);
  }

  // ---- derived facts ----------------------------------------------- //

  [[nodiscard]] int32_t stagesOf(int32_t b) const {
    return static_cast<int32_t>(cfg_.order[static_cast<size_t>(b)].size());
  }

  /// Ladle already ejected from (or currently inside) the caster.
  [[nodiscard]] bool enteredCaster(int32_t b) const {
    return b < snap_.caster.castsDone || b == snap_.caster.castingBatch;
  }

  /// Reconstruct the guided `next` variable: where the model would send
  /// batch b from this concrete state (the guide assignments in the
  /// builder are all deterministic, so this is a function of the
  /// snapshot, not a search choice).
  void deriveNext() {
    const int32_t n = snap_.numBatches();
    next_.assign(static_cast<size_t>(n), plant::kNextNone);
    for (int32_t b = 0; b < n; ++b) {
      const LoadSnapshot& L = snap_.loads[static_cast<size_t>(b)];
      int32_t& nx = next_[static_cast<size_t>(b)];
      if (L.place == Place::kNotPoured) {
        nx = plant::kNextNone;
        continue;
      }
      if (b < snap_.caster.castsDone) {
        nx = plant::kNextStore;  // ejected (possibly already exited)
        continue;
      }
      if (b == snap_.caster.castingBatch) {
        nx = plant::kNextCast;  // set at the final MachineOff, kept at incast
        continue;
      }
      if (L.treatingMachine > 0) {
        nx = L.treatingMachine;  // machine ids coincide with kNextM<i>
        continue;
      }
      const int32_t i = L.treatmentsDone;
      const plant::Quality& q = cfg_.order[static_cast<size_t>(b)];
      if (i >= stagesOf(b)) {
        nx = plant::kNextCast;
        continue;
      }
      int32_t track;
      if (i > 0 && L.lastMachine >= 1 && L.lastMachine <= 5) {
        track = kMachines[L.lastMachine - 1].track;
      } else if (L.place == Place::kTrack) {
        track = L.track;
      } else {
        track = 1;  // defensive; an untreated ladle stands on its pour track
        note("batch " + num(b) + ": untreated ladle off-track, assuming "
             "track 1 routing");
      }
      const int32_t m = stageMachine(q, static_cast<size_t>(i), track);
      if (m < 0) {
        fail("batch " + num(b) + ": no machine for stage " + num(i));
        continue;
      }
      nx = m;
    }
  }

  // ---- per-automaton lifting --------------------------------------- //

  void liftLoads() {
    for (int32_t b = 0; b < snap_.numBatches(); ++b) {
      const LoadSnapshot& L = snap_.loads[static_cast<size_t>(b)];
      std::string loc;
      switch (L.place) {
        case Place::kNotPoured: loc = "src"; break;
        case Place::kExited: loc = "done"; break;
        case Place::kInCaster: loc = "in_cast"; break;
        case Place::kOnCrane:
          loc = "carried_c" + num(L.crane + 1);
          break;
        case Place::kGround:
          loc = groundLocName(L.groundK);
          break;
        case Place::kTrack:
          if (L.treatingMachine > 0) {
            loc = "busy_m" + num(L.treatingMachine);
          } else {
            loc = "t" + num(L.track) + "_" + num(L.slot);
          }
          break;
      }
      setLoc(p_->batches[static_cast<size_t>(b)], loc);
      setClock("x" + num(b), 0);  // no track move in progress (quiesced)
      liftRecipe(b, L);
    }
  }

  void liftRecipe(int32_t b, const LoadSnapshot& L) {
    std::string loc;
    int64_t t = 0, tot = 0;
    if (L.place == Place::kNotPoured) {
      loc = "setoff";
    } else if (b < snap_.caster.castsDone) {
      loc = "done";  // castdone received; tot no longer constrained
    } else {
      tot = unitsUp(snap_.tick - L.pourTick, tpu_);
      if (L.treatingMachine > 0) {
        loc = "on" + num(L.treatmentsDone) + "m" + num(L.treatingMachine);
        t = unitsDown(snap_.tick - L.treatStartTick, tpu_);
      } else if (L.treatmentsDone >= stagesOf(b)) {
        loc = "rend";
      } else {
        loc = "wait" + num(L.treatmentsDone);
      }
    }
    setLoc(p_->recipes[static_cast<size_t>(b)], loc);
    setClock("t" + num(b), t);
    setClock("tot" + num(b), tot);
  }

  void liftCranes() {
    for (int32_t c = 0; c < plant::kNumCranes; ++c) {
      const rcx::CraneSnapshot& cr = snap_.cranes[c];
      const char* shape = cr.carrying >= 0 ? "f" : "e";
      setLoc(p_->cranes[static_cast<size_t>(c)], shape + num(cr.pos));
      setClock("c" + num(c + 1), 0);  // hoist idle (quiesced)
    }
  }

  void liftCaster() {
    const rcx::CasterSnapshot& cs = snap_.caster;
    std::string loc;
    int64_t kc = 0;
    if (cs.castsDone >= snap_.numBatches()) {
      loc = "done";
    } else if (cs.castingBatch >= 0) {
      loc = "cast" + num(cs.castingBatch);
      // Model invariant: kc <= tcast, eject fires at kc == tcast.
      kc = cs.castComplete
               ? cfg_.tcast
               : std::min<int64_t>(
                     cfg_.tcast,
                     unitsDown(snap_.tick - cs.castStartTick, tpu_));
    } else if (cs.castsDone >= 1) {
      // The continuity clock is NOT reset at eject: in gap<i> it reads
      // tcast + (time since that cast ended).
      loc = "gap" + num(cs.castsDone - 1);
      kc = cfg_.tcast + unitsUp(snap_.tick - cs.lastCastEndTick, tpu_);
    } else {
      loc = "await";
    }
    setLoc(p_->caster, loc);
    setClock("k", kc);
  }

  void liftMonitor() {
    // Always "run": the run->alldone edge is a free guard transition,
    // so a fully finished plant still reaches the goal immediately.
    setLoc(p_->monitor, "run");
  }

  // ---- variables ---------------------------------------------------- //

  [[nodiscard]] static std::string groundLocName(int32_t k) {
    switch (k) {
      case plant::kOverT1Out: return "t1_" + num(plant::kT1Out);
      case plant::kOverBuffer: return "at_buf";
      case plant::kOverT2Out: return "t2_" + num(plant::kT2Out);
      case plant::kOverHold: return "at_hold";
      case plant::kOverCastOut: return "at_castout";
      default: return "at_store";
    }
  }

  [[nodiscard]] bool onSlot(const LoadSnapshot& L, int32_t track,
                            int32_t slot) const {
    if (L.place == Place::kTrack && L.track == track && L.slot == slot)
      return true;
    // Defensive captures may leave an out-pad ladle marked kGround.
    if (L.place == Place::kGround) {
      if (track == 1 && slot == plant::kT1Out)
        return L.groundK == plant::kOverT1Out;
      if (track == 2 && slot == plant::kT2Out)
        return L.groundK == plant::kOverT2Out;
    }
    return false;
  }

  [[nodiscard]] bool onPad(const LoadSnapshot& L, int32_t k) const {
    return L.place == Place::kGround && L.groundK == k;
  }

  /// Crane overhead destination for a carried batch (mirrors the
  /// builder's craneDest, evaluated on the reconstructed `next`).
  [[nodiscard]] static int32_t craneDestVal(int32_t nx) {
    if (nx == plant::kNextCast) return plant::kOverHold;
    if (nx == plant::kNextStore) return plant::kOverStorage;
    if (nx <= plant::kNextM3) return plant::kOverT1Out;
    return plant::kOverT2Out;
  }

  void liftVars() {
    const int32_t n = snap_.numBatches();

    // Track occupancy.
    for (int32_t s = 0; s < plant::kT1Slots; ++s) {
      int32_t occ = 0;
      for (int32_t b = 0; b < n; ++b)
        if (onSlot(snap_.loads[static_cast<size_t>(b)], 1, s)) occ = 1;
      setCell("posi", s, occ);
    }
    for (int32_t s = 0; s < plant::kT2Slots; ++s) {
      int32_t occ = 0;
      for (int32_t b = 0; b < n; ++b)
        if (onSlot(snap_.loads[static_cast<size_t>(b)], 2, s)) occ = 1;
      setCell("posii", s, occ);
    }

    // Overhead occupancy (overrides the builder's default crane homes).
    for (int32_t k = 0; k < plant::kCranePositions; ++k) {
      const int32_t occ =
          (snap_.cranes[0].pos == k || snap_.cranes[1].pos == k) ? 1 : 0;
      setCell("cpos", k, occ);
    }

    // Pad occupancy.
    const auto padOcc = [&](int32_t k) {
      for (int32_t b = 0; b < n; ++b)
        if (onPad(snap_.loads[static_cast<size_t>(b)], k)) return 1;
      return 0;
    };
    setVar("bufocc", padOcc(plant::kOverBuffer));
    setVar("holdocc", padOcc(plant::kOverHold));
    setVar("castoutocc", padOcc(plant::kOverCastOut));

    int32_t ndone = 0;
    for (int32_t b = 0; b < n; ++b)
      if (snap_.loads[static_cast<size_t>(b)].place == Place::kExited) ++ndone;
    setVar("ndone", ndone);

    // waitk: ladles standing at a crane-served position whose `next`
    // needs a crane from there. Arrival at an out-slot increments it;
    // a crane dropping a ladle *back* onto the out-slot (next <= M3 at
    // T1_OUT etc.) does not — the guardPick predicate separates the two
    // populations exactly.
    for (int32_t k = 0; k < plant::kCranePositions; ++k) {
      int32_t w = 0;
      for (int32_t b = 0; b < n; ++b) {
        const LoadSnapshot& L = snap_.loads[static_cast<size_t>(b)];
        const int32_t nx = next_[static_cast<size_t>(b)];
        if (k == plant::kOverT1Out && onSlot(L, 1, plant::kT1Out) &&
            nx >= plant::kNextM4 && nx <= plant::kNextCast) {
          ++w;
        } else if (k == plant::kOverT2Out && onSlot(L, 2, plant::kT2Out) &&
                   (nx <= plant::kNextM3 || nx == plant::kNextCast)) {
          ++w;
        } else if (k == plant::kOverCastOut && onPad(L, k)) {
          ++w;  // every ejected ladle on the pad waits for storage
        }
      }
      setCell("waitk", k, w);
    }

    // Crane request / destination guides. Requests are transient
    // handshakes between moving cranes; quiesced cranes have none.
    for (int32_t c = 0; c < plant::kNumCranes; ++c) {
      setCell("cranereq", c, 0);
      const int32_t carried = snap_.cranes[c].carrying;
      setCell("cdest", c,
              carried >= 0 ? craneDestVal(next_[static_cast<size_t>(carried)])
                           : 0);
    }

    // nexthold: index of the next batch allowed to be dropped at the
    // holding place == number of batches ever delivered there (each is
    // now ejected, casting, or standing on the hold pad).
    int32_t atHold = 0;
    for (int32_t b = 0; b < n; ++b)
      if (onPad(snap_.loads[static_cast<size_t>(b)], plant::kOverHold))
        ++atHold;
    setVar("nexthold", snap_.caster.castsDone +
                           (snap_.caster.castingBatch >= 0 ? 1 : 0) + atHold);

    for (int32_t b = 0; b < n; ++b)
      setVar("next" + num(b), next_[static_cast<size_t>(b)]);

    // nextbatch: the pour guide increments when a batch STARTS its
    // final treatment, so count batches at or past that point.
    int32_t nb = 0;
    for (int32_t b = 0; b < n; ++b) {
      const LoadSnapshot& L = snap_.loads[static_cast<size_t>(b)];
      if (L.place == Place::kNotPoured) continue;
      if (L.treatmentsDone >= stagesOf(b) ||
          (L.treatingMachine > 0 && L.treatmentsDone == stagesOf(b) - 1)) {
        ++nb;
      }
    }
    setVar("nextbatch", nb);

    // inflight: poured but not yet inside (or past) the caster.
    int32_t inflight = 0;
    for (int32_t b = 0; b < n; ++b) {
      if (snap_.loads[static_cast<size_t>(b)].place != Place::kNotPoured &&
          !enteredCaster(b)) {
        ++inflight;
      }
    }
    setVar("inflight", inflight);
  }

  // ---- clock installation ------------------------------------------ //

  /// Clamp (kRelaxed) and validate the clock valuation against the
  /// initial locations' invariants, then install it. Working off the
  /// built model's own invariant list keeps this in lock-step with the
  /// builder — there is no second copy of the deadline formulas here.
  void applyClocks() {
    const auto eachInvariant = [&](auto&& f) {
      for (size_t pr = 0; pr < sys_->numAutomata(); ++pr) {
        const auto& a = sys_->automaton(static_cast<ta::ProcId>(pr));
        for (const ta::ClockConstraint& cc :
             a.location(a.initial()).invariant) {
          f(cc);
        }
      }
    };

    if (mode_ == LiftMode::kRelaxed) {
      // Two passes: single-clock bounds converge in one, difference
      // bounds (none in the current model, but cheap to honor) in two.
      for (int pass = 0; pass < 2; ++pass) {
        eachInvariant([&](const ta::ClockConstraint& cc) {
          if (cc.bound == dbm::kInfinity) return;
          const int64_t limit =
              dbm::boundValue(cc.bound) - (dbm::isStrict(cc.bound) ? 1 : 0);
          // cc: value(i) - value(j) <= limit. Clamp with headroom: a
          // deadline clock pulled back exactly to its bound would leave
          // zero time for the remaining work. One eighth of the widened
          // window is at least the original full deadline (relaxedConfig
          // widens by 8x), which bounds any quiesced state's remaining
          // pipeline.
          const int64_t headroom = std::max<int64_t>(limit / 8, 1);
          if (cc.j == 0 && cc.i != 0 && clockVals_[cc.i] > limit) {
            clockVals_[cc.i] = std::max<int64_t>(0, limit - headroom);
            if (pass == 0) {
              ++report_.clampedClocks;
              note("clamped " + sys_->clockName(cc.i) + " to " +
                   std::to_string(clockVals_[cc.i]));
            }
          } else if (cc.i == 0 && cc.j != 0 && -clockVals_[cc.j] > limit) {
            clockVals_[cc.j] = -limit;
            if (pass == 0) ++report_.clampedClocks;
          }
        });
      }
    }

    eachInvariant([&](const ta::ClockConstraint& cc) {
      if (cc.bound == dbm::kInfinity) return;
      const int64_t d = clockVals_[cc.i] - clockVals_[cc.j];
      const int64_t v = dbm::boundValue(cc.bound);
      if (dbm::isStrict(cc.bound) ? d < v : d <= v) return;
      if (report_.feasible) {
        fail("initial state violates invariant on " +
             (cc.i != 0 ? sys_->clockName(cc.i) : sys_->clockName(cc.j)) +
             " (value " + std::to_string(d) + " vs bound " +
             std::to_string(v) + ")");
      }
    });

    for (uint32_t c = 1; c <= sys_->numClocks(); ++c) {
      if (clockVals_[c] != 0) {
        sys_->setClockInit(static_cast<ta::ClockId>(c),
                           static_cast<dbm::value_t>(clockVals_[c]));
      }
    }
  }

  const rcx::PlantSnapshot& snap_;
  const plant::PlantConfig& cfg_;
  LiftMode mode_;
  plant::Plant* p_ = nullptr;
  ta::System* sys_ = nullptr;
  int64_t tpu_ = 1;
  LiftReport report_;
  std::vector<int32_t> next_;
  std::vector<int64_t> clockVals_;
};

}  // namespace

Lifted liftSnapshot(const rcx::PlantSnapshot& snap,
                    const plant::PlantConfig& cfg, LiftMode mode) {
  return Lifter(snap, cfg, mode).run();
}

plant::PlantConfig relaxedConfig(const plant::PlantConfig& cfg) {
  plant::PlantConfig r = cfg;
  // Widen the soft deadlines far enough that any quiescent plant state
  // fits: the pour-to-cast-end budget and the casting continuity window
  // become "eventually", while the physical durations stay exact.
  r.rtotal = cfg.rtotal * 8;
  r.castGap = std::max(cfg.castGap, cfg.rtotal * 8);
  return r;
}

}  // namespace replan
