// Online rescheduling: synthesize a repair schedule from a concrete
// plant snapshot, degrading gracefully when the budgeted search or the
// original deadlines cannot be met.
//
// The degradation ladder:
//   level 0 (strict)  — lift with the original timing constraints and
//                       run the priced-zone best-first optimizer under
//                       a state budget: a makespan-optimal repair that
//                       still honors every original deadline.
//   level 1 (relaxed) — widen the soft deadlines (relaxedConfig), clamp
//                       the lifted clocks, and take the first schedule
//                       a depth-first search finds: finish mechanically,
//                       quality deadlines abandoned.
//   level 2 (safe stop) — no executable repair: report infeasible so
//                       the controller halts the plant instead of
//                       driving it blind.
//
// Budgets are expressed in explored states, not wall time, so a replay
// with the same seed takes the same ladder path on any machine.
#pragma once

#include "engine/options.hpp"
#include "engine/stats.hpp"
#include "plant/config.hpp"
#include "rcx/snapshot.hpp"
#include "replan/lift.hpp"
#include "synthesis/schedule.hpp"

namespace synthesis {

struct ResumeOptions {
  /// Base engine configuration for both ladder levels (search order and
  /// dfsReverse of the bootstrap/relaxed runs are overridden below).
  engine::Options engine;
  /// Explored-state budget of the strict best-first optimization
  /// (bootstrap + priced-zone run each get this budget).
  size_t strictMaxStates = 400'000;
  /// Budget of the relaxed first-found search.
  size_t relaxedMaxStates = 800'000;
  /// Skip level 0 entirely (bench ablation knob).
  bool tryStrict = true;
};

struct ResumeOutcome {
  bool feasible = false;  ///< a repair schedule exists (level 0 or 1)
  /// 0 = strict optimal, 1 = relaxed first-found, 2 = safe stop.
  int ladderLevel = 2;
  bool optimal = false;       ///< level 0 proved optimality (no cut-off)
  int64_t makespan = -1;      ///< repair-schedule makespan (model units)
  Schedule schedule;          ///< times relative to the resume point
  /// Configuration the repair segment must execute under (== the input
  /// config at level 0; relaxedConfig(input) at level 1). The physical
  /// checks of the resumed simulation use these constants too.
  plant::PlantConfig repairCfg;
  replan::LiftReport lift;    ///< report of the level that produced it
  engine::Stats stats;        ///< last search's statistics
  double seconds = 0.0;       ///< wall time of the whole resume
};

/// Lift `snap` onto the model for `cfg` and synthesize a repair
/// schedule, walking the degradation ladder. `cfg` must carry the
/// production order the snapshot was captured under.
[[nodiscard]] ResumeOutcome resumeFrom(const rcx::PlantSnapshot& snap,
                                       const plant::PlantConfig& cfg,
                                       const ResumeOptions& opts = {});

}  // namespace synthesis
