#include "replan/controller.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace replan {

RunReport runWithReplanning(const plant::PlantConfig& cfg,
                            const synthesis::Schedule& schedule,
                            const ControllerOptions& opts) {
  RunReport rep;
  synthesis::RcxProgram prog = synthesis::synthesize(schedule, opts.codegen);
  plant::PlantConfig segCfg = cfg;
  rcx::PlantSnapshot snap;
  bool resumed = false;

  for (int seg = 0;; ++seg) {
    rcx::SimOptions so = opts.sim;
    so.snapshotOnFatal = true;
    if (resumed) {
      so.resume = &snap;
      so.startTick = snap.tick + opts.replanChargeTicks;
      // Fresh, reproducible fault streams per segment (drift and crash
      // downtimes carry over via the snapshot presets, not the seed).
      so.seed = opts.sim.seed +
                0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(seg);
    }
    rcx::SimResult res =
        rcx::runProgram(prog, segCfg, opts.ticksPerTimeUnit, so);

    SegmentInfo info;
    info.deviation = res.deviation;
    info.detail = res.deviationDetail;

    if (!res.snapshot.has_value()) {
      // Clean (or merely recoverable) segment: the run is over.
      rep.segments.push_back(std::move(info));
      rep.finalResult = std::move(res);
      rep.success = rep.finalResult.ok();
      return rep;
    }

    if (rep.replans >= opts.maxReplans) {
      rep.segments.push_back(std::move(info));
      rep.finalResult = std::move(res);
      rep.safeStopped = true;
      rep.safeStopReason = "replan budget exhausted (" +
                           std::to_string(opts.maxReplans) + " replans)";
      return rep;
    }

    snap = std::move(*res.snapshot);
    info.replanned = true;
    info.capturedTick = snap.tick;
    info.inFlightDropped = snap.inFlight.size();

    const auto t0 = std::chrono::steady_clock::now();
    const synthesis::ResumeOutcome out =
        synthesis::resumeFrom(snap, cfg, opts.resume);
    info.replanSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    info.ladderLevel = out.ladderLevel;
    rep.replanLatencySeconds.push_back(info.replanSeconds);
    rep.segments.push_back(std::move(info));

    if (!out.feasible) {
      rep.finalResult = std::move(res);
      rep.safeStopped = true;
      rep.safeStopReason =
          "degradation ladder exhausted: " +
          std::string(rcx::deviationName(snap.kind)) +
          (snap.reason.empty() ? "" : " (" + snap.reason + ")");
      return rep;
    }

    ++rep.replans;
    rep.maxLadderLevel = std::max(rep.maxLadderLevel, out.ladderLevel);
    segCfg = out.repairCfg;
    prog = synthesis::synthesize(out.schedule, opts.codegen);
    resumed = true;
  }
}

}  // namespace replan
