#include "dbm/zone_batch.hpp"

#include <cstring>

#include "dbm/simd.hpp"

namespace dbm {

void ZoneBatch::push(std::span<const raw_t> raw) {
  assert(dim_ > 0 && raw.size() == elems_);
  const size_t idx = size_;
  const size_t b = idx / kLanes;
  const size_t lane = idx % kLanes;
  if (lane == 0) {
    // Fresh block: dead lanes hold the zero zone so batched kernels can
    // process them unguarded (normalizing the zero zone is a no-op).
    data_.resize((b + 1) * stride(), kZeroBound);
  }
  raw_t* blk = block(b);
  for (size_t e = 0; e < prefixElems_; ++e) blk[e * kLanes + lane] = raw[e];
  std::memcpy(tail(b, lane), raw.data() + prefixElems_,
              tailElems_ * sizeof(raw_t));
  ++size_;
}

void ZoneBatch::copyTo(size_t idx, raw_t* out) const {
  assert(idx < size_);
  const size_t b = idx / kLanes;
  const size_t lane = idx % kLanes;
  const raw_t* blk = block(b);
  for (size_t e = 0; e < prefixElems_; ++e) out[e] = blk[e * kLanes + lane];
  std::memcpy(out + prefixElems_, tail(b, lane), tailElems_ * sizeof(raw_t));
}

Dbm ZoneBatch::zoneAt(size_t idx) const {
  RawBuffer buf(elems_);
  copyTo(idx, buf.data());
  return Dbm::fromSpan(dim_, {buf.data(), elems_});
}

void ZoneBatch::swapRemove(size_t idx) {
  assert(idx < size_);
  const size_t last = size_ - 1;
  if (idx != last) {
    raw_t* db = block(idx / kLanes);
    const raw_t* sb = block(last / kLanes);
    const size_t dl = idx % kLanes;
    const size_t sl = last % kLanes;
    for (size_t e = 0; e < prefixElems_; ++e) {
      db[e * kLanes + dl] = sb[e * kLanes + sl];
    }
    // Tails of distinct lanes never overlap, even within one block.
    std::memcpy(tail(idx / kLanes, dl), tail(last / kLanes, sl),
                tailElems_ * sizeof(raw_t));
  }
  --size_;
}

bool ZoneBatch::anySuperset(std::span<const raw_t> q) const {
  assert(q.size() == elems_);
  if (size_ == 0) return false;
  simd::noteOp();
  const raw_t* qTail = q.data() + prefixElems_;
  for (size_t b = 0, nb = numBlocks(); b < nb; ++b) {
    uint32_t m = simd::blockSupersetMask(block(b), q.data(), prefixElems_,
                                         liveMask(b));
    while (m != 0) {
      const size_t lane = static_cast<size_t>(__builtin_ctz(m));
      m &= m - 1;
      if (simd::rowsInclude(tail(b, lane), qTail, tailElems_)) return true;
    }
  }
  return false;
}

bool ZoneBatch::containsEqual(std::span<const raw_t> q) const {
  assert(q.size() == elems_);
  if (size_ == 0) return false;
  simd::noteOp();
  const raw_t* qTail = q.data() + prefixElems_;
  for (size_t b = 0, nb = numBlocks(); b < nb; ++b) {
    uint32_t m =
        simd::blockEqualMask(block(b), q.data(), prefixElems_, liveMask(b));
    while (m != 0) {
      const size_t lane = static_cast<size_t>(__builtin_ctz(m));
      m &= m - 1;
      if (std::memcmp(tail(b, lane), qTail, tailElems_ * sizeof(raw_t)) == 0) {
        return true;
      }
    }
  }
  return false;
}

size_t ZoneBatch::pruneSubsets(std::span<const raw_t> q) {
  assert(q.size() == elems_);
  if (size_ == 0) return 0;
  simd::noteOp();
  const raw_t* qTail = q.data() + prefixElems_;
  size_t removed = 0;
  // Walk blocks back to front so swapRemove (which pulls from the
  // current tail) never moves a zone into an already-scanned slot.
  for (size_t b = numBlocks(); b-- > 0;) {
    uint32_t mask =
        simd::blockSubsetMask(block(b), q.data(), prefixElems_, liveMask(b));
    // Highest lane first, same reason as the block order.
    while (mask != 0) {
      const int lane = 31 - __builtin_clz(mask);
      mask &= ~(1u << lane);
      if (!simd::rowsInclude(qTail, tail(b, static_cast<size_t>(lane)),
                             tailElems_)) {
        continue;
      }
      swapRemove(b * kLanes + static_cast<size_t>(lane));
      ++removed;
    }
  }
  return removed;
}

void ZoneBatch::upAll() {
  if (size_ == 0) return;
  simd::noteOp();
  // Element (i, 0) of every zone → kInfinity for i >= 1; dead lanes
  // hold valid zones, so writing them too is harmless.
  for (size_t b = 0, nb = numBlocks(); b < nb; ++b) {
    raw_t* blk = block(b);
    for (uint32_t i = 1; i < dim_; ++i) {
      const size_t e = size_t{i} * dim_;
      if (e < prefixElems_) {
        raw_t* lanes = blk + e * kLanes;
        for (size_t l = 0; l < kLanes; ++l) lanes[l] = kInfinity;
      } else {
        for (size_t l = 0; l < kLanes; ++l) {
          tail(b, l)[e - prefixElems_] = kInfinity;
        }
      }
    }
  }
}

void ZoneBatch::closeAll() {
  if (size_ == 0) return;
  simd::noteOp();
  const uint32_t n = dim_;
  RawBuffer buf(elems_);
  for (size_t idx = 0; idx < size_; ++idx) {
    copyTo(idx, buf.data());
    for (uint32_t k = 0; k < n; ++k) {
      const raw_t* rowK = buf.data() + size_t{k} * n;
      for (uint32_t i = 0; i < n; ++i) {
        const raw_t aik = buf[size_t{i} * n + k];
        if (aik == kInfinity || i == k) continue;
        simd::rowMinPlus(buf.data() + size_t{i} * n, rowK, aik, n);
      }
    }
    // Write the closed zone back through the split layout.
    const size_t b = idx / kLanes;
    const size_t lane = idx % kLanes;
    raw_t* blk = block(b);
    for (size_t e = 0; e < prefixElems_; ++e) blk[e * kLanes + lane] = buf[e];
    std::memcpy(tail(b, lane), buf.data() + prefixElems_,
                tailElems_ * sizeof(raw_t));
  }
}

}  // namespace dbm
