#include "dbm/priced.hpp"

namespace dbm {

int64_t AffineCost::minOver(const Dbm& z) const {
  assert(!z.isEmpty());
  int64_t total = constant;
  const uint32_t n = z.dimension();
  for (uint32_t i = 1; i < n && i < coeff.size(); ++i) {
    if (coeff[i] == 0) continue;
    assert(coeff[i] > 0);
    total += coeff[i] * static_cast<int64_t>(z.infimum(i));
  }
  return total;
}

int64_t AffineCost::minOverInt(const Dbm& z) const {
  assert(!z.isEmpty());
  int64_t total = constant;
  const uint32_t n = z.dimension();
  for (uint32_t i = 1; i < n && i < coeff.size(); ++i) {
    if (coeff[i] == 0) continue;
    assert(coeff[i] > 0);
    const raw_t lo = z.at(0, i);
    int64_t inf = -static_cast<int64_t>(boundValue(lo));
    if (isStrict(lo) && lo != kInfinity) ++inf;
    total += coeff[i] * inf;
  }
  return total;
}

int64_t AffineCost::at(std::span<const int64_t> val) const {
  int64_t total = constant;
  for (size_t i = 1; i < val.size() && i < coeff.size(); ++i) {
    total += coeff[i] * val[i];
  }
  return total;
}

}  // namespace dbm
