// Difference Bound Matrices — the symbolic representation of clock zones.
//
// A DBM of dimension n represents a convex set of clock valuations over
// clocks x_1 .. x_{n-1} plus the reference clock x_0 == 0.  Entry (i, j)
// encodes the constraint  x_i - x_j  <bound>  at(i, j).
//
// All mutating operations keep the matrix in *canonical* (closed) form —
// the tightest representation, computed with Floyd–Warshall shortest
// paths — except where documented otherwise.  An empty zone is
// represented canonically by at(0,0) < (0, <=).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "dbm/aligned.hpp"
#include "dbm/bound.hpp"

namespace dbm {

class ZonePool;

/// Result of comparing two zones over the same clock set.
enum class Relation : uint8_t {
  kEqual,      ///< same set of valuations
  kSubset,     ///< this strictly included in other
  kSuperset,   ///< this strictly includes other
  kDifferent,  ///< incomparable
};

/// A clock zone in canonical DBM form. Dimension includes the reference
/// clock, so a system with k real clocks uses dimension k+1.
class Dbm {
 public:
  /// Uninitialized-to-zero zone of the given dimension: all clocks == 0.
  explicit Dbm(uint32_t dim) : dim_(dim), raw_(dim * dim, kZeroBound) {
    assert(dim >= 1);
  }

  // The memoized hash lives in an atomic, which is neither copyable nor
  // movable — spell out the special members it would otherwise delete.
  // Assignment must tolerate self-assignment: the best-first engine's
  // reopen path can copy a queue entry back over itself.
  Dbm(const Dbm& o) : dim_(o.dim_), raw_(o.raw_) {
    hash_.store(o.hash_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }
  Dbm(Dbm&& o) noexcept : dim_(o.dim_), raw_(std::move(o.raw_)) {
    hash_.store(o.hash_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }
  Dbm& operator=(const Dbm& o) {
    if (this == &o) return *this;
    dim_ = o.dim_;
    raw_ = o.raw_;
    hash_.store(o.hash_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }
  Dbm& operator=(Dbm&& o) noexcept {
    if (this == &o) return *this;
    dim_ = o.dim_;
    raw_ = std::move(o.raw_);
    hash_.store(o.hash_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }

  /// The zone where every clock equals zero (the initial zone).
  [[nodiscard]] static Dbm zero(uint32_t dim) { return Dbm(dim); }

  /// The unconstrained zone (all valuations with non-negative clocks).
  [[nodiscard]] static Dbm unconstrained(uint32_t dim);

  [[nodiscard]] uint32_t dimension() const noexcept { return dim_; }

  [[nodiscard]] raw_t at(uint32_t i, uint32_t j) const noexcept {
    assert(i < dim_ && j < dim_);
    return raw_[i * dim_ + j];
  }

  /// Raw write access. The caller is responsible for re-establishing
  /// canonical form (close / closeAfterConstrain) before further use.
  void setRaw(uint32_t i, uint32_t j, raw_t b) noexcept {
    assert(i < dim_ && j < dim_);
    raw_[i * dim_ + j] = b;
    invalidateHash();
  }

  /// True if the zone contains no valuation.
  [[nodiscard]] bool isEmpty() const noexcept { return raw_[0] < kZeroBound; }

  /// Mark the zone empty (canonical empty representation).
  void setEmpty() noexcept {
    raw_[0] = boundStrict(0);
    invalidateHash();
  }

  // -- Canonicalization -----------------------------------------------

  /// Full Floyd–Warshall closure, O(n^3). Detects emptiness.
  /// Returns false (and marks the zone empty) if inconsistent.
  bool close();

  /// Re-close after a single tightened entry (i, j), O(n^2).
  /// Returns false (and marks empty) if the tightening emptied the zone.
  bool closeAfterConstrain(uint32_t i, uint32_t j);

  // -- Constraint operations ------------------------------------------

  /// Conjoin constraint x_i - x_j <bound> b. Keeps canonical form.
  /// Returns false if the zone becomes empty.
  bool constrain(uint32_t i, uint32_t j, raw_t b);

  /// Conjoin x_i <= / < v (upper bound against the reference clock).
  bool constrainUpper(uint32_t i, value_t v, bool strict) {
    return constrain(i, 0, bound(v, strict));
  }

  /// Conjoin x_i >= / > v (lower bound against the reference clock).
  bool constrainLower(uint32_t i, value_t v, bool strict) {
    return constrain(0, i, bound(-v, strict));
  }

  /// Would `constrain(i, j, b)` leave the zone non-empty?  (No mutation.)
  [[nodiscard]] bool satisfies(uint32_t i, uint32_t j, raw_t b) const noexcept {
    // b conjoined with the existing bound on (j, i) must not close a
    // negative cycle: at(j,i) + b >= (0, <=).
    return !isEmpty() && boundAdd(at(j, i), b) >= kZeroBound;
  }

  // -- Time operations --------------------------------------------------

  /// Delay (future / "up"): remove all upper bounds. Stays canonical.
  void up();

  /// Past ("down"): allow any smaller valuation reachable by letting
  /// time run backwards. Stays canonical.
  void down();

  // -- Clock updates ----------------------------------------------------

  /// x_i := v. Stays canonical (precondition: canonical, non-empty).
  void reset(uint32_t i, value_t v);

  /// x_i := x_j. Stays canonical.
  void copyClock(uint32_t i, uint32_t j);

  /// Remove all constraints on x_i (used by active-clock reduction).
  void freeClock(uint32_t i);

  // -- Abstraction ------------------------------------------------------

  /// Classic maximal-bounds extrapolation (Extra_M): bounds above
  /// max[i] are abstracted away so the reachability graph becomes
  /// finite. `max[i]` is the largest constant clock i is ever compared
  /// against; use -1 ("clock never compared") to drop all constraints
  /// on i. Needs a close() afterwards; this method performs it.
  /// Returns true if any entry was coarsened.
  bool extrapolateMaxBounds(std::span<const value_t> max);

  /// Extra+_LU extrapolation (Behrmann, Bouyer, Larsen, Pelánek):
  /// lower/upper-bound-aware widening, strictly coarser than Extra_M
  /// for the same constants yet still reachability-preserving for
  /// diagonal-free automata.  `lower[i]` / `upper[i]` are the largest
  /// constants clock i is compared against in lower-bound (x > c,
  /// x >= c) resp. upper-bound (x < c, x <= c) position; -1 means "no
  /// such comparison" and is treated as 0 (the nonnegativity of clocks
  /// is always observable).  Entry rules, with D the canonical input:
  ///   d_ij -> inf          if d_ij > L(x_i)              (i != 0)
  ///   d_ij -> inf          if -d_0i > L(x_i)             (i != 0)
  ///   d_ij -> inf          if -d_0j > U(x_j)             (i != 0)
  ///   d_0j -> (-U(x_j), <) if -d_0j > U(x_j)
  /// Re-canonicalizes afterwards. Returns true if anything coarsened.
  bool extrapolateLUBounds(std::span<const value_t> lower,
                           std::span<const value_t> upper);

  // -- Convex union -----------------------------------------------------

  /// Smallest DBM containing both zones: the pointwise max of the two
  /// canonical matrices. The result is canonical without a closure pass
  /// (max preserves the triangle inequality entrywise) but in general
  /// over-approximates the union a ∪ b.
  [[nodiscard]] static Dbm convexHullOf(const Dbm& a, const Dbm& b);

  /// Exact convex-union test (the federation reduce-style check the
  /// passed store's zone merging relies on): if hull(a, b) == a ∪ b as
  /// sets, write the hull to *out and return true; otherwise leave *out
  /// untouched and return false.
  ///
  /// The test is exact: hull = a ∪ b iff (hull \ a) ⊆ b, and hull \ a
  /// decomposes into one convex piece per constraint (i, j) of `a` that
  /// is strictly tighter than the hull's — piece = hull ∧ ¬(x_i - x_j ≤
  /// a_ij). Each non-empty piece must lie inside b. `maxPieces` bounds
  /// the cost: when `a` tightens more than that many hull entries the
  /// test conservatively reports "not convex" (never a wrong merge).
  /// Both inputs must be canonical and non-empty.
  [[nodiscard]] static bool tryConvexUnion(const Dbm& a, const Dbm& b,
                                           Dbm* out, int maxPieces = 32);

  // -- Comparison / inclusion -------------------------------------------

  /// Exact set relation between two canonical zones of equal dimension.
  [[nodiscard]] Relation relation(const Dbm& other) const noexcept;

  /// True if `other` ⊆ `this` (both canonical, same dimension).
  [[nodiscard]] bool includes(const Dbm& other) const noexcept;

  /// Intersect with other (both canonical). Returns false if empty.
  bool intersect(const Dbm& other);

  // -- Points -----------------------------------------------------------

  /// Does the zone contain the concrete valuation? `val[0]` must be 0.
  [[nodiscard]] bool containsPoint(std::span<const int64_t> val) const noexcept;

  /// Minimum possible value of clock i in this zone (its lower bound).
  [[nodiscard]] value_t infimum(uint32_t i) const noexcept {
    return -boundValue(at(0, i));
  }

  /// Encoded upper bound of clock i (kInfinity if unbounded).
  [[nodiscard]] raw_t upperBound(uint32_t i) const noexcept { return at(i, 0); }

  // -- Raw snapshots ----------------------------------------------------

  /// The raw entries in row-major order — the flat passed store keeps
  /// zones as contiguous copies of this span.
  [[nodiscard]] std::span<const raw_t> rawData() const noexcept {
    return raw_;
  }

  /// Rebuild a zone from a row-major snapshot produced by rawData().
  /// The snapshot must already be canonical (no closure is run).
  [[nodiscard]] static Dbm fromSpan(uint32_t dim, std::span<const raw_t> raw);

  /// Overwrite the whole matrix in place from a row-major snapshot of
  /// the same dimension — the batch API's extraction path (ZoneBatch →
  /// Dbm without reallocating). Invalidates the memoized hash: the new
  /// entries share nothing with the old ones, and a copied zone that is
  /// then mutated through this path must not keep its source's hash.
  void assignRaw(std::span<const raw_t> raw) noexcept {
    assert(raw.size() == raw_.size());
    std::copy(raw.begin(), raw.end(), raw_.begin());
    invalidateHash();
  }

  // -- Misc ---------------------------------------------------------------

  /// FNV-1a over the raw entries, memoized: computed on first call and
  /// cached until the next mutating operation. The cache is a relaxed
  /// atomic so concurrent readers of a shared (immutable) zone may race
  /// on it benignly; 0 doubles as the "not computed" sentinel.
  [[nodiscard]] size_t hash() const noexcept;

  [[nodiscard]] bool operator==(const Dbm& other) const noexcept {
    return dim_ == other.dim_ && raw_ == other.raw_;
  }

  /// Multi-line human-readable dump (for debugging / tests).
  [[nodiscard]] std::string toString() const;

  /// Bytes of heap storage used (for the engine's memory accounting).
  [[nodiscard]] size_t memoryBytes() const noexcept {
    return raw_.capacity() * sizeof(raw_t);
  }

 private:
  friend class ZonePool;

  /// Adopt an existing buffer (already holding dim*dim entries) —
  /// the ZonePool's recycling constructor.
  Dbm(uint32_t dim, RawBuffer&& buf) noexcept
      : dim_(dim), raw_(std::move(buf)) {
    assert(raw_.size() == size_t{dim} * dim);
  }

  void invalidateHash() noexcept {
    hash_.store(0, std::memory_order_relaxed);
  }

  uint32_t dim_;
  RawBuffer raw_;
  mutable std::atomic<size_t> hash_{0};
};

}  // namespace dbm

template <>
struct std::hash<dbm::Dbm> {
  size_t operator()(const dbm::Dbm& d) const noexcept { return d.hash(); }
};
