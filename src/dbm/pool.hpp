// Thread-local recycling pool for DBM buffers.
//
// Successor computation builds a candidate zone per attempted edge and
// discards most of them (guard empties the zone, the state is covered,
// the invariant fails...). Routing those discards back through a free
// list turns the per-candidate operator new/delete churn into a couple
// of pointer swaps. Each thread owns an independent free list, so the
// pool needs no locking and is safe under the parallel engine — a zone
// acquired on one thread may be recycled on another; the buffer simply
// migrates to the recycling thread's list.
#pragma once

#include <vector>

#include "dbm/dbm.hpp"

namespace dbm {

class ZonePool {
 public:
  /// A copy of `src`, backed by a recycled buffer when one is available
  /// (falls back to a plain copy otherwise). The memoized hash travels
  /// with the copy.
  [[nodiscard]] static Dbm copyOf(const Dbm& src) {
    auto& fl = freeList();
    if (fl.empty()) return src;
    RawBuffer buf = std::move(fl.back());
    fl.pop_back();
    buf.assign(src.raw_.begin(), src.raw_.end());
    Dbm out(src.dim_, std::move(buf));
    out.hash_.store(src.hash_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    return out;
  }

  /// Hand a dead zone's buffer to this thread's free list.
  static void recycle(Dbm&& z) noexcept {
    auto& fl = freeList();
    if (z.raw_.capacity() != 0 && fl.size() < kMaxPooled) {
      fl.push_back(std::move(z.raw_));
    }
  }

  /// Buffers currently pooled on this thread (for tests).
  [[nodiscard]] static size_t pooled() noexcept { return freeList().size(); }

 private:
  static constexpr size_t kMaxPooled = 512;

  [[nodiscard]] static std::vector<RawBuffer>& freeList() noexcept {
    thread_local std::vector<RawBuffer> list;
    return list;
  }
};

}  // namespace dbm
