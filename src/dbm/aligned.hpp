// Cache-line-aligned storage for DBM matrices and zone batches.
//
// The SIMD row kernels issue unaligned 256-bit loads, which are only
// penalty-free when they do not straddle a cache line; allocating every
// matrix buffer at a 64-byte boundary keeps each 8-entry row chunk of a
// row-major DBM inside a single line and lets adjacent rows start at
// predictable offsets for the batched scans.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#include "dbm/bound.hpp"

namespace dbm {

inline constexpr size_t kCacheLine = 64;

/// Minimal std::allocator drop-in with a fixed 64-byte alignment floor.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kCacheLine}));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t{kCacheLine});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// The buffer type backing every Dbm matrix and ZoneBatch block.
using RawBuffer = std::vector<raw_t, AlignedAllocator<raw_t>>;

}  // namespace dbm
