// Priced zones: a DBM plus cost information, the symbolic states of
// cost-optimal (priced timed automata) reachability in the style of
// LPTA / Uppaal Cora.
//
// Two layers:
//
// `AffineCost` — an affine function over clock valuations,
// cost(v) = constant + Σ coeff[i] · v_i with nonnegative coefficients.
// Its exact minimum over a canonical zone is attained (in the closure)
// at the pointwise-infimum point v_i = -d_0i: canonicity gives the
// triangle inequality d_0j <= d_0i + d_ij, which is exactly
// v_i - v_j <= d_ij for that point, so it satisfies every constraint
// weakly, and with nonnegative coefficients no feasible point can do
// better than every coordinate at its infimum.
//
// `PricedDbm` — the engine's specialization: cost is measured by a
// designated *cost clock* that is never reset (the plant's makespan
// clock), so delay cost accumulates through the ordinary DBM delay
// operation, plus an integer `offset` holding discrete edge penalties
// (the --soft-guide weights). The cost of a point is then
// v_cost + offset, and the zone's minimal cost is the integer-adjusted
// infimum of the cost clock plus the offset. Integer adjustment — a
// strict lower bound (> c) contributes c+1, a weak one (>= c)
// contributes c — makes minCost() agree exactly with what a binary
// search over integer bounds `cost <= B` observes: the zone intersects
// `cost <= B` iff B >= that adjusted infimum.
//
// Cost-aware inclusion ("domination") is pointwise: this dominates
// other iff this's zone contains other's AND this's offset is no
// larger — then every valuation other can reach is reachable here at
// an equal or lower cost. Comparing minCost() alone would be unsound
// (a cheaper minimum elsewhere in the zone says nothing about the
// points other actually covers).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "dbm/dbm.hpp"

namespace dbm {

/// cost(v) = constant + Σ coeff[i] · v_i, coeff[i] >= 0, coeff[0]
/// ignored (the reference clock is identically 0).
struct AffineCost {
  int64_t constant = 0;
  std::vector<int64_t> coeff;

  /// Exact infimum of the function over a non-empty canonical zone
  /// (attained in the zone's closure; see file comment).
  [[nodiscard]] int64_t minOver(const Dbm& z) const;

  /// Integer-adjusted infimum: coordinates with a strict lower bound
  /// x_i > c contribute c+1 — the smallest *integer* value of x_i with
  /// any feasible valuation arbitrarily close to it. Exact for
  /// single-coordinate costs (one nonzero coefficient); for general
  /// costs it is a valid lower bound on the cost of any integer point.
  [[nodiscard]] int64_t minOverInt(const Dbm& z) const;

  /// cost of a concrete valuation (val[0] == 0).
  [[nodiscard]] int64_t at(std::span<const int64_t> val) const;
};

/// A zone priced by a never-reset cost clock plus a discrete offset.
class PricedDbm {
 public:
  PricedDbm(Dbm zone, uint32_t costClock, int64_t offset = 0)
      : zone_(std::move(zone)), costClock_(costClock), offset_(offset) {
    assert(costClock >= 1 && costClock < zone_.dimension());
  }

  [[nodiscard]] const Dbm& zone() const noexcept { return zone_; }
  [[nodiscard]] Dbm& zone() noexcept { return zone_; }
  [[nodiscard]] uint32_t costClock() const noexcept { return costClock_; }
  [[nodiscard]] int64_t offset() const noexcept { return offset_; }

  [[nodiscard]] bool empty() const noexcept { return zone_.isEmpty(); }

  /// Delay: ordinary DBM up(); the cost clock advances with time, so
  /// delay cost needs no extra bookkeeping.
  void up() { zone_.up(); }

  /// x := v on an ordinary clock. The cost clock must never be reset —
  /// resetting it would silently erase accumulated delay cost.
  void reset(uint32_t clock, value_t v) {
    assert(clock != costClock_);
    zone_.reset(clock, v);
  }

  /// Add a discrete edge penalty (a --soft-guide weight).
  void addPenalty(int64_t w) noexcept { offset_ += w; }

  /// Minimal cost of any valuation in the zone, integer-adjusted (see
  /// file comment). Undefined on empty zones.
  [[nodiscard]] int64_t minCost() const noexcept {
    const raw_t lo = zone_.at(0, costClock_);
    // 0 - cost <= lo, so cost >= -value(lo); strict → next integer up.
    int64_t inf = -static_cast<int64_t>(boundValue(lo));
    if (isStrict(lo) && lo != kInfinity) ++inf;
    return inf + offset_;
  }

  /// Pointwise cost-aware inclusion: every valuation of `other` is in
  /// this zone at an equal or lower cost.
  [[nodiscard]] bool dominates(const PricedDbm& other) const noexcept {
    assert(costClock_ == other.costClock_);
    return offset_ <= other.offset_ && zone_.includes(other.zone_);
  }

  /// Constrain to points whose total cost is <= budget (incumbent
  /// pruning: cost clock <= budget - offset). Returns false and leaves
  /// the zone empty when no such point exists. A budget below the
  /// offset alone can never be met.
  bool constrainCost(int64_t budget) {
    const int64_t room = budget - offset_;
    if (room < 0) {
      zone_.setEmpty();
      return false;
    }
    if (room > kMaxValue) return true;  // no encodable bound needed
    return zone_.constrainUpper(costClock_, static_cast<value_t>(room),
                                /*strict=*/false);
  }

 private:
  Dbm zone_;
  uint32_t costClock_;
  int64_t offset_;
};

}  // namespace dbm
