// Vectorized row kernels for the DBM substrate.
//
// Every hot DBM operation — Floyd–Warshall closure, inclusion,
// relation, batch-inclusion scans over a passed-store bucket — reduces
// to a handful of row primitives over contiguous raw_t arrays:
//
//   rowMinPlus   dst[j] = min(dst[j], add ⊕ row[j])   (close inner loop)
//   rowsInclude  ∀j: outer[j] >= inner[j]             (zone inclusion)
//   rowCompare   entrywise <,> summary                (Dbm::relation)
//   rowMinEq     dst[j] = min(dst[j], src[j])         (intersection)
//
// plus the 8-lane transposed kernels ZoneBatch builds its
// structure-of-arrays scans on (laneSupersetMask / laneSubsetMask /
// laneEqualMask / laneMinPlus).
//
// Each primitive has a portable scalar implementation and an AVX2
// implementation compiled behind a function-level target attribute (so
// the baseline build still runs on pre-AVX2 hardware); NEON maps to the
// compiler's baseline auto-vectorization on aarch64. Dispatch is
// resolved once at startup from CPUID (compile-time when the whole
// build targets AVX2 anyway) and can be forced down to scalar at
// runtime — the roofline benchmarks measure both paths in one binary,
// and the Stats' SIMD-hit counters report which path served the search.
#pragma once

#include <cstddef>
#include <cstdint>

#include "dbm/bound.hpp"

namespace dbm::simd {

/// Instruction set the row kernels dispatch to.
enum class Level : uint8_t {
  kScalar = 0,  ///< portable fallback (also the forced roofline baseline)
  kAvx2 = 1,    ///< x86-64 AVX2, 8 x int32 lanes
  kNeon = 2,    ///< aarch64 NEON via compiler vectorization of the
                ///< scalar kernels (baseline on that architecture)
};

[[nodiscard]] const char* levelName(Level l) noexcept;

/// The best level this build + this CPU supports (detected once).
[[nodiscard]] Level detectedLevel() noexcept;

/// The level the kernels currently dispatch to (detected unless forced).
[[nodiscard]] Level activeLevel() noexcept;

/// Force dispatch at or below the detected level (benchmarks force
/// kScalar to measure the roofline baseline). Passing a level above
/// detectedLevel() clamps. Not thread-safe against in-flight kernels;
/// call from single-threaded setup/bench code only.
void forceLevel(Level l) noexcept;

// -- Kernel-hit counters ---------------------------------------------------
// Process-wide relaxed atomics, split by the path that served the
// work. Ticked once per DBM-level operation (close, inclusion scan,
// batch normalize...), NOT per row primitive — one fetch_add per O(n^2)
// kernel would dominate the kernel itself. The engines snapshot the
// counters around a run to report Stats.simdKernelOps / scalarKernelOps.

[[nodiscard]] size_t vectorOps() noexcept;
[[nodiscard]] size_t scalarOps() noexcept;
void resetCounters() noexcept;

/// Record one DBM-level operation against the active path's counter
/// (kScalar → scalarOps, anything vectorized → vectorOps).
void noteOp() noexcept;

// -- Row primitives --------------------------------------------------------

/// dst[j] = min(dst[j], boundAdd(add, row[j])) for j in [0, n).
/// `add` must be finite; infinity in row[] is absorbing (stays inf).
void rowMinPlus(raw_t* dst, const raw_t* row, raw_t add, size_t n) noexcept;

/// True iff outer[j] >= inner[j] for all j in [0, n)  (outer ⊇ inner
/// for canonical zones).
[[nodiscard]] bool rowsInclude(const raw_t* outer, const raw_t* inner,
                               size_t n) noexcept;

/// Entrywise comparison summary for Dbm::relation.
struct CompareResult {
  bool anyLess = false;     ///< some a[j] < b[j]
  bool anyGreater = false;  ///< some a[j] > b[j]
};
[[nodiscard]] CompareResult rowCompare(const raw_t* a, const raw_t* b,
                                       size_t n) noexcept;

/// dst[j] = min(dst[j], src[j]).
void rowMinEq(raw_t* dst, const raw_t* src, size_t n) noexcept;

// -- 8-lane transposed (structure-of-arrays) primitives --------------------
// `lanes` points at 8 consecutive raw_t holding the same matrix element
// of 8 different zones (ZoneBatch's block layout). Masks are 8-bit,
// lane i = bit i.

inline constexpr size_t kLanes = 8;

/// Bits of `mask` stay set only for lanes with lanes[i] >= q
/// (stored ⊇ query, one element).
[[nodiscard]] uint32_t laneSupersetMask(const raw_t* lanes, raw_t q,
                                        uint32_t mask) noexcept;

/// Bits survive only for lanes with lanes[i] <= q (stored ⊆ query).
[[nodiscard]] uint32_t laneSubsetMask(const raw_t* lanes, raw_t q,
                                      uint32_t mask) noexcept;

/// Bits survive only for lanes with lanes[i] == q.
[[nodiscard]] uint32_t laneEqualMask(const raw_t* lanes, raw_t q,
                                     uint32_t mask) noexcept;

// Block-granular scans: one dispatch per whole 8-lane block instead of
// one per element. The per-call dispatch (atomic level load + branch +
// out-of-line call) costs more than the 8-lane compare it guards, so
// the element-granular primitives above are for mixed/irregular use;
// the covered() hot path runs these. Each walks `elems` consecutive
// 8-lane groups of `blk` against the row-major query `q`, pruning
// `mask`, and early-exits once the mask dies.

[[nodiscard]] uint32_t blockSupersetMask(const raw_t* blk, const raw_t* q,
                                         size_t elems,
                                         uint32_t mask) noexcept;
[[nodiscard]] uint32_t blockSubsetMask(const raw_t* blk, const raw_t* q,
                                       size_t elems, uint32_t mask) noexcept;
[[nodiscard]] uint32_t blockEqualMask(const raw_t* blk, const raw_t* q,
                                      size_t elems, uint32_t mask) noexcept;

/// Transposed rowMinPlus over 8 zones at once:
///   dst[8j + i] = min(dst[8j + i], boundAdd(add[i], row[8j + i]))
/// for j in [0, n) and every lane i. Infinite add[i] lanes are
/// absorbing (contribute nothing).
void laneMinPlus(raw_t* dst, const raw_t* row, const raw_t* add,
                 size_t n) noexcept;

}  // namespace dbm::simd
