// Structure-of-arrays storage for many same-dimension zones.
//
// The passed store keeps each discrete bucket's zones in one arena and
// answers covered() by scanning it. Row-major blocks make that scan a
// sequence of full-matrix compares — each of which usually fails within
// the first few entries, so most loaded cache lines are wasted. The
// ZoneBatch groups zones in blocks of 8 and splits each block into a
// filter and a verify region:
//
//   * The first kPrefixRows matrix rows are stored transposed (AoSoA):
//     the 8 copies of prefix element e sit adjacent at
//     `block[e*8 + lane]`, so one 256-bit compare tests the same entry
//     of 8 stored zones against the query at once, narrowing an 8-bit
//     survivor mask. Almost every non-matching zone dies here — bound
//     differences concentrate in the reference row/column — so the
//     common early-exit (no survivors) costs a handful of vector
//     compares regardless of bucket population.
//   * The remaining rows are stored row-major per lane, each zone's
//     tail contiguous. A lane that survives the prefix is confirmed
//     with one contiguous rowsInclude over its own tail — the same
//     memory traffic a row-major scan would pay for the one zone that
//     actually matters. (A fully transposed layout makes this step
//     read 8x the data: the survivor's entries are strided 32 bytes
//     apart, so every cache line of the whole block gets touched.)
//
// Batched normalization (upAll / closeAll) runs over the same blocks —
// dead lanes hold the zero zone, which normalizes harmlessly — so
// successor batches can be delayed and re-canonicalized in place.
//
// Mutation is swap-remove only, keeping blocks dense from the front;
// order is not preserved (the passed store never relied on it).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>

#include "dbm/aligned.hpp"
#include "dbm/dbm.hpp"

namespace dbm {

class ZoneBatch {
 public:
  /// Lanes per block — matches the 8 x int32 width of one AVX2 vector.
  static constexpr size_t kLanes = 8;

  /// Matrix rows kept transposed as the SIMD filter region; the rest of
  /// each zone is stored contiguously for cheap survivor verification.
  static constexpr uint32_t kPrefixRows = 2;

  ZoneBatch() = default;
  explicit ZoneBatch(uint32_t dim) { init(dim); }

  /// Set the zone dimension before the first push. No-op if already
  /// set to the same value; the batch must be empty to change it.
  void init(uint32_t dim) {
    assert(size_ == 0 || dim_ == dim);
    dim_ = dim;
    elems_ = size_t{dim} * dim;
    prefixElems_ = size_t{dim < kPrefixRows ? dim : kPrefixRows} * dim;
    tailElems_ = elems_ - prefixElems_;
  }

  [[nodiscard]] uint32_t dimension() const noexcept { return dim_; }
  [[nodiscard]] size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Append a canonical row-major snapshot (rawData() of a same-dim Dbm).
  void push(std::span<const raw_t> raw);
  void push(const Dbm& z) { push(z.rawData()); }

  /// Copy zone `idx` back out in row-major order (`out` holds
  /// dim*dim entries).
  void copyTo(size_t idx, raw_t* out) const;

  /// Zone `idx` as a Dbm (tests / merge paths; allocates).
  [[nodiscard]] Dbm zoneAt(size_t idx) const;

  [[nodiscard]] raw_t at(size_t idx, uint32_t i, uint32_t j) const noexcept {
    assert(idx < size_ && i < dim_ && j < dim_);
    const size_t e = size_t{i} * dim_ + j;
    if (e < prefixElems_) return block(idx / kLanes)[e * kLanes + idx % kLanes];
    return tail(idx / kLanes, idx % kLanes)[e - prefixElems_];
  }

  /// Remove zone `idx` by moving the last zone into its lane.
  void swapRemove(size_t idx);

  void clear() noexcept { size_ = 0; }

  // -- Batched scans (the covered() hot path) -------------------------

  /// Any stored zone ⊇ the query snapshot?
  [[nodiscard]] bool anySuperset(std::span<const raw_t> q) const;

  /// Any stored zone exactly equal to the query snapshot?
  [[nodiscard]] bool containsEqual(std::span<const raw_t> q) const;

  /// Remove every stored zone ⊆ the query (including equal ones) —
  /// the passed store's symmetric subsumption pruning. Returns the
  /// number removed.
  size_t pruneSubsets(std::span<const raw_t> q);

  // -- Batched normalization ------------------------------------------

  /// Delay all zones: drop every upper bound (batched up()).
  void upAll();

  /// Floyd–Warshall closure of all zones in the batch. Does not detect
  /// emptiness (zones are independent); use zoneEmpty() after.
  void closeAll();

  /// Canonical-empty check of one zone (valid after closeAll()).
  [[nodiscard]] bool zoneEmpty(size_t idx) const noexcept {
    return at(idx, 0, 0) < kZeroBound;
  }

  [[nodiscard]] size_t memoryBytes() const noexcept {
    return data_.capacity() * sizeof(raw_t);
  }

 private:
  [[nodiscard]] size_t stride() const noexcept { return elems_ * kLanes; }
  [[nodiscard]] raw_t* block(size_t b) noexcept {
    return data_.data() + b * stride();
  }
  [[nodiscard]] const raw_t* block(size_t b) const noexcept {
    return data_.data() + b * stride();
  }
  /// Contiguous row-major rows [kPrefixRows, dim) of lane `l` in block
  /// `b` (empty when dim <= kPrefixRows).
  [[nodiscard]] raw_t* tail(size_t b, size_t l) noexcept {
    return block(b) + prefixElems_ * kLanes + l * tailElems_;
  }
  [[nodiscard]] const raw_t* tail(size_t b, size_t l) const noexcept {
    return block(b) + prefixElems_ * kLanes + l * tailElems_;
  }
  [[nodiscard]] size_t numBlocks() const noexcept {
    return (size_ + kLanes - 1) / kLanes;
  }
  /// Bit i set ⇔ lane i of block b holds a live zone.
  [[nodiscard]] uint32_t liveMask(size_t b) const noexcept {
    const size_t full = size_ / kLanes;
    if (b < full) return 0xFFu;
    return (1u << (size_ - full * kLanes)) - 1;
  }

  uint32_t dim_ = 0;
  size_t elems_ = 0;
  size_t prefixElems_ = 0;
  size_t tailElems_ = 0;
  size_t size_ = 0;
  RawBuffer data_;
};

}  // namespace dbm
