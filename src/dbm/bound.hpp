// Encoded clock-difference bounds for DBMs.
//
// A bound is a pair (value, strictness) representing the constraint
// `x - y < value` (strict) or `x - y <= value` (weak).  Following the
// encoding used in UPPAAL's UDBM library, a bound is packed into one
// int32_t as `(value << 1) | weak_bit` so that the natural integer order
// of the raw encoding coincides with the order on bounds:
//
//   (n, <)  <  (n, <=)  <  (n+1, <)
//
// The special raw value `kInfinity` represents the absent constraint
// `x - y < infinity`.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace dbm {

/// Raw encoded bound. See file comment for the encoding.
using raw_t = int32_t;

/// Unencoded bound values (what appears in guards such as `x <= 7`).
using value_t = int32_t;

inline constexpr raw_t kWeakBit = 1;

/// Raw encoding of "no bound" (x - y < infinity). Strict by convention.
inline constexpr raw_t kInfinity = std::numeric_limits<raw_t>::max() >> 1;

/// Largest finite bound value that can be encoded without overflow.
inline constexpr value_t kMaxValue = (kInfinity >> 1) - 1;

/// Build a weak bound  (x - y <= value).
[[nodiscard]] constexpr raw_t boundWeak(value_t value) noexcept {
  return static_cast<raw_t>((value << 1) | kWeakBit);
}

/// Build a strict bound  (x - y < value).
[[nodiscard]] constexpr raw_t boundStrict(value_t value) noexcept {
  return static_cast<raw_t>(value << 1);
}

/// Build a bound from value + strictness flag.
[[nodiscard]] constexpr raw_t bound(value_t value, bool strict) noexcept {
  return strict ? boundStrict(value) : boundWeak(value);
}

/// The bound (0, <=): the diagonal value of a canonical non-empty DBM.
inline constexpr raw_t kZeroBound = boundWeak(0);

/// Extract the numeric value of a finite encoded bound.
[[nodiscard]] constexpr value_t boundValue(raw_t raw) noexcept {
  return raw >> 1;
}

/// True if the encoded bound is strict (<) rather than weak (<=).
[[nodiscard]] constexpr bool isStrict(raw_t raw) noexcept {
  return (raw & kWeakBit) == 0;
}

/// Add two encoded bounds: (a, #a) + (b, #b) = (a+b, # strict iff either is).
/// Infinity absorbs everything.
[[nodiscard]] constexpr raw_t boundAdd(raw_t x, raw_t y) noexcept {
  if (x == kInfinity || y == kInfinity) return kInfinity;
  return (x + y) - ((x | y) & kWeakBit);
}

/// Negate a weak bound into the complementing strict bound and vice versa:
/// the negation of (<= n) as a constraint `x - y <= n` is `y - x < -n`.
[[nodiscard]] constexpr raw_t boundNegate(raw_t raw) noexcept {
  return bound(-boundValue(raw), !isStrict(raw));
}

/// Human-readable form, e.g. "<=3", "<7", "<inf".
[[nodiscard]] inline std::string boundToString(raw_t raw) {
  if (raw == kInfinity) return "<inf";
  return (isStrict(raw) ? "<" : "<=") + std::to_string(boundValue(raw));
}

}  // namespace dbm
