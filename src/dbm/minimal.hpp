// Reduced ("minimal form") representation of canonical DBMs — the
// paper's "compact data-structure for constraints" (Larsson, Larsen,
// Pettersson, Yi, RTSS'97).
//
// A canonical DBM is a complete shortest-path matrix; most entries are
// derivable from a small subset of constraints.  We store a reduced
// edge set whose closure reproduces the full matrix.  The passed list
// can answer its one inclusion question directly on the reduced form:
//
//   stored ⊇ new   iff   every reduced edge (i,j,b) of `stored`
//                        satisfies b >= new(i,j)
//
// (⇐: any stored entry is a shortest path over reduced edges, each of
// which dominates the corresponding entry of the canonical `new`, whose
// own triangle inequality closes the argument.)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dbm/dbm.hpp"

namespace dbm {

class MinimalDbm {
 public:
  struct Entry {
    uint16_t i;
    uint16_t j;
    raw_t bound;
  };

  /// Reduce a canonical, non-empty DBM.
  [[nodiscard]] static MinimalDbm from(const Dbm& z) {
    const uint32_t n = z.dimension();
    MinimalDbm out;
    out.dim_ = n;
    // Sequentially drop edges derivable from a 2-path of edges that are
    // still kept at the moment of the check. Each dropped edge then has
    // a witness chain ending in finally-kept edges, so the closure of
    // the kept set reproduces the full matrix. (Sound; minimal up to
    // tie-breaking among zero-cycles.)
    //
    // The scratch bitmap is thread-local: from() runs once per stored
    // state on the engine's hot path, and a fresh n*n allocation per
    // call dominates the reduction cost for small dimensions.
    thread_local std::vector<char> dropped;
    dropped.assign(size_t{n} * n, 0);
    const auto idx = [n](uint32_t i, uint32_t j) { return i * n + j; };
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = 0; j < n; ++j) {
        if (i == j || z.at(i, j) == kInfinity) continue;
        for (uint32_t k = 0; k < n; ++k) {
          if (k == i || k == j) continue;
          if (dropped[idx(i, k)] || dropped[idx(k, j)]) continue;
          if (boundAdd(z.at(i, k), z.at(k, j)) <= z.at(i, j)) {
            dropped[idx(i, j)] = true;
            break;
          }
        }
        if (!dropped[idx(i, j)]) {
          out.entries_.push_back(
              {static_cast<uint16_t>(i), static_cast<uint16_t>(j),
               z.at(i, j)});
        }
      }
    }
    return out;
  }

  /// Does the zone this reduction represents include `z`?
  /// (`z` must be canonical.)
  [[nodiscard]] bool includes(const Dbm& z) const {
    for (const Entry& e : entries_) {
      if (e.bound < z.at(e.i, e.j)) return false;
    }
    return true;
  }

  /// Rebuild the full canonical DBM (closure of the reduced edges).
  [[nodiscard]] Dbm reconstruct() const {
    return reconstruct(dim_, entries_);
  }

  /// Same, from a bare edge list — the flat passed store keeps reduced
  /// edges in per-bucket contiguous arenas rather than MinimalDbm
  /// objects and reconstructs directly from its spans.
  [[nodiscard]] static Dbm reconstruct(uint32_t dim,
                                       std::span<const Entry> entries) {
    Dbm z = Dbm::unconstrained(dim);
    // Start from an all-infinity matrix except the diagonal; the
    // unconstrained zone's row 0 must not inject constraints the
    // reduction chose to drop, so reset it explicitly.
    for (uint32_t i = 0; i < dim; ++i) {
      for (uint32_t j = 0; j < dim; ++j) {
        if (i != j) z.setRaw(i, j, kInfinity);
      }
    }
    for (const Entry& e : entries) z.setRaw(e.i, e.j, e.bound);
    z.close();
    return z;
  }

  [[nodiscard]] uint32_t dimension() const noexcept { return dim_; }
  [[nodiscard]] size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }

  [[nodiscard]] size_t memoryBytes() const noexcept {
    return entries_.capacity() * sizeof(Entry) + sizeof(*this);
  }

 private:
  uint32_t dim_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace dbm
