#include "dbm/simd.hpp"

#include <atomic>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define DBM_SIMD_X86 1
#endif

namespace dbm::simd {
namespace {

std::atomic<size_t> g_vectorOps{0};
std::atomic<size_t> g_scalarOps{0};

Level detect() noexcept {
#if defined(__aarch64__)
  return Level::kNeon;
#elif defined(DBM_SIMD_X86)
  return __builtin_cpu_supports("avx2") ? Level::kAvx2 : Level::kScalar;
#else
  return Level::kScalar;
#endif
}

std::atomic<Level> g_active{detect()};

// -- Scalar reference kernels ----------------------------------------------
// These are the semantics; the AVX2 paths below must match them bit for
// bit (including the overflow behaviour of boundAdd on near-kInfinity
// sums, which both paths share: sums of finite encoded bounds stay
// below INT32_MAX and anything above kInfinity loses every min()).

void rowMinPlusScalar(raw_t* dst, const raw_t* row, raw_t add,
                      size_t n) noexcept {
  for (size_t j = 0; j < n; ++j) {
    const raw_t r = row[j];
    if (r == kInfinity) continue;
    const raw_t via = (add + r) - ((add | r) & kWeakBit);
    if (via < dst[j]) dst[j] = via;
  }
}

bool rowsIncludeScalar(const raw_t* outer, const raw_t* inner,
                       size_t n) noexcept {
  for (size_t j = 0; j < n; ++j) {
    if (outer[j] < inner[j]) return false;
  }
  return true;
}

CompareResult rowCompareScalar(const raw_t* a, const raw_t* b,
                               size_t n) noexcept {
  CompareResult r;
  for (size_t j = 0; j < n; ++j) {
    if (a[j] < b[j]) r.anyLess = true;
    if (a[j] > b[j]) r.anyGreater = true;
    if (r.anyLess && r.anyGreater) break;
  }
  return r;
}

void rowMinEqScalar(raw_t* dst, const raw_t* src, size_t n) noexcept {
  for (size_t j = 0; j < n; ++j) {
    if (src[j] < dst[j]) dst[j] = src[j];
  }
}

uint32_t laneSupersetScalar(const raw_t* lanes, raw_t q,
                            uint32_t mask) noexcept {
  for (size_t i = 0; i < kLanes; ++i) {
    if (lanes[i] < q) mask &= ~(1u << i);
  }
  return mask;
}

uint32_t laneSubsetScalar(const raw_t* lanes, raw_t q,
                          uint32_t mask) noexcept {
  for (size_t i = 0; i < kLanes; ++i) {
    if (lanes[i] > q) mask &= ~(1u << i);
  }
  return mask;
}

uint32_t laneEqualScalar(const raw_t* lanes, raw_t q,
                         uint32_t mask) noexcept {
  for (size_t i = 0; i < kLanes; ++i) {
    if (lanes[i] != q) mask &= ~(1u << i);
  }
  return mask;
}

// Once a scan is down to one surviving lane, the 8-lane compares read
// 8x the useful data; a strided single-lane tail touches only that
// zone's entries. The tails are shared by the scalar and AVX2 blocks.

uint32_t laneTailSuperset(const raw_t* blk, const raw_t* q, size_t e,
                          size_t elems, uint32_t mask) noexcept {
  const auto lane = static_cast<size_t>(__builtin_ctz(mask));
  for (; e < elems; ++e) {
    if (blk[e * kLanes + lane] < q[e]) return 0;
  }
  return mask;
}

uint32_t laneTailSubset(const raw_t* blk, const raw_t* q, size_t e,
                        size_t elems, uint32_t mask) noexcept {
  const auto lane = static_cast<size_t>(__builtin_ctz(mask));
  for (; e < elems; ++e) {
    if (blk[e * kLanes + lane] > q[e]) return 0;
  }
  return mask;
}

uint32_t laneTailEqual(const raw_t* blk, const raw_t* q, size_t e,
                       size_t elems, uint32_t mask) noexcept {
  const auto lane = static_cast<size_t>(__builtin_ctz(mask));
  for (; e < elems; ++e) {
    if (blk[e * kLanes + lane] != q[e]) return 0;
  }
  return mask;
}

uint32_t blockSupersetScalar(const raw_t* blk, const raw_t* q, size_t elems,
                             uint32_t mask) noexcept {
  for (size_t e = 0; e < elems && mask != 0; ++e) {
    mask = laneSupersetScalar(blk + e * kLanes, q[e], mask);
    if ((mask & (mask - 1)) == 0 && mask != 0) {
      return laneTailSuperset(blk, q, e + 1, elems, mask);
    }
  }
  return mask;
}

uint32_t blockSubsetScalar(const raw_t* blk, const raw_t* q, size_t elems,
                           uint32_t mask) noexcept {
  for (size_t e = 0; e < elems && mask != 0; ++e) {
    mask = laneSubsetScalar(blk + e * kLanes, q[e], mask);
    if ((mask & (mask - 1)) == 0 && mask != 0) {
      return laneTailSubset(blk, q, e + 1, elems, mask);
    }
  }
  return mask;
}

uint32_t blockEqualScalar(const raw_t* blk, const raw_t* q, size_t elems,
                          uint32_t mask) noexcept {
  for (size_t e = 0; e < elems && mask != 0; ++e) {
    mask = laneEqualScalar(blk + e * kLanes, q[e], mask);
    if ((mask & (mask - 1)) == 0 && mask != 0) {
      return laneTailEqual(blk, q, e + 1, elems, mask);
    }
  }
  return mask;
}

void laneMinPlusScalar(raw_t* dst, const raw_t* row, const raw_t* add,
                       size_t n) noexcept {
  // Snapshot the add lanes: `add` may point inside `dst` (the k-th
  // element of the row being relaxed), and the AVX2 path loads it once
  // upfront — both paths must see the pre-update values.
  raw_t a8[kLanes];
  for (size_t i = 0; i < kLanes; ++i) a8[i] = add[i];
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = 0; i < kLanes; ++i) {
      const raw_t a = a8[i];
      const raw_t r = row[j * kLanes + i];
      if (a == kInfinity || r == kInfinity) continue;
      const raw_t via = (a + r) - ((a | r) & kWeakBit);
      raw_t& d = dst[j * kLanes + i];
      if (via < d) d = via;
    }
  }
}

#if defined(DBM_SIMD_X86)

// -- AVX2 kernels ----------------------------------------------------------
// Compiled with a function-level target attribute so the translation
// unit itself needs no -mavx2; the dispatcher only routes here after a
// positive CPUID check.

__attribute__((target("avx2"))) void rowMinPlusAvx2(raw_t* dst,
                                                    const raw_t* row,
                                                    raw_t add,
                                                    size_t n) noexcept {
  const __m256i addv = _mm256_set1_epi32(add);
  const __m256i inf = _mm256_set1_epi32(kInfinity);
  const __m256i one = _mm256_set1_epi32(kWeakBit);
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256i r = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(row + j));
    // via = (add + r) - ((add | r) & 1), with r == inf absorbing.
    __m256i via = _mm256_sub_epi32(
        _mm256_add_epi32(addv, r),
        _mm256_and_si256(_mm256_or_si256(addv, r), one));
    const __m256i isInf = _mm256_cmpeq_epi32(r, inf);
    via = _mm256_blendv_epi8(via, inf, isInf);
    __m256i* dp = reinterpret_cast<__m256i*>(dst + j);
    const __m256i d = _mm256_loadu_si256(dp);
    _mm256_storeu_si256(dp, _mm256_min_epi32(d, via));
  }
  rowMinPlusScalar(dst + j, row + j, add, n - j);
}

__attribute__((target("avx2"))) bool rowsIncludeAvx2(const raw_t* outer,
                                                     const raw_t* inner,
                                                     size_t n) noexcept {
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256i o = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(outer + j));
    const __m256i in = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(inner + j));
    if (_mm256_movemask_epi8(_mm256_cmpgt_epi32(in, o)) != 0) return false;
  }
  return rowsIncludeScalar(outer + j, inner + j, n - j);
}

__attribute__((target("avx2"))) CompareResult
rowCompareAvx2(const raw_t* a, const raw_t* b, size_t n) noexcept {
  __m256i less = _mm256_setzero_si256();
  __m256i greater = _mm256_setzero_si256();
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256i av = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(a + j));
    const __m256i bv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b + j));
    less = _mm256_or_si256(less, _mm256_cmpgt_epi32(bv, av));
    greater = _mm256_or_si256(greater, _mm256_cmpgt_epi32(av, bv));
  }
  CompareResult r;
  r.anyLess = _mm256_movemask_epi8(less) != 0;
  r.anyGreater = _mm256_movemask_epi8(greater) != 0;
  if (!(r.anyLess && r.anyGreater)) {
    const CompareResult tail = rowCompareScalar(a + j, b + j, n - j);
    r.anyLess = r.anyLess || tail.anyLess;
    r.anyGreater = r.anyGreater || tail.anyGreater;
  }
  return r;
}

__attribute__((target("avx2"))) void rowMinEqAvx2(raw_t* dst,
                                                  const raw_t* src,
                                                  size_t n) noexcept {
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256i* dp = reinterpret_cast<__m256i*>(dst + j);
    const __m256i d = _mm256_loadu_si256(dp);
    const __m256i s = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(src + j));
    _mm256_storeu_si256(dp, _mm256_min_epi32(d, s));
  }
  rowMinEqScalar(dst + j, src + j, n - j);
}

__attribute__((target("avx2"))) uint32_t
laneSupersetAvx2(const raw_t* lanes, raw_t q, uint32_t mask) noexcept {
  const __m256i lv = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(lanes));
  const __m256i lt = _mm256_cmpgt_epi32(_mm256_set1_epi32(q), lv);
  const uint32_t dead = static_cast<uint32_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(lt)));
  return mask & ~dead;
}

__attribute__((target("avx2"))) uint32_t
laneSubsetAvx2(const raw_t* lanes, raw_t q, uint32_t mask) noexcept {
  const __m256i lv = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(lanes));
  const __m256i gt = _mm256_cmpgt_epi32(lv, _mm256_set1_epi32(q));
  const uint32_t dead = static_cast<uint32_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(gt)));
  return mask & ~dead;
}

__attribute__((target("avx2"))) uint32_t
laneEqualAvx2(const raw_t* lanes, raw_t q, uint32_t mask) noexcept {
  const __m256i lv = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(lanes));
  const __m256i eq = _mm256_cmpeq_epi32(lv, _mm256_set1_epi32(q));
  const uint32_t keep = static_cast<uint32_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(eq)));
  return mask & keep;
}

__attribute__((target("avx2"))) uint32_t
blockSupersetAvx2(const raw_t* blk, const raw_t* q, size_t elems,
                  uint32_t mask) noexcept {
  for (size_t e = 0; e < elems && mask != 0; ++e) {
    const __m256i lv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(blk + e * kLanes));
    const __m256i lt = _mm256_cmpgt_epi32(_mm256_set1_epi32(q[e]), lv);
    mask &= ~static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(lt)));
    if ((mask & (mask - 1)) == 0 && mask != 0) {
      return laneTailSuperset(blk, q, e + 1, elems, mask);
    }
  }
  return mask;
}

__attribute__((target("avx2"))) uint32_t
blockSubsetAvx2(const raw_t* blk, const raw_t* q, size_t elems,
                uint32_t mask) noexcept {
  for (size_t e = 0; e < elems && mask != 0; ++e) {
    const __m256i lv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(blk + e * kLanes));
    const __m256i gt = _mm256_cmpgt_epi32(lv, _mm256_set1_epi32(q[e]));
    mask &= ~static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(gt)));
    if ((mask & (mask - 1)) == 0 && mask != 0) {
      return laneTailSubset(blk, q, e + 1, elems, mask);
    }
  }
  return mask;
}

__attribute__((target("avx2"))) uint32_t
blockEqualAvx2(const raw_t* blk, const raw_t* q, size_t elems,
               uint32_t mask) noexcept {
  for (size_t e = 0; e < elems && mask != 0; ++e) {
    const __m256i lv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(blk + e * kLanes));
    const __m256i eq = _mm256_cmpeq_epi32(lv, _mm256_set1_epi32(q[e]));
    mask &= static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(eq)));
    if ((mask & (mask - 1)) == 0 && mask != 0) {
      return laneTailEqual(blk, q, e + 1, elems, mask);
    }
  }
  return mask;
}

__attribute__((target("avx2"))) void laneMinPlusAvx2(raw_t* dst,
                                                     const raw_t* row,
                                                     const raw_t* add,
                                                     size_t n) noexcept {
  const __m256i addv = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(add));
  const __m256i inf = _mm256_set1_epi32(kInfinity);
  const __m256i one = _mm256_set1_epi32(kWeakBit);
  const __m256i addInf = _mm256_cmpeq_epi32(addv, inf);
  for (size_t j = 0; j < n; ++j) {
    const __m256i r = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(row + j * kLanes));
    __m256i via = _mm256_sub_epi32(
        _mm256_add_epi32(addv, r),
        _mm256_and_si256(_mm256_or_si256(addv, r), one));
    const __m256i anyInf =
        _mm256_or_si256(addInf, _mm256_cmpeq_epi32(r, inf));
    via = _mm256_blendv_epi8(via, inf, anyInf);
    __m256i* dp = reinterpret_cast<__m256i*>(dst + j * kLanes);
    const __m256i d = _mm256_loadu_si256(dp);
    _mm256_storeu_si256(dp, _mm256_min_epi32(d, via));
  }
}

#endif  // DBM_SIMD_X86

inline bool useAvx2() noexcept {
#if defined(DBM_SIMD_X86)
  return g_active.load(std::memory_order_relaxed) == Level::kAvx2;
#else
  return false;
#endif
}

}  // namespace

const char* levelName(Level l) noexcept {
  switch (l) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "?";
}

Level detectedLevel() noexcept {
  static const Level d = detect();
  return d;
}

Level activeLevel() noexcept {
  return g_active.load(std::memory_order_relaxed);
}

void forceLevel(Level l) noexcept {
  const Level d = detectedLevel();
  g_active.store(static_cast<uint8_t>(l) <= static_cast<uint8_t>(d) ? l : d,
                 std::memory_order_relaxed);
}

size_t vectorOps() noexcept {
  return g_vectorOps.load(std::memory_order_relaxed);
}

size_t scalarOps() noexcept {
  return g_scalarOps.load(std::memory_order_relaxed);
}

void resetCounters() noexcept {
  g_vectorOps.store(0, std::memory_order_relaxed);
  g_scalarOps.store(0, std::memory_order_relaxed);
}

void noteOp() noexcept {
  if (activeLevel() == Level::kScalar) {
    g_scalarOps.fetch_add(1, std::memory_order_relaxed);
  } else {
    g_vectorOps.fetch_add(1, std::memory_order_relaxed);
  }
}

void rowMinPlus(raw_t* dst, const raw_t* row, raw_t add, size_t n) noexcept {
#if defined(DBM_SIMD_X86)
  if (useAvx2()) {
    rowMinPlusAvx2(dst, row, add, n);
    return;
  }
#endif
  rowMinPlusScalar(dst, row, add, n);
}

bool rowsInclude(const raw_t* outer, const raw_t* inner, size_t n) noexcept {
#if defined(DBM_SIMD_X86)
  if (useAvx2()) return rowsIncludeAvx2(outer, inner, n);
#endif
  return rowsIncludeScalar(outer, inner, n);
}

CompareResult rowCompare(const raw_t* a, const raw_t* b, size_t n) noexcept {
#if defined(DBM_SIMD_X86)
  if (useAvx2()) return rowCompareAvx2(a, b, n);
#endif
  return rowCompareScalar(a, b, n);
}

void rowMinEq(raw_t* dst, const raw_t* src, size_t n) noexcept {
#if defined(DBM_SIMD_X86)
  if (useAvx2()) {
    rowMinEqAvx2(dst, src, n);
    return;
  }
#endif
  rowMinEqScalar(dst, src, n);
}

uint32_t laneSupersetMask(const raw_t* lanes, raw_t q,
                          uint32_t mask) noexcept {
#if defined(DBM_SIMD_X86)
  if (useAvx2()) return laneSupersetAvx2(lanes, q, mask);
#endif
  return laneSupersetScalar(lanes, q, mask);
}

uint32_t laneSubsetMask(const raw_t* lanes, raw_t q, uint32_t mask) noexcept {
#if defined(DBM_SIMD_X86)
  if (useAvx2()) return laneSubsetAvx2(lanes, q, mask);
#endif
  return laneSubsetScalar(lanes, q, mask);
}

uint32_t laneEqualMask(const raw_t* lanes, raw_t q, uint32_t mask) noexcept {
#if defined(DBM_SIMD_X86)
  if (useAvx2()) return laneEqualAvx2(lanes, q, mask);
#endif
  return laneEqualScalar(lanes, q, mask);
}

uint32_t blockSupersetMask(const raw_t* blk, const raw_t* q, size_t elems,
                           uint32_t mask) noexcept {
#if defined(DBM_SIMD_X86)
  if (useAvx2()) return blockSupersetAvx2(blk, q, elems, mask);
#endif
  return blockSupersetScalar(blk, q, elems, mask);
}

uint32_t blockSubsetMask(const raw_t* blk, const raw_t* q, size_t elems,
                         uint32_t mask) noexcept {
#if defined(DBM_SIMD_X86)
  if (useAvx2()) return blockSubsetAvx2(blk, q, elems, mask);
#endif
  return blockSubsetScalar(blk, q, elems, mask);
}

uint32_t blockEqualMask(const raw_t* blk, const raw_t* q, size_t elems,
                        uint32_t mask) noexcept {
#if defined(DBM_SIMD_X86)
  if (useAvx2()) return blockEqualAvx2(blk, q, elems, mask);
#endif
  return blockEqualScalar(blk, q, elems, mask);
}

void laneMinPlus(raw_t* dst, const raw_t* row, const raw_t* add,
                 size_t n) noexcept {
#if defined(DBM_SIMD_X86)
  if (useAvx2()) {
    laneMinPlusAvx2(dst, row, add, n);
    return;
  }
#endif
  laneMinPlusScalar(dst, row, add, n);
}

}  // namespace dbm::simd
