// A federation is a finite union of DBM zones over the same clock set.
//
// The reachability engine itself stores one zone per symbolic state (as
// UPPAAL does), but federations are useful for queries ("is this set of
// valuations covered?"), for tests, and for building non-convex guards.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "dbm/dbm.hpp"

namespace dbm {

/// Union of zones, kept inclusion-reduced (no member includes another).
class Federation {
 public:
  explicit Federation(uint32_t dim) : dim_(dim) {}

  [[nodiscard]] static Federation empty(uint32_t dim) {
    return Federation(dim);
  }

  [[nodiscard]] uint32_t dimension() const noexcept { return dim_; }
  [[nodiscard]] bool isEmpty() const noexcept { return zones_.empty(); }
  [[nodiscard]] size_t size() const noexcept { return zones_.size(); }
  [[nodiscard]] const std::vector<Dbm>& zones() const noexcept {
    return zones_;
  }

  /// Add a zone; drops it if already covered by a member, and drops
  /// members covered by it.
  void add(Dbm zone) {
    if (zone.isEmpty()) return;
    for (const Dbm& z : zones_) {
      if (z.includes(zone)) return;
    }
    std::erase_if(zones_, [&](const Dbm& z) { return zone.includes(z); });
    zones_.push_back(std::move(zone));
  }

  /// True if the valuation lies in some member zone.
  [[nodiscard]] bool containsPoint(std::span<const int64_t> val) const {
    for (const Dbm& z : zones_) {
      if (z.containsPoint(val)) return true;
    }
    return false;
  }

  /// True if `zone` is included in some single member.  (Sound but not
  /// complete for true set inclusion into the union — the same
  /// approximation UPPAAL's passed list uses.)
  [[nodiscard]] bool includesZone(const Dbm& zone) const {
    for (const Dbm& z : zones_) {
      if (z.includes(zone)) return true;
    }
    return false;
  }

  /// Delay every member.
  void up() {
    for (Dbm& z : zones_) z.up();
  }

  /// Intersect every member with `other`, dropping emptied members.
  void intersect(const Dbm& other) {
    std::vector<Dbm> out;
    out.reserve(zones_.size());
    for (Dbm& z : zones_) {
      if (z.intersect(other)) out.push_back(std::move(z));
    }
    zones_ = std::move(out);
  }

  [[nodiscard]] size_t memoryBytes() const noexcept {
    size_t total = zones_.capacity() * sizeof(Dbm);
    for (const Dbm& z : zones_) total += z.memoryBytes();
    return total;
  }

 private:
  uint32_t dim_;
  std::vector<Dbm> zones_;
};

}  // namespace dbm
