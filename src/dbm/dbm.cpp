#include "dbm/dbm.hpp"

#include <algorithm>
#include <sstream>

#include "dbm/simd.hpp"

namespace dbm {

Dbm Dbm::unconstrained(uint32_t dim) {
  Dbm d(dim);
  for (uint32_t i = 0; i < dim; ++i) {
    for (uint32_t j = 0; j < dim; ++j) {
      // Row 0 keeps x_j >= 0 (0 - x_j <= 0); diagonal stays (0, <=).
      d.raw_[i * dim + j] = (i == 0 || i == j) ? kZeroBound : kInfinity;
    }
  }
  return d;
}

bool Dbm::close() {
  invalidateHash();
  simd::noteOp();
  const uint32_t n = dim_;
  for (uint32_t k = 0; k < n; ++k) {
    const raw_t* rowK = raw_.data() + size_t{k} * n;
    for (uint32_t i = 0; i < n; ++i) {
      const raw_t dik = raw_[i * n + k];
      if (dik == kInfinity) continue;
      simd::rowMinPlus(raw_.data() + size_t{i} * n, rowK, dik, n);
    }
    if (raw_[k * n + k] < kZeroBound) {
      setEmpty();
      return false;
    }
  }
  return true;
}

bool Dbm::closeAfterConstrain(uint32_t a, uint32_t b) {
  invalidateHash();
  simd::noteOp();
  const uint32_t n = dim_;
  const raw_t dab = raw_[a * n + b];
  if (boundAdd(dab, raw_[b * n + a]) < kZeroBound) {
    setEmpty();
    return false;
  }
  const raw_t* rowB = raw_.data() + size_t{b} * n;
  for (uint32_t i = 0; i < n; ++i) {
    const raw_t dia = boundAdd(raw_[i * n + a], dab);
    if (dia == kInfinity) continue;
    simd::rowMinPlus(raw_.data() + size_t{i} * n, rowB, dia, n);
  }
  return true;
}

bool Dbm::constrain(uint32_t i, uint32_t j, raw_t b) {
  assert(i != j);
  if (isEmpty()) return false;
  if (b >= raw_[i * dim_ + j]) return true;  // no tightening needed
  raw_[i * dim_ + j] = b;
  return closeAfterConstrain(i, j);
}

void Dbm::up() {
  invalidateHash();
  for (uint32_t i = 1; i < dim_; ++i) raw_[i * dim_] = kInfinity;
}

void Dbm::down() {
  invalidateHash();
  // Relax lower bounds: x_j may be anything a past valuation allowed,
  // clamped at 0.  Preserves canonical form (UDBM's dbm_down).
  const uint32_t n = dim_;
  for (uint32_t j = 1; j < n; ++j) {
    raw_t lo = kZeroBound;
    for (uint32_t i = 1; i < n; ++i) {
      lo = std::min(lo, raw_[i * n + j]);
    }
    raw_[j] = lo;  // raw_[0*n + j]
  }
}

void Dbm::reset(uint32_t i, value_t v) {
  invalidateHash();
  assert(i > 0 && i < dim_);
  const uint32_t n = dim_;
  const raw_t up_b = boundWeak(v);
  const raw_t lo_b = boundWeak(-v);
  for (uint32_t j = 0; j < n; ++j) {
    if (j == i) continue;
    raw_[i * n + j] = boundAdd(up_b, raw_[j]);       // x_i - x_j <= v + (0 - x_j)
    raw_[j * n + i] = boundAdd(raw_[j * n], lo_b);   // x_j - x_i <= (x_j - 0) - v
  }
}

void Dbm::copyClock(uint32_t i, uint32_t j) {
  invalidateHash();
  assert(i > 0 && i != j);
  const uint32_t n = dim_;
  for (uint32_t k = 0; k < n; ++k) {
    if (k == i) continue;
    raw_[i * n + k] = raw_[j * n + k];
    raw_[k * n + i] = raw_[k * n + j];
  }
  raw_[i * n + j] = kZeroBound;
  raw_[j * n + i] = kZeroBound;
}

void Dbm::freeClock(uint32_t i) {
  invalidateHash();
  assert(i > 0 && i < dim_);
  const uint32_t n = dim_;
  for (uint32_t j = 0; j < n; ++j) {
    if (j == i) continue;
    raw_[i * n + j] = kInfinity;
    raw_[j * n + i] = raw_[j * n];  // x_j - x_i <= x_j - 0 since x_i >= 0
  }
  raw_[i * n] = kInfinity;
  raw_[i] = kZeroBound;  // 0 - x_i <= 0
}

bool Dbm::extrapolateMaxBounds(std::span<const value_t> max) {
  assert(max.size() == dim_);
  const uint32_t n = dim_;
  bool changed = false;
  for (uint32_t i = 0; i < n; ++i) {
    // Clocks never compared against a constant behave as if max == 0.
    const value_t mi = std::max<value_t>(max[i], 0);
    for (uint32_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const value_t mj = std::max<value_t>(max[j], 0);
      raw_t& b = raw_[i * n + j];
      if (b == kInfinity) continue;
      if (i != 0 && b > boundWeak(mi)) {
        b = kInfinity;
        changed = true;
      } else if (b < boundStrict(-mj)) {
        b = boundStrict(-mj);
        changed = true;
      }
    }
  }
  if (changed) close();
  return changed;
}

bool Dbm::extrapolateLUBounds(std::span<const value_t> lower,
                              std::span<const value_t> upper) {
  assert(lower.size() == dim_ && upper.size() == dim_);
  const uint32_t n = dim_;
  // The rules compare against the *input* lower-bound row d_0k, which
  // the i == 0 pass mutates — snapshot it first.
  thread_local std::vector<raw_t> row0;
  row0.assign(raw_.begin(), raw_.begin() + n);
  bool changed = false;
  for (uint32_t i = 0; i < n; ++i) {
    const value_t li = std::max<value_t>(lower[i], 0);
    // -d_0i is the infimum of x_i in the input zone.
    const value_t infI = i == 0 ? 0 : -boundValue(row0[i]);
    for (uint32_t j = 0; j < n; ++j) {
      if (i == j) continue;
      raw_t& b = raw_[i * n + j];
      if (b == kInfinity) continue;
      const value_t uj = std::max<value_t>(upper[j], 0);
      const value_t infJ = -boundValue(row0[j]);
      if (i != 0) {
        if (b > boundWeak(li) || infI > li || infJ > uj) {
          b = kInfinity;
          changed = true;
        }
      } else if (infJ > uj) {
        // Weaken the lower bound of x_j down to (strictly above) U(x_j):
        // no remaining guard or invariant can tell values above U apart.
        b = boundStrict(-uj);
        changed = true;
      }
    }
  }
  if (changed) close();
  return changed;
}

Dbm Dbm::fromSpan(uint32_t dim, std::span<const raw_t> raw) {
  assert(raw.size() == size_t{dim} * dim);
  Dbm d(dim);
  std::copy(raw.begin(), raw.end(), d.raw_.begin());
  d.invalidateHash();
  return d;
}

Dbm Dbm::convexHullOf(const Dbm& a, const Dbm& b) {
  assert(a.dim_ == b.dim_);
  Dbm h(a);
  for (size_t k = 0; k < h.raw_.size(); ++k) {
    h.raw_[k] = std::max(h.raw_[k], b.raw_[k]);
  }
  h.invalidateHash();
  return h;
}

bool Dbm::tryConvexUnion(const Dbm& a, const Dbm& b, Dbm* out,
                         int maxPieces) {
  assert(a.dim_ == b.dim_ && !a.isEmpty() && !b.isEmpty());
  const uint32_t n = a.dim_;
  Dbm hull = convexHullOf(a, b);
  // Inclusion degenerates the union: the hull IS the larger operand.
  if (hull.raw_ == a.raw_ || hull.raw_ == b.raw_) {
    *out = std::move(hull);
    return true;
  }
  // Cost bound: each piece of hull \ a comes from an entry where a is
  // strictly tighter than the hull, so count them before building any.
  int pieces = 0;
  for (size_t k = 0; k < a.raw_.size(); ++k) {
    if (a.raw_[k] < hull.raw_[k] && ++pieces > maxPieces) return false;
  }
  // hull == a ∪ b  iff  (hull \ a) ⊆ b.  A point of the hull outside a
  // violates at least one constraint (i, j) of a, so hull \ a is the
  // union over a's tighter entries of hull ∧ ¬(x_i - x_j ≤ a_ij), i.e.
  // hull ∧ (x_j - x_i < -a_ij) with flipped strictness (boundNegate).
  Dbm piece(n);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const raw_t aij = a.raw_[i * n + j];
      if (aij >= hull.raw_[i * n + j]) continue;
      piece = hull;
      if (!piece.constrain(j, i, boundNegate(aij))) continue;  // empty piece
      if (!b.includes(piece)) return false;
    }
  }
  *out = std::move(hull);
  return true;
}

Relation Dbm::relation(const Dbm& other) const noexcept {
  assert(dim_ == other.dim_);
  simd::noteOp();
  const simd::CompareResult r =
      simd::rowCompare(raw_.data(), other.raw_.data(), raw_.size());
  if (r.anyGreater && r.anyLess) return Relation::kDifferent;
  if (!r.anyGreater && !r.anyLess) return Relation::kEqual;
  return r.anyGreater ? Relation::kSuperset : Relation::kSubset;
}

bool Dbm::includes(const Dbm& other) const noexcept {
  assert(dim_ == other.dim_);
  if (other.isEmpty()) return true;
  if (isEmpty()) return false;
  simd::noteOp();
  return simd::rowsInclude(raw_.data(), other.raw_.data(), raw_.size());
}

bool Dbm::intersect(const Dbm& other) {
  assert(dim_ == other.dim_);
  simd::rowMinEq(raw_.data(), other.raw_.data(), raw_.size());
  return close();
}

bool Dbm::containsPoint(std::span<const int64_t> val) const noexcept {
  assert(val.size() == dim_);
  if (isEmpty() || val[0] != 0) return false;
  for (uint32_t i = 0; i < dim_; ++i) {
    for (uint32_t j = 0; j < dim_; ++j) {
      if (i == j) continue;
      const raw_t b = at(i, j);
      if (b == kInfinity) continue;
      const int64_t diff = val[i] - val[j];
      const int64_t bv = boundValue(b);
      if (isStrict(b) ? diff >= bv : diff > bv) return false;
    }
  }
  return true;
}

size_t Dbm::hash() const noexcept {
  size_t h = hash_.load(std::memory_order_relaxed);
  if (h != 0) return h;
  // FNV-1a over the raw entries.
  h = 1469598103934665603ull;
  for (raw_t r : raw_) {
    h ^= static_cast<size_t>(static_cast<uint32_t>(r));
    h *= 1099511628211ull;
  }
  if (h == 0) h = 0x9e3779b97f4a7c15ull;  // 0 is the "not computed" sentinel
  hash_.store(h, std::memory_order_relaxed);
  return h;
}

std::string Dbm::toString() const {
  std::ostringstream os;
  for (uint32_t i = 0; i < dim_; ++i) {
    for (uint32_t j = 0; j < dim_; ++j) {
      os << boundToString(at(i, j)) << (j + 1 == dim_ ? "\n" : "\t");
    }
  }
  return os.str();
}

}  // namespace dbm
