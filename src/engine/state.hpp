// Symbolic states: a discrete part (location vector + integer variable
// valuation) paired with a clock zone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dbm/dbm.hpp"
#include "ta/model.hpp"

namespace engine {

/// The discrete part of a symbolic state.
struct DiscreteState {
  std::vector<ta::LocId> locs;  ///< current location per automaton
  std::vector<int32_t> vars;    ///< integer variable valuation

  [[nodiscard]] bool operator==(const DiscreteState& o) const noexcept {
    return locs == o.locs && vars == o.vars;
  }

  [[nodiscard]] size_t hash() const noexcept {
    size_t h = 1469598103934665603ull;
    const auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    for (ta::LocId l : locs) mix(static_cast<uint32_t>(l));
    for (int32_t v : vars) mix(static_cast<uint32_t>(v) + 0x9e3779b9u);
    return h;
  }

  /// A second hash over the same data from an independent seed and
  /// multiplier (xxHash-style constants). Bit-state hashing needs two
  /// probe positions that do not collide together: deriving both from
  /// one hash value makes every h1 collision an h2 collision, silently
  /// doubling the omission probability the two-bit scheme is meant to
  /// suppress.
  [[nodiscard]] size_t hash2() const noexcept {
    size_t h = 0x27220a95fe326639ull;
    const auto mix = [&h](uint64_t v) {
      h = (h ^ v) * 0x9e3779b185ebca87ull;
      h ^= h >> 29;
    };
    for (ta::LocId l : locs) mix(static_cast<uint32_t>(l));
    for (int32_t v : vars) mix(static_cast<uint32_t>(v) + 0x85ebca77u);
    return h;
  }

  [[nodiscard]] size_t memoryBytes() const noexcept {
    return locs.capacity() * sizeof(ta::LocId) +
           vars.capacity() * sizeof(int32_t);
  }
};

/// One participating (process, edge) of a transition; a binary
/// synchronization has two parts, an internal step one.
struct TransitionPart {
  ta::ProcId proc = -1;
  int32_t edge = -1;
};

/// The discrete transition taken between two symbolic states.
struct Transition {
  // 0 parts = initial state marker; 1 = internal; 2 = binary sync;
  // >2 = broadcast (sender first).
  std::vector<TransitionPart> parts;
};

struct SymbolicState {
  DiscreteState d;
  dbm::Dbm zone;

  [[nodiscard]] size_t memoryBytes() const noexcept {
    return d.memoryBytes() + zone.memoryBytes();
  }

  /// Combined hash of discrete part and zone (used by bit-state hashing).
  [[nodiscard]] size_t fullHash() const noexcept {
    size_t h = d.hash();
    h ^= zone.hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  }

  /// Second, independently seeded combined hash: built from
  /// DiscreteState::hash2() (its own seed and multiplier) and a
  /// different mixing of the zone hash, so (fullHash, fullHash2)
  /// collide together only for genuinely identical content — the
  /// property the two-bit bit-state scheme relies on.
  [[nodiscard]] size_t fullHash2() const noexcept {
    size_t h = d.hash2();
    size_t z = zone.hash() * 0xc2b2ae3d27d4eb4full;
    z ^= z >> 33;
    h ^= z + 0x165667b19e3779f9ull + (h << 25) + (h >> 7);
    return h;
  }
};

}  // namespace engine
