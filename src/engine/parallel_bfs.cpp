// Level-synchronous parallel breadth-first reachability.
//
// The frontier of each BFS level is expanded by opts.threads workers
// pulling fixed-size chunks of frontier positions from an atomic
// cursor (cheap work stealing: a worker that finishes its fair share
// keeps taking chunks from the tail other workers have not reached).
// Successors are test-and-inserted into a ShardedPassedStore; survivors
// are buffered per worker and merged into the node arena at the level
// barrier, sorted by (parent position, successor ordinal) so the arena
// layout — and therefore trace reconstruction — is deterministic.
//
// Goal handling is "first goal wins" at the barrier: workers never stop
// early on a goal hit; the level is finished and the hit with the
// smallest (position, ordinal) is selected, which is exactly the first
// hit the sequential engine would have seen for the same frontier.
// Verdicts (reachable / exhausted) therefore match sequential BFS; see
// DESIGN.md "Parallel explorer" for what is and is not preserved.
#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <deque>
#include <thread>
#include <vector>

#include "dbm/pool.hpp"
#include "engine/interner.hpp"
#include "engine/passed_store.hpp"
#include "engine/reachability.hpp"

namespace engine {

namespace {

using Clock = std::chrono::steady_clock;

/// Interned discrete id + zone; the discrete vectors live once in the
/// run's StateInterner (ids published to other workers through the
/// level barrier's thread join).
struct Node {
  uint32_t did;
  dbm::Dbm zone;
  Transition via;
  int64_t parent;
};

/// A successor that survived the passed-store filter, keyed for the
/// deterministic barrier merge.
struct PendingNode {
  size_t pos;    ///< frontier position of the parent
  uint32_t ord;  ///< successor ordinal within the parent's expansion
  Node node;
};

/// A goal hit found during a level. For deadlock goals the hit is the
/// expanded state itself (ord == kDeadlockOrd, node parts unused).
struct GoalHit {
  size_t pos = 0;
  uint32_t ord = 0;
  SymbolicState state;
  Transition via;
};

constexpr uint32_t kDeadlockOrd = ~uint32_t{0};

struct WorkerOut {
  std::vector<PendingNode> nodes;
  std::vector<GoalHit> hits;
  size_t explored = 0;
  size_t generated = 0;
  size_t steals = 0;
};

}  // namespace

Result Reachability::runParallelBfs(const Goal& goal) {
  const size_t nThreads = std::max<size_t>(1, opts_.threads);
  Result res;
  res.stats.perThreadExplored.assign(nThreads, 0);
  const Clock::time_point start = Clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  StateInterner& interner = *interner_;
  ShardedPassedStore passed(opts_.shardBits, opts_, interner);
  std::deque<Node> arena;  // stable references: workers read, barrier appends
  std::vector<int64_t> frontier;
  size_t arenaBytes = 0;

  const auto buildTrace = [&](int64_t idx) {
    std::vector<TraceStep> rev;
    for (int64_t k = idx; k >= 0; k = arena[static_cast<size_t>(k)].parent) {
      const Node& n = arena[static_cast<size_t>(k)];
      rev.push_back(TraceStep{n.via, SymbolicState{interner.get(n.did),
                                                   n.zone}});
    }
    std::reverse(rev.begin(), rev.end());
    res.trace.steps = std::move(rev);
  };

  const auto finish = [&](Cutoff c, bool exhausted) {
    res.stats.cutoff = c;
    res.exhausted = exhausted && c == Cutoff::kNone;
    res.stats.seconds = elapsed();
    res.stats.statesStored = passed.states();
    res.stats.lockContention = passed.lockContention();
    res.stats.storeLookups = passed.lookups();
    res.stats.storeProbeSteps = passed.probeSteps();
    res.stats.zonesMerged = passed.merges();
    res.stats.storeBytes = passed.bytes();
    return res;
  };

  SymbolicState init = gen_.initial();
  if (init.zone.isEmpty()) {
    // A lifted initial state (System::setClockInit) violated an
    // invariant: nothing is reachable.
    return finish(Cutoff::kNone, true);
  }
  if (!goal.deadlock && goal.matches(sys_, init)) {
    arena.push_back(
        {interner.intern(init.d), std::move(init.zone), Transition{}, -1});
    res.reachable = true;
    buildTrace(0);
    return finish(Cutoff::kNone, false);
  }
  {
    const uint32_t id = passed.testAndInsert(init);
    assert(id != StateInterner::kNoId);
    arenaBytes += init.zone.memoryBytes();
    arena.push_back({id, std::move(init.zone), Transition{}, -1});
    frontier.push_back(0);
  }

  // Cutoffs discovered mid-level (first one wins; kNone = keep going).
  std::atomic<uint8_t> abort{static_cast<uint8_t>(Cutoff::kNone)};
  const auto raiseCutoff = [&](Cutoff c) {
    uint8_t expect = static_cast<uint8_t>(Cutoff::kNone);
    abort.compare_exchange_strong(expect, static_cast<uint8_t>(c),
                                  std::memory_order_relaxed);
  };
  // Running totals the workers consult between barriers. `approxBytes`
  // tracks the sequential engine's accounting (each stored state is
  // counted in the passed store and again in the arena) closely enough
  // for the mid-level maxMemoryBytes check; barriers recompute exactly.
  std::atomic<size_t> exploredTotal{0};
  std::atomic<size_t> approxBytes{0};

  while (!frontier.empty()) {
    // Exact accounting + cutoff checks at the level barrier.
    res.stats.bytesStored = passed.bytes() + interner.bytes() + arenaBytes +
                            arena.size() * sizeof(Node) +
                            frontier.size() * sizeof(int64_t);
    res.stats.peakBytes = std::max(res.stats.peakBytes, res.stats.bytesStored);
    if (opts_.maxMemoryBytes != 0 &&
        res.stats.bytesStored > opts_.maxMemoryBytes) {
      return finish(Cutoff::kMemory, false);
    }
    if (opts_.maxStates != 0 && res.stats.statesExplored > opts_.maxStates) {
      return finish(Cutoff::kStates, false);
    }
    if (opts_.maxSeconds > 0.0 && elapsed() > opts_.maxSeconds) {
      return finish(Cutoff::kTime, false);
    }
    approxBytes.store(res.stats.bytesStored, std::memory_order_relaxed);

    const size_t fsize = frontier.size();
    const size_t chunk =
        std::clamp<size_t>(fsize / (nThreads * 8), size_t{1}, size_t{64});
    std::atomic<size_t> cursor{0};
    std::vector<WorkerOut> outs(nThreads);

    const auto work = [&](size_t tid) {
      WorkerOut& o = outs[tid];
      for (;;) {
        if (abort.load(std::memory_order_relaxed) !=
            static_cast<uint8_t>(Cutoff::kNone)) {
          return;
        }
        const size_t begin =
            cursor.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= fsize) return;
        const size_t end = std::min(fsize, begin + chunk);
        if (begin * nThreads / fsize != tid) ++o.steals;
        for (size_t pos = begin; pos < end; ++pos) {
          const int64_t idx = frontier[pos];
          const Node& cur = arena[static_cast<size_t>(idx)];
          const DiscreteState& curD = interner.get(cur.did);
          ++o.explored;
          const size_t total =
              exploredTotal.fetch_add(1, std::memory_order_relaxed) + 1;
          if (opts_.maxStates != 0 && total > opts_.maxStates) {
            raiseCutoff(Cutoff::kStates);
            return;
          }
          if (opts_.maxSeconds > 0.0 && (o.explored & 31) == 0 &&
              elapsed() > opts_.maxSeconds) {
            raiseCutoff(Cutoff::kTime);
            return;
          }
          std::vector<Successor> succs = gen_.successors(curD, cur.zone);
          if (goal.deadlock && succs.empty() &&
              goal.matches(sys_, curD, cur.zone)) {
            o.hits.push_back(GoalHit{pos, kDeadlockOrd,
                                     SymbolicState{{}, dbm::Dbm(1)},
                                     Transition{}});
            continue;
          }
          uint32_t ord = 0;
          for (Successor& suc : succs) {
            ++o.generated;
            if (!goal.deadlock && goal.matches(sys_, suc.state)) {
              o.hits.push_back(GoalHit{pos, ord, std::move(suc.state),
                                       std::move(suc.via)});
              ++ord;
              continue;
            }
            const uint32_t id = passed.testAndInsert(suc.state);
            if (id == StateInterner::kNoId) {
              dbm::ZonePool::recycle(std::move(suc.state.zone));
              ++ord;
              continue;
            }
            // Zone bytes are paid twice (store copy + arena copy); the
            // discrete part lives in the interner, counted exactly at
            // the barrier.
            const size_t nb =
                approxBytes.fetch_add(2 * suc.state.zone.memoryBytes() +
                                          sizeof(Node) + 64,
                                      std::memory_order_relaxed);
            if (opts_.maxMemoryBytes != 0 && nb > opts_.maxMemoryBytes) {
              raiseCutoff(Cutoff::kMemory);
            }
            o.nodes.push_back(PendingNode{
                pos, ord,
                Node{id, std::move(suc.state.zone), std::move(suc.via), idx}});
            ++ord;
          }
        }
      }
    };

    // Tiny frontiers are not worth the spawn cost; the chunked loop is
    // identical either way.
    if (fsize >= nThreads * 2 && nThreads > 1) {
      std::vector<std::thread> pool;
      pool.reserve(nThreads - 1);
      for (size_t tid = 1; tid < nThreads; ++tid) {
        pool.emplace_back(work, tid);
      }
      work(0);
      for (std::thread& t : pool) t.join();
    } else {
      work(0);
    }

    // ---- barrier: merge stats, resolve goals, grow the arena ----------
    std::vector<GoalHit> hits;
    size_t pending = 0;
    for (size_t tid = 0; tid < nThreads; ++tid) {
      WorkerOut& o = outs[tid];
      res.stats.perThreadExplored[tid] += o.explored;
      res.stats.statesExplored += o.explored;
      res.stats.statesGenerated += o.generated;
      res.stats.chunkSteals += o.steals;
      pending += o.nodes.size();
      for (GoalHit& h : o.hits) hits.push_back(std::move(h));
    }

    if (!hits.empty()) {
      // First goal wins, deterministically: the smallest (position,
      // ordinal) is the hit sequential expansion order reaches first.
      GoalHit& best = *std::min_element(
          hits.begin(), hits.end(), [](const GoalHit& a, const GoalHit& b) {
            return a.pos != b.pos ? a.pos < b.pos : a.ord < b.ord;
          });
      res.reachable = true;
      if (best.ord == kDeadlockOrd) {
        buildTrace(frontier[best.pos]);
      } else {
        arena.push_back(Node{interner.intern(best.state.d),
                             std::move(best.state.zone), std::move(best.via),
                             frontier[best.pos]});
        buildTrace(static_cast<int64_t>(arena.size()) - 1);
      }
      return finish(Cutoff::kNone, false);
    }

    const Cutoff aborted = static_cast<Cutoff>(
        abort.load(std::memory_order_relaxed));
    if (aborted != Cutoff::kNone) return finish(aborted, false);

    std::vector<PendingNode> merged;
    merged.reserve(pending);
    for (WorkerOut& o : outs) {
      for (PendingNode& pn : o.nodes) merged.push_back(std::move(pn));
    }
    std::sort(merged.begin(), merged.end(),
              [](const PendingNode& a, const PendingNode& b) {
                return a.pos != b.pos ? a.pos < b.pos : a.ord < b.ord;
              });
    frontier.clear();
    for (PendingNode& pn : merged) {
      arenaBytes += pn.node.zone.memoryBytes();
      arena.push_back(std::move(pn.node));
      frontier.push_back(static_cast<int64_t>(arena.size()) - 1);
    }
  }
  return finish(Cutoff::kNone, true);
}

}  // namespace engine
