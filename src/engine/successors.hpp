// Symbolic successor computation for a network of timed automata.
//
// States handed out are *normalized*: delayed (unless an urgent or
// committed location forbids it), invariant-constrained, optionally
// inactive-clock-reduced, and extrapolated. The reachability engine
// only ever sees normalized states.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "engine/options.hpp"
#include "engine/state.hpp"
#include "ta/bounds_analysis.hpp"
#include "ta/system.hpp"

namespace engine {

struct Successor {
  SymbolicState state;
  Transition via;
};

class SuccessorGenerator {
 public:
  SuccessorGenerator(const ta::System& sys, const Options& opts);

  /// The normalized initial state (all automata in their initial
  /// locations, variables at declared initial values, clocks zero then
  /// delayed as permitted).
  [[nodiscard]] SymbolicState initial() const;

  /// All normalized symbolic successors of (d, zone). The engines hold
  /// interned discrete states and zones separately, so this is the
  /// primary entry point; the SymbolicState overload forwards.
  [[nodiscard]] std::vector<Successor> successors(
      const DiscreteState& d, const dbm::Dbm& zone) const;

  [[nodiscard]] std::vector<Successor> successors(
      const SymbolicState& s) const {
    return successors(s.d, s.zone);
  }

  /// Human-readable label of a transition, e.g. "b2left!/b2left?" —
  /// joins the labels of the participating edges.
  [[nodiscard]] std::string label(const Transition& t) const;

  /// Register the clock constraints a reachability goal observes:
  /// the named clocks are excluded from the active-clock reduction and
  /// their constants folded into every extrapolation's bounds (both L
  /// and U, at every location) — otherwise either abstraction could
  /// satisfy goal constraints spuriously.
  void observeGoalConstraints(const std::vector<ta::ClockConstraint>& ccs) {
    for (const ta::ClockConstraint& cc : ccs) {
      for (ta::ClockId c : {cc.i, cc.j}) {
        if (c > 0) {
          protected_[static_cast<size_t>(c)] = true;
          const dbm::value_t v = std::abs(dbm::boundValue(cc.bound));
          auto& m = maxBounds_[static_cast<size_t>(c)];
          m = std::max(m, v);
          auto& l = baseLower_[static_cast<size_t>(c)];
          l = std::max(l, v);
          auto& u = baseUpper_[static_cast<size_t>(c)];
          u = std::max(u, v);
        }
      }
    }
  }

  /// Exclude one clock from active-clock reduction and from every
  /// extrapolation operator outright, by folding the largest encodable
  /// constant into its bounds. The best-first engine protects its cost
  /// clock this way: widening (or freeing) the cost clock would shrink
  /// the zone's cost infimum and the reported "optimal" cost with it.
  void protectClock(ta::ClockId c) {
    assert(c > 0 && static_cast<size_t>(c) < protected_.size());
    protected_[static_cast<size_t>(c)] = true;
    maxBounds_[static_cast<size_t>(c)] = dbm::kMaxValue;
    baseLower_[static_cast<size_t>(c)] = dbm::kMaxValue;
    baseUpper_[static_cast<size_t>(c)] = dbm::kMaxValue;
  }

  [[nodiscard]] const ta::System& system() const noexcept { return sys_; }

  /// Cumulative over every state this generator normalized (all
  /// threads, and — under portfolio mode — all workers): the run()
  /// entry point copies them into Stats at the end of a search.
  [[nodiscard]] size_t extrapolationCoarsenings() const noexcept {
    return coarsenings_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] size_t inactiveClocksFreed() const noexcept {
    return clocksFreed_.load(std::memory_order_relaxed);
  }

 private:
  /// Delay + re-apply invariants + reduce + extrapolate. Returns false
  /// if the state's zone is empty.
  bool normalize(SymbolicState& s) const;

  /// Conjoin the invariants of every current location. False if empty.
  bool applyInvariants(SymbolicState& s) const;

  /// Attempt one discrete transition; appends to `out` on success.
  void tryFire(const DiscreteState& d, const dbm::Dbm& zone,
               const std::vector<TransitionPart>& parts,
               std::vector<Successor>& out) const;

  /// Combine the per-automaton LU rows of the current location vector
  /// (pointwise max over processes, seeded with the goal-protected
  /// base bounds) into dense per-clock arrays.
  void collectLU(const DiscreteState& d, std::vector<dbm::value_t>& lower,
                 std::vector<dbm::value_t>& upper) const;

  const ta::System& sys_;
  const Options& opts_;
  std::vector<bool> protected_;
  std::vector<dbm::value_t> maxBounds_;
  /// Static per-location LU tables (kLocationM / kLocationLUPlus only).
  ta::LUTable lu_;
  /// Location-independent floor of the combined bounds: -1 everywhere
  /// until observeGoalConstraints folds in the goal's constants.
  std::vector<dbm::value_t> baseLower_;
  std::vector<dbm::value_t> baseUpper_;
  /// Abstraction observability counters (Stats.extrapolationCoarsenings
  /// / Stats.inactiveClocksFreed). Mutable relaxed atomics: successors()
  /// is const and runs concurrently on the parallel engines.
  mutable std::atomic<size_t> coarsenings_{0};
  mutable std::atomic<size_t> clocksFreed_{0};
};

}  // namespace engine
