// Symbolic successor computation for a network of timed automata.
//
// States handed out are *normalized*: delayed (unless an urgent or
// committed location forbids it), invariant-constrained, optionally
// inactive-clock-reduced, and extrapolated. The reachability engine
// only ever sees normalized states.
#pragma once

#include <string>
#include <vector>

#include "engine/options.hpp"
#include "engine/state.hpp"
#include "ta/system.hpp"

namespace engine {

struct Successor {
  SymbolicState state;
  Transition via;
};

class SuccessorGenerator {
 public:
  SuccessorGenerator(const ta::System& sys, const Options& opts);

  /// The normalized initial state (all automata in their initial
  /// locations, variables at declared initial values, clocks zero then
  /// delayed as permitted).
  [[nodiscard]] SymbolicState initial() const;

  /// All normalized symbolic successors of `s`.
  [[nodiscard]] std::vector<Successor> successors(
      const SymbolicState& s) const;

  /// Human-readable label of a transition, e.g. "b2left!/b2left?" —
  /// joins the labels of the participating edges.
  [[nodiscard]] std::string label(const Transition& t) const;

  /// Register the clock constraints a reachability goal observes:
  /// the named clocks are excluded from the active-clock reduction and
  /// their constants folded into the extrapolation bounds — otherwise
  /// either abstraction could satisfy goal constraints spuriously.
  void observeGoalConstraints(const std::vector<ta::ClockConstraint>& ccs) {
    for (const ta::ClockConstraint& cc : ccs) {
      for (ta::ClockId c : {cc.i, cc.j}) {
        if (c > 0) {
          protected_[static_cast<size_t>(c)] = true;
          auto& m = maxBounds_[static_cast<size_t>(c)];
          m = std::max(m, std::abs(dbm::boundValue(cc.bound)));
        }
      }
    }
  }

  [[nodiscard]] const ta::System& system() const noexcept { return sys_; }

 private:
  /// Delay + re-apply invariants + reduce + extrapolate. Returns false
  /// if the state's zone is empty.
  bool normalize(SymbolicState& s) const;

  /// Conjoin the invariants of every current location. False if empty.
  bool applyInvariants(SymbolicState& s) const;

  /// Attempt one discrete transition; appends to `out` on success.
  void tryFire(const SymbolicState& s,
               const std::vector<TransitionPart>& parts,
               std::vector<Successor>& out) const;

  const ta::System& sys_;
  const Options& opts_;
  std::vector<bool> protected_;
  std::vector<dbm::value_t> maxBounds_;
};

}  // namespace engine
