#include "engine/opt_bridge.hpp"

#include <cstdint>

namespace engine::opt_bridge {

namespace {

bool conjoinInvariants(const ta::System& sys,
                       const std::vector<ta::LocId>& locs, dbm::Dbm& z) {
  for (size_t p = 0; p < locs.size(); ++p) {
    const ta::Location& l =
        sys.automaton(static_cast<ta::ProcId>(p)).location(locs[p]);
    for (const ta::ClockConstraint& cc : l.invariant) {
      if (!z.constrain(static_cast<uint32_t>(cc.i),
                       static_cast<uint32_t>(cc.j), cc.bound)) {
        return false;
      }
    }
  }
  return true;
}

bool locsForbidDelay(const ta::System& sys,
                     const std::vector<ta::LocId>& locs) {
  for (size_t p = 0; p < locs.size(); ++p) {
    const ta::Location& l =
        sys.automaton(static_cast<ta::ProcId>(p)).location(locs[p]);
    if (l.urgent || l.committed) return true;
  }
  return false;
}

}  // namespace

ta::OptimizedModel optimizeForGoal(
    const ta::System& sys, const Goal& goal, int optLevel, bool allowCompose,
    const std::vector<std::pair<ta::ProcId, ta::LocId>>&
        extraPinnedLocations) {
  // Lifted mid-run starts (System::setClockInit) are exempt from the
  // pass pipeline: dead-location elimination and clock unification
  // reason from the zero-origin initial state, which no longer exists.
  // Returning the unchanged model keeps every engine on the original
  // system, exactly as at optLevel 0.
  if (sys.hasNonzeroClockInit()) return {};
  ta::PassConfig cfg = ta::PassConfig::forLevel(optLevel);
  if (!allowCompose) cfg.compose = false;

  ta::OptPins pins;
  pins.locations = goal.locations;
  pins.locations.insert(pins.locations.end(), extraPinnedLocations.begin(),
                        extraPinnedLocations.end());
  pins.clockConstraints = goal.clockConstraints;
  pins.deadlockGoal = goal.deadlock;
  if (goal.predicate != ta::kNoExpr) {
    std::vector<uint8_t> read(sys.numVars(), 0);
    ta::collectExprReads(sys.pool(), goal.predicate, read);
    for (ta::VarId v = 0; v < static_cast<ta::VarId>(read.size()); ++v) {
      if (read[static_cast<size_t>(v)] != 0) pins.vars.push_back(v);
    }
  }
  return ta::optimizeModel(sys, pins, cfg);
}

Goal mapGoal(const ta::System& orig, const Goal& goal,
             ta::OptimizedModel& model) {
  Goal g;
  g.deadlock = goal.deadlock;
  g.locations.reserve(goal.locations.size());
  for (const auto& [p, l] : goal.locations) {
    g.locations.push_back({model.mapProc(p), model.mapLoc(p, l)});
  }
  g.predicate = model.mapExpr(orig.pool(), goal.predicate);
  g.clockConstraints.reserve(goal.clockConstraints.size());
  for (const ta::ClockConstraint& cc : goal.clockConstraints) {
    g.clockConstraints.push_back(model.mapConstraint(cc));
  }
  return g;
}

SymbolicTrace backMapTrace(const ta::System& orig,
                           const ta::OptimizedModel& model,
                           const SymbolicTrace& opt) {
  SymbolicTrace out;
  if (opt.steps.empty()) return out;
  const uint32_t dim = orig.dbmDimension();

  DiscreteState cur;
  cur.vars = orig.initialVars();
  cur.locs.reserve(orig.numAutomata());
  for (size_t p = 0; p < orig.numAutomata(); ++p) {
    cur.locs.push_back(orig.automaton(static_cast<ta::ProcId>(p)).initial());
  }
  dbm::Dbm prev = dbm::Dbm::zero(dim);
  (void)conjoinInvariants(orig, cur.locs, prev);
  out.steps.push_back(TraceStep{Transition{}, SymbolicState{cur, prev}});

  for (size_t k = 1; k < opt.steps.size(); ++k) {
    // Expand each optimized part through its origins: a fused private
    // handshake becomes its original sender + receiver pair.
    Transition via;
    for (const TransitionPart& part : opt.steps[k].via.parts) {
      for (const ta::IrOrigin& o : model.originOf(part.proc, part.edge)) {
        via.parts.push_back({o.proc, o.edge});
      }
    }

    // Exact forward zone, in the style of the concretizer's forward
    // pass: delay (unless forbidden) under the previous invariants,
    // the fired guards, then resets and the target invariants.
    dbm::Dbm z = prev;
    if (!locsForbidDelay(orig, cur.locs)) {
      z.up();
      (void)conjoinInvariants(orig, cur.locs, z);
    }
    for (const TransitionPart& part : via.parts) {
      const ta::Edge& e =
          orig.automaton(part.proc).edges()[static_cast<size_t>(part.edge)];
      for (const ta::ClockConstraint& cc : e.clockGuard) {
        (void)z.constrain(static_cast<uint32_t>(cc.i),
                          static_cast<uint32_t>(cc.j), cc.bound);
      }
    }
    // Effects in the engine's (and validator's) order — per part:
    // assignments observing earlier ones, resets, location move.
    for (const TransitionPart& part : via.parts) {
      const ta::Edge& e =
          orig.automaton(part.proc).edges()[static_cast<size_t>(part.edge)];
      for (const ta::Assign& as : e.assigns) {
        const int64_t rhs = orig.pool().eval(as.rhs, cur.vars);
        int64_t idx = 0;
        if (as.index != ta::kNoExpr) {
          idx = orig.pool().eval(as.index, cur.vars);
          if (idx < 0 || idx >= as.arraySize) continue;
        }
        cur.vars[static_cast<size_t>(as.base + idx)] =
            static_cast<int32_t>(rhs);
      }
      for (const ta::ClockReset& r : e.resets) {
        z.reset(static_cast<uint32_t>(r.clock), r.value);
      }
      cur.locs[static_cast<size_t>(part.proc)] = e.dst;
    }
    (void)conjoinInvariants(orig, cur.locs, z);
    out.steps.push_back(TraceStep{std::move(via), SymbolicState{cur, z}});
    prev = std::move(z);
  }
  return out;
}

void mergePassStats(Stats& st, const ta::PassStats& ps) {
  st.foldedExprs += ps.foldedExprs;
  st.removedLocations += ps.removedLocations;
  st.removedEdges += ps.removedEdges;
  st.simplifiedConstraints += ps.simplifiedConstraints;
  st.elidedVars += ps.elidedVars;
  st.unifiedClocks += ps.unifiedClocks;
  st.composedProcesses += ps.composedProcesses;
  st.optSeconds += ps.seconds;
}

}  // namespace engine::opt_bridge
