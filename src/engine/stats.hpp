// Search statistics — the time/space numbers Table 1 reports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/options.hpp"

namespace engine {

struct Stats {
  size_t statesExplored = 0;   ///< states popped and expanded
  size_t statesGenerated = 0;  ///< successors constructed
  size_t statesStored = 0;     ///< currently held in passed/waiting
  size_t bytesStored = 0;      ///< current bytes in passed/waiting/stack
  /// Zones held by the passed store at the end of the run (after
  /// inclusion subsumption) — the number the abstraction-coarseness
  /// benchmarks compare. Equals statesStored for the full-zone store.
  size_t storedZones = 0;
  /// normalize() calls in which the extrapolation operator actually
  /// widened the zone (a proxy for how much work the abstraction does).
  size_t extrapolationCoarsenings = 0;
  /// Dbm::freeClock applications by the active-clock reduction (one
  /// per inactive clock per normalized state).
  size_t inactiveClocksFreed = 0;
  size_t peakBytes = 0;        ///< high-water mark of bytesStored
  size_t peakStackDepth = 0;   ///< DFS only; parallel DFS reports the
                               ///< maximum over the per-worker peaks
  double seconds = 0.0;
  Cutoff cutoff = Cutoff::kNone;

  // -- Storage engine (interner + flat passed store) --------------------
  size_t statesInterned = 0;  ///< entries in the discrete-state arena
                              ///< (distinct states under internStates)
  size_t internHits = 0;      ///< intern() calls answered by an existing
                              ///< entry — d-part copies avoided
  size_t internBytes = 0;     ///< bytes held by the interner arena
  size_t storeLookups = 0;    ///< covered() calls on the passed store
  size_t storeProbeSteps = 0;  ///< open-addressing probe steps across all
                               ///< lookups/inserts (mean = steps/lookups)
  size_t zonesMerged = 0;     ///< stored zones absorbed by an exact
                              ///< convex-union merge (mergeZones)
  size_t storeBytes = 0;      ///< bytes held by the passed store proper
                              ///< (excludes interner and search stack)

  // -- Best-first engine only (zero / empty elsewhere) ------------------
  size_t reopenings = 0;  ///< insertions that displaced an already-
                          ///< expanded dominated entry (inconsistent-h
                          ///< rework)
  /// Monotonically improving incumbent costs in discovery order; the
  /// last entry is the optimum when the run proved it.
  std::vector<int64_t> incumbentCosts;

  // -- Pre-exploration optimizer (ta/ir.hpp; zero at optLevel 0 or when
  //    the pipeline found nothing to do) --------------------------------
  size_t foldedExprs = 0;            ///< constant-folding rewrites
  size_t removedLocations = 0;       ///< unreachable locations eliminated
  size_t removedEdges = 0;           ///< never-enabled/dangling edges cut
  size_t simplifiedConstraints = 0;  ///< invariant-implied guard conjuncts
  size_t elidedVars = 0;             ///< variables whose stores were elided
  size_t unifiedClocks = 0;          ///< clocks merged into a representative
  size_t composedProcesses = 0;      ///< automata pairs fused into products
  double optSeconds = 0.0;           ///< wall time spent in the optimizer

  // -- DBM kernel dispatch (process-wide deltas around the run) ---------
  size_t simdKernelOps = 0;    ///< DBM-level ops served by a vector path
  size_t scalarKernelOps = 0;  ///< ops served by the scalar fallback

  // -- Parallel engines only (empty / zero on the sequential ones) ------
  std::vector<size_t> perThreadExplored;  ///< states expanded per worker
  size_t lockContention = 0;  ///< shard-lock try_lock failures
  size_t chunkSteals = 0;     ///< BFS: frontier chunks taken outside the
                              ///< worker's fair share of the level
  size_t frameSteals = 0;     ///< work-stealing DFS: pending frames taken
                              ///< from another worker's stack
  size_t cancelledWorkers = 0;  ///< portfolio: workers cancelled after a
                                ///< winner reached a conclusive verdict

  [[nodiscard]] double peakMegabytes() const noexcept {
    return static_cast<double>(peakBytes) / (1024.0 * 1024.0);
  }
};

}  // namespace engine
