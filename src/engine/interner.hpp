// Hash-consing arena for discrete states.
//
// Every distinct (location vector, variable valuation) pair is stored
// exactly once and identified by a dense 32-bit id; the engines'
// waiting deques, DFS frames and trace parents carry the id instead of
// vector copies, and the passed store keys its flat table by it.
//
// Thread-safety: `intern` takes one of 16 shard mutexes (the shard is
// picked from the state hash, so unrelated states never contend);
// `get`/`hashOf` are lock-free. Lock-free reads are sound because an id
// only reaches another thread through a synchronizing channel — the
// parallel BFS level barrier (thread join), a work-stealing stack
// mutex, or the portfolio goal mutex — each of which orders the
// interning writes before the read; the chunk-pointer acquire load
// additionally orders the chunk allocation itself for readers (stats
// scans) that hold no such channel.
//
// Storage is chunked: each shard owns a fixed-size array of atomic
// chunk pointers and allocates 4096-entry chunks on demand, so entry
// addresses are stable for the lifetime of the interner and `get`
// never races with a growing spine.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/state.hpp"

namespace engine {

class StateInterner {
 public:
  /// Sentinel for "no state" — e.g. a covered testAndInsert.
  static constexpr uint32_t kNoId = 0xffffffffu;

  /// With `dedup` (Options.internStates), equal states share one entry
  /// and one id. Without it every intern() appends a fresh copy — the
  /// pre-interning storage profile, kept for the ablation configs; ids
  /// then name insertion events rather than values, and the passed
  /// store falls back to comparing key values.
  explicit StateInterner(bool dedup = true) : dedup_(dedup) {}

  StateInterner(const StateInterner&) = delete;
  StateInterner& operator=(const StateInterner&) = delete;

  ~StateInterner() {
    for (Shard& sh : shards_) {
      for (auto& c : sh.chunks) delete c.load(std::memory_order_relaxed);
    }
  }

  [[nodiscard]] uint32_t intern(const DiscreteState& d) {
    return intern(d, d.hash());
  }

  /// Intern with a precomputed DiscreteState::hash() (the passed store
  /// already has it in hand).
  [[nodiscard]] uint32_t intern(const DiscreteState& d, uint64_t h) {
    Shard& sh = shards_[h & kShardMask];
    std::lock_guard<std::mutex> lk(sh.m);
    if (dedup_ && !sh.table.empty()) {
      const size_t mask = sh.table.size() - 1;
      for (size_t pos = (h >> kShardBits) & mask;;
           pos = (pos + 1) & mask) {
        const uint32_t slot = sh.table[pos];
        if (slot == 0) break;
        const Item& it = itemAt(sh, slot - 1);
        if (it.hash == h && it.d == d) {
          hits_.fetch_add(1, std::memory_order_relaxed);
          return makeId(slot - 1, h);
        }
      }
    }
    return append(sh, d, h);
  }

  /// The interned state. Lock-free; see the header comment for why.
  [[nodiscard]] const DiscreteState& get(uint32_t id) const noexcept {
    return item(id).d;
  }

  /// The state's DiscreteState::hash(), memoized at intern time.
  [[nodiscard]] uint64_t hashOf(uint32_t id) const noexcept {
    return item(id).hash;
  }

  [[nodiscard]] bool dedup() const noexcept { return dedup_; }

  /// Entries in the arena (distinct states when deduplicating).
  [[nodiscard]] size_t size() const noexcept {
    size_t n = 0;
    for (const Shard& sh : shards_) {
      n += sh.count.load(std::memory_order_acquire);
    }
    return n;
  }

  /// intern() calls answered from an existing entry.
  [[nodiscard]] size_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] size_t bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr uint32_t kShardBits = 4;
  static constexpr uint32_t kShardMask = (1u << kShardBits) - 1;
  static constexpr uint32_t kChunkShift = 12;
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;  // entries/chunk
  static constexpr uint32_t kMaxChunks = 1024;  // 4M entries per shard

  struct Item {
    DiscreteState d;
    uint64_t hash = 0;
  };
  using Chunk = std::array<Item, kChunkSize>;

  struct alignas(64) Shard {
    std::mutex m;
    std::vector<uint32_t> table;  ///< local index + 1; 0 = empty
    std::atomic<uint32_t> count{0};
    std::array<std::atomic<Chunk*>, kMaxChunks> chunks{};
  };

  [[nodiscard]] static uint32_t makeId(uint32_t localIdx,
                                       uint64_t h) noexcept {
    return (localIdx << kShardBits) | static_cast<uint32_t>(h & kShardMask);
  }

  [[nodiscard]] static const Item& itemAt(const Shard& sh,
                                          uint32_t localIdx) noexcept {
    const Chunk* c =
        sh.chunks[localIdx >> kChunkShift].load(std::memory_order_acquire);
    return (*c)[localIdx & (kChunkSize - 1)];
  }

  [[nodiscard]] const Item& item(uint32_t id) const noexcept {
    assert(id != kNoId);
    return itemAt(shards_[id & kShardMask], id >> kShardBits);
  }

  uint32_t append(Shard& sh, const DiscreteState& d, uint64_t h) {
    const uint32_t idx = sh.count.load(std::memory_order_relaxed);
    assert(idx < kMaxChunks * kChunkSize && "interner arena exhausted");
    auto& slot = sh.chunks[idx >> kChunkShift];
    Chunk* c = slot.load(std::memory_order_relaxed);
    if (c == nullptr) {
      c = new Chunk();
      slot.store(c, std::memory_order_release);
      bytes_.fetch_add(sizeof(Chunk), std::memory_order_relaxed);
    }
    Item& it = (*c)[idx & (kChunkSize - 1)];
    it.d = d;
    it.hash = h;
    bytes_.fetch_add(d.memoryBytes(), std::memory_order_relaxed);
    sh.count.store(idx + 1, std::memory_order_release);
    if (dedup_) {
      if ((idx + 1) * 8 >= sh.table.size() * 7) {
        grow(sh);  // the rehash picks up the entry appended above
      } else {
        const size_t mask = sh.table.size() - 1;
        size_t pos = (h >> kShardBits) & mask;
        while (sh.table[pos] != 0) pos = (pos + 1) & mask;
        sh.table[pos] = idx + 1;
      }
    }
    return makeId(idx, h);
  }

  void grow(Shard& sh) {
    const size_t old = sh.table.size();
    const size_t next = old == 0 ? 256 : old * 2;
    sh.table.assign(next, 0);
    bytes_.fetch_add((next - old) * sizeof(uint32_t),
                     std::memory_order_relaxed);
    const size_t mask = next - 1;
    const uint32_t n = sh.count.load(std::memory_order_relaxed);
    for (uint32_t k = 0; k < n; ++k) {
      size_t pos = (itemAt(sh, k).hash >> kShardBits) & mask;
      while (sh.table[pos] != 0) pos = (pos + 1) & mask;
      sh.table[pos] = k + 1;
    }
  }

  bool dedup_;
  std::array<Shard, kShardMask + 1> shards_;
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> bytes_{0};
};

}  // namespace engine
