// Programmatic simulator for timed-automata networks — the counterpart
// of UPPAAL's simulator pane ("validation (via graphical simulation)"),
// usable from tests, debuggers and REPL-style tools.
//
// The simulator walks *concrete* states: pick one of the currently
// enabled transitions (optionally after a delay), inspect locations,
// variables and clocks at every step, rewind to any earlier step.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/state.hpp"
#include "engine/successors.hpp"
#include "ta/system.hpp"

namespace engine {

/// One transition currently available from the simulator's state.
struct EnabledTransition {
  Transition via;
  std::string label;
  /// Smallest additional delay after which the transition can fire.
  int64_t earliestDelay = 0;
  /// Largest such delay, or nullopt if unbounded.
  std::optional<int64_t> latestDelay;
};

class Simulator {
 public:
  explicit Simulator(const ta::System& sys);

  // -- Inspection -------------------------------------------------------

  [[nodiscard]] const std::vector<ta::LocId>& locations() const {
    return locs_;
  }
  [[nodiscard]] const std::vector<int32_t>& variables() const {
    return vars_;
  }
  [[nodiscard]] const std::vector<int64_t>& clocks() const { return clocks_; }
  [[nodiscard]] int64_t time() const { return now_; }
  [[nodiscard]] size_t steps() const { return history_.size(); }

  /// Human-readable state summary ("P0.l1 P1.idle | v=3 | x=2 y=0 @t=5").
  [[nodiscard]] std::string describe() const;

  /// Transitions fireable from the current state after some integer
  /// delay permitted by the invariants.
  [[nodiscard]] std::vector<EnabledTransition> enabled() const;

  /// Largest delay the invariants allow from here (nullopt: unbounded).
  [[nodiscard]] std::optional<int64_t> maxDelay() const;

  // -- Stepping -----------------------------------------------------------

  /// Let `delay` time units pass. False (no change) if an invariant or
  /// urgency forbids it.
  bool delay(int64_t delay);

  /// Fire the i-th transition of `enabled()` at its earliest delay.
  /// False if the index is stale or out of range.
  bool fire(size_t index);

  /// Fire by label (first match). False if no enabled transition has it.
  bool fireLabeled(const std::string& label);

  /// Undo the last step (delay or fire). False at the initial state.
  bool undo();

  /// Back to the initial state.
  void reset();

 private:
  struct Snapshot {
    std::vector<ta::LocId> locs;
    std::vector<int32_t> vars;
    std::vector<int64_t> clocks;
    int64_t now;
  };

  [[nodiscard]] Snapshot snapshot() const {
    return {locs_, vars_, clocks_, now_};
  }
  void restore(const Snapshot& s);
  [[nodiscard]] bool delayAllowed(int64_t d) const;
  void applyParts(const Transition& via);

  const ta::System& sys_;
  Options opts_;
  SuccessorGenerator gen_;
  std::vector<ta::LocId> locs_;
  std::vector<int32_t> vars_;
  std::vector<int64_t> clocks_;
  int64_t now_ = 0;
  std::vector<Snapshot> history_;
};

}  // namespace engine
