// The reachability checker: answers "is a state satisfying the goal
// reachable?" and, if so, produces the symbolic trace the paper turns
// into a schedule.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/options.hpp"
#include "engine/state.hpp"
#include "engine/stats.hpp"
#include "engine/successors.hpp"
#include "ta/system.hpp"

namespace engine {

/// A reachability goal: all listed (process, location) pairs must hold,
/// the integer predicate must be true, and the zone must intersect the
/// clock constraints.  With `deadlock`, the goal instead matches states
/// with no discrete successor at all (after arbitrary delay) that still
/// satisfy the other conditions — e.g. the batch plant's timelocks at
/// the strictly-continuous caster.
struct Goal {
  std::vector<std::pair<ta::ProcId, ta::LocId>> locations;
  ta::ExprRef predicate = ta::kNoExpr;
  std::vector<ta::ClockConstraint> clockConstraints;
  bool deadlock = false;

  [[nodiscard]] bool matches(const ta::System& sys, const DiscreteState& d,
                             const dbm::Dbm& zone) const;
  [[nodiscard]] bool matches(const ta::System& sys,
                             const SymbolicState& s) const {
    return matches(sys, s.d, s.zone);
  }
};

/// One step of a symbolic trace: the transition fired (empty parts for
/// the initial state) and the normalized symbolic state reached.
struct TraceStep {
  Transition via;
  SymbolicState state;
};

struct SymbolicTrace {
  std::vector<TraceStep> steps;
};

struct Result {
  bool reachable = false;
  /// True when the full (pruned) state space was exhausted without
  /// finding the goal. Under bit-state hashing a negative answer is
  /// NOT conclusive (hash collisions prune real states).
  bool exhausted = false;
  Stats stats;
  SymbolicTrace trace;  ///< meaningful iff reachable
};

class StateInterner;

class Reachability {
 public:
  Reachability(const ta::System& sys, Options opts);
  ~Reachability();

  [[nodiscard]] Result run(const Goal& goal);

 private:
  [[nodiscard]] Result runBfs(const Goal& goal);
  [[nodiscard]] Result runDfs(const Goal& goal);
  /// The sequential depth-first core behind runDfs and the portfolio
  /// workers: explores under `localOpts` (order / seed / cut-offs may
  /// differ from opts_) and, when `cancel` is non-null, aborts with
  /// Cutoff::kCancelled as soon as it reads true.
  [[nodiscard]] Result dfsCore(const Goal& goal, const Options& localOpts,
                               const std::atomic<bool>* cancel);
  /// Level-synchronous multi-threaded BFS (opts.threads > 1); defined
  /// in parallel_bfs.cpp. Verdict-equivalent to runBfs.
  [[nodiscard]] Result runParallelBfs(const Goal& goal);
  /// Work-stealing multi-threaded DFS (depth-first orders with
  /// opts.threads > 1); defined in parallel_dfs.cpp. Verdict-equivalent
  /// to runDfs (not trace-deterministic); positive verdicts are checked
  /// through the trace validator before being returned.
  [[nodiscard]] Result runParallelDfs(const Goal& goal);
  /// Portfolio of independent seeded DFS workers racing to the first
  /// conclusive verdict (opts.portfolio); defined in parallel_dfs.cpp.
  [[nodiscard]] Result runPortfolioDfs(const Goal& goal);

  const ta::System& sys_;
  Options opts_;
  SuccessorGenerator gen_;
  /// Hash-consing arena for discrete states, created per run() and
  /// shared by every engine and portfolio worker of that run. The
  /// engines' nodes/frames and the passed stores carry its 32-bit ids
  /// instead of DiscreteState copies. With opts_.internStates off the
  /// arena is append-only (one entry per stored state).
  std::unique_ptr<StateInterner> interner_;
};

}  // namespace engine
