// Concretization of symbolic traces.
//
// UPPAAL's diagnostic trace is symbolic (a sequence of zones); to
// synthesize a control program the paper needs concrete delays ("the
// produced trace should be as precise and detailed as possible,
// especially with respect to timing information").
//
// We use the standard forward/backward scheme: a forward pass re-derives
// the *exact* (un-extrapolated, un-reduced) post-transition zone of every
// step, then a backward pass picks one concrete clock valuation per step
// — starting from an earliest point of the final zone and choosing, at
// each step, firing values for reset clocks and the smallest feasible
// delay.  Every valuation lies in an exactly-computed zone, so the
// resulting timed trace satisfies all guards and invariants by
// construction (and `validate` re-checks it independently).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/reachability.hpp"
#include "ta/system.hpp"

namespace engine {

struct ConcreteStep {
  /// Time spent in the predecessor state before firing (0 for the
  /// initial pseudo-step).
  int64_t delay = 0;
  /// Absolute model time after firing.
  int64_t timestamp = 0;
  Transition via;
  DiscreteState d;
  /// Clock valuation after firing (index 0 is the reference clock, 0).
  std::vector<int64_t> clocks;
};

struct ConcreteTrace {
  std::vector<ConcreteStep> steps;

  [[nodiscard]] int64_t makespan() const {
    return steps.empty() ? 0 : steps.back().timestamp;
  }
};

/// Replay a symbolic trace into a concrete timed trace. On failure
/// (greedy policy infeasible or — indicating an engine bug — a
/// constraint violated) returns nullopt and fills *error.
[[nodiscard]] std::optional<ConcreteTrace> concretize(
    const ta::System& sys, const SymbolicTrace& trace,
    std::string* error = nullptr);

/// Independently validate a concrete trace against the model: checks
/// enabledness of every fired edge (integer + clock guards), invariant
/// satisfaction across delays, and synchronization well-formedness.
/// This is the "schedule is valid for the original model" check.
[[nodiscard]] bool validate(const ta::System& sys, const ConcreteTrace& trace,
                            std::string* error = nullptr);

/// Render a trace in UPPAAL-diagnostic style for humans.
[[nodiscard]] std::string toString(const ta::System& sys,
                                   const ConcreteTrace& trace);

}  // namespace engine
