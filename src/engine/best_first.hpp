// Cost-optimal best-first search over priced zones.
//
// A* on the priced symbolic graph: states are (discrete state, zone,
// penalty offset) with the plant's never-reset makespan clock as the
// cost dimension (dbm::PricedDbm semantics). Ordering key is
// f = g + h, where g is the zone's integer-adjusted cost infimum plus
// the accumulated soft-guide penalties and h is the static admissible
// remaining-time bound from ta::analyzeMinRemainingTime. One run
// replaces the paper's guided binary search — N reachability sweeps
// collapse into a single expansion front that closes in on the optimum
// from both sides (f from below, the anytime incumbent from above).
//
// Soundness notes, in order of subtlety:
//  - The cost clock is protected from extrapolation and active-clock
//    reduction (SuccessorGenerator::protectClock): widening it would
//    lower cost infima and report a fake optimum.
//  - An unextrapolated clock makes the zone graph infinite in
//    principle; the incumbent bound restores finiteness — every
//    generated zone is constrained to cost <= incumbent - 1, so
//    bootstrapping an initial incumbent (e.g. from one first-found DFS
//    run) both prunes and guarantees termination. Without any
//    incumbent the run can diverge exactly like UPPAAL without an
//    upper-bound guess; the caller's cut-offs still apply.
//  - h is admissible but not necessarily consistent, so a cheaper path
//    to an already-expanded region can surface late (a "reopening");
//    optimality therefore rests on the f >= incumbent termination
//    test, not on expansion order alone.
//  - Inclusion pruning is cost-aware domination: a stored entry prunes
//    a new one only if its zone contains it AND its penalty offset is
//    no larger (pointwise cheaper everywhere, dbm::PricedDbm's
//    dominates()).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "engine/options.hpp"
#include "engine/reachability.hpp"
#include "ta/bounds_analysis.hpp"
#include "ta/system.hpp"

namespace engine {

struct BestFirstResult {
  /// A goal state was reached; `cost` and `trace` are valid.
  bool reachable = false;
  /// The optimum was proven (the open queue drained or every remaining
  /// f reached the incumbent). False on a cut-off: `cost` is then only
  /// the best incumbent found so far.
  bool optimal = false;
  /// Minimal makespan plus soft-guide penalties (-1 if unreachable).
  int64_t cost = -1;
  Stats stats;
  SymbolicTrace trace;
};

class BestFirst {
 public:
  /// `costClock` is the system's never-reset cost clock (the plant's
  /// makespan clock). `opts.softGuides` weight the transitions;
  /// `opts.order` is ignored (the queue is f-ordered).
  BestFirst(const ta::System& sys, Options opts, ta::ClockId costClock);

  /// Per-process heuristic target locations. Defaults to the goal's
  /// own location constraints; callers with domain knowledge (the
  /// plant's per-batch "done" locations) widen this so h is nonzero
  /// for processes the goal only constrains indirectly.
  void setHeuristicTargets(std::vector<std::vector<ta::LocId>> targets);

  /// Bootstrap upper bound for a cost already known to be achievable
  /// (e.g. the makespan of a first-found DFS schedule). Pruning is
  /// exclusive — the search only looks for strictly cheaper schedules,
  /// so run() reporting `!reachable && optimal` proves the bound itself
  /// is the optimum. Callers keep the bootstrap trace around for that
  /// case. Only sound when the bound is an upper bound on the total
  /// cost: with soft-guide penalties a plain makespan is not.
  void setInitialIncumbent(int64_t bound) { incumbent0_ = bound; }

  /// Anytime stream: invoked on every strictly improving incumbent
  /// with its cost and trace, before the search continues.
  void onIncumbent(std::function<void(int64_t, const SymbolicTrace&)> cb) {
    incumbentCb_ = std::move(cb);
  }

  [[nodiscard]] BestFirstResult run(const Goal& goal);

 private:
  const ta::System& sys_;
  Options opts_;
  ta::ClockId costClock_;
  std::vector<std::vector<ta::LocId>> targets_;
  bool targetsSet_ = false;
  int64_t incumbent0_ = -1;
  std::function<void(int64_t, const SymbolicTrace&)> incumbentCb_;
};

}  // namespace engine
