#include "engine/best_first.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <queue>
#include <unordered_map>

#include "dbm/priced.hpp"
#include "dbm/simd.hpp"
#include "engine/interner.hpp"
#include "engine/opt_bridge.hpp"
#include "engine/successors.hpp"

namespace engine {

namespace {

/// Integer-adjusted infimum of the cost clock (see dbm::PricedDbm):
/// the smallest integer B for which the zone intersects cost <= B.
int64_t intCostInf(const dbm::Dbm& z, ta::ClockId costClock) {
  const dbm::raw_t lo = z.at(0, static_cast<uint32_t>(costClock));
  int64_t inf = -static_cast<int64_t>(dbm::boundValue(lo));
  if (dbm::isStrict(lo) && lo != dbm::kInfinity) ++inf;
  return inf;
}

struct Node {
  uint32_t did = 0;     ///< interned discrete state
  dbm::Dbm zone;        ///< canonical, cost clock protected
  int64_t offset = 0;   ///< accumulated soft-guide penalties
  int64_t g = 0;        ///< intCostInf(zone) + offset
  uint32_t parent = kNoParent;
  Transition via;

  static constexpr uint32_t kNoParent = 0xffffffffu;

  Node(uint32_t d, dbm::Dbm z, int64_t off, int64_t cost, uint32_t par,
       Transition v)
      : did(d), zone(std::move(z)), offset(off), g(cost), parent(par),
        via(std::move(v)) {}
};

struct HeapEntry {
  int64_t f = 0;
  int64_t g = 0;
  uint32_t node = 0;
};

/// Min-f; ties broken toward larger g (deeper, closer to the goal).
struct HeapOrder {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
    if (a.f != b.f) return a.f > b.f;
    return a.g < b.g;
  }
};

}  // namespace

BestFirst::BestFirst(const ta::System& sys, Options opts,
                     ta::ClockId costClock)
    : sys_(sys), opts_(std::move(opts)), costClock_(costClock) {
  assert(costClock_ >= 1 &&
         static_cast<uint32_t>(costClock_) < sys.dbmDimension());
}

void BestFirst::setHeuristicTargets(
    std::vector<std::vector<ta::LocId>> targets) {
  assert(targets.size() == sys_.numAutomata());
  targets_ = std::move(targets);
  targetsSet_ = true;
}

BestFirstResult BestFirst::run(const Goal& goal) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();

  // Pre-exploration optimization: delegate to an inner search over the
  // optimized system (see Reachability::run for the scheme). Heuristic
  // targets are pinned so the remaining-time analysis keeps its
  // anchors; composition is vetoed under soft guides, whose penalties
  // match per-edge labels that fusion would concatenate.
  double optSeconds = 0.0;
  if (opts_.optLevel > 0) {
    std::vector<std::pair<ta::ProcId, ta::LocId>> targetPins;
    if (targetsSet_) {
      for (size_t p = 0; p < targets_.size(); ++p) {
        for (const ta::LocId l : targets_[p]) {
          targetPins.push_back({static_cast<ta::ProcId>(p), l});
        }
      }
    }
    ta::OptimizedModel model = opt_bridge::optimizeForGoal(
        sys_, goal, opts_.optLevel,
        /*allowCompose=*/opts_.softGuides.empty(), targetPins);
    if (model.changed()) {
      Options inner = opts_;
      inner.optLevel = 0;
      BestFirst engine(model.system(), inner, model.mapClock(costClock_));
      if (targetsSet_) {
        std::vector<std::vector<ta::LocId>> mapped(
            model.system().numAutomata());
        for (size_t p = 0; p < targets_.size(); ++p) {
          for (const ta::LocId l : targets_[p]) {
            mapped[static_cast<size_t>(
                       model.mapProc(static_cast<ta::ProcId>(p)))]
                .push_back(model.mapLoc(static_cast<ta::ProcId>(p), l));
          }
        }
        engine.setHeuristicTargets(std::move(mapped));
      }
      if (incumbent0_ >= 0) engine.setInitialIncumbent(incumbent0_);
      if (incumbentCb_) {
        engine.onIncumbent([this, &model](int64_t cost,
                                          const SymbolicTrace& trace) {
          incumbentCb_(cost, opt_bridge::backMapTrace(sys_, model, trace));
        });
      }
      BestFirstResult res =
          engine.run(opt_bridge::mapGoal(sys_, goal, model));
      opt_bridge::mergePassStats(res.stats, model.stats());
      if (res.reachable) {
        res.trace = opt_bridge::backMapTrace(sys_, model, res.trace);
      }
      return res;
    }
    optSeconds = model.stats().seconds;
  }

  const size_t simdOps0 = dbm::simd::vectorOps();
  const size_t scalarOps0 = dbm::simd::scalarOps();

  BestFirstResult res;
  res.stats.optSeconds = optSeconds;

  SuccessorGenerator gen(sys_, opts_);
  gen.observeGoalConstraints(goal.clockConstraints);
  gen.protectClock(costClock_);

  if (!targetsSet_) {
    targets_.assign(sys_.numAutomata(), {});
    for (const auto& [p, l] : goal.locations) {
      targets_[static_cast<size_t>(p)].push_back(l);
    }
  }
  const ta::RemainingTimeTable rt =
      ta::analyzeMinRemainingTime(sys_, targets_);

  // Per-part transition labels for soft-guide matching (same rendering
  // as SuccessorGenerator::label, split per participating edge).
  std::vector<std::vector<std::string>> partLabels;
  if (!opts_.softGuides.empty()) {
    partLabels.resize(sys_.numAutomata());
    for (size_t p = 0; p < sys_.numAutomata(); ++p) {
      const ta::Automaton& a = sys_.automaton(static_cast<ta::ProcId>(p));
      partLabels[p].reserve(a.edges().size());
      for (const ta::Edge& e : a.edges()) {
        if (e.label.empty()) {
          partLabels[p].push_back(a.name() + "." + a.location(e.src).name +
                                  "->" + a.location(e.dst).name);
        } else if (e.label.find('.') != std::string::npos) {
          partLabels[p].push_back(e.label);
        } else {
          partLabels[p].push_back(a.name() + "." + e.label);
        }
      }
    }
  }
  const auto penaltyOf = [&](const Transition& t) -> int64_t {
    if (opts_.softGuides.empty()) return 0;
    int64_t w = 0;
    for (const TransitionPart& part : t.parts) {
      const std::string& lbl =
          partLabels[static_cast<size_t>(part.proc)]
                    [static_cast<size_t>(part.edge)];
      for (const SoftGuide& sg : opts_.softGuides) {
        // Negative weights would break the admissibility of the
        // time-only heuristic; clamp them out rather than mis-prune.
        if (sg.weight > 0 && lbl.find(sg.labelContains) != std::string::npos) {
          w += sg.weight;
        }
      }
    }
    return w;
  };

  StateInterner interner;
  std::vector<Node> nodes;
  std::vector<char> alive;     // still stored (not displaced by domination)
  std::vector<char> expanded;  // popped at least once
  std::unordered_map<uint32_t, std::vector<uint32_t>> buckets;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapOrder> open;

  int64_t incumbent = incumbent0_ >= 0 ? incumbent0_ : -1;
  uint32_t goalNode = Node::kNoParent;
  size_t zoneBytes = 0;
  size_t peakBytes = 0;

  const auto heuristic = [&](const DiscreteState& d) -> int64_t {
    return rt.lowerBound(d.locs);
  };

  // Constrain a candidate zone to costs that can still beat the
  // incumbent (cost + offset <= incumbent - 1). False = prunable.
  const auto applyIncumbent = [&](dbm::Dbm& z, int64_t offset) -> bool {
    if (incumbent < 0) return true;
    dbm::PricedDbm pz(std::move(z), static_cast<uint32_t>(costClock_),
                      offset);
    const bool ok = pz.constrainCost(incumbent - 1) && !pz.empty();
    z = std::move(pz.zone());
    return ok;
  };

  // Cost-aware insertion with domination pruning in both directions.
  // Returns the stored node's index, or kNoParent when an existing
  // entry dominates the candidate (or it cannot beat the incumbent).
  const auto tryInsert = [&](const DiscreteState& d, dbm::Dbm&& zone,
                             int64_t offset, uint32_t parent,
                             Transition via) -> std::pair<uint32_t, int64_t> {
    constexpr auto kNone = std::pair<uint32_t, int64_t>{Node::kNoParent, 0};
    const uint32_t did = interner.intern(d);
    auto& bucket = buckets[did];
    for (uint32_t si : bucket) {
      const Node& s = nodes[si];
      if (s.offset <= offset && s.zone.includes(zone)) return kNone;
    }
    for (size_t k = 0; k < bucket.size();) {
      const uint32_t si = bucket[k];
      const Node& s = nodes[si];
      if (offset <= s.offset && zone.includes(s.zone)) {
        if (expanded[si]) ++res.stats.reopenings;
        alive[si] = 0;
        // The zone is dead weight from here on: nothing consults a
        // displaced entry again (domination goes through the bucket,
        // the trace only needs locations and transitions).
        zoneBytes -= nodes[si].zone.memoryBytes();
        nodes[si].zone = dbm::Dbm(1);
        bucket[k] = bucket.back();
        bucket.pop_back();
      } else {
        ++k;
      }
    }
    const int64_t g =
        intCostInf(zone, costClock_) + offset;
    const int64_t h = heuristic(d);
    if (h >= ta::kUnreachableRemaining) return kNone;  // dead end
    const int64_t f = g + h;
    if (incumbent >= 0 && f >= incumbent) return kNone;
    zoneBytes += zone.memoryBytes();
    const auto idx = static_cast<uint32_t>(nodes.size());
    nodes.emplace_back(did, std::move(zone), offset, g, parent,
                       std::move(via));
    alive.push_back(1);
    expanded.push_back(0);
    bucket.push_back(idx);
    open.push(HeapEntry{f, g, idx});
    return {idx, f};
  };

  // Root.
  {
    SymbolicState s0 = gen.initial();
    dbm::Dbm z0 = std::move(s0.zone);
    // z0 can be empty when a lifted initial state (setClockInit)
    // violates an invariant; the queue then starts empty and the run
    // reports unreachable.
    if (!z0.isEmpty() && applyIncumbent(z0, 0)) {
      tryInsert(s0.d, std::move(z0), 0, Node::kNoParent, Transition{});
    }
  }

  // Expansion order is best-first with a greedy dive bias: after
  // expanding a node, its cheapest inserted child is expanded next,
  // bypassing the heap. The chain follows one schedule depth-first
  // (finding incumbents as fast as guided DFS does); when it dies —
  // dominated, cost-pruned, or childless — the heap supplies the best
  // global frontier node, which doubles as the backtracking point.
  // Optimality is untouched: the proof only needs the heap's f
  // watermark, and every dive node still holds a (now stale) heap
  // entry, so the watermark never skips an unexpanded node.
  bool cut = false;
  uint32_t dive = Node::kNoParent;
  while (true) {
    if (opts_.maxSeconds > 0.0 &&
        std::chrono::duration<double>(Clock::now() - t0).count() >
            opts_.maxSeconds) {
      res.stats.cutoff = Cutoff::kTime;
      cut = true;
      break;
    }
    if (opts_.maxStates > 0 && res.stats.statesExplored >= opts_.maxStates) {
      res.stats.cutoff = Cutoff::kStates;
      cut = true;
      break;
    }
    if (opts_.maxMemoryBytes > 0 && zoneBytes > opts_.maxMemoryBytes) {
      res.stats.cutoff = Cutoff::kMemory;
      cut = true;
      break;
    }

    uint32_t cur = Node::kNoParent;
    if (dive != Node::kNoParent) {
      const uint32_t cand = dive;
      dive = Node::kNoParent;
      if (alive[cand] && !expanded[cand]) {
        const int64_t f =
            nodes[cand].g + heuristic(interner.get(nodes[cand].did));
        if (incumbent < 0 || f < incumbent) cur = cand;
      }
    }
    if (cur == Node::kNoParent) {
      if (open.empty()) break;
      const HeapEntry top = open.top();
      open.pop();
      if (incumbent >= 0 && top.f >= incumbent) {
        // Every remaining entry has f >= top.f: nothing can beat the
        // incumbent. The optimum is proven.
        break;
      }
      // Displaced by domination, or already expanded through a dive
      // (dives leave their heap entries behind).
      if (!alive[top.node] || expanded[top.node]) continue;
      cur = top.node;
    }
    expanded[cur] = 1;
    ++res.stats.statesExplored;

    const DiscreteState& d = interner.get(nodes[cur].did);

    if (goal.matches(sys_, d, nodes[cur].zone)) {
      // Goal cost: the zone's reachable cost minimum under the goal's
      // own clock constraints (none in the pure-makespan use).
      dbm::Dbm gz = nodes[cur].zone;
      bool ok = true;
      for (const ta::ClockConstraint& cc : goal.clockConstraints) {
        if (!gz.constrain(static_cast<uint32_t>(cc.i),
                          static_cast<uint32_t>(cc.j), cc.bound)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        const int64_t cost = intCostInf(gz, costClock_) + nodes[cur].offset;
        if (incumbent < 0 || cost < incumbent) {
          incumbent = cost;
          goalNode = cur;
          res.stats.incumbentCosts.push_back(cost);
          if (incumbentCb_) {
            SymbolicTrace t;
            for (uint32_t n = cur; n != Node::kNoParent;
                 n = nodes[n].parent) {
              t.steps.push_back(TraceStep{
                  nodes[n].via,
                  SymbolicState{interner.get(nodes[n].did), nodes[n].zone}});
            }
            std::reverse(t.steps.begin(), t.steps.end());
            incumbentCb_(cost, t);
          }
        }
      }
      // Cost never decreases along a path (time only grows and
      // penalties are nonnegative): successors of a goal state cannot
      // reach a cheaper goal.
      continue;
    }

    uint32_t bestChild = Node::kNoParent;
    int64_t bestF = 0;
    int64_t bestG = 0;
    for (Successor& succ : gen.successors(d, nodes[cur].zone)) {
      ++res.stats.statesGenerated;
      const int64_t offset = nodes[cur].offset + penaltyOf(succ.via);
      dbm::Dbm z = std::move(succ.state.zone);
      if (!applyIncumbent(z, offset)) continue;
      const auto [idx, f] = tryInsert(succ.state.d, std::move(z), offset,
                                      cur, std::move(succ.via));
      if (idx != Node::kNoParent &&
          (bestChild == Node::kNoParent || f < bestF ||
           (f == bestF && nodes[idx].g > bestG))) {
        bestChild = idx;
        bestF = f;
        bestG = nodes[idx].g;
      }
    }
    dive = bestChild;
    peakBytes = std::max(peakBytes, zoneBytes);
  }

  if (goalNode != Node::kNoParent) {
    res.reachable = true;
    res.cost = incumbent;
    for (uint32_t n = goalNode; n != Node::kNoParent; n = nodes[n].parent) {
      res.trace.steps.push_back(TraceStep{
          nodes[n].via,
          SymbolicState{interner.get(nodes[n].did), nodes[n].zone}});
    }
    std::reverse(res.trace.steps.begin(), res.trace.steps.end());
  }
  res.optimal = !cut;

  res.stats.statesStored =
      static_cast<size_t>(std::count(alive.begin(), alive.end(), 1));
  res.stats.storedZones = res.stats.statesStored;
  res.stats.bytesStored = zoneBytes;
  res.stats.peakBytes = std::max(peakBytes, zoneBytes);
  res.stats.statesInterned = interner.size();
  res.stats.internHits = interner.hits();
  res.stats.internBytes = interner.bytes();
  res.stats.extrapolationCoarsenings = gen.extrapolationCoarsenings();
  res.stats.inactiveClocksFreed = gen.inactiveClocksFreed();
  res.stats.simdKernelOps = dbm::simd::vectorOps() - simdOps0;
  res.stats.scalarKernelOps = dbm::simd::scalarOps() - scalarOps0;
  res.stats.seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return res;
}

}  // namespace engine
