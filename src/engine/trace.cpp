#include "engine/trace.hpp"

#include <limits>
#include <sstream>

namespace engine {

namespace {

constexpr int64_t kUnbounded = std::numeric_limits<int64_t>::max() / 4;

struct Replay {
  const ta::System& sys;
  std::vector<ta::LocId> locs;
  std::vector<int32_t> vars;
  std::vector<int64_t> clocks;
  int64_t now = 0;
  std::string error;

  explicit Replay(const ta::System& s)
      : sys(s), vars(s.initialVars()), clocks(s.dbmDimension(), 0) {
    for (uint32_t c = 1; c < s.dbmDimension(); ++c) {
      clocks[c] = s.initialClock(static_cast<ta::ClockId>(c));
    }
    locs.reserve(s.numAutomata());
    for (size_t p = 0; p < s.numAutomata(); ++p) {
      locs.push_back(s.automaton(static_cast<ta::ProcId>(p)).initial());
    }
  }

  [[nodiscard]] bool fail(std::string msg) {
    error = std::move(msg);
    return false;
  }

  /// Fold one constraint into the [lo, hi] delay window; returns false
  /// if a delay-invariant (difference) constraint is already violated.
  [[nodiscard]] bool foldConstraint(const ta::ClockConstraint& cc, int64_t& lo,
                                    int64_t& hi) {
    const int64_t val = dbm::boundValue(cc.bound);
    const bool strict = dbm::isStrict(cc.bound);
    if (cc.i != 0 && cc.j != 0) {
      const int64_t diff = clocks[static_cast<size_t>(cc.i)] -
                           clocks[static_cast<size_t>(cc.j)];
      if (strict ? diff >= val : diff > val) {
        return fail("difference constraint " + sys.ccToString(cc) +
                    " violated at t=" + std::to_string(now));
      }
      return true;
    }
    if (cc.j == 0) {  // upper bound: x_i + d <= / < val
      hi = std::min(hi, val - clocks[static_cast<size_t>(cc.i)] -
                            (strict ? 1 : 0));
    } else {  // lower bound encoded 0 - x_j <= val, i.e. x_j + d >= -val
      lo = std::max(lo, -val - clocks[static_cast<size_t>(cc.j)] +
                            (strict ? 1 : 0));
    }
    return true;
  }

  [[nodiscard]] bool delayWindowFromInvariants(int64_t& lo, int64_t& hi) {
    for (size_t p = 0; p < locs.size(); ++p) {
      const ta::Location& l =
          sys.automaton(static_cast<ta::ProcId>(p)).location(locs[p]);
      if (l.urgent || l.committed) hi = std::min<int64_t>(hi, 0);
      for (const ta::ClockConstraint& cc : l.invariant) {
        if (!foldConstraint(cc, lo, hi)) return false;
      }
    }
    return true;
  }

  [[nodiscard]] bool checkInvariantsNow() {
    for (size_t p = 0; p < locs.size(); ++p) {
      const ta::Location& l =
          sys.automaton(static_cast<ta::ProcId>(p)).location(locs[p]);
      for (const ta::ClockConstraint& cc : l.invariant) {
        if (cc.i != 0 && cc.j != 0) continue;  // checked in foldConstraint
        const int64_t val = dbm::boundValue(cc.bound);
        const bool strict = dbm::isStrict(cc.bound);
        const int64_t lhs = cc.j == 0 ? clocks[static_cast<size_t>(cc.i)]
                                      : -clocks[static_cast<size_t>(cc.j)];
        if (strict ? lhs >= val : lhs > val) {
          return fail("invariant " + sys.ccToString(cc) +
                      " violated entering " + l.name + " at t=" +
                      std::to_string(now));
        }
      }
    }
    return true;
  }

  /// Fire `via` after `delay` time units (delay < 0 means: choose the
  /// minimal feasible delay and report it through *chosen).
  [[nodiscard]] bool step(const Transition& via, int64_t delay,
                          int64_t* chosen) {
    int64_t lo = 0;
    int64_t hi = kUnbounded;
    if (!delayWindowFromInvariants(lo, hi)) return false;
    for (const TransitionPart& part : via.parts) {
      const ta::Edge& e =
          sys.automaton(part.proc).edges()[static_cast<size_t>(part.edge)];
      for (const ta::ClockConstraint& cc : e.clockGuard) {
        if (!foldConstraint(cc, lo, hi)) return false;
      }
    }
    const int64_t d = delay >= 0 ? delay : std::max<int64_t>(lo, 0);
    if (d < lo || d > hi) {
      return fail("no feasible delay at t=" + std::to_string(now) +
                  " (window [" + std::to_string(lo) + ", " +
                  (hi >= kUnbounded ? "inf" : std::to_string(hi)) +
                  "], requested " + std::to_string(d) + ")");
    }
    for (size_t c = 1; c < clocks.size(); ++c) clocks[c] += d;
    now += d;
    if (chosen != nullptr) *chosen = d;

    // Integer guards against the pre-assignment valuation.
    for (const TransitionPart& part : via.parts) {
      const ta::Edge& e =
          sys.automaton(part.proc).edges()[static_cast<size_t>(part.edge)];
      if (!sys.pool().evalBool(e.guard, vars)) {
        return fail("integer guard of edge '" + e.label +
                    "' false at t=" + std::to_string(now));
      }
    }
    // Effects: assignments (sender first), clock resets, moves.
    for (const TransitionPart& part : via.parts) {
      const ta::Edge& e =
          sys.automaton(part.proc).edges()[static_cast<size_t>(part.edge)];
      for (const ta::Assign& as : e.assigns) {
        const int64_t rhs = sys.pool().eval(as.rhs, vars);
        int64_t idx = 0;
        if (as.index != ta::kNoExpr) {
          idx = sys.pool().eval(as.index, vars);
          if (idx < 0 || idx >= as.arraySize) {
            return fail("assignment index out of bounds on edge '" + e.label +
                        "'");
          }
        }
        vars[static_cast<size_t>(as.base + idx)] = static_cast<int32_t>(rhs);
      }
      for (const ta::ClockReset& r : e.resets) {
        clocks[static_cast<size_t>(r.clock)] = r.value;
      }
      locs[static_cast<size_t>(part.proc)] = e.dst;
    }
    return checkInvariantsNow();
  }

  /// Broadcast receivers cannot decline: every process outside
  /// `via.parts` must have no enabled receive edge on `chan` from its
  /// current location.  (Evaluated against the pre-transition valuation,
  /// like the engine does; broadcast receivers carry no clock guards.)
  [[nodiscard]] bool checkBroadcastReceiversComplete(const Transition& via,
                                                     ta::ChanId chan) {
    for (size_t p = 0; p < locs.size(); ++p) {
      const auto proc = static_cast<ta::ProcId>(p);
      bool participating = false;
      for (const TransitionPart& part : via.parts) {
        if (part.proc == proc) {
          participating = true;
          break;
        }
      }
      if (participating) continue;
      const ta::Automaton& a = sys.automaton(proc);
      for (int32_t ej : a.outgoing(locs[p])) {
        const ta::Edge& r = a.edges()[static_cast<size_t>(ej)];
        if (r.sync != ta::Sync::kReceive || r.chan != chan) continue;
        if (sys.pool().evalBool(r.guard, vars)) {
          return fail("broadcast omits enabled receiver '" + r.label + "'");
        }
      }
    }
    return true;
  }

  /// Check synchronization well-formedness of a transition.
  [[nodiscard]] bool checkSyncShape(const Transition& via) {
    if (via.parts.empty()) return fail("empty transition");
    const ta::Edge& first =
        sys.automaton(via.parts[0].proc)
            .edges()[static_cast<size_t>(via.parts[0].edge)];
    const bool broadcast =
        first.sync == ta::Sync::kSend &&
        sys.channelKind(first.chan) == ta::ChanKind::kBroadcast;
    if (via.parts.size() == 1) {
      // A broadcast send may fire alone — but only when no receiver
      // was enabled.
      if (broadcast) return checkBroadcastReceiversComplete(via, first.chan);
      if (first.sync != ta::Sync::kNone) {
        return fail("lone synchronizing edge '" + first.label + "'");
      }
      return true;
    }
    if (first.sync != ta::Sync::kSend) {
      return fail("multi-part transition must lead with a send");
    }
    for (size_t k = 1; k < via.parts.size(); ++k) {
      const ta::Edge& e = sys.automaton(via.parts[k].proc)
                              .edges()[static_cast<size_t>(via.parts[k].edge)];
      if (e.sync != ta::Sync::kReceive || e.chan != first.chan) {
        return fail("mismatched synchronization on '" + e.label + "'");
      }
      if (via.parts[k].proc == via.parts[0].proc) {
        return fail("process synchronizing with itself");
      }
    }
    if (sys.channelKind(first.chan) == ta::ChanKind::kBinary &&
        via.parts.size() != 2) {
      return fail("binary channel with " + std::to_string(via.parts.size()) +
                  " participants");
    }
    if (broadcast) return checkBroadcastReceiversComplete(via, first.chan);
    return true;
  }
};

}  // namespace

namespace {

/// Integer value of a zone's lower bound on clock i (smallest integer
/// the clock may take).
int64_t lowerInt(const dbm::Dbm& z, uint32_t i) {
  const dbm::raw_t b = z.at(0, i);  // 0 - x_i <= v  ->  x_i >= -v
  return -dbm::boundValue(b) + (dbm::isStrict(b) ? 1 : 0);
}

/// Integer value of a zone's upper bound on clock i, or nullopt if
/// unbounded.
std::optional<int64_t> upperInt(const dbm::Dbm& z, uint32_t i) {
  const dbm::raw_t b = z.at(i, 0);
  if (b == dbm::kInfinity) return std::nullopt;
  return dbm::boundValue(b) - (dbm::isStrict(b) ? 1 : 0);
}

/// Pick one integer valuation inside a non-empty zone by successively
/// pinning each clock to its (integer) lower bound.  All plant-model
/// bounds are weak and integral, so the corner search succeeds; a
/// failure is reported, never silently mis-timed.
std::optional<std::vector<int64_t>> pickPoint(dbm::Dbm z) {
  const uint32_t dim = z.dimension();
  std::vector<int64_t> point(dim, 0);
  for (uint32_t i = 1; i < dim; ++i) {
    const int64_t lo = lowerInt(z, i);
    const auto v = static_cast<dbm::value_t>(lo);
    if (!z.constrain(i, 0, dbm::boundWeak(v)) ||
        !z.constrain(0, i, dbm::boundWeak(-v))) {
      return std::nullopt;  // fractional-only zone (strict bounds)
    }
    point[i] = lo;
  }
  return point;
}

/// Conjoin the invariants of the location vector into `z`.
bool conjoinInvariants(const ta::System& sys,
                       const std::vector<ta::LocId>& locs, dbm::Dbm& z) {
  for (size_t p = 0; p < locs.size(); ++p) {
    const ta::Location& l =
        sys.automaton(static_cast<ta::ProcId>(p)).location(locs[p]);
    for (const ta::ClockConstraint& cc : l.invariant) {
      if (!z.constrain(static_cast<uint32_t>(cc.i),
                       static_cast<uint32_t>(cc.j), cc.bound)) {
        return false;
      }
    }
  }
  return true;
}

bool locsForbidDelay(const ta::System& sys,
                     const std::vector<ta::LocId>& locs) {
  for (size_t p = 0; p < locs.size(); ++p) {
    const ta::Location& l =
        sys.automaton(static_cast<ta::ProcId>(p)).location(locs[p]);
    if (l.urgent || l.committed) return true;
  }
  return false;
}

/// The firing zone of step k: delay (when allowed) from the previous
/// post-transition zone under the previous invariants, then the fired
/// edges' clock guards.
std::optional<dbm::Dbm> firingZone(const ta::System& sys,
                                   const dbm::Dbm& prevPost,
                                   const std::vector<ta::LocId>& prevLocs,
                                   const Transition& via) {
  dbm::Dbm f = prevPost;
  if (!locsForbidDelay(sys, prevLocs)) {
    f.up();
    if (!conjoinInvariants(sys, prevLocs, f)) return std::nullopt;
  }
  for (const TransitionPart& part : via.parts) {
    const ta::Edge& e =
        sys.automaton(part.proc).edges()[static_cast<size_t>(part.edge)];
    for (const ta::ClockConstraint& cc : e.clockGuard) {
      if (!f.constrain(static_cast<uint32_t>(cc.i),
                       static_cast<uint32_t>(cc.j), cc.bound)) {
        return std::nullopt;
      }
    }
  }
  return f;
}

}  // namespace

std::optional<ConcreteTrace> concretize(const ta::System& sys,
                                        const SymbolicTrace& trace,
                                        std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  if (trace.steps.empty()) return fail("empty symbolic trace");

  const uint32_t dim = sys.dbmDimension();
  const size_t n = trace.steps.size();

  // ---- Forward pass: exact post-transition zones. --------------------
  std::vector<dbm::Dbm> post;
  post.reserve(n);
  {
    dbm::Dbm z0 = dbm::Dbm::zero(dim);
    if (sys.hasNonzeroClockInit()) {
      // Lifted mid-run start (System::setClockInit): the anchor point
      // is the configured valuation, not the origin — otherwise the
      // backward pass charges the initial offset as extra delay.
      z0 = dbm::Dbm::unconstrained(dim);
      for (uint32_t c = 1; c < dim; ++c) {
        const dbm::value_t v = sys.initialClock(static_cast<ta::ClockId>(c));
        z0.constrainUpper(c, v, /*strict=*/false);
        z0.constrainLower(c, v, /*strict=*/false);
      }
    }
    if (!conjoinInvariants(sys, trace.steps[0].state.d.locs, z0)) {
      return fail("initial state violates invariants");
    }
    post.push_back(std::move(z0));
  }
  for (size_t k = 1; k < n; ++k) {
    const auto f = firingZone(sys, post[k - 1],
                              trace.steps[k - 1].state.d.locs,
                              trace.steps[k].via);
    if (!f.has_value()) {
      return fail("symbolic trace infeasible at step " + std::to_string(k) +
                  " (engine abstraction bug?)");
    }
    dbm::Dbm z = *f;
    for (const TransitionPart& part : trace.steps[k].via.parts) {
      const ta::Edge& e =
          sys.automaton(part.proc).edges()[static_cast<size_t>(part.edge)];
      for (const ta::ClockReset& r : e.resets) {
        z.reset(static_cast<uint32_t>(r.clock), r.value);
      }
    }
    if (!conjoinInvariants(sys, trace.steps[k].state.d.locs, z)) {
      return fail("target invariant infeasible at step " + std::to_string(k));
    }
    post.push_back(std::move(z));
  }

  // ---- Backward pass: concrete valuations and delays. -----------------
  std::vector<std::vector<int64_t>> points(n);
  std::vector<int64_t> delays(n, 0);
  {
    const auto p = pickPoint(post[n - 1]);
    if (!p.has_value()) return fail("final zone has no integer point");
    points[n - 1] = *p;
  }
  for (size_t k = n - 1; k >= 1; --k) {
    auto f = firingZone(sys, post[k - 1], trace.steps[k - 1].state.d.locs,
                        trace.steps[k].via);
    if (!f.has_value()) return fail("backward firing-zone recomputation failed");

    // Clocks reset by step k may take any firing value; all others must
    // equal the chosen post-transition value.
    std::vector<bool> isReset(dim, false);
    for (const TransitionPart& part : trace.steps[k].via.parts) {
      const ta::Edge& e =
          sys.automaton(part.proc).edges()[static_cast<size_t>(part.edge)];
      for (const ta::ClockReset& r : e.resets) {
        isReset[static_cast<size_t>(r.clock)] = true;
      }
    }
    for (uint32_t i = 1; i < dim; ++i) {
      if (isReset[i]) continue;
      const auto v = static_cast<dbm::value_t>(points[k][i]);
      if (!f->constrain(i, 0, dbm::boundWeak(v)) ||
          !f->constrain(0, i, dbm::boundWeak(-v))) {
        return fail("post-transition point has no firing preimage at step " +
                    std::to_string(k));
      }
    }
    const auto w = pickPoint(*f);
    if (!w.has_value()) return fail("firing zone has no integer point");

    // Smallest delay d >= 0 with (w - d) inside the previous post zone.
    int64_t dLo = 0;
    int64_t dHi = std::numeric_limits<int64_t>::max() / 4;
    for (uint32_t i = 1; i < dim; ++i) {
      if (const auto hi = upperInt(post[k - 1], i); hi.has_value()) {
        dLo = std::max(dLo, (*w)[i] - *hi);
      }
      dHi = std::min(dHi, (*w)[i] - lowerInt(post[k - 1], i));
    }
    if (dLo > dHi) {
      return fail("no feasible integer delay at step " + std::to_string(k));
    }
    delays[k] = dLo;
    points[k - 1].assign(dim, 0);
    for (uint32_t i = 1; i < dim; ++i) points[k - 1][i] = (*w)[i] - dLo;
  }

  // ---- Assemble. -------------------------------------------------------
  ConcreteTrace out;
  int64_t now = 0;
  for (size_t k = 0; k < n; ++k) {
    now += delays[k];
    out.steps.push_back(ConcreteStep{delays[k], now, trace.steps[k].via,
                                     trace.steps[k].state.d, points[k]});
  }
  return out;
}

bool validate(const ta::System& sys, const ConcreteTrace& trace,
              std::string* error) {
  Replay rp(sys);
  const auto setError = [&] {
    if (error != nullptr) *error = rp.error;
    return false;
  };
  if (trace.steps.empty()) {
    if (error != nullptr) *error = "empty trace";
    return false;
  }
  for (size_t k = 1; k < trace.steps.size(); ++k) {
    const ConcreteStep& st = trace.steps[k];
    if (!rp.checkSyncShape(st.via)) return setError();
    if (!rp.step(st.via, st.delay, nullptr)) return setError();
    if (rp.locs != st.d.locs || rp.vars != st.d.vars ||
        rp.clocks != st.clocks || rp.now != st.timestamp) {
      rp.error = "recorded state differs from replay at step " +
                 std::to_string(k);
      return setError();
    }
  }
  return true;
}

std::string toString(const ta::System& sys, const ConcreteTrace& trace) {
  std::ostringstream os;
  Options opts;  // only needed to construct a label helper
  SuccessorGenerator gen(sys, opts);
  for (size_t k = 1; k < trace.steps.size(); ++k) {
    const ConcreteStep& st = trace.steps[k];
    if (st.delay > 0) os << "Delay(" << st.delay << ")\n";
    os << "t=" << st.timestamp << "  " << gen.label(st.via) << "\n";
  }
  return os.str();
}

}  // namespace engine
