#include "engine/reachability.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <deque>
#include <random>

#include "dbm/pool.hpp"
#include "engine/interner.hpp"
#include "engine/opt_bridge.hpp"
#include "engine/passed_store.hpp"

namespace engine {

bool Goal::matches(const ta::System& sys, const DiscreteState& d,
                   const dbm::Dbm& zone) const {
  for (const auto& [proc, loc] : locations) {
    if (d.locs[static_cast<size_t>(proc)] != loc) return false;
  }
  if (predicate != ta::kNoExpr && !sys.pool().evalBool(predicate, d.vars)) {
    return false;
  }
  if (!clockConstraints.empty()) {
    dbm::Dbm z = dbm::ZonePool::copyOf(zone);
    for (const ta::ClockConstraint& cc : clockConstraints) {
      if (!z.constrain(static_cast<uint32_t>(cc.i),
                       static_cast<uint32_t>(cc.j), cc.bound)) {
        dbm::ZonePool::recycle(std::move(z));
        return false;
      }
    }
    dbm::ZonePool::recycle(std::move(z));
  }
  return true;
}

namespace {

using Clock = std::chrono::steady_clock;

struct CutoffChecker {
  const Options& opts;
  Clock::time_point start = Clock::now();

  [[nodiscard]] Cutoff check(const Stats& st) const {
    if (opts.maxMemoryBytes != 0 && st.bytesStored > opts.maxMemoryBytes)
      return Cutoff::kMemory;
    if (opts.maxStates != 0 && st.statesExplored > opts.maxStates)
      return Cutoff::kStates;
    if (opts.maxSeconds > 0.0) {
      const double secs =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (secs > opts.maxSeconds) return Cutoff::kTime;
    }
    return Cutoff::kNone;
  }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start).count();
  }
};

}  // namespace

Reachability::Reachability(const ta::System& sys, Options opts)
    : sys_(sys), opts_(opts), gen_(sys, opts_) {
  assert((!opts_.bitstateHashing || opts_.order != SearchOrder::kBfs) &&
         "bit-state hashing requires a depth-first order (as in the paper)");
}

Reachability::~Reachability() = default;

Result Reachability::run(const Goal& goal) {
  // Pre-exploration optimization (lazy — the pins depend on the goal).
  // When the pipeline changed anything, delegate the search to an inner
  // engine over the optimized system and map the goal forward and the
  // witness trace back; the inner engine runs at optLevel 0, so the
  // optimizer runs exactly once per run().
  double optSeconds = 0.0;
  if (opts_.optLevel > 0) {
    ta::OptimizedModel model =
        opt_bridge::optimizeForGoal(sys_, goal, opts_.optLevel);
    if (model.changed()) {
      Options inner = opts_;
      inner.optLevel = 0;
      Reachability engine(model.system(), inner);
      Result res = engine.run(opt_bridge::mapGoal(sys_, goal, model));
      opt_bridge::mergePassStats(res.stats, model.stats());
      if (res.reachable) {
        res.trace = opt_bridge::backMapTrace(sys_, model, res.trace);
      }
      return res;
    }
    optSeconds = model.stats().seconds;
  }

  // Clocks the goal observes must survive the reductions.
  gen_.observeGoalConstraints(goal.clockConstraints);
  // Fresh discrete-state arena per run: every engine (and every
  // portfolio worker) of this search interns into it and resolves the
  // ids it stores back through it.
  interner_ = std::make_unique<StateInterner>(opts_.internStates);
  Result res;
  if (opts_.order != SearchOrder::kBfs) {
    if (opts_.threads > 1) {
      res = opts_.portfolio ? runPortfolioDfs(goal) : runParallelDfs(goal);
    } else {
      res = runDfs(goal);
    }
  } else {
    res = opts_.threads > 1 ? runParallelBfs(goal) : runBfs(goal);
  }
  // Abstraction observability: the generator is shared by every engine
  // (and every portfolio worker), so fill these in once here rather
  // than in each engine's finish path.
  res.stats.storedZones = res.stats.statesStored;
  res.stats.extrapolationCoarsenings = gen_.extrapolationCoarsenings();
  res.stats.inactiveClocksFreed = gen_.inactiveClocksFreed();
  // Interner observability — like the generator, the arena is shared
  // by every engine and portfolio worker of this run.
  res.stats.statesInterned = interner_->size();
  res.stats.internHits = interner_->hits();
  res.stats.internBytes = interner_->bytes();
  // The pipeline ran but found nothing to rewrite; record its cost.
  res.stats.optSeconds = optSeconds;
  return res;
}

// --------------------------------------------------------------------------
// Breadth-first: arena with parent pointers for trace reconstruction.
// --------------------------------------------------------------------------

Result Reachability::runBfs(const Goal& goal) {
  // Nodes carry the interned discrete id plus the zone; the discrete
  // vectors live once in the interner arena.
  struct Node {
    uint32_t did;
    dbm::Dbm zone;
    Transition via;
    int64_t parent;
  };

  Result res;
  CutoffChecker cut{opts_};
  StateInterner& interner = *interner_;
  PassedStore passed(opts_, interner);

  std::vector<Node> arena;
  std::deque<int64_t> waiting;
  size_t arenaBytes = 0;

  const auto buildTrace = [&](int64_t idx) {
    std::vector<TraceStep> rev;
    for (int64_t k = idx; k >= 0; k = arena[static_cast<size_t>(k)].parent) {
      const Node& n = arena[static_cast<size_t>(k)];
      rev.push_back(TraceStep{n.via, SymbolicState{interner.get(n.did),
                                                   n.zone}});
    }
    std::reverse(rev.begin(), rev.end());
    res.trace.steps = std::move(rev);
  };

  const auto finish = [&](Cutoff c, bool exhausted) {
    res.stats.cutoff = c;
    res.exhausted = exhausted && c == Cutoff::kNone;
    res.stats.seconds = cut.seconds();
    res.stats.statesStored = passed.states();
    res.stats.storeLookups = passed.lookups();
    res.stats.storeProbeSteps = passed.probeSteps();
    res.stats.zonesMerged = passed.merges();
    res.stats.storeBytes = passed.bytes();
    return res;
  };

  SymbolicState init = gen_.initial();
  if (init.zone.isEmpty()) {
    // A lifted initial state (System::setClockInit) violated an
    // invariant: nothing is reachable.
    return finish(Cutoff::kNone, true);
  }
  if (!goal.deadlock && goal.matches(sys_, init)) {
    arena.push_back(
        {interner.intern(init.d), std::move(init.zone), Transition{}, -1});
    res.reachable = true;
    buildTrace(0);
    return finish(Cutoff::kNone, false);
  }
  {
    const uint64_t h = init.d.hash();
    const uint32_t id = interner.intern(init.d, h);
    passed.insertHashed(id, init.zone, h);
    arenaBytes += init.zone.memoryBytes();
    arena.push_back({id, std::move(init.zone), Transition{}, -1});
    waiting.push_back(0);
  }
  res.stats.bytesStored = passed.bytes() + interner.bytes() + arenaBytes;
  res.stats.peakBytes = res.stats.bytesStored;

  while (!waiting.empty()) {
    // Refresh memory accounting once per popped state — covered
    // successors never enter the insert branch, and a long covered
    // stretch must not let the maxMemoryBytes cutoff fire late.
    res.stats.bytesStored = passed.bytes() + interner.bytes() + arenaBytes +
                            arena.size() * sizeof(Node) +
                            waiting.size() * sizeof(int64_t);
    res.stats.peakBytes = std::max(res.stats.peakBytes, res.stats.bytesStored);
    if (const Cutoff c = cut.check(res.stats); c != Cutoff::kNone) {
      return finish(c, false);
    }
    const int64_t idx = waiting.front();
    waiting.pop_front();
    ++res.stats.statesExplored;

    // The interned reference is stable; the zone is copied because the
    // arena may reallocate while pushing successors.
    const uint32_t did = arena[static_cast<size_t>(idx)].did;
    const DiscreteState& d = interner.get(did);
    const dbm::Dbm zone = arena[static_cast<size_t>(idx)].zone;
    std::vector<Successor> succs = gen_.successors(d, zone);
    if (goal.deadlock && succs.empty() && goal.matches(sys_, d, zone)) {
      res.reachable = true;
      buildTrace(idx);
      return finish(Cutoff::kNone, false);
    }
    for (Successor& suc : succs) {
      ++res.stats.statesGenerated;
      if (!goal.deadlock && goal.matches(sys_, suc.state)) {
        arena.push_back({interner.intern(suc.state.d),
                         std::move(suc.state.zone), std::move(suc.via), idx});
        res.reachable = true;
        buildTrace(static_cast<int64_t>(arena.size()) - 1);
        return finish(Cutoff::kNone, false);
      }
      const uint64_t h = suc.state.d.hash();
      if (passed.coveredHashed(suc.state.d, suc.state.zone, h)) {
        dbm::ZonePool::recycle(std::move(suc.state.zone));
        continue;
      }
      const uint32_t id = interner.intern(suc.state.d, h);
      passed.insertHashed(id, suc.state.zone, h);
      arenaBytes += suc.state.zone.memoryBytes();
      arena.push_back({id, std::move(suc.state.zone), std::move(suc.via), idx});
      waiting.push_back(static_cast<int64_t>(arena.size()) - 1);
    }
  }
  return finish(Cutoff::kNone, true);
}

// --------------------------------------------------------------------------
// Depth-first (optionally randomized, optionally bit-state hashed):
// explicit frame stack; the stack itself is the trace.
// --------------------------------------------------------------------------

Result Reachability::runDfs(const Goal& goal) {
  return dfsCore(goal, opts_, nullptr);
}

Result Reachability::dfsCore(const Goal& goal, const Options& opts,
                             const std::atomic<bool>* cancel) {
  // Frames carry the interned discrete id plus the zone; the discrete
  // vectors live once in the (run-wide, portfolio-shared) interner.
  struct Frame {
    uint32_t did;
    dbm::Dbm zone;
    Transition via;
    std::vector<Successor> succ;
    size_t next = 0;
    size_t bytes = 0;
  };

  Result res;
  CutoffChecker cut{opts};
  StateInterner& interner = *interner_;
  PassedStore passed(opts, interner);
  std::optional<BitTable> bits;
  if (opts.bitstateHashing) bits.emplace(opts.hashBits);
  std::mt19937_64 rng(opts.seed);

  const auto covered = [&](const SymbolicState& s) {
    // testAndSet both queries and marks — call sites rely on that.
    return bits ? bits->testAndSet(s) : passed.covered(s.d, s.zone);
  };

  std::vector<Frame> stack;
  size_t stackBytes = 0;

  const auto frameBytes = [](const Frame& f) {
    size_t b = f.zone.memoryBytes() + sizeof(Frame);
    for (const Successor& suc : f.succ) {
      b += suc.state.memoryBytes() + sizeof(Successor);
    }
    return b;
  };

  const auto pushFrame = [&](uint32_t did, dbm::Dbm zone, Transition via) {
    Frame f{did, std::move(zone), std::move(via), {}, 0, 0};
    f.succ = gen_.successors(interner.get(did), f.zone);
    if (opts.order == SearchOrder::kRandomDfs) {
      std::shuffle(f.succ.begin(), f.succ.end(), rng);
    } else if (opts.dfsReverse) {
      std::reverse(f.succ.begin(), f.succ.end());
    }
    f.bytes = frameBytes(f);
    stackBytes += f.bytes;
    stack.push_back(std::move(f));
    res.stats.peakStackDepth =
        std::max(res.stats.peakStackDepth, stack.size());
    ++res.stats.statesExplored;
  };

  // Intern, record in the passed store (unless bit-state hashing owns
  // dedup), and push the search frame.
  const auto visit = [&](SymbolicState s, Transition via) {
    const uint64_t h = s.d.hash();
    const uint32_t did = interner.intern(s.d, h);
    if (!bits) passed.insertHashed(did, s.zone, h);
    pushFrame(did, std::move(s.zone), std::move(via));
  };

  const auto accountMemory = [&] {
    res.stats.bytesStored = stackBytes + interner.bytes() +
                            (bits ? bits->bytes() : passed.bytes());
    res.stats.peakBytes = std::max(res.stats.peakBytes, res.stats.bytesStored);
  };

  const auto buildTrace = [&](const Successor* last) {
    for (const Frame& f : stack) {
      res.trace.steps.push_back(
          TraceStep{f.via, SymbolicState{interner.get(f.did), f.zone}});
    }
    if (last != nullptr) {
      res.trace.steps.push_back(TraceStep{last->via, last->state});
    }
  };

  const auto finish = [&](Cutoff c, bool exhausted) {
    res.stats.cutoff = c;
    // A completed bit-state-hashed search may have pruned real states.
    res.exhausted = exhausted && c == Cutoff::kNone && !bits;
    res.stats.seconds = cut.seconds();
    res.stats.statesStored = bits ? 0 : passed.states();
    res.stats.storeLookups = passed.lookups();
    res.stats.storeProbeSteps = passed.probeSteps();
    res.stats.zonesMerged = passed.merges();
    res.stats.storeBytes = passed.bytes();
    return res;
  };

  SymbolicState init = gen_.initial();
  if (init.zone.isEmpty()) {
    // A lifted initial state (System::setClockInit) violated an
    // invariant: nothing is reachable.
    return finish(Cutoff::kNone, true);
  }
  if (!goal.deadlock && goal.matches(sys_, init)) {
    stack.push_back(Frame{interner.intern(init.d), std::move(init.zone),
                          Transition{}, {}, 0, 0});
    res.reachable = true;
    buildTrace(nullptr);
    return finish(Cutoff::kNone, false);
  }
  (void)covered(init);  // mark visited (bit-state mode)
  visit(std::move(init), Transition{});
  accountMemory();

  // A deadlock goal matches states without successors; the state just
  // pushed is on top of the stack with its successors precomputed.
  const auto topIsDeadlock = [&] {
    return goal.deadlock && stack.back().succ.empty() &&
           goal.matches(sys_, interner.get(stack.back().did),
                        stack.back().zone);
  };
  if (topIsDeadlock()) {
    res.reachable = true;
    buildTrace(nullptr);
    return finish(Cutoff::kNone, false);
  }

  while (!stack.empty()) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return finish(Cutoff::kCancelled, false);
    }
    if (const Cutoff c = cut.check(res.stats); c != Cutoff::kNone) {
      return finish(c, false);
    }
    Frame& top = stack.back();
    if (top.next >= top.succ.size()) {
      stackBytes -= top.bytes;
      stack.pop_back();
      continue;
    }
    Successor suc = std::move(top.succ[top.next++]);
    ++res.stats.statesGenerated;
    if (!goal.deadlock && goal.matches(sys_, suc.state)) {
      res.reachable = true;
      buildTrace(&suc);
      return finish(Cutoff::kNone, false);
    }
    if (covered(suc.state)) {
      dbm::ZonePool::recycle(std::move(suc.state.zone));
      continue;
    }
    visit(std::move(suc.state), std::move(suc.via));
    if (topIsDeadlock()) {
      res.reachable = true;
      buildTrace(nullptr);
      return finish(Cutoff::kNone, false);
    }
    accountMemory();
  }
  return finish(Cutoff::kNone, true);
}

}  // namespace engine
