#include "engine/reachability.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <deque>
#include <random>

#include "dbm/pool.hpp"
#include "engine/passed_store.hpp"

namespace engine {

bool Goal::matches(const ta::System& sys, const SymbolicState& s) const {
  for (const auto& [proc, loc] : locations) {
    if (s.d.locs[static_cast<size_t>(proc)] != loc) return false;
  }
  if (predicate != ta::kNoExpr &&
      !sys.pool().evalBool(predicate, s.d.vars)) {
    return false;
  }
  if (!clockConstraints.empty()) {
    dbm::Dbm z = dbm::ZonePool::copyOf(s.zone);
    for (const ta::ClockConstraint& cc : clockConstraints) {
      if (!z.constrain(static_cast<uint32_t>(cc.i),
                       static_cast<uint32_t>(cc.j), cc.bound)) {
        dbm::ZonePool::recycle(std::move(z));
        return false;
      }
    }
    dbm::ZonePool::recycle(std::move(z));
  }
  return true;
}

namespace {

using Clock = std::chrono::steady_clock;

struct CutoffChecker {
  const Options& opts;
  Clock::time_point start = Clock::now();

  [[nodiscard]] Cutoff check(const Stats& st) const {
    if (opts.maxMemoryBytes != 0 && st.bytesStored > opts.maxMemoryBytes)
      return Cutoff::kMemory;
    if (opts.maxStates != 0 && st.statesExplored > opts.maxStates)
      return Cutoff::kStates;
    if (opts.maxSeconds > 0.0) {
      const double secs =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (secs > opts.maxSeconds) return Cutoff::kTime;
    }
    return Cutoff::kNone;
  }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start).count();
  }
};

}  // namespace

Reachability::Reachability(const ta::System& sys, Options opts)
    : sys_(sys), opts_(opts), gen_(sys, opts_) {
  assert((!opts_.bitstateHashing || opts_.order != SearchOrder::kBfs) &&
         "bit-state hashing requires a depth-first order (as in the paper)");
}

Result Reachability::run(const Goal& goal) {
  // Clocks the goal observes must survive the reductions.
  gen_.observeGoalConstraints(goal.clockConstraints);
  Result res;
  if (opts_.order != SearchOrder::kBfs) {
    if (opts_.threads > 1) {
      res = opts_.portfolio ? runPortfolioDfs(goal) : runParallelDfs(goal);
    } else {
      res = runDfs(goal);
    }
  } else {
    res = opts_.threads > 1 ? runParallelBfs(goal) : runBfs(goal);
  }
  // Abstraction observability: the generator is shared by every engine
  // (and every portfolio worker), so fill these in once here rather
  // than in each engine's finish path.
  res.stats.storedZones = res.stats.statesStored;
  res.stats.extrapolationCoarsenings = gen_.extrapolationCoarsenings();
  res.stats.inactiveClocksFreed = gen_.inactiveClocksFreed();
  return res;
}

// --------------------------------------------------------------------------
// Breadth-first: arena with parent pointers for trace reconstruction.
// --------------------------------------------------------------------------

Result Reachability::runBfs(const Goal& goal) {
  struct Node {
    SymbolicState s;
    Transition via;
    int64_t parent;
  };

  Result res;
  CutoffChecker cut{opts_};
  PassedStore passed(opts_.inclusionChecking, opts_.compactPassed);

  std::vector<Node> arena;
  std::deque<int64_t> waiting;
  size_t arenaBytes = 0;

  const auto buildTrace = [&](int64_t idx) {
    std::vector<TraceStep> rev;
    for (int64_t k = idx; k >= 0; k = arena[static_cast<size_t>(k)].parent) {
      const Node& n = arena[static_cast<size_t>(k)];
      rev.push_back(TraceStep{n.via, n.s});
    }
    std::reverse(rev.begin(), rev.end());
    res.trace.steps = std::move(rev);
  };

  const auto finish = [&](Cutoff c, bool exhausted) {
    res.stats.cutoff = c;
    res.exhausted = exhausted && c == Cutoff::kNone;
    res.stats.seconds = cut.seconds();
    res.stats.statesStored = passed.states();
    return res;
  };

  SymbolicState init = gen_.initial();
  if (!goal.deadlock && goal.matches(sys_, init)) {
    arena.push_back({std::move(init), Transition{}, -1});
    res.reachable = true;
    buildTrace(0);
    return finish(Cutoff::kNone, false);
  }
  passed.insert(init);
  arenaBytes += init.memoryBytes();
  arena.push_back({std::move(init), Transition{}, -1});
  waiting.push_back(0);
  res.stats.bytesStored = passed.bytes() + arenaBytes;
  res.stats.peakBytes = res.stats.bytesStored;

  while (!waiting.empty()) {
    // Refresh memory accounting once per popped state — covered
    // successors never enter the insert branch, and a long covered
    // stretch must not let the maxMemoryBytes cutoff fire late.
    res.stats.bytesStored = passed.bytes() + arenaBytes +
                            arena.size() * sizeof(Node) +
                            waiting.size() * sizeof(int64_t);
    res.stats.peakBytes = std::max(res.stats.peakBytes, res.stats.bytesStored);
    if (const Cutoff c = cut.check(res.stats); c != Cutoff::kNone) {
      return finish(c, false);
    }
    const int64_t idx = waiting.front();
    waiting.pop_front();
    ++res.stats.statesExplored;

    // Copy: arena may reallocate while pushing successors.
    const SymbolicState current = arena[static_cast<size_t>(idx)].s;
    std::vector<Successor> succs = gen_.successors(current);
    if (goal.deadlock && succs.empty() && goal.matches(sys_, current)) {
      res.reachable = true;
      buildTrace(idx);
      return finish(Cutoff::kNone, false);
    }
    for (Successor& suc : succs) {
      ++res.stats.statesGenerated;
      if (!goal.deadlock && goal.matches(sys_, suc.state)) {
        arena.push_back({std::move(suc.state), std::move(suc.via), idx});
        res.reachable = true;
        buildTrace(static_cast<int64_t>(arena.size()) - 1);
        return finish(Cutoff::kNone, false);
      }
      if (passed.covered(suc.state)) {
        dbm::ZonePool::recycle(std::move(suc.state.zone));
        continue;
      }
      passed.insert(suc.state);
      arenaBytes += suc.state.memoryBytes();
      arena.push_back({std::move(suc.state), std::move(suc.via), idx});
      waiting.push_back(static_cast<int64_t>(arena.size()) - 1);
    }
  }
  return finish(Cutoff::kNone, true);
}

// --------------------------------------------------------------------------
// Depth-first (optionally randomized, optionally bit-state hashed):
// explicit frame stack; the stack itself is the trace.
// --------------------------------------------------------------------------

Result Reachability::runDfs(const Goal& goal) {
  return dfsCore(goal, opts_, nullptr);
}

Result Reachability::dfsCore(const Goal& goal, const Options& opts,
                             const std::atomic<bool>* cancel) {
  struct Frame {
    SymbolicState s;
    Transition via;
    std::vector<Successor> succ;
    size_t next = 0;
    size_t bytes = 0;
  };

  Result res;
  CutoffChecker cut{opts};
  PassedStore passed(opts.inclusionChecking, opts.compactPassed);
  std::optional<BitTable> bits;
  if (opts.bitstateHashing) bits.emplace(opts.hashBits);
  std::mt19937_64 rng(opts.seed);

  const auto covered = [&](const SymbolicState& s) {
    // testAndSet both queries and marks — call sites rely on that.
    return bits ? bits->testAndSet(s) : passed.covered(s);
  };
  const auto store = [&](const SymbolicState& s) {
    if (!bits) passed.insert(s);
  };

  std::vector<Frame> stack;
  size_t stackBytes = 0;

  const auto frameBytes = [](const Frame& f) {
    size_t b = f.s.memoryBytes() + sizeof(Frame);
    for (const Successor& suc : f.succ) {
      b += suc.state.memoryBytes() + sizeof(Successor);
    }
    return b;
  };

  const auto pushFrame = [&](SymbolicState s, Transition via) {
    Frame f{std::move(s), std::move(via), {}, 0, 0};
    f.succ = gen_.successors(f.s);
    if (opts.order == SearchOrder::kRandomDfs) {
      std::shuffle(f.succ.begin(), f.succ.end(), rng);
    } else if (opts.dfsReverse) {
      std::reverse(f.succ.begin(), f.succ.end());
    }
    f.bytes = frameBytes(f);
    stackBytes += f.bytes;
    stack.push_back(std::move(f));
    res.stats.peakStackDepth =
        std::max(res.stats.peakStackDepth, stack.size());
    ++res.stats.statesExplored;
  };

  const auto accountMemory = [&] {
    res.stats.bytesStored =
        stackBytes + (bits ? bits->bytes() : passed.bytes());
    res.stats.peakBytes = std::max(res.stats.peakBytes, res.stats.bytesStored);
  };

  const auto buildTrace = [&](const Successor* last) {
    for (const Frame& f : stack) {
      res.trace.steps.push_back(TraceStep{f.via, f.s});
    }
    if (last != nullptr) {
      res.trace.steps.push_back(TraceStep{last->via, last->state});
    }
  };

  const auto finish = [&](Cutoff c, bool exhausted) {
    res.stats.cutoff = c;
    // A completed bit-state-hashed search may have pruned real states.
    res.exhausted = exhausted && c == Cutoff::kNone && !bits;
    res.stats.seconds = cut.seconds();
    res.stats.statesStored = bits ? 0 : passed.states();
    return res;
  };

  SymbolicState init = gen_.initial();
  if (!goal.deadlock && goal.matches(sys_, init)) {
    stack.push_back(Frame{std::move(init), Transition{}, {}, 0, 0});
    res.reachable = true;
    buildTrace(nullptr);
    return finish(Cutoff::kNone, false);
  }
  (void)covered(init);  // mark visited
  store(init);
  pushFrame(std::move(init), Transition{});
  accountMemory();

  // A deadlock goal matches states without successors; the state just
  // pushed is on top of the stack with its successors precomputed.
  const auto topIsDeadlock = [&] {
    return goal.deadlock && stack.back().succ.empty() &&
           goal.matches(sys_, stack.back().s);
  };
  if (topIsDeadlock()) {
    res.reachable = true;
    buildTrace(nullptr);
    return finish(Cutoff::kNone, false);
  }

  while (!stack.empty()) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return finish(Cutoff::kCancelled, false);
    }
    if (const Cutoff c = cut.check(res.stats); c != Cutoff::kNone) {
      return finish(c, false);
    }
    Frame& top = stack.back();
    if (top.next >= top.succ.size()) {
      stackBytes -= top.bytes;
      stack.pop_back();
      continue;
    }
    Successor suc = std::move(top.succ[top.next++]);
    ++res.stats.statesGenerated;
    if (!goal.deadlock && goal.matches(sys_, suc.state)) {
      res.reachable = true;
      buildTrace(&suc);
      return finish(Cutoff::kNone, false);
    }
    if (covered(suc.state)) {
      dbm::ZonePool::recycle(std::move(suc.state.zone));
      continue;
    }
    store(suc.state);
    pushFrame(std::move(suc.state), std::move(suc.via));
    if (topIsDeadlock()) {
      res.reachable = true;
      buildTrace(nullptr);
      return finish(Cutoff::kNone, false);
    }
    accountMemory();
  }
  return finish(Cutoff::kNone, true);
}

}  // namespace engine
