// Search configuration for the reachability engine — mirrors the UPPAAL
// command-line options the paper's Table 1 varies (breadth-first /
// depth-first / bit-state hashing, active-clock reduction) plus the
// resource cut-offs the paper's "-" entries correspond to.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace engine {

/// One weighted soft requirement for the cost-optimal engine (the
/// DCSynth-style guides): every fired transition whose label contains
/// `labelContains` adds `weight` to the path cost. Positive weights
/// steer the search away from matching edges (prefer-crane-1,
/// minimize-resends); the optimum then minimizes makespan plus the
/// accumulated penalties.
struct SoftGuide {
  std::string labelContains;
  int64_t weight = 0;
};

enum class SearchOrder : uint8_t {
  kBfs,        ///< breadth-first (UPPAAL default)
  kDfs,        ///< depth-first
  kRandomDfs,  ///< depth-first with randomized successor order
};

/// Which finite abstraction normalize() applies to successor zones.
/// The operators form a lattice of coarseness
///   kGlobalM  ⊑  kLocationM  ⊑  kLocationLUPlus
/// (each later operator abstracts at least as much as the earlier
/// ones), and all three preserve location reachability for the
/// diagonal-free models we build — see DESIGN.md "Zone abstraction".
enum class Extrapolation : uint8_t {
  /// No extrapolation at all. Ablation only: the zone graph need not
  /// be finite and the search can diverge.
  kNone,
  /// Classic Extra_M with one global per-clock maximum constant
  /// (`ta::System::maxBounds()`).
  kGlobalM,
  /// Extra_M with location-dependent maxima M(l, x) =
  /// max(L(l, x), U(l, x)) from the static clock-bound analysis.
  kLocationM,
  /// Extra+_LU with location-dependent lower/upper bounds — the
  /// coarsest (fewest stored zones) of the three.
  kLocationLUPlus,
};

/// Parse a --extrapolation flag value ("none", "global", "location",
/// "lu"). Returns false on an unknown spelling.
[[nodiscard]] inline bool parseExtrapolation(std::string_view s,
                                             Extrapolation* out) {
  if (s == "none") *out = Extrapolation::kNone;
  else if (s == "global") *out = Extrapolation::kGlobalM;
  else if (s == "location") *out = Extrapolation::kLocationM;
  else if (s == "lu") *out = Extrapolation::kLocationLUPlus;
  else return false;
  return true;
}

[[nodiscard]] inline const char* extrapolationName(Extrapolation e) {
  switch (e) {
    case Extrapolation::kNone: return "none";
    case Extrapolation::kGlobalM: return "global";
    case Extrapolation::kLocationM: return "location";
    case Extrapolation::kLocationLUPlus: return "lu";
  }
  return "?";
}

struct Options {
  SearchOrder order = SearchOrder::kBfs;

  /// Holzmann bit-state hashing: the passed list becomes a 2-bit-per-
  /// state hash table — tiny memory, may prune reachable states.
  /// Requires a depth-first order (as in the paper).
  bool bitstateHashing = false;
  /// log2 of the bit table size. The paper tuned 2^19 .. 2^23 ("table
  /// sizes from 524288 to 8388608 bits").
  uint32_t hashBits = 23;

  /// Daws–Tripakis (in-)active clock reduction.
  bool activeClockReduction = true;

  /// Zone abstraction operator (see the Extrapolation enum). The
  /// default is the coarsest sound operator; kGlobalM reproduces the
  /// pre-LU engine and is the differential-test oracle; kNone is for
  /// ablation only and can make the search diverge.
  Extrapolation extrapolation = Extrapolation::kLocationLUPlus;

  /// Inclusion checking in the passed/waiting list (vs exact equality).
  bool inclusionChecking = true;

  /// Hash-cons discrete states (location vector + variable valuation)
  /// in a shared arena and key the passed store by the resulting dense
  /// 32-bit ids. Off, every stored state keeps its own discrete copy —
  /// the pre-interning storage profile, kept for ablation; verdicts and
  /// stored-state counts are unchanged either way.
  bool internStates = true;

  /// Merge a newly inserted passed zone with a stored zone of the same
  /// discrete state whenever their union is exactly convex (the
  /// pointwise-max hull equals the set union — checked exactly, see
  /// Dbm::tryConvexUnion). Fewer stored zones: covered() scans shorten
  /// and memory drops, and because the merge is exact the covered
  /// valuation set — hence the verdict — is unchanged. Stored/explored
  /// counts may shrink, so the default stays off for count-sensitive
  /// comparisons. Requires inclusion checking (or compactPassed, which
  /// implies it); ignored under exact-equality dedup.
  bool mergeZones = false;

  /// Store passed zones in reduced "minimal constraint" form (the
  /// paper's compact data-structure for constraints [9]): much smaller
  /// per-zone memory, inclusion answered directly on the reduced form;
  /// trades away subsumption-removal of previously stored zones.
  /// Implies inclusion checking.
  bool compactPassed = false;

  /// Worker threads. 1 = the sequential engines; > 1 selects a
  /// parallel explorer: level-synchronous BFS (chunked frontier queue +
  /// sharded passed store) for kBfs, work-stealing DFS (per-worker
  /// task stacks, oldest-frame stealing, shared sharded passed store)
  /// for the depth-first orders — or, with `portfolio`, a race of
  /// independent seeded DFS workers. Verdicts match the sequential
  /// engine; see DESIGN.md "Parallel explorer".
  size_t threads = 1;

  /// Portfolio mode for the depth-first orders with threads > 1:
  /// instead of cooperating on one search, each worker runs an
  /// independent sequential DFS (worker 0 with the configured order
  /// and seed, workers 1.. with kRandomDfs and seeds seed+1, seed+2,
  /// ...) and the first conclusive verdict — a validated witness or an
  /// exhausted space — wins and cancels the rest. Resource cut-offs
  /// apply per worker. Ignored by kBfs and by threads <= 1.
  bool portfolio = false;

  /// log2 of the number of passed-store shards in parallel mode.
  /// 2^6 = 64 shards keeps try_lock contention negligible up to a
  /// few dozen workers.
  uint32_t shardBits = 6;

  /// Seed for kRandomDfs.
  uint64_t seed = 1;

  /// Soft-guide penalties, consumed by the best-first engine only (the
  /// plain reachability engines ignore them — they have no cost).
  std::vector<SoftGuide> softGuides;

  /// Explore successors in reverse generation order (DFS only). The
  /// generation order follows process declaration order, so this flips
  /// which process "moves first" — a cheap but sometimes decisive
  /// search heuristic.
  bool dfsReverse = false;

  /// Pre-exploration model optimization (ta/ir.hpp pass pipeline).
  /// 0 = explore the model exactly as built; 1 = constant folding,
  /// dead-location/edge elimination, guard simplification; 2 = all of
  /// the above plus dead-store elision, clock unification, and pairwise
  /// composition. Verdicts and witness traces are unchanged at every
  /// level (traces are mapped back onto the original model); only
  /// search effort differs.
  int optLevel = 2;

  // -- Cut-offs: a run exceeding any of these aborts with the matching
  //    CutoffReason, reproducing Table 1's "-" entries. 0 = unlimited.
  size_t maxMemoryBytes = 0;
  double maxSeconds = 0.0;
  size_t maxStates = 0;
};

enum class Cutoff : uint8_t {
  kNone,
  kMemory,
  kTime,
  kStates,
  /// A portfolio worker stopped because another worker already reached
  /// a conclusive verdict. Never reported by Reachability::run itself —
  /// the winning worker's result is returned instead.
  kCancelled,
};

}  // namespace engine
