// Passed/waiting stores for the reachability engine.
//
// `PassedStore` is UPPAAL's PWList rebuilt as a flat open-addressing
// table: one linear-probing slot array (parallel hash/entry-index
// vectors, so a probe walks a single cache stream) keyed by the
// hash-consed discrete-state id from `StateInterner`, with each
// bucket's zones held in one contiguous arena — raw row-major DBM
// blocks in full mode, concatenated reduced ("minimal constraint")
// edge lists in compact mode — so a covered() scan streams one buffer
// instead of chasing per-zone heap allocations. Subsumption pruning is
// symmetric in both representations (a newly inserted zone drops every
// stored zone it covers), and with Options.mergeZones a new zone is
// merged with a stored one whenever their union is exactly convex
// (Dbm::tryConvexUnion), which preserves the covered valuation set
// while shortening every later scan.
//
// `BitTable` is Holzmann's two-bit bit-state hash table (untouched by
// the flat-store rewrite). `ShardedPassedStore` wraps 2^shardBits
// independently-locked PassedStores for the parallel engines: the
// shard is picked from DiscreteState::hash(), so all zones of one
// discrete state land in one shard and the covered-check/insert pair
// stays atomic under that shard's lock.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "dbm/dbm.hpp"
#include "dbm/minimal.hpp"
#include "dbm/zone_batch.hpp"
#include "engine/interner.hpp"
#include "engine/options.hpp"
#include "engine/state.hpp"

namespace engine {

/// Passed/waiting store with zone-inclusion checking (UPPAAL's PWList).
/// With `opts.compactPassed`, zones are held in reduced
/// minimal-constraint form (the paper's compact data-structure option
/// [9]). Discrete keys live in the interner; the store holds 32-bit
/// ids and compares key values through it, so it works identically
/// whether or not the interner deduplicates (Options.internStates).
class PassedStore {
 public:
  PassedStore(const Options& opts, StateInterner& interner)
      : inclusion_(opts.inclusionChecking || opts.compactPassed),
        compact_(opts.compactPassed),
        merge_(opts.mergeZones &&
               (opts.inclusionChecking || opts.compactPassed)),
        interner_(&interner) {}

  [[nodiscard]] bool covered(const DiscreteState& d, const dbm::Dbm& z) const {
    return coveredHashed(d, z, d.hash());
  }

  /// covered() with a precomputed DiscreteState::hash() (the sharded
  /// wrapper already derived the shard from it).
  [[nodiscard]] bool coveredHashed(const DiscreteState& d, const dbm::Dbm& z,
                                   uint64_t h) const {
    ++lookups_;
    const Entry* e = find(d, h);
    if (e == nullptr) return false;
    if (compact_) {
      for (uint32_t k = 0; k < e->nzones; ++k) {
        if (edgesInclude(edgeSpan(*e, k), z)) return true;
      }
      return false;
    }
    // Full mode: one SoA scan over the bucket's ZoneBatch.
    return inclusion_ ? e->zones.anySuperset(z.rawData())
                      : e->zones.containsEqual(z.rawData());
  }

  /// Insert the zone under the interned discrete state `did`. The
  /// caller has already established it is not covered.
  void insert(uint32_t did, const dbm::Dbm& z) {
    insertHashed(did, z, interner_->hashOf(did));
  }

  void insertHashed(uint32_t did, const dbm::Dbm& z, uint64_t h) {
    if (dim_ == 0) dim_ = z.dimension();
    assert(dim_ == z.dimension());
    Entry& e = findOrCreate(did, h);
    if (compact_) {
      insertCompact(e, z);
    } else {
      insertFull(e, z);
    }
  }

  [[nodiscard]] size_t bytes() const noexcept { return bytes_; }
  /// Stored zones (the engine's statesStored; merging and subsumption
  /// pruning shrink it).
  [[nodiscard]] size_t states() const noexcept { return zones_; }
  /// Distinct discrete buckets in the table.
  [[nodiscard]] size_t entryCount() const noexcept { return entries_.size(); }
  [[nodiscard]] size_t lookups() const noexcept { return lookups_; }
  [[nodiscard]] size_t probeSteps() const noexcept { return probeSteps_; }
  [[nodiscard]] size_t merges() const noexcept { return merges_; }

  [[nodiscard]] StateInterner& interner() const noexcept { return *interner_; }

 private:
  /// Estimated fixed cost of one discrete bucket beyond its vectors.
  static constexpr size_t kEntryOverhead = 32;
  /// Compact-mode merging reconstructs O(n^3) per candidate, so only
  /// the first few stored zones of a bucket are tried.
  static constexpr uint32_t kCompactMergeCandidates = 4;
  static constexpr int kMergeMaxPieces = 32;

  struct Entry {
    uint64_t hash = 0;
    uint32_t key = 0;  ///< intern id of the discrete part
    uint32_t nzones = 0;
    /// Full mode: the bucket's zones in SoA form (8-lane blocks).
    dbm::ZoneBatch zones;
    /// Compact mode: concatenated reduced edge lists, delimited by moffs
    /// (moffs[k] .. moffs[k+1] are zone k's edges; moffs.size() ==
    /// nzones + 1).
    std::vector<dbm::MinimalDbm::Entry> medges;
    std::vector<uint32_t> moffs;
  };

  [[nodiscard]] size_t blockSize() const noexcept {
    return size_t{dim_} * dim_;
  }

  [[nodiscard]] std::span<const dbm::MinimalDbm::Entry> edgeSpan(
      const Entry& e, uint32_t k) const noexcept {
    return {e.medges.data() + e.moffs[k], e.moffs[k + 1] - e.moffs[k]};
  }

  /// stored ⊇ z, answered exactly on the reduced form (the kept edges
  /// dominate z's entries, whose own closure does the rest).
  [[nodiscard]] static bool edgesInclude(
      std::span<const dbm::MinimalDbm::Entry> edges,
      const dbm::Dbm& z) noexcept {
    for (const dbm::MinimalDbm::Entry& e : edges) {
      if (e.bound < z.at(e.i, e.j)) return false;
    }
    return true;
  }

  /// Necessary condition for z ⊇ stored: z dominates every kept edge.
  /// NOT sufficient — the closure of the kept edges can tighten entries
  /// the edge list never mentions below z's — so callers must confirm
  /// with an exact reconstruct-and-include check.
  [[nodiscard]] static bool maybeSubsumedBy(
      const dbm::Dbm& z,
      std::span<const dbm::MinimalDbm::Entry> edges) noexcept {
    for (const dbm::MinimalDbm::Entry& e : edges) {
      if (z.at(e.i, e.j) < e.bound) return false;
    }
    return true;
  }

  [[nodiscard]] const Entry* find(const DiscreteState& d, uint64_t h) const {
    if (entries_.empty()) return nullptr;
    const size_t mask = slotEntry_.size() - 1;
    for (size_t pos = h & mask;; pos = (pos + 1) & mask) {
      ++probeSteps_;
      const uint32_t se = slotEntry_[pos];
      if (se == 0) return nullptr;
      if (slotHash_[pos] == h && interner_->get(entries_[se - 1].key) == d) {
        return &entries_[se - 1];
      }
    }
  }

  [[nodiscard]] Entry& findOrCreate(uint32_t did, uint64_t h) {
    if ((entries_.size() + 1) * 8 >= slotEntry_.size() * 7) growTable();
    const DiscreteState& d = interner_->get(did);
    const size_t mask = slotEntry_.size() - 1;
    size_t pos = h & mask;
    for (;; pos = (pos + 1) & mask) {
      ++probeSteps_;
      const uint32_t se = slotEntry_[pos];
      if (se == 0) break;
      if (slotHash_[pos] == h && interner_->get(entries_[se - 1].key) == d) {
        return entries_[se - 1];
      }
    }
    slotHash_[pos] = h;
    slotEntry_[pos] = static_cast<uint32_t>(entries_.size()) + 1;
    Entry e;
    e.hash = h;
    e.key = did;
    if (compact_) e.moffs.push_back(0);
    entries_.push_back(std::move(e));
    bytes_ += sizeof(Entry) + kEntryOverhead;
    return entries_.back();
  }

  void growTable() {
    const size_t old = slotEntry_.size();
    const size_t next = old == 0 ? 1024 : old * 2;
    slotHash_.assign(next, 0);
    slotEntry_.assign(next, 0);
    bytes_ += (next - old) * (sizeof(uint64_t) + sizeof(uint32_t));
    const size_t mask = next - 1;
    for (size_t k = 0; k < entries_.size(); ++k) {
      size_t pos = entries_[k].hash & mask;
      while (slotEntry_[pos] != 0) pos = (pos + 1) & mask;
      slotHash_[pos] = entries_[k].hash;
      slotEntry_[pos] = static_cast<uint32_t>(k) + 1;
    }
  }

  void insertFull(Entry& e, const dbm::Dbm& z) {
    const size_t zb = blockSize();
    e.zones.init(dim_);
    const dbm::Dbm* add = &z;
    dbm::Dbm merged(1);
    for (bool again = true; again;) {
      again = false;
      if (inclusion_) {
        // Drop stored zones the new one subsumes (one SoA scan;
        // swap-remove keeps the blocks dense).
        const size_t removed = e.zones.pruneSubsets(add->rawData());
        zones_ -= removed;
        bytes_ -= removed * zb * sizeof(dbm::raw_t);
      }
      if (merge_) {
        for (size_t k = 0; k < e.zones.size(); ++k) {
          const dbm::Dbm stored = e.zones.zoneAt(k);
          dbm::Dbm out(1);
          if (dbm::Dbm::tryConvexUnion(stored, *add, &out, kMergeMaxPieces)) {
            e.zones.swapRemove(k);
            --zones_;
            bytes_ -= zb * sizeof(dbm::raw_t);
            ++merges_;
            merged = std::move(out);
            add = &merged;
            // The merged zone strictly grew: re-run pruning and give
            // the remaining zones another merge chance.
            again = true;
            break;
          }
        }
      }
    }
    e.zones.push(*add);
    e.nzones = static_cast<uint32_t>(e.zones.size());
    ++zones_;
    bytes_ += zb * sizeof(dbm::raw_t);
  }

  void insertCompact(Entry& e, const dbm::Dbm& z) {
    const dbm::Dbm* add = &z;
    dbm::Dbm merged(1);
    for (bool again = true; again;) {
      again = false;
      // Symmetric subsumption pruning: edgewise pre-filter, then exact
      // confirmation on the reconstructed zone (see maybeSubsumedBy for
      // why the filter alone would be unsound).
      for (uint32_t k = 0; k < e.nzones;) {
        if (maybeSubsumedBy(*add, edgeSpan(e, k)) &&
            add->includes(dbm::MinimalDbm::reconstruct(dim_, edgeSpan(e, k)))) {
          removeCompactZone(e, k);
        } else {
          ++k;
        }
      }
      if (merge_) {
        const uint32_t limit = std::min(e.nzones, kCompactMergeCandidates);
        for (uint32_t k = 0; k < limit; ++k) {
          const dbm::Dbm stored =
              dbm::MinimalDbm::reconstruct(dim_, edgeSpan(e, k));
          dbm::Dbm out(1);
          if (dbm::Dbm::tryConvexUnion(stored, *add, &out, kMergeMaxPieces)) {
            removeCompactZone(e, k);
            ++merges_;
            merged = std::move(out);
            add = &merged;
            again = true;
            break;
          }
        }
      }
    }
    const dbm::MinimalDbm red = dbm::MinimalDbm::from(*add);
    e.medges.insert(e.medges.end(), red.entries().begin(),
                    red.entries().end());
    e.moffs.push_back(static_cast<uint32_t>(e.medges.size()));
    ++e.nzones;
    ++zones_;
    bytes_ += red.size() * sizeof(dbm::MinimalDbm::Entry) + sizeof(uint32_t);
  }

  void removeCompactZone(Entry& e, uint32_t k) {
    const uint32_t begin = e.moffs[k];
    const uint32_t len = e.moffs[k + 1] - begin;
    e.medges.erase(e.medges.begin() + begin,
                   e.medges.begin() + e.moffs[k + 1]);
    e.moffs.erase(e.moffs.begin() + k + 1);
    for (size_t j = k + 1; j < e.moffs.size(); ++j) e.moffs[j] -= len;
    --e.nzones;
    --zones_;
    bytes_ -= len * sizeof(dbm::MinimalDbm::Entry) + sizeof(uint32_t);
  }

  bool inclusion_;
  bool compact_;
  bool merge_;
  StateInterner* interner_;
  uint32_t dim_ = 0;

  // Open-addressing slot arrays (parallel so probes stream one buffer;
  // power-of-two size, linear probing, grown at 7/8 load).
  std::vector<uint64_t> slotHash_;
  std::vector<uint32_t> slotEntry_;  ///< entry index + 1; 0 = empty
  std::vector<Entry> entries_;

  size_t zones_ = 0;
  size_t bytes_ = 0;
  size_t merges_ = 0;
  // Mutable: covered() is logically const; the sequential engines own
  // the store outright and the sharded wrapper serializes per shard.
  mutable size_t lookups_ = 0;
  mutable size_t probeSteps_ = 0;
};

/// Holzmann-style two-bit bit-state hash table. The words are relaxed
/// atomics so the table can be shared by the work-stealing DFS workers:
/// two threads may both see a state as unseen and both explore it — a
/// benign duplication that cannot flip the (already inconclusive-on-
/// negative) bit-state verdict, and never a data race.
class BitTable {
 public:
  explicit BitTable(uint32_t bits)
      : mask_((size_t{1} << bits) - 1),
        nwords_((size_t{1} << bits) / 64 + 1),
        words_(new std::atomic<uint64_t>[nwords_]) {
    for (size_t i = 0; i < nwords_; ++i) {
      words_[i].store(0, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] bool testAndSet(const SymbolicState& s) {
    // Two probes from independently seeded hashes — see
    // SymbolicState::fullHash2() for why deriving both positions from
    // one hash value would break the two-bit scheme.
    const size_t h1 = s.fullHash() & mask_;
    const size_t h2 = s.fullHash2() & mask_;
    const bool seen = get(h1) && get(h2);
    set(h1);
    set(h2);
    return seen;
  }

  [[nodiscard]] size_t bytes() const noexcept {
    return nwords_ * sizeof(uint64_t);
  }

 private:
  [[nodiscard]] bool get(size_t i) const {
    return (words_[i >> 6].load(std::memory_order_relaxed) >> (i & 63)) & 1;
  }
  void set(size_t i) {
    words_[i >> 6].fetch_or(uint64_t{1} << (i & 63),
                            std::memory_order_relaxed);
  }

  size_t mask_;
  size_t nwords_;
  std::unique_ptr<std::atomic<uint64_t>[]> words_;
};

/// N = 2^shardBits independently-locked PassedStores for the parallel
/// explorer. Lock scope is one shard, so threads working on different
/// discrete-state hash slices never contend. The interner is shared
/// across shards (it has its own internal sharding); interning happens
/// under the store shard's lock only for states that survive the
/// covered check, and the shard-then-interner lock order is acyclic.
class ShardedPassedStore {
 public:
  ShardedPassedStore(uint32_t shardBits, const Options& opts,
                     StateInterner& interner)
      : interner_(&interner), mask_((size_t{1} << shardBits) - 1) {
    const size_t n = size_t{1} << shardBits;
    shards_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      shards_.push_back(std::make_unique<Shard>(opts, interner));
    }
  }

  /// Atomic covered-check + insert under the owning shard's lock.
  /// Returns the interned id of the newly stored state, or
  /// StateInterner::kNoId when it was already covered.
  [[nodiscard]] uint32_t testAndInsert(const SymbolicState& s) {
    const uint64_t h = s.d.hash();
    Shard& sh = *shards_[shardOf(h)];
    std::unique_lock<std::mutex> lk(sh.m, std::try_to_lock);
    if (!lk.owns_lock()) {
      contention_.fetch_add(1, std::memory_order_relaxed);
      lk.lock();
    }
    if (sh.store.coveredHashed(s.d, s.zone, h)) return StateInterner::kNoId;
    const uint32_t id = interner_->intern(s.d, h);
    // Subsumption pruning and merging may shrink the shard's byte
    // count as well as grow it; fold the signed delta into the running
    // total while still holding the lock.
    const size_t before = sh.store.bytes();
    sh.store.insertHashed(id, s.zone, h);
    approxBytes_.fetch_add(sh.store.bytes() - before,
                           std::memory_order_relaxed);
    return id;
  }

  // Aggregates lock shard-by-shard; exact when no insert is racing
  // (the engine reads them at level barriers / after the join).
  [[nodiscard]] size_t bytes() const { return sum(&PassedStore::bytes); }
  [[nodiscard]] size_t states() const { return sum(&PassedStore::states); }
  [[nodiscard]] size_t lookups() const { return sum(&PassedStore::lookups); }
  [[nodiscard]] size_t probeSteps() const {
    return sum(&PassedStore::probeSteps);
  }
  [[nodiscard]] size_t merges() const { return sum(&PassedStore::merges); }

  /// Lock-free running byte total maintained by testAndInsert (unsigned
  /// wraparound makes the shrink deltas of subsumption-removal exact).
  /// The work-stealing DFS consults this on every expansion for its
  /// memory cut-off, where locking all shards via bytes() would
  /// serialize the workers.
  [[nodiscard]] size_t approxBytes() const noexcept {
    return approxBytes_.load(std::memory_order_relaxed);
  }

  /// try_lock failures on the shard locks so far.
  [[nodiscard]] size_t lockContention() const noexcept {
    return contention_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] size_t numShards() const noexcept { return shards_.size(); }

 private:
  // One cache line per shard header so neighbouring locks don't false-share.
  struct alignas(64) Shard {
    Shard(const Options& opts, StateInterner& interner)
        : store(opts, interner) {}
    mutable std::mutex m;
    PassedStore store;
  };

  [[nodiscard]] size_t shardOf(size_t h) const noexcept {
    // The flat table inside each shard consumes the low bits of the
    // same hash; take the shard index from remixed high bits.
    return ((h * 0x9e3779b97f4a7c15ull) >> 32) & mask_;
  }

  [[nodiscard]] size_t sum(size_t (PassedStore::*fn)() const noexcept) const {
    size_t n = 0;
    for (const auto& sh : shards_) {
      std::lock_guard<std::mutex> lk(sh->m);
      n += (sh->store.*fn)();
    }
    return n;
  }

  StateInterner* interner_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<size_t> contention_{0};
  std::atomic<size_t> approxBytes_{0};
  size_t mask_;
};

}  // namespace engine
