// Passed/waiting stores for the reachability engine.
//
// `PassedStore` is UPPAAL's PWList: zones bucketed by discrete state,
// with optional inclusion checking and optional reduced
// ("minimal constraint") zone storage. `BitTable` is Holzmann's
// two-bit bit-state hash table. `ShardedPassedStore` wraps 2^shardBits
// independently-locked PassedStores for the parallel engine: the shard
// is picked from DiscreteState::hash(), so all zones of one discrete
// state land in one shard and the covered-check/insert pair stays
// atomic under that shard's lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dbm/dbm.hpp"
#include "dbm/minimal.hpp"
#include "dbm/pool.hpp"
#include "engine/state.hpp"

namespace engine {

struct DiscreteHash {
  size_t operator()(const DiscreteState& d) const noexcept { return d.hash(); }
};

/// Passed/waiting store with zone-inclusion checking (UPPAAL's PWList).
/// With `compact`, zones are held in reduced minimal-constraint form
/// (the paper's compact data-structure option [9]).
class PassedStore {
 public:
  PassedStore(bool inclusion, bool compact)
      : inclusion_(inclusion || compact), compact_(compact) {}

  [[nodiscard]] bool covered(const SymbolicState& s) const {
    if (compact_) {
      const auto it = compactMap_.find(s.d);
      if (it == compactMap_.end()) return false;
      for (const dbm::MinimalDbm& z : it->second) {
        if (z.includes(s.zone)) return true;
      }
      return false;
    }
    const auto it = map_.find(s.d);
    if (it == map_.end()) return false;
    for (const dbm::Dbm& z : it->second) {
      if (inclusion_ ? z.includes(s.zone) : z == s.zone) return true;
    }
    return false;
  }

  void insert(const SymbolicState& s) {
    if (compact_) {
      auto& zones = compactMap_[s.d];
      if (zones.empty()) bytes_ += s.d.memoryBytes() + kEntryOverhead;
      zones.push_back(dbm::MinimalDbm::from(s.zone));
      bytes_ += zones.back().memoryBytes();
      ++states_;
      return;
    }
    auto& zones = map_[s.d];
    if (zones.empty()) bytes_ += s.d.memoryBytes() + kEntryOverhead;
    if (inclusion_) {
      // Drop stored zones the new one subsumes (recycling their buffers).
      std::erase_if(zones, [&](dbm::Dbm& z) {
        if (s.zone.includes(z)) {
          bytes_ -= z.memoryBytes();
          --states_;
          dbm::ZonePool::recycle(std::move(z));
          return true;
        }
        return false;
      });
    }
    ++states_;
    bytes_ += s.zone.memoryBytes();
    zones.push_back(s.zone);
  }

  [[nodiscard]] size_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] size_t states() const noexcept { return states_; }

 private:
  static constexpr size_t kEntryOverhead = 64;  // hash-map node estimate

  bool inclusion_;
  bool compact_;
  std::unordered_map<DiscreteState, std::vector<dbm::Dbm>, DiscreteHash> map_;
  std::unordered_map<DiscreteState, std::vector<dbm::MinimalDbm>,
                     DiscreteHash>
      compactMap_;
  size_t bytes_ = 0;
  size_t states_ = 0;
};

/// Holzmann-style two-bit bit-state hash table. The words are relaxed
/// atomics so the table can be shared by the work-stealing DFS workers:
/// two threads may both see a state as unseen and both explore it — a
/// benign duplication that cannot flip the (already inconclusive-on-
/// negative) bit-state verdict, and never a data race.
class BitTable {
 public:
  explicit BitTable(uint32_t bits)
      : mask_((size_t{1} << bits) - 1),
        nwords_((size_t{1} << bits) / 64 + 1),
        words_(new std::atomic<uint64_t>[nwords_]) {
    for (size_t i = 0; i < nwords_; ++i) {
      words_[i].store(0, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] bool testAndSet(const SymbolicState& s) {
    // Two probes from independently seeded hashes — see
    // SymbolicState::fullHash2() for why deriving both positions from
    // one hash value would break the two-bit scheme.
    const size_t h1 = s.fullHash() & mask_;
    const size_t h2 = s.fullHash2() & mask_;
    const bool seen = get(h1) && get(h2);
    set(h1);
    set(h2);
    return seen;
  }

  [[nodiscard]] size_t bytes() const noexcept {
    return nwords_ * sizeof(uint64_t);
  }

 private:
  [[nodiscard]] bool get(size_t i) const {
    return (words_[i >> 6].load(std::memory_order_relaxed) >> (i & 63)) & 1;
  }
  void set(size_t i) {
    words_[i >> 6].fetch_or(uint64_t{1} << (i & 63),
                            std::memory_order_relaxed);
  }

  size_t mask_;
  size_t nwords_;
  std::unique_ptr<std::atomic<uint64_t>[]> words_;
};

/// N = 2^shardBits independently-locked PassedStores for the parallel
/// explorer. Lock scope is one shard, so threads working on different
/// discrete-state hash slices never contend.
class ShardedPassedStore {
 public:
  ShardedPassedStore(uint32_t shardBits, bool inclusion, bool compact)
      : mask_((size_t{1} << shardBits) - 1) {
    const size_t n = size_t{1} << shardBits;
    shards_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      shards_.push_back(std::make_unique<Shard>(inclusion, compact));
    }
  }

  /// Atomic covered-check + insert under the owning shard's lock.
  /// Returns true when the state was new (and is now stored).
  [[nodiscard]] bool testAndInsert(const SymbolicState& s) {
    Shard& sh = *shards_[shardOf(s.d.hash())];
    std::unique_lock<std::mutex> lk(sh.m, std::try_to_lock);
    if (!lk.owns_lock()) {
      contention_.fetch_add(1, std::memory_order_relaxed);
      lk.lock();
    }
    if (sh.store.covered(s)) return false;
    // Inclusion-insert may subsume-remove previously stored zones, so
    // the shard's byte count can shrink as well as grow; fold the
    // signed delta into the running total while still holding the lock.
    const size_t before = sh.store.bytes();
    sh.store.insert(s);
    approxBytes_.fetch_add(sh.store.bytes() - before,
                           std::memory_order_relaxed);
    return true;
  }

  // Aggregates lock shard-by-shard; exact when no insert is racing
  // (the engine reads them at level barriers).
  [[nodiscard]] size_t bytes() const {
    size_t b = 0;
    for (const auto& sh : shards_) {
      std::lock_guard<std::mutex> lk(sh->m);
      b += sh->store.bytes();
    }
    return b;
  }

  [[nodiscard]] size_t states() const {
    size_t n = 0;
    for (const auto& sh : shards_) {
      std::lock_guard<std::mutex> lk(sh->m);
      n += sh->store.states();
    }
    return n;
  }

  /// Lock-free running byte total maintained by testAndInsert (unsigned
  /// wraparound makes the shrink deltas of subsumption-removal exact).
  /// The work-stealing DFS consults this on every expansion for its
  /// memory cut-off, where locking all shards via bytes() would
  /// serialize the workers.
  [[nodiscard]] size_t approxBytes() const noexcept {
    return approxBytes_.load(std::memory_order_relaxed);
  }

  /// try_lock failures on the shard locks so far.
  [[nodiscard]] size_t lockContention() const noexcept {
    return contention_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] size_t numShards() const noexcept { return shards_.size(); }

 private:
  // One cache line per shard header so neighbouring locks don't false-share.
  struct alignas(64) Shard {
    Shard(bool inclusion, bool compact) : store(inclusion, compact) {}
    mutable std::mutex m;
    PassedStore store;
  };

  [[nodiscard]] size_t shardOf(size_t h) const noexcept {
    // The unordered_map inside each shard consumes the low bits of the
    // same hash; take the shard index from remixed high bits.
    return ((h * 0x9e3779b97f4a7c15ull) >> 32) & mask_;
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<size_t> contention_{0};
  std::atomic<size_t> approxBytes_{0};
  size_t mask_;
};

}  // namespace engine
