// Parallel depth-first reachability: work-stealing DFS and a seeded
// portfolio race.
//
// Work-stealing mode (`opts.threads > 1`, depth-first order): each
// worker owns a stack of pending frames (a frame = one generated,
// deduplicated state awaiting expansion). The owner pushes and pops at
// the top, so an undisturbed worker explores in exactly the sequential
// depth-first order; an idle worker steals the *oldest* frame from the
// bottom of a victim's stack — the frame closest to the root, i.e. the
// largest unexplored subtree, the classic work-first stealing policy.
// Deduplication goes through the same ShardedPassedStore as parallel
// BFS, so zone-inclusion subsumption is unchanged. Frames are
// arena-allocated per worker and carry parent pointers; publication is
// ordered by the stack mutexes, so a thief always observes fully
// constructed ancestors and trace reconstruction is race-free.
//
// Portfolio mode (`opts.portfolio`): workers run *independent*
// sequential DFS searches — worker 0 with the configured order and
// seed, workers 1.. with kRandomDfs and seeds seed+1, seed+2, ... —
// and race. The first worker with a conclusive verdict (a witness that
// passes the trace validator, or an exhausted state space) wins and
// cancels the rest through a shared flag polled in the DFS loop.
//
// Both modes guarantee *verdict equivalence* with sequential DFS —
// same reachable/exhausted answer — but not trace determinism: which
// witness is found depends on scheduling. Every positive verdict is
// concretized and validated before being returned (see DESIGN.md
// "Parallel depth-first search" for the equivalence argument).
#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <deque>
#include <mutex>
#include <optional>
#include <random>
#include <thread>
#include <vector>

#include "dbm/pool.hpp"
#include "engine/interner.hpp"
#include "engine/passed_store.hpp"
#include "engine/reachability.hpp"
#include "engine/trace.hpp"

namespace engine {

namespace {

using Clock = std::chrono::steady_clock;

/// One deduplicated state awaiting expansion: interned discrete id plus
/// zone (the discrete vectors live once in the run's StateInterner).
/// Immutable once published to a worker stack; parent pointers stay
/// valid for the whole search because the per-worker arenas only grow,
/// and the ids they carry are resolvable by any thread because frames
/// cross threads only through the stack mutexes.
struct DfsNode {
  uint32_t did;
  dbm::Dbm zone;
  Transition via;
  const DfsNode* parent;  ///< nullptr for the initial state
  uint32_t depth;         ///< trace depth (initial state = 1)
};

/// A worker's stack of pending frames. The owner pushes/pops at the
/// back; thieves take from the front (the oldest frame). One mutex per
/// worker keeps the stealing protocol trivially correct — the lock is
/// uncontended unless someone is actually stealing, and expansion cost
/// (successor DBM operations) dwarfs it.
struct alignas(64) WorkerStack {
  std::mutex m;
  std::deque<const DfsNode*> pending;
};

struct WorkerLocal {
  std::deque<DfsNode> arena;  ///< stable addresses; owns this worker's nodes
  size_t explored = 0;
  size_t generated = 0;
  size_t steals = 0;
  size_t peakDepth = 0;
};

SymbolicTrace traceFromChain(const StateInterner& interner,
                             const DfsNode* leaf) {
  std::vector<TraceStep> rev;
  for (const DfsNode* n = leaf; n != nullptr; n = n->parent) {
    rev.push_back(
        TraceStep{n->via, SymbolicState{interner.get(n->did), n->zone}});
  }
  std::reverse(rev.begin(), rev.end());
  SymbolicTrace t;
  t.steps = std::move(rev);
  return t;
}

}  // namespace

Result Reachability::runParallelDfs(const Goal& goal) {
  const size_t nThreads = std::max<size_t>(2, opts_.threads);
  Result res;
  res.stats.perThreadExplored.assign(nThreads, 0);
  const Clock::time_point start = Clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  StateInterner& interner = *interner_;
  ShardedPassedStore passed(opts_.shardBits, opts_, interner);
  std::optional<BitTable> bits;
  if (opts_.bitstateHashing) bits.emplace(opts_.hashBits);
  // testAndSet / testAndInsert both query and mark, atomically enough
  // that no state is expanded twice through the same store entry.
  // Returns the interned id of a freshly claimed state, kNoId when it
  // was already seen (bit-state mode interns explicitly — the bit table
  // holds no ids but the search frames still need one).
  const auto claim = [&](const SymbolicState& s) -> uint32_t {
    if (bits) {
      return bits->testAndSet(s) ? StateInterner::kNoId
                                 : interner.intern(s.d);
    }
    return passed.testAndInsert(s);
  };

  std::vector<WorkerStack> stacks(nThreads);
  std::vector<WorkerLocal> locals(nThreads);

  // Frames enqueued but not yet fully expanded; 0 = search exhausted.
  std::atomic<size_t> pendingCount{0};
  std::atomic<size_t> exploredTotal{0};
  std::atomic<size_t> arenaBytes{0};
  std::atomic<uint8_t> abort{static_cast<uint8_t>(Cutoff::kNone)};
  const auto raiseCutoff = [&](Cutoff c) {
    uint8_t expect = static_cast<uint8_t>(Cutoff::kNone);
    abort.compare_exchange_strong(expect, static_cast<uint8_t>(c),
                                  std::memory_order_relaxed);
  };

  // First goal hit wins; which one that is depends on scheduling
  // (verdict equivalence, not trace determinism).
  std::mutex goalMutex;
  std::atomic<bool> goalFound{false};
  SymbolicTrace goalTrace;
  const auto reportGoal = [&](const DfsNode* parent, Successor* last) {
    std::lock_guard<std::mutex> lk(goalMutex);
    if (goalFound.load(std::memory_order_relaxed)) return;
    if (last != nullptr) {
      DfsNode leaf{interner.intern(last->state.d), std::move(last->state.zone),
                   std::move(last->via), parent,
                   parent == nullptr ? 1 : parent->depth + 1};
      goalTrace = traceFromChain(interner, &leaf);
    } else {
      goalTrace = traceFromChain(interner, parent);
    }
    goalFound.store(true, std::memory_order_release);
  };

  const auto stopping = [&] {
    return goalFound.load(std::memory_order_relaxed) ||
           abort.load(std::memory_order_relaxed) !=
               static_cast<uint8_t>(Cutoff::kNone);
  };

  const auto finish = [&](Cutoff c, bool exhausted) {
    res.stats.cutoff = c;
    res.exhausted = exhausted && c == Cutoff::kNone && !bits;
    res.stats.seconds = elapsed();
    res.stats.statesStored = bits ? 0 : passed.states();
    res.stats.lockContention = passed.lockContention();
    res.stats.storeLookups = passed.lookups();
    res.stats.storeProbeSteps = passed.probeSteps();
    res.stats.zonesMerged = passed.merges();
    res.stats.storeBytes = passed.bytes();
    // The node arenas only grow, so the final byte count doubles as the
    // high-water mark.
    res.stats.bytesStored = arenaBytes.load(std::memory_order_relaxed) +
                            interner.bytes() +
                            (bits ? bits->bytes() : passed.bytes());
    res.stats.peakBytes = res.stats.bytesStored;
    for (size_t tid = 0; tid < nThreads; ++tid) {
      const WorkerLocal& l = locals[tid];
      res.stats.perThreadExplored[tid] = l.explored;
      res.stats.statesExplored += l.explored;
      res.stats.statesGenerated += l.generated;
      res.stats.frameSteals += l.steals;
      res.stats.peakStackDepth = std::max(res.stats.peakStackDepth,
                                          l.peakDepth);
    }
    return res;
  };

  SymbolicState init = gen_.initial();
  if (init.zone.isEmpty()) {
    // A lifted initial state (System::setClockInit) violated an
    // invariant: nothing is reachable.
    return finish(Cutoff::kNone, true);
  }
  if (!goal.deadlock && goal.matches(sys_, init)) {
    locals[0].arena.push_back(DfsNode{interner.intern(init.d),
                                      std::move(init.zone), Transition{},
                                      nullptr, 1});
    res.reachable = true;
    res.trace = traceFromChain(interner, &locals[0].arena.back());
    return finish(Cutoff::kNone, false);
  }
  const uint32_t initId = claim(init);
  assert(initId != StateInterner::kNoId);
  arenaBytes.fetch_add(init.zone.memoryBytes() + sizeof(DfsNode),
                       std::memory_order_relaxed);
  locals[0].arena.push_back(
      DfsNode{initId, std::move(init.zone), Transition{}, nullptr, 1});
  locals[0].peakDepth = 1;
  stacks[0].pending.push_back(&locals[0].arena.back());
  pendingCount.store(1, std::memory_order_relaxed);

  const auto work = [&](size_t tid) {
    WorkerLocal& local = locals[tid];
    std::mt19937_64 rng(opts_.seed + tid);
    size_t victim = (tid + 1) % nThreads;

    const auto popOwn = [&]() -> const DfsNode* {
      std::lock_guard<std::mutex> lk(stacks[tid].m);
      if (stacks[tid].pending.empty()) return nullptr;
      const DfsNode* n = stacks[tid].pending.back();
      stacks[tid].pending.pop_back();
      return n;
    };
    // Steal the oldest pending frame of the next victim that has one.
    const auto steal = [&]() -> const DfsNode* {
      for (size_t k = 0; k < nThreads - 1; ++k) {
        WorkerStack& vs = stacks[victim];
        victim = (victim + 1) % nThreads;
        if (victim == tid) victim = (victim + 1) % nThreads;
        std::lock_guard<std::mutex> lk(vs.m);
        if (vs.pending.empty()) continue;
        const DfsNode* n = vs.pending.front();
        vs.pending.pop_front();
        ++local.steals;
        return n;
      }
      return nullptr;
    };

    while (!stopping()) {
      const DfsNode* node = popOwn();
      if (node == nullptr) node = steal();
      if (node == nullptr) {
        if (pendingCount.load(std::memory_order_acquire) == 0) return;
        std::this_thread::yield();
        continue;
      }

      ++local.explored;
      const size_t total =
          exploredTotal.fetch_add(1, std::memory_order_relaxed) + 1;
      if (opts_.maxStates != 0 && total > opts_.maxStates) {
        raiseCutoff(Cutoff::kStates);
      }
      if (opts_.maxSeconds > 0.0 && (local.explored & 15) == 0 &&
          elapsed() > opts_.maxSeconds) {
        raiseCutoff(Cutoff::kTime);
      }

      const DiscreteState& nodeD = interner.get(node->did);
      std::vector<Successor> succs = gen_.successors(nodeD, node->zone);
      if (goal.deadlock && succs.empty() &&
          goal.matches(sys_, nodeD, node->zone)) {
        reportGoal(node, nullptr);
      }
      if (opts_.order == SearchOrder::kRandomDfs) {
        std::shuffle(succs.begin(), succs.end(), rng);
      } else if (opts_.dfsReverse) {
        std::reverse(succs.begin(), succs.end());
      }

      // Push in reverse so the first successor in search order is on
      // top of the stack — an undisturbed worker explores depth-first
      // in exactly the sequential order.
      std::vector<const DfsNode*> fresh;
      fresh.reserve(succs.size());
      for (Successor& suc : succs) {
        if (stopping()) break;
        ++local.generated;
        if (!goal.deadlock && goal.matches(sys_, suc.state)) {
          reportGoal(node, &suc);
          break;
        }
        const uint32_t id = claim(suc.state);
        if (id == StateInterner::kNoId) {
          dbm::ZonePool::recycle(std::move(suc.state.zone));
          continue;
        }
        const size_t nb =
            arenaBytes.fetch_add(suc.state.zone.memoryBytes() +
                                     sizeof(DfsNode) + sizeof(const DfsNode*),
                                 std::memory_order_relaxed);
        if (opts_.maxMemoryBytes != 0 &&
            nb + interner.bytes() +
                    (bits ? bits->bytes() : passed.approxBytes()) >
                opts_.maxMemoryBytes) {
          raiseCutoff(Cutoff::kMemory);
        }
        local.arena.push_back(DfsNode{id, std::move(suc.state.zone),
                                      std::move(suc.via), node,
                                      node->depth + 1});
        local.peakDepth = std::max<size_t>(local.peakDepth, node->depth + 1);
        fresh.push_back(&local.arena.back());
      }
      if (!fresh.empty()) {
        pendingCount.fetch_add(fresh.size(), std::memory_order_relaxed);
        std::lock_guard<std::mutex> lk(stacks[tid].m);
        for (size_t k = fresh.size(); k-- > 0;) {
          stacks[tid].pending.push_back(fresh[k]);
        }
      }
      // Publish this frame's completion only after its children are
      // visible: a worker observing pendingCount == 0 must be able to
      // conclude the whole search space is drained.
      pendingCount.fetch_sub(1, std::memory_order_release);
    }
  };

  {
    std::vector<std::thread> pool;
    pool.reserve(nThreads - 1);
    for (size_t tid = 1; tid < nThreads; ++tid) pool.emplace_back(work, tid);
    work(0);
    for (std::thread& t : pool) t.join();
  }

  if (goalFound.load(std::memory_order_acquire)) {
    res.reachable = true;
    res.trace = std::move(goalTrace);
    // The tentpole guarantee: a positive parallel verdict must survive
    // the independent trace validator before being reported.
    std::string err;
    const auto ct = concretize(sys_, res.trace, &err);
    const bool valid = ct.has_value() && validate(sys_, *ct, &err);
    assert(valid && "parallel DFS produced an invalid witness");
    if (!valid) {
      // Engine bug: refuse to report an unvalidated witness. Surface it
      // as a time-like abort rather than a (wrong) negative verdict.
      res.reachable = false;
      res.trace.steps.clear();
      return finish(Cutoff::kTime, false);
    }
    return finish(Cutoff::kNone, false);
  }
  const Cutoff aborted =
      static_cast<Cutoff>(abort.load(std::memory_order_relaxed));
  if (aborted != Cutoff::kNone) return finish(aborted, false);
  return finish(Cutoff::kNone, true);
}

Result Reachability::runPortfolioDfs(const Goal& goal) {
  const size_t nThreads = std::max<size_t>(2, opts_.threads);
  const Clock::time_point start = Clock::now();

  std::atomic<bool> cancel{false};
  std::atomic<int> winner{-1};
  std::vector<Result> results(nThreads);
  std::vector<uint8_t> conclusive(nThreads, 0);

  const auto work = [&](size_t tid) {
    Options o = opts_;
    o.threads = 1;
    o.portfolio = false;
    o.seed = opts_.seed + tid;
    // Worker 0 runs the configured search unchanged (the portfolio is
    // never worse than the sequential heuristic); the rest diversify
    // with the seeded random order.
    if (tid > 0) {
      o.order = SearchOrder::kRandomDfs;
      o.dfsReverse = false;
    }
    Result r = dfsCore(goal, o, &cancel);
    if (r.stats.cutoff == Cutoff::kNone && (r.reachable || r.exhausted)) {
      bool valid = true;
      if (r.reachable) {
        // Only a witness that survives concretization + validation may
        // win the race.
        std::string err;
        const auto ct = concretize(sys_, r.trace, &err);
        valid = ct.has_value() && validate(sys_, *ct, &err);
        assert(valid && "portfolio worker produced an invalid witness");
      }
      if (valid) {
        conclusive[tid] = 1;
        int expect = -1;
        if (winner.compare_exchange_strong(expect, static_cast<int>(tid))) {
          cancel.store(true, std::memory_order_relaxed);
        }
      }
    }
    results[tid] = std::move(r);
  };

  {
    std::vector<std::thread> pool;
    pool.reserve(nThreads - 1);
    for (size_t tid = 1; tid < nThreads; ++tid) pool.emplace_back(work, tid);
    work(0);
    for (std::thread& t : pool) t.join();
  }

  // The winner's verdict is the portfolio's verdict. With no winner
  // every worker was inconclusive (cut off, or a completed bit-state
  // search); report worker 0's outcome as representative.
  const int win = winner.load(std::memory_order_relaxed);
  Result res = std::move(results[static_cast<size_t>(win < 0 ? 0 : win)]);
  res.stats.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Aggregate the race statistics across workers.
  res.stats.perThreadExplored.assign(nThreads, 0);
  res.stats.statesExplored = 0;
  res.stats.statesGenerated = 0;
  res.stats.statesStored = 0;
  res.stats.bytesStored = 0;
  res.stats.peakBytes = 0;
  res.stats.peakStackDepth = 0;
  res.stats.storeLookups = 0;
  res.stats.storeProbeSteps = 0;
  res.stats.zonesMerged = 0;
  res.stats.storeBytes = 0;
  for (size_t tid = 0; tid < nThreads; ++tid) {
    const Stats& s = results[tid].stats;
    res.stats.perThreadExplored[tid] = s.statesExplored;
    res.stats.statesExplored += s.statesExplored;
    res.stats.statesGenerated += s.statesGenerated;
    res.stats.statesStored += s.statesStored;
    res.stats.bytesStored += s.bytesStored;
    res.stats.storeLookups += s.storeLookups;
    res.stats.storeProbeSteps += s.storeProbeSteps;
    res.stats.zonesMerged += s.zonesMerged;
    res.stats.storeBytes += s.storeBytes;
    // The workers run concurrently, so the portfolio's true high-water
    // mark is close to the sum of the per-worker peaks.
    res.stats.peakBytes += s.peakBytes;
    res.stats.peakStackDepth =
        std::max(res.stats.peakStackDepth, s.peakStackDepth);
    if (static_cast<int>(tid) != win &&
        (s.cutoff == Cutoff::kCancelled ||
         (conclusive[tid] != 0 && win >= 0))) {
      ++res.stats.cancelledWorkers;
    }
  }
  return res;
}

}  // namespace engine
