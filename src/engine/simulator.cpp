#include "engine/simulator.hpp"

#include <algorithm>
#include <limits>

namespace engine {

namespace {

constexpr int64_t kUnbounded = std::numeric_limits<int64_t>::max() / 4;

}  // namespace

Simulator::Simulator(const ta::System& sys)
    : sys_(sys),
      gen_(sys, opts_),
      vars_(sys.initialVars()),
      clocks_(sys.dbmDimension(), 0) {
  for (uint32_t c = 1; c < sys.dbmDimension(); ++c) {
    clocks_[c] = sys.initialClock(static_cast<ta::ClockId>(c));
  }
  locs_.reserve(sys.numAutomata());
  for (size_t p = 0; p < sys.numAutomata(); ++p) {
    locs_.push_back(sys.automaton(static_cast<ta::ProcId>(p)).initial());
  }
}

void Simulator::restore(const Snapshot& s) {
  locs_ = s.locs;
  vars_ = s.vars;
  clocks_ = s.clocks;
  now_ = s.now;
}

bool Simulator::delayAllowed(int64_t d) const {
  if (d < 0) return false;
  for (size_t p = 0; p < locs_.size(); ++p) {
    const ta::Location& l =
        sys_.automaton(static_cast<ta::ProcId>(p)).location(locs_[p]);
    if ((l.urgent || l.committed) && d > 0) return false;
    for (const ta::ClockConstraint& cc : l.invariant) {
      if (cc.i == 0 || cc.j != 0) continue;  // only upper bounds move
      const int64_t val = dbm::boundValue(cc.bound);
      const int64_t lhs = clocks_[static_cast<size_t>(cc.i)] + d;
      if (dbm::isStrict(cc.bound) ? lhs >= val : lhs > val) return false;
    }
  }
  return true;
}

std::optional<int64_t> Simulator::maxDelay() const {
  int64_t hi = kUnbounded;
  for (size_t p = 0; p < locs_.size(); ++p) {
    const ta::Location& l =
        sys_.automaton(static_cast<ta::ProcId>(p)).location(locs_[p]);
    if (l.urgent || l.committed) return 0;
    for (const ta::ClockConstraint& cc : l.invariant) {
      if (cc.i == 0 || cc.j != 0) continue;
      const int64_t val = dbm::boundValue(cc.bound);
      hi = std::min(hi, val - clocks_[static_cast<size_t>(cc.i)] -
                            (dbm::isStrict(cc.bound) ? 1 : 0));
    }
  }
  if (hi >= kUnbounded) return std::nullopt;
  return std::max<int64_t>(hi, 0);
}

std::vector<EnabledTransition> Simulator::enabled() const {
  std::vector<EnabledTransition> out;

  // Delay window [lo, hi] for a candidate's clock guards under the
  // current invariants; nullopt = infeasible.
  const auto window = [&](const std::vector<TransitionPart>& parts)
      -> std::optional<std::pair<int64_t, int64_t>> {
    int64_t lo = 0;
    int64_t hi = kUnbounded;
    if (const auto md = maxDelay(); md.has_value()) hi = *md;
    for (const TransitionPart& part : parts) {
      const ta::Edge& e =
          sys_.automaton(part.proc).edges()[static_cast<size_t>(part.edge)];
      if (!sys_.pool().evalBool(e.guard, vars_)) return std::nullopt;
      for (const ta::ClockConstraint& cc : e.clockGuard) {
        const int64_t val = dbm::boundValue(cc.bound);
        const bool strict = dbm::isStrict(cc.bound);
        if (cc.i != 0 && cc.j != 0) {
          const int64_t diff = clocks_[static_cast<size_t>(cc.i)] -
                               clocks_[static_cast<size_t>(cc.j)];
          if (strict ? diff >= val : diff > val) return std::nullopt;
        } else if (cc.j == 0) {
          hi = std::min(hi, val - clocks_[static_cast<size_t>(cc.i)] -
                                (strict ? 1 : 0));
        } else {
          lo = std::max(lo, -val - clocks_[static_cast<size_t>(cc.j)] +
                                (strict ? 1 : 0));
        }
      }
    }
    if (lo > hi) return std::nullopt;
    return std::make_pair(lo, hi);
  };

  const auto push = [&](std::vector<TransitionPart> parts) {
    const auto w = window(parts);
    if (!w.has_value()) return;
    EnabledTransition et;
    et.via.parts = std::move(parts);
    et.label = gen_.label(et.via);
    et.earliestDelay = w->first;
    if (w->second < kUnbounded) et.latestDelay = w->second;
    out.push_back(std::move(et));
  };

  bool anyCommitted = false;
  for (size_t p = 0; p < locs_.size(); ++p) {
    anyCommitted =
        anyCommitted ||
        sys_.automaton(static_cast<ta::ProcId>(p)).location(locs_[p]).committed;
  }
  const auto committedOk = [&](std::initializer_list<ta::ProcId> procs) {
    if (!anyCommitted) return true;
    for (const ta::ProcId p : procs) {
      if (sys_.automaton(p).location(locs_[static_cast<size_t>(p)]).committed)
        return true;
    }
    return false;
  };

  const auto numProcs = static_cast<ta::ProcId>(sys_.numAutomata());
  for (ta::ProcId p = 0; p < numProcs; ++p) {
    const ta::Automaton& a = sys_.automaton(p);
    for (int32_t ei : a.outgoing(locs_[static_cast<size_t>(p)])) {
      const ta::Edge& e = a.edges()[static_cast<size_t>(ei)];
      switch (e.sync) {
        case ta::Sync::kNone:
          if (committedOk({p})) push({{p, ei}});
          break;
        case ta::Sync::kSend:
          if (sys_.channelKind(e.chan) == ta::ChanKind::kBinary) {
            for (const auto& [q, ej] : sys_.receivers(e.chan)) {
              if (q == p) continue;
              const ta::Edge& r =
                  sys_.automaton(q).edges()[static_cast<size_t>(ej)];
              if (r.src != locs_[static_cast<size_t>(q)]) continue;
              if (committedOk({p, q})) push({{p, ei}, {q, ej}});
            }
          } else {
            std::vector<TransitionPart> parts{{p, ei}};
            for (const auto& [q, ej] : sys_.receivers(e.chan)) {
              if (q == p) continue;
              const ta::Edge& r =
                  sys_.automaton(q).edges()[static_cast<size_t>(ej)];
              if (r.src != locs_[static_cast<size_t>(q)]) continue;
              if (!sys_.pool().evalBool(r.guard, vars_)) continue;
              // First enabled receive per process (as in the engine).
              const bool already =
                  std::any_of(parts.begin() + 1, parts.end(),
                              [&, q = q](const TransitionPart& tp) {
                                return tp.proc == q;
                              });
              if (!already) parts.push_back({q, ej});
            }
            if (committedOk({p})) push(std::move(parts));
          }
          break;
        case ta::Sync::kReceive:
          break;
      }
    }
  }
  return out;
}

bool Simulator::delay(int64_t d) {
  if (d == 0) return true;
  if (!delayAllowed(d)) return false;
  history_.push_back(snapshot());
  for (size_t c = 1; c < clocks_.size(); ++c) clocks_[c] += d;
  now_ += d;
  return true;
}

void Simulator::applyParts(const Transition& via) {
  for (const TransitionPart& part : via.parts) {
    const ta::Edge& e =
        sys_.automaton(part.proc).edges()[static_cast<size_t>(part.edge)];
    for (const ta::Assign& as : e.assigns) {
      const int64_t rhs = sys_.pool().eval(as.rhs, vars_);
      int64_t idx = 0;
      if (as.index != ta::kNoExpr) {
        idx = sys_.pool().eval(as.index, vars_);
      }
      vars_[static_cast<size_t>(as.base + idx)] = static_cast<int32_t>(rhs);
    }
    for (const ta::ClockReset& r : e.resets) {
      clocks_[static_cast<size_t>(r.clock)] = r.value;
    }
    locs_[static_cast<size_t>(part.proc)] = e.dst;
  }
}

bool Simulator::fire(size_t index) {
  const std::vector<EnabledTransition> opts = enabled();
  if (index >= opts.size()) return false;
  const EnabledTransition& et = opts[index];
  history_.push_back(snapshot());
  for (size_t c = 1; c < clocks_.size(); ++c) clocks_[c] += et.earliestDelay;
  now_ += et.earliestDelay;
  applyParts(et.via);
  return true;
}

bool Simulator::fireLabeled(const std::string& label) {
  const std::vector<EnabledTransition> opts = enabled();
  for (size_t i = 0; i < opts.size(); ++i) {
    if (opts[i].label == label) return fire(i);
  }
  return false;
}

bool Simulator::undo() {
  if (history_.empty()) return false;
  restore(history_.back());
  history_.pop_back();
  return true;
}

void Simulator::reset() {
  while (undo()) {
  }
}

std::string Simulator::describe() const {
  std::string out;
  for (size_t p = 0; p < locs_.size(); ++p) {
    const ta::Automaton& a = sys_.automaton(static_cast<ta::ProcId>(p));
    if (p > 0) out += " ";
    out += a.name() + "." + a.location(locs_[p]).name;
  }
  out += " |";
  for (size_t v = 0; v < vars_.size(); ++v) {
    out += " " + sys_.varName(static_cast<ta::VarId>(v)) + "=" +
           std::to_string(vars_[v]);
  }
  out += " |";
  for (uint32_t c = 1; c < sys_.dbmDimension(); ++c) {
    out += " " + sys_.clockName(static_cast<ta::ClockId>(c)) + "=" +
           std::to_string(clocks_[c]);
  }
  out += " @t=" + std::to_string(now_);
  return out;
}

}  // namespace engine
