#include "engine/successors.hpp"

#include <algorithm>
#include <cassert>

#include "dbm/pool.hpp"

namespace engine {

namespace {

/// True if any location in the vector forbids delay.
bool delayForbidden(const ta::System& sys, const DiscreteState& d) {
  for (size_t p = 0; p < d.locs.size(); ++p) {
    const ta::Location& l =
        sys.automaton(static_cast<ta::ProcId>(p)).location(d.locs[p]);
    if (l.urgent || l.committed) return true;
  }
  return false;
}

bool anyCommitted(const ta::System& sys, const DiscreteState& d) {
  for (size_t p = 0; p < d.locs.size(); ++p) {
    if (sys.automaton(static_cast<ta::ProcId>(p)).location(d.locs[p]).committed)
      return true;
  }
  return false;
}

}  // namespace

SuccessorGenerator::SuccessorGenerator(const ta::System& sys,
                                       const Options& opts)
    : sys_(sys),
      opts_(opts),
      protected_(sys.dbmDimension(), false),
      maxBounds_(sys.maxBounds()),
      baseLower_(sys.dbmDimension(), -1),
      baseUpper_(sys.dbmDimension(), -1) {
  assert(sys.finalized() && "System::finalize() must run before the engine");
  baseLower_[0] = 0;
  baseUpper_[0] = 0;
  if (opts_.extrapolation == Extrapolation::kLocationM ||
      opts_.extrapolation == Extrapolation::kLocationLUPlus) {
    lu_ = ta::analyzeClockBounds(sys);
  }
}

void SuccessorGenerator::collectLU(const DiscreteState& d,
                                   std::vector<dbm::value_t>& lower,
                                   std::vector<dbm::value_t>& upper) const {
  lower.assign(baseLower_.begin(), baseLower_.end());
  upper.assign(baseUpper_.begin(), baseUpper_.end());
  for (size_t p = 0; p < d.locs.size(); ++p) {
    for (const ta::ClockLU& e :
         lu_.at(static_cast<ta::ProcId>(p), d.locs[p])) {
      auto& l = lower[static_cast<size_t>(e.clock)];
      l = std::max(l, e.lower);
      auto& u = upper[static_cast<size_t>(e.clock)];
      u = std::max(u, e.upper);
    }
  }
}

bool SuccessorGenerator::applyInvariants(SymbolicState& s) const {
  for (size_t p = 0; p < s.d.locs.size(); ++p) {
    const ta::Location& l =
        sys_.automaton(static_cast<ta::ProcId>(p)).location(s.d.locs[p]);
    for (const ta::ClockConstraint& cc : l.invariant) {
      if (!s.zone.constrain(static_cast<uint32_t>(cc.i),
                            static_cast<uint32_t>(cc.j), cc.bound)) {
        return false;
      }
    }
  }
  return true;
}

bool SuccessorGenerator::normalize(SymbolicState& s) const {
  if (s.zone.isEmpty()) return false;
  if (!delayForbidden(sys_, s.d)) {
    s.zone.up();
    if (!applyInvariants(s)) return false;
  }
  if (opts_.activeClockReduction) {
    // A clock inactive in every process's current location is reset
    // before it is next tested, so its value is irrelevant: free it to
    // merge states that differ only in dead clock values.
    // (Thread-local scratch: normalize runs once per generated state.)
    thread_local std::vector<char> active;
    active.assign(sys_.dbmDimension(), 0);
    active[0] = 1;
    for (size_t p = 0; p < s.d.locs.size(); ++p) {
      const ta::Automaton& a = sys_.automaton(static_cast<ta::ProcId>(p));
      for (ta::ClockId c : a.activeClocks(s.d.locs[p])) {
        active[static_cast<size_t>(c)] = 1;
      }
    }
    size_t freed = 0;
    for (uint32_t c = 1; c < sys_.dbmDimension(); ++c) {
      if (active[c] == 0 && !protected_[c]) {
        s.zone.freeClock(c);
        ++freed;
      }
    }
    if (freed != 0) clocksFreed_.fetch_add(freed, std::memory_order_relaxed);
  }
  switch (opts_.extrapolation) {
    case Extrapolation::kNone:
      break;
    case Extrapolation::kGlobalM:
      if (s.zone.extrapolateMaxBounds(maxBounds_)) {
        coarsenings_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case Extrapolation::kLocationM: {
      thread_local std::vector<dbm::value_t> lower, upper, m;
      collectLU(s.d, lower, upper);
      m.resize(lower.size());
      for (size_t c = 0; c < lower.size(); ++c) {
        m[c] = std::max(lower[c], upper[c]);
      }
      if (s.zone.extrapolateMaxBounds(m)) {
        coarsenings_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    case Extrapolation::kLocationLUPlus: {
      thread_local std::vector<dbm::value_t> lower, upper;
      collectLU(s.d, lower, upper);
      if (s.zone.extrapolateLUBounds(lower, upper)) {
        coarsenings_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
  }
  return !s.zone.isEmpty();
}

SymbolicState SuccessorGenerator::initial() const {
  const uint32_t dim = sys_.dbmDimension();
  SymbolicState s{DiscreteState{}, dbm::Dbm::zero(dim)};
  if (sys_.hasNonzeroClockInit()) {
    // Lifted mid-run start (System::setClockInit): the point valuation
    // with each clock at its configured value instead of the origin.
    s.zone = dbm::Dbm::unconstrained(dim);
    for (uint32_t c = 1; c < dim; ++c) {
      const dbm::value_t v = sys_.initialClock(static_cast<ta::ClockId>(c));
      s.zone.constrainUpper(c, v, /*strict=*/false);
      s.zone.constrainLower(c, v, /*strict=*/false);
    }
  }
  s.d.locs.reserve(sys_.numAutomata());
  for (size_t p = 0; p < sys_.numAutomata(); ++p) {
    s.d.locs.push_back(sys_.automaton(static_cast<ta::ProcId>(p)).initial());
  }
  s.d.vars = sys_.initialVars();
  const bool ok = applyInvariants(s) && normalize(s);
  // A zero-origin start always satisfies the invariants (models are
  // built that way); a lifted one may not — the caller sees the empty
  // zone and reports the goal unreachable.
  assert((ok || sys_.hasNonzeroClockInit()) &&
         "initial state violates invariants");
  if (!ok) s.zone.setEmpty();
  return s;
}

void SuccessorGenerator::tryFire(const DiscreteState& d,
                                 const dbm::Dbm& zone,
                                 const std::vector<TransitionPart>& parts,
                                 std::vector<Successor>& out) const {
  // 1. Integer guards — all evaluated against the pre-state valuation.
  for (const TransitionPart& part : parts) {
    const ta::Edge& e =
        sys_.automaton(part.proc).edges()[static_cast<size_t>(part.edge)];
    if (!sys_.pool().evalBool(e.guard, d.vars)) return;
  }

  // The candidate zone comes from (and, on rejection, returns to) the
  // thread-local pool: most attempts die on a guard or invariant, and
  // this is the allocation hot path of the whole search.
  SymbolicState next{d, dbm::ZonePool::copyOf(zone)};
  const auto reject = [&next] {
    dbm::ZonePool::recycle(std::move(next.zone));
  };

  // 2. Clock guards.
  for (const TransitionPart& part : parts) {
    const ta::Edge& e =
        sys_.automaton(part.proc).edges()[static_cast<size_t>(part.edge)];
    for (const ta::ClockConstraint& cc : e.clockGuard) {
      if (!next.zone.constrain(static_cast<uint32_t>(cc.i),
                               static_cast<uint32_t>(cc.j), cc.bound)) {
        reject();
        return;
      }
    }
  }

  // 3. Assignments (sender first, sequential semantics) and resets.
  for (const TransitionPart& part : parts) {
    const ta::Edge& e =
        sys_.automaton(part.proc).edges()[static_cast<size_t>(part.edge)];
    for (const ta::Assign& as : e.assigns) {
      const int64_t rhs = sys_.pool().eval(as.rhs, next.d.vars);
      int64_t idx = 0;
      if (as.index != ta::kNoExpr) {
        idx = sys_.pool().eval(as.index, next.d.vars);
        if (idx < 0 || idx >= as.arraySize) {
          assert(false && "assignment index out of bounds");
          reject();
          return;
        }
      }
      next.d.vars[static_cast<size_t>(as.base + idx)] =
          static_cast<int32_t>(rhs);
    }
    for (const ta::ClockReset& r : e.resets) {
      next.zone.reset(static_cast<uint32_t>(r.clock), r.value);
    }
    next.d.locs[static_cast<size_t>(part.proc)] = e.dst;
  }

  // 4. Target invariants, then delay/reduce/extrapolate.
  if (!applyInvariants(next) || !normalize(next)) {
    reject();
    return;
  }

  out.push_back(Successor{std::move(next), Transition{parts}});
}

std::vector<Successor> SuccessorGenerator::successors(
    const DiscreteState& d, const dbm::Dbm& zone) const {
  std::vector<Successor> out;
  const bool committedPhase = anyCommitted(sys_, d);
  const auto locCommitted = [&](ta::ProcId p) {
    return sys_.automaton(p).location(d.locs[static_cast<size_t>(p)])
        .committed;
  };

  const auto numProcs = static_cast<ta::ProcId>(sys_.numAutomata());
  for (ta::ProcId p = 0; p < numProcs; ++p) {
    const ta::Automaton& a = sys_.automaton(p);
    for (int32_t ei : a.outgoing(d.locs[static_cast<size_t>(p)])) {
      const ta::Edge& e = a.edges()[static_cast<size_t>(ei)];
      switch (e.sync) {
        case ta::Sync::kNone: {
          if (committedPhase && !locCommitted(p)) break;
          tryFire(d, zone, {{p, ei}}, out);
          break;
        }
        case ta::Sync::kSend: {
          if (sys_.channelKind(e.chan) == ta::ChanKind::kBinary) {
            for (const auto& [q, ej] : sys_.receivers(e.chan)) {
              if (q == p) continue;
              const ta::Edge& r =
                  sys_.automaton(q).edges()[static_cast<size_t>(ej)];
              if (r.src != d.locs[static_cast<size_t>(q)]) continue;
              if (committedPhase && !locCommitted(p) && !locCommitted(q))
                continue;
              tryFire(d, zone, {{p, ei}, {q, ej}}, out);
            }
          } else {
            // Broadcast: the sender fires unconditionally (given its own
            // guards); every other process with an enabled receive edge
            // joins (first enabled edge per process). Clock guards on
            // broadcast receivers are not supported (as in UPPAAL).
            std::vector<TransitionPart> parts{{p, ei}};
            bool receiversCommitted = false;
            for (ta::ProcId q = 0; q < numProcs; ++q) {
              if (q == p) continue;
              const ta::Automaton& b = sys_.automaton(q);
              for (int32_t ej : b.outgoing(d.locs[static_cast<size_t>(q)])) {
                const ta::Edge& r = b.edges()[static_cast<size_t>(ej)];
                if (r.sync != ta::Sync::kReceive || r.chan != e.chan) continue;
                assert(r.clockGuard.empty() &&
                       "clock guards on broadcast receivers are unsupported");
                if (!sys_.pool().evalBool(r.guard, d.vars)) continue;
                parts.push_back({q, ej});
                receiversCommitted = receiversCommitted || locCommitted(q);
                break;
              }
            }
            if (committedPhase && !locCommitted(p) && !receiversCommitted)
              break;
            tryFire(d, zone, parts, out);
          }
          break;
        }
        case ta::Sync::kReceive:
          break;  // handled from the sender's side
      }
    }
  }
  return out;
}

std::string SuccessorGenerator::label(const Transition& t) const {
  if (t.parts.empty()) return "(initial)";
  std::string out;
  for (size_t k = 0; k < t.parts.size(); ++k) {
    const TransitionPart& part = t.parts[k];
    const ta::Automaton& a = sys_.automaton(part.proc);
    const ta::Edge& e = a.edges()[static_cast<size_t>(part.edge)];
    if (k > 0) out += "/";
    if (e.label.empty()) {
      out += a.name() + "." + a.location(e.src).name + "->" +
             a.location(e.dst).name;
    } else if (e.label.find('.') != std::string::npos) {
      out += e.label;  // already fully qualified ("Unit.Command")
    } else {
      out += a.name() + "." + e.label;
    }
  }
  return out;
}

}  // namespace engine
