// Glue between the engines and the pre-exploration optimizer
// (ta/ir.hpp): derive the pins a goal imposes, remap the goal onto the
// optimized system, and re-express a witness trace on the original
// system so concretization and validation run against the model the
// caller actually built.
//
// Reachability::run and BestFirst::run call optimizeForGoal lazily —
// the pins are goal-dependent, so the optimized system cannot be built
// at model-construction time. When the pipeline finds nothing to do
// (changed() == false) the engines fall through to the original system
// and behave bit-for-bit as at optLevel 0.
#pragma once

#include <utility>
#include <vector>

#include "engine/reachability.hpp"
#include "engine/stats.hpp"
#include "ta/ir.hpp"

namespace engine::opt_bridge {

/// Run the pass pipeline for one goal. `allowCompose` lets the
/// best-first engine veto pairwise composition when soft guides are
/// active (penalties match per-edge labels, which fusion concatenates);
/// `extraPinnedLocations` pins heuristic-target locations so the
/// remaining-time analysis keeps its anchors.
[[nodiscard]] ta::OptimizedModel optimizeForGoal(
    const ta::System& sys, const Goal& goal, int optLevel,
    bool allowCompose = true,
    const std::vector<std::pair<ta::ProcId, ta::LocId>>& extraPinnedLocations =
        {});

/// Remap a goal onto the optimized system (locations, predicate with
/// the constant-variable substitution applied, clock constraints).
[[nodiscard]] Goal mapGoal(const ta::System& orig, const Goal& goal,
                           ta::OptimizedModel& model);

/// Re-express an optimized-system trace on the original system: expand
/// each transition part through its edge origins (sender first for
/// fused pairs), replay the original discrete semantics for the
/// location vectors and variable valuations, and rebuild exact forward
/// zones in the original clock space.
[[nodiscard]] SymbolicTrace backMapTrace(const ta::System& orig,
                                         const ta::OptimizedModel& model,
                                         const SymbolicTrace& opt);

/// Fold the optimizer's per-pass counters into a run's Stats.
void mergePassStats(Stats& st, const ta::PassStats& ps);

}  // namespace engine::opt_bridge
