#include "ta/parser.hpp"

#include <cctype>
#include <map>

namespace ta {

namespace {

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

enum class Tok : uint8_t {
  kEnd, kIdent, kInt, kString,
  kLBrace, kRBrace, kLBracket, kRBracket, kLParen, kRParen,
  kSemi, kComma, kDot, kArrow, kAssign,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAnd, kOr, kNot, kBang, kQuest, kColon,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  int64_t value = 0;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { advance(); }

  [[nodiscard]] const Token& peek() const { return cur_; }
  Token next() {
    Token t = cur_;
    advance();
    return t;
  }
  [[nodiscard]] int line() const { return cur_.line; }

 private:
  void advance() {
    skipSpace();
    cur_ = Token{};
    cur_.line = line_;
    if (pos_ >= text_.size()) return;  // kEnd
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      cur_.kind = Tok::kIdent;
      cur_.text = text_.substr(start, pos_ - start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      cur_.kind = Tok::kInt;
      cur_.value = std::stoll(text_.substr(start, pos_ - start));
      return;
    }
    if (c == '"') {
      size_t start = ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
      cur_.kind = Tok::kString;
      cur_.text = text_.substr(start, pos_ - start);
      if (pos_ < text_.size()) ++pos_;  // closing quote
      return;
    }
    const auto two = [&](char a, char b, Tok k) {
      if (c == a && pos_ + 1 < text_.size() && text_[pos_ + 1] == b) {
        cur_.kind = k;
        pos_ += 2;
        return true;
      }
      return false;
    };
    if (two('-', '>', Tok::kArrow) || two('<', '=', Tok::kLe) ||
        two('>', '=', Tok::kGe) || two('=', '=', Tok::kEq) ||
        two('!', '=', Tok::kNe) || two('&', '&', Tok::kAnd) ||
        two('|', '|', Tok::kOr)) {
      return;
    }
    ++pos_;
    switch (c) {
      case '{': cur_.kind = Tok::kLBrace; break;
      case '}': cur_.kind = Tok::kRBrace; break;
      case '[': cur_.kind = Tok::kLBracket; break;
      case ']': cur_.kind = Tok::kRBracket; break;
      case '(': cur_.kind = Tok::kLParen; break;
      case ')': cur_.kind = Tok::kRParen; break;
      case ';': cur_.kind = Tok::kSemi; break;
      case ',': cur_.kind = Tok::kComma; break;
      case '.': cur_.kind = Tok::kDot; break;
      case '=': cur_.kind = Tok::kAssign; break;
      case '<': cur_.kind = Tok::kLt; break;
      case '>': cur_.kind = Tok::kGt; break;
      case '+': cur_.kind = Tok::kPlus; break;
      case '-': cur_.kind = Tok::kMinus; break;
      case '*': cur_.kind = Tok::kStar; break;
      case '/': cur_.kind = Tok::kSlash; break;
      case '%': cur_.kind = Tok::kPercent; break;
      case '!': cur_.kind = Tok::kBang; break;
      case '?': cur_.kind = Tok::kQuest; break;
      case ':': cur_.kind = Tok::kColon; break;
      default: cur_.kind = Tok::kEnd; break;  // caller reports error
    }
  }

  void skipSpace() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        if (text_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ + 1 < text_.size() && text_[pos_] == '/' &&
          text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      break;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
  Token cur_;
};

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct ParseError {
  int line;
  std::string message;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lex_(text) {
    result_.system = std::make_unique<System>();
  }

  std::optional<ParseResult> run(std::string* error) {
    try {
      while (lex_.peek().kind != Tok::kEnd) {
        const Token t = expect(Tok::kIdent, "declaration");
        if (t.text == "clock") {
          parseClockDecl();
        } else if (t.text == "int") {
          parseIntDecl();
        } else if (t.text == "chan") {
          parseChanDecl(ChanKind::kBinary);
        } else if (t.text == "broadcast") {
          expectKeyword("chan");
          parseChanDecl(ChanKind::kBroadcast);
        } else if (t.text == "process") {
          parseProcess();
        } else if (t.text == "query") {
          parseQuery();
        } else {
          throw ParseError{t.line, "unexpected '" + t.text + "'"};
        }
      }
      sys().finalize();
      return std::move(result_);
    } catch (const ParseError& e) {
      if (error != nullptr) {
        *error = "line " + std::to_string(e.line) + ": " + e.message;
      }
      return std::nullopt;
    }
  }

 private:
  [[nodiscard]] System& sys() { return *result_.system; }

  Token expect(Tok kind, const char* what) {
    const Token t = lex_.next();
    if (t.kind != kind) {
      throw ParseError{t.line, std::string("expected ") + what};
    }
    return t;
  }

  void expectKeyword(const std::string& kw) {
    const Token t = expect(Tok::kIdent, kw.c_str());
    if (t.text != kw) throw ParseError{t.line, "expected '" + kw + "'"};
  }

  bool accept(Tok kind) {
    if (lex_.peek().kind == kind) {
      lex_.next();
      return true;
    }
    return false;
  }

  // -- Declarations -----------------------------------------------------

  void checkFresh(const std::string& name, int line) {
    if (clocks_.count(name) != 0 || vars_.count(name) != 0 ||
        chans_.count(name) != 0 || procs_.count(name) != 0) {
      throw ParseError{line, "'" + name + "' already declared"};
    }
  }

  void parseClockDecl() {
    do {
      const Token n = expect(Tok::kIdent, "clock name");
      checkFresh(n.text, n.line);
      clocks_[n.text] = sys().addClock(n.text);
    } while (accept(Tok::kComma));
    expect(Tok::kSemi, "';'");
  }

  void parseIntDecl() {
    do {
      const Token n = expect(Tok::kIdent, "variable name");
      checkFresh(n.text, n.line);
      int32_t size = 1;
      if (accept(Tok::kLBracket)) {
        size = static_cast<int32_t>(expect(Tok::kInt, "array size").value);
        if (size <= 0) throw ParseError{n.line, "array size must be > 0"};
        expect(Tok::kRBracket, "']'");
      }
      int32_t init = 0;
      if (accept(Tok::kAssign)) {
        const bool neg = accept(Tok::kMinus);
        init = static_cast<int32_t>(expect(Tok::kInt, "initializer").value);
        if (neg) init = -init;
      }
      const VarId base = size == 1 ? sys().addVar(n.text, init)
                                   : sys().addArray(n.text, size, init);
      vars_[n.text] = {base, size};
    } while (accept(Tok::kComma));
    expect(Tok::kSemi, "';'");
  }

  void parseChanDecl(ChanKind kind) {
    do {
      const Token n = expect(Tok::kIdent, "channel name");
      checkFresh(n.text, n.line);
      chans_[n.text] = sys().addChannel(n.text, kind);
    } while (accept(Tok::kComma));
    expect(Tok::kSemi, "';'");
  }

  // -- Processes ----------------------------------------------------------

  void parseProcess() {
    const Token n = expect(Tok::kIdent, "process name");
    checkFresh(n.text, n.line);
    const ProcId p = sys().addAutomaton(n.text);
    procs_[n.text] = p;
    auto& locs = procLocs_[n.text];
    expect(Tok::kLBrace, "'{'");
    bool haveInit = false;
    while (!accept(Tok::kRBrace)) {
      const Token t = expect(Tok::kIdent, "process item");
      bool urgent = false, committed = false;
      std::string kw = t.text;
      if (kw == "urgent" || kw == "committed") {
        urgent = kw == "urgent";
        committed = kw == "committed";
        expectKeyword("loc");
        kw = "loc";
      }
      if (kw == "loc") {
        const Token ln = expect(Tok::kIdent, "location name");
        if (locs.count(ln.text) != 0) {
          throw ParseError{ln.line, "location '" + ln.text + "' redeclared"};
        }
        const LocId l =
            sys().automaton(p).addLocation(ln.text, urgent, committed);
        locs[ln.text] = l;
        if (accept(Tok::kLBrace)) {
          expectKeyword("inv");
          do {
            sys().automaton(p).addInvariant(l, parseClockAtomPair().first);
            if (auto second = parseClockAtomPair_second()) {
              sys().automaton(p).addInvariant(l, *second);
            }
          } while (accept(Tok::kAnd));
          expect(Tok::kSemi, "';'");
          expect(Tok::kRBrace, "'}'");
        }
        accept(Tok::kSemi);
      } else if (kw == "init") {
        const Token ln = expect(Tok::kIdent, "location name");
        const auto it = locs.find(ln.text);
        if (it == locs.end()) {
          throw ParseError{ln.line,
                           "init location '" + ln.text + "' not declared"};
        }
        sys().automaton(p).setInitial(it->second);
        haveInit = true;
        expect(Tok::kSemi, "';'");
      } else if (kw == "edge") {
        parseEdge(p, locs);
      } else {
        throw ParseError{t.line, "unexpected '" + kw + "' in process"};
      }
    }
    if (!haveInit && !locs.empty()) {
      // Default: first declared location (already location 0).
      sys().automaton(p).setInitial(0);
    }
  }

  void parseEdge(ProcId p, const std::map<std::string, LocId>& locs) {
    const Token from = expect(Tok::kIdent, "source location");
    expect(Tok::kArrow, "'->'");
    const Token to = expect(Tok::kIdent, "target location");
    const auto fi = locs.find(from.text);
    const auto ti = locs.find(to.text);
    if (fi == locs.end()) {
      throw ParseError{from.line, "unknown location '" + from.text + "'"};
    }
    if (ti == locs.end()) {
      throw ParseError{to.line, "unknown location '" + to.text + "'"};
    }
    EdgeBuilder eb = sys().edge(p, fi->second, ti->second);
    expect(Tok::kLBrace, "'{'");
    while (!accept(Tok::kRBrace)) {
      const Token t = expect(Tok::kIdent, "edge item");
      if (t.text == "guard") {
        do {
          parseGuardAtom(eb);
        } while (accept(Tok::kAnd));
      } else if (t.text == "sync") {
        const Token cn = expect(Tok::kIdent, "channel name");
        const auto ci = chans_.find(cn.text);
        if (ci == chans_.end()) {
          throw ParseError{cn.line, "unknown channel '" + cn.text + "'"};
        }
        if (accept(Tok::kBang)) {
          eb.send(ci->second);
        } else if (accept(Tok::kQuest)) {
          eb.receive(ci->second);
        } else {
          throw ParseError{cn.line, "expected '!' or '?' after channel"};
        }
      } else if (t.text == "reset") {
        do {
          const Token cn = expect(Tok::kIdent, "clock name");
          const auto ci = clocks_.find(cn.text);
          if (ci == clocks_.end()) {
            throw ParseError{cn.line, "unknown clock '" + cn.text + "'"};
          }
          dbm::value_t v = 0;
          if (accept(Tok::kAssign)) {
            v = static_cast<dbm::value_t>(
                expect(Tok::kInt, "reset value").value);
          }
          eb.reset(ci->second, v);
        } while (accept(Tok::kComma));
      } else if (t.text == "assign") {
        do {
          const Token vn = expect(Tok::kIdent, "variable name");
          const auto vi = vars_.find(vn.text);
          if (vi == vars_.end()) {
            throw ParseError{vn.line, "unknown variable '" + vn.text + "'"};
          }
          ExprRef index = kNoExpr;
          if (accept(Tok::kLBracket)) {
            index = parseExpr();
            expect(Tok::kRBracket, "']'");
          }
          expect(Tok::kAssign, "'='");
          const ExprRef rhs = parseExpr();
          if (index == kNoExpr) {
            eb.assign(vi->second.first, Ex(sys().pool(), rhs));
          } else {
            eb.assignCell(vi->second.first, Ex(sys().pool(), index),
                          vi->second.second, Ex(sys().pool(), rhs));
          }
        } while (accept(Tok::kComma));
      } else if (t.text == "label") {
        eb.label(expect(Tok::kString, "label string").text);
      } else {
        throw ParseError{t.line, "unexpected '" + t.text + "' in edge"};
      }
      expect(Tok::kSemi, "';'");
    }
  }

  // -- Guards / queries -----------------------------------------------------

  [[nodiscard]] bool nextIsClockAtom() {
    const Token& t = lex_.peek();
    return t.kind == Tok::kIdent && clocks_.count(t.text) != 0;
  }

  /// Parse one clock atom. `x == c` yields two constraints; the second
  /// is stashed for parseClockAtomPair_second().
  std::pair<ClockConstraint, bool> parseClockAtomPair() {
    const Token cn = expect(Tok::kIdent, "clock name");
    const auto ci = clocks_.find(cn.text);
    if (ci == clocks_.end()) {
      throw ParseError{cn.line, "unknown clock '" + cn.text + "'"};
    }
    const ClockId x = ci->second;
    ClockId y = 0;
    if (accept(Tok::kMinus)) {
      const Token cn2 = expect(Tok::kIdent, "clock name");
      const auto ci2 = clocks_.find(cn2.text);
      if (ci2 == clocks_.end()) {
        throw ParseError{cn2.line, "unknown clock '" + cn2.text + "'"};
      }
      y = ci2->second;
    }
    const Token op = lex_.next();
    const bool neg = accept(Tok::kMinus);
    const Token val = expect(Tok::kInt, "integer bound");
    auto c = static_cast<dbm::value_t>(val.value);
    if (neg) c = -c;
    pendingSecond_.reset();
    switch (op.kind) {
      case Tok::kLe: return {{x, y, dbm::boundWeak(c)}, true};
      case Tok::kLt: return {{x, y, dbm::boundStrict(c)}, true};
      case Tok::kGe: return {{y, x, dbm::boundWeak(-c)}, true};
      case Tok::kGt: return {{y, x, dbm::boundStrict(-c)}, true};
      case Tok::kEq:
        pendingSecond_ = ClockConstraint{y, x, dbm::boundWeak(-c)};
        return {{x, y, dbm::boundWeak(c)}, true};
      default:
        throw ParseError{op.line, "expected a comparison after clock"};
    }
  }

  std::optional<ClockConstraint> parseClockAtomPair_second() {
    auto s = pendingSecond_;
    pendingSecond_.reset();
    return s;
  }

  /// One guard conjunct: a clock atom or an integer expression (no
  /// top-level && — use parentheses).
  void parseGuardAtom(EdgeBuilder& eb) {
    if (nextIsClockAtom()) {
      const auto [cc, ok] = parseClockAtomPair();
      (void)ok;
      eb.when(cc);
      if (const auto second = parseClockAtomPair_second()) eb.when(*second);
      return;
    }
    eb.guard(Ex(sys().pool(), parseOrNoAnd()));
  }

  // Expression grammar (precedence climbing).
  ExprRef parseExpr() { return parseTernary(); }

  ExprRef parseTernary() {
    const ExprRef cond = parseOr();
    if (!accept(Tok::kQuest)) return cond;
    const ExprRef a = parseExpr();
    expect(Tok::kColon, "':'");
    const ExprRef b = parseExpr();
    return sys().pool().ite(cond, a, b);
  }

  ExprRef parseOr() {
    ExprRef e = parseAnd();
    while (accept(Tok::kOr)) {
      e = sys().pool().binary(Op::kOr, e, parseAnd());
    }
    return e;
  }

  /// Or-level that refuses to eat a top-level && (guard separator).
  ExprRef parseOrNoAnd() {
    ExprRef e = parseCmp();
    while (accept(Tok::kOr)) {
      e = sys().pool().binary(Op::kOr, e, parseCmp());
    }
    return e;
  }

  ExprRef parseAnd() {
    ExprRef e = parseCmp();
    while (accept(Tok::kAnd)) {
      e = sys().pool().binary(Op::kAnd, e, parseCmp());
    }
    return e;
  }

  ExprRef parseCmp() {
    ExprRef e = parseAdd();
    const Tok k = lex_.peek().kind;
    Op op;
    switch (k) {
      case Tok::kLt: op = Op::kLt; break;
      case Tok::kLe: op = Op::kLe; break;
      case Tok::kGt: op = Op::kGt; break;
      case Tok::kGe: op = Op::kGe; break;
      case Tok::kEq: op = Op::kEq; break;
      case Tok::kNe: op = Op::kNe; break;
      default: return e;
    }
    lex_.next();
    return sys().pool().binary(op, e, parseAdd());
  }

  ExprRef parseAdd() {
    ExprRef e = parseMul();
    for (;;) {
      if (accept(Tok::kPlus)) {
        e = sys().pool().binary(Op::kAdd, e, parseMul());
      } else if (accept(Tok::kMinus)) {
        e = sys().pool().binary(Op::kSub, e, parseMul());
      } else {
        return e;
      }
    }
  }

  ExprRef parseMul() {
    ExprRef e = parseUnary();
    for (;;) {
      if (accept(Tok::kStar)) {
        e = sys().pool().binary(Op::kMul, e, parseUnary());
      } else if (accept(Tok::kSlash)) {
        e = sys().pool().binary(Op::kDiv, e, parseUnary());
      } else if (accept(Tok::kPercent)) {
        e = sys().pool().binary(Op::kMod, e, parseUnary());
      } else {
        return e;
      }
    }
  }

  ExprRef parseUnary() {
    if (accept(Tok::kMinus)) {
      return sys().pool().unary(Op::kNeg, parseUnary());
    }
    if (accept(Tok::kBang)) {
      return sys().pool().unary(Op::kNot, parseUnary());
    }
    return parsePrimary();
  }

  ExprRef parsePrimary() {
    const Token t = lex_.next();
    if (t.kind == Tok::kInt) {
      return sys().pool().constant(static_cast<int32_t>(t.value));
    }
    if (t.kind == Tok::kLParen) {
      const ExprRef e = parseExpr();
      expect(Tok::kRParen, "')'");
      return e;
    }
    if (t.kind == Tok::kIdent) {
      if (t.text == "true") return sys().pool().constant(1);
      if (t.text == "false") return sys().pool().constant(0);
      const auto vi = vars_.find(t.text);
      if (vi == vars_.end()) {
        throw ParseError{t.line, "unknown variable '" + t.text + "'"};
      }
      if (accept(Tok::kLBracket)) {
        const ExprRef idx = parseExpr();
        expect(Tok::kRBracket, "']'");
        return sys().pool().arrayCell(vi->second.first, idx,
                                      vi->second.second);
      }
      return sys().pool().var(vi->second.first);
    }
    throw ParseError{t.line, "expected an expression"};
  }

  // -- Queries ----------------------------------------------------------

  void parseQuery() {
    expectKeyword("reach");
    ParsedQuery q;
    ExprRef pred = kNoExpr;
    do {
      // Location atom: Proc.loc
      const Token& t = lex_.peek();
      if (t.kind == Tok::kIdent && procs_.count(t.text) != 0) {
        const Token pn = lex_.next();
        expect(Tok::kDot, "'.'");
        const Token ln = expect(Tok::kIdent, "location name");
        const auto& locs = procLocs_[pn.text];
        const auto li = locs.find(ln.text);
        if (li == locs.end()) {
          throw ParseError{ln.line, "unknown location '" + pn.text + "." +
                                        ln.text + "'"};
        }
        q.locations.push_back({procs_[pn.text], li->second});
      } else if (nextIsClockAtom()) {
        const auto [cc, ok] = parseClockAtomPair();
        (void)ok;
        q.clockConstraints.push_back(cc);
        if (const auto second = parseClockAtomPair_second()) {
          q.clockConstraints.push_back(*second);
        }
      } else {
        const ExprRef atom = parseOrNoAnd();
        pred = pred == kNoExpr ? atom
                               : sys().pool().binary(Op::kAnd, pred, atom);
      }
    } while (accept(Tok::kAnd));
    expect(Tok::kSemi, "';'");
    q.predicate = pred;
    result_.queries.push_back(std::move(q));
  }

  Lexer lex_;
  ParseResult result_;
  std::map<std::string, ClockId> clocks_;
  std::map<std::string, std::pair<VarId, int32_t>> vars_;  // base, size
  std::map<std::string, ChanId> chans_;
  std::map<std::string, ProcId> procs_;
  std::map<std::string, std::map<std::string, LocId>> procLocs_;
  std::optional<ClockConstraint> pendingSecond_;
};

}  // namespace

std::optional<ParseResult> parseModel(const std::string& text,
                                      std::string* error) {
  return Parser(text).run(error);
}

}  // namespace ta
