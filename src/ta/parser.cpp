#include "ta/parser.hpp"

#include <map>
#include <string>
#include <utility>

#include "ta/lexer.hpp"
#include "ta/lint.hpp"

namespace ta {

namespace {

/// Thrown to abort the construct being parsed after a diagnostic has
/// been emitted; the enclosing loop synchronizes to the next
/// declaration / process-item / edge-item boundary and keeps going.
struct Recover {};

/// Thrown when the error cap is hit; aborts the whole parse.
struct FatalStop {};

constexpr int kMaxExprDepth = 200;

bool isDeclKeyword(const std::string& s) {
  return s == "clock" || s == "int" || s == "chan" || s == "broadcast" ||
         s == "process" || s == "query";
}

bool isProcessItemKeyword(const std::string& s) {
  return s == "loc" || s == "init" || s == "edge" || s == "urgent" ||
         s == "committed";
}

class Parser {
 public:
  Parser(const std::string& text, const FrontendOptions& opts,
         FrontendResult* out)
      : lex_(text, &out->diagnostics), opts_(opts), out_(out) {}

  void run() {
    try {
      while (lex_.peek().kind != Tok::kEnd) {
        try {
          parseTopLevel();
        } catch (const Recover&) {
          syncTopLevel();
        }
      }
    } catch (const FatalStop&) {
      // Error cap hit; whatever was parsed so far stands.
    }
  }

 private:
  [[nodiscard]] System& sys() { return *out_->system; }
  [[nodiscard]] SourceMap& map() { return out_->sourceMap; }

  // -- Diagnostics --------------------------------------------------------

  void error(Span span, DiagCode code, std::string message,
             std::string note = {}) {
    if (errors_ >= opts_.maxErrors) {
      out_->diagnostics.push_back(
          {Severity::kError, DiagCode::kTooManyErrors, span,
           "too many errors (" + std::to_string(errors_) + "); giving up",
           {}});
      throw FatalStop{};
    }
    ++errors_;
    out_->diagnostics.push_back({Severity::kError, code, span,
                                 std::move(message), std::move(note)});
  }

  // -- Token helpers ------------------------------------------------------

  /// Consume a token of the given kind. On mismatch: report the
  /// *offending* token's exact span, leave it unconsumed (the sync
  /// routines decide what to skip), and unwind to the nearest recovery
  /// point.
  Token expect(Tok kind, const char* what) {
    if (lex_.peek().kind != kind) {
      error(lex_.peek().span, DiagCode::kUnexpectedToken,
            std::string("expected ") + what + " before " +
                describeToken(lex_.peek()));
      throw Recover{};
    }
    return lex_.next();
  }

  Token expectKeyword(const std::string& kw) {
    const Token t = expect(Tok::kIdent, ("'" + kw + "'").c_str());
    if (t.text != kw) {
      error(t.span, DiagCode::kUnexpectedToken, "expected '" + kw + "'");
      throw Recover{};
    }
    return t;
  }

  bool accept(Tok kind) {
    if (lex_.peek().kind == kind) {
      lex_.next();
      return true;
    }
    return false;
  }

  // -- Synchronization ----------------------------------------------------

  /// Skip to the next top-level declaration keyword, past a ';', or to
  /// end of input. Braces opened while skipping are balanced so a
  /// malformed process header swallows its whole body instead of
  /// spraying "unexpected X" errors over every line of it.
  void syncTopLevel() {
    int depth = 0;
    for (;;) {
      const Token& t = lex_.peek();
      if (t.kind == Tok::kEnd) return;
      if (depth == 0) {
        if (t.kind == Tok::kSemi) {
          lex_.next();
          return;
        }
        if (t.kind == Tok::kIdent && isDeclKeyword(t.text)) return;
      }
      if (t.kind == Tok::kLBrace) ++depth;
      if (t.kind == Tok::kRBrace && depth > 0) --depth;
      lex_.next();
    }
  }

  /// Skip to the next `loc` / `init` / `edge` / `urgent` / `committed`,
  /// past a ';', or to the process's closing '}'. Balances nested
  /// braces (a malformed edge header swallows the edge body).
  void syncProcessItem() {
    int depth = 0;
    for (;;) {
      const Token& t = lex_.peek();
      if (t.kind == Tok::kEnd) return;
      if (depth == 0) {
        if (t.kind == Tok::kRBrace) return;
        if (t.kind == Tok::kSemi) {
          lex_.next();
          return;
        }
        if (t.kind == Tok::kIdent && isProcessItemKeyword(t.text)) return;
      }
      if (t.kind == Tok::kLBrace) ++depth;
      if (t.kind == Tok::kRBrace && depth > 0) --depth;
      lex_.next();
    }
  }

  /// Skip to the next ';' (consumed), the next edge-item keyword, or
  /// the edge's closing '}'.
  void syncEdgeItem() {
    for (;;) {
      const Token& t = lex_.peek();
      if (t.kind == Tok::kEnd || t.kind == Tok::kRBrace) return;
      if (t.kind == Tok::kSemi) {
        lex_.next();
        return;
      }
      if (t.kind == Tok::kIdent &&
          (t.text == "guard" || t.text == "sync" || t.text == "reset" ||
           t.text == "assign" || t.text == "label")) {
        return;
      }
      lex_.next();
    }
  }

  // -- Declarations -------------------------------------------------------

  void parseTopLevel() {
    if (lex_.peek().kind != Tok::kIdent) {
      error(lex_.peek().span, DiagCode::kUnexpectedDecl,
            "expected a declaration (clock, int, chan, broadcast, process "
            "or query) before " +
                describeToken(lex_.peek()));
      throw Recover{};
    }
    const Token t = lex_.next();
    if (t.text == "clock") {
      parseClockDecl();
    } else if (t.text == "int") {
      parseIntDecl();
    } else if (t.text == "chan") {
      parseChanDecl(ChanKind::kBinary);
    } else if (t.text == "broadcast") {
      expectKeyword("chan");
      parseChanDecl(ChanKind::kBroadcast);
    } else if (t.text == "process") {
      parseProcess();
    } else if (t.text == "query") {
      parseQuery(t.span);
    } else {
      error(t.span, DiagCode::kUnexpectedDecl,
            "unexpected '" + t.text + "'",
            "expected clock, int, chan, broadcast, process or query");
      throw Recover{};
    }
  }

  /// Report a redefinition (with a note pointing at the first site) and
  /// return false; true when the name is fresh.
  bool checkFresh(const Token& n) {
    const auto it = declSites_.find(n.text);
    if (it != declSites_.end()) {
      error(n.span, DiagCode::kRedefinition,
            "'" + n.text + "' already declared",
            "first declared at line " + std::to_string(it->second.line));
      return false;
    }
    declSites_[n.text] = n.span;
    return true;
  }

  void parseClockDecl() {
    do {
      const Token n = expect(Tok::kIdent, "clock name");
      if (!checkFresh(n)) continue;
      clocks_[n.text] = sys().addClock(n.text);
      map().clockDecls.push_back(n.span);
    } while (accept(Tok::kComma));
    expect(Tok::kSemi, "';'");
  }

  void parseIntDecl() {
    do {
      const Token n = expect(Tok::kIdent, "variable name");
      const bool fresh = checkFresh(n);
      int32_t size = 1;
      if (accept(Tok::kLBracket)) {
        const Token st = expect(Tok::kInt, "array size");
        size = static_cast<int32_t>(st.value);
        if (size <= 0) {
          error(st.span, DiagCode::kBadConstant, "array size must be > 0");
          size = 1;
        }
        expect(Tok::kRBracket, "']'");
      }
      int32_t init = 0;
      if (accept(Tok::kAssign)) {
        const bool neg = accept(Tok::kMinus);
        init = static_cast<int32_t>(expect(Tok::kInt, "initializer").value);
        if (neg) init = -init;
      }
      if (!fresh) continue;
      const VarId base = size == 1 ? sys().addVar(n.text, init)
                                   : sys().addArray(n.text, size, init);
      vars_[n.text] = {base, size};
      for (int32_t k = 0; k < size; ++k) map().varDecls.push_back(n.span);
    } while (accept(Tok::kComma));
    expect(Tok::kSemi, "';'");
  }

  void parseChanDecl(ChanKind kind) {
    do {
      const Token n = expect(Tok::kIdent, "channel name");
      if (!checkFresh(n)) continue;
      chans_[n.text] = sys().addChannel(n.text, kind);
      map().chanDecls.push_back(n.span);
    } while (accept(Tok::kComma));
    expect(Tok::kSemi, "';'");
  }

  // -- Processes ----------------------------------------------------------

  void parseProcess() {
    const Token n = expect(Tok::kIdent, "process name");
    checkFresh(n);
    const ProcId p = sys().addAutomaton(n.text);
    procs_[n.text] = p;
    auto& locs = procLocs_[n.text];
    map().locDecls.emplace_back();
    map().edgeDecls.emplace_back();
    expect(Tok::kLBrace, "'{'");
    bool haveInit = false;
    while (!accept(Tok::kRBrace)) {
      if (lex_.peek().kind == Tok::kEnd) {
        error(lex_.peek().span, DiagCode::kUnexpectedToken,
              "missing '}' closing process '" + n.text + "'");
        break;
      }
      try {
        parseProcessItem(p, locs, &haveInit);
      } catch (const Recover&) {
        syncProcessItem();
      }
    }
    if (!haveInit && !locs.empty()) {
      // Default: first declared location (already location 0).
      sys().automaton(p).setInitial(0);
    }
    if (sys().automaton(p).numLocations() == 0) {
      error(n.span, DiagCode::kEmptyProcess,
            "process '" + n.text + "' has no locations");
    }
  }

  void parseProcessItem(ProcId p, std::map<std::string, LocId>& locs,
                        bool* haveInit) {
    const Token t = expect(Tok::kIdent, "'loc', 'init' or 'edge'");
    bool urgent = false;
    bool committed = false;
    std::string kw = t.text;
    if (kw == "urgent" || kw == "committed") {
      urgent = kw == "urgent";
      committed = kw == "committed";
      expectKeyword("loc");
      kw = "loc";
    }
    if (kw == "loc") {
      parseLoc(p, locs, urgent, committed);
    } else if (kw == "init") {
      const Token ln = expect(Tok::kIdent, "location name");
      const auto it = locs.find(ln.text);
      if (it == locs.end()) {
        error(ln.span, DiagCode::kUndefinedName,
              "init location '" + ln.text + "' not declared");
      } else {
        sys().automaton(p).setInitial(it->second);
        *haveInit = true;
      }
      expect(Tok::kSemi, "';'");
    } else if (kw == "edge") {
      parseEdge(p, locs);
    } else {
      error(t.span, DiagCode::kUnexpectedToken,
            "unexpected '" + kw + "' in process");
      throw Recover{};
    }
  }

  void parseLoc(ProcId p, std::map<std::string, LocId>& locs, bool urgent,
                bool committed) {
    const Token ln = expect(Tok::kIdent, "location name");
    LocId l;
    const auto it = locs.find(ln.text);
    if (it != locs.end()) {
      error(ln.span, DiagCode::kRedefinition,
            "location '" + ln.text + "' redeclared");
      l = it->second;
    } else {
      l = sys().automaton(p).addLocation(ln.text, urgent, committed);
      locs[ln.text] = l;
      map().locDecls.back().push_back(ln.span);
    }
    if (accept(Tok::kLBrace)) {
      // Recover locally so a bad invariant doesn't desynchronize the
      // brace structure (the '}' below would otherwise be mistaken for
      // the process's closing brace).
      try {
        expectKeyword("inv");
        do {
          const ClockAtom atom = parseClockAtom();
          if (atom.valid) {
            sys().automaton(p).addInvariant(l, atom.first);
            if (atom.hasSecond) {
              sys().automaton(p).addInvariant(l, atom.second);
            }
          }
        } while (accept(Tok::kAnd));
        expect(Tok::kSemi, "';'");
      } catch (const Recover&) {
        syncEdgeItem();
      }
      expect(Tok::kRBrace, "'}'");
    }
    accept(Tok::kSemi);
  }

  void parseEdge(ProcId p, const std::map<std::string, LocId>& locs) {
    const Token from = expect(Tok::kIdent, "source location");
    expect(Tok::kArrow, "'->'");
    const Token to = expect(Tok::kIdent, "target location");
    const auto fi = locs.find(from.text);
    const auto ti = locs.find(to.text);
    bool valid = true;
    if (fi == locs.end()) {
      error(from.span, DiagCode::kUndefinedName,
            "unknown location '" + from.text + "'");
      valid = false;
    }
    if (ti == locs.end()) {
      error(to.span, DiagCode::kUndefinedName,
            "unknown location '" + to.text + "'");
      valid = false;
    }
    // On an unresolvable endpoint the body still parses (for its own
    // diagnostics) into a discarded edge.
    Edge discard;
    EdgeBuilder eb = valid ? sys().edge(p, fi->second, ti->second)
                           : EdgeBuilder(sys(), discard);
    if (valid) map().edgeDecls.back().push_back(from.span);
    expect(Tok::kLBrace, "'{'");
    while (!accept(Tok::kRBrace)) {
      if (lex_.peek().kind == Tok::kEnd) {
        error(lex_.peek().span, DiagCode::kUnexpectedToken,
              "missing '}' closing edge '" + from.text + " -> " + to.text +
                  "'");
        throw Recover{};
      }
      try {
        parseEdgeItem(p, eb, valid);
      } catch (const Recover&) {
        syncEdgeItem();
      }
    }
  }

  void parseEdgeItem(ProcId p, EdgeBuilder& eb, bool valid) {
    const Token t =
        expect(Tok::kIdent, "'guard', 'sync', 'reset', 'assign' or 'label'");
    if (t.text == "guard") {
      do {
        parseGuardAtom(eb);
      } while (accept(Tok::kAnd));
    } else if (t.text == "sync") {
      const Token cn = expect(Tok::kIdent, "channel name");
      const auto ci = chans_.find(cn.text);
      if (ci == chans_.end()) {
        error(cn.span, DiagCode::kUndefinedName,
              "unknown channel '" + cn.text + "'");
        // Still consume the direction marker so the ';' check lines up.
        if (!accept(Tok::kBang)) accept(Tok::kQuest);
      } else if (accept(Tok::kBang)) {
        eb.send(ci->second);
      } else if (accept(Tok::kQuest)) {
        eb.receive(ci->second);
      } else {
        error(lex_.peek().span, DiagCode::kBadSync,
              "expected '!' or '?' after channel '" + cn.text + "'");
        throw Recover{};
      }
    } else if (t.text == "reset") {
      do {
        const Token cn = expect(Tok::kIdent, "clock name");
        const auto ci = clocks_.find(cn.text);
        dbm::value_t v = 0;
        if (accept(Tok::kAssign)) {
          v = static_cast<dbm::value_t>(
              expect(Tok::kInt, "reset value").value);
        }
        if (ci == clocks_.end()) {
          error(cn.span, DiagCode::kUndefinedName,
                "unknown clock '" + cn.text + "'");
        } else {
          eb.reset(ci->second, v);
        }
      } while (accept(Tok::kComma));
    } else if (t.text == "assign") {
      do {
        const Token vn = expect(Tok::kIdent, "variable name");
        const auto vi = vars_.find(vn.text);
        if (vi == vars_.end()) {
          error(vn.span, DiagCode::kUndefinedName,
                "unknown variable '" + vn.text + "'");
        }
        ExprRef index = kNoExpr;
        if (accept(Tok::kLBracket)) {
          index = parseExpr();
          expect(Tok::kRBracket, "']'");
        }
        expect(Tok::kAssign, "'='");
        const ExprRef rhs = parseExpr();
        if (vi == vars_.end()) continue;  // diagnosed; discard
        if (index == kNoExpr) {
          eb.assign(vi->second.first, Ex(sys().pool(), rhs));
        } else {
          eb.assignCell(vi->second.first, Ex(sys().pool(), index),
                        vi->second.second, Ex(sys().pool(), rhs));
        }
      } while (accept(Tok::kComma));
    } else if (t.text == "label") {
      const Token ls = expect(Tok::kString, "label string");
      eb.label(ls.text);
      if (valid) map().labels.push_back({p, ls.text, ls.span});
    } else {
      error(t.span, DiagCode::kUnexpectedToken,
            "unexpected '" + t.text + "' in edge");
      throw Recover{};
    }
    expect(Tok::kSemi, "';'");
  }

  // -- Guards / clock atoms -----------------------------------------------

  [[nodiscard]] bool nextIsClockAtom() {
    const Token& t = lex_.peek();
    return t.kind == Tok::kIdent && clocks_.count(t.text) != 0;
  }

  struct ClockAtom {
    ClockConstraint first;
    ClockConstraint second;
    bool hasSecond = false;
    bool valid = false;
  };

  /// Parse one clock atom (`x <= 5`, `x - y < 2`, `x == 7`). `x == c`
  /// yields two constraints. Returns valid=false (with diagnostics
  /// already emitted) when a name fails to resolve.
  ClockAtom parseClockAtom() {
    ClockAtom out;
    const Token cn = expect(Tok::kIdent, "clock name");
    const auto ci = clocks_.find(cn.text);
    bool resolved = true;
    if (ci == clocks_.end()) {
      error(cn.span, DiagCode::kUndefinedName,
            "unknown clock '" + cn.text + "'");
      resolved = false;
    }
    const ClockId x = resolved ? ci->second : 0;
    ClockId y = 0;
    if (accept(Tok::kMinus)) {
      const Token cn2 = expect(Tok::kIdent, "clock name");
      const auto ci2 = clocks_.find(cn2.text);
      if (ci2 == clocks_.end()) {
        error(cn2.span, DiagCode::kUndefinedName,
              "unknown clock '" + cn2.text + "'");
        resolved = false;
      } else {
        y = ci2->second;
      }
    }
    const Token op = lex_.next();
    const bool neg = accept(Tok::kMinus);
    const Token val = expect(Tok::kInt, "integer bound");
    auto c = static_cast<dbm::value_t>(val.value);
    if (neg) c = -c;
    out.valid = resolved;
    switch (op.kind) {
      case Tok::kLe: out.first = {x, y, dbm::boundWeak(c)}; return out;
      case Tok::kLt: out.first = {x, y, dbm::boundStrict(c)}; return out;
      case Tok::kGe: out.first = {y, x, dbm::boundWeak(-c)}; return out;
      case Tok::kGt: out.first = {y, x, dbm::boundStrict(-c)}; return out;
      case Tok::kEq:
        out.first = {x, y, dbm::boundWeak(c)};
        out.second = {y, x, dbm::boundWeak(-c)};
        out.hasSecond = true;
        return out;
      default:
        error(op.span, DiagCode::kBadClockConstraint,
              "expected a comparison after clock '" + cn.text + "'");
        throw Recover{};
    }
  }

  /// One guard conjunct: a clock atom or an integer expression (no
  /// top-level && — use parentheses).
  void parseGuardAtom(EdgeBuilder& eb) {
    if (nextIsClockAtom()) {
      const ClockAtom atom = parseClockAtom();
      if (atom.valid) {
        eb.when(atom.first);
        if (atom.hasSecond) eb.when(atom.second);
      }
      return;
    }
    eb.guard(Ex(sys().pool(), parseOrNoAnd()));
  }

  // -- Expression grammar (precedence climbing) ---------------------------

  struct DepthGuard {
    explicit DepthGuard(Parser& p) : p_(p) {
      if (++p_.depth_ > kMaxExprDepth) {
        p_.error(p_.lex_.peek().span, DiagCode::kNestingTooDeep,
                 "expression nests too deeply (limit " +
                     std::to_string(kMaxExprDepth) + ")");
        --p_.depth_;
        throw Recover{};
      }
    }
    ~DepthGuard() { --p_.depth_; }
    Parser& p_;
  };

  ExprRef parseExpr() {
    DepthGuard guard(*this);
    return parseTernary();
  }

  ExprRef parseTernary() {
    const ExprRef cond = parseOr();
    if (!accept(Tok::kQuest)) return cond;
    const ExprRef a = parseExpr();
    expect(Tok::kColon, "':'");
    const ExprRef b = parseExpr();
    return sys().pool().ite(cond, a, b);
  }

  ExprRef parseOr() {
    ExprRef e = parseAnd();
    while (accept(Tok::kOr)) {
      e = sys().pool().binary(Op::kOr, e, parseAnd());
    }
    return e;
  }

  /// Or-level that refuses to eat a top-level && (guard separator).
  ExprRef parseOrNoAnd() {
    DepthGuard guard(*this);
    ExprRef e = parseCmp();
    while (accept(Tok::kOr)) {
      e = sys().pool().binary(Op::kOr, e, parseCmp());
    }
    return e;
  }

  ExprRef parseAnd() {
    ExprRef e = parseCmp();
    while (accept(Tok::kAnd)) {
      e = sys().pool().binary(Op::kAnd, e, parseCmp());
    }
    return e;
  }

  ExprRef parseCmp() {
    ExprRef e = parseAdd();
    const Tok k = lex_.peek().kind;
    Op op;
    switch (k) {
      case Tok::kLt: op = Op::kLt; break;
      case Tok::kLe: op = Op::kLe; break;
      case Tok::kGt: op = Op::kGt; break;
      case Tok::kGe: op = Op::kGe; break;
      case Tok::kEq: op = Op::kEq; break;
      case Tok::kNe: op = Op::kNe; break;
      default: return e;
    }
    lex_.next();
    return sys().pool().binary(op, e, parseAdd());
  }

  ExprRef parseAdd() {
    ExprRef e = parseMul();
    for (;;) {
      if (accept(Tok::kPlus)) {
        e = sys().pool().binary(Op::kAdd, e, parseMul());
      } else if (accept(Tok::kMinus)) {
        e = sys().pool().binary(Op::kSub, e, parseMul());
      } else {
        return e;
      }
    }
  }

  ExprRef parseMul() {
    ExprRef e = parseUnary();
    for (;;) {
      if (accept(Tok::kStar)) {
        e = sys().pool().binary(Op::kMul, e, parseUnary());
      } else if (accept(Tok::kSlash)) {
        e = sys().pool().binary(Op::kDiv, e, parseUnary());
      } else if (accept(Tok::kPercent)) {
        e = sys().pool().binary(Op::kMod, e, parseUnary());
      } else {
        return e;
      }
    }
  }

  ExprRef parseUnary() {
    DepthGuard guard(*this);
    if (accept(Tok::kMinus)) {
      return sys().pool().unary(Op::kNeg, parseUnary());
    }
    if (accept(Tok::kBang)) {
      return sys().pool().unary(Op::kNot, parseUnary());
    }
    return parsePrimary();
  }

  ExprRef parsePrimary() {
    const Token t = lex_.next();
    if (t.kind == Tok::kInt) {
      return sys().pool().constant(static_cast<int32_t>(t.value));
    }
    if (t.kind == Tok::kLParen) {
      const ExprRef e = parseExpr();
      expect(Tok::kRParen, "')'");
      return e;
    }
    if (t.kind == Tok::kIdent) {
      if (t.text == "true") return sys().pool().constant(1);
      if (t.text == "false") return sys().pool().constant(0);
      const auto vi = vars_.find(t.text);
      if (vi == vars_.end()) {
        error(t.span, DiagCode::kUndefinedName,
              "unknown variable '" + t.text + "'");
        // Recover with a constant so expression parsing continues; the
        // model is already marked broken by the diagnostic.
        if (accept(Tok::kLBracket)) {
          (void)parseExpr();
          expect(Tok::kRBracket, "']'");
        }
        return sys().pool().constant(0);
      }
      if (accept(Tok::kLBracket)) {
        const ExprRef idx = parseExpr();
        expect(Tok::kRBracket, "']'");
        return sys().pool().arrayCell(vi->second.first, idx,
                                      vi->second.second);
      }
      return sys().pool().var(vi->second.first);
    }
    error(t.span, DiagCode::kUnexpectedToken,
          "expected an expression before " + describeToken(t));
    throw Recover{};
  }

  // -- Queries ------------------------------------------------------------

  void parseQuery(Span kwSpan) {
    expectKeyword("reach");
    ParsedQuery q;
    ExprRef pred = kNoExpr;
    do {
      // Location atom: Proc.loc
      const Token& t = lex_.peek();
      if (t.kind == Tok::kIdent && procs_.count(t.text) != 0) {
        const Token pn = lex_.next();
        expect(Tok::kDot, "'.'");
        const Token ln = expect(Tok::kIdent, "location name");
        const auto& locs = procLocs_[pn.text];
        const auto li = locs.find(ln.text);
        if (li == locs.end()) {
          error(ln.span, DiagCode::kUndefinedName,
                "unknown location '" + pn.text + "." + ln.text + "'");
        } else {
          q.locations.push_back({procs_[pn.text], li->second});
        }
      } else if (nextIsClockAtom()) {
        const ClockAtom atom = parseClockAtom();
        if (atom.valid) {
          q.clockConstraints.push_back(atom.first);
          if (atom.hasSecond) q.clockConstraints.push_back(atom.second);
        }
      } else {
        const ExprRef atom = parseOrNoAnd();
        pred = pred == kNoExpr ? atom
                               : sys().pool().binary(Op::kAnd, pred, atom);
      }
    } while (accept(Tok::kAnd));
    expect(Tok::kSemi, "';'");
    q.predicate = pred;
    out_->queries.push_back(std::move(q));
    map().queryDecls.push_back(kwSpan);
  }

  Lexer lex_;
  const FrontendOptions& opts_;
  FrontendResult* out_;
  int errors_ = 0;
  int depth_ = 0;
  std::map<std::string, Span> declSites_;
  std::map<std::string, ClockId> clocks_;
  std::map<std::string, std::pair<VarId, int32_t>> vars_;  // base, size
  std::map<std::string, ChanId> chans_;
  std::map<std::string, ProcId> procs_;
  std::map<std::string, std::map<std::string, LocId>> procLocs_;
};

}  // namespace

FrontendResult parseModelEx(const std::string& text,
                            const FrontendOptions& opts) {
  FrontendResult result;
  result.system = std::make_unique<System>();
  Parser(text, opts, &result).run();
  result.ok = countErrors(result.diagnostics) == 0;
  if (result.ok) {
    result.system->finalize();
    if (opts.lint) {
      runLints(*result.system, result.queries, result.sourceMap,
               &result.diagnostics);
    }
  }
  sortBySource(result.diagnostics);
  return result;
}

std::optional<ParseResult> parseModel(const std::string& text,
                                      std::string* error) {
  FrontendOptions opts;
  opts.lint = false;
  FrontendResult r = parseModelEx(text, opts);
  if (!r.ok) {
    if (error != nullptr) {
      for (const Diagnostic& d : r.diagnostics) {
        if (d.severity != Severity::kError) continue;
        *error = "line " + std::to_string(d.span.line) + ": " + d.message;
        break;
      }
    }
    return std::nullopt;
  }
  return ParseResult{std::move(r.system), std::move(r.queries)};
}

}  // namespace ta
