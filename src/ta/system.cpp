#include "ta/system.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace ta {

EdgeBuilder& EdgeBuilder::send(ChanId c) {
  assert(c >= 0 && static_cast<size_t>(c) < sys_->numChannels());
  edge_->chan = c;
  edge_->sync = Sync::kSend;
  if (edge_->label.empty()) edge_->label = sys_->channelName(c) + "!";
  return *this;
}

EdgeBuilder& EdgeBuilder::receive(ChanId c) {
  assert(c >= 0 && static_cast<size_t>(c) < sys_->numChannels());
  edge_->chan = c;
  edge_->sync = Sync::kReceive;
  if (edge_->label.empty()) edge_->label = sys_->channelName(c) + "?";
  return *this;
}

EdgeBuilder& EdgeBuilder::guard(Ex e) { return guard(e.ref()); }

EdgeBuilder& EdgeBuilder::guard(ExprRef e) {
  edge_->guard = edge_->guard == kNoExpr
                     ? e
                     : sys_->pool().binary(Op::kAnd, edge_->guard, e);
  return *this;
}

EdgeBuilder& EdgeBuilder::assign(VarId v, int32_t rhs) {
  edge_->assigns.push_back({v, kNoExpr, 1, sys_->pool().constant(rhs)});
  return *this;
}

EdgeBuilder& EdgeBuilder::assignCellConst(VarId base, int32_t index,
                                          int32_t size, int32_t rhs) {
  assert(index >= 0 && index < size);
  (void)size;
  edge_->assigns.push_back(
      {base + index, kNoExpr, 1, sys_->pool().constant(rhs)});
  return *this;
}

namespace {

// A constraint x_i - x_j ≺ c is an upper-type bound on x_i with
// constant c and a lower-type bound on x_j with constant -c; each side
// is clamped at 0 (a negative constant distinguishes nothing for a
// nonnegative clock, but the clock was still compared, so its bound
// becomes 0 rather than the "never compared" -1).  Bumping both sides
// with |c| — the previous behavior — over-widened the global maxima
// and made Extra_M needlessly fine.
void bumpMax(std::vector<dbm::value_t>& maxBounds, const ClockConstraint& cc) {
  const dbm::value_t c = dbm::boundValue(cc.bound);
  if (cc.i != 0) {
    auto& m = maxBounds[static_cast<size_t>(cc.i)];
    m = std::max(m, std::max<dbm::value_t>(c, 0));
  }
  if (cc.j != 0) {
    auto& m = maxBounds[static_cast<size_t>(cc.j)];
    m = std::max(m, std::max<dbm::value_t>(-c, 0));
  }
}

}  // namespace

void System::finalize() {
  assert(!finalized_);

  maxBounds_.assign(dbmDimension(), -1);
  maxBounds_[0] = 0;
  receiversByChan_.assign(chanNames_.size(), {});

  for (auto& ap : automata_) {
    Automaton& a = *ap;
    a.outgoing_.assign(a.locs_.size(), {});
    for (size_t e = 0; e < a.edges_.size(); ++e) {
      const Edge& edge = a.edges_[e];
      assert(edge.src >= 0 &&
             static_cast<size_t>(edge.src) < a.locs_.size());
      assert(edge.dst >= 0 &&
             static_cast<size_t>(edge.dst) < a.locs_.size());
      a.outgoing_[static_cast<size_t>(edge.src)].push_back(
          static_cast<int32_t>(e));
      if (edge.sync == Sync::kReceive) {
        const auto proc = static_cast<ProcId>(&ap - automata_.data());
        receiversByChan_[static_cast<size_t>(edge.chan)].push_back(
            {proc, static_cast<int32_t>(e)});
      }
      for (const ClockConstraint& cc : edge.clockGuard) {
        if (maxBounds_[static_cast<size_t>(cc.i)] == -1 && cc.i != 0)
          maxBounds_[static_cast<size_t>(cc.i)] = 0;
        if (maxBounds_[static_cast<size_t>(cc.j)] == -1 && cc.j != 0)
          maxBounds_[static_cast<size_t>(cc.j)] = 0;
        bumpMax(maxBounds_, cc);
      }
      // A reset to value v means the clock can hold value v outright;
      // make sure extrapolation does not erase that information.
      for (const ClockReset& r : edge.resets) {
        auto& m = maxBounds_[static_cast<size_t>(r.clock)];
        m = std::max(m, r.value);
      }
    }
    for (const Location& l : a.locs_) {
      for (const ClockConstraint& cc : l.invariant) bumpMax(maxBounds_, cc);
    }

    // Per-location active clocks: backwards fixpoint.  A clock is active
    // at l if it appears in l's invariant or in the guard of an edge
    // from l, or is active at a successor location without being reset
    // on the connecting edge.
    std::vector<std::set<ClockId>> act(a.locs_.size());
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t li = 0; li < a.locs_.size(); ++li) {
        std::set<ClockId>& s = act[li];
        const size_t before = s.size();
        for (const ClockConstraint& cc : a.locs_[li].invariant) {
          if (cc.i != 0) s.insert(cc.i);
          if (cc.j != 0) s.insert(cc.j);
        }
        for (int32_t ei : a.outgoing_[li]) {
          const Edge& e = a.edges_[static_cast<size_t>(ei)];
          for (const ClockConstraint& cc : e.clockGuard) {
            if (cc.i != 0) s.insert(cc.i);
            if (cc.j != 0) s.insert(cc.j);
          }
          for (ClockId c : act[static_cast<size_t>(e.dst)]) {
            const bool isReset =
                std::any_of(e.resets.begin(), e.resets.end(),
                            [&](const ClockReset& r) { return r.clock == c; });
            if (!isReset) s.insert(c);
          }
        }
        if (s.size() != before) changed = true;
      }
    }
    a.active_.resize(a.locs_.size());
    for (size_t li = 0; li < a.locs_.size(); ++li) {
      a.active_[li].assign(act[li].begin(), act[li].end());
    }
  }

  finalized_ = true;
}

std::string System::ccToString(const ClockConstraint& cc) const {
  const auto name = [&](ClockId c) -> std::string {
    return c == 0 ? "0" : clockName(c);
  };
  std::ostringstream os;
  if (cc.j == 0) {
    os << name(cc.i) << (dbm::isStrict(cc.bound) ? "<" : "<=")
       << dbm::boundValue(cc.bound);
  } else if (cc.i == 0) {
    os << name(cc.j) << (dbm::isStrict(cc.bound) ? ">" : ">=")
       << -dbm::boundValue(cc.bound);
  } else {
    os << name(cc.i) << "-" << name(cc.j)
       << (dbm::isStrict(cc.bound) ? "<" : "<=") << dbm::boundValue(cc.bound);
  }
  return os.str();
}

std::string System::dump() const {
  std::ostringstream os;
  os << "system: " << automata_.size() << " automata, " << numClocks()
     << " clocks, " << numVars() << " int variables, " << numChannels()
     << " channels\n";
  for (const auto& ap : automata_) {
    const Automaton& a = *ap;
    os << "\nprocess " << a.name() << " (init "
       << a.location(a.initial()).name << ")\n";
    for (size_t li = 0; li < a.numLocations(); ++li) {
      const Location& l = a.location(static_cast<LocId>(li));
      os << "  loc " << l.name;
      if (l.urgent) os << " [urgent]";
      if (l.committed) os << " [committed]";
      if (!l.invariant.empty()) {
        os << " inv{";
        for (size_t k = 0; k < l.invariant.size(); ++k) {
          os << (k ? ", " : "") << ccToString(l.invariant[k]);
        }
        os << "}";
      }
      os << "\n";
    }
    for (const Edge& e : a.edges()) {
      os << "  " << a.location(e.src).name << " -> " << a.location(e.dst).name;
      if (!e.clockGuard.empty() || e.guard != kNoExpr) {
        os << "  guard{";
        bool first = true;
        for (const ClockConstraint& cc : e.clockGuard) {
          os << (first ? "" : ", ") << ccToString(cc);
          first = false;
        }
        if (e.guard != kNoExpr) {
          os << (first ? "" : ", ") << pool_.toString(e.guard, varNames_);
        }
        os << "}";
      }
      if (e.sync != Sync::kNone) {
        os << "  " << channelName(e.chan)
           << (e.sync == Sync::kSend ? "!" : "?");
      }
      if (!e.resets.empty() || !e.assigns.empty()) {
        os << "  do{";
        bool first = true;
        for (const ClockReset& r : e.resets) {
          os << (first ? "" : ", ") << clockName(r.clock) << ":=" << r.value;
          first = false;
        }
        for (const Assign& as : e.assigns) {
          os << (first ? "" : ", ");
          os << varName(as.base);
          if (as.index != kNoExpr)
            os << "[" << pool_.toString(as.index, varNames_) << "]";
          os << ":=" << pool_.toString(as.rhs, varNames_);
          first = false;
        }
        os << "}";
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace ta
