// Static-analysis passes over a parsed (or hand-built) network of
// timed automata. Lint is *advisory*: it never changes the model, it
// only appends warning diagnostics. The passes:
//
//   L001 unused clock           — never in a guard/invariant/reset/query
//   L002 unused variable        — never read or written anywhere
//   L003 unused channel         — no edge syncs on it (or one side only)
//   L004 unreachable location   — no edge path from the initial location
//   L005 guard vs invariant     — edge guard ∧ source invariant is empty
//                                 (checked exactly on a DBM)
//   L006 never-enabled edge     — clock guard unsatisfiable on its own,
//                                 or constant-false integer guard
//   L007 suspicious urgency     — urgent/committed location carrying an
//                                 invariant, or with no outgoing edge
//   L008 duplicate label        — the same explicit `label "..."` on
//                                 two edges of one process
//   L009 constant out of range  — clock bounds near the DBM overflow
//                                 edge; constant array index out of
//                                 bounds
//   L010 no query               — the model declares no `query` line
//
// Spans come from the parser's SourceMap when available; hand-built
// models get zero spans (the message still names the construct).
#pragma once

#include <vector>

#include "ta/parser.hpp"

namespace ta {

/// Append lint warnings for `sys` to *out. `sys` may be finalized or
/// not; the passes use only the construction-time tables.
void runLints(const System& sys, const std::vector<ParsedQuery>& queries,
              const SourceMap& map, std::vector<Diagnostic>* out);

/// Convenience for hand-built models: no queries, no source spans.
void runLints(const System& sys, std::vector<Diagnostic>* out);

}  // namespace ta
