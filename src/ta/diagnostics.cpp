#include "ta/diagnostics.hpp"

#include <algorithm>
#include <array>
#include <sstream>

namespace ta {

namespace {

constexpr std::array kCodeNames = {
#define TA_DIAG_NAME(name, str) str,
    TA_DIAG_CODE_TABLE(TA_DIAG_NAME)
#undef TA_DIAG_NAME
};

constexpr std::array kAllCodes = {
#define TA_DIAG_VALUE(name, str) DiagCode::name,
    TA_DIAG_CODE_TABLE(TA_DIAG_VALUE)
#undef TA_DIAG_VALUE
};

}  // namespace

const char* diagCodeName(DiagCode code) {
  return kCodeNames[static_cast<size_t>(code)];
}

bool diagCodeFromName(const std::string& name, DiagCode* out) {
  for (size_t i = 0; i < kCodeNames.size(); ++i) {
    if (name == kCodeNames[i]) {
      *out = static_cast<DiagCode>(i);
      return true;
    }
  }
  return false;
}

std::span<const DiagCode> allDiagCodes() { return kAllCodes; }

bool isLintCode(DiagCode code) { return diagCodeName(code)[0] == 'L'; }

std::string toString(const Diagnostic& d, const std::string& file) {
  std::ostringstream os;
  if (!file.empty()) os << file << ":";
  if (d.span.line > 0) os << d.span.line << ":" << d.span.col << ":";
  if (!file.empty() || d.span.line > 0) os << " ";
  os << (d.severity == Severity::kError ? "error" : "warning") << "["
     << diagCodeName(d.code) << "]: " << d.message;
  if (!d.note.empty()) os << "\n  note: " << d.note;
  return os.str();
}

std::string renderDiagnostics(const std::vector<Diagnostic>& ds,
                              const std::string& file) {
  std::ostringstream os;
  for (const Diagnostic& d : ds) os << toString(d, file) << "\n";
  return os.str();
}

size_t countErrors(const std::vector<Diagnostic>& ds) {
  return static_cast<size_t>(
      std::count_if(ds.begin(), ds.end(), [](const Diagnostic& d) {
        return d.severity == Severity::kError;
      }));
}

size_t countWarnings(const std::vector<Diagnostic>& ds) {
  return static_cast<size_t>(
      std::count_if(ds.begin(), ds.end(), [](const Diagnostic& d) {
        return d.severity == Severity::kWarning;
      }));
}

void sortBySource(std::vector<Diagnostic>& ds) {
  std::stable_sort(ds.begin(), ds.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.span.line != b.span.line)
                       return a.span.line < b.span.line;
                     return a.span.col < b.span.col;
                   });
}

}  // namespace ta
