// Integer expressions over model variables — the data language of guards
// and assignments (UPPAAL's integer fragment: scalars, flattened arrays,
// arithmetic, comparisons, boolean connectives, ?:).
//
// Expressions are interned in an arena (`ExprPool`) and referenced by
// index; evaluation is an iterative-free recursive walk over the flat
// node array, cheap enough for the millions of guard evaluations a
// reachability run performs.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ta {

/// Index of an expression node inside its pool. kNoExpr means "absent"
/// (an absent guard is true).
using ExprRef = int32_t;
inline constexpr ExprRef kNoExpr = -1;

/// Flattened index of an integer variable (array cells are consecutive).
using VarId = int32_t;

enum class Op : uint8_t {
  kConst,  ///< payload a = value
  kVar,    ///< payload a = base VarId, b = index expr (kNoExpr if scalar),
           ///< c = array size (1 for scalars; used for bounds checking)
  kAdd, kSub, kMul, kDiv, kMod,
  kNeg,
  kLt, kLe, kEq, kNe, kGe, kGt,
  kAnd, kOr, kNot,
  kIte,    ///< a ? b : c
  kMin, kMax,
};

struct ExprNode {
  Op op;
  int32_t a = 0;
  int32_t b = 0;
  int32_t c = 0;
};

/// Thrown (via the bool-return eval path it is *not* thrown — see
/// `EvalError` handling in `eval`) on out-of-bounds array access or
/// division by zero. Model construction bugs, not runtime conditions.
struct EvalError {
  std::string what;
};

class ExprPool {
 public:
  [[nodiscard]] ExprRef constant(int32_t v) { return push({Op::kConst, v, 0, 0}); }

  [[nodiscard]] ExprRef var(VarId base) { return push({Op::kVar, base, kNoExpr, 1}); }

  [[nodiscard]] ExprRef arrayCell(VarId base, ExprRef index, int32_t size) {
    assert(size > 0);
    return push({Op::kVar, base, index, size});
  }

  [[nodiscard]] ExprRef unary(Op op, ExprRef a) { return push({op, a, 0, 0}); }

  [[nodiscard]] ExprRef binary(Op op, ExprRef a, ExprRef b) {
    return push({op, a, b, 0});
  }

  [[nodiscard]] ExprRef ite(ExprRef cond, ExprRef t, ExprRef f) {
    return push({Op::kIte, cond, t, f});
  }

  /// Evaluate `e` against a variable valuation. `e == kNoExpr` yields 1
  /// (the always-true guard). Division by zero and out-of-bounds array
  /// indices evaluate to 0 with `*ok = false` when `ok` is provided
  /// (and assert in debug builds — they indicate a malformed model).
  [[nodiscard]] int64_t eval(ExprRef e, std::span<const int32_t> vars,
                             bool* ok = nullptr) const;

  /// Evaluate as a guard: nonzero result means enabled.
  [[nodiscard]] bool evalBool(ExprRef e, std::span<const int32_t> vars) const {
    return eval(e, vars) != 0;
  }

  [[nodiscard]] const ExprNode& node(ExprRef e) const {
    assert(e >= 0 && static_cast<size_t>(e) < nodes_.size());
    return nodes_[static_cast<size_t>(e)];
  }

  [[nodiscard]] size_t size() const noexcept { return nodes_.size(); }

  /// Render the expression with variable names supplied by the caller.
  [[nodiscard]] std::string toString(
      ExprRef e, std::span<const std::string> varNames) const;

 private:
  ExprRef push(ExprNode n) {
    nodes_.push_back(n);
    return static_cast<ExprRef>(nodes_.size() - 1);
  }

  std::vector<ExprNode> nodes_;
};

/// Fluent expression-building handle: `Ex` values carry their pool so
/// model-construction code can write `count(t1) <= count(t2)` directly.
class Ex {
 public:
  Ex(ExprPool& pool, ExprRef ref) : pool_(&pool), ref_(ref) {}

  [[nodiscard]] ExprRef ref() const noexcept { return ref_; }
  [[nodiscard]] ExprPool& pool() const noexcept { return *pool_; }

  friend Ex operator+(Ex a, Ex b) { return a.bin(Op::kAdd, b); }
  friend Ex operator-(Ex a, Ex b) { return a.bin(Op::kSub, b); }
  friend Ex operator*(Ex a, Ex b) { return a.bin(Op::kMul, b); }
  friend Ex operator/(Ex a, Ex b) { return a.bin(Op::kDiv, b); }
  friend Ex operator%(Ex a, Ex b) { return a.bin(Op::kMod, b); }
  friend Ex operator<(Ex a, Ex b) { return a.bin(Op::kLt, b); }
  friend Ex operator<=(Ex a, Ex b) { return a.bin(Op::kLe, b); }
  friend Ex operator==(Ex a, Ex b) { return a.bin(Op::kEq, b); }
  friend Ex operator!=(Ex a, Ex b) { return a.bin(Op::kNe, b); }
  friend Ex operator>=(Ex a, Ex b) { return a.bin(Op::kGe, b); }
  friend Ex operator>(Ex a, Ex b) { return a.bin(Op::kGt, b); }
  friend Ex operator&&(Ex a, Ex b) { return a.bin(Op::kAnd, b); }
  friend Ex operator||(Ex a, Ex b) { return a.bin(Op::kOr, b); }
  friend Ex operator!(Ex a) {
    return Ex(*a.pool_, a.pool_->unary(Op::kNot, a.ref_));
  }
  friend Ex operator-(Ex a) {
    return Ex(*a.pool_, a.pool_->unary(Op::kNeg, a.ref_));
  }

  /// Mixed-operand conveniences with integer literals.
  friend Ex operator+(Ex a, int32_t b) { return a + a.lit(b); }
  friend Ex operator-(Ex a, int32_t b) { return a - a.lit(b); }
  friend Ex operator<(Ex a, int32_t b) { return a < a.lit(b); }
  friend Ex operator<=(Ex a, int32_t b) { return a <= a.lit(b); }
  friend Ex operator==(Ex a, int32_t b) { return a == a.lit(b); }
  friend Ex operator!=(Ex a, int32_t b) { return a != a.lit(b); }
  friend Ex operator>=(Ex a, int32_t b) { return a >= a.lit(b); }
  friend Ex operator>(Ex a, int32_t b) { return a > a.lit(b); }

  [[nodiscard]] static Ex ite(Ex cond, Ex t, Ex f) {
    return Ex(*cond.pool_, cond.pool_->ite(cond.ref_, t.ref_, f.ref_));
  }

 private:
  [[nodiscard]] Ex bin(Op op, Ex other) const {
    assert(pool_ == other.pool_);
    return Ex(*pool_, pool_->binary(op, ref_, other.ref_));
  }
  [[nodiscard]] Ex lit(int32_t v) const { return Ex(*pool_, pool_->constant(v)); }

  ExprPool* pool_;
  ExprRef ref_;
};

}  // namespace ta
