#include "ta/lint.hpp"

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dbm/dbm.hpp"
#include "ta/opt_passes.hpp"

namespace ta {

namespace {

/// Values at or above this in a clock constraint are flagged: boundAdd
/// sums two encoded bounds, so constants past half the encodable range
/// can overflow during zone arithmetic.
constexpr dbm::value_t kSafeBoundLimit = dbm::kMaxValue / 2;

Span at(const std::vector<Span>& v, size_t i) {
  return i < v.size() ? v[i] : Span{};
}

Span at2(const std::vector<std::vector<Span>>& v, size_t i, size_t j) {
  return i < v.size() && j < v[i].size() ? v[i][j] : Span{};
}

class Linter {
 public:
  Linter(const System& sys, const std::vector<ParsedQuery>& queries,
         const SourceMap& map, bool queriesKnown,
         std::vector<Diagnostic>* out)
      : sys_(sys), queries_(queries), map_(map), queriesKnown_(queriesKnown),
        out_(out) {}

  void run() {
    collectUsage();
    unusedDecls();
    reachability();
    edgeSatisfiability();
    urgencyMisuse();
    duplicateLabels();
    outOfRangeConstants();
    if (queriesKnown_ && queries_.empty()) {
      warn(DiagCode::kNoQuery, {1, 1, 0},
           "model declares no 'query' line; nothing to check");
    }
  }

 private:
  void warn(DiagCode code, Span span, std::string message,
            std::string note = {}) {
    out_->push_back(
        {Severity::kWarning, code, span, std::move(message), std::move(note)});
  }

  // -- usage collection ---------------------------------------------------

  void useClock(const ClockConstraint& cc) {
    if (cc.i != 0) clockUsed_.insert(cc.i);
    if (cc.j != 0) clockUsed_.insert(cc.j);
  }

  void useExpr(ExprRef e) {
    if (e == kNoExpr) return;
    const ExprNode& n = sys_.pool().node(e);
    switch (n.op) {
      case Op::kConst:
        return;
      case Op::kVar:
        if (n.b == kNoExpr) {
          varRead_.insert(n.a);
        } else {
          for (int32_t k = 0; k < n.c; ++k) varRead_.insert(n.a + k);
          useExpr(n.b);
        }
        return;
      case Op::kNeg:
      case Op::kNot:
        useExpr(n.a);
        return;
      case Op::kIte:
        useExpr(n.a);
        useExpr(n.b);
        useExpr(n.c);
        return;
      default:  // binary operators, min/max
        useExpr(n.a);
        useExpr(n.b);
        return;
    }
  }

  void collectUsage() {
    for (size_t p = 0; p < sys_.numAutomata(); ++p) {
      const Automaton& a = sys_.automaton(static_cast<ProcId>(p));
      for (size_t l = 0; l < a.numLocations(); ++l) {
        for (const ClockConstraint& cc :
             a.location(static_cast<LocId>(l)).invariant) {
          useClock(cc);
        }
      }
      for (const Edge& e : a.edges()) {
        for (const ClockConstraint& cc : e.clockGuard) useClock(cc);
        for (const ClockReset& r : e.resets) clockUsed_.insert(r.clock);
        useExpr(e.guard);
        if (e.chan >= 0) {
          (e.sync == Sync::kSend ? chanSent_ : chanReceived_).insert(e.chan);
        }
        for (const Assign& as : e.assigns) {
          useExpr(as.rhs);
          if (as.index == kNoExpr) {
            varWritten_.insert(as.base);
          } else {
            useExpr(as.index);
            for (int32_t k = 0; k < as.arraySize; ++k) {
              varWritten_.insert(as.base + k);
            }
          }
        }
      }
    }
    for (const ParsedQuery& q : queries_) {
      for (const ClockConstraint& cc : q.clockConstraints) useClock(cc);
      useExpr(q.predicate);
    }
  }

  // -- L001 / L002 / L003 -------------------------------------------------

  void unusedDecls() {
    for (ClockId c = 1; c <= static_cast<ClockId>(sys_.numClocks()); ++c) {
      if (clockUsed_.count(c) == 0) {
        warn(DiagCode::kUnusedClock,
             at(map_.clockDecls, static_cast<size_t>(c - 1)),
             "clock '" + sys_.clockName(c) + "' is never used");
      }
    }

    // Arrays report once for the whole cell range; a cell id is covered
    // when it belongs to some declared array.
    std::vector<bool> inArray(sys_.numVars(), false);
    for (const auto& [base, size] : sys_.arrays()) {
      bool read = false, written = false;
      for (int32_t k = 0; k < size; ++k) {
        read = read || varRead_.count(base + k) != 0;
        written = written || varWritten_.count(base + k) != 0;
        inArray[static_cast<size_t>(base + k)] = true;
      }
      std::string name = sys_.varName(base);
      if (const size_t bracket = name.find('['); bracket != std::string::npos) {
        name.resize(bracket);
      }
      reportVarUsage(name, base, read, written);
    }
    for (VarId v = 0; v < static_cast<VarId>(sys_.numVars()); ++v) {
      if (inArray[static_cast<size_t>(v)]) continue;
      reportVarUsage(sys_.varName(v), v, varRead_.count(v) != 0,
                     varWritten_.count(v) != 0);
    }

    for (ChanId c = 0; c < static_cast<ChanId>(sys_.numChannels()); ++c) {
      const bool sent = chanSent_.count(c) != 0;
      const bool received = chanReceived_.count(c) != 0;
      const Span s = at(map_.chanDecls, static_cast<size_t>(c));
      const std::string name = "channel '" + sys_.channelName(c) + "'";
      if (!sent && !received) {
        warn(DiagCode::kUnusedChannel, s, name + " is never used");
      } else if (sent && !received &&
                 sys_.channelKind(c) == ChanKind::kBinary) {
        // A broadcast send with no receivers fires alone; a binary send
        // can never synchronize.
        warn(DiagCode::kUnusedChannel, s,
             name + " is sent on but never received; its send edges can "
                    "never fire");
      } else if (received && !sent) {
        warn(DiagCode::kUnusedChannel, s,
             name + " is received on but never sent; its receive edges can "
                    "never fire");
      }
    }
  }

  void reportVarUsage(const std::string& name, VarId v, bool read,
                      bool written) {
    const Span s = at(map_.varDecls, static_cast<size_t>(v));
    if (!read && !written) {
      warn(DiagCode::kUnusedVar, s, "variable '" + name + "' is never used");
    } else if (written && !read) {
      warn(DiagCode::kUnusedVar, s,
           "variable '" + name + "' is assigned but never read");
    }
  }

  // -- L004 ---------------------------------------------------------------

  void reachability() {
    // Same analysis the optimizer's dead-location pass runs: L004 warns
    // exactly where passRemoveDeadLocations would cut.
    for (size_t p = 0; p < sys_.numAutomata(); ++p) {
      const Automaton& a = sys_.automaton(static_cast<ProcId>(p));
      if (a.numLocations() == 0) continue;
      std::vector<std::pair<LocId, LocId>> pairs;
      pairs.reserve(a.edges().size());
      for (const Edge& e : a.edges()) pairs.push_back({e.src, e.dst});
      const std::vector<bool> seen =
          reachableLocations(a.numLocations(), a.initial(), pairs);
      for (size_t l = 0; l < a.numLocations(); ++l) {
        if (!seen[l]) {
          warn(DiagCode::kUnreachableLocation, at2(map_.locDecls, p, l),
               "location '" + a.name() + "." +
                   a.location(static_cast<LocId>(l)).name +
                   "' is unreachable from the initial location");
        }
      }
    }
  }

  // -- L005 / L006 --------------------------------------------------------

  void edgeSatisfiability() {
    // Shared with passRemoveNeverEnabledEdges: the classification below
    // is the one the optimizer removes on, so detector and remover
    // cannot diverge.
    const uint32_t dim = sys_.dbmDimension();
    for (size_t p = 0; p < sys_.numAutomata(); ++p) {
      const Automaton& a = sys_.automaton(static_cast<ProcId>(p));
      for (size_t ei = 0; ei < a.edges().size(); ++ei) {
        const Edge& e = a.edges()[ei];
        const Span span = at2(map_.edgeDecls, p, ei);
        const std::string where = "edge '" + a.location(e.src).name + " -> " +
                                  a.location(e.dst).name + "' in process '" +
                                  a.name() + "'";
        switch (classifyEdgeViability(sys_.pool(), e.guard, e.clockGuard,
                                      a.location(e.src).invariant, dim)) {
          case EdgeViability::kViable:
            break;
          case EdgeViability::kConstFalseGuard:
            warn(DiagCode::kNeverEnabledEdge, span,
                 where + " is never enabled: its guard is constant false");
            break;
          case EdgeViability::kClockGuardUnsat:
            warn(DiagCode::kNeverEnabledEdge, span,
                 where + " is never enabled: its clock guard is unsatisfiable");
            break;
          case EdgeViability::kGuardContradictsInvariant:
            warn(DiagCode::kGuardContradictsInvariant, span,
                 "guard on " + where + " contradicts the invariant of '" +
                     a.location(e.src).name + "'",
                 "the conjunction of the guard and the source invariant is "
                 "empty, so the edge can never fire");
            break;
        }
      }
    }
  }

  // -- L007 ---------------------------------------------------------------

  void urgencyMisuse() {
    for (size_t p = 0; p < sys_.numAutomata(); ++p) {
      const Automaton& a = sys_.automaton(static_cast<ProcId>(p));
      for (size_t l = 0; l < a.numLocations(); ++l) {
        const Location& loc = a.location(static_cast<LocId>(l));
        if (!loc.urgent && !loc.committed) continue;
        const char* kind = loc.committed ? "committed" : "urgent";
        const Span span = at2(map_.locDecls, p, l);
        if (!loc.invariant.empty()) {
          warn(DiagCode::kSuspiciousUrgency, span,
               std::string("invariant on ") + kind + " location '" + a.name() +
                   "." + loc.name + "' is suspicious: time cannot elapse here",
               "did you mean a guard on the outgoing edges?");
        }
        bool hasOutgoing = false;
        for (const Edge& e : a.edges()) {
          if (e.src == static_cast<LocId>(l)) {
            hasOutgoing = true;
            break;
          }
        }
        if (!hasOutgoing) {
          warn(DiagCode::kSuspiciousUrgency, span,
               std::string(kind) + " location '" + a.name() + "." + loc.name +
                   "' has no outgoing edge: the system deadlocks on entry");
        }
      }
    }
  }

  // -- L008 ---------------------------------------------------------------

  void duplicateLabels() {
    std::map<std::pair<ProcId, std::string>, Span> first;
    for (const SourceMap::ExplicitLabel& l : map_.labels) {
      const auto [it, fresh] = first.insert({{l.proc, l.text}, l.span});
      if (!fresh) {
        warn(DiagCode::kDuplicateLabel, l.span,
             "duplicate edge label \"" + l.text + "\" in process '" +
                 sys_.automaton(l.proc).name() + "'",
             "first used at line " + std::to_string(it->second.line));
      }
    }
  }

  // -- L009 ---------------------------------------------------------------

  void checkBound(const ClockConstraint& cc, Span span) {
    const dbm::value_t v = dbm::boundValue(cc.bound);
    if (std::abs(static_cast<long>(v)) >= kSafeBoundLimit) {
      warn(DiagCode::kConstantOutOfRange, span,
           "clock bound " + std::to_string(v) +
               " risks overflow in zone arithmetic (safe limit " +
               std::to_string(kSafeBoundLimit) + ")");
    }
  }

  void checkConstIndexes(ExprRef e, Span span) {
    if (e == kNoExpr) return;
    const ExprNode& n = sys_.pool().node(e);
    switch (n.op) {
      case Op::kConst:
        return;
      case Op::kVar:
        if (n.b != kNoExpr) {
          const ExprNode& idx = sys_.pool().node(n.b);
          if (idx.op == Op::kConst && (idx.a < 0 || idx.a >= n.c)) {
            std::string name = sys_.varName(n.a);
            if (const size_t b = name.find('['); b != std::string::npos) {
              name.resize(b);
            }
            warn(DiagCode::kConstantOutOfRange, span,
                 "constant index " + std::to_string(idx.a) +
                     " is out of bounds for array '" + name + "' of size " +
                     std::to_string(n.c));
          }
          checkConstIndexes(n.b, span);
        }
        return;
      case Op::kNeg:
      case Op::kNot:
        checkConstIndexes(n.a, span);
        return;
      case Op::kIte:
        checkConstIndexes(n.a, span);
        checkConstIndexes(n.b, span);
        checkConstIndexes(n.c, span);
        return;
      default:
        checkConstIndexes(n.a, span);
        checkConstIndexes(n.b, span);
        return;
    }
  }

  void outOfRangeConstants() {
    for (size_t p = 0; p < sys_.numAutomata(); ++p) {
      const Automaton& a = sys_.automaton(static_cast<ProcId>(p));
      for (size_t l = 0; l < a.numLocations(); ++l) {
        for (const ClockConstraint& cc :
             a.location(static_cast<LocId>(l)).invariant) {
          checkBound(cc, at2(map_.locDecls, p, l));
        }
      }
      for (size_t ei = 0; ei < a.edges().size(); ++ei) {
        const Edge& e = a.edges()[ei];
        const Span span = at2(map_.edgeDecls, p, ei);
        for (const ClockConstraint& cc : e.clockGuard) checkBound(cc, span);
        checkConstIndexes(e.guard, span);
        for (const Assign& as : e.assigns) {
          checkConstIndexes(as.rhs, span);
          if (as.index != kNoExpr) {
            const ExprNode& idx = sys_.pool().node(as.index);
            if (idx.op == Op::kConst &&
                (idx.a < 0 || idx.a >= as.arraySize)) {
              std::string name = sys_.varName(as.base);
              if (const size_t b = name.find('['); b != std::string::npos) {
                name.resize(b);
              }
              warn(DiagCode::kConstantOutOfRange, span,
                   "constant index " + std::to_string(idx.a) +
                       " is out of bounds for array '" + name + "' of size " +
                       std::to_string(as.arraySize));
            }
            checkConstIndexes(as.index, span);
          }
        }
      }
    }
    for (size_t qi = 0; qi < queries_.size(); ++qi) {
      const Span span = at(map_.queryDecls, qi);
      for (const ClockConstraint& cc : queries_[qi].clockConstraints) {
        checkBound(cc, span);
      }
      checkConstIndexes(queries_[qi].predicate, span);
    }
  }

  const System& sys_;
  const std::vector<ParsedQuery>& queries_;
  const SourceMap& map_;
  const bool queriesKnown_;
  std::vector<Diagnostic>* out_;

  std::set<ClockId> clockUsed_;
  std::set<VarId> varRead_;
  std::set<VarId> varWritten_;
  std::set<ChanId> chanSent_;
  std::set<ChanId> chanReceived_;
};

}  // namespace

void runLints(const System& sys, const std::vector<ParsedQuery>& queries,
              const SourceMap& map, std::vector<Diagnostic>* out) {
  Linter(sys, queries, map, /*queriesKnown=*/true, out).run();
}

void runLints(const System& sys, std::vector<Diagnostic>* out) {
  static const std::vector<ParsedQuery> kNoQueries;
  static const SourceMap kNoMap;
  Linter(sys, kNoQueries, kNoMap, /*queriesKnown=*/false, out).run();
}

}  // namespace ta
